// Package boosting implements Herlihy & Koskinen's (pessimistic)
// transactional boosting [PPoPP 2008], the baseline OTB is evaluated
// against: a semantic layer of abstract read/write locks acquired eagerly at
// operation time and held to transaction end (two-phase locking), plus a
// semantic undo log of inverse operations replayed on abort. The underlying
// concurrent data structures (package conc) are used as black boxes.
package boosting

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/abort"
	"repro/internal/chaos/failpoint"
	"repro/internal/cm"
	"repro/internal/spin"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Failpoints on the boosting lock and commit paths.
var (
	// fpLockPartial fires when a transaction that already holds at least one
	// abstract lock goes to acquire another — the partial-lock-set window.
	// Recovery must replay the undo log and release the held locks in
	// reverse acquisition order.
	fpLockPartial = failpoint.New("boosting.lock.partial")
	// fpCommitPre fires at the top of commit, with all abstract locks and
	// eager writes in place.
	fpCommitPre = failpoint.New("boosting.commit.pre")
)

// RWLock is an abstract reader/writer lock: state counts readers, or is -1
// when write-held. A waiting-writers gate gives writers priority — without
// it, a stream of commutative readers (e.g. priority-queue Adds holding the
// shared side) starves RemoveMin writers indefinitely, livelocking the
// whole queue. Locks are transaction-scoped; a Tx tracks what it holds and
// releases everything at commit or abort.
type RWLock struct {
	state   atomic.Int64
	waiting atomic.Int64 // writers currently spinning for the lock
	_       spin.Pad
}

// tryRead increments the reader count unless a writer holds the lock or is
// waiting for it (writer priority).
func (l *RWLock) tryRead() bool {
	if l.waiting.Load() > 0 {
		return false
	}
	s := l.state.Load()
	return s >= 0 && l.state.CompareAndSwap(s, s+1)
}

// tryWrite acquires exclusively when the lock is free.
func (l *RWLock) tryWrite() bool {
	return l.state.CompareAndSwap(0, -1)
}

// tryUpgrade turns a sole read hold into a write hold.
func (l *RWLock) tryUpgrade() bool {
	return l.state.CompareAndSwap(1, -1)
}

func (l *RWLock) releaseRead()  { l.state.Add(-1) }
func (l *RWLock) releaseWrite() { l.state.Store(0) }

// downgradeFromUpgrade reverts an upgraded lock back to a read hold.
func (l *RWLock) downgradeFromUpgrade() { l.state.Store(1) }

// LockTable stripes abstract per-key locks, standing in for the original's
// lock-per-key hash map.
type LockTable struct {
	stripes []RWLock
	mask    uint64
}

// NewLockTable creates a table with n stripes (rounded up to a power of
// two).
func NewLockTable(n int) *LockTable {
	size := 1
	for size < n {
		size *= 2
	}
	return &LockTable{stripes: make([]RWLock, size), mask: uint64(size - 1)}
}

// For returns the lock guarding key.
func (t *LockTable) For(key int64) *RWLock {
	h := uint64(key) * 0x9e3779b97f4a7c15
	return &t.stripes[(h>>32)&t.mask]
}

// lockMode distinguishes how a Tx holds an RWLock.
type lockMode int8

const (
	readHeld lockMode = iota
	writeHeld
	upgradedHeld // write-held, but was read-held first (release restores read? no: released fully)
)

type heldLock struct {
	lock *RWLock
	mode lockMode
	key  uint64 // flight-recorder attribution key noted at acquisition
}

// inverser is implemented by boosted structures that can apply the inverse
// of a recorded operation from a compact (key, code) pair. Typed undo
// entries keep the per-operation hot path free of closure allocations; the
// codes are the inv* constants below.
type inverser interface {
	applyInverse(key int64, code int8)
}

// Undo codes, one per invertible boosted operation.
const (
	invSetAdd      int8 = iota // inverse of Set.Add: remove the key
	invSetRemove               // inverse of Set.Remove: re-add the key
	invPQAdd                   // inverse of PQ.Add: mark the key logically deleted
	invPQRemoveMin             // inverse of PQ.RemoveMin: re-insert the key
)

// undoEntry is one recorded inverse: either a typed (target, key, code)
// triple or, for arbitrary callers of OnAbort, a plain closure.
type undoEntry struct {
	target inverser // nil when fn is set
	fn     func()
	key    int64
	code   int8
}

// run applies the inverse.
func (u *undoEntry) run() {
	if u.fn != nil {
		u.fn()
		return
	}
	u.target.applyInverse(u.key, u.code)
}

// Tx is a pessimistic-boosting transaction: the set of abstract locks held
// and the semantic undo log of inverse operations.
type Tx struct {
	held []heldLock
	undo []undoEntry
	ctr  *spin.Counters
	mgr  *cm.Manager // resolved contention manager for this execution
	tel  *telemetry.Local
	tr   *trace.Local
	// lockKey is the attribution key for the lock currently being acquired,
	// noted by the semantic layer before each Acquire* call (0 = unknown).
	lockKey uint64
}

// noteLockKey records the abstract key behind the next lock acquisition so
// timeout aborts and lock events name the contended key, not the stripe.
func (tx *Tx) noteLockKey(k uint64) {
	tx.lockKey = k
	tx.tr.NoteKey(k)
}

// meter collects pessimistic-boosting statistics; exhausted lock-
// acquisition spins show up under the timeout reason, locks observed busy
// at acquisition under lock-busy.
var meter = telemetry.M("PessimisticBoosted")

// cmgr is the contention manager boosted transactions run under; nil means
// the shared cm.Default manager. The policy also sets the abstract-lock
// acquisition timeout (Policy.LockAttempts), replacing the former package
// constant.
var cmgr atomic.Pointer[cm.Manager]

func init() {
	meter.SetPolicySource(func() string { return cm.Or(cmgr.Load()).Policy().Name() })
}

// SetManager installs the contention manager (nil restores the shared
// default). Safe during live traffic.
func SetManager(m *cm.Manager) { cmgr.Store(m) }

// txPool recycles transaction descriptors (with their shard-bound telemetry
// handles) across Atomic calls.
var traceSrc = trace.S("PessimisticBoosted")

var txPool = sync.Pool{New: func() any {
	return &boostRunner{tx: &Tx{tel: meter.Local(), tr: traceSrc.Local()}}
}}

// boostRunner drives one boosted transaction through the retry loop via
// abort.TxRunner methods, keeping the hot path free of closure allocations.
type boostRunner struct {
	tx *Tx
	fn func(*Tx)
}

func (r *boostRunner) Begin() {
	r.tx.held = r.tx.held[:0]
	clearUndo(r.tx.undo)
	r.tx.undo = r.tx.undo[:0]
	r.tx.tr.AttemptStart()
}

func (r *boostRunner) Attempt() {
	r.fn(r.tx)
	r.tx.tr.CommitBegin()
	r.tx.commit()
	r.tx.tr.CommitEnd()
}

func (r *boostRunner) Rollback(reason abort.Reason) {
	r.tx.rollback()
	r.tx.tr.Abort(reason)
	r.tx.tel.Abort(reason)
}

// Atomic runs fn as a boosted transaction, retrying on abort. Stats and
// counters may be nil.
func Atomic(stats *abort.Stats, ctr *spin.Counters, fn func(*Tx)) {
	AtomicCtx(nil, stats, ctr, fn)
}

// AtomicCtx is Atomic observing ctx: cancellation is checked at retry-loop
// tops and in contention-management waits; an abandoned transaction replays
// its undo log, releases its abstract locks, and returns the context's
// error. The descriptor returns to its pool even when fn (or an armed
// failpoint) panics — the rollback path has already restored the structure
// by then.
func AtomicCtx(ctx context.Context, stats *abort.Stats, ctr *spin.Counters, fn func(*Tx)) error {
	r := txPool.Get().(*boostRunner)
	tx := r.tx
	tx.ctr = ctr
	tx.mgr = cm.Or(cmgr.Load())
	r.fn = fn
	defer func() {
		tx.ctr = nil
		tx.mgr = nil
		r.fn = nil
		txPool.Put(r)
	}()
	start := tx.tel.Start()
	tx.tr.TxStart()
	defer tx.tr.TxEnd()
	escalated, err := abort.RunPolicyTxCtx(ctx, stats, tx.mgr, r)
	if escalated {
		tx.tr.Escalated()
		tx.tel.Escalated()
	}
	if err != nil {
		return err
	}
	tx.tel.Commit(start)
	return nil
}

// OnAbort registers an inverse operation to replay if the transaction
// aborts. Inverses run in reverse registration order. The boosted
// structures in this package record their inverses through the
// allocation-free onUndo instead; OnAbort remains for callers with
// arbitrary rollback actions.
func (tx *Tx) OnAbort(inverse func()) {
	tx.undo = append(tx.undo, undoEntry{fn: inverse})
}

// onUndo registers a typed inverse without allocating.
func (tx *Tx) onUndo(target inverser, key int64, code int8) {
	tx.undo = append(tx.undo, undoEntry{target: target, key: key, code: code})
}

// AcquireRead takes (or confirms) a shared hold on l, aborting on timeout.
func (tx *Tx) AcquireRead(l *RWLock) {
	if tx.holds(l) {
		return // read or write hold both admit reading
	}
	if len(tx.held) > 0 {
		fpLockPartial.Hit()
	}
	tx.spinAcquire(l, (*RWLock).tryRead)
	tx.held = append(tx.held, heldLock{lock: l, mode: readHeld, key: tx.lockKey})
}

// AcquireWrite takes (or upgrades to) an exclusive hold on l, aborting on
// timeout. The waiting-writer gate is raised for the duration of the spin
// so incoming readers stand aside.
func (tx *Tx) AcquireWrite(l *RWLock) {
	for i := range tx.held {
		h := &tx.held[i]
		if h.lock != l {
			continue
		}
		if h.mode != readHeld {
			return // already exclusive
		}
		tx.spinAcquireWrite(l, (*RWLock).tryUpgrade)
		h.mode = upgradedHeld
		return
	}
	if len(tx.held) > 0 {
		fpLockPartial.Hit()
	}
	tx.spinAcquireWrite(l, (*RWLock).tryWrite)
	tx.held = append(tx.held, heldLock{lock: l, mode: writeHeld, key: tx.lockKey})
}

// spinAcquireWrite raises the waiting-writer gate around the spin; the
// deferred decrement also runs when the spin aborts the transaction.
func (tx *Tx) spinAcquireWrite(l *RWLock, try func(*RWLock) bool) {
	l.waiting.Add(1)
	defer l.waiting.Add(-1)
	tx.spinAcquire(l, try)
}

// spinAcquire retries try with backoff up to the contention-manager
// policy's lock-attempt bound (timeout-based deadlock avoidance, as in the
// original boosting implementation), then aborts with the timeout reason —
// its own telemetry line, distinct from locks found busy at commit.
func (tx *Tx) spinAcquire(l *RWLock, try func(*RWLock) bool) {
	attempts := tx.lockAttempts()
	var b spin.Backoff
	for i := 0; i < attempts; i++ {
		if try(l) {
			tx.tr.Lock(tx.lockKey)
			return
		}
		tx.ctr.IncCAS()
		b.Wait()
	}
	tx.tr.LockBusy(tx.lockKey)
	abort.Retry(abort.Timeout)
}

// lockAttempts resolves the abstract-lock acquisition bound from the
// transaction's contention-management policy (falling back to the package
// manager for hand-built transactions that bypass Atomic).
func (tx *Tx) lockAttempts() int {
	m := tx.mgr
	if m == nil {
		m = cm.Or(cmgr.Load())
	}
	return m.Policy().LockAttempts()
}

func (tx *Tx) holds(l *RWLock) bool {
	for i := range tx.held {
		if tx.held[i].lock == l {
			return true
		}
	}
	return false
}

// commit releases all abstract locks; eager writes are already in place.
func (tx *Tx) commit() {
	fpCommitPre.Hit()
	tx.releaseAll()
	clearUndo(tx.undo)
	tx.undo = tx.undo[:0]
}

// rollback replays the undo log in reverse and releases all locks.
func (tx *Tx) rollback() {
	for i := len(tx.undo) - 1; i >= 0; i-- {
		tx.undo[i].run()
	}
	clearUndo(tx.undo)
	tx.undo = tx.undo[:0]
	tx.releaseAll()
}

// clearUndo drops references held by a drained undo log so recycled
// descriptors do not pin dead structures or closures.
func clearUndo(u []undoEntry) {
	for i := range u {
		u[i] = undoEntry{}
	}
}

// releaseHook, when non-nil, observes every lock release in order. It is a
// test seam: the lock-timeout test uses it to prove partially acquired lock
// sets are released in reverse acquisition order.
var releaseHook func(*RWLock, lockMode)

// releaseAll releases every held abstract lock in reverse acquisition
// order. Reverse order matters for partial lock sets: a transaction that
// timed out acquiring lock N must give up N-1..0 in the opposite order it
// took them, so a competing transaction spinning on an early lock never
// sees this one reacquire-after-release.
func (tx *Tx) releaseAll() {
	for i := len(tx.held) - 1; i >= 0; i-- {
		h := tx.held[i]
		if releaseHook != nil {
			releaseHook(h.lock, h.mode)
		}
		switch h.mode {
		case readHeld:
			h.lock.releaseRead()
		default:
			h.lock.releaseWrite()
		}
		tx.tr.Unlock(h.key)
	}
	tx.held = tx.held[:0]
}
