package boosting_test

import (
	"testing"

	"repro/internal/boosting"
	"repro/internal/conc"
	"repro/internal/lincheck"
)

// Linearizability and opacity checks for the pessimistically boosted
// structures (the paper's baseline). Boosting serializes through abstract
// locks, so both the single-operation histories and the multi-operation
// transactional histories must check out.

// boostedSet runs each abstract operation in its own boosted transaction.
type boostedSet struct{ s *boosting.Set }

func (a boostedSet) Add(k int64) (ok bool) {
	boosting.Atomic(nil, nil, func(tx *boosting.Tx) { ok = a.s.Add(tx, k) })
	return
}

func (a boostedSet) Remove(k int64) (ok bool) {
	boosting.Atomic(nil, nil, func(tx *boosting.Tx) { ok = a.s.Remove(tx, k) })
	return
}

func (a boostedSet) Contains(k int64) (ok bool) {
	boosting.Atomic(nil, nil, func(tx *boosting.Tx) { ok = a.s.Contains(tx, k) })
	return
}

func TestLincheckBoostedSet(t *testing.T) {
	for name, mk := range map[string]func() boosting.BlackBoxSet{
		"list": func() boosting.BlackBoxSet { return conc.NewLazyList() },
		"skip": func() boosting.BlackBoxSet { return conc.NewLazySkipList() },
	} {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := lincheck.DefaultConfig(21)
			cfg.Name = "boosting/" + name
			if testing.Short() {
				cfg = cfg.Scaled(4)
			}
			lincheck.StressSet(t, cfg, func() lincheck.Set {
				return boostedSet{boosting.NewSet(mk(), 64)}
			})
		})
	}
}

// boostView is one attempt's transactional view of a boosted set.
type boostView struct {
	tx *boosting.Tx
	s  *boosting.Set
}

func (v boostView) Add(k int64) bool      { return v.s.Add(v.tx, k) }
func (v boostView) Remove(k int64) bool   { return v.s.Remove(v.tx, k) }
func (v boostView) Contains(k int64) bool { return v.s.Contains(v.tx, k) }

func TestOpacityBoostedSetTxns(t *testing.T) {
	s := boosting.NewSet(conc.NewLazyList(), 64)
	cfg := lincheck.DefaultSTMConfig(22)
	cfg.Name = "boosting/set-txns"
	cfg.Cells = 8 // key range
	if testing.Short() {
		cfg = cfg.Scaled(2)
	}
	lincheck.StressTxnSet(t, cfg, func(th int, body func(lincheck.Set)) {
		boosting.Atomic(nil, nil, func(tx *boosting.Tx) { body(boostView{tx, s}) })
	})
}
