package boosting

import (
	"sync"

	"repro/internal/conc"
)

// BlackBoxPQ is the concurrent priority queue interface the boosted queue
// wraps without inspecting. conc.HeapPQ satisfies it directly;
// conc.SkipPQ via SkipPQAdapter.
type BlackBoxPQ interface {
	Add(key int64)
	Min() (int64, bool)
	RemoveMin() (int64, bool)
	Len() int
}

// SkipPQAdapter adapts conc.SkipPQ (whose Add reports duplicates) to
// BlackBoxPQ.
type SkipPQAdapter struct{ Q *conc.SkipPQ }

// Add inserts key, ignoring the duplicate indication.
func (a SkipPQAdapter) Add(key int64) { a.Q.Add(key) }

// Min returns the smallest queued key.
func (a SkipPQAdapter) Min() (int64, bool) { return a.Q.Min() }

// RemoveMin removes and returns the smallest key.
func (a SkipPQAdapter) RemoveMin() (int64, bool) { return a.Q.RemoveMin() }

// Len returns the queue size.
func (a SkipPQAdapter) Len() int { return a.Q.Len() }

// pqLockTraceKey is the flight-recorder attribution key for the queue's
// single global abstract lock, tagged so it cannot collide with set keys.
const pqLockTraceKey = 1<<61 | 1

// PQ is the pessimistically boosted priority queue of the paper's
// Algorithm 4: a concurrent queue guarded by one global abstract
// readers/writer lock. Add operations commute, so they take the shared
// side; Min and RemoveMin are non-commutative with everything and take the
// exclusive side. Rolled-back Adds are recorded as logically deleted
// "holders" that RemoveMin skips, because the queue has no native inverse
// for Add.
type PQ struct {
	lock RWLock
	pq   BlackBoxPQ

	mu      sync.Mutex
	deleted map[int64]int // key -> pending logical deletions
}

// NewPQ creates an empty boosted priority queue over a concurrent heap.
func NewPQ() *PQ { return NewPQOver(conc.NewHeapPQ()) }

// NewPQOver boosts an arbitrary concurrent priority queue.
func NewPQOver(q BlackBoxPQ) *PQ {
	return &PQ{pq: q, deleted: make(map[int64]int)}
}

// Add inserts key within tx (duplicates allowed).
func (q *PQ) Add(tx *Tx, key int64) {
	tx.noteLockKey(pqLockTraceKey)
	tx.AcquireRead(&q.lock)
	q.pq.Add(key)
	tx.onUndo(q, key, invPQAdd)
}

// Min returns the smallest live key within tx; ok is false when empty.
func (q *PQ) Min(tx *Tx) (int64, bool) {
	tx.noteLockKey(pqLockTraceKey)
	tx.AcquireWrite(&q.lock)
	for {
		key, ok := q.pq.Min()
		if !ok {
			return 0, false
		}
		if !q.consumeDeleted(key) {
			return key, true
		}
		q.pq.RemoveMin() // discard the logically deleted holder
	}
}

// RemoveMin removes and returns the smallest live key within tx; ok is
// false when empty.
func (q *PQ) RemoveMin(tx *Tx) (int64, bool) {
	tx.noteLockKey(pqLockTraceKey)
	tx.AcquireWrite(&q.lock)
	for {
		key, ok := q.pq.RemoveMin()
		if !ok {
			return 0, false
		}
		if q.consumeDeleted(key) {
			continue // skip a rolled-back Add
		}
		tx.onUndo(q, key, invPQRemoveMin)
		return key, true
	}
}

// applyInverse implements inverser for the boosted priority queue.
func (q *PQ) applyInverse(key int64, code int8) {
	if code == invPQAdd {
		q.markDeleted(key)
	} else {
		q.pq.Add(key)
	}
}

// markDeleted flags one pending instance of key as logically deleted.
func (q *PQ) markDeleted(key int64) {
	q.mu.Lock()
	q.deleted[key]++
	q.mu.Unlock()
}

// consumeDeleted consumes one logical deletion of key if present.
func (q *PQ) consumeDeleted(key int64) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.deleted[key] > 0 {
		q.deleted[key]--
		if q.deleted[key] == 0 {
			delete(q.deleted, key)
		}
		return true
	}
	return false
}

// Len returns the number of live queued keys (reporting only).
func (q *PQ) Len() int {
	q.mu.Lock()
	pending := 0
	for _, n := range q.deleted {
		pending += n
	}
	q.mu.Unlock()
	return q.pq.Len() - pending
}
