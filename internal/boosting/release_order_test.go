package boosting

import (
	"testing"

	"repro/internal/abort"
)

// distinctStripes returns keys whose abstract locks live on n distinct
// stripes of table.
func distinctStripes(table *LockTable, n int) ([]int64, []*RWLock) {
	keys := make([]int64, 0, n)
	locks := make([]*RWLock, 0, n)
	seen := make(map[*RWLock]bool)
	for k := int64(0); len(keys) < n; k++ {
		l := table.For(k)
		if seen[l] {
			continue
		}
		seen[l] = true
		keys = append(keys, k)
		locks = append(locks, l)
	}
	return keys, locks
}

// TestTimeoutReleasesPartialLocksInReverse pins the lock-timeout recovery
// path: a transaction that times out acquiring its third abstract lock must
// release the two it already holds, in reverse acquisition order, leaving
// every lock free for the next transaction.
func TestTimeoutReleasesPartialLocksInReverse(t *testing.T) {
	table := NewLockTable(64)
	_, locks := distinctStripes(table, 3)
	lA, lB, lC := locks[0], locks[1], locks[2]

	// A competitor write-holds the third lock for the whole test, so the
	// victim's third acquisition exhausts its spin budget and times out.
	if !lC.tryWrite() {
		t.Fatal("could not pre-acquire the blocking lock")
	}
	defer lC.releaseWrite()

	var released []*RWLock
	releaseHook = func(l *RWLock, _ lockMode) { released = append(released, l) }
	defer func() { releaseHook = nil }()

	tx := &Tx{tel: meter.Local()}
	timedOut := false
	func() {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			sig, ok := p.(abort.Signal)
			if !ok || sig.Reason != abort.Timeout {
				panic(p)
			}
			timedOut = true
			tx.rollback()
		}()
		tx.AcquireWrite(lA)
		tx.AcquireRead(lB)
		tx.AcquireWrite(lC) // blocked: spins out and aborts with Timeout
	}()

	if !timedOut {
		t.Fatal("third acquisition did not time out")
	}
	if len(released) != 2 || released[0] != lB || released[1] != lA {
		t.Fatalf("release order = %v, want [B, A] (reverse acquisition)", released)
	}
	if got := lA.state.Load(); got != 0 {
		t.Fatalf("lock A state = %d after rollback, want 0", got)
	}
	if got := lB.state.Load(); got != 0 {
		t.Fatalf("lock B state = %d after rollback, want 0", got)
	}
	if len(tx.held) != 0 {
		t.Fatalf("tx still tracks %d held locks after rollback", len(tx.held))
	}

	// With the blocker gone, a fresh transaction takes all three locks.
	lC.releaseWrite()
	tx2 := &Tx{tel: meter.Local()}
	tx2.AcquireWrite(lA)
	tx2.AcquireWrite(lB)
	tx2.AcquireWrite(lC)
	tx2.commit()
	lC.tryWrite() // re-hold so the deferred releaseWrite stays balanced
}

// TestPanicDuringPartialLockSetReleasesAll pins the same invariant for the
// failpoint-driven crash: a panic injected while the transaction holds some
// but not all of its abstract locks must release them all in reverse order
// on the way to the caller.
func TestPanicDuringPartialLockSetReleasesAll(t *testing.T) {
	table := NewLockTable(64)
	keys, locks := distinctStripes(table, 3)
	_ = keys

	var released []*RWLock
	releaseHook = func(l *RWLock, _ lockMode) { released = append(released, l) }
	defer func() { releaseHook = nil }()

	sawPanic := false
	func() {
		defer func() {
			if p := recover(); p != nil {
				sawPanic = true
			}
		}()
		_ = AtomicCtx(nil, nil, nil, func(tx *Tx) {
			tx.AcquireWrite(locks[0])
			tx.AcquireWrite(locks[1])
			tx.AcquireWrite(locks[2])
			panic("injected crash with a full partial lock set")
		})
	}()

	if !sawPanic {
		t.Fatal("panic did not reach the caller")
	}
	want := []*RWLock{locks[2], locks[1], locks[0]}
	if len(released) != 3 || released[0] != want[0] || released[1] != want[1] || released[2] != want[2] {
		t.Fatalf("release order = %v, want reverse acquisition %v", released, want)
	}
	for i, l := range locks {
		if got := l.state.Load(); got != 0 {
			t.Fatalf("lock %d state = %d after panic recovery, want 0", i, got)
		}
	}
}
