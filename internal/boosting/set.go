package boosting

// BlackBoxSet is the concurrent set interface the boosted set wraps without
// inspecting — the "black box" discipline of pessimistic boosting. Both
// conc.LazyList and conc.LazySkipList satisfy it.
type BlackBoxSet interface {
	Add(key int64) bool
	Remove(key int64) bool
	Contains(key int64) bool
}

// Set is a pessimistically boosted set: each operation eagerly acquires the
// abstract lock for its key (shared for Contains, exclusive for
// Add/Remove), applies immediately to the underlying concurrent set, and
// registers its inverse for rollback.
type Set struct {
	locks *LockTable
	set   BlackBoxSet
}

// NewSet boosts the given concurrent set with a table of n abstract lock
// stripes.
func NewSet(set BlackBoxSet, n int) *Set {
	return &Set{locks: NewLockTable(n), set: set}
}

// Add inserts key within tx, returning false if present.
func (s *Set) Add(tx *Tx, key int64) bool {
	tx.noteLockKey(boostTraceKey(key))
	tx.AcquireWrite(s.locks.For(key))
	if !s.set.Add(key) {
		return false
	}
	tx.onUndo(s, key, invSetAdd)
	return true
}

// Remove deletes key within tx, returning false if absent.
func (s *Set) Remove(tx *Tx, key int64) bool {
	tx.noteLockKey(boostTraceKey(key))
	tx.AcquireWrite(s.locks.For(key))
	if !s.set.Remove(key) {
		return false
	}
	tx.onUndo(s, key, invSetRemove)
	return true
}

// applyInverse implements inverser for the boosted set.
func (s *Set) applyInverse(key int64, code int8) {
	if code == invSetAdd {
		s.set.Remove(key)
	} else {
		s.set.Add(key)
	}
}

// Contains reports within tx whether key is present. Unlike the lazy set's
// wait-free contains, the boosted version must take the abstract read lock
// to preserve opacity — one of the costs OTB eliminates.
func (s *Set) Contains(tx *Tx, key int64) bool {
	tx.noteLockKey(boostTraceKey(key))
	tx.AcquireRead(s.locks.For(key))
	return s.set.Contains(key)
}

// boostTraceKey maps a set element key to a flight-recorder attribution
// key: positive keys map to themselves; others flip the top bit to stay
// nonzero (0 means unattributed).
func boostTraceKey(key int64) uint64 {
	if key > 0 {
		return uint64(key)
	}
	return uint64(key) ^ (1 << 63)
}
