package boosting

import (
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/abort"
	"repro/internal/conc"
)

func TestBoostedSetSequential(t *testing.T) {
	for name, base := range map[string]BlackBoxSet{
		"list": conc.NewLazyList(),
		"skip": conc.NewLazySkipList(),
	} {
		t.Run(name, func(t *testing.T) {
			s := NewSet(base, 64)
			Atomic(nil, nil, func(tx *Tx) {
				if !s.Add(tx, 1) || !s.Add(tx, 2) {
					t.Error("adds should succeed")
				}
				if s.Add(tx, 1) {
					t.Error("duplicate add should fail")
				}
				if !s.Contains(tx, 2) {
					t.Error("contains should see eager add")
				}
			})
			Atomic(nil, nil, func(tx *Tx) {
				if !s.Remove(tx, 1) || s.Remove(tx, 1) {
					t.Error("remove semantics wrong")
				}
			})
			if !base.Contains(2) || base.Contains(1) {
				t.Error("final state wrong")
			}
		})
	}
}

func TestBoostedSetAbortRollsBack(t *testing.T) {
	base := conc.NewLazyList()
	s := NewSet(base, 64)
	attempts := 0
	Atomic(nil, nil, func(tx *Tx) {
		attempts++
		s.Add(tx, 10)
		s.Remove(tx, 10)
		s.Add(tx, 20)
		if attempts == 1 {
			abort.Retry(abort.Explicit)
		}
	})
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	if !base.Contains(20) {
		t.Fatal("20 should be present after retry commit")
	}
	if !base.Contains(10) {
		// add(10) then remove(10) leaves 10 present only if both replayed;
		// within a committed tx the pair nets to present:false? No: add
		// succeeds then remove succeeds, so 10 ends absent.
		t.Log("10 absent as expected")
	}
	if base.Contains(10) {
		t.Fatal("10 should be absent (added then removed)")
	}
}

// stressIters scales a stress-test iteration count down under -short (the
// CI race job) while keeping full coverage in the default run.
func stressIters(full int) int {
	if testing.Short() {
		return full / 5
	}
	return full
}

func TestBoostedSetPairInvariant(t *testing.T) {
	const (
		pairs   = 16
		offset  = 500
		workers = 6
	)
	txsEach := stressIters(150)
	base := conc.NewLazySkipList()
	s := NewSet(base, 256)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 7))
			for i := 0; i < txsEach; i++ {
				k := int64(rng.IntN(pairs))
				Atomic(nil, nil, func(tx *Tx) {
					if s.Contains(tx, k) {
						s.Remove(tx, k)
						s.Remove(tx, k+offset)
					} else {
						s.Add(tx, k)
						s.Add(tx, k+offset)
					}
				})
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	for k := int64(0); k < pairs; k++ {
		if base.Contains(k) != base.Contains(k+offset) {
			t.Fatalf("pair invariant broken for %d", k)
		}
	}
}

func TestBoostedPQSequential(t *testing.T) {
	q := NewPQ()
	Atomic(nil, nil, func(tx *Tx) {
		q.Add(tx, 5)
		q.Add(tx, 1)
		q.Add(tx, 3)
	})
	var order []int64
	Atomic(nil, nil, func(tx *Tx) {
		for {
			k, ok := q.RemoveMin(tx)
			if !ok {
				break
			}
			order = append(order, k)
		}
	})
	want := []int64{1, 3, 5}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestBoostedPQAbortRestoresQueue(t *testing.T) {
	q := NewPQ()
	Atomic(nil, nil, func(tx *Tx) { q.Add(tx, 1); q.Add(tx, 2) })
	attempts := 0
	Atomic(nil, nil, func(tx *Tx) {
		attempts++
		if k, ok := q.RemoveMin(tx); !ok || k != 1 {
			t.Errorf("RemoveMin = %d,%v; want 1", k, ok)
		}
		q.Add(tx, 0)
		if attempts == 1 {
			abort.Retry(abort.Explicit)
		}
	})
	var order []int64
	Atomic(nil, nil, func(tx *Tx) {
		for {
			k, ok := q.RemoveMin(tx)
			if !ok {
				break
			}
			order = append(order, k)
		}
	})
	want := []int64{0, 2}
	if len(order) != 2 || order[0] != want[0] || order[1] != want[1] {
		t.Fatalf("remaining = %v, want %v", order, want)
	}
}

func TestBoostedPQConcurrentConservation(t *testing.T) {
	const workers = 6
	txsEach := stressIters(100)
	q := NewPQ()
	Atomic(nil, nil, func(tx *Tx) {
		for i := int64(0); i < 50; i++ {
			q.Add(tx, i)
		}
	})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := 0; i < txsEach; i++ {
				v := base*100_000 + int64(i) + 1000
				Atomic(nil, nil, func(tx *Tx) {
					q.Add(tx, v)
					if _, ok := q.RemoveMin(tx); !ok {
						t.Error("unexpected empty queue")
					}
				})
			}
		}(int64(w))
	}
	wg.Wait()
	if got := q.Len(); got != 50 {
		t.Fatalf("Len = %d, want 50", got)
	}
}

func TestLockTableUpgrade(t *testing.T) {
	tbl := NewLockTable(16)
	l := tbl.For(1)
	Atomic(nil, nil, func(tx *Tx) {
		tx.AcquireRead(l)
		tx.AcquireWrite(l) // upgrade must succeed: sole reader
		tx.AcquireWrite(l) // idempotent
		tx.AcquireRead(l)  // read under write hold is a no-op
	})
	if l.state.Load() != 0 {
		t.Fatalf("lock not fully released: state=%d", l.state.Load())
	}
}

func TestLockTableConflictAborts(t *testing.T) {
	tbl := NewLockTable(16)
	l := tbl.For(1)
	// Simulate a foreign write holder.
	if !l.tryWrite() {
		t.Fatal("tryWrite")
	}
	done := make(chan abort.Stats, 1)
	go func() {
		var stats abort.Stats
		Atomic(&stats, nil, func(tx *Tx) {
			tx.AcquireRead(l) // blocks, aborts, retries until released
		})
		done <- stats
	}()
	// Let it spin through at least one timeout-abort, then release.
	for i := 0; i < 3; i++ {
		stats := abort.Stats{}
		_ = stats
	}
	l.releaseWrite()
	stats := <-done
	if stats.Commits != 1 {
		t.Fatalf("commits = %d, want 1", stats.Commits)
	}
}
