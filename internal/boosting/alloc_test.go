package boosting_test

import (
	"testing"

	"repro/internal/race"

	"repro/internal/boosting"
	"repro/internal/conc"
)

// These tests pin the allocation-free boosted commit path (ISSUE 6): a
// steady-state boosted-set write transaction — abstract lock acquisition,
// eager application to the underlying concurrent set, typed undo logging,
// commit, descriptor recycling — must not allocate. The underlying lazy
// list recycles its nodes through epoch-based reclamation, so the
// alternating add/remove below is allocation-free end to end.

const warmupRounds = 200

func runAllocTx(t *testing.T, name string, fn func()) {
	t.Helper()
	if race.Enabled {
		t.Skip("race-mode sync.Pool drops Puts at random; pooled paths cannot be allocation-free")
	}
	for i := 0; i < warmupRounds; i++ {
		fn()
	}
	if allocs := testing.AllocsPerRun(1000, fn); allocs > 0 {
		t.Errorf("%s: %.2f allocs/op on the commit path, want 0", name, allocs)
	}
}

// TestBoostedSetWriteTxAllocFree alternates add and remove of one key so
// every transaction registers a typed undo entry and (on removes) retires a
// lazy-list node through the epoch pipeline.
func TestBoostedSetWriteTxAllocFree(t *testing.T) {
	set := boosting.NewSet(conc.NewLazyList(), 64)
	for k := int64(1); k <= 64; k++ {
		boosting.Atomic(nil, nil, func(tx *boosting.Tx) { set.Add(tx, k) })
	}
	adding := false // first toggle removes an existing key
	key := int64(32)
	fn := func(tx *boosting.Tx) {
		if adding {
			set.Add(tx, key)
		} else {
			set.Remove(tx, key)
		}
	}
	runAllocTx(t, "boosted set write tx", func() {
		boosting.Atomic(nil, nil, fn)
		adding = !adding
	})
}

// TestBoostedSetReadTxAllocFree pins the read-only fast path (contains under
// a shared abstract lock).
func TestBoostedSetReadTxAllocFree(t *testing.T) {
	set := boosting.NewSet(conc.NewLazyList(), 64)
	for k := int64(1); k <= 64; k++ {
		boosting.Atomic(nil, nil, func(tx *boosting.Tx) { set.Add(tx, k) })
	}
	fn := func(tx *boosting.Tx) { set.Contains(tx, 32) }
	runAllocTx(t, "boosted set read tx", func() {
		boosting.Atomic(nil, nil, fn)
	})
}

// BenchmarkBoostedSetWriteTx reports ns/op and allocs/op for the boosted-set
// commit fast path (write transaction, single worker).
func BenchmarkBoostedSetWriteTx(b *testing.B) {
	set := boosting.NewSet(conc.NewLazyList(), 64)
	for k := int64(1); k <= 64; k++ {
		boosting.Atomic(nil, nil, func(tx *boosting.Tx) { set.Add(tx, k) })
	}
	adding := false
	key := int64(32)
	fn := func(tx *boosting.Tx) {
		if adding {
			set.Add(tx, key)
		} else {
			set.Remove(tx, key)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		boosting.Atomic(nil, nil, fn)
		adding = !adding
	}
}
