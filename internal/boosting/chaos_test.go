package boosting

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/abort"
	"repro/internal/chaos"
	"repro/internal/chaos/leak"
	"repro/internal/conc"
	"repro/internal/telemetry"
)

// TestChaosForeignLockTimesOut drives a single hand-built transaction
// against a write-held abstract lock: the acquisition spin must exhaust the
// policy's attempt bound and abort with the timeout reason.
func TestChaosForeignLockTimesOut(t *testing.T) {
	set := NewSet(conc.NewLazyList(), 64)
	l := set.locks.For(42)
	if !l.tryWrite() {
		t.Fatal("could not take foreign write hold")
	}
	defer l.releaseWrite()

	tx := &Tx{}
	chaos.ExpectAbort(t, abort.Timeout, func() { tx.AcquireWrite(l) })
	tx.rollback()
}

// TestChaosTimeoutTelemetryLine holds a foreign lock until the victim
// transaction has recorded at least one timeout abort on the boosting
// meter's dedicated timeout line, then releases it and checks the victim
// commits.
func TestChaosTimeoutTelemetryLine(t *testing.T) {
	telemetry.Enable()
	t.Cleanup(telemetry.Disable)
	before := telemetry.M("PessimisticBoosted").Snapshot().Aborts[abort.Timeout]

	set := NewSet(conc.NewLazyList(), 64)
	l := set.locks.For(7)
	if !l.tryWrite() {
		t.Fatal("could not take foreign write hold")
	}
	released := make(chan struct{})
	go func() {
		defer close(released)
		// Hold until the victim has timed out at least once.
		for telemetry.M("PessimisticBoosted").Snapshot().Aborts[abort.Timeout] == before {
			time.Sleep(100 * time.Microsecond)
		}
		l.releaseWrite()
	}()

	Atomic(nil, nil, func(tx *Tx) { set.Add(tx, 7) })
	<-released

	after := telemetry.M("PessimisticBoosted").Snapshot().Aborts[abort.Timeout]
	if after <= before {
		t.Fatalf("timeout aborts = %d, want > %d", after, before)
	}
	ok := false
	Atomic(nil, nil, func(tx *Tx) { ok = set.Contains(tx, 7) })
	if !ok {
		t.Fatal("victim transaction should have committed its insert")
	}
}

// TestChaosStormConsistency runs a write storm against one boosted set and
// checks the final contents match the committed operations (undo logs must
// have rolled every timed-out attempt back exactly).
func TestChaosStormConsistency(t *testing.T) {
	leak.CheckCleanup(t)
	set := NewSet(conc.NewLazyList(), 8) // few stripes: force lock conflicts
	const workers = 8
	var adds [workers]atomic.Int64
	stop := chaos.Storm(workers, func(w int) {
		key := int64(w) // one key per worker, colliding stripes
		Atomic(nil, nil, func(tx *Tx) {
			if set.Add(tx, key) {
				set.Remove(tx, key)
				set.Add(tx, key)
			}
		})
		adds[w].Add(1)
	})
	// Run until every worker has committed at least once.
	deadline := time.Now().Add(10 * time.Second)
	for w := 0; w < workers; w++ {
		for adds[w].Load() == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	stop()

	for w := 0; w < workers; w++ {
		if adds[w].Load() == 0 {
			t.Errorf("worker %d never committed", w)
		}
		present := false
		Atomic(nil, nil, func(tx *Tx) { present = set.Contains(tx, int64(w)) })
		if !present {
			t.Errorf("key %d should be present after the storm", w)
		}
	}
}
