package telemetry

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of power-of-two latency buckets. Bucket i counts
// durations d (in nanoseconds) with bits.Len64(d) == i, i.e. bucket 0 is
// exactly 0ns, bucket i (i>0) covers [2^(i-1), 2^i). 48 buckets reach
// 2^47 ns ≈ 39 hours, far beyond any transaction here; longer durations
// clamp into the last bucket.
const NumBuckets = 48

// Histogram is a lock-free power-of-two-bucket latency histogram. Observe
// is a single atomic add on the bucket plus one on the running sum; there
// is no lock anywhere, so recording goroutines never wait on readers.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	sum     atomic.Int64 // total observed nanoseconds, for the mean
}

// bucketOf returns the bucket index for a duration of ns nanoseconds.
func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns))
	if b >= NumBuckets {
		return NumBuckets - 1
	}
	return b
}

// BucketLow returns the inclusive lower bound of bucket i in nanoseconds.
func BucketLow(i int) int64 {
	if i <= 0 {
		return 0
	}
	return 1 << (i - 1)
}

// BucketHigh returns the exclusive upper bound of bucket i in nanoseconds.
func BucketHigh(i int) int64 {
	if i <= 0 {
		return 1
	}
	return 1 << i
}

// Observe records one duration of ns nanoseconds.
func (h *Histogram) Observe(ns int64) {
	h.buckets[bucketOf(ns)].Add(1)
	h.sum.Add(ns)
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.sum.Store(0)
}

// Snapshot copies the bucket counts and sum.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Counts[i] = c
		s.Total += c
	}
	s.SumNS = h.sum.Load()
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Counts [NumBuckets]uint64
	Total  uint64
	SumNS  int64
}

// Mean returns the average observed duration (zero if empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Total == 0 {
		return 0
	}
	return time.Duration(s.SumNS / int64(s.Total))
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]): the
// exclusive upper edge of the bucket containing the q-th observation.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Total))
	if rank >= s.Total {
		rank = s.Total - 1
	}
	var seen uint64
	for i, c := range s.Counts {
		seen += c
		if seen > rank {
			return time.Duration(BucketHigh(i))
		}
	}
	return time.Duration(BucketHigh(NumBuckets - 1))
}

// String renders the non-empty buckets compactly, e.g. "[1µs,2µs):1234".
func (s HistogramSnapshot) String() string {
	if s.Total == 0 {
		return "empty"
	}
	out := ""
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("[%v,%v):%d",
			time.Duration(BucketLow(i)), time.Duration(BucketHigh(i)), c)
	}
	return out
}
