package telemetry

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of power-of-two latency buckets. Bucket i counts
// durations d (in nanoseconds) with bits.Len64(d) == i, i.e. bucket 0 is
// exactly 0ns, bucket i (i>0) covers [2^(i-1), 2^i). 48 buckets reach
// 2^47 ns ≈ 39 hours, far beyond any transaction here; longer durations
// clamp into the last bucket.
const NumBuckets = 48

// Histogram is a lock-free power-of-two-bucket latency histogram. Observe
// is a single atomic add on the bucket plus one on the running sum; there
// is no lock anywhere, so recording goroutines never wait on readers.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	sum     atomic.Int64 // total observed nanoseconds, for the mean
	// exemplars holds one recent traced observation per bucket (last
	// writer wins). The two words are stored independently — a torn pair
	// can mismatch duration and trace id by one observation, which is
	// acceptable for an exemplar.
	exemplars [NumBuckets]exemplarSlot
}

type exemplarSlot struct {
	ns    atomic.Int64
	trace atomic.Uint64
}

// Exemplar is one traced observation attached to a histogram bucket, in the
// OpenMetrics exemplar sense: a concrete request to go look at.
type Exemplar struct {
	NS      int64  // the observed duration
	TraceID uint64 // the wire trace id that produced it (0 = none)
}

// bucketOf returns the bucket index for a duration of ns nanoseconds.
func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns))
	if b >= NumBuckets {
		return NumBuckets - 1
	}
	return b
}

// BucketLow returns the inclusive lower bound of bucket i in nanoseconds.
func BucketLow(i int) int64 {
	if i <= 0 {
		return 0
	}
	return 1 << (i - 1)
}

// BucketHigh returns the exclusive upper bound of bucket i in nanoseconds.
func BucketHigh(i int) int64 {
	if i <= 0 {
		return 1
	}
	return 1 << i
}

// Observe records one duration of ns nanoseconds.
func (h *Histogram) Observe(ns int64) {
	h.buckets[bucketOf(ns)].Add(1)
	h.sum.Add(ns)
}

// ObserveEx records one duration and, when traceID is nonzero, stamps it as
// the bucket's exemplar so the OpenMetrics exposition can point a slow
// bucket at a concrete trace.
func (h *Histogram) ObserveEx(ns int64, traceID uint64) {
	b := bucketOf(ns)
	h.buckets[b].Add(1)
	h.sum.Add(ns)
	if traceID != 0 {
		h.exemplars[b].ns.Store(ns)
		h.exemplars[b].trace.Store(traceID)
	}
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
		h.exemplars[i].ns.Store(0)
		h.exemplars[i].trace.Store(0)
	}
	h.sum.Store(0)
}

// Snapshot copies the bucket counts, sum and exemplars.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Counts[i] = c
		s.Total += c
		s.Exemplars[i] = Exemplar{
			NS:      h.exemplars[i].ns.Load(),
			TraceID: h.exemplars[i].trace.Load(),
		}
	}
	s.SumNS = h.sum.Load()
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Counts    [NumBuckets]uint64
	Total     uint64
	SumNS     int64
	Exemplars [NumBuckets]Exemplar
}

// Mean returns the average observed duration (zero if empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Total == 0 {
		return 0
	}
	return time.Duration(s.SumNS / int64(s.Total))
}

// Quantile estimates the q-quantile (q in [0,1]) by locating the bucket
// holding the q-th observation and interpolating linearly within it,
// assuming observations spread uniformly across the bucket. A bucket spans
// [2^(i-1), 2^i), so the previous behaviour — returning the upper edge —
// overstated the quantile by up to 2×; interpolation keeps the estimate
// inside the bucket and exact at the bucket's last observation.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Total))
	if rank >= s.Total {
		rank = s.Total - 1
	}
	var seen uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if seen+c > rank {
			low, high := BucketLow(i), BucketHigh(i)
			pos := rank - seen // 0-based position within this bucket
			return time.Duration(float64(low) +
				float64(high-low)*float64(pos+1)/float64(c))
		}
		seen += c
	}
	return time.Duration(BucketHigh(NumBuckets - 1))
}

// String renders the non-empty buckets compactly, e.g. "[1µs,2µs):1234".
func (s HistogramSnapshot) String() string {
	if s.Total == 0 {
		return "empty"
	}
	out := ""
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("[%v,%v):%d",
			time.Duration(BucketLow(i)), time.Duration(BucketHigh(i)), c)
	}
	return out
}
