package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/abort"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// golden compares got against testdata/<name>, rewriting the file under
// -update. Export formats are consumed by scripts that scrape the table and
// dashboards that read the expvar JSON, so shape changes must be deliberate.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s (run with -update after deliberate changes)\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// histWith places count observations in the bucket covering ns, yielding a
// deterministic snapshot with known quantile edges.
func histWith(ns int64, count uint64) HistogramSnapshot {
	var h HistogramSnapshot
	h.Counts[bucketOf(ns)] = count
	h.Total = count
	h.SumNS = ns * int64(count)
	return h
}

func TestGoldenWriteTable(t *testing.T) {
	snaps := []MeterSnapshot{
		{
			Name: "otb-norec", Policy: "karma",
			Commits: 1200, Retries: 40,
			Aborts: func() (a [abort.NumReasons]uint64) {
				a[abort.Conflict] = 30
				a[abort.LockBusy] = 8
				a[abort.Explicit] = 2
				return
			}(),
			Escalations:   1,
			TxLatency:     histWith(1500, 1200), // [1024,2048) → p50/p99 edge 2.048µs
			CommitLatency: histWith(700, 1200),  // [512,1024) → edge 1.024µs
		},
		{
			Name:    "glock", // default policy renders as "-"
			Commits: 900, Fallbacks: 3,
			TxLatency: histWith(90000, 900),
		},
		{Name: "idle"}, // zero activity: must be omitted entirely
	}
	var buf bytes.Buffer
	WriteTable(&buf, snaps)
	golden(t, "table.golden", buf.Bytes())
}

func TestGoldenVarsJSON(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	m := r.Meter("otb-tl2")
	m.SetPolicySource(func() string { return "backoff" })
	l := m.Local()
	for i := 0; i < 5; i++ {
		l.Commit(0) // zero stamp: count the commit, record no latency
	}
	l.Abort(abort.Conflict)
	l.Abort(abort.Conflict)
	l.Abort(abort.Timeout)
	l.Escalated()
	l.Fallback()
	r.Meter("silent") // no activity: must be omitted

	got, err := json.MarshalIndent(r.Vars(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "vars.golden", append(got, '\n'))
}
