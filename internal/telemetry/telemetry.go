// Package telemetry is the low-overhead statistics subsystem shared by every
// transactional runtime in the repository: commits, aborts broken down by
// abort.Reason, retries, fallbacks, and power-of-two latency histograms for
// commit phases and whole transactions.
//
// Design constraints, in order:
//
//  1. Near-zero cost when disabled. Every runtime is wired unconditionally,
//     so the recording fast path must collapse to one predictable branch (a
//     relaxed load of the registry's enabled flag). The package-level Default
//     registry starts disabled; nil *Meter and nil *Local are also valid
//     no-op recorders, so uninstrumented call sites pay nothing.
//  2. No cross-goroutine contention when enabled. Counters are sharded:
//     each transaction descriptor holds a Local handle bound to one
//     cache-line-padded shard, assigned round-robin at descriptor creation.
//     Descriptors are pooled per-P (sync.Pool), so a shard is effectively
//     goroutine-local while a transaction runs and increments are
//     uncontended atomic adds on a private cache line.
//  3. Readers never stop writers. Snapshot sums the shards with relaxed
//     atomic loads; Reset zeroes them the same way. Both are wait-free with
//     respect to recording.
//
// Typical wiring (see internal/stm/norec for the real thing):
//
//	mtr := telemetry.M("NOrec")          // meter from the Default registry
//	tel := mtr.Local()                   // one per pooled tx descriptor
//	start := tel.Start()
//	... run the retry loop, tel.Abort(reason) on each failed attempt ...
//	tel.Commit(start)                    // count + transaction latency
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/abort"
)

// shardPad pads a shard to two cache lines so adjacent shards never share
// one (the counter block itself is just under one line).
const shardPad = 128

// shard is one cache-line-padded counter block. All fields are updated with
// relaxed atomics by the (usually single) goroutine whose descriptors hold
// the shard, and summed by Snapshot.
type shard struct {
	commits     atomic.Uint64
	retries     atomic.Uint64
	fallbacks   atomic.Uint64
	escalations atomic.Uint64
	aborts      [abort.NumReasons]atomic.Uint64
	_           [shardPad - (4+abort.NumReasons)*8]byte
}

// Meter collects statistics for one transactional runtime (one algorithm).
// Meters are created through a Registry and shared by every instance of the
// algorithm; a nil *Meter is a valid no-op recorder.
type Meter struct {
	name   string
	on     *atomic.Bool // the owning registry's enabled flag
	shards []shard
	next   atomic.Uint32 // round-robin shard assignment for Local()
	policy atomic.Value  // string: contention-management policy label

	txLat     Histogram // whole-transaction latency (committed txs)
	commitLat Histogram // commit-phase latency
}

// Name returns the meter's (algorithm) name.
func (m *Meter) Name() string {
	if m == nil {
		return ""
	}
	return m.name
}

// SetPolicySource attaches a function that names the contention-management
// policy the runtime currently runs under; snapshots resolve it at read
// time, so abort-reason tables always label rows with the live policy even
// after the adaptive tuner or a -cm flag retunes it. Costs nothing on the
// recording fast path.
func (m *Meter) SetPolicySource(f func() string) {
	if m != nil && f != nil {
		m.policy.Store(f)
	}
}

// Policy returns the meter's current contention-management policy label
// ("" when no source was set).
func (m *Meter) Policy() string {
	if m == nil {
		return ""
	}
	f, _ := m.policy.Load().(func() string)
	if f == nil {
		return ""
	}
	return f()
}

// enabled reports whether recording is on; the single predictable branch on
// every hot path.
func (m *Meter) enabled() bool { return m != nil && m.on.Load() }

// Local returns a recording handle bound to one shard of the meter,
// assigned round-robin. Hold one per transaction descriptor (descriptors
// are pooled per-P, so the shard stays effectively goroutine-local). A nil
// meter returns a nil Local, which is a valid no-op recorder.
func (m *Meter) Local() *Local {
	if m == nil {
		return nil
	}
	i := m.next.Add(1) - 1
	return &Local{m: m, s: &m.shards[int(i)%len(m.shards)]}
}

// Local is a shard-bound recording handle. All methods are nil-safe and
// no-ops while the owning registry is disabled.
type Local struct {
	m *Meter
	s *shard
}

// Stamp is a start time captured by Start; the zero Stamp means "telemetry
// was disabled at Start", and the matching observe call does nothing.
type Stamp int64

// Start returns a timestamp for latency recording, or zero when disabled.
func (l *Local) Start() Stamp {
	if l == nil || !l.m.enabled() {
		return 0
	}
	return Stamp(time.Now().UnixNano())
}

// since returns the elapsed nanoseconds for a stamp taken by Start.
func since(s Stamp) int64 {
	d := time.Now().UnixNano() - int64(s)
	if d < 0 {
		return 0
	}
	return d
}

// Commit records one committed transaction and, if start is a live stamp,
// its whole-transaction latency.
func (l *Local) Commit(start Stamp) {
	if l == nil || !l.m.enabled() {
		return
	}
	l.s.commits.Add(1)
	if start != 0 {
		l.m.txLat.Observe(since(start))
	}
}

// CommitPhase records the latency of the commit phase itself (lock,
// validate, publish, release), measured from a Start stamp taken at the
// beginning of commit.
func (l *Local) CommitPhase(start Stamp) {
	if l == nil || start == 0 || !l.m.enabled() {
		return
	}
	l.m.commitLat.Observe(since(start))
}

// Abort records one aborted attempt classified by reason, and the retry it
// implies (every runtime here re-executes after an abort). Canceled and
// Panicked are terminal — the transaction leaves the retry loop — so they
// count as aborts but not retries.
func (l *Local) Abort(r abort.Reason) {
	if l == nil || !l.m.enabled() {
		return
	}
	if r < 0 || r >= abort.NumReasons {
		r = abort.Conflict
	}
	l.s.aborts[r].Add(1)
	if r != abort.Canceled && r != abort.Panicked {
		l.s.retries.Add(1)
	}
}

// Fallback records one fall-through to a slow path (e.g. the hybrid HTM
// giving up on hardware and taking the software fallback).
func (l *Local) Fallback() {
	if l == nil || !l.m.enabled() {
		return
	}
	l.s.fallbacks.Add(1)
}

// Escalated records one transaction that exhausted its retry budget and
// committed in serial mode (the contention manager's guaranteed-progress
// path).
func (l *Local) Escalated() {
	if l == nil || !l.m.enabled() {
		return
	}
	l.s.escalations.Add(1)
}

// MeterSnapshot is a point-in-time copy of a meter's counters.
type MeterSnapshot struct {
	Name        string
	Policy      string // contention-management policy label ("" if unset)
	Commits     uint64
	Retries     uint64
	Fallbacks   uint64
	Escalations uint64
	Aborts      [abort.NumReasons]uint64

	TxLatency     HistogramSnapshot
	CommitLatency HistogramSnapshot
}

// RecoveredPanics returns the count of attempts that unwound with a foreign
// panic and were rolled back by the runtime's recovery path (the panic was
// then re-raised to the caller).
func (s MeterSnapshot) RecoveredPanics() uint64 { return s.Aborts[abort.Panicked] }

// Canceled returns the count of transactions abandoned because their
// context was cancelled or its deadline expired.
func (s MeterSnapshot) Canceled() uint64 { return s.Aborts[abort.Canceled] }

// TotalAborts sums the per-reason abort counts.
func (s MeterSnapshot) TotalAborts() uint64 {
	var t uint64
	for _, a := range s.Aborts {
		t += a
	}
	return t
}

// AbortRate returns aborted attempts over all attempts, in [0,1]; zero when
// no attempts were recorded.
func (s MeterSnapshot) AbortRate() float64 {
	a := s.TotalAborts()
	if a+s.Commits == 0 {
		return 0
	}
	return float64(a) / float64(a+s.Commits)
}

// Snapshot sums the meter's shards. It is wait-free and may run concurrently
// with recording; the result is a consistent-enough sum for reporting (each
// counter is individually exact at some instant during the call).
func (m *Meter) Snapshot() MeterSnapshot {
	if m == nil {
		return MeterSnapshot{}
	}
	out := MeterSnapshot{Name: m.name, Policy: m.Policy()}
	for i := range m.shards {
		sh := &m.shards[i]
		out.Commits += sh.commits.Load()
		out.Retries += sh.retries.Load()
		out.Fallbacks += sh.fallbacks.Load()
		out.Escalations += sh.escalations.Load()
		for r := range sh.aborts {
			out.Aborts[r] += sh.aborts[r].Load()
		}
	}
	out.TxLatency = m.txLat.Snapshot()
	out.CommitLatency = m.commitLat.Snapshot()
	return out
}

// Reset zeroes all counters and histograms.
func (m *Meter) Reset() {
	if m == nil {
		return
	}
	for i := range m.shards {
		sh := &m.shards[i]
		sh.commits.Store(0)
		sh.retries.Store(0)
		sh.fallbacks.Store(0)
		sh.escalations.Store(0)
		for r := range sh.aborts {
			sh.aborts[r].Store(0)
		}
	}
	m.txLat.Reset()
	m.commitLat.Reset()
}

// defaultShards is the shard count for new meters: enough to spread the
// descriptor pools of a many-core run, small enough that Snapshot stays
// cheap.
const defaultShards = 32

// reasonNames is the abort-reason name list, computed once at package init
// so snapshot/export paths never re-derive it per call.
var reasonNames = func() [abort.NumReasons]string {
	var out [abort.NumReasons]string
	for r := abort.Reason(0); r < abort.NumReasons; r++ {
		out[r] = r.String()
	}
	return out
}()

// ReasonName returns the precomputed name of an abort reason (equivalent to
// r.String(), without the per-call formatting work).
func ReasonName(r abort.Reason) string {
	if r < 0 || r >= abort.NumReasons {
		return "unknown"
	}
	return reasonNames[r]
}

// Registry is a named collection of meters sharing one enabled flag.
// The zero value is not usable; call NewRegistry.
type Registry struct {
	on     atomic.Bool
	mu     sync.Mutex
	meters map[string]*Meter
	sorted []*Meter // meters ordered by name, maintained at insertion
}

// NewRegistry creates an empty, disabled registry.
func NewRegistry() *Registry {
	return &Registry{meters: make(map[string]*Meter)}
}

// Meter returns the registry's meter with the given name, creating it on
// first use. Meters are shared: every algorithm instance with the same name
// records into the same meter. A nil registry returns a nil (no-op) meter.
func (r *Registry) Meter(name string) *Meter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.meters[name]
	if !ok {
		m = &Meter{name: name, on: &r.on, shards: make([]shard, defaultShards)}
		r.meters[name] = m
		// Keep the meter list sorted at insertion (meter creation is rare
		// and one-time) so Snapshot never sorts on the read path.
		i := sort.Search(len(r.sorted), func(i int) bool { return r.sorted[i].name >= name })
		r.sorted = append(r.sorted, nil)
		copy(r.sorted[i+1:], r.sorted[i:])
		r.sorted[i] = m
	}
	return m
}

// SetEnabled turns recording on or off for every meter of the registry.
func (r *Registry) SetEnabled(on bool) {
	if r != nil {
		r.on.Store(on)
	}
}

// Enabled reports whether the registry is recording.
func (r *Registry) Enabled() bool { return r != nil && r.on.Load() }

// meterList returns the registry's meters ordered by name. The order is
// maintained at insertion, so this is a copy, not a sort.
func (r *Registry) meterList() []*Meter {
	r.mu.Lock()
	out := make([]*Meter, len(r.sorted))
	copy(out, r.sorted)
	r.mu.Unlock()
	return out
}

// Snapshot returns a snapshot of every meter, sorted by name. Meters with
// no recorded activity are included (callers filter if they care). The name
// order comes from the registration-time sorted list; Snapshot itself does
// no per-call sorting (guarded by BenchmarkRegistrySnapshot and
// TestSnapshotAllocs).
func (r *Registry) Snapshot() []MeterSnapshot {
	if r == nil {
		return nil
	}
	meters := r.meterList()
	out := make([]MeterSnapshot, 0, len(meters))
	for _, m := range meters {
		out = append(out, m.Snapshot())
	}
	return out
}

// Reset zeroes every meter of the registry.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	for _, m := range r.meterList() {
		m.Reset()
	}
}

// Default is the package-level registry every runtime wires into. It starts
// disabled, making all wired call sites no-ops until Enable.
var Default = NewRegistry()

// M returns the Default registry's meter with the given name.
func M(name string) *Meter { return Default.Meter(name) }

// Enable turns on recording in the Default registry.
func Enable() { Default.SetEnabled(true) }

// Disable turns off recording in the Default registry.
func Disable() { Default.SetEnabled(false) }
