package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/abort"
)

// OpenMetrics text exposition (https://openmetrics.io, the format Prometheus
// scrapes). The renderer follows the spec's shape rules so standard tooling
// ingests it directly:
//
//   - a family is announced by "# TYPE name type" (and optional HELP) before
//     its samples, and all its samples stay contiguous;
//   - counter families expose "name_total" samples;
//   - histogram families expose cumulative "name_bucket{le=...}" samples
//     ending in le="+Inf", plus "name_count" and "name_sum", with durations
//     converted to seconds;
//   - buckets carry OpenMetrics exemplars ("# {trace_id=...} value") when a
//     traced observation landed there, linking a slow bucket to one concrete
//     wire trace id;
//   - the exposition ends with exactly one "# EOF" line.

// OpenMetricsContentType is the HTTP Content-Type of WriteOpenMetrics output.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// omMu guards omSections; omSections holds the extra family emitters other
// packages (wal, txnet) register, mirroring RegisterSection for WriteTable.
var (
	omMu       sync.Mutex
	omSections []func(*OM)
)

// RegisterOpenMetrics appends a family emitter to every WriteOpenMetrics
// exposition. Emitters must write complete, self-contained families through
// the OM helper and must not write "# EOF"; family names must be unique
// across all emitters.
func RegisterOpenMetrics(f func(*OM)) {
	if f == nil {
		return
	}
	omMu.Lock()
	omSections = append(omSections, f)
	omMu.Unlock()
}

// OM renders OpenMetrics families onto one writer. It carries the first
// write error so emitters can chain calls without checking each one.
type OM struct {
	w   io.Writer
	err error
}

// NewOM wraps w for OpenMetrics family rendering.
func NewOM(w io.Writer) *OM { return &OM{w: w} }

// Err returns the first write error, if any.
func (o *OM) Err() error { return o.err }

func (o *OM) printf(format string, args ...any) {
	if o.err == nil {
		_, o.err = fmt.Fprintf(o.w, format, args...)
	}
}

// Family announces a metric family: its TYPE and, when help is non-empty,
// HELP metadata. typ is one of "counter", "gauge", "histogram". For
// counters, name is the family name without the _total suffix.
func (o *OM) Family(name, typ, help string) {
	o.printf("# TYPE %s %s\n", name, typ)
	if help != "" {
		o.printf("# HELP %s %s\n", name, help)
	}
}

// Total writes one counter sample: name_total{labels} v.
func (o *OM) Total(name, labels string, v uint64) {
	o.sample(name+"_total", labels, strconv.FormatUint(v, 10))
}

// Value writes one plain sample (gauge families).
func (o *OM) Value(name, labels string, v float64) {
	o.sample(name, labels, formatFloat(v))
}

func (o *OM) sample(name, labels, value string) {
	if labels == "" {
		o.printf("%s %s\n", name, value)
		return
	}
	o.printf("%s{%s} %s\n", name, labels, value)
}

// Histogram writes the samples of one histogram family member: cumulative
// le-buckets in seconds (non-empty buckets plus +Inf), exemplars where a
// traced observation exists, then _count and _sum.
func (o *OM) Histogram(name, labels string, h HistogramSnapshot) {
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		c := h.Counts[i]
		if c == 0 {
			continue
		}
		cum += c
		line := name + "_bucket{" + joinLabels(labels, `le="`+formatSeconds(BucketHigh(i))+`"`) +
			"} " + strconv.FormatUint(cum, 10)
		if ex := h.Exemplars[i]; ex.TraceID != 0 {
			line += fmt.Sprintf(" # {trace_id=\"%016x\"} %s", ex.TraceID, formatSeconds(ex.NS))
		}
		o.printf("%s\n", line)
	}
	o.printf("%s_bucket{%s} %d\n", name, joinLabels(labels, `le="+Inf"`), h.Total)
	o.sample(name+"_count", labels, strconv.FormatUint(h.Total, 10))
	o.sample(name+"_sum", labels, formatSeconds(h.SumNS))
}

// joinLabels concatenates two label lists, either possibly empty.
func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	return a + "," + b
}

// formatSeconds renders nanoseconds as an OpenMetrics float in seconds.
func formatSeconds(ns int64) string {
	return formatFloat(float64(ns) / 1e9)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// EscapeLabel escapes a label value per the OpenMetrics text format.
func EscapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// meterCounterFamilies drives the per-meter counter exposition: one family
// per counter, one sample per active meter.
var meterCounterFamilies = []struct {
	name, help string
	value      func(MeterSnapshot) uint64
}{
	{"tx_commits", "Committed transactions.", func(s MeterSnapshot) uint64 { return s.Commits }},
	{"tx_retries", "Attempt retries after aborts.", func(s MeterSnapshot) uint64 { return s.Retries }},
	{"tx_fallbacks", "Slow-path fallbacks.", func(s MeterSnapshot) uint64 { return s.Fallbacks }},
	{"tx_escalations", "Serial-mode escalations.", func(s MeterSnapshot) uint64 { return s.Escalations }},
}

// WriteOpenMetrics renders the meter snapshots, the process gauge table and
// every registered package section in OpenMetrics text format, terminated
// by "# EOF". Meters with no recorded activity are skipped, like Vars.
func WriteOpenMetrics(w io.Writer, snaps []MeterSnapshot) error {
	om := NewOM(w)
	active := snaps[:0:0]
	for _, s := range snaps {
		if s.Commits != 0 || s.TotalAborts() != 0 || s.Fallbacks != 0 {
			active = append(active, s)
		}
	}

	if len(active) > 0 {
		for _, fam := range meterCounterFamilies {
			om.Family(fam.name, "counter", fam.help)
			for _, s := range active {
				om.Total(fam.name, algLabel(s), fam.value(s))
			}
		}
		om.Family("tx_aborts", "counter", "Aborted attempts by reason.")
		for _, s := range active {
			for r := abort.Reason(0); r < abort.NumReasons; r++ {
				if s.Aborts[r] != 0 {
					om.Total("tx_aborts",
						joinLabels(algLabel(s), `reason="`+EscapeLabel(ReasonName(r))+`"`),
						s.Aborts[r])
				}
			}
		}
		om.Family("tx_latency_seconds", "histogram", "Whole-transaction latency of committed transactions.")
		for _, s := range active {
			om.Histogram("tx_latency_seconds", algLabel(s), s.TxLatency)
		}
		om.Family("tx_commit_latency_seconds", "histogram", "Commit-phase latency.")
		for _, s := range active {
			om.Histogram("tx_commit_latency_seconds", algLabel(s), s.CommitLatency)
		}
	}

	if vars := GaugeVars(); len(vars) > 0 {
		names := make([]string, 0, len(vars))
		for name := range vars {
			names = append(names, name)
		}
		sort.Strings(names)
		om.Family("runtime_gauge", "gauge", "Named instantaneous values (see the name label).")
		for _, name := range names {
			om.Value("runtime_gauge", `name="`+EscapeLabel(name)+`"`, float64(vars[name]))
		}
	}

	omMu.Lock()
	extra := omSections
	omMu.Unlock()
	for _, f := range extra {
		f(om)
	}

	om.printf("# EOF\n")
	return om.Err()
}

func algLabel(s MeterSnapshot) string {
	return `algorithm="` + EscapeLabel(s.Name) + `"`
}
