package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"text/tabwriter"
)

// Gauge is a named instantaneous value — the "current level" complement to
// the meters' monotone counters (live version-chain length, queue depth,
// pool occupancy). Unlike meters, gauges are not sharded: they are written
// by one maintenance goroutine (a GC sweep, a sampler), not by transaction
// hot paths, so a single padded atomic is enough. A nil *Gauge is a valid
// no-op recorder.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Name returns the gauge's name.
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// gaugeMu guards the package gauge table. Gauges are process-global (like
// meter names): every caller of G with the same name shares one gauge.
var (
	gaugeMu sync.Mutex
	gauges  = map[string]*Gauge{}
)

// G returns the process-wide gauge with the given name, creating it on
// first use.
func G(name string) *Gauge {
	gaugeMu.Lock()
	defer gaugeMu.Unlock()
	g, ok := gauges[name]
	if !ok {
		g = &Gauge{name: name}
		gauges[name] = g
	}
	return g
}

// GaugeVars returns a snapshot of every gauge, in the map shape published
// over expvar.
func GaugeVars() map[string]int64 {
	gaugeMu.Lock()
	defer gaugeMu.Unlock()
	out := make(map[string]int64, len(gauges))
	for name, g := range gauges {
		out[name] = g.Load()
	}
	return out
}

// WriteGauges renders the gauges as an aligned two-column table, sorted by
// name. It writes nothing when no gauge exists, so report pipelines can call
// it unconditionally after WriteTable.
func WriteGauges(w io.Writer) {
	vars := GaugeVars()
	if len(vars) == 0 {
		return
	}
	names := make([]string, 0, len(vars))
	for name := range vars {
		names = append(names, name)
	}
	sort.Strings(names)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "gauge\tvalue\n")
	for _, name := range names {
		fmt.Fprintf(tw, "%s\t%d\n", name, vars[name])
	}
	tw.Flush()
}

var publishGaugesOnce sync.Once

// PublishGauges registers the gauge table under the expvar name "gauges",
// alongside Publish's "transactions". Safe to call multiple times.
func PublishGauges() {
	publishGaugesOnce.Do(func() {
		expvar.Publish("gauges", expvar.Func(func() any {
			return GaugeVars()
		}))
	})
}
