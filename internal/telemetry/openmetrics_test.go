package telemetry

import (
	"bytes"
	"testing"

	"repro/internal/abort"
	"repro/internal/omtext"
)

// swapGauges empties the process gauge table for the test and restores it
// afterwards, so the exposition is deterministic regardless of what other
// tests touched.
func swapGauges(t *testing.T) {
	t.Helper()
	gaugeMu.Lock()
	saved := gauges
	gauges = map[string]*Gauge{}
	gaugeMu.Unlock()
	t.Cleanup(func() {
		gaugeMu.Lock()
		gauges = saved
		gaugeMu.Unlock()
	})
}

// histWithExemplar is histWith plus a trace-id exemplar on the bucket.
func histWithExemplar(ns int64, count uint64, traceID uint64) HistogramSnapshot {
	h := histWith(ns, count)
	h.Exemplars[bucketOf(ns)] = Exemplar{NS: ns, TraceID: traceID}
	return h
}

func openMetricsFixture() []MeterSnapshot {
	return []MeterSnapshot{
		{
			Name: "otb-norec", Policy: "karma",
			Commits: 1200, Retries: 40,
			Aborts: func() (a [abort.NumReasons]uint64) {
				a[abort.Conflict] = 30
				a[abort.LockBusy] = 8
				a[abort.Explicit] = 2
				return
			}(),
			Escalations:   1,
			TxLatency:     histWithExemplar(1500, 1200, 0xdeadbeef),
			CommitLatency: histWith(700, 1200),
		},
		{
			Name:    "glock",
			Commits: 900, Fallbacks: 3,
			TxLatency: histWith(90000, 900),
		},
		{Name: "idle"}, // zero activity: must be omitted entirely
	}
}

func TestGoldenOpenMetrics(t *testing.T) {
	swapGauges(t)
	G("versions.live").Set(77)
	G(`weird"name`).Set(1)

	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, openMetricsFixture()); err != nil {
		t.Fatalf("WriteOpenMetrics: %v", err)
	}
	golden(t, "openmetrics.golden", buf.Bytes())
}

// TestOpenMetricsValidates runs the exposition through the vendored
// OpenMetrics parser — the same structural validation the CI scrape job
// applies to a live /metrics endpoint.
func TestOpenMetricsValidates(t *testing.T) {
	swapGauges(t)
	G("versions.live").Set(77)

	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, openMetricsFixture()); err != nil {
		t.Fatalf("WriteOpenMetrics: %v", err)
	}
	fams, err := omtext.Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.Bytes())
	}

	c := omtext.Find(fams, "tx_commits")
	if c == nil || c.Type != "counter" {
		t.Fatalf("tx_commits family: %+v", c)
	}
	if s := c.Sample("tx_commits_total", map[string]string{"algorithm": "otb-norec"}); s == nil || s.Value != 1200 {
		t.Fatalf("tx_commits sample: %+v", s)
	}
	if s := c.Sample("tx_commits_total", map[string]string{"algorithm": "idle"}); s != nil {
		t.Fatalf("idle meter leaked into exposition: %+v", s)
	}

	a := omtext.Find(fams, "tx_aborts")
	if a == nil || a.Sample("tx_aborts_total", map[string]string{"algorithm": "otb-norec", "reason": "conflict"}) == nil {
		t.Fatalf("tx_aborts by reason missing: %+v", a)
	}

	h := omtext.Find(fams, "tx_latency_seconds")
	if h == nil || h.Type != "histogram" {
		t.Fatalf("tx_latency_seconds family: %+v", h)
	}
	var sawExemplar bool
	for _, s := range h.Samples {
		if s.Exemplar != nil {
			if s.Exemplar.Labels["trace_id"] != "00000000deadbeef" {
				t.Fatalf("exemplar trace id: %+v", s.Exemplar)
			}
			sawExemplar = true
		}
	}
	if !sawExemplar {
		t.Fatalf("no exemplar survived on tx_latency_seconds")
	}

	g := omtext.Find(fams, "runtime_gauge")
	if g == nil || g.Sample("runtime_gauge", map[string]string{"name": "versions.live"}) == nil {
		t.Fatalf("runtime_gauge missing: %+v", g)
	}
}
