package telemetry

import (
	"context"
	"expvar"
	"fmt"
	"io"
	"runtime/pprof"
	"sync"
	"text/tabwriter"

	"repro/internal/abort"
)

// Vars returns the registry's snapshot in the map shape published over
// expvar: meter name → counters, abort-reason breakdown, and latency
// summaries (mean / p50 / p99 in nanoseconds).
func (r *Registry) Vars() map[string]any {
	out := make(map[string]any)
	out["enabled"] = r.Enabled()
	for _, s := range r.Snapshot() {
		if s.Commits == 0 && s.TotalAborts() == 0 && s.Fallbacks == 0 {
			continue
		}
		aborts := make(map[string]uint64, abort.NumReasons)
		for rr := abort.Reason(0); rr < abort.NumReasons; rr++ {
			if s.Aborts[rr] != 0 {
				aborts[ReasonName(rr)] = s.Aborts[rr]
			}
		}
		out[s.Name] = map[string]any{
			"commits":        s.Commits,
			"aborts":         aborts,
			"retries":        s.Retries,
			"fallbacks":      s.Fallbacks,
			"escalations":    s.Escalations,
			"cm_policy":      s.Policy,
			"abort_rate":     s.AbortRate(),
			"tx_latency":     latencyVars(s.TxLatency),
			"commit_latency": latencyVars(s.CommitLatency),
		}
	}
	return out
}

func latencyVars(h HistogramSnapshot) map[string]any {
	return map[string]any{
		"count":   h.Total,
		"mean_ns": int64(h.Mean()),
		"p50_ns":  int64(h.Quantile(0.50)),
		"p99_ns":  int64(h.Quantile(0.99)),
	}
}

var publishOnce sync.Once

// Publish registers the Default registry under the expvar name
// "transactions", making snapshots available on /debug/vars for any process
// that serves expvar. Safe to call multiple times.
func Publish() {
	publishOnce.Do(func() {
		expvar.Publish("transactions", expvar.Func(func() any {
			return Default.Vars()
		}))
	})
}

// Do runs f with the runtime/pprof label {"algorithm": name} when the
// registry is enabled, so CPU profiles taken during a run can be split per
// algorithm. Labels are inherited by goroutines started inside f, which
// covers the bench harness's worker goroutines. When disabled, f runs
// unlabeled with no overhead.
func (r *Registry) Do(name string, f func()) {
	if !r.Enabled() {
		f()
		return
	}
	pprof.Do(context.Background(), pprof.Labels("algorithm", name), func(context.Context) { f() })
}

// sectionsMu guards sections; sections holds extra table renderers appended
// after the abort-reason table (see RegisterSection).
var (
	sectionsMu sync.Mutex
	sections   []func(io.Writer)
)

// RegisterSection appends a renderer to every WriteTable output. It exists so
// observability layers above telemetry (the trace package's conflict
// attribution table) can extend the shared report without telemetry importing
// them. Renderers that have nothing to say should write nothing.
func RegisterSection(f func(io.Writer)) {
	if f == nil {
		return
	}
	sectionsMu.Lock()
	sections = append(sections, f)
	sectionsMu.Unlock()
}

// WriteTable renders the snapshots as an aligned abort-reason table, one row
// per meter with recorded activity:
//
//	algorithm   cm   commits   aborts   rate   conflict   lock-busy   invalidated   explicit   timeout   fallbacks   escalated   p50   p99
//
// It is shared by cmd/stmbench, cmd/reproduce and the bench figure drivers.
// Registered sections (RegisterSection) are appended after the table.
func WriteTable(w io.Writer, snaps []MeterSnapshot) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "algorithm\tcm\tcommits\taborts\trate")
	for r := abort.Reason(0); r < abort.NumReasons; r++ {
		fmt.Fprintf(tw, "\t%s", ReasonName(r))
	}
	fmt.Fprint(tw, "\tfallbacks\tescalated\ttx-p50\ttx-p99\tcommit-p50\n")
	for _, s := range snaps {
		if s.Commits == 0 && s.TotalAborts() == 0 && s.Fallbacks == 0 {
			continue
		}
		policy := s.Policy
		if policy == "" {
			policy = "-"
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.3f", s.Name, policy, s.Commits, s.TotalAborts(), s.AbortRate())
		for r := abort.Reason(0); r < abort.NumReasons; r++ {
			fmt.Fprintf(tw, "\t%d", s.Aborts[r])
		}
		fmt.Fprintf(tw, "\t%d\t%d\t%v\t%v\t%v\n",
			s.Fallbacks, s.Escalations, s.TxLatency.Quantile(0.50), s.TxLatency.Quantile(0.99),
			s.CommitLatency.Quantile(0.50))
	}
	tw.Flush()
	sectionsMu.Lock()
	extra := sections
	sectionsMu.Unlock()
	for _, f := range extra {
		f(w)
	}
}
