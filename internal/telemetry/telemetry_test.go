package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/abort"
)

// TestConcurrentIncrements checks that counts recorded from many goroutines
// through independent Local handles sum exactly (run under -race in CI).
func TestConcurrentIncrements(t *testing.T) {
	reg := NewRegistry()
	reg.SetEnabled(true)
	m := reg.Meter("alg")

	const goroutines = 8
	const perG = 10_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l := m.Local()
			for i := 0; i < perG; i++ {
				l.Commit(0)
				l.Abort(abort.Conflict)
				if i%2 == 0 {
					l.Abort(abort.LockBusy)
				}
				if i%4 == 0 {
					l.Fallback()
				}
			}
		}()
	}
	wg.Wait()

	s := m.Snapshot()
	if s.Commits != goroutines*perG {
		t.Errorf("commits = %d, want %d", s.Commits, goroutines*perG)
	}
	if got := s.Aborts[abort.Conflict]; got != goroutines*perG {
		t.Errorf("conflict aborts = %d, want %d", got, goroutines*perG)
	}
	if got := s.Aborts[abort.LockBusy]; got != goroutines*perG/2 {
		t.Errorf("lock-busy aborts = %d, want %d", got, goroutines*perG/2)
	}
	if s.Fallbacks != goroutines*perG/4 {
		t.Errorf("fallbacks = %d, want %d", s.Fallbacks, goroutines*perG/4)
	}
	if s.Retries != s.TotalAborts() {
		t.Errorf("retries = %d, want = total aborts %d", s.Retries, s.TotalAborts())
	}
	wantRate := float64(s.TotalAborts()) / float64(s.TotalAborts()+s.Commits)
	if s.AbortRate() != wantRate {
		t.Errorf("abort rate = %v, want %v", s.AbortRate(), wantRate)
	}
}

// TestSnapshotVsReset runs recorders, snapshotters and resetters
// concurrently: every snapshot must be bounded by what was actually
// recorded, and recording must never be lost outside a reset window.
func TestSnapshotVsReset(t *testing.T) {
	reg := NewRegistry()
	reg.SetEnabled(true)
	m := reg.Meter("alg")

	const perG = 5_000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Recorders.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l := m.Local()
			for i := 0; i < perG; i++ {
				l.Commit(0)
			}
		}()
	}
	// Concurrent snapshots: totals must never exceed the maximum possible.
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if s := m.Snapshot(); s.Commits > 4*perG {
				t.Errorf("snapshot over-counts: %d > %d", s.Commits, 4*perG)
				return
			}
		}
	}()
	// A concurrent reset must not corrupt anything (it zeroes shards one by
	// one; later snapshots stay bounded).
	m.Reset()
	wg.Wait()
	close(stop)
	<-snapDone

	// After quiescence: reset then record a known count; it must be exact.
	m.Reset()
	l := m.Local()
	for i := 0; i < 123; i++ {
		l.Commit(0)
	}
	if s := m.Snapshot(); s.Commits != 123 {
		t.Errorf("post-reset commits = %d, want 123", s.Commits)
	}
}

// TestHistogramBuckets pins the power-of-two bucket boundaries.
func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		ns     int64
		bucket int
	}{
		{0, 0}, {-5, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4},
		{1023, 10}, {1024, 11},
		{1 << 46, 47},
		{1 << 47, NumBuckets - 1}, // clamped
		{1<<62 + 1, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.bucket)
		}
	}
	// Bucket bounds are consistent with bucketOf: low is inside, high is in
	// the next bucket.
	for i := 1; i < NumBuckets-1; i++ {
		if got := bucketOf(BucketLow(i)); got != i {
			t.Errorf("bucketOf(BucketLow(%d)) = %d", i, got)
		}
		if got := bucketOf(BucketHigh(i)); got != i+1 {
			t.Errorf("bucketOf(BucketHigh(%d)) = %d, want %d", i, got, i+1)
		}
	}

	var h Histogram
	h.Observe(3)
	h.Observe(3)
	h.Observe(1000)
	s := h.Snapshot()
	if s.Total != 3 || s.Counts[2] != 2 || s.Counts[10] != 1 {
		t.Errorf("unexpected histogram: total=%d counts[2]=%d counts[10]=%d",
			s.Total, s.Counts[2], s.Counts[10])
	}
	if s.Mean() != time.Duration((3+3+1000)/3) {
		t.Errorf("mean = %v", s.Mean())
	}
	if q := s.Quantile(0.5); q != time.Duration(4) {
		t.Errorf("p50 = %v, want 4ns (upper edge of [2,4))", q)
	}
	if q := s.Quantile(1.0); q != time.Duration(1024) {
		t.Errorf("p100 = %v, want 1.024µs", q)
	}
	h.Reset()
	if s := h.Snapshot(); s.Total != 0 || s.SumNS != 0 {
		t.Errorf("reset left total=%d sum=%d", s.Total, s.SumNS)
	}
}

// TestDisabledNoAlloc checks the no-op paths allocate nothing: the default
// disabled registry, and nil meters/locals.
func TestDisabledNoAlloc(t *testing.T) {
	reg := NewRegistry() // disabled
	l := reg.Meter("alg").Local()
	var nilLocal *Local
	var nilMeter *Meter

	paths := map[string]func(){
		"disabled": func() {
			s := l.Start()
			l.Abort(abort.Conflict)
			l.CommitPhase(s)
			l.Commit(s)
			l.Fallback()
		},
		"nil-local": func() {
			s := nilLocal.Start()
			nilLocal.Abort(abort.Conflict)
			nilLocal.Commit(s)
		},
		"nil-meter-snapshot": func() {
			_ = nilMeter.Snapshot()
			nilMeter.Reset()
		},
	}
	for name, f := range paths {
		if n := testing.AllocsPerRun(1000, f); n != 0 {
			t.Errorf("%s path allocates %v per op, want 0", name, n)
		}
	}
	if s := l.Start(); s != 0 {
		t.Errorf("disabled Start = %d, want 0", s)
	}
}

// TestEnableDisableMidstream checks a Local created while disabled records
// once the registry is enabled, and stops when disabled again.
func TestEnableDisableMidstream(t *testing.T) {
	reg := NewRegistry()
	m := reg.Meter("alg")
	l := m.Local()
	l.Commit(0)
	if s := m.Snapshot(); s.Commits != 0 {
		t.Fatalf("disabled commit recorded: %d", s.Commits)
	}
	reg.SetEnabled(true)
	l.Commit(0)
	start := l.Start()
	if start == 0 {
		t.Fatal("enabled Start returned 0")
	}
	l.Commit(start)
	reg.SetEnabled(false)
	l.Commit(0)
	s := m.Snapshot()
	if s.Commits != 2 {
		t.Errorf("commits = %d, want 2", s.Commits)
	}
	if s.TxLatency.Total != 1 {
		t.Errorf("latency observations = %d, want 1", s.TxLatency.Total)
	}
}

// TestRegistry covers meter identity, snapshot ordering, Vars and the
// rendered table.
func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	reg.SetEnabled(true)
	if reg.Meter("b") != reg.Meter("b") {
		t.Error("same name returned distinct meters")
	}
	reg.Meter("b").Local().Commit(0)
	reg.Meter("a").Local().Abort(abort.Invalidated)

	snaps := reg.Snapshot()
	if len(snaps) != 2 || snaps[0].Name != "a" || snaps[1].Name != "b" {
		t.Fatalf("snapshot order: %+v", snaps)
	}

	vars := reg.Vars()
	if vars["enabled"] != true {
		t.Error("vars missing enabled=true")
	}
	bv, ok := vars["b"].(map[string]any)
	if !ok || bv["commits"] != uint64(1) {
		t.Errorf("vars[b] = %#v", vars["b"])
	}
	av, ok := vars["a"].(map[string]any)
	if !ok {
		t.Fatalf("vars[a] = %#v", vars["a"])
	}
	if ab, ok := av["aborts"].(map[string]uint64); !ok || ab["invalidated"] != 1 {
		t.Errorf("vars[a][aborts] = %#v", av["aborts"])
	}

	var sb strings.Builder
	WriteTable(&sb, snaps)
	out := sb.String()
	for _, want := range []string{"algorithm", "invalidated", "a", "b"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}

	reg.Reset()
	for _, s := range reg.Snapshot() {
		if s.Commits != 0 || s.TotalAborts() != 0 {
			t.Errorf("reset left counts in %s: %+v", s.Name, s)
		}
	}
}

// TestOutOfRangeReason checks a corrupt reason folds into conflict instead
// of indexing out of bounds.
func TestOutOfRangeReason(t *testing.T) {
	reg := NewRegistry()
	reg.SetEnabled(true)
	m := reg.Meter("alg")
	l := m.Local()
	l.Abort(abort.Reason(99))
	l.Abort(abort.Reason(-1))
	if s := m.Snapshot(); s.Aborts[abort.Conflict] != 2 {
		t.Errorf("out-of-range reasons not folded: %+v", s.Aborts)
	}
}
