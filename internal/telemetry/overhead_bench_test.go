package telemetry_test

import (
	"math/rand/v2"
	"sync/atomic"
	"testing"

	"repro/internal/abort"
	"repro/internal/bench"
	"repro/internal/otb"
	"repro/internal/telemetry"
)

// benchOTBListSet runs the OTB list-set microbenchmark (the paper's primary
// workload) with the Default registry in the given state. Comparing the
// disabled and enabled variants bounds the telemetry overhead; the ISSUE's
// acceptance bar is < 2% for the disabled (default) state, where every wired
// call site reduces to one predictable branch.
func benchOTBListSet(b *testing.B, enabled bool) {
	telemetry.Default.SetEnabled(enabled)
	defer func() {
		telemetry.Default.SetEnabled(false)
		telemetry.Default.Reset()
	}()

	wl := bench.SetWorkload{InitialSize: 512, KeyRange: 512 * 8, WritePct: 20, OpsPerTx: 1}
	d := bench.NewOTBDriver(otb.NewListSet())
	defer d.Stop()
	wl.Populate(d)

	var worker atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := int(worker.Add(1))
		gen := wl.NewSetWorker(id)
		rng := rand.New(rand.NewPCG(uint64(id), 99))
		for pb.Next() {
			d.RunTx(gen(rng))
		}
	})
}

func BenchmarkOTBListSetTelemetryDisabled(b *testing.B) { benchOTBListSet(b, false) }
func BenchmarkOTBListSetTelemetryEnabled(b *testing.B)  { benchOTBListSet(b, true) }

// BenchmarkDisabledRecord measures the raw cost of one fully wired
// record sequence (Start/Abort/Commit) against a disabled registry — the
// per-transaction tax every runtime pays when telemetry is off.
func BenchmarkDisabledRecord(b *testing.B) {
	reg := telemetry.NewRegistry()
	l := reg.Meter("alg").Local()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := l.Start()
		l.Abort(abort.Conflict)
		l.Commit(s)
	}
}

// BenchmarkEnabledRecord is the same sequence with recording on (one shard,
// uncontended), bounding the enabled fast-path cost.
func BenchmarkEnabledRecord(b *testing.B) {
	reg := telemetry.NewRegistry()
	reg.SetEnabled(true)
	l := reg.Meter("alg").Local()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := l.Start()
		l.Abort(abort.Conflict)
		l.Commit(s)
	}
}
