package telemetry

import (
	"testing"

	"repro/internal/abort"
)

// BenchmarkRegistrySnapshot guards the Snapshot read path: the meter list is
// pre-sorted at registration, so a snapshot is a copy + shard sum with no
// per-call sorting or name formatting.
func BenchmarkRegistrySnapshot(b *testing.B) {
	r := NewRegistry()
	r.SetEnabled(true)
	for _, name := range []string{"NOrec", "TL2", "OTB-list", "OTB-skip", "TML", "RingSW"} {
		l := r.Meter(name).Local()
		l.Commit(0)
		l.Abort(abort.Conflict)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(r.Snapshot()) != 6 {
			b.Fatal("lost a meter")
		}
	}
}

// TestSnapshotAllocs pins the allocation count of Registry.Snapshot: one
// for the meter-list copy, one for the snapshot slice, and one per meter for
// the two histogram snapshots' bucket copies. A regression that reintroduces
// per-call sorting closures or name formatting shows up here.
func TestSnapshotAllocs(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	const meters = 4
	for _, name := range []string{"a", "b", "c", "d"} {
		r.Meter(name).Local().Commit(0)
	}
	got := testing.AllocsPerRun(100, func() {
		if len(r.Snapshot()) != meters {
			t.Fatal("lost a meter")
		}
	})
	// meter-list copy + snapshot slice + 2 histogram bucket copies per meter.
	const max = 2 + 2*meters
	if got > max {
		t.Fatalf("Registry.Snapshot allocates %v times per call, want <= %d", got, max)
	}
}

// TestSnapshotSorted verifies registration order does not leak into snapshot
// order now that the sort happens at insertion.
func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zeta", "alpha", "mid", "beta"} {
		r.Meter(name)
	}
	snaps := r.Snapshot()
	want := []string{"alpha", "beta", "mid", "zeta"}
	if len(snaps) != len(want) {
		t.Fatalf("got %d meters, want %d", len(snaps), len(want))
	}
	for i, s := range snaps {
		if s.Name != want[i] {
			t.Fatalf("snapshot[%d] = %q, want %q", i, s.Name, want[i])
		}
	}
}

// TestReasonName checks the precomputed table matches the String method.
func TestReasonName(t *testing.T) {
	for rr := abort.Reason(0); rr < abort.NumReasons; rr++ {
		if ReasonName(rr) != rr.String() {
			t.Fatalf("ReasonName(%d) = %q, want %q", rr, ReasonName(rr), rr.String())
		}
	}
	if ReasonName(abort.NumReasons) != "unknown" || ReasonName(-1) != "unknown" {
		t.Fatal("out-of-range reasons should name as unknown")
	}
}
