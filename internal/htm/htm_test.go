package htm_test

import (
	"sync"
	"testing"

	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/stm"
)

func TestSmallTransactionsCommitInHardware(t *testing.T) {
	tm := htm.New(htm.Options{})
	c := mem.NewCell(0)
	for i := 0; i < 100; i++ {
		tm.Atomic(func(tx stm.Tx) { tx.Write(c, tx.Read(c)+1) })
	}
	if c.Load() != 100 {
		t.Fatalf("counter = %d, want 100", c.Load())
	}
	if tm.HWCommits() != 100 || tm.SWCommits() != 0 {
		t.Fatalf("hw=%d sw=%d; uncontended small txns must all commit in hardware",
			tm.HWCommits(), tm.SWCommits())
	}
}

func TestCapacityFallsBackToSoftware(t *testing.T) {
	tm := htm.New(htm.Options{ReadCap: 8, WriteCap: 4})
	cells := make([]*mem.Cell, 32)
	for i := range cells {
		cells[i] = mem.NewCell(1)
	}
	tm.Atomic(func(tx stm.Tx) {
		var sum uint64
		for _, c := range cells { // 32 reads > ReadCap 8
			sum += tx.Read(c)
		}
		tx.Write(cells[0], sum)
	})
	if tm.SWCommits() != 1 {
		t.Fatalf("sw commits = %d, want 1 (capacity overflow)", tm.SWCommits())
	}
	if tm.HWAborts(htm.Capacity) == 0 {
		t.Fatal("expected a capacity abort")
	}
	if cells[0].Load() != 32 {
		t.Fatalf("cells[0] = %d, want 32", cells[0].Load())
	}
}

func TestWriteCapacityFallsBack(t *testing.T) {
	tm := htm.New(htm.Options{WriteCap: 4})
	cells := make([]*mem.Cell, 16)
	for i := range cells {
		cells[i] = mem.NewCell(0)
	}
	tm.Atomic(func(tx stm.Tx) {
		for i, c := range cells {
			tx.Write(c, uint64(i+1))
		}
	})
	if tm.SWCommits() != 1 {
		t.Fatalf("sw commits = %d, want 1", tm.SWCommits())
	}
	for i, c := range cells {
		if c.Load() != uint64(i+1) {
			t.Fatalf("cells[%d] = %d", i, c.Load())
		}
	}
}

func TestHybridConservation(t *testing.T) {
	tm := htm.New(htm.Options{ReadCap: 8, WriteCap: 4})
	const accounts = 12
	const initial = 100
	cells := make([]*mem.Cell, accounts)
	for i := range cells {
		cells[i] = mem.NewCell(initial)
	}
	const workers = 6
	const each = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				from := (seed + i) % accounts
				to := (seed*7 + i*3 + 1) % accounts
				if from == to {
					to = (to + 1) % accounts
				}
				tm.Atomic(func(tx stm.Tx) {
					a := tx.Read(cells[from])
					b := tx.Read(cells[to])
					if a == 0 {
						return
					}
					tx.Write(cells[from], a-1)
					tx.Write(cells[to], b+1)
				})
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for _, c := range cells {
		total += c.Load()
	}
	if total != accounts*initial {
		t.Fatalf("total = %d, want %d", total, accounts*initial)
	}
	if tm.HWCommits()+tm.SWCommits() != workers*each {
		t.Fatalf("hw+sw = %d, want %d", tm.HWCommits()+tm.SWCommits(), workers*each)
	}
	t.Logf("hardware: %d, software: %d, conflicts: %d",
		tm.HWCommits(), tm.SWCommits(), tm.HWAborts(htm.Conflict))
}

func TestHardwareSoftwareMutualAtomicity(t *testing.T) {
	// Small (hardware-eligible) and large (software-bound) transactions
	// update the same invariant pair; no execution may tear it.
	tm := htm.New(htm.Options{ReadCap: 4, WriteCap: 2})
	a, b := mem.NewCell(0), mem.NewCell(0)
	pad := make([]*mem.Cell, 16)
	for i := range pad {
		pad[i] = mem.NewCell(0)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // hardware-sized writer
		defer wg.Done()
		for i := uint64(1); ; i += 2 {
			select {
			case <-stop:
				return
			default:
			}
			tm.Atomic(func(tx stm.Tx) {
				tx.Write(a, i)
				tx.Write(b, i)
			})
		}
	}()
	go func() { // software-sized writer (footprint exceeds the caps)
		defer wg.Done()
		for i := uint64(2); ; i += 2 {
			select {
			case <-stop:
				return
			default:
			}
			tm.Atomic(func(tx stm.Tx) {
				var sum uint64
				for _, p := range pad {
					sum += tx.Read(p)
				}
				tx.Write(a, i+sum)
				tx.Write(b, i+sum)
				for _, p := range pad {
					tx.Write(p, 0)
				}
			})
		}
	}()
	for i := 0; i < 2000; i++ {
		tm.Atomic(func(tx stm.Tx) {
			va, vb := tx.Read(a), tx.Read(b)
			if va != vb {
				t.Errorf("torn read across paths: a=%d b=%d", va, vb)
			}
		})
	}
	close(stop)
	wg.Wait()
}

func TestAlgorithmInterface(t *testing.T) {
	var alg stm.Algorithm = htm.New(htm.Options{})
	if alg.Name() != "HybridHTM" {
		t.Fatalf("Name = %q", alg.Name())
	}
	alg.Stop()
}
