// Package htm emulates a best-effort hardware transactional memory in the
// style of Intel TSX, and builds the hybrid TM of the paper's Section 7.1.1
// on top of it.
//
// Real HTM cannot be expressed in portable Go, so the emulation preserves
// the programming model rather than the mechanism: hardware transactions
// have a bounded read/write footprint (capacity aborts, like TSX's
// L1-bounded buffers), abort with a reason code on conflict, may abort
// spuriously (best-effort: no progress guarantee), and subscribe to the
// software path's lock so hardware and software transactions are mutually
// atomic. Conflicts are detected value-based at a short commit arbitration
// point, the emulation's stand-in for cache-coherence conflict detection.
package htm

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/abort"
	"repro/internal/chaos/failpoint"
	"repro/internal/cm"
	"repro/internal/mem"
	"repro/internal/spin"
	"repro/internal/stm"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Failpoints on the hybrid commit paths.
var (
	// fpHWCommit fires at the end of a hardware attempt, before commit
	// arbitration opens; nothing is held.
	fpHWCommit = failpoint.New("htm.hw.commit")
	// fpSWLocked fires on the software fallback with the clock held, before
	// the redo log is published; recovery restores the pre-lock timestamp.
	fpSWLocked = failpoint.New("htm.sw.locked")
)

// AbortCode classifies why a hardware transaction failed.
type AbortCode int

// Hardware abort codes (mirroring TSX's abort reasons).
const (
	// Conflict: another transaction committed over this one's footprint.
	Conflict AbortCode = iota
	// Capacity: the read or write footprint exceeded the hardware bound.
	Capacity
	// LockSubscription: the software fallback held the lock.
	LockSubscription
)

// String returns the abort code's name.
func (c AbortCode) String() string {
	switch c {
	case Conflict:
		return "conflict"
	case Capacity:
		return "capacity"
	case LockSubscription:
		return "lock-subscription"
	default:
		return "unknown"
	}
}

// Default hardware footprint bounds (words). TSX is bounded by L1; these
// defaults are deliberately small so capacity fallbacks are exercised.
const (
	DefaultReadCap  = 128
	DefaultWriteCap = 32
)

// Options configure a hybrid TM instance.
type Options struct {
	// ReadCap / WriteCap bound the hardware footprint (0 = defaults).
	ReadCap, WriteCap int
	// Retries is how many hardware attempts precede the software fallback
	// (0 = 3, the usual TSX retry policy).
	Retries int
}

// hwAbort carries an AbortCode through the emulated transaction's unwind.
type hwAbort struct{ code AbortCode }

// TM is a hybrid transactional memory: transactions run in the emulated
// HTM first and fall back to an integrated NOrec-style software path after
// repeated hardware aborts. Hardware commits subscribe to the software
// clock, so the two paths serialize correctly against each other.
type TM struct {
	clock    spin.SeqLock // shared by hardware commits and software path
	readCap  int
	writeCap int
	retries  int
	ctr      spin.Counters
	cmgr     *cm.Manager
	stats    struct {
		hwCommits atomic.Uint64
		swCommits atomic.Uint64
		hwAborts  [3]atomic.Uint64 // by AbortCode
	}
	pool sync.Pool
}

// New creates a hybrid TM.
func New(opts Options) *TM {
	t := &TM{
		readCap:  opts.ReadCap,
		writeCap: opts.WriteCap,
		retries:  opts.Retries,
	}
	if t.readCap == 0 {
		t.readCap = DefaultReadCap
	}
	if t.writeCap == 0 {
		t.writeCap = DefaultWriteCap
	}
	if t.retries == 0 {
		t.retries = 3
	}
	mtr := telemetry.M("HybridHTM")
	mtr.SetPolicySource(func() string { return cm.Or(t.cmgr).Policy().Name() })
	src := trace.S("HybridHTM")
	t.pool.New = func() any { return &htx{tm: t, tel: mtr.Local(), tr: src.Local()} }
	return t
}

// SetManager installs the contention manager transactions run under (nil
// means the shared cm.Default manager). It must be set before any
// transaction runs. The hardware retry loop is a client of the same
// machinery: attempts pause while any transaction runs in serial mode, the
// policy paces retries, and a software fallback that exhausts its own retry
// budget escalates like every other runtime.
func (t *TM) SetManager(m *cm.Manager) { t.cmgr = m }

// Name implements stm.Algorithm.
func (t *TM) Name() string { return "HybridHTM" }

// Counters implements stm.Algorithm.
func (t *TM) Counters() *spin.Counters { return &t.ctr }

// Stop implements stm.Algorithm; there are no background goroutines.
func (t *TM) Stop() {}

// HWCommits and SWCommits report where transactions committed; the ratio
// is the hybrid's effectiveness measure.
func (t *TM) HWCommits() uint64 { return t.stats.hwCommits.Load() }

// SWCommits reports commits that took the software fallback.
func (t *TM) SWCommits() uint64 { return t.stats.swCommits.Load() }

// HWAborts reports hardware aborts by code.
func (t *TM) HWAborts(code AbortCode) uint64 { return t.stats.hwAborts[code].Load() }

// htx is a transaction descriptor shared by the hardware and software
// paths (the software path simply ignores the capacity bounds).
type htx struct {
	tm         *TM
	hardware   bool
	holdsClock bool // software path holds the clock (commit in progress)
	snapshot   uint64
	reads      []stm.ReadEntry
	writes     stm.WriteSet
	tel        *telemetry.Local
	tr         *trace.Local
}

// rollback releases the clock if the software path died holding it (an
// armed failpoint between lock and publish); nothing was published, so the
// pre-lock timestamp is restored.
func (x *htx) rollback() {
	if x.holdsClock {
		x.holdsClock = false
		x.tm.clock.UnlockUnchanged()
	}
}

// Atomic implements stm.Algorithm: up to retries hardware attempts, then
// the software fallback (which cannot fail permanently).
func (t *TM) Atomic(fn func(stm.Tx)) { t.AtomicCtx(nil, fn) }

// AtomicCtx implements stm.AlgorithmCtx: Atomic observing ctx.
// Cancellation is checked before each hardware attempt and inside the
// software fallback's retry loop; the descriptor returns to its pool even
// when fn (or an armed failpoint) panics.
func (t *TM) AtomicCtx(ctx context.Context, fn func(stm.Tx)) error {
	x := t.pool.Get().(*htx)
	defer func() {
		x.reads = x.reads[:0]
		x.writes.Reset()
		t.pool.Put(x)
	}()
	start := x.tel.Start()
	x.tr.TxStart()
	defer x.tr.TxEnd()
	m := cm.Or(t.cmgr)
	for attempt := 0; attempt < t.retries; attempt++ {
		if ctx != nil && ctx.Err() != nil {
			x.tr.Abort(abort.Canceled)
			x.tel.Abort(abort.Canceled)
			return ctx.Err()
		}
		// Serial-mode subscription: like the fallback-lock subscription,
		// hardware attempts stand aside while any transaction runs serially.
		if ctx != nil {
			if err := m.PauseCtx(ctx); err != nil {
				x.tr.Abort(abort.Canceled)
				x.tel.Abort(abort.Canceled)
				return err
			}
		} else {
			m.Pause()
		}
		x.tr.HWAttempt(attempt + 1)
		code, ok := t.tryHardware(x, fn)
		if ok {
			t.stats.hwCommits.Add(1)
			x.tel.Commit(start)
			return nil
		}
		t.stats.hwAborts[code].Add(1)
		// Hardware aborts are conflicts from telemetry's viewpoint: the
		// lock-subscription case is a busy fallback lock.
		if code == LockSubscription {
			x.tr.Abort(abort.LockBusy)
			x.tel.Abort(abort.LockBusy)
		} else {
			x.tr.Abort(abort.Conflict)
			x.tel.Abort(abort.Conflict)
		}
		if code == Capacity {
			break // a bigger footprint will not fit next time either
		}
		m.Policy().Wait(attempt+1, abort.Conflict)
	}
	x.tr.Fallback()
	x.tel.Fallback()
	escalated, err := t.software(ctx, x, fn, m)
	if escalated {
		x.tr.Escalated()
		x.tel.Escalated()
	}
	if err != nil {
		return err
	}
	t.stats.swCommits.Add(1)
	x.tel.Commit(start)
	return nil
}

// tryHardware runs one emulated hardware attempt.
func (t *TM) tryHardware(x *htx, fn func(stm.Tx)) (code AbortCode, ok bool) {
	x.hardware = true
	x.reads = x.reads[:0]
	x.writes.Reset()
	// Lock subscription: a hardware transaction cannot start while the
	// software path holds the clock.
	start := t.clock.Load()
	if spin.IsLocked(start) {
		return LockSubscription, false
	}
	x.snapshot = start
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		if ha, isHW := p.(hwAbort); isHW {
			code, ok = ha.code, false
			return
		}
		if _, isRetry := p.(abort.Signal); isRetry {
			// An explicit software retry inside a hardware attempt aborts
			// the hardware transaction like any other conflict.
			code, ok = Conflict, false
			return
		}
		panic(p)
	}()
	fn(x)
	fpHWCommit.Hit()
	// Commit arbitration: a brief exclusive window standing in for the
	// cache-coherence commit point.
	if !t.clock.TryLock(x.snapshot) {
		return Conflict, false
	}
	for i := range x.reads {
		if x.reads[i].Cell.Load() != x.reads[i].Val {
			t.clock.UnlockUnchanged()
			return Conflict, false
		}
	}
	x.writes.Publish()
	t.clock.Unlock()
	return 0, true
}

// software runs the NOrec-style fallback to completion, reporting whether
// it had to escalate to serial mode.
func (t *TM) software(ctx context.Context, x *htx, fn func(stm.Tx), m *cm.Manager) (bool, error) {
	x.hardware = false
	return abort.RunPolicyCtx(ctx, nil, m,
		func() {
			x.reads = x.reads[:0]
			x.writes.Reset()
			x.snapshot = t.clock.WaitUnlocked(&t.ctr)
			x.tr.AttemptStart()
		},
		func() {
			fn(x)
			x.tr.CommitBegin()
			x.swCommit()
			x.tr.CommitEnd()
		},
		func(r abort.Reason) {
			x.rollback()
			x.tr.Abort(r)
			if r == abort.Canceled || r == abort.Panicked {
				x.tel.Abort(r)
			}
		},
	)
}

// Read implements stm.Tx for both paths.
func (x *htx) Read(c *mem.Cell) uint64 {
	if v, ok := x.writes.Get(c); ok {
		return v
	}
	if x.hardware {
		if len(x.reads) >= x.tm.readCap {
			panic(hwAbort{Capacity})
		}
		v := c.Load()
		// Eager conflict subscription: any clock movement aborts the
		// hardware transaction immediately (as a coherence event would).
		if x.tm.clock.Load() != x.snapshot {
			panic(hwAbort{Conflict})
		}
		x.reads = append(x.reads, stm.ReadEntry{Cell: c, Val: v})
		return v
	}
	v := c.Load()
	for x.snapshot != x.tm.clock.Load() {
		x.snapshot = x.validate()
		v = c.Load()
	}
	x.reads = append(x.reads, stm.ReadEntry{Cell: c, Val: v})
	return v
}

// Write implements stm.Tx for both paths.
func (x *htx) Write(c *mem.Cell, v uint64) {
	if x.hardware && x.writes.Len() >= x.tm.writeCap {
		if _, seen := x.writes.Get(c); !seen {
			panic(hwAbort{Capacity})
		}
	}
	x.writes.Put(c, v)
}

// validate is the software path's value-based validation.
func (x *htx) validate() uint64 {
	var b spin.Backoff
	for {
		ts := x.tm.clock.Load()
		if spin.IsLocked(ts) {
			x.tm.ctr.IncSpin()
			b.Wait()
			continue
		}
		for i := range x.reads {
			if x.reads[i].Cell.Load() != x.reads[i].Val {
				x.tr.ValidateFail(x.reads[i].Cell.ID())
				abort.Retry(abort.Conflict)
			}
		}
		if ts == x.tm.clock.Load() {
			return ts
		}
	}
}

// swCommit publishes the software write set under the shared clock.
func (x *htx) swCommit() {
	if x.writes.Len() == 0 {
		return
	}
	for !x.tm.clock.TryLock(x.snapshot) {
		x.tm.ctr.IncCAS()
		x.snapshot = x.validate()
	}
	x.holdsClock = true
	fpSWLocked.Hit()
	x.writes.Publish()
	x.tm.clock.Unlock()
	x.holdsClock = false
}

var _ stm.Algorithm = (*TM)(nil)
