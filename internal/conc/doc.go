// Package conc implements the highly concurrent, non-transactional data
// structures the paper builds on: the lazy linked-list set and lazy
// skip-list set of Heller et al. / Herlihy et al., a lock-based binary-heap
// priority queue, and a skip-list priority queue.
//
// These play two roles in the reproduction:
//   - they are the "Lazy" series of Figures 3.3–3.5 (the non-transactional
//     upper bound OTB is measured against), and
//   - pessimistic transactional boosting (internal/boosting) wraps them as
//     black boxes, exactly as Herlihy & Koskinen's methodology prescribes.
package conc
