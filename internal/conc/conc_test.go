package conc

import (
	"math/rand/v2"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

// set abstracts the two lazy sets for shared tests.
type set interface {
	Add(int64) bool
	Remove(int64) bool
	Contains(int64) bool
	Len() int
	Keys() []int64
}

func sets() map[string]func() set {
	return map[string]func() set{
		"LazyList":     func() set { return NewLazyList() },
		"LazySkipList": func() set { return NewLazySkipList() },
	}
}

func TestSetSequential(t *testing.T) {
	for name, mk := range sets() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			if !s.Add(3) || !s.Add(1) || !s.Add(2) {
				t.Fatal("adds should succeed")
			}
			if s.Add(2) {
				t.Fatal("duplicate add should fail")
			}
			if !s.Contains(2) || s.Contains(9) {
				t.Fatal("contains wrong")
			}
			if !s.Remove(2) || s.Remove(2) {
				t.Fatal("remove semantics wrong")
			}
			want := []int64{1, 3}
			got := s.Keys()
			if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
				t.Fatalf("Keys = %v, want %v", got, want)
			}
		})
	}
}

func TestSetMatchesModel(t *testing.T) {
	for name, mk := range sets() {
		t.Run(name, func(t *testing.T) {
			f := func(ops []uint16) bool {
				s := mk()
				model := map[int64]bool{}
				for _, op := range ops {
					key := int64(op % 128)
					switch (op / 128) % 3 {
					case 0:
						if s.Add(key) != !model[key] {
							return false
						}
						model[key] = true
					case 1:
						if s.Remove(key) != model[key] {
							return false
						}
						delete(model, key)
					default:
						if s.Contains(key) != model[key] {
							return false
						}
					}
				}
				return s.Len() == len(model)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// stressIters scales a stress-test iteration count down under -short (the
// CI race job) while keeping full coverage in the default run.
func stressIters(full int) int {
	if testing.Short() {
		return full / 5
	}
	return full
}

func TestSetConcurrentDisjoint(t *testing.T) {
	for name, mk := range sets() {
		t.Run(name, func(t *testing.T) {
			const workers = 8
			each := int64(stressIters(200))
			s := mk()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(base int64) {
					defer wg.Done()
					for i := int64(0); i < each; i++ {
						if !s.Add(base*each + i) {
							t.Errorf("Add failed")
						}
					}
				}(int64(w))
			}
			wg.Wait()
			if got := s.Len(); int64(got) != workers*each {
				t.Fatalf("Len = %d, want %d", got, workers*each)
			}
		})
	}
}

func TestSetConcurrentMixed(t *testing.T) {
	for name, mk := range sets() {
		t.Run(name, func(t *testing.T) {
			const workers = 8
			const keyRange = 64
			opsEach := stressIters(500)
			s := mk()
			var adds, removes [workers]int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					rng := rand.New(rand.NewPCG(uint64(id+1), 42))
					for i := 0; i < opsEach; i++ {
						key := int64(rng.IntN(keyRange))
						switch rng.IntN(3) {
						case 0:
							if s.Add(key) {
								adds[id]++
							}
						case 1:
							if s.Remove(key) {
								removes[id]++
							}
						default:
							s.Contains(key)
						}
					}
				}(w)
			}
			wg.Wait()
			var totalAdds, totalRemoves int64
			for w := 0; w < workers; w++ {
				totalAdds += adds[w]
				totalRemoves += removes[w]
			}
			if got := int64(s.Len()); got != totalAdds-totalRemoves {
				t.Fatalf("Len = %d, want adds-removes = %d", got, totalAdds-totalRemoves)
			}
		})
	}
}

func TestHeapPQOrdering(t *testing.T) {
	q := NewHeapPQ()
	in := []int64{5, 3, 8, 1, 9, 2, 2}
	for _, k := range in {
		q.Add(k)
	}
	sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
	for _, want := range in {
		got, ok := q.RemoveMin()
		if !ok || got != want {
			t.Fatalf("RemoveMin = %d,%v; want %d", got, ok, want)
		}
	}
	if _, ok := q.RemoveMin(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestSeqHeapProperty(t *testing.T) {
	f := func(keys []int64) bool {
		var h SeqHeap
		for _, k := range keys {
			h.Add(k)
		}
		sorted := append([]int64(nil), keys...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, want := range sorted {
			got, ok := h.RemoveMin()
			if !ok || got != want {
				return false
			}
		}
		_, ok := h.RemoveMin()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeqHeapRemoveOne(t *testing.T) {
	var h SeqHeap
	for _, k := range []int64{4, 4, 2, 7} {
		h.Add(k)
	}
	if !h.RemoveOne(4) {
		t.Fatal("RemoveOne(4) should succeed")
	}
	if h.RemoveOne(99) {
		t.Fatal("RemoveOne(99) should fail")
	}
	var out []int64
	for {
		k, ok := h.RemoveMin()
		if !ok {
			break
		}
		out = append(out, k)
	}
	want := []int64{2, 4, 7}
	if len(out) != 3 || out[0] != want[0] || out[1] != want[1] || out[2] != want[2] {
		t.Fatalf("remaining = %v, want %v", out, want)
	}
}

func TestSkipPQConcurrent(t *testing.T) {
	total := int64(stressIters(500))
	q := NewSkipPQ()
	for i := int64(1); i <= total; i++ {
		q.Add(i)
	}
	var mu sync.Mutex
	seen := map[int64]bool{}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k, ok := q.RemoveMin()
				if !ok {
					return
				}
				mu.Lock()
				if seen[k] {
					t.Errorf("key %d dequeued twice", k)
				}
				seen[k] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if int64(len(seen)) != total {
		t.Fatalf("dequeued %d keys, want %d", len(seen), total)
	}
}

func TestHeapPQConcurrent(t *testing.T) {
	const workers = 8
	each := int64(stressIters(300))
	q := NewHeapPQ()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < each; i++ {
				q.Add(base*each + i)
			}
		}(int64(w))
	}
	wg.Wait()
	if got := q.Len(); int64(got) != workers*each {
		t.Fatalf("Len = %d, want %d", got, workers*each)
	}
	prev := int64(-1)
	for {
		k, ok := q.RemoveMin()
		if !ok {
			break
		}
		if k < prev {
			t.Fatalf("heap order violated: %d after %d", k, prev)
		}
		prev = k
	}
}
