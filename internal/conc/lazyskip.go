package conc

import (
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"repro/internal/spin"
)

// MaxLevel is the number of skip-list levels (supports ~2^20 elements with
// p=1/2 towers).
const MaxLevel = 20

// skipNode is one tower of a LazySkipList. A node is logically in the set
// once fullyLinked is true and marked is false.
type skipNode struct {
	key         int64
	next        [MaxLevel]atomic.Pointer[skipNode]
	topLevel    int
	marked      atomic.Bool
	fullyLinked atomic.Bool
	mu          sync.Mutex
}

// LazySkipList is the lazy (optimistic) skip-list set of Herlihy, Lev,
// Luchangco & Shavit: unmonitored probabilistic search, per-node locking of
// the predecessor towers with post-lock validation, and a wait-free
// Contains.
type LazySkipList struct {
	head *skipNode
}

// NewLazySkipList creates an empty set.
func NewLazySkipList() *LazySkipList {
	tail := &skipNode{key: math.MaxInt64, topLevel: MaxLevel - 1}
	tail.fullyLinked.Store(true)
	head := &skipNode{key: math.MinInt64, topLevel: MaxLevel - 1}
	for i := range head.next {
		head.next[i].Store(tail)
	}
	head.fullyLinked.Store(true)
	return &LazySkipList{head: head}
}

// randomLevel draws a tower height with geometric distribution p=1/2.
func randomLevel() int {
	lvl := 0
	for lvl < MaxLevel-1 && rand.Uint64()&1 == 1 {
		lvl++
	}
	return lvl
}

// find fills preds/succs with the per-level neighbours of key and returns
// the highest level at which key was found, or -1.
func (s *LazySkipList) find(key int64, preds, succs *[MaxLevel]*skipNode) int {
	found := -1
	pred := s.head
	for level := MaxLevel - 1; level >= 0; level-- {
		curr := pred.next[level].Load()
		for curr.key < key {
			pred = curr
			curr = pred.next[level].Load()
		}
		if found == -1 && curr.key == key {
			found = level
		}
		preds[level] = pred
		succs[level] = curr
	}
	return found
}

// Add inserts key, returning false if it was already present.
func (s *LazySkipList) Add(key int64) bool {
	topLevel := randomLevel()
	var preds, succs [MaxLevel]*skipNode
	var b spin.Backoff
	for {
		if found := s.find(key, &preds, &succs); found != -1 {
			n := succs[found]
			if !n.marked.Load() {
				for !n.fullyLinked.Load() {
					b.Wait()
				}
				return false
			}
			b.Wait() // marked victim still linked: retry
			continue
		}
		highest, prevPred, valid := -1, (*skipNode)(nil), true
		for level := 0; valid && level <= topLevel; level++ {
			pred, succ := preds[level], succs[level]
			if pred != prevPred {
				pred.mu.Lock()
				highest = level
				prevPred = pred
			}
			valid = !pred.marked.Load() && !succ.marked.Load() &&
				pred.next[level].Load() == succ
		}
		if !valid {
			unlockPreds(&preds, highest)
			b.Wait()
			continue
		}
		n := &skipNode{key: key, topLevel: topLevel}
		for level := 0; level <= topLevel; level++ {
			n.next[level].Store(succs[level])
		}
		for level := 0; level <= topLevel; level++ {
			preds[level].next[level].Store(n)
		}
		n.fullyLinked.Store(true)
		unlockPreds(&preds, highest)
		return true
	}
}

// Remove deletes key, returning false if it was absent.
func (s *LazySkipList) Remove(key int64) bool {
	var preds, succs [MaxLevel]*skipNode
	var victim *skipNode
	isMarked := false
	topLevel := -1
	var b spin.Backoff
	for {
		found := s.find(key, &preds, &succs)
		if found != -1 {
			victim = succs[found]
		}
		if !isMarked {
			if found == -1 || !victim.fullyLinked.Load() ||
				victim.marked.Load() || victim.topLevel != found {
				return false
			}
			topLevel = victim.topLevel
			victim.mu.Lock()
			if victim.marked.Load() {
				victim.mu.Unlock()
				return false
			}
			victim.marked.Store(true)
			isMarked = true
		}
		highest, prevPred, valid := -1, (*skipNode)(nil), true
		for level := 0; valid && level <= topLevel; level++ {
			pred := preds[level]
			if pred != prevPred {
				pred.mu.Lock()
				highest = level
				prevPred = pred
			}
			valid = !pred.marked.Load() && pred.next[level].Load() == victim
		}
		if !valid {
			unlockPreds(&preds, highest)
			b.Wait()
			continue
		}
		for level := topLevel; level >= 0; level-- {
			preds[level].next[level].Store(victim.next[level].Load())
		}
		victim.mu.Unlock()
		unlockPreds(&preds, highest)
		return true
	}
}

// unlockPreds releases the distinct predecessor locks up to level highest.
func unlockPreds(preds *[MaxLevel]*skipNode, highest int) {
	var prev *skipNode
	for level := 0; level <= highest; level++ {
		if preds[level] != prev {
			preds[level].mu.Unlock()
			prev = preds[level]
		}
	}
}

// Contains reports whether key is present. It is wait-free.
func (s *LazySkipList) Contains(key int64) bool {
	var preds, succs [MaxLevel]*skipNode
	found := s.find(key, &preds, &succs)
	return found != -1 &&
		succs[found].fullyLinked.Load() && !succs[found].marked.Load()
}

// Min returns the smallest key in the set, or false if empty. It is the
// building block of the skip-list priority queue.
func (s *LazySkipList) Min() (int64, bool) {
	for curr := s.head.next[0].Load(); curr.key != math.MaxInt64; curr = curr.next[0].Load() {
		if curr.fullyLinked.Load() && !curr.marked.Load() {
			return curr.key, true
		}
	}
	return 0, false
}

// Len counts the present elements (tests and reporting only).
func (s *LazySkipList) Len() int {
	n := 0
	for curr := s.head.next[0].Load(); curr.key != math.MaxInt64; curr = curr.next[0].Load() {
		if curr.fullyLinked.Load() && !curr.marked.Load() {
			n++
		}
	}
	return n
}

// Keys returns the present keys in ascending order (tests only).
func (s *LazySkipList) Keys() []int64 {
	var out []int64
	for curr := s.head.next[0].Load(); curr.key != math.MaxInt64; curr = curr.next[0].Load() {
		if curr.fullyLinked.Load() && !curr.marked.Load() {
			out = append(out, curr.key)
		}
	}
	return out
}
