package conc_test

import (
	"testing"

	"repro/internal/conc"
	"repro/internal/lincheck"
)

// Schedule-stressed linearizability checks for the plain concurrent
// structures. The recorded histories are checked by the Wing–Gong search in
// internal/lincheck; a failure dumps a replayable history artifact (see
// README, "Correctness checking").

func concCfg(seed int64, name string) lincheck.Config {
	cfg := lincheck.DefaultConfig(seed)
	cfg.Name = name
	if testing.Short() {
		cfg = cfg.Scaled(4)
	}
	return cfg
}

func TestLincheckLazyList(t *testing.T) {
	lincheck.StressSet(t, concCfg(1, "conc/lazy-list"), func() lincheck.Set {
		return conc.NewLazyList()
	})
}

func TestLincheckLazySkipList(t *testing.T) {
	lincheck.StressSet(t, concCfg(2, "conc/lazy-skip"), func() lincheck.Set {
		return conc.NewLazySkipList()
	})
}

// skipPQ adapts SkipPQ's duplicate-rejecting Add to the abstract PQ
// interface; the driver only adds unique keys, so nothing is dropped.
type skipPQ struct{ q *conc.SkipPQ }

func (s skipPQ) Add(k int64)              { s.q.Add(k) }
func (s skipPQ) Min() (int64, bool)       { return s.q.Min() }
func (s skipPQ) RemoveMin() (int64, bool) { return s.q.RemoveMin() }

func pqCfg(seed int64, name string) lincheck.Config {
	cfg := concCfg(seed, name)
	cfg.Threads, cfg.Ops = 3, 120 // pq histories are unpartitioned: keep small
	if testing.Short() {
		cfg.Ops = 60
	}
	return cfg
}

func TestLincheckHeapPQ(t *testing.T) {
	lincheck.StressPQ(t, pqCfg(3, "conc/heap-pq"), func() lincheck.PQ {
		return conc.NewHeapPQ()
	})
}

func TestLincheckSkipPQ(t *testing.T) {
	lincheck.StressPQ(t, pqCfg(4, "conc/skip-pq"), func() lincheck.PQ {
		return skipPQ{conc.NewSkipPQ()}
	})
}
