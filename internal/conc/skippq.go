package conc

import "repro/internal/spin"

// SkipPQ is a skip-list-based concurrent priority queue in the style of
// Lotan & Shavit, built on the lazy skip list: Add inserts into the ordered
// set and RemoveMin claims the leftmost unclaimed node. Keys are unique, as
// in the paper's implementation.
type SkipPQ struct {
	list *LazySkipList
}

// NewSkipPQ creates an empty queue.
func NewSkipPQ() *SkipPQ { return &SkipPQ{list: NewLazySkipList()} }

// Add inserts key, returning false if it was already queued.
func (q *SkipPQ) Add(key int64) bool { return q.list.Add(key) }

// Min returns the smallest queued key; ok is false when empty.
func (q *SkipPQ) Min() (int64, bool) { return q.list.Min() }

// RemoveMin removes and returns the smallest key; ok is false when empty.
// Contending removers race to delete the current minimum and retry on loss.
func (q *SkipPQ) RemoveMin() (int64, bool) {
	var b spin.Backoff
	for {
		key, ok := q.list.Min()
		if !ok {
			return 0, false
		}
		if q.list.Remove(key) {
			return key, true
		}
		b.Wait() // lost the race for this minimum
	}
}

// Len returns the number of queued keys (reporting only).
func (q *SkipPQ) Len() int { return q.list.Len() }
