package conc

import (
	"math"
	"sync"
	"sync/atomic"
)

// listNode is one element of a LazyList. Deletion is split into a logical
// phase (setting marked) and a physical phase (unlinking), so wait-free
// readers can skip over logically deleted nodes.
type listNode struct {
	key    int64
	next   atomic.Pointer[listNode]
	marked atomic.Bool
	mu     sync.Mutex
}

// LazyList is the lazy linked-list set of Heller et al. [OPODIS 2005]:
// unmonitored traversal, per-node locking with post-lock validation, and a
// wait-free Contains. Keys range over int64 exclusive of the sentinels
// (math.MinInt64, math.MaxInt64).
type LazyList struct {
	head *listNode
}

// NewLazyList creates an empty set.
func NewLazyList() *LazyList {
	tail := &listNode{key: math.MaxInt64}
	head := &listNode{key: math.MinInt64}
	head.next.Store(tail)
	return &LazyList{head: head}
}

// locate returns the adjacent pair (pred, curr) with
// pred.key < key <= curr.key.
func (l *LazyList) locate(key int64) (pred, curr *listNode) {
	pred = l.head
	curr = pred.next.Load()
	for curr.key < key {
		pred = curr
		curr = curr.next.Load()
	}
	return pred, curr
}

// validate checks, with locks held, that pred and curr are unmarked and
// still adjacent.
func validate(pred, curr *listNode) bool {
	return !pred.marked.Load() && !curr.marked.Load() && pred.next.Load() == curr
}

// Add inserts key, returning false if it was already present.
func (l *LazyList) Add(key int64) bool {
	for {
		pred, curr := l.locate(key)
		pred.mu.Lock()
		curr.mu.Lock()
		if validate(pred, curr) {
			if curr.key == key {
				curr.mu.Unlock()
				pred.mu.Unlock()
				return false
			}
			n := &listNode{key: key}
			n.next.Store(curr)
			pred.next.Store(n)
			curr.mu.Unlock()
			pred.mu.Unlock()
			return true
		}
		curr.mu.Unlock()
		pred.mu.Unlock()
	}
}

// Remove deletes key, returning false if it was absent.
func (l *LazyList) Remove(key int64) bool {
	for {
		pred, curr := l.locate(key)
		pred.mu.Lock()
		curr.mu.Lock()
		if validate(pred, curr) {
			if curr.key != key {
				curr.mu.Unlock()
				pred.mu.Unlock()
				return false
			}
			curr.marked.Store(true) // logical deletion
			pred.next.Store(curr.next.Load())
			curr.mu.Unlock()
			pred.mu.Unlock()
			return true
		}
		curr.mu.Unlock()
		pred.mu.Unlock()
	}
}

// Contains reports whether key is present. It is wait-free: no locks, one
// traversal, and a final marked check.
func (l *LazyList) Contains(key int64) bool {
	curr := l.head
	for curr.key < key {
		curr = curr.next.Load()
	}
	return curr.key == key && !curr.marked.Load()
}

// Len counts the unmarked elements (excluding sentinels). It is not
// linearizable and is intended for tests and reporting.
func (l *LazyList) Len() int {
	n := 0
	for curr := l.head.next.Load(); curr.key != math.MaxInt64; curr = curr.next.Load() {
		if !curr.marked.Load() {
			n++
		}
	}
	return n
}

// Keys returns the unmarked keys in ascending order (tests only).
func (l *LazyList) Keys() []int64 {
	var out []int64
	for curr := l.head.next.Load(); curr.key != math.MaxInt64; curr = curr.next.Load() {
		if !curr.marked.Load() {
			out = append(out, curr.key)
		}
	}
	return out
}
