package conc

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/mem/epoch"
)

// listNode is one element of a LazyList. Deletion is split into a logical
// phase (setting marked) and a physical phase (unlinking), so wait-free
// readers can skip over logically deleted nodes. Unlinked nodes are retired
// through epoch-based reclamation and recycled via listNodePool, so the
// steady-state add/remove path does not allocate.
type listNode struct {
	key    int64
	next   atomic.Pointer[listNode]
	marked atomic.Bool
	mu     sync.Mutex
}

var listNodePool = sync.Pool{New: func() any { return new(listNode) }}

// newListNode draws a node from the pool and resets the fields a previous
// life may have dirtied. A recycled node is unreachable by the time it is
// reused (two epoch advances have passed), so no traversal can observe the
// resets.
func newListNode(key int64) *listNode {
	n := listNodePool.Get().(*listNode)
	n.key = key
	n.marked.Store(false)
	return n
}

// freeListNode returns a retired node to the pool (epoch.Retire callback).
func freeListNode(v any) { listNodePool.Put(v.(*listNode)) }

// LazyList is the lazy linked-list set of Heller et al. [OPODIS 2005]:
// unmonitored traversal, per-node locking with post-lock validation, and a
// wait-free Contains. Keys range over int64 exclusive of the sentinels
// (math.MinInt64, math.MaxInt64). Every operation pins an epoch guard so
// that unlinked nodes can be recycled instead of left to the garbage
// collector.
type LazyList struct {
	head *listNode
}

// NewLazyList creates an empty set.
func NewLazyList() *LazyList {
	tail := &listNode{key: math.MaxInt64}
	head := &listNode{key: math.MinInt64}
	head.next.Store(tail)
	return &LazyList{head: head}
}

// locate returns the adjacent pair (pred, curr) with
// pred.key < key <= curr.key.
func (l *LazyList) locate(key int64) (pred, curr *listNode) {
	pred = l.head
	curr = pred.next.Load()
	for curr.key < key {
		pred = curr
		curr = curr.next.Load()
	}
	return pred, curr
}

// validate checks, with locks held, that pred and curr are unmarked and
// still adjacent.
func validate(pred, curr *listNode) bool {
	return !pred.marked.Load() && !curr.marked.Load() && pred.next.Load() == curr
}

// Add inserts key, returning false if it was already present.
func (l *LazyList) Add(key int64) bool {
	g := epoch.Default.Enter()
	defer g.Exit()
	for {
		pred, curr := l.locate(key)
		pred.mu.Lock()
		curr.mu.Lock()
		if validate(pred, curr) {
			if curr.key == key {
				curr.mu.Unlock()
				pred.mu.Unlock()
				return false
			}
			n := newListNode(key)
			n.next.Store(curr)
			pred.next.Store(n)
			curr.mu.Unlock()
			pred.mu.Unlock()
			return true
		}
		curr.mu.Unlock()
		pred.mu.Unlock()
	}
}

// Remove deletes key, returning false if it was absent. The unlinked node is
// retired under the epoch guard and recycled once no concurrent traversal
// can still reach it.
func (l *LazyList) Remove(key int64) bool {
	g := epoch.Default.Enter()
	defer g.Exit()
	for {
		pred, curr := l.locate(key)
		pred.mu.Lock()
		curr.mu.Lock()
		if validate(pred, curr) {
			if curr.key != key {
				curr.mu.Unlock()
				pred.mu.Unlock()
				return false
			}
			curr.marked.Store(true) // logical deletion
			pred.next.Store(curr.next.Load())
			curr.mu.Unlock()
			pred.mu.Unlock()
			g.Retire(curr, freeListNode)
			return true
		}
		curr.mu.Unlock()
		pred.mu.Unlock()
	}
}

// Contains reports whether key is present. It takes no locks: one traversal
// under an epoch pin and a final marked check.
func (l *LazyList) Contains(key int64) bool {
	g := epoch.Default.Enter()
	curr := l.head
	for curr.key < key {
		curr = curr.next.Load()
	}
	ok := curr.key == key && !curr.marked.Load()
	g.Exit()
	return ok
}

// Len counts the unmarked elements (excluding sentinels). It is not
// linearizable and is intended for tests and reporting.
func (l *LazyList) Len() int {
	g := epoch.Default.Enter()
	defer g.Exit()
	n := 0
	for curr := l.head.next.Load(); curr.key != math.MaxInt64; curr = curr.next.Load() {
		if !curr.marked.Load() {
			n++
		}
	}
	return n
}

// Keys returns the unmarked keys in ascending order (tests only).
func (l *LazyList) Keys() []int64 {
	g := epoch.Default.Enter()
	defer g.Exit()
	var out []int64
	for curr := l.head.next.Load(); curr.key != math.MaxInt64; curr = curr.next.Load() {
		if !curr.marked.Load() {
			out = append(out, curr.key)
		}
	}
	return out
}
