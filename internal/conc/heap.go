package conc

import "sync"

// HeapPQ is a lock-based binary min-heap priority queue with duplicate keys
// allowed. It stands in for Java's concurrent heap as the underlying object
// of the pessimistically boosted priority queue, and for Java's sequential
// PriorityQueue inside the semi-optimistic OTB heap queue (where it is used
// without the lock by the single lock-holder).
type HeapPQ struct {
	mu   sync.Mutex
	heap []int64
}

// NewHeapPQ creates an empty queue.
func NewHeapPQ() *HeapPQ { return &HeapPQ{} }

// Add inserts key (duplicates allowed).
func (q *HeapPQ) Add(key int64) {
	q.mu.Lock()
	q.heap = append(q.heap, key)
	siftUp(q.heap, len(q.heap)-1)
	q.mu.Unlock()
}

// Min returns the smallest key without removing it; ok is false when empty.
func (q *HeapPQ) Min() (key int64, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.heap[0], true
}

// RemoveMin removes and returns the smallest key; ok is false when empty.
func (q *HeapPQ) RemoveMin() (key int64, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.heap) == 0 {
		return 0, false
	}
	key = q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap = q.heap[:last]
	if last > 0 {
		siftDown(q.heap, 0)
	}
	return key, true
}

// Len returns the number of queued keys.
func (q *HeapPQ) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.heap)
}

// SeqHeap is the unsynchronized binary min-heap used where the caller
// provides exclusion: the OTB semi-optimistic queue (shared state accessed
// only by the global-lock holder) and per-transaction local queues.
type SeqHeap struct {
	heap []int64
}

// Add inserts key.
func (h *SeqHeap) Add(key int64) {
	h.heap = append(h.heap, key)
	siftUp(h.heap, len(h.heap)-1)
}

// Min returns the smallest key; ok is false when empty.
func (h *SeqHeap) Min() (key int64, ok bool) {
	if len(h.heap) == 0 {
		return 0, false
	}
	return h.heap[0], true
}

// RemoveMin removes and returns the smallest key; ok is false when empty.
func (h *SeqHeap) RemoveMin() (key int64, ok bool) {
	if len(h.heap) == 0 {
		return 0, false
	}
	key = h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.heap = h.heap[:last]
	if last > 0 {
		siftDown(h.heap, 0)
	}
	return key, true
}

// RemoveOne deletes one instance of key, returning false if absent. It is
// O(n) and exists for rollback paths only.
func (h *SeqHeap) RemoveOne(key int64) bool {
	for i, k := range h.heap {
		if k != key {
			continue
		}
		last := len(h.heap) - 1
		h.heap[i] = h.heap[last]
		h.heap = h.heap[:last]
		if i < last {
			siftDown(h.heap, i)
			siftUp(h.heap, i)
		}
		return true
	}
	return false
}

// Len returns the number of queued keys.
func (h *SeqHeap) Len() int { return len(h.heap) }

// Clear empties the heap, retaining capacity.
func (h *SeqHeap) Clear() { h.heap = h.heap[:0] }

func siftUp(h []int64, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent] <= h[i] {
			return
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

func siftDown(h []int64, i int) {
	n := len(h)
	for {
		left, right := 2*i+1, 2*i+2
		small := i
		if left < n && h[left] < h[small] {
			small = left
		}
		if right < n && h[right] < h[small] {
			small = right
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}
