package otb

import (
	"math"
	"sync"
	"testing"

	"repro/internal/abort"
)

// TestCrossStructureAtomicity moves tokens between two sets and a priority
// queue in single transactions while readers check, transactionally, that
// the views stay consistent.
func TestCrossStructureAtomicity(t *testing.T) {
	setA := NewListSet()
	setB := NewSkipSet()
	const tokens = 24
	run(t, func(tx *Tx) {
		for i := int64(1); i <= tokens; i++ {
			setA.Add(tx, i)
		}
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Movers bounce tokens A<->B.
	for m := 0; m < 4; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			for r := 0; ; r++ {
				select {
				case <-stop:
					return
				default:
				}
				k := int64((m*13+r)%tokens) + 1
				Atomic(nil, func(tx *Tx) {
					if setA.Remove(tx, k) {
						setB.Add(tx, k)
					} else if setB.Remove(tx, k) {
						setA.Add(tx, k)
					}
				})
			}
		}(m)
	}
	// Readers: each token must be in exactly one set at any snapshot.
	for r := 0; r < 500; r++ {
		k := int64(r%tokens) + 1
		Atomic(nil, func(tx *Tx) {
			inA := setA.Contains(tx, k)
			inB := setB.Contains(tx, k)
			if inA == inB {
				t.Errorf("token %d: inA=%v inB=%v (must be in exactly one)", k, inA, inB)
			}
		})
	}
	close(stop)
	wg.Wait()
	if got := setA.Len() + setB.Len(); got != tokens {
		t.Fatalf("tokens = %d, want %d", got, tokens)
	}
}

// TestSetAndQueueInOneTx exercises a set and a heap queue in the same
// transaction, with an abort injected on the first attempt.
func TestSetAndQueueInOneTx(t *testing.T) {
	set := NewListSet()
	q := NewHeapPQ()
	attempts := 0
	Atomic(nil, func(tx *Tx) {
		attempts++
		set.Add(tx, 7)
		q.Add(tx, 7)
		if attempts == 1 {
			abort.Retry(abort.Explicit)
		}
	})
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	if set.Len() != 1 || q.Len() != 1 {
		t.Fatalf("set=%d q=%d, want 1,1", set.Len(), q.Len())
	}
	// The aborted attempt must not have leaked a queue element.
	var first int64
	run(t, func(tx *Tx) { first, _ = q.RemoveMin(tx) })
	if first != 7 {
		t.Fatalf("min = %d, want 7", first)
	}
	var empty bool
	run(t, func(tx *Tx) { _, ok := q.RemoveMin(tx); empty = !ok })
	if !empty {
		t.Fatal("queue should be empty after one RemoveMin")
	}
}

func TestHasSemanticWrites(t *testing.T) {
	set := NewListSet()
	run(t, func(tx *Tx) { set.Add(tx, 1) })
	Atomic(nil, func(tx *Tx) {
		if tx.HasSemanticWrites() {
			t.Error("fresh tx has no writes")
		}
		set.Contains(tx, 1)
		if tx.HasSemanticWrites() {
			t.Error("contains is not a write")
		}
		set.Add(tx, 2)
		if !tx.HasSemanticWrites() {
			t.Error("pending add is a write")
		}
		set.Remove(tx, 2) // eliminates
		if tx.HasSemanticWrites() {
			t.Error("eliminated pair leaves no writes")
		}
	})
}

func TestValidatorReplacement(t *testing.T) {
	set := NewListSet()
	calls := 0
	tx := NewTx(nil)
	tx.SetValidator(func(*Tx) { calls++ })
	set.Add(tx, 5)
	set.Contains(tx, 5)
	if calls != 1 {
		// Contains(5) hits the write set and skips traversal+validation;
		// only the Add traversed.
		t.Fatalf("validator calls = %d, want 1", calls)
	}
	set.Contains(tx, 6)
	if calls != 2 {
		t.Fatalf("validator calls = %d, want 2", calls)
	}
	tx.Commit()
	if set.Len() != 1 {
		t.Fatal("manual commit failed")
	}
}

func TestStateRecycling(t *testing.T) {
	// The pooled Tx must not leak state between transactions.
	set := NewListSet()
	for i := 0; i < 50; i++ {
		k := int64(i % 5)
		Atomic(nil, func(tx *Tx) {
			if set.Contains(tx, k) {
				set.Remove(tx, k)
			} else {
				set.Add(tx, k)
			}
		})
	}
	// 50 toggles of 5 keys: each key toggled 10 times, ending absent.
	if set.Len() != 0 {
		t.Fatalf("Len = %d, want 0 after even toggle counts", set.Len())
	}
}

func TestExplicitRetryReason(t *testing.T) {
	var stats abort.Stats
	tries := 0
	Atomic(&stats, func(tx *Tx) {
		tries++
		if tries < 4 {
			abort.Retry(abort.Explicit)
		}
	})
	if stats.Aborts != 3 || stats.Commits != 1 {
		t.Fatalf("stats = %+v, want 3 aborts 1 commit", stats)
	}
}

func TestSentinelKeysRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("sentinel key should panic")
		}
	}()
	s := NewListSet()
	run(t, func(tx *Tx) { s.Remove(tx, math.MaxInt64) })
}
