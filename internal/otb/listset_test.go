package otb

import (
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/abort"
	"repro/internal/chaos/leak"
)

// run executes fn in a standalone OTB transaction.
func run(t *testing.T, fn func(*Tx)) {
	t.Helper()
	Atomic(nil, fn)
}

func TestListSetSequentialSemantics(t *testing.T) {
	s := NewListSet()
	run(t, func(tx *Tx) {
		if !s.Add(tx, 5) {
			t.Error("first Add(5) should succeed")
		}
		if s.Add(tx, 5) {
			t.Error("duplicate Add(5) in same tx should fail")
		}
		if !s.Contains(tx, 5) {
			t.Error("Contains(5) should see pending add")
		}
		if s.Contains(tx, 7) {
			t.Error("Contains(7) should be false")
		}
	})
	if got := s.Keys(); len(got) != 1 || got[0] != 5 {
		t.Fatalf("Keys = %v, want [5]", got)
	}
	run(t, func(tx *Tx) {
		if !s.Remove(tx, 5) {
			t.Error("Remove(5) should succeed")
		}
		if s.Remove(tx, 5) {
			t.Error("second Remove(5) in same tx should fail")
		}
		if s.Contains(tx, 5) {
			t.Error("Contains(5) should see pending remove")
		}
	})
	if got := s.Len(); got != 0 {
		t.Fatalf("Len = %d, want 0", got)
	}
}

func TestListSetElimination(t *testing.T) {
	s := NewListSet()
	// Add then Remove in one transaction cancel without touching the list.
	run(t, func(tx *Tx) {
		if !s.Add(tx, 9) {
			t.Error("Add(9)")
		}
		if !s.Remove(tx, 9) {
			t.Error("Remove(9) should eliminate the pending add")
		}
		if s.Contains(tx, 9) {
			t.Error("9 should be absent after elimination")
		}
	})
	if s.Len() != 0 {
		t.Fatal("set should be empty after eliminated pair")
	}

	// Remove then Add of an existing key also eliminate, leaving it present.
	run(t, func(tx *Tx) { s.Add(tx, 3) })
	run(t, func(tx *Tx) {
		if !s.Remove(tx, 3) {
			t.Error("Remove(3)")
		}
		if !s.Add(tx, 3) {
			t.Error("Add(3) should eliminate the pending remove")
		}
	})
	if got := s.Keys(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Keys = %v, want [3]", got)
	}
}

func TestListSetMultiOpCommitOrdering(t *testing.T) {
	s := NewListSet()
	run(t, func(tx *Tx) {
		s.Add(tx, 1)
		s.Add(tx, 5)
	})
	// Figure 3.2(a): two inserts between the same pair of nodes.
	run(t, func(tx *Tx) {
		if !s.Add(tx, 2) || !s.Add(tx, 3) {
			t.Error("both adds should succeed")
		}
	})
	want := []int64{1, 2, 3, 5}
	if got := s.Keys(); !equalKeys(got, want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
	// Figure 3.2(b): add 4 and remove 5 in one transaction.
	run(t, func(tx *Tx) {
		if !s.Add(tx, 4) || !s.Remove(tx, 5) {
			t.Error("add 4 / remove 5 should succeed")
		}
	})
	want = []int64{1, 2, 3, 4}
	if got := s.Keys(); !equalKeys(got, want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
	// Two removes of adjacent keys.
	run(t, func(tx *Tx) {
		if !s.Remove(tx, 2) || !s.Remove(tx, 3) {
			t.Error("both removes should succeed")
		}
	})
	want = []int64{1, 4}
	if got := s.Keys(); !equalKeys(got, want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
}

func TestListSetAbortRollsBackNothing(t *testing.T) {
	s := NewListSet()
	attempts := 0
	Atomic(nil, func(tx *Tx) {
		attempts++
		s.Add(tx, 42)
		if attempts == 1 {
			abort.Retry(abort.Explicit)
		}
	})
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	if got := s.Keys(); len(got) != 1 || got[0] != 42 {
		t.Fatalf("Keys = %v, want [42]", got)
	}
}

// TestListSetPairInvariant runs concurrent transactions that atomically add
// or remove a (k, k+offset) pair; at every quiescent point each pair must be
// present or absent together.
func TestListSetPairInvariant(t *testing.T) {
	const (
		pairs   = 32
		offset  = 1000
		workers = 8
		txsEach = 200
	)
	s := NewListSet()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
			for i := 0; i < txsEach; i++ {
				k := int64(rng.IntN(pairs))
				Atomic(nil, func(tx *Tx) {
					if s.Contains(tx, k) {
						s.Remove(tx, k)
						s.Remove(tx, k+offset)
					} else {
						s.Add(tx, k)
						s.Add(tx, k+offset)
					}
				})
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	keys := s.Keys()
	present := map[int64]bool{}
	for _, k := range keys {
		present[k] = true
	}
	for k := int64(0); k < pairs; k++ {
		if present[k] != present[k+offset] {
			t.Fatalf("pair invariant broken for %d: low=%v high=%v", k, present[k], present[k+offset])
		}
	}
}

// TestListSetConcurrentDisjoint checks that transactions on disjoint keys
// all commit and the final set matches the sequential expectation.
func TestListSetConcurrentDisjoint(t *testing.T) {
	leak.CheckCleanup(t)
	const workers = 8
	const each = 100
	s := NewListSet()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < each; i++ {
				k := base*each + i
				Atomic(nil, func(tx *Tx) {
					if !s.Add(tx, k) {
						t.Errorf("Add(%d) failed", k)
					}
				})
			}
		}(int64(w))
	}
	wg.Wait()
	if got := s.Len(); got != workers*each {
		t.Fatalf("Len = %d, want %d", got, workers*each)
	}
	keys := s.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys not strictly ascending at %d: %v >= %v", i, keys[i-1], keys[i])
		}
	}
}

// TestListSetMatchesModel applies a random operation sequence both to the
// OTB set (one op per transaction) and to a map model, comparing outcomes.
func TestListSetMatchesModel(t *testing.T) {
	f := func(ops []uint16) bool {
		s := NewListSet()
		model := map[int64]bool{}
		for _, op := range ops {
			key := int64(op % 64)
			var got bool
			switch (op / 64) % 3 {
			case 0:
				run(t, func(tx *Tx) { got = s.Add(tx, key) })
				want := !model[key]
				if got != want {
					return false
				}
				model[key] = true
			case 1:
				run(t, func(tx *Tx) { got = s.Remove(tx, key) })
				want := model[key]
				if got != want {
					return false
				}
				delete(model, key)
			default:
				run(t, func(tx *Tx) { got = s.Contains(tx, key) })
				if got != model[key] {
					return false
				}
			}
		}
		return len(model) == s.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func equalKeys(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
