package otb

import (
	"testing"

	"repro/internal/abort"
	"repro/internal/chaos"
	"repro/internal/cm"
	"repro/internal/telemetry"
)

// TestChaosStarvationEscalatesListSet pins a long read-mostly transaction
// under a 16-goroutine write storm. The forced-abort injector burns through
// the whole retry budget, so the transaction must take the serial-mode
// escalation path — and once it holds the gate the storm pauses and the
// commit is guaranteed. Asserts the commit, the manager's escalation count,
// and the meter's escalated telemetry line.
func TestChaosStarvationEscalatesListSet(t *testing.T) {
	const budget = 12
	mgr := cm.New(cm.Aggressive, budget)
	SetManager(mgr)
	t.Cleanup(func() { SetManager(nil) })
	telemetry.Enable()
	t.Cleanup(telemetry.Disable)
	before := telemetry.M("OTB").Snapshot().Escalations

	s := NewListSet()
	run(t, func(tx *Tx) {
		for k := int64(0); k < 32; k++ {
			s.Add(tx, k)
		}
	})

	stop := chaos.Storm(16, func(w int) {
		key := int64(w % 8) // collide heavily
		Atomic(nil, func(tx *Tx) {
			if !s.Add(tx, key) {
				s.Remove(tx, key)
			}
		})
	})
	defer stop()

	inj := chaos.NewAbortInjector(budget, abort.Conflict)
	attempts := 0
	Atomic(nil, func(tx *Tx) {
		attempts++
		for k := int64(8); k < 32; k++ { // read-mostly: storm-free keys
			s.Contains(tx, k)
		}
		inj.Hit()
		s.Add(tx, 1000)
	})
	stop()

	if attempts != budget+1 {
		t.Errorf("attempts = %d, want %d", attempts, budget+1)
	}
	if got := mgr.Escalations(); got < 1 {
		t.Fatalf("manager escalations = %d, want >= 1", got)
	}
	after := telemetry.M("OTB").Snapshot().Escalations
	if after <= before {
		t.Fatalf("telemetry escalations = %d, want > %d", after, before)
	}
	run(t, func(tx *Tx) {
		if !s.Contains(tx, 1000) {
			t.Error("escalated transaction's insert is missing")
		}
	})
}
