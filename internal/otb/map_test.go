package otb

import (
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"
)

func TestMapSequentialSemantics(t *testing.T) {
	m := NewMap()
	run(t, func(tx *Tx) {
		if !m.Put(tx, 1, 100) {
			t.Error("first Put should insert")
		}
		if m.Put(tx, 1, 200) {
			t.Error("second Put should update")
		}
		if v, ok := m.Get(tx, 1); !ok || v != 200 {
			t.Errorf("Get = %d,%v; want 200,true", v, ok)
		}
		if _, ok := m.Get(tx, 2); ok {
			t.Error("Get(2) should miss")
		}
		if !m.Delete(tx, 1) || m.Delete(tx, 1) {
			t.Error("Delete semantics wrong")
		}
		if m.ContainsKey(tx, 1) {
			t.Error("1 should be gone after delete")
		}
	})
	if m.Len() != 0 {
		t.Fatalf("Len = %d, want 0", m.Len())
	}
}

func TestMapWriteEliminationAndUpgrades(t *testing.T) {
	m := NewMap()
	// Put then Delete of a fresh key eliminate entirely.
	run(t, func(tx *Tx) {
		m.Put(tx, 5, 50)
		if !m.Delete(tx, 5) {
			t.Error("Delete of pending insert should succeed")
		}
		if m.ContainsKey(tx, 5) {
			t.Error("5 should be locally absent")
		}
	})
	if m.Len() != 0 {
		t.Fatal("eliminated pair must not touch the map")
	}

	// Delete then Put of an existing key becomes an update.
	run(t, func(tx *Tx) { m.Put(tx, 7, 70) })
	run(t, func(tx *Tx) {
		if !m.Delete(tx, 7) {
			t.Error("Delete(7)")
		}
		if !m.Put(tx, 7, 71) {
			t.Error("Put after Delete should report insert")
		}
		if v, _ := m.Get(tx, 7); v != 71 {
			t.Errorf("Get = %d, want 71", v)
		}
	})
	if snap := m.Snapshot(); snap[7] != 71 || len(snap) != 1 {
		t.Fatalf("Snapshot = %v, want {7:71}", snap)
	}

	// Update then Delete of an existing key deletes it.
	run(t, func(tx *Tx) {
		m.Put(tx, 7, 72)
		if !m.Delete(tx, 7) {
			t.Error("Delete after update should succeed")
		}
	})
	if m.Len() != 0 {
		t.Fatal("7 should be deleted")
	}
}

func TestMapMatchesModel(t *testing.T) {
	f := func(ops []uint32) bool {
		m := NewMap()
		model := map[int64]uint64{}
		for _, op := range ops {
			key := int64(op % 32)
			val := uint64(op >> 8)
			switch (op / 32) % 3 {
			case 0:
				var inserted bool
				run(t, func(tx *Tx) { inserted = m.Put(tx, key, val) })
				_, had := model[key]
				if inserted == had {
					return false
				}
				model[key] = val
			case 1:
				var deleted bool
				run(t, func(tx *Tx) { deleted = m.Delete(tx, key) })
				_, had := model[key]
				if deleted != had {
					return false
				}
				delete(model, key)
			default:
				var v uint64
				var ok bool
				run(t, func(tx *Tx) { v, ok = m.Get(tx, key) })
				want, had := model[key]
				if ok != had || (ok && v != want) {
					return false
				}
			}
		}
		snap := m.Snapshot()
		if len(snap) != len(model) {
			return false
		}
		for k, v := range model {
			if snap[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMapAtomicTransfer moves value between two keys atomically; the total
// must be conserved at every transactional observation.
func TestMapAtomicTransfer(t *testing.T) {
	m := NewMap()
	const keys = 8
	const initial = 100
	run(t, func(tx *Tx) {
		for k := int64(0); k < keys; k++ {
			m.Put(tx, k, initial)
		}
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				from := int64(rng.IntN(keys))
				to := int64(rng.IntN(keys))
				if from == to {
					continue
				}
				Atomic(nil, func(tx *Tx) {
					fv, _ := m.Get(tx, from)
					tv, _ := m.Get(tx, to)
					if fv == 0 {
						return
					}
					m.Put(tx, from, fv-1)
					m.Put(tx, to, tv+1)
				})
			}
		}(uint64(w + 1))
	}
	for i := 0; i < 300; i++ {
		var total uint64
		Atomic(nil, func(tx *Tx) {
			total = 0
			for k := int64(0); k < keys; k++ {
				v, ok := m.Get(tx, k)
				if !ok {
					t.Errorf("key %d vanished", k)
				}
				total += v
			}
		})
		if total != keys*initial {
			t.Fatalf("observed total %d, want %d", total, keys*initial)
		}
	}
	close(stop)
	wg.Wait()
}

func TestMapValueValidationDoomsStaleReaders(t *testing.T) {
	m := NewMap()
	run(t, func(tx *Tx) { m.Put(tx, 1, 10) })
	attempts := 0
	Atomic(nil, func(tx *Tx) {
		attempts++
		v, _ := m.Get(tx, 1)
		if attempts == 1 {
			if v != 10 {
				t.Errorf("first read = %d, want 10", v)
			}
			done := make(chan struct{})
			go func() {
				Atomic(nil, func(tx2 *Tx) { m.Put(tx2, 1, 11) })
				close(done)
			}()
			<-done
			m.Get(tx, 99) // post-validation must catch the changed value
			t.Error("stale value should have aborted attempt 1")
		} else if v != 11 {
			t.Errorf("retry read = %d, want 11", v)
		}
	})
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
}
