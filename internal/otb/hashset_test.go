package otb

import (
	"math/rand/v2"
	"sync"
	"testing"
)

func TestHashSetSequential(t *testing.T) {
	s := NewHashSet(16)
	run(t, func(tx *Tx) {
		if !s.Add(tx, 1) || !s.Add(tx, 17) || !s.Add(tx, 33) {
			t.Error("adds should succeed")
		}
		if s.Add(tx, 1) {
			t.Error("duplicate add should fail")
		}
		if !s.Contains(tx, 17) || s.Contains(tx, 2) {
			t.Error("contains wrong")
		}
		if !s.Remove(tx, 17) || s.Remove(tx, 17) {
			t.Error("remove semantics wrong")
		}
	})
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

func TestHashSetCrossBucketAtomicity(t *testing.T) {
	s := NewHashSet(8)
	const pairs = 24
	const offset = 1 << 30 // lands in a different bucket for most keys
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 9))
			for i := 0; i < 150; i++ {
				k := int64(rng.IntN(pairs)) + 1
				Atomic(nil, func(tx *Tx) {
					if s.Contains(tx, k) {
						s.Remove(tx, k)
						s.Remove(tx, k+offset)
					} else {
						s.Add(tx, k)
						s.Add(tx, k+offset)
					}
				})
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	for k := int64(1); k <= pairs; k++ {
		var lo, hi bool
		run(t, func(tx *Tx) {
			lo = s.Contains(tx, k)
			hi = s.Contains(tx, k+offset)
		})
		if lo != hi {
			t.Fatalf("cross-bucket pair invariant broken for %d", k)
		}
	}
}

func TestHashSetDisjointBucketsScale(t *testing.T) {
	s := NewHashSet(64)
	const workers = 8
	const each = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < each; i++ {
				k := base*each + i
				Atomic(nil, func(tx *Tx) {
					if !s.Add(tx, k) {
						t.Errorf("Add(%d) failed", k)
					}
				})
			}
		}(int64(w))
	}
	wg.Wait()
	if got := s.Len(); got != workers*each {
		t.Fatalf("Len = %d, want %d", got, workers*each)
	}
}
