package otb_test

import (
	"testing"

	"repro/internal/lincheck"
	"repro/internal/otb"
)

// Linearizability and opacity checks for the optimistically boosted
// structures. Single-operation transactions are checked as linearizable
// operations; multi-operation transactions are checked for opacity against
// the transactional set specification, which also constrains what aborted
// attempts were allowed to observe.

// atomicSet runs each abstract operation in its own OTB transaction.
type atomicSet struct {
	s interface {
		Add(*otb.Tx, int64) bool
		Remove(*otb.Tx, int64) bool
		Contains(*otb.Tx, int64) bool
	}
}

func (a atomicSet) Add(k int64) (ok bool) {
	otb.Atomic(nil, func(tx *otb.Tx) { ok = a.s.Add(tx, k) })
	return
}

func (a atomicSet) Remove(k int64) (ok bool) {
	otb.Atomic(nil, func(tx *otb.Tx) { ok = a.s.Remove(tx, k) })
	return
}

func (a atomicSet) Contains(k int64) (ok bool) {
	otb.Atomic(nil, func(tx *otb.Tx) { ok = a.s.Contains(tx, k) })
	return
}

func TestLincheckOTBSets(t *testing.T) {
	mks := map[string]func() lincheck.Set{
		"listset": func() lincheck.Set { return atomicSet{otb.NewListSet()} },
		"skipset": func() lincheck.Set { return atomicSet{otb.NewSkipSet()} },
		"hashset": func() lincheck.Set { return atomicSet{otb.NewHashSet(16)} },
	}
	for name, mk := range mks {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := lincheck.DefaultConfig(11)
			cfg.Name = "otb/" + name
			if testing.Short() {
				cfg = cfg.Scaled(4)
			}
			lincheck.StressSet(t, cfg, mk)
		})
	}
}

// txView is one attempt's transactional view of an OTB set.
type txView struct {
	tx *otb.Tx
	s  *otb.ListSet
}

func (v txView) Add(k int64) bool      { return v.s.Add(v.tx, k) }
func (v txView) Remove(k int64) bool   { return v.s.Remove(v.tx, k) }
func (v txView) Contains(k int64) bool { return v.s.Contains(v.tx, k) }

// TestOpacityOTBListSetTxns checks multi-operation OTB transactions for
// opacity: every committed transaction's operations must take effect
// atomically at one point consistent with real-time order, and aborted
// attempts must have observed a consistent state.
func TestOpacityOTBListSetTxns(t *testing.T) {
	s := otb.NewListSet()
	cfg := lincheck.DefaultSTMConfig(12)
	cfg.Name = "otb/listset-txns"
	cfg.Cells = 8 // key range
	if testing.Short() {
		cfg = cfg.Scaled(2)
	}
	lincheck.StressTxnSet(t, cfg, func(th int, body func(lincheck.Set)) {
		otb.Atomic(nil, func(tx *otb.Tx) { body(txView{tx, s}) })
	})
}
