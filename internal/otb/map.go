package otb

import (
	"math"
	"math/rand/v2"
	"sync/atomic"

	"repro/internal/abort"
	"repro/internal/spin"
)

// mnode is an OTB map node: a skip-list tower with a mutable value slot.
// Values are atomic so lock-free readers and committing writers are
// race-free; value consistency is guaranteed by value-based semantic
// validation, as NOrec does for memory words.
type mnode struct {
	id          uint64
	key         int64
	val         atomic.Uint64
	next        [maxLevel]atomic.Pointer[mnode]
	topLevel    int
	marked      atomic.Bool
	fullyLinked atomic.Bool
	lock        spin.VersionedLock
}

func newMNode(key int64, topLevel int) *mnode {
	return &mnode{id: nodeSeq.Add(1), key: key, topLevel: topLevel}
}

// sortMNodesByID insertion-sorts nodes ascending by allocation id (the
// global lock order), allocation-free on the commit path.
func sortMNodesByID(nodes []*mnode) {
	for i := 1; i < len(nodes); i++ {
		n := nodes[i]
		j := i - 1
		for j >= 0 && nodes[j].id > n.id {
			nodes[j+1] = nodes[j]
			j--
		}
		nodes[j+1] = n
	}
}

// sortMapWritesByKeyDesc insertion-sorts write entries descending by key
// (publication order), allocation-free.
func sortMapWritesByKeyDesc(ws []mapWrite) {
	for i := 1; i < len(ws); i++ {
		w := ws[i]
		j := i - 1
		for j >= 0 && ws[j].key < w.key {
			ws[j+1] = ws[j]
			j--
		}
		ws[j+1] = w
	}
}

// Map is an optimistically boosted ordered map — one of the data structures
// the paper's Chapter 7 proposes as future work ("more OTB data structures,
// such as maps"). It extends the OTB skip-list set design with a value slot
// per node:
//
//   - Get records a value-based semantic read (key present with this value,
//     or key absent between pred and curr);
//   - Put of an absent key defers an insert; Put of a present key defers a
//     value update, which only locks the node itself at commit;
//   - local write entries are read through by later operations in the same
//     transaction, and a Put/Delete pair on a fresh key eliminates.
type Map struct {
	head *mnode
}

// NewMap creates an empty map. Keys exclude the int64 sentinels.
func NewMap() *Map {
	tail := newMNode(math.MaxInt64, maxLevel-1)
	tail.fullyLinked.Store(true)
	head := newMNode(math.MinInt64, maxLevel-1)
	for i := range head.next {
		head.next[i].Store(tail)
	}
	head.fullyLinked.Store(true)
	return &Map{head: head}
}

// mapReadKind selects the validation rule for a map read entry.
type mapReadKind int8

const (
	mapReadValue  mapReadKind = iota // key present: node live, value unchanged
	mapReadAbsent                    // key absent: bottom-level adjacency
	mapReadFull                      // successful insert/delete: all levels
)

// mapRead is a semantic read entry.
type mapRead struct {
	kind     mapReadKind
	curr     *mnode
	val      uint64 // observed value for mapReadValue entries
	topLevel int
	preds    [maxLevel]*mnode
	succs    [maxLevel]*mnode
}

// mapWriteKind identifies the deferred operation of a write entry.
type mapWriteKind int8

const (
	mapInsert mapWriteKind = iota
	mapUpdate
	mapDelete
)

// mapWrite is a semantic write (redo) entry.
type mapWrite struct {
	kind     mapWriteKind
	key      int64
	val      uint64
	topLevel int
	victim   *mnode // update/delete target
	preds    [maxLevel]*mnode
}

// mapState is the per-transaction state for one Map.
type mapState struct {
	reads    []mapRead
	writes   []mapWrite
	locked   []*mnode
	lockSnap []uint64
	toLock   []*mnode // scratch: deduplicated lock targets during PreCommit
}

// reset recycles the state for a new transaction.
func (st *mapState) reset() {
	st.reads = st.reads[:0]
	st.writes = st.writes[:0]
	st.locked = st.locked[:0]
	st.lockSnap = st.lockSnap[:0]
	st.toLock = st.toLock[:0]
}

// addToLock appends n to the PreCommit lock-target scratch unless present.
func (st *mapState) addToLock(n *mnode) {
	for _, o := range st.toLock {
		if o == n {
			return
		}
	}
	st.toLock = append(st.toLock, n)
}

func (m *Map) state(tx *Tx) *mapState {
	return tx.Attach(m, func() any { return &mapState{} }).(*mapState)
}

func (m *Map) peekState(tx *Tx) *mapState {
	if st, ok := tx.state[m]; ok {
		return st.(*mapState)
	}
	return nil
}

// find fills preds/succs and returns the highest level where key matched.
func (m *Map) find(key int64, preds, succs *[maxLevel]*mnode) int {
	found := -1
	pred := m.head
	for level := maxLevel - 1; level >= 0; level-- {
		curr := pred.next[level].Load()
		for curr.key < key {
			pred = curr
			curr = pred.next[level].Load()
		}
		if found == -1 && curr.key == key {
			found = level
		}
		preds[level] = pred
		succs[level] = curr
	}
	return found
}

// locate traverses, waits out half-linked nodes, and post-validates.
func (m *Map) locate(tx *Tx, key int64) (found int, preds, succs [maxLevel]*mnode) {
	found = m.find(key, &preds, &succs)
	if found != -1 {
		var b spin.Backoff
		for !succs[found].fullyLinked.Load() {
			b.Wait()
		}
	}
	tx.PostValidate()
	return found, preds, succs
}

func (st *mapState) findWrite(key int64) int {
	for i := range st.writes {
		if st.writes[i].key == key {
			return i
		}
	}
	return -1
}

func (st *mapState) deleteWrite(i int) {
	last := len(st.writes) - 1
	st.writes[i] = st.writes[last]
	st.writes = st.writes[:last]
}

// Get returns the value stored for key within tx.
func (m *Map) Get(tx *Tx, key int64) (uint64, bool) {
	checkKey(key)
	tx.tr.Op(traceKey(key))
	st := m.state(tx)
	if i := st.findWrite(key); i >= 0 {
		w := &st.writes[i]
		if w.kind == mapDelete {
			return 0, false
		}
		return w.val, true
	}
	found, preds, succs := m.locate(tx, key)
	if found == -1 || succs[found].marked.Load() {
		st.reads = append(st.reads, mapRead{kind: mapReadAbsent, preds: preds, succs: succs})
		return 0, false
	}
	curr := succs[found]
	v := curr.val.Load()
	st.reads = append(st.reads, mapRead{kind: mapReadValue, curr: curr, val: v})
	return v, true
}

// ContainsKey reports within tx whether key is mapped.
func (m *Map) ContainsKey(tx *Tx, key int64) bool {
	_, ok := m.Get(tx, key)
	return ok
}

// Put maps key to val within tx, returning true if the key was absent
// (inserted) and false if an existing mapping was updated.
func (m *Map) Put(tx *Tx, key int64, val uint64) bool {
	checkKey(key)
	tx.tr.Op(traceKey(key))
	st := m.state(tx)
	if i := st.findWrite(key); i >= 0 {
		w := &st.writes[i]
		if w.kind == mapDelete {
			// Delete then Put on a live node: turn into an update.
			st.writes[i] = mapWrite{kind: mapUpdate, key: key, val: val, victim: w.victim}
			return true
		}
		w.val = val
		return false
	}
	found, preds, succs := m.locate(tx, key)
	if found != -1 && !succs[found].marked.Load() {
		curr := succs[found]
		st.reads = append(st.reads, mapRead{kind: mapReadValue, curr: curr, val: curr.val.Load()})
		st.writes = append(st.writes, mapWrite{kind: mapUpdate, key: key, val: val, victim: curr})
		return false
	}
	top := randomTowerM()
	st.reads = append(st.reads, mapRead{kind: mapReadFull, topLevel: top, preds: preds, succs: succs})
	st.writes = append(st.writes, mapWrite{kind: mapInsert, key: key, val: val, topLevel: top, preds: preds})
	return true
}

// Delete unmaps key within tx, returning false if absent.
func (m *Map) Delete(tx *Tx, key int64) bool {
	checkKey(key)
	tx.tr.Op(traceKey(key))
	st := m.state(tx)
	if i := st.findWrite(key); i >= 0 {
		w := st.writes[i]
		switch w.kind {
		case mapDelete:
			return false
		case mapInsert:
			st.deleteWrite(i) // eliminate the pending insert
			return true
		default:
			// Pending update of a live node: re-locate (validated) and turn
			// the entry into a delete with fresh, commit-validated preds.
			found, preds, succs := m.locate(tx, key)
			if found == -1 || succs[found] != w.victim || succs[found].marked.Load() {
				tx.tr.NoteKey(traceKey(key))
				abort.Retry(abort.Conflict)
			}
			st.reads = append(st.reads, mapRead{
				kind: mapReadFull, curr: w.victim, topLevel: w.victim.topLevel,
				preds: preds, succs: succs,
			})
			st.writes[i] = mapWrite{
				kind: mapDelete, key: key, victim: w.victim,
				topLevel: w.victim.topLevel, preds: preds,
			}
			return true
		}
	}
	found, preds, succs := m.locate(tx, key)
	if found == -1 || succs[found].marked.Load() {
		st.reads = append(st.reads, mapRead{kind: mapReadAbsent, preds: preds, succs: succs})
		return false
	}
	curr := succs[found]
	st.reads = append(st.reads, mapRead{
		kind: mapReadFull, curr: curr, topLevel: curr.topLevel, preds: preds, succs: succs,
	})
	st.writes = append(st.writes, mapWrite{
		kind: mapDelete, key: key, victim: curr, topLevel: curr.topLevel, preds: preds,
	})
	return true
}

// randomTowerM draws a tower height with geometric distribution p=1/2.
func randomTowerM() int {
	lvl := 0
	for lvl < maxLevel-1 && rand.Uint64()&1 == 1 {
		lvl++
	}
	return lvl
}

func (st *mapState) owns(n *mnode) bool {
	for _, l := range st.locked {
		if l == n {
			return true
		}
	}
	return false
}

// involved appends the nodes whose locks guard entry e.
func (e *mapRead) involved(buf []*mnode) []*mnode {
	switch e.kind {
	case mapReadValue:
		return append(buf, e.curr)
	case mapReadAbsent:
		return append(buf, e.preds[0], e.succs[0])
	default:
		for l := 0; l <= e.topLevel; l++ {
			buf = append(buf, e.preds[l], e.succs[l])
		}
		return buf
	}
}

// check re-evaluates the entry's semantic condition.
func (e *mapRead) check() bool {
	switch e.kind {
	case mapReadValue:
		return !e.curr.marked.Load() && e.curr.val.Load() == e.val
	case mapReadAbsent:
		return !e.preds[0].marked.Load() && !e.succs[0].marked.Load() &&
			e.preds[0].next[0].Load() == e.succs[0]
	default:
		for l := 0; l <= e.topLevel; l++ {
			if e.preds[l].marked.Load() || e.succs[l].marked.Load() ||
				e.preds[l].next[l].Load() != e.succs[l] {
				return false
			}
		}
		return true
	}
}

// ValidateWithLocks implements the three-phase validation of Algorithm 2.
func (m *Map) ValidateWithLocks(tx *Tx) bool {
	st := m.peekState(tx)
	if st == nil || len(st.reads) == 0 {
		return true
	}
	var scratch [2 * maxLevel]*mnode
	st.lockSnap = st.lockSnap[:0]
	for i := range st.reads {
		for _, n := range st.reads[i].involved(scratch[:0]) {
			if st.owns(n) {
				st.lockSnap = append(st.lockSnap, ownedVersion)
				continue
			}
			v := n.lock.Sample()
			if spin.IsLocked(v) {
				tx.tr.ValidateFail(traceKey(n.key))
				return false
			}
			st.lockSnap = append(st.lockSnap, v)
		}
	}
	if !m.ValidateWithoutLocks(tx) {
		return false
	}
	k := 0
	for i := range st.reads {
		for _, n := range st.reads[i].involved(scratch[:0]) {
			v := st.lockSnap[k]
			k++
			if v == ownedVersion {
				continue
			}
			if n.lock.Sample() != v {
				tx.tr.ValidateFail(traceKey(n.key))
				return false
			}
		}
	}
	return true
}

// ValidateWithoutLocks re-checks only the semantic conditions.
func (m *Map) ValidateWithoutLocks(tx *Tx) bool {
	st := m.peekState(tx)
	if st == nil {
		return true
	}
	for i := range st.reads {
		if !st.reads[i].check() {
			tx.tr.ValidateFail(mapReadTraceKey(&st.reads[i]))
			return false
		}
	}
	return true
}

// mapReadTraceKey names the node a failing map read entry is anchored on.
func mapReadTraceKey(e *mapRead) uint64 {
	if e.curr != nil {
		return traceKey(e.curr.key)
	}
	return traceKey(e.succs[0].key)
}

// Dirty reports whether the transaction has pending writes on this map.
func (m *Map) Dirty(tx *Tx) bool {
	st := m.peekState(tx)
	return st != nil && len(st.writes) > 0
}

// PreCommit locks, in allocation order, the predecessor towers of inserts
// and deletes, the victims of deletes, and the target nodes of updates.
func (m *Map) PreCommit(tx *Tx) {
	st := m.peekState(tx)
	if st == nil || len(st.writes) == 0 {
		return
	}
	st.toLock = st.toLock[:0]
	for i := range st.writes {
		w := &st.writes[i]
		switch w.kind {
		case mapInsert:
			for l := 0; l <= w.topLevel; l++ {
				st.addToLock(w.preds[l])
			}
		case mapUpdate:
			st.addToLock(w.victim)
		default:
			for l := 0; l <= w.topLevel; l++ {
				st.addToLock(w.preds[l])
			}
			st.addToLock(w.victim)
		}
	}
	sortMNodesByID(st.toLock)
	for _, n := range st.toLock {
		if _, ok := n.lock.TryLock(); !ok {
			tx.Counters().IncCAS()
			tx.tr.LockBusy(traceKey(n.key))
			abort.Retry(abort.LockBusy)
		}
		tx.tr.Lock(traceKey(n.key))
		st.locked = append(st.locked, n)
	}
}

// OnCommit publishes the write set in descending key order, re-traversing
// per level from the saved predecessors (inserts/deletes) and storing
// values in place (updates).
func (m *Map) OnCommit(tx *Tx) {
	st := m.peekState(tx)
	if st == nil || len(st.writes) == 0 {
		return
	}
	sortMapWritesByKeyDesc(st.writes)
	for i := range st.writes {
		w := &st.writes[i]
		switch w.kind {
		case mapUpdate:
			w.victim.val.Store(w.val)
		case mapInsert:
			n := newMNode(w.key, w.topLevel)
			n.val.Store(w.val)
			n.lock.TryLock()
			for l := 0; l <= w.topLevel; l++ {
				pred, succ := retraverseM(w.preds[l], w.key, l)
				n.next[l].Store(succ)
				pred.next[l].Store(n)
			}
			n.fullyLinked.Store(true)
			st.locked = append(st.locked, n)
		default: // mapDelete
			w.victim.marked.Store(true)
			for l := w.topLevel; l >= 0; l-- {
				pred, _ := retraverseM(w.preds[l], w.key, l)
				pred.next[l].Store(w.victim.next[l].Load())
			}
		}
	}
}

// retraverseM advances from the saved predecessor to the current (pred,
// succ) pair at the given level.
func retraverseM(pred *mnode, key int64, level int) (*mnode, *mnode) {
	curr := pred.next[level].Load()
	for curr.key < key {
		pred = curr
		curr = pred.next[level].Load()
	}
	return pred, curr
}

// PostCommit releases all semantic locks, bumping versions.
func (m *Map) PostCommit(tx *Tx) {
	st := m.peekState(tx)
	if st == nil {
		return
	}
	for _, n := range st.locked {
		n.lock.Unlock()
		tx.tr.Unlock(traceKey(n.key))
	}
	st.locked = st.locked[:0]
}

// OnAbort releases locks without publishing, restoring versions.
func (m *Map) OnAbort(tx *Tx) {
	st := m.peekState(tx)
	if st == nil {
		return
	}
	for _, n := range st.locked {
		n.lock.UnlockUnchanged()
	}
	st.locked = st.locked[:0]
}

// Len counts live entries (not linearizable; tests and reporting).
func (m *Map) Len() int {
	n := 0
	for curr := m.head.next[0].Load(); curr.key != math.MaxInt64; curr = curr.next[0].Load() {
		if curr.fullyLinked.Load() && !curr.marked.Load() {
			n++
		}
	}
	return n
}

// Snapshot returns the live key/value pairs in ascending key order
// (tests only).
func (m *Map) Snapshot() map[int64]uint64 {
	out := make(map[int64]uint64)
	for curr := m.head.next[0].Load(); curr.key != math.MaxInt64; curr = curr.next[0].Load() {
		if curr.fullyLinked.Load() && !curr.marked.Load() {
			out[curr.key] = curr.val.Load()
		}
	}
	return out
}

var _ Datastructure = (*Map)(nil)
