package otb_test

import (
	"testing"

	"repro/internal/race"

	"repro/internal/otb"
)

// These tests pin the allocation-free commit fast path (ISSUE 6): a
// steady-state OTB write transaction — traversal, semantic logging, lock
// acquisition, publication, epoch retirement, descriptor recycling — must
// not allocate. They run under -short so the CI smoke lane enforces them on
// every PR.
//
// testing.AllocsPerRun runs with GOMAXPROCS=1; warmup rounds fill the
// descriptor and node pools and prime the epoch-reclamation pipeline (a
// retired node returns to its pool after two epoch advances, so a few nodes
// circulate through limbo in the steady state).

// warmupRounds is enough to fill every pool: the node-recycling pipeline is
// three Exits deep and the per-tx scratch slices stop growing after the
// first few transactions.
const warmupRounds = 200

func runAllocTx(t *testing.T, name string, fn func()) {
	t.Helper()
	if race.Enabled {
		t.Skip("race-mode sync.Pool drops Puts at random; pooled paths cannot be allocation-free")
	}
	for i := 0; i < warmupRounds; i++ {
		fn()
	}
	if allocs := testing.AllocsPerRun(1000, fn); allocs > 0 {
		t.Errorf("%s: %.2f allocs/op on the commit path, want 0", name, allocs)
	}
}

// TestListSetWriteTxAllocFree alternates add and remove of one key so every
// transaction both publishes a write and (on removes) retires a node through
// the epoch pipeline.
func TestListSetWriteTxAllocFree(t *testing.T) {
	set := otb.NewListSet()
	for k := int64(1); k <= 64; k++ {
		otb.Atomic(nil, func(tx *otb.Tx) { set.Add(tx, k) })
	}
	adding := false // first toggle removes an existing key
	key := int64(32)
	fn := func(tx *otb.Tx) {
		if adding {
			set.Add(tx, key)
		} else {
			set.Remove(tx, key)
		}
	}
	runAllocTx(t, "otb list write tx", func() {
		otb.Atomic(nil, fn)
		adding = !adding
	})
}

// TestSkipSetWriteTxAllocFree is the same fast path over the skip-list set,
// whose towers also recycle through the epoch pools.
func TestSkipSetWriteTxAllocFree(t *testing.T) {
	set := otb.NewSkipSet()
	for k := int64(1); k <= 64; k++ {
		otb.Atomic(nil, func(tx *otb.Tx) { set.Add(tx, k) })
	}
	adding := false
	key := int64(32)
	fn := func(tx *otb.Tx) {
		if adding {
			set.Add(tx, key)
		} else {
			set.Remove(tx, key)
		}
	}
	runAllocTx(t, "otb skip write tx", func() {
		otb.Atomic(nil, fn)
		adding = !adding
	})
}

// TestListSetReadTxAllocFree pins the read-only fast path (contains).
func TestListSetReadTxAllocFree(t *testing.T) {
	set := otb.NewListSet()
	for k := int64(1); k <= 64; k++ {
		otb.Atomic(nil, func(tx *otb.Tx) { set.Add(tx, k) })
	}
	fn := func(tx *otb.Tx) { set.Contains(tx, 32) }
	runAllocTx(t, "otb list read tx", func() {
		otb.Atomic(nil, fn)
	})
}

// BenchmarkListSetWriteTx reports ns/op and allocs/op for the list-set
// commit fast path (write transaction, single worker — the allocation
// trajectory companion to the throughput matrix).
func BenchmarkListSetWriteTx(b *testing.B) {
	set := otb.NewListSet()
	for k := int64(1); k <= 64; k++ {
		otb.Atomic(nil, func(tx *otb.Tx) { set.Add(tx, k) })
	}
	adding := false
	key := int64(32)
	fn := func(tx *otb.Tx) {
		if adding {
			set.Add(tx, key)
		} else {
			set.Remove(tx, key)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		otb.Atomic(nil, fn)
		adding = !adding
	}
}

// BenchmarkSkipSetWriteTx is BenchmarkListSetWriteTx over the skip list.
func BenchmarkSkipSetWriteTx(b *testing.B) {
	set := otb.NewSkipSet()
	for k := int64(1); k <= 64; k++ {
		otb.Atomic(nil, func(tx *otb.Tx) { set.Add(tx, k) })
	}
	adding := false
	key := int64(32)
	fn := func(tx *otb.Tx) {
		if adding {
			set.Add(tx, key)
		} else {
			set.Remove(tx, key)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		otb.Atomic(nil, fn)
		adding = !adding
	}
}
