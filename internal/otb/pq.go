package otb

import (
	"math"
	"sync/atomic"

	"repro/internal/abort"
	"repro/internal/conc"
	"repro/internal/spin"
)

// pqAcquireAttempts bounds acquisition of the heap queue's global semantic
// lock before aborting, so transactions holding other semantic locks cannot
// deadlock against it.
const pqAcquireAttempts = 1024

// HeapPQ is the semi-optimistic boosted heap priority queue (Algorithm 5).
// Add operations are buffered in a local redo log; the first Min/RemoveMin
// acquires the single global semantic lock, publishes the pending adds, and
// from then on the transaction operates pessimistically (but undoably) on
// the shared heap. Transactions that only Add publish at commit. Because
// the lock holder excludes everyone, the shared heap needs no internal
// synchronization and no read validation.
type HeapPQ struct {
	id   uint64 // flight-recorder attribution key for the global lock
	held atomic.Bool
	pq   conc.SeqHeap // accessed only by the lock holder
}

// pqKeyBit tags HeapPQ lock attribution keys so they cannot collide with
// element keys of the set structures in the conflict table.
const pqKeyBit = 1 << 61

// NewHeapPQ creates an empty queue.
func NewHeapPQ() *HeapPQ { return &HeapPQ{id: nodeSeq.Add(1) | pqKeyBit} }

// heapPQState is the per-transaction state for one HeapPQ.
type heapPQState struct {
	redo    []int64 // buffered adds awaiting the lock
	holds   bool
	added   []int64 // adds applied under the lock (undo: remove one)
	removed []int64 // mins removed under the lock (undo: re-add)
}

// reset recycles the state for a new transaction. The queue lock is never
// held between transactions (PostCommit/OnAbort release it).
func (st *heapPQState) reset() {
	st.redo = st.redo[:0]
	st.added = st.added[:0]
	st.removed = st.removed[:0]
	st.holds = false
}

func (q *HeapPQ) state(tx *Tx) *heapPQState {
	return tx.Attach(q, func() any { return &heapPQState{} }).(*heapPQState)
}

func (q *HeapPQ) peekState(tx *Tx) *heapPQState {
	if st, ok := tx.state[q]; ok {
		return st.(*heapPQState)
	}
	return nil
}

// Add enqueues key within tx (duplicates allowed). Before the transaction's
// first Min/RemoveMin this is purely local.
func (q *HeapPQ) Add(tx *Tx, key int64) {
	st := q.state(tx)
	if st.holds {
		q.pq.Add(key)
		st.added = append(st.added, key)
		return
	}
	st.redo = append(st.redo, key)
}

// RemoveMin dequeues the smallest key within tx; ok is false when empty.
func (q *HeapPQ) RemoveMin(tx *Tx) (int64, bool) {
	st := q.state(tx)
	q.ensureHeld(tx, st)
	key, ok := q.pq.RemoveMin()
	if ok {
		st.removed = append(st.removed, key)
	}
	return key, ok
}

// Min returns the smallest key within tx without removing it.
func (q *HeapPQ) Min(tx *Tx) (int64, bool) {
	st := q.state(tx)
	q.ensureHeld(tx, st)
	return q.pq.Min()
}

// ensureHeld acquires the global semantic lock (bounded, aborting on
// timeout) and publishes the pending local adds.
func (q *HeapPQ) ensureHeld(tx *Tx, st *heapPQState) {
	if st.holds {
		return
	}
	var b spin.Backoff
	for i := 0; ; i++ {
		if q.held.CompareAndSwap(false, true) {
			break
		}
		tx.Counters().IncCAS()
		if i >= pqAcquireAttempts {
			tx.tr.LockBusy(q.id)
			abort.Retry(abort.LockBusy)
		}
		b.Wait()
	}
	tx.tr.Lock(q.id)
	st.holds = true
	q.flushRedo(st)
}

func (q *HeapPQ) flushRedo(st *heapPQState) {
	for _, k := range st.redo {
		q.pq.Add(k)
		st.added = append(st.added, k)
	}
	st.redo = st.redo[:0]
}

// PreCommit acquires the lock for add-only transactions so their redo log
// can be published.
func (q *HeapPQ) PreCommit(tx *Tx) {
	st := q.peekState(tx)
	if st == nil || st.holds || len(st.redo) == 0 {
		return
	}
	q.ensureHeld(tx, st)
}

// OnCommit is a no-op: effects are applied when the lock is taken.
func (q *HeapPQ) OnCommit(tx *Tx) {}

// PostCommit releases the global lock and discards the undo trail.
func (q *HeapPQ) PostCommit(tx *Tx) {
	st := q.peekState(tx)
	if st == nil || !st.holds {
		return
	}
	st.added = st.added[:0]
	st.removed = st.removed[:0]
	st.holds = false
	q.held.Store(false)
	tx.tr.Unlock(q.id)
}

// OnAbort rolls back any effects applied under the lock (in reverse) and
// releases it.
func (q *HeapPQ) OnAbort(tx *Tx) {
	st := q.peekState(tx)
	if st == nil {
		return
	}
	st.redo = st.redo[:0]
	if !st.holds {
		return
	}
	for i := len(st.removed) - 1; i >= 0; i-- {
		q.pq.Add(st.removed[i])
	}
	for i := len(st.added) - 1; i >= 0; i-- {
		q.pq.RemoveOne(st.added[i])
	}
	st.added = st.added[:0]
	st.removed = st.removed[:0]
	st.holds = false
	q.held.Store(false)
}

// Dirty reports whether the transaction has pending or applied effects on
// this queue.
func (q *HeapPQ) Dirty(tx *Tx) bool {
	st := q.peekState(tx)
	return st != nil && (st.holds || len(st.redo) > 0)
}

// ValidateWithLocks is trivially true: the global lock admits no concurrent
// readers to invalidate.
func (q *HeapPQ) ValidateWithLocks(tx *Tx) bool { return true }

// ValidateWithoutLocks is trivially true.
func (q *HeapPQ) ValidateWithoutLocks(tx *Tx) bool { return true }

// Len returns the number of queued keys (reporting only; unsynchronized).
func (q *HeapPQ) Len() int { return q.pq.Len() }

var _ Datastructure = (*HeapPQ)(nil)

// SkipPQ is the fully optimistic skip-list priority queue (Algorithm 6): a
// thin wrapper over the OTB SkipSet plus, per transaction, a local
// sequential heap of this transaction's own pending adds and a
// lastRemovedMin cursor. No locks are taken before commit, and Min is
// lock-free.
type SkipPQ struct {
	set *SkipSet
}

// NewSkipPQ creates an empty queue. Keys are unique, as in the paper's
// implementation.
func NewSkipPQ() *SkipPQ { return &SkipPQ{set: NewSkipSet()} }

// Keys returns the unmarked keys in ascending order. Pinned like Len;
// meant for quiescent callers (tests, snapshots).
func (q *SkipPQ) Keys() []int64 { return q.set.Keys() }

// skipPQState is the per-transaction state for one SkipPQ.
type skipPQState struct {
	local       conc.SeqHeap
	lastRemoved *snode
}

// skipPQStateFor binds a recyclable state to its queue so reset can restore
// the cursor to the head.
type skipPQStateFor struct {
	skipPQState
	q *SkipPQ
}

// reset recycles the state for a new transaction.
func (st *skipPQStateFor) reset() {
	st.local.Clear()
	st.lastRemoved = st.q.set.head
}

func (q *SkipPQ) state(tx *Tx) *skipPQState {
	st := tx.Attach(q, func() any {
		s := &skipPQStateFor{q: q}
		s.lastRemoved = q.set.head
		return s
	}).(*skipPQStateFor)
	return &st.skipPQState
}

// Add enqueues key within tx, returning false if already queued.
func (q *SkipPQ) Add(tx *Tx, key int64) bool {
	st := q.state(tx)
	if !q.set.Add(tx, key) {
		return false
	}
	st.local.Add(key)
	return true
}

// firstLive returns the first present shared node after from, or nil when
// the rest of the structure is empty.
func (q *SkipPQ) firstLive(from *snode) *snode {
	for curr := from.next[0].Load(); curr.key != math.MaxInt64; curr = curr.next[0].Load() {
		if curr.fullyLinked.Load() && !curr.marked.Load() {
			return curr
		}
	}
	return nil
}

// RemoveMin dequeues the smallest key within tx; ok is false when the queue
// is empty. The shared minimum is tracked from the transaction's
// lastRemovedMin cursor and pinned in the semantic read set via the
// underlying set operations, exactly as Algorithm 6 prescribes.
func (q *SkipPQ) RemoveMin(tx *Tx) (int64, bool) {
	st := q.state(tx)
	localMin, lok := st.local.Min()
	shared := q.firstLive(st.lastRemoved)
	if lok && (shared == nil || localMin < shared.key) {
		if shared != nil {
			// Pin the shared minimum in the read set so a smaller insertion
			// by another transaction invalidates us.
			if !q.set.Contains(tx, shared.key) {
				tx.tr.NoteKey(traceKey(shared.key))
				abort.Retry(abort.Conflict)
			}
			if q.firstLive(st.lastRemoved) != shared {
				tx.tr.NoteKey(traceKey(shared.key))
				abort.Retry(abort.Conflict)
			}
		}
		// Dequeue a locally added item: cancel its pending add (the set
		// operations eliminate) and pop it from the local heap.
		if !q.set.Remove(tx, localMin) {
			tx.tr.NoteKey(traceKey(localMin))
			abort.Retry(abort.Conflict)
		}
		st.local.RemoveMin()
		return localMin, true
	}
	if shared == nil {
		return 0, false
	}
	if !q.set.Remove(tx, shared.key) {
		tx.tr.NoteKey(traceKey(shared.key))
		abort.Retry(abort.Conflict)
	}
	if q.firstLive(st.lastRemoved) != shared {
		tx.tr.NoteKey(traceKey(shared.key))
		abort.Retry(abort.Conflict)
	}
	st.lastRemoved = shared
	return shared.key, true
}

// Min returns the smallest queued key within tx without removing it. It is
// lock-free: pessimistic boosting must write-lock the whole queue here.
func (q *SkipPQ) Min(tx *Tx) (int64, bool) {
	st := q.state(tx)
	localMin, lok := st.local.Min()
	shared := q.firstLive(st.lastRemoved)
	if lok && (shared == nil || localMin < shared.key) {
		if shared != nil {
			if !q.set.Contains(tx, shared.key) {
				tx.tr.NoteKey(traceKey(shared.key))
				abort.Retry(abort.Conflict)
			}
		}
		return localMin, true
	}
	if shared == nil {
		return 0, false
	}
	if !q.set.Contains(tx, shared.key) {
		tx.tr.NoteKey(traceKey(shared.key))
		abort.Retry(abort.Conflict)
	}
	if q.firstLive(st.lastRemoved) != shared {
		tx.tr.NoteKey(traceKey(shared.key))
		abort.Retry(abort.Conflict)
	}
	return shared.key, true
}

// PreCommit, OnCommit, PostCommit and OnAbort delegate entirely to the
// wrapped set, which is attached to the same transaction; the queue itself
// holds no shared state beyond it.
func (q *SkipPQ) PreCommit(tx *Tx) {}

// OnCommit implements Datastructure (no queue-local shared state).
func (q *SkipPQ) OnCommit(tx *Tx) {}

// PostCommit implements Datastructure.
func (q *SkipPQ) PostCommit(tx *Tx) {}

// OnAbort implements Datastructure.
func (q *SkipPQ) OnAbort(tx *Tx) {}

// Dirty is false: the wrapped set carries the queue's writes.
func (q *SkipPQ) Dirty(tx *Tx) bool { return false }

// ValidateWithLocks is true: the wrapped set validates the queue's reads.
func (q *SkipPQ) ValidateWithLocks(tx *Tx) bool { return true }

// ValidateWithoutLocks is true for the same reason.
func (q *SkipPQ) ValidateWithoutLocks(tx *Tx) bool { return true }

// Len returns the number of queued keys (reporting only).
func (q *SkipPQ) Len() int { return q.set.Len() }

var _ Datastructure = (*SkipPQ)(nil)
