package otb

import (
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"
)

func TestSkipSetSequentialSemantics(t *testing.T) {
	s := NewSkipSet()
	run(t, func(tx *Tx) {
		if !s.Add(tx, 5) {
			t.Error("first Add(5) should succeed")
		}
		if s.Add(tx, 5) {
			t.Error("duplicate Add(5) in same tx should fail")
		}
		if !s.Contains(tx, 5) {
			t.Error("Contains(5) should see pending add")
		}
		if s.Remove(tx, 7) {
			t.Error("Remove(7) should fail")
		}
	})
	if got := s.Keys(); len(got) != 1 || got[0] != 5 {
		t.Fatalf("Keys = %v, want [5]", got)
	}
	run(t, func(tx *Tx) {
		if !s.Remove(tx, 5) {
			t.Error("Remove(5) should succeed")
		}
		if s.Contains(tx, 5) {
			t.Error("Contains(5) should see pending remove")
		}
	})
	if got := s.Len(); got != 0 {
		t.Fatalf("Len = %d, want 0", got)
	}
}

func TestSkipSetMultiOpCommit(t *testing.T) {
	s := NewSkipSet()
	run(t, func(tx *Tx) {
		for _, k := range []int64{10, 50} {
			s.Add(tx, k)
		}
	})
	run(t, func(tx *Tx) {
		if !s.Add(tx, 20) || !s.Add(tx, 30) || !s.Add(tx, 40) {
			t.Error("adds should succeed")
		}
	})
	want := []int64{10, 20, 30, 40, 50}
	if got := s.Keys(); !equalKeys(got, want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
	run(t, func(tx *Tx) {
		if !s.Add(tx, 45) || !s.Remove(tx, 50) || !s.Remove(tx, 20) {
			t.Error("mixed ops should succeed")
		}
	})
	want = []int64{10, 30, 40, 45}
	if got := s.Keys(); !equalKeys(got, want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
}

func TestSkipSetPairInvariant(t *testing.T) {
	const (
		pairs   = 32
		offset  = 1000
		workers = 8
		txsEach = 200
	)
	s := NewSkipSet()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, seed^0x5a5a5a))
			for i := 0; i < txsEach; i++ {
				k := int64(rng.IntN(pairs))
				Atomic(nil, func(tx *Tx) {
					if s.Contains(tx, k) {
						s.Remove(tx, k)
						s.Remove(tx, k+offset)
					} else {
						s.Add(tx, k)
						s.Add(tx, k+offset)
					}
				})
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	present := map[int64]bool{}
	for _, k := range s.Keys() {
		present[k] = true
	}
	for k := int64(0); k < pairs; k++ {
		if present[k] != present[k+offset] {
			t.Fatalf("pair invariant broken for %d", k)
		}
	}
}

func TestSkipSetConcurrentDisjoint(t *testing.T) {
	const workers = 8
	const each = 100
	s := NewSkipSet()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < each; i++ {
				k := base*each + i
				Atomic(nil, func(tx *Tx) {
					if !s.Add(tx, k) {
						t.Errorf("Add(%d) failed", k)
					}
				})
			}
		}(int64(w))
	}
	wg.Wait()
	if got := s.Len(); got != workers*each {
		t.Fatalf("Len = %d, want %d", got, workers*each)
	}
	keys := s.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys not strictly ascending: %v >= %v", keys[i-1], keys[i])
		}
	}
}

func TestSkipSetMatchesModel(t *testing.T) {
	f := func(ops []uint16) bool {
		s := NewSkipSet()
		model := map[int64]bool{}
		for _, op := range ops {
			key := int64(op % 64)
			var got bool
			switch (op / 64) % 3 {
			case 0:
				run(t, func(tx *Tx) { got = s.Add(tx, key) })
				if got != !model[key] {
					return false
				}
				model[key] = true
			case 1:
				run(t, func(tx *Tx) { got = s.Remove(tx, key) })
				if got != model[key] {
					return false
				}
				delete(model, key)
			default:
				run(t, func(tx *Tx) { got = s.Contains(tx, key) })
				if got != model[key] {
					return false
				}
			}
		}
		return len(model) == s.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
