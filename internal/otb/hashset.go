package otb

// HashSet is an optimistically boosted unordered set: a fixed array of
// bucket ListSets, each a full OTB structure. Because OTB transactions
// compose across structures, the hash set needs no mechanism of its own —
// an operation attaches only the buckets it touches, so transactions on
// different buckets share nothing and commit in parallel. This is the
// cheapest instance of Chapter 7's "more OTB data structures" direction,
// and the transactional analogue of a striped concurrent hash set.
type HashSet struct {
	buckets []*ListSet
	mask    uint64
}

// NewHashSet creates a set with n buckets (rounded up to a power of two).
func NewHashSet(n int) *HashSet {
	size := 1
	for size < n {
		size *= 2
	}
	s := &HashSet{buckets: make([]*ListSet, size), mask: uint64(size - 1)}
	for i := range s.buckets {
		s.buckets[i] = NewListSet()
	}
	return s
}

// bucket returns the bucket list for key.
func (s *HashSet) bucket(key int64) *ListSet {
	h := uint64(key) * 0x9e3779b97f4a7c15
	return s.buckets[(h>>32)&s.mask]
}

// Add inserts key within tx, returning false if present.
func (s *HashSet) Add(tx *Tx, key int64) bool { return s.bucket(key).Add(tx, key) }

// Remove deletes key within tx, returning false if absent.
func (s *HashSet) Remove(tx *Tx, key int64) bool { return s.bucket(key).Remove(tx, key) }

// Contains reports within tx whether key is present.
func (s *HashSet) Contains(tx *Tx, key int64) bool { return s.bucket(key).Contains(tx, key) }

// Len counts elements across buckets (not linearizable; tests/reporting).
func (s *HashSet) Len() int {
	n := 0
	for _, b := range s.buckets {
		n += b.Len()
	}
	return n
}
