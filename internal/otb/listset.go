package otb

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/abort"
	"repro/internal/mem/epoch"
	"repro/internal/spin"
)

// nodeSeq hands out allocation ids used as the global lock-acquisition
// order across all OTB structures.
var nodeSeq atomic.Uint64

// lnode is an OTB linked-list node: the lazy-list layout (key, next, marked)
// plus a versioned semantic lock, which replaces the lazy list's mutex so
// that validation can sample versions.
type lnode struct {
	id     uint64
	key    int64
	next   atomic.Pointer[lnode]
	marked atomic.Bool
	lock   spin.VersionedLock
}

// lnodePool recycles list nodes. Nodes flow back in through epoch
// reclamation only (freeLNode is the Retire callback), so a pooled node is
// never reused while any pinned transaction could still reach it. Recycled
// nodes keep their allocation id (the lock-ordering identity stays unique)
// and their lock version (monotone, so readers holding a stale sample of the
// node's previous life fail validation instead of silently passing).
var lnodePool = sync.Pool{New: func() any {
	return &lnode{id: nodeSeq.Add(1)}
}}

func newLNode(key int64) *lnode {
	n := lnodePool.Get().(*lnode)
	n.key = key
	n.marked.Store(false)
	n.next.Store(nil)
	return n
}

// freeLNode is the epoch.Retire callback returning a reclaimed node to the
// pool. Top-level so Retire call sites do not allocate a closure.
func freeLNode(v any) { lnodePool.Put(v) }

// checkKey rejects the sentinel keys, which would otherwise alias the
// head/tail nodes and corrupt the structure.
func checkKey(key int64) {
	if key == math.MinInt64 || key == math.MaxInt64 {
		panic("otb: sentinel key out of range")
	}
}

// traceKey maps a set key to a flight-recorder attribution key. Positive
// keys map to themselves so conflict tables stay readable; the rest are
// offset into the high half. The head sentinel lands on 0, which the
// recorder treats as "unattributed" — exactly right for a lock that guards
// no user key.
func traceKey(key int64) uint64 {
	if key > 0 {
		return uint64(key)
	}
	return uint64(key) ^ (1 << 63)
}

// opKind identifies a set operation.
type opKind int8

const (
	opContains opKind = iota
	opAdd
	opRemove
)

// ListSet is the optimistically boosted linked-list set (paper Algorithms
// 1–3). Operations traverse the shared list unmonitored, record semantic
// read/write entries, and defer all physical modification to commit.
type ListSet struct {
	head *lnode
	// fullValidation disables the paper's per-operation validation
	// optimization (presentOnly entries) so every read entry validates full
	// adjacency — the ablation of Section 3.2.1's "optimized validation".
	fullValidation bool
}

// NewListSet creates an empty set. Keys exclude the int64 sentinels.
func NewListSet() *ListSet {
	tail := newLNode(math.MaxInt64)
	head := newLNode(math.MinInt64)
	head.next.Store(tail)
	return &ListSet{head: head}
}

// NewListSetFullValidation creates a set with the validation optimization
// ablated (every entry validates pred/curr adjacency). For the ablation
// benches only.
func NewListSetFullValidation() *ListSet {
	s := NewListSet()
	s.fullValidation = true
	return s
}

// listRead is a semantic read entry. presentOnly entries (successful
// contains / unsuccessful add) validate only that curr is still unmarked;
// all others validate full adjacency (pred unmarked, curr unmarked,
// pred.next == curr).
type listRead struct {
	pred, curr  *lnode
	presentOnly bool
}

// listWrite is a semantic write (redo) entry.
type listWrite struct {
	pred, curr *lnode
	key        int64
	isAdd      bool
}

// listState is the per-transaction state for one ListSet.
type listState struct {
	reads    []listRead
	writes   []listWrite
	locked   []*lnode // nodes semantically locked by this transaction
	lockSnap []uint64 // scratch: sampled lock versions during validation
	toLock   []*lnode // scratch: deduplicated lock targets during PreCommit
}

// reset recycles the state for a new transaction.
func (st *listState) reset() {
	st.reads = st.reads[:0]
	st.writes = st.writes[:0]
	st.locked = st.locked[:0]
	st.lockSnap = st.lockSnap[:0]
	st.toLock = st.toLock[:0]
}

// addToLock appends n to the PreCommit lock-target scratch unless present.
func (st *listState) addToLock(n *lnode) {
	for _, m := range st.toLock {
		if m == n {
			return
		}
	}
	st.toLock = append(st.toLock, n)
}

func (s *ListSet) state(tx *Tx) *listState {
	return tx.Attach(s, func() any { return &listState{} }).(*listState)
}

// peekState returns the transaction's state for s without attaching.
func (s *ListSet) peekState(tx *Tx) *listState {
	if st, ok := tx.state[s]; ok {
		return st.(*listState)
	}
	return nil
}

// Add inserts key within tx, returning false if already present.
func (s *ListSet) Add(tx *Tx, key int64) bool { return s.op(tx, key, opAdd) }

// Remove deletes key within tx, returning false if absent.
func (s *ListSet) Remove(tx *Tx, key int64) bool { return s.op(tx, key, opRemove) }

// Contains reports within tx whether key is present. Like the lazy list's
// contains — and unlike pessimistic boosting — it acquires no locks, ever.
func (s *ListSet) Contains(tx *Tx, key int64) bool { return s.op(tx, key, opContains) }

// op implements Algorithm 1: local write-set check, unmonitored traversal,
// post-validation, then recording of semantic reads and writes.
func (s *ListSet) op(tx *Tx, key int64, kind opKind) bool {
	checkKey(key)
	st := s.state(tx)
	tx.tr.Op(traceKey(key))

	// Step 1: consult the local write set so the transaction reads its own
	// deferred writes; opposite operations on the same key eliminate.
	if i := st.findWrite(key); i >= 0 {
		isAdd := st.writes[i].isAdd
		switch {
		case isAdd && kind == opAdd:
			return false
		case isAdd && kind == opContains:
			return true
		case isAdd && kind == opRemove:
			st.deleteWrite(i)
			return true
		case !isAdd && kind == opAdd:
			st.deleteWrite(i)
			return true
		default: // pending remove: key locally absent
			return false
		}
	}

	// Step 2: unmonitored traversal, exactly as in the lazy list.
	pred := s.head
	curr := pred.next.Load()
	for curr.key < key {
		pred = curr
		curr = curr.next.Load()
	}

	// Step 3: post-validate the whole transaction (opacity).
	tx.PostValidate()

	// Step 4: compute the outcome and record semantic entries.
	present := curr.key == key && !curr.marked.Load()
	presentOnly := present && !s.fullValidation
	switch kind {
	case opContains:
		st.reads = append(st.reads, listRead{pred: pred, curr: curr, presentOnly: presentOnly})
		return present
	case opAdd:
		if present {
			st.reads = append(st.reads, listRead{pred: pred, curr: curr, presentOnly: presentOnly})
			return false
		}
		st.reads = append(st.reads, listRead{pred: pred, curr: curr})
		st.writes = append(st.writes, listWrite{pred: pred, curr: curr, key: key, isAdd: true})
		return true
	default: // opRemove
		if !present {
			st.reads = append(st.reads, listRead{pred: pred, curr: curr})
			return false
		}
		st.reads = append(st.reads, listRead{pred: pred, curr: curr})
		st.writes = append(st.writes, listWrite{pred: pred, curr: curr, key: key, isAdd: false})
		return true
	}
}

func (st *listState) findWrite(key int64) int {
	for i := range st.writes {
		if st.writes[i].key == key {
			return i
		}
	}
	return -1
}

func (st *listState) deleteWrite(i int) {
	last := len(st.writes) - 1
	st.writes[i] = st.writes[last]
	st.writes = st.writes[:last]
}

func (st *listState) owns(n *lnode) bool {
	for _, l := range st.locked {
		if l == n {
			return true
		}
	}
	return false
}

// involved appends the nodes whose locks guard entry e (curr only for
// presentOnly entries; pred and curr otherwise).
func (e *listRead) involved(buf []*lnode) []*lnode {
	if e.presentOnly {
		return append(buf, e.curr)
	}
	return append(buf, e.pred, e.curr)
}

// check re-evaluates the entry's semantic condition (Algorithm 2).
func (e *listRead) check() bool {
	if e.presentOnly {
		return !e.curr.marked.Load()
	}
	return !e.pred.marked.Load() && !e.curr.marked.Load() &&
		e.pred.next.Load() == e.curr
}

// ValidateWithLocks implements Algorithm 2's three phases: sample the
// involved locks (failing on foreign holders), re-check the semantic
// conditions, then confirm the sampled versions are unchanged, which makes
// the whole read set validate atomically.
func (s *ListSet) ValidateWithLocks(tx *Tx) bool {
	st := s.peekState(tx)
	if st == nil || len(st.reads) == 0 {
		return true
	}
	var scratch [2]*lnode
	st.lockSnap = st.lockSnap[:0]
	for i := range st.reads {
		for _, n := range st.reads[i].involved(scratch[:0]) {
			if st.owns(n) {
				st.lockSnap = append(st.lockSnap, ownedVersion)
				continue
			}
			v := n.lock.Sample()
			if spin.IsLocked(v) {
				tx.tr.ValidateFail(traceKey(n.key))
				return false
			}
			st.lockSnap = append(st.lockSnap, v)
		}
	}
	if !s.ValidateWithoutLocks(tx) {
		return false
	}
	k := 0
	for i := range st.reads {
		for _, n := range st.reads[i].involved(scratch[:0]) {
			v := st.lockSnap[k]
			k++
			if v == ownedVersion {
				continue
			}
			if n.lock.Sample() != v {
				tx.tr.ValidateFail(traceKey(n.key))
				return false
			}
		}
	}
	return true
}

// ownedVersion marks a lock-snapshot slot belonging to a node this
// transaction itself holds (valid by construction).
const ownedVersion = ^uint64(0)

// ValidateWithoutLocks re-checks only the semantic conditions of the read
// set.
func (s *ListSet) ValidateWithoutLocks(tx *Tx) bool {
	st := s.peekState(tx)
	if st == nil {
		return true
	}
	for i := range st.reads {
		if !st.reads[i].check() {
			tx.tr.ValidateFail(traceKey(st.reads[i].curr.key))
			return false
		}
	}
	return true
}

// PreCommit acquires the semantic locks covering the write set: pred for
// adds, pred and curr for removes (the lazy-list locking rule), deduplicated
// and ordered by allocation id. Any busy lock aborts.
func (s *ListSet) PreCommit(tx *Tx) {
	st := s.peekState(tx)
	if st == nil || len(st.writes) == 0 {
		return
	}
	st.toLock = st.toLock[:0]
	for i := range st.writes {
		st.addToLock(st.writes[i].pred)
		if !st.writes[i].isAdd {
			st.addToLock(st.writes[i].curr)
		}
	}
	sortNodesByID(st.toLock)
	for _, n := range st.toLock {
		if _, ok := n.lock.TryLock(); !ok {
			tx.Counters().IncCAS()
			tx.tr.LockBusy(traceKey(n.key))
			abort.Retry(abort.LockBusy)
		}
		tx.tr.Lock(traceKey(n.key))
		st.locked = append(st.locked, n)
	}
}

// OnCommit publishes the write set (Algorithm 3): entries are applied in
// descending key order, each re-traversing from its saved pred so that
// earlier publications by the same transaction are observed. Inserted nodes
// are created locked and released in PostCommit.
func (s *ListSet) OnCommit(tx *Tx) {
	st := s.peekState(tx)
	if st == nil || len(st.writes) == 0 {
		return
	}
	sortListWritesByKeyDesc(st.writes)
	for i := range st.writes {
		w := &st.writes[i]
		pred := w.pred
		curr := pred.next.Load()
		for curr.key < w.key {
			pred = curr
			curr = pred.next.Load()
		}
		if w.isAdd {
			n := newLNode(w.key)
			n.lock.TryLock() // created locked until the commit finishes
			n.next.Store(curr)
			pred.next.Store(n)
			st.locked = append(st.locked, n)
		} else {
			// curr must be the victim: it is locked by us, so no other
			// transaction can have unlinked it. Once unlinked it is retired:
			// the epoch scheme recycles it into the node pool after every
			// transaction that could still be traversing it has unpinned.
			curr.marked.Store(true)
			pred.next.Store(curr.next.Load())
			tx.retire(curr, freeLNode)
		}
	}
}

// sortNodesByID insertion-sorts nodes ascending by allocation id (the
// global lock order). Write sets are small; insertion sort avoids the
// reflection allocations of sort.Slice on the commit path.
func sortNodesByID(nodes []*lnode) {
	for i := 1; i < len(nodes); i++ {
		n := nodes[i]
		j := i - 1
		for j >= 0 && nodes[j].id > n.id {
			nodes[j+1] = nodes[j]
			j--
		}
		nodes[j+1] = n
	}
}

// sortListWritesByKeyDesc insertion-sorts write entries descending by key
// (the publication order of Algorithm 3), allocation-free.
func sortListWritesByKeyDesc(ws []listWrite) {
	for i := 1; i < len(ws); i++ {
		w := ws[i]
		j := i - 1
		for j >= 0 && ws[j].key < w.key {
			ws[j+1] = ws[j]
			j--
		}
		ws[j+1] = w
	}
}

// PostCommit releases all semantic locks, bumping their versions so
// concurrent validations observe the commit.
func (s *ListSet) PostCommit(tx *Tx) {
	st := s.peekState(tx)
	if st == nil {
		return
	}
	for _, n := range st.locked {
		n.lock.Unlock()
		tx.tr.Unlock(traceKey(n.key))
	}
	st.locked = st.locked[:0]
}

// OnAbort releases locks held by an aborting transaction. Nothing was
// published (OnCommit cannot fail), so versions are restored unchanged to
// avoid spuriously invalidating concurrent readers.
func (s *ListSet) OnAbort(tx *Tx) {
	st := s.peekState(tx)
	if st == nil {
		return
	}
	for _, n := range st.locked {
		n.lock.UnlockUnchanged()
	}
	st.locked = st.locked[:0]
}

// Dirty reports whether the transaction has pending writes on this set.
func (s *ListSet) Dirty(tx *Tx) bool {
	st := s.peekState(tx)
	return st != nil && len(st.writes) > 0
}

// Len counts the unmarked elements (not linearizable; tests and reporting).
// The traversal pins an epoch guard so concurrent removals cannot recycle
// nodes out from under it.
func (s *ListSet) Len() int {
	g := epoch.Default.Enter()
	defer g.Exit()
	n := 0
	for curr := s.head.next.Load(); curr.key != math.MaxInt64; curr = curr.next.Load() {
		if !curr.marked.Load() {
			n++
		}
	}
	return n
}

// Keys returns the unmarked keys in ascending order (tests only). Pinned
// like Len.
func (s *ListSet) Keys() []int64 {
	g := epoch.Default.Enter()
	defer g.Exit()
	var out []int64
	for curr := s.head.next.Load(); curr.key != math.MaxInt64; curr = curr.next.Load() {
		if !curr.marked.Load() {
			out = append(out, curr.key)
		}
	}
	return out
}

var _ Datastructure = (*ListSet)(nil)
