// Package otb implements Optimistic Transactional Boosting, the paper's
// primary contribution: transactional versions of lazy data structures that
// traverse without instrumentation, record semantic read/write sets,
// post-validate after every operation (opacity), and defer all physical
// modification to a two-phase-locked commit.
//
// Four boosted structures are provided, matching the paper:
//
//   - ListSet: linked-list set (Algorithms 1–3)
//   - SkipSet: skip-list set (Section 3.2.1)
//   - HeapPQ: semi-optimistic heap priority queue (Algorithm 5)
//   - SkipPQ: skip-list priority queue (Algorithm 6)
//
// Standalone use goes through Atomic:
//
//	set := otb.NewListSet()
//	otb.Atomic(nil, func(tx *otb.Tx) {
//		set.Add(tx, 1)
//		set.Add(tx, 2)
//	})
//
// For mixed transactions that also read and write STM memory, see package
// integrate, which drives the same structures through the Chapter 4
// OTB-DS interface (PreCommit / OnCommit / PostCommit / OnAbort /
// Validate[Without]Locks).
package otb

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/abort"
	"repro/internal/chaos/failpoint"
	"repro/internal/cm"
	"repro/internal/mem/epoch"
	"repro/internal/spin"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Failpoints on the OTB validation and commit paths; disarmed they are one
// atomic load each. See DESIGN.md's "Failure model" for placement rules.
var (
	// fpValidateMid fires inside post-validation, before the semantic read
	// sets are checked — nothing is held, so any action is recoverable.
	fpValidateMid = failpoint.New("otb.validate.mid")
	// fpCommitPreLock fires at the top of commit, before any semantic lock
	// is acquired.
	fpCommitPreLock = failpoint.New("otb.commit.pre-lock")
	// fpCommitPostLock fires after every semantic lock is held but before
	// anything is published — the most dangerous window; recovery must
	// release the locks via OnAbort.
	fpCommitPostLock = failpoint.New("otb.commit.post-lock")
)

// Datastructure is the OTB-DS interface of Chapter 4: the sub-routines an
// STM context calls to drive a boosted structure through commit and
// validation. Every OTB structure in this package implements it.
type Datastructure interface {
	// PreCommit acquires the semantic locks covering the transaction's
	// write set, aborting (via panic) if any is busy.
	PreCommit(tx *Tx)
	// OnCommit publishes the semantic write set to the shared structure.
	// Semantic locks must already be held.
	OnCommit(tx *Tx)
	// PostCommit releases the semantic locks after a successful commit.
	PostCommit(tx *Tx)
	// OnAbort releases any semantic locks still held by an aborting
	// transaction without publishing anything.
	OnAbort(tx *Tx)
	// ValidateWithLocks checks the semantic read set, including that the
	// involved nodes are not locked by other transactions (sampling lock
	// versions around the semantic check).
	ValidateWithLocks(tx *Tx) bool
	// ValidateWithoutLocks checks only the semantic conditions of the read
	// set, for callers that synchronize by other means (e.g. the OTB-NOrec
	// context, whose global lock already excludes writers).
	ValidateWithoutLocks(tx *Tx) bool
	// Dirty reports whether the transaction has pending semantic writes on
	// this structure (used by integration contexts for their read-only
	// commit fast path).
	Dirty(tx *Tx) bool
}

// Tx is a semantic transaction over any number of OTB data structures. It
// tracks which structures were touched (in first-touch order), holds their
// per-transaction semantic read/write sets, and coordinates validation and
// two-phase-locked commit across all of them.
type Tx struct {
	attached []Datastructure
	state    map[Datastructure]any
	ctr      *spin.Counters
	eg       *epoch.Guard     // epoch pin covering the current attempt; may be nil
	tel      *telemetry.Local // standalone (Atomic) recording handle; may be nil
	tr       *trace.Local     // flight-recorder handle; may be nil

	// validator, when non-nil, replaces the default post-validation
	// strategy (ValidateWithLocks on every attached structure). The
	// integration contexts install their own co-validation of memory and
	// semantic read sets here.
	validator func(*Tx)
}

// NewTx creates a transaction descriptor. Counters may be nil. Most callers
// should use Atomic instead; NewTx is exported for the integration layer,
// which embeds the semantic transaction inside an STM context.
func NewTx(ctr *spin.Counters) *Tx {
	return &Tx{state: make(map[Datastructure]any), ctr: ctr}
}

// SetValidator replaces the post-validation strategy (the paper's
// onOperationValidate). Passing nil restores the standalone default.
func (tx *Tx) SetValidator(f func(*Tx)) { tx.validator = f }

// SetTraceLocal attaches a flight-recorder handle so the semantic layer's
// operations, lock acquisitions and validation failures are traced into the
// caller's span. Integration contexts install their own handle here;
// standalone descriptors get one from the pool. Nil is a valid no-op handle.
func (tx *Tx) SetTraceLocal(l *trace.Local) { tx.tr = l }

// Trace returns the transaction's flight-recorder handle (possibly nil; all
// its methods are nil-safe).
func (tx *Tx) Trace() *trace.Local { return tx.tr }

// HasSemanticWrites reports whether any attached structure has pending
// semantic writes.
func (tx *Tx) HasSemanticWrites() bool {
	for _, ds := range tx.attached {
		if ds.Dirty(tx) {
			return true
		}
	}
	return false
}

// ValidateAllWithoutLocks checks the semantic conditions of every attached
// structure, without lock checks.
func (tx *Tx) ValidateAllWithoutLocks() bool {
	for _, ds := range tx.attached {
		if !ds.ValidateWithoutLocks(tx) {
			return false
		}
	}
	return true
}

// ValidateAllWithLocks checks every attached structure including semantic
// lock status.
func (tx *Tx) ValidateAllWithLocks() bool {
	for _, ds := range tx.attached {
		if !ds.ValidateWithLocks(tx) {
			return false
		}
	}
	return true
}

// PreCommitAll / OnCommitAll / PostCommitAll / OnAbortAll drive the
// commit sub-routines of every attached structure; the integration
// contexts sequence them around their memory commit.

// PreCommitAll acquires semantic locks on every attached structure.
func (tx *Tx) PreCommitAll() {
	for _, ds := range tx.attached {
		ds.PreCommit(tx)
	}
}

// OnCommitAll publishes the semantic write sets of every attached structure.
func (tx *Tx) OnCommitAll() {
	for _, ds := range tx.attached {
		ds.OnCommit(tx)
	}
}

// PostCommitAll releases semantic locks on every attached structure.
func (tx *Tx) PostCommitAll() {
	for _, ds := range tx.attached {
		ds.PostCommit(tx)
	}
}

// OnAbortAll releases anything held by an aborting transaction.
func (tx *Tx) OnAbortAll() {
	for _, ds := range tx.attached {
		ds.OnAbort(tx)
	}
}

// Counters returns the contention counters (possibly nil).
func (tx *Tx) Counters() *spin.Counters { return tx.ctr }

// Pin enters an epoch-reclamation critical region covering the current
// attempt: nodes this transaction can reach (its traversals, read and write
// sets) are guaranteed not to be recycled until Unpin. Atomic pins around
// every attempt automatically; integration contexts, which drive attempts
// themselves, call Pin in their begin hook and Unpin when the attempt ends
// (commit or rollback). Pin is idempotent within one attempt.
func (tx *Tx) Pin() {
	if tx.eg == nil {
		tx.eg = epoch.Default.Enter()
	}
}

// Unpin exits the epoch critical region, flushing any retirements made
// during the attempt. Safe to call when not pinned.
func (tx *Tx) Unpin() {
	if tx.eg != nil {
		tx.eg.Exit()
		tx.eg = nil
	}
}

// retire schedules an unlinked node for recycling once every concurrent
// reader is done with it. Without a pin (a caller driving Tx manually
// outside Atomic and the integration contexts) the node is simply dropped
// for the garbage collector — always safe, never reused.
func (tx *Tx) retire(v any, free func(any)) {
	if tx.eg != nil {
		tx.eg.Retire(v, free)
	}
}

// txState is implemented by per-structure transaction states that can be
// recycled across transactions.
type txState interface{ reset() }

// Attach registers ds with the transaction (idempotent) and returns its
// per-transaction state, creating it with mk on first touch. States are
// cached across transactions on the same descriptor and reset on re-attach.
func (tx *Tx) Attach(ds Datastructure, mk func() any) any {
	for _, a := range tx.attached {
		if a == ds {
			return tx.state[ds]
		}
	}
	st, ok := tx.state[ds]
	if !ok {
		st = mk()
		tx.state[ds] = st
	} else if r, ok := st.(txState); ok {
		r.reset()
	}
	tx.attached = append(tx.attached, ds)
	return st
}

// Attached returns the structures touched by this transaction in
// first-touch order.
func (tx *Tx) Attached() []Datastructure { return tx.attached }

// Reset clears the transaction for reuse. Cached per-structure states are
// retained and reset lazily on their next Attach.
func (tx *Tx) Reset() {
	tx.attached = tx.attached[:0]
}

// PostValidate runs after every operation: it validates the semantic read
// sets of all attached structures (guaranteeing opacity, as NOrec does at
// the memory level), aborting on failure. Integration contexts install a
// replacement strategy via SetValidator.
func (tx *Tx) PostValidate() {
	fpValidateMid.Hit()
	if tx.validator != nil {
		tx.validator(tx)
		return
	}
	if !tx.ValidateAllWithLocks() {
		abort.Retry(abort.Conflict)
	}
	tx.tr.Validated()
}

// Commit runs the standalone two-phase commit across all attached
// structures: acquire all semantic locks, validate all read sets, publish
// all write sets, release. Any failure aborts (the rollback path releases
// acquired locks via OnAbort).
func (tx *Tx) Commit() {
	fpCommitPreLock.Hit()
	for _, ds := range tx.attached {
		ds.PreCommit(tx)
	}
	fpCommitPostLock.Hit()
	for _, ds := range tx.attached {
		if !ds.ValidateWithLocks(tx) {
			abort.Retry(abort.Conflict)
		}
	}
	tx.tr.Validated()
	for _, ds := range tx.attached {
		ds.OnCommit(tx)
	}
	for _, ds := range tx.attached {
		ds.PostCommit(tx)
	}
}

// Rollback releases anything held by an aborting transaction and clears it.
func (tx *Tx) Rollback() {
	for _, ds := range tx.attached {
		ds.OnAbort(tx)
	}
	tx.Reset()
}

// meter collects standalone-OTB statistics; integration contexts record to
// their own meters instead.
var meter = telemetry.M("OTB")

// cmgr is the contention manager for standalone (Atomic) transactions; nil
// means the shared cm.Default manager.
var cmgr atomic.Pointer[cm.Manager]

func init() {
	meter.SetPolicySource(func() string { return cm.Or(cmgr.Load()).Policy().Name() })
}

// SetManager installs the contention manager standalone transactions run
// under (nil restores the shared default). Safe during live traffic.
func SetManager(m *cm.Manager) { cmgr.Store(m) }

// standaloneRunner drives one standalone transaction through the retry loop
// via abort.TxRunner methods, so the hot path allocates no closures.
type standaloneRunner struct {
	tx *Tx
	fn func(*Tx)
}

func (r *standaloneRunner) Begin() {
	r.tx.Reset()
	r.tx.tr.AttemptStart()
	r.tx.Pin()
}

func (r *standaloneRunner) Attempt() {
	r.fn(r.tx)
	cs := r.tx.tel.Start()
	r.tx.tr.CommitBegin()
	r.tx.Commit()
	r.tx.tr.CommitEnd()
	r.tx.tel.CommitPhase(cs)
	r.tx.Unpin()
}

func (r *standaloneRunner) Rollback(reason abort.Reason) {
	r.tx.Rollback()
	r.tx.Unpin()
	r.tx.tel.Abort(reason)
	r.tx.tr.Abort(reason)
}

// txPool recycles standalone transaction descriptors (and their state maps)
// across Atomic calls. Each descriptor carries a shard-bound telemetry
// handle; the pool keeps descriptors per-P, so recording stays uncontended.
var txPool = sync.Pool{New: func() any {
	tx := NewTx(nil)
	tx.tel = meter.Local()
	tx.tr = traceSrc.Local()
	return &standaloneRunner{tx: tx}
}}

// traceSrc is the standalone-OTB flight-recorder source; integration
// contexts record under their own names via SetTraceLocal.
var traceSrc = trace.S("OTB")

// Atomic runs fn as a standalone OTB transaction, retrying on abort until
// it commits. Stats may be nil.
func Atomic(stats *abort.Stats, fn func(*Tx)) {
	AtomicCtrCtx(nil, stats, nil, fn)
}

// AtomicCtx is Atomic observing ctx: cancellation or deadline expiry is
// checked at every retry-loop top and inside contention-management waits;
// an abandoned transaction rolls back with abort.Canceled and the context's
// error is returned (nil after a successful commit).
func AtomicCtx(ctx context.Context, stats *abort.Stats, fn func(*Tx)) error {
	return AtomicCtrCtx(ctx, stats, nil, fn)
}

// AtomicCtr is Atomic with contention counters attached to the transaction.
func AtomicCtr(stats *abort.Stats, ctr *spin.Counters, fn func(*Tx)) {
	AtomicCtrCtx(nil, stats, ctr, fn)
}

// AtomicCtrCtx is the full standalone entry point: context plus counters.
// The transaction descriptor returns to its pool even when fn (or an armed
// failpoint) panics — by then the rollback path has already released every
// semantic lock and discarded the logs, so the descriptor is clean.
func AtomicCtrCtx(ctx context.Context, stats *abort.Stats, ctr *spin.Counters, fn func(*Tx)) error {
	r := txPool.Get().(*standaloneRunner)
	tx := r.tx
	tx.ctr = ctr
	r.fn = fn
	defer func() {
		tx.Reset()
		tx.ctr = nil
		r.fn = nil
		txPool.Put(r)
	}()
	start := tx.tel.Start()
	tx.tr.TxStart()
	defer tx.tr.TxEnd()
	escalated, err := abort.RunPolicyTxCtx(ctx, stats, cm.Or(cmgr.Load()), r)
	if escalated {
		tx.tel.Escalated()
		tx.tr.Escalated()
	}
	if err != nil {
		return err
	}
	tx.tel.Commit(start)
	return nil
}
