package otb

import (
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"repro/internal/abort"
	"repro/internal/mem/epoch"
	"repro/internal/spin"
)

// maxLevel is the number of skip-list levels.
const maxLevel = 20

// snode is an OTB skip-list node: the lazy skip-list layout plus a
// versioned semantic lock.
type snode struct {
	id          uint64
	key         int64
	next        [maxLevel]atomic.Pointer[snode]
	topLevel    int
	marked      atomic.Bool
	fullyLinked atomic.Bool
	lock        spin.VersionedLock
}

// snodePool recycles skip-list nodes through epoch reclamation, like
// lnodePool: recycled towers keep their allocation id and lock version, and
// a node reaches the pool only after every transaction that could have been
// traversing it has unpinned.
var snodePool = sync.Pool{New: func() any {
	return &snode{id: nodeSeq.Add(1)}
}}

func newSNode(key int64, topLevel int) *snode {
	n := snodePool.Get().(*snode)
	n.key = key
	n.topLevel = topLevel
	n.marked.Store(false)
	n.fullyLinked.Store(false)
	return n
}

// freeSNode is the epoch.Retire callback returning a reclaimed tower to the
// pool. The tower's next pointers are cleared so a pooled node does not
// retain arbitrary subgraphs of a dead structure.
func freeSNode(v any) {
	n := v.(*snode)
	for l := 0; l <= n.topLevel; l++ {
		n.next[l].Store(nil)
	}
	snodePool.Put(n)
}

// sortSNodesByID insertion-sorts nodes ascending by allocation id (the
// global lock order), allocation-free on the commit path.
func sortSNodesByID(nodes []*snode) {
	for i := 1; i < len(nodes); i++ {
		n := nodes[i]
		j := i - 1
		for j >= 0 && nodes[j].id > n.id {
			nodes[j+1] = nodes[j]
			j--
		}
		nodes[j+1] = n
	}
}

// sortSkipWritesByKeyDesc insertion-sorts write entries descending by key
// (publication order), allocation-free.
func sortSkipWritesByKeyDesc(ws []skipWrite) {
	for i := 1; i < len(ws); i++ {
		w := ws[i]
		j := i - 1
		for j >= 0 && ws[j].key < w.key {
			ws[j+1] = ws[j]
			j--
		}
		ws[j+1] = w
	}
}

// SkipSet is the optimistically boosted skip-list set (Section 3.2.1): the
// same three-step structure as ListSet, with per-level predecessor arrays
// in the semantic entries and the paper's level-aware validation
// optimizations.
type SkipSet struct {
	head *snode
	// fullValidation ablates the level-aware validation optimization:
	// every read entry validates adjacency at all populated levels.
	fullValidation bool
}

// NewSkipSet creates an empty set. Keys exclude the int64 sentinels.
func NewSkipSet() *SkipSet {
	tail := newSNode(math.MaxInt64, maxLevel-1)
	tail.fullyLinked.Store(true)
	head := newSNode(math.MinInt64, maxLevel-1)
	for i := range head.next {
		head.next[i].Store(tail)
	}
	head.fullyLinked.Store(true)
	return &SkipSet{head: head}
}

// NewSkipSetFullValidation creates a set with the level-aware validation
// optimization ablated. For the ablation benches only.
func NewSkipSetFullValidation() *SkipSet {
	s := NewSkipSet()
	s.fullValidation = true
	return s
}

// skipReadKind selects which of the paper's validation rules applies.
type skipReadKind int8

const (
	skipPresentOnly skipReadKind = iota // successful contains / unsuccessful add
	skipBottomOnly                      // unsuccessful remove / contains
	skipFull                            // successful add / remove
)

// skipRead is a semantic read entry.
type skipRead struct {
	kind     skipReadKind
	curr     *snode // the key's node (present cases) or bottom-level succ
	topLevel int    // levels validated for skipFull entries
	preds    [maxLevel]*snode
	succs    [maxLevel]*snode
}

// skipWrite is a semantic write (redo) entry.
type skipWrite struct {
	key      int64
	isAdd    bool
	topLevel int    // tower height: new node's (add) or victim's (remove)
	victim   *snode // remove only
	preds    [maxLevel]*snode
}

// skipState is the per-transaction state for one SkipSet.
type skipState struct {
	reads    []skipRead
	writes   []skipWrite
	locked   []*snode
	lockSnap []uint64
	toLock   []*snode // scratch: deduplicated lock targets during PreCommit
}

// reset recycles the state for a new transaction.
func (st *skipState) reset() {
	st.reads = st.reads[:0]
	st.writes = st.writes[:0]
	st.locked = st.locked[:0]
	st.lockSnap = st.lockSnap[:0]
	st.toLock = st.toLock[:0]
}

// addToLock appends n to the PreCommit lock-target scratch unless present.
func (st *skipState) addToLock(n *snode) {
	for _, m := range st.toLock {
		if m == n {
			return
		}
	}
	st.toLock = append(st.toLock, n)
}

func (s *SkipSet) state(tx *Tx) *skipState {
	return tx.Attach(s, func() any { return &skipState{} }).(*skipState)
}

func (s *SkipSet) peekState(tx *Tx) *skipState {
	if st, ok := tx.state[s]; ok {
		return st.(*skipState)
	}
	return nil
}

// find fills preds/succs with key's per-level neighbours in the shared
// structure and returns the highest level at which key was found, or -1.
func (s *SkipSet) find(key int64, preds, succs *[maxLevel]*snode) int {
	found := -1
	pred := s.head
	for level := maxLevel - 1; level >= 0; level-- {
		curr := pred.next[level].Load()
		for curr.key < key {
			pred = curr
			curr = pred.next[level].Load()
		}
		if found == -1 && curr.key == key {
			found = level
		}
		preds[level] = pred
		succs[level] = curr
	}
	return found
}

// randomTower draws a tower height with geometric distribution p=1/2.
func randomTower() int {
	lvl := 0
	for lvl < maxLevel-1 && rand.Uint64()&1 == 1 {
		lvl++
	}
	return lvl
}

// Add inserts key within tx, returning false if already present.
func (s *SkipSet) Add(tx *Tx, key int64) bool { return s.op(tx, key, opAdd) }

// Remove deletes key within tx, returning false if absent.
func (s *SkipSet) Remove(tx *Tx, key int64) bool { return s.op(tx, key, opRemove) }

// Contains reports within tx whether key is present, lock-free.
func (s *SkipSet) Contains(tx *Tx, key int64) bool { return s.op(tx, key, opContains) }

func (s *SkipSet) op(tx *Tx, key int64, kind opKind) bool {
	checkKey(key)
	st := s.state(tx)
	tx.tr.Op(traceKey(key))

	// Step 1: local write-set check with elimination (as in ListSet).
	if i := st.findWrite(key); i >= 0 {
		isAdd := st.writes[i].isAdd
		switch {
		case isAdd && kind == opAdd:
			return false
		case isAdd && kind == opContains:
			return true
		case isAdd && kind == opRemove:
			st.deleteWrite(i)
			return true
		case !isAdd && kind == opAdd:
			st.deleteWrite(i)
			return true
		default:
			return false
		}
	}

	// Step 2: unmonitored probabilistic traversal.
	var preds, succs [maxLevel]*snode
	found := s.find(key, &preds, &succs)

	// A found node still being linked by another commit: wait, as in the
	// lazy skip list.
	if found != -1 {
		var b spin.Backoff
		for !succs[found].fullyLinked.Load() {
			b.Wait()
		}
	}

	// Step 3: post-validate the whole transaction.
	tx.PostValidate()

	// Step 4: outcome and semantic entries.
	var curr *snode
	present := false
	if found != -1 {
		curr = succs[found]
		present = !curr.marked.Load()
	}
	presentKind, absentKind := skipPresentOnly, skipBottomOnly
	presentTop := 0
	if s.fullValidation {
		presentKind, absentKind = skipFull, skipFull
		if curr != nil {
			presentTop = curr.topLevel
		}
	}
	switch kind {
	case opContains:
		if present {
			st.reads = append(st.reads, skipRead{kind: presentKind, curr: curr, topLevel: presentTop, preds: preds, succs: succs})
		} else {
			st.reads = append(st.reads, skipRead{kind: absentKind, preds: preds, succs: succs})
		}
		return present
	case opAdd:
		if present {
			st.reads = append(st.reads, skipRead{kind: presentKind, curr: curr, topLevel: presentTop, preds: preds, succs: succs})
			return false
		}
		top := randomTower()
		st.reads = append(st.reads, skipRead{kind: skipFull, topLevel: top, preds: preds, succs: succs})
		st.writes = append(st.writes, skipWrite{key: key, isAdd: true, topLevel: top, preds: preds})
		return true
	default: // opRemove
		if !present {
			st.reads = append(st.reads, skipRead{kind: absentKind, preds: preds, succs: succs})
			return false
		}
		st.reads = append(st.reads, skipRead{
			kind: skipFull, curr: curr, topLevel: curr.topLevel, preds: preds, succs: succs,
		})
		st.writes = append(st.writes, skipWrite{
			key: key, isAdd: false, topLevel: curr.topLevel, victim: curr, preds: preds,
		})
		return true
	}
}

func (st *skipState) findWrite(key int64) int {
	for i := range st.writes {
		if st.writes[i].key == key {
			return i
		}
	}
	return -1
}

func (st *skipState) deleteWrite(i int) {
	last := len(st.writes) - 1
	st.writes[i] = st.writes[last]
	st.writes = st.writes[:last]
}

func (st *skipState) owns(n *snode) bool {
	for _, l := range st.locked {
		if l == n {
			return true
		}
	}
	return false
}

// involved appends the nodes whose locks guard entry e.
func (e *skipRead) involved(buf []*snode) []*snode {
	switch e.kind {
	case skipPresentOnly:
		return append(buf, e.curr)
	case skipBottomOnly:
		return append(buf, e.preds[0], e.succs[0])
	default:
		for l := 0; l <= e.topLevel; l++ {
			buf = append(buf, e.preds[l], e.succs[l])
		}
		return buf
	}
}

// check re-evaluates the entry's semantic condition using the paper's
// level-aware rules.
func (e *skipRead) check() bool {
	switch e.kind {
	case skipPresentOnly:
		return !e.curr.marked.Load()
	case skipBottomOnly:
		return !e.preds[0].marked.Load() && !e.succs[0].marked.Load() &&
			e.preds[0].next[0].Load() == e.succs[0]
	default:
		for l := 0; l <= e.topLevel; l++ {
			if e.preds[l].marked.Load() || e.succs[l].marked.Load() ||
				e.preds[l].next[l].Load() != e.succs[l] {
				return false
			}
		}
		return true
	}
}

// ValidateWithLocks implements the three-phase validation of Algorithm 2
// over skip-list entries.
func (s *SkipSet) ValidateWithLocks(tx *Tx) bool {
	st := s.peekState(tx)
	if st == nil || len(st.reads) == 0 {
		return true
	}
	var scratch [2 * maxLevel]*snode
	st.lockSnap = st.lockSnap[:0]
	for i := range st.reads {
		for _, n := range st.reads[i].involved(scratch[:0]) {
			if st.owns(n) {
				st.lockSnap = append(st.lockSnap, ownedVersion)
				continue
			}
			v := n.lock.Sample()
			if spin.IsLocked(v) {
				tx.tr.ValidateFail(traceKey(n.key))
				return false
			}
			st.lockSnap = append(st.lockSnap, v)
		}
	}
	if !s.ValidateWithoutLocks(tx) {
		return false
	}
	k := 0
	for i := range st.reads {
		for _, n := range st.reads[i].involved(scratch[:0]) {
			v := st.lockSnap[k]
			k++
			if v == ownedVersion {
				continue
			}
			if n.lock.Sample() != v {
				tx.tr.ValidateFail(traceKey(n.key))
				return false
			}
		}
	}
	return true
}

// ValidateWithoutLocks re-checks only the semantic conditions.
func (s *SkipSet) ValidateWithoutLocks(tx *Tx) bool {
	st := s.peekState(tx)
	if st == nil {
		return true
	}
	for i := range st.reads {
		if !st.reads[i].check() {
			tx.tr.ValidateFail(traceKey(st.reads[i].traceNode().key))
			return false
		}
	}
	return true
}

// traceNode names a read entry for conflict attribution: the key's own
// node when the read saw it present, otherwise the bottom-level successor
// bounding the searched range (curr is nil for absent reads).
func (e *skipRead) traceNode() *snode {
	if e.curr != nil {
		return e.curr
	}
	return e.succs[0]
}

// PreCommit locks, in allocation order, the distinct predecessor towers of
// every write (all levels), plus the victim for removes.
func (s *SkipSet) PreCommit(tx *Tx) {
	st := s.peekState(tx)
	if st == nil || len(st.writes) == 0 {
		return
	}
	st.toLock = st.toLock[:0]
	for i := range st.writes {
		w := &st.writes[i]
		for l := 0; l <= w.topLevel; l++ {
			st.addToLock(w.preds[l])
		}
		if !w.isAdd {
			st.addToLock(w.victim)
		}
	}
	sortSNodesByID(st.toLock)
	for _, n := range st.toLock {
		if _, ok := n.lock.TryLock(); !ok {
			tx.Counters().IncCAS()
			tx.tr.LockBusy(traceKey(n.key))
			abort.Retry(abort.LockBusy)
		}
		tx.tr.Lock(traceKey(n.key))
		st.locked = append(st.locked, n)
	}
}

// OnCommit publishes the write set in descending key order, re-traversing
// each level from the saved predecessor so that this transaction's earlier
// publications are observed (each level independently, as the paper notes).
func (s *SkipSet) OnCommit(tx *Tx) {
	st := s.peekState(tx)
	if st == nil || len(st.writes) == 0 {
		return
	}
	sortSkipWritesByKeyDesc(st.writes)
	for i := range st.writes {
		w := &st.writes[i]
		if w.isAdd {
			n := newSNode(w.key, w.topLevel)
			n.lock.TryLock() // created locked until the commit finishes
			// Link bottom-up: once a reader can reach n at some level, all
			// lower next pointers are already set.
			for l := 0; l <= w.topLevel; l++ {
				pred, succ := retraverse(w.preds[l], w.key, l)
				n.next[l].Store(succ)
				pred.next[l].Store(n)
			}
			n.fullyLinked.Store(true)
			st.locked = append(st.locked, n)
		} else {
			w.victim.marked.Store(true)
			for l := w.topLevel; l >= 0; l-- {
				pred, _ := retraverse(w.preds[l], w.key, l)
				pred.next[l].Store(w.victim.next[l].Load())
			}
			// Fully unlinked; recycle once concurrent traversals unpin.
			tx.retire(w.victim, freeSNode)
		}
	}
}

// retraverse advances from the saved predecessor to the current (pred,
// succ) pair for key at the given level. Only nodes written by this same
// commit can have appeared in the interval, so the walk is short and safe.
func retraverse(pred *snode, key int64, level int) (*snode, *snode) {
	curr := pred.next[level].Load()
	for curr.key < key {
		pred = curr
		curr = pred.next[level].Load()
	}
	return pred, curr
}

// PostCommit releases all semantic locks, bumping versions.
func (s *SkipSet) PostCommit(tx *Tx) {
	st := s.peekState(tx)
	if st == nil {
		return
	}
	for _, n := range st.locked {
		n.lock.Unlock()
		tx.tr.Unlock(traceKey(n.key))
	}
	st.locked = st.locked[:0]
}

// OnAbort releases locks without publishing, restoring versions.
func (s *SkipSet) OnAbort(tx *Tx) {
	st := s.peekState(tx)
	if st == nil {
		return
	}
	for _, n := range st.locked {
		n.lock.UnlockUnchanged()
	}
	st.locked = st.locked[:0]
}

// Dirty reports whether the transaction has pending writes on this set.
func (s *SkipSet) Dirty(tx *Tx) bool {
	st := s.peekState(tx)
	return st != nil && len(st.writes) > 0
}

// Min returns the smallest present key in the shared structure (used by the
// skip-list priority queue's traversal step; consistency is established by
// the caller's semantic entries).
func (s *SkipSet) Min() (int64, bool) {
	for curr := s.head.next[0].Load(); curr.key != math.MaxInt64; curr = curr.next[0].Load() {
		if curr.fullyLinked.Load() && !curr.marked.Load() {
			return curr.key, true
		}
	}
	return 0, false
}

// Len counts the present elements (not linearizable; tests and reporting).
// The traversal pins an epoch guard so concurrent removals cannot recycle
// nodes out from under it.
func (s *SkipSet) Len() int {
	g := epoch.Default.Enter()
	defer g.Exit()
	n := 0
	for curr := s.head.next[0].Load(); curr.key != math.MaxInt64; curr = curr.next[0].Load() {
		if curr.fullyLinked.Load() && !curr.marked.Load() {
			n++
		}
	}
	return n
}

// Keys returns the present keys in ascending order (tests only). Pinned
// like Len.
func (s *SkipSet) Keys() []int64 {
	g := epoch.Default.Enter()
	defer g.Exit()
	var out []int64
	for curr := s.head.next[0].Load(); curr.key != math.MaxInt64; curr = curr.next[0].Load() {
		if curr.fullyLinked.Load() && !curr.marked.Load() {
			out = append(out, curr.key)
		}
	}
	return out
}

var _ Datastructure = (*SkipSet)(nil)
