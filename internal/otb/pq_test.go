package otb

import (
	"math/rand/v2"
	"sort"
	"sync"
	"testing"

	"repro/internal/abort"
)

func TestHeapPQSequential(t *testing.T) {
	q := NewHeapPQ()
	run(t, func(tx *Tx) {
		q.Add(tx, 5)
		q.Add(tx, 1)
		q.Add(tx, 3)
	})
	var order []int64
	run(t, func(tx *Tx) {
		for {
			k, ok := q.RemoveMin(tx)
			if !ok {
				break
			}
			order = append(order, k)
		}
	})
	if !equalKeys(order, []int64{1, 3, 5}) {
		t.Fatalf("dequeue order = %v, want [1 3 5]", order)
	}
}

func TestHeapPQLocalAddsVisibleToRemoveMin(t *testing.T) {
	q := NewHeapPQ()
	run(t, func(tx *Tx) {
		q.Add(tx, 10)
		// The pending local add must be flushed before the first RemoveMin.
		k, ok := q.RemoveMin(tx)
		if !ok || k != 10 {
			t.Errorf("RemoveMin = %d,%v; want 10,true", k, ok)
		}
	})
	if q.Len() != 0 {
		t.Fatalf("Len = %d, want 0", q.Len())
	}
}

func TestHeapPQAbortRollsBack(t *testing.T) {
	q := NewHeapPQ()
	run(t, func(tx *Tx) { q.Add(tx, 1); q.Add(tx, 2) })
	attempts := 0
	Atomic(nil, func(tx *Tx) {
		attempts++
		k, ok := q.RemoveMin(tx)
		if !ok || k != 1 {
			t.Errorf("RemoveMin = %d,%v; want 1,true", k, ok)
		}
		q.Add(tx, 7)
		if attempts == 1 {
			abort.Retry(abort.Explicit)
		}
	})
	var order []int64
	run(t, func(tx *Tx) {
		for {
			k, ok := q.RemoveMin(tx)
			if !ok {
				break
			}
			order = append(order, k)
		}
	})
	if !equalKeys(order, []int64{2, 7}) {
		t.Fatalf("remaining = %v, want [2 7]", order)
	}
}

func TestHeapPQConcurrentConservation(t *testing.T) {
	const workers = 6
	const txsEach = 150
	q := NewHeapPQ()
	seed := func(tx *Tx) {
		for i := int64(0); i < 100; i++ {
			q.Add(tx, i*7)
		}
	}
	run(t, seed)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := 0; i < txsEach; i++ {
				v := base*1_000_000 + int64(i) + 1000
				Atomic(nil, func(tx *Tx) {
					q.Add(tx, v)
					if _, ok := q.RemoveMin(tx); !ok {
						t.Error("queue unexpectedly empty")
					}
				})
			}
		}(int64(w))
	}
	wg.Wait()
	if got := q.Len(); got != 100 {
		t.Fatalf("Len = %d, want 100 (add/removeMin pairs conserve size)", got)
	}
}

func TestSkipPQSequential(t *testing.T) {
	q := NewSkipPQ()
	run(t, func(tx *Tx) {
		for _, k := range []int64{5, 1, 3} {
			if !q.Add(tx, k) {
				t.Errorf("Add(%d)", k)
			}
		}
	})
	run(t, func(tx *Tx) {
		if k, ok := q.Min(tx); !ok || k != 1 {
			t.Errorf("Min = %d,%v; want 1,true", k, ok)
		}
	})
	var order []int64
	run(t, func(tx *Tx) {
		for {
			k, ok := q.RemoveMin(tx)
			if !ok {
				break
			}
			order = append(order, k)
		}
	})
	if !equalKeys(order, []int64{1, 3, 5}) {
		t.Fatalf("dequeue order = %v, want [1 3 5]", order)
	}
}

func TestSkipPQLocalVsShared(t *testing.T) {
	q := NewSkipPQ()
	run(t, func(tx *Tx) { q.Add(tx, 10); q.Add(tx, 20) })
	// A locally added smaller key must win over the shared minimum.
	run(t, func(tx *Tx) {
		q.Add(tx, 5)
		if k, ok := q.RemoveMin(tx); !ok || k != 5 {
			t.Errorf("RemoveMin = %d,%v; want 5,true", k, ok)
		}
		if k, ok := q.RemoveMin(tx); !ok || k != 10 {
			t.Errorf("RemoveMin = %d,%v; want 10,true", k, ok)
		}
	})
	if got := q.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
}

func TestSkipPQEmpty(t *testing.T) {
	q := NewSkipPQ()
	run(t, func(tx *Tx) {
		if _, ok := q.RemoveMin(tx); ok {
			t.Error("RemoveMin on empty queue should report empty")
		}
		if _, ok := q.Min(tx); ok {
			t.Error("Min on empty queue should report empty")
		}
	})
}

func TestSkipPQConcurrentDrain(t *testing.T) {
	const total = 400
	const workers = 4
	q := NewSkipPQ()
	run(t, func(tx *Tx) {
		for i := int64(1); i <= total; i++ {
			q.Add(tx, i)
		}
	})
	var mu sync.Mutex
	var drained []int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				var k int64
				var ok bool
				Atomic(nil, func(tx *Tx) { k, ok = q.RemoveMin(tx) })
				if !ok {
					return
				}
				mu.Lock()
				drained = append(drained, k)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(drained) != total {
		t.Fatalf("drained %d keys, want %d", len(drained), total)
	}
	sort.Slice(drained, func(i, j int) bool { return drained[i] < drained[j] })
	for i, k := range drained {
		if k != int64(i+1) {
			t.Fatalf("drained[%d] = %d, want %d (no key lost or duplicated)", i, k, i+1)
		}
	}
}

func TestSkipPQInterleavedAddRemove(t *testing.T) {
	const workers = 6
	const txsEach = 100
	q := NewSkipPQ()
	run(t, func(tx *Tx) {
		for i := int64(0); i < 50; i++ {
			q.Add(tx, i*1000)
		}
	})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, seed*31))
			for i := 0; i < txsEach; i++ {
				v := int64(seed)*10_000_000 + int64(i) + 100_000
				_ = rng
				Atomic(nil, func(tx *Tx) {
					q.Add(tx, v)
					if _, ok := q.RemoveMin(tx); !ok {
						t.Error("unexpected empty queue")
					}
				})
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	if got := q.Len(); got != 50 {
		t.Fatalf("Len = %d, want 50", got)
	}
}
