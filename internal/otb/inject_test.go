package otb

import (
	"testing"

	"repro/internal/abort"
	"repro/internal/chaos"
)

// TestCommitAbortsWhenNodeLockedExternally injects a held semantic lock on
// a node in the write-set path and checks that commit aborts (LockBusy) and
// succeeds once the lock is released.
func TestCommitAbortsWhenNodeLockedExternally(t *testing.T) {
	s := NewListSet()
	run(t, func(tx *Tx) { s.Add(tx, 10); s.Add(tx, 30) })

	// Lock node 10 (the pred of an insert of 20) as a foreign holder.
	victim := s.head.next.Load() // node 10
	if victim.key != 10 {
		t.Fatalf("unexpected layout: first key %d", victim.key)
	}
	release := chaos.HoldVersionedLock(t, &victim.lock)

	// Drive one attempt by hand: PreCommit must abort with LockBusy.
	tx := NewTx(nil)
	s.Add(tx, 20)
	chaos.ExpectAbort(t, abort.LockBusy, tx.Commit)
	tx.Rollback()

	// After the foreign holder releases, the same transaction succeeds.
	release()
	run(t, func(tx *Tx) { s.Add(tx, 20) })
	want := []int64{10, 20, 30}
	if got := s.Keys(); !equalKeys(got, want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
}

// TestValidationFailsWhenNodeRemovedUnderneath checks that a transaction
// whose read set is invalidated by a concurrent committed remove aborts and
// retries rather than committing a stale answer.
func TestValidationFailsWhenNodeRemovedUnderneath(t *testing.T) {
	s := NewListSet()
	run(t, func(tx *Tx) { s.Add(tx, 5) })
	attempts := 0
	Atomic(nil, func(tx *Tx) {
		attempts++
		present := s.Contains(tx, 5)
		if attempts == 1 {
			if !present {
				t.Error("first attempt should see 5")
			}
			// A concurrent transaction removes 5 and commits.
			chaos.CommitConcurrently(func() {
				Atomic(nil, func(tx2 *Tx) { s.Remove(tx2, 5) })
			})
			// Our presentOnly entry for 5 is now invalid; the next
			// operation's post-validation must abort us.
			s.Contains(tx, 99)
			t.Error("post-validation should have aborted attempt 1")
		}
	})
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
}

// TestSkipSetValidationAbortsOnConflict is the skip-list analogue.
func TestSkipSetValidationAbortsOnConflict(t *testing.T) {
	s := NewSkipSet()
	run(t, func(tx *Tx) { s.Add(tx, 5) })
	attempts := 0
	Atomic(nil, func(tx *Tx) {
		attempts++
		present := s.Contains(tx, 5)
		if attempts == 1 {
			if !present {
				t.Error("first attempt should see 5")
			}
			chaos.CommitConcurrently(func() {
				Atomic(nil, func(tx2 *Tx) { s.Remove(tx2, 5) })
			})
			s.Contains(tx, 99)
			t.Error("post-validation should have aborted attempt 1")
		}
	})
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
}

// TestAbsentEntryInvalidatedByInsert checks the adjacency (readAbsent)
// validation: a concurrent insert between pred and curr must doom a
// transaction that reported the key absent.
func TestAbsentEntryInvalidatedByInsert(t *testing.T) {
	s := NewListSet()
	run(t, func(tx *Tx) { s.Add(tx, 1); s.Add(tx, 9) })
	attempts := 0
	Atomic(nil, func(tx *Tx) {
		attempts++
		present := s.Contains(tx, 5)
		if attempts == 1 {
			if present {
				t.Error("5 should be absent initially")
			}
			chaos.CommitConcurrently(func() {
				Atomic(nil, func(tx2 *Tx) { s.Add(tx2, 5) })
			})
			s.Contains(tx, 99) // triggers post-validation
			t.Error("adjacency validation should have aborted attempt 1")
		} else if !present {
			t.Error("retry should observe 5 present")
		}
	})
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
}

// TestAbortInjectorForcesRetries checks the chaos injector against the OTB
// retry loop: exactly n forced aborts, then a clean commit.
func TestAbortInjectorForcesRetries(t *testing.T) {
	s := NewListSet()
	inj := chaos.NewAbortInjector(3, abort.Conflict)
	var st abort.Stats
	attempts := 0
	Atomic(&st, func(tx *Tx) {
		attempts++
		inj.Hit()
		s.Add(tx, 7)
	})
	if attempts != 4 {
		t.Fatalf("attempts = %d, want 4", attempts)
	}
	if st.Aborts != 3 {
		t.Fatalf("aborts = %d, want 3", st.Aborts)
	}
	run(t, func(tx *Tx) {
		if !s.Contains(tx, 7) {
			t.Error("7 should have been inserted on the final attempt")
		}
	})
}
