package otb

import (
	"testing"

	"repro/internal/abort"
)

// TestCommitAbortsWhenNodeLockedExternally injects a held semantic lock on
// a node in the write-set path and checks that commit aborts (LockBusy) and
// succeeds once the lock is released.
func TestCommitAbortsWhenNodeLockedExternally(t *testing.T) {
	s := NewListSet()
	run(t, func(tx *Tx) { s.Add(tx, 10); s.Add(tx, 30) })

	// Lock node 10 (the pred of an insert of 20) as a foreign holder.
	victim := s.head.next.Load() // node 10
	if victim.key != 10 {
		t.Fatalf("unexpected layout: first key %d", victim.key)
	}
	if _, ok := victim.lock.TryLock(); !ok {
		t.Fatal("could not take foreign lock")
	}

	// Drive one attempt by hand: PreCommit must abort with LockBusy.
	tx := NewTx(nil)
	s.Add(tx, 20)
	func() {
		defer func() {
			sig, ok := recover().(abort.Signal)
			if !ok {
				t.Fatalf("expected abort signal, got %v", sig)
			}
			if sig.Reason != abort.LockBusy {
				t.Fatalf("reason = %v, want LockBusy", sig.Reason)
			}
		}()
		tx.Commit()
		t.Fatal("commit should have aborted under a foreign lock")
	}()
	tx.Rollback()

	// After the foreign holder releases, the same transaction succeeds.
	victim.lock.UnlockUnchanged()
	run(t, func(tx *Tx) { s.Add(tx, 20) })
	want := []int64{10, 20, 30}
	if got := s.Keys(); !equalKeys(got, want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
}

// TestValidationFailsWhenNodeRemovedUnderneath checks that a transaction
// whose read set is invalidated by a concurrent committed remove aborts and
// retries rather than committing a stale answer.
func TestValidationFailsWhenNodeRemovedUnderneath(t *testing.T) {
	s := NewListSet()
	run(t, func(tx *Tx) { s.Add(tx, 5) })
	attempts := 0
	Atomic(nil, func(tx *Tx) {
		attempts++
		present := s.Contains(tx, 5)
		if attempts == 1 {
			if !present {
				t.Error("first attempt should see 5")
			}
			// A concurrent transaction removes 5 and commits.
			done := make(chan struct{})
			go func() {
				Atomic(nil, func(tx2 *Tx) { s.Remove(tx2, 5) })
				close(done)
			}()
			<-done
			// Our presentOnly entry for 5 is now invalid; the next
			// operation's post-validation must abort us.
			s.Contains(tx, 99)
			t.Error("post-validation should have aborted attempt 1")
		}
	})
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
}

// TestSkipSetValidationAbortsOnConflict is the skip-list analogue.
func TestSkipSetValidationAbortsOnConflict(t *testing.T) {
	s := NewSkipSet()
	run(t, func(tx *Tx) { s.Add(tx, 5) })
	attempts := 0
	Atomic(nil, func(tx *Tx) {
		attempts++
		present := s.Contains(tx, 5)
		if attempts == 1 {
			if !present {
				t.Error("first attempt should see 5")
			}
			done := make(chan struct{})
			go func() {
				Atomic(nil, func(tx2 *Tx) { s.Remove(tx2, 5) })
				close(done)
			}()
			<-done
			s.Contains(tx, 99)
			t.Error("post-validation should have aborted attempt 1")
		}
	})
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
}

// TestAbsentEntryInvalidatedByInsert checks the adjacency (readAbsent)
// validation: a concurrent insert between pred and curr must doom a
// transaction that reported the key absent.
func TestAbsentEntryInvalidatedByInsert(t *testing.T) {
	s := NewListSet()
	run(t, func(tx *Tx) { s.Add(tx, 1); s.Add(tx, 9) })
	attempts := 0
	Atomic(nil, func(tx *Tx) {
		attempts++
		present := s.Contains(tx, 5)
		if attempts == 1 {
			if present {
				t.Error("5 should be absent initially")
			}
			done := make(chan struct{})
			go func() {
				Atomic(nil, func(tx2 *Tx) { s.Add(tx2, 5) })
				close(done)
			}()
			<-done
			s.Contains(tx, 99) // triggers post-validation
			t.Error("adjacency validation should have aborted attempt 1")
		} else if !present {
			t.Error("retry should observe 5 present")
		}
	})
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
}
