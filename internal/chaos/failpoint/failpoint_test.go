package failpoint

import (
	"testing"
	"time"

	"repro/internal/abort"
)

func TestDisarmedIsNoop(t *testing.T) {
	fp := New("test.noop.point")
	defer Disarm(fp.Name())
	for i := 0; i < 1000; i++ {
		fp.Hit()
	}
	if fp.Armed() {
		t.Fatal("never armed, but Armed() = true")
	}
}

func TestNthTrigger(t *testing.T) {
	fp := New("test.nth.point")
	defer fp.Disarm()
	fp.Arm(Spec{Action: Panic, Nth: 3})
	hitPanicked := func() (panicked bool) {
		defer func() {
			if p := recover(); p != nil {
				pv, ok := p.(*PanicValue)
				if !ok {
					t.Fatalf("panic value %T, want *PanicValue", p)
				}
				if pv.Name != "test.nth.point" || pv.Hit != 3 {
					t.Fatalf("panic value %+v, want name test.nth.point hit 3", pv)
				}
				panicked = true
			}
		}()
		fp.Hit()
		return false
	}
	for i := 1; i <= 10; i++ {
		got := hitPanicked()
		if want := i == 3; got != want {
			t.Fatalf("hit %d: panicked = %v, want %v", i, got, want)
		}
	}
}

func TestEveryTrigger(t *testing.T) {
	fp := New("test.every.point")
	defer fp.Disarm()
	fp.Arm(Spec{Action: Abort, Every: 4})
	fired := 0
	for i := 1; i <= 12; i++ {
		func() {
			defer func() {
				if p := recover(); p != nil {
					if _, ok := p.(abort.Signal); !ok {
						panic(p)
					}
					fired++
				}
			}()
			fp.Hit()
		}()
	}
	if fired != 3 {
		t.Fatalf("every:4 over 12 hits fired %d times, want 3", fired)
	}
}

func TestProbDeterministicPerSeed(t *testing.T) {
	fp := New("test.prob.point")
	defer fp.Disarm()
	run := func(seed uint64) []int {
		fp.Arm(Spec{Action: Abort, Prob: 0.3, Seed: seed})
		var fires []int
		for i := 1; i <= 200; i++ {
			func() {
				defer func() {
					if p := recover(); p != nil {
						if _, ok := p.(abort.Signal); !ok {
							panic(p)
						}
						fires = append(fires, i)
					}
				}()
				fp.Hit()
			}()
		}
		return fires
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("same seed, different fire counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different fire ordinals at %d: %d vs %d", i, a[i], b[i])
		}
	}
	if len(a) < 30 || len(a) > 90 {
		t.Fatalf("prob 0.3 over 200 hits fired %d times, want roughly 60", len(a))
	}
}

func TestDelayAndYield(t *testing.T) {
	fp := New("test.delay.point")
	defer fp.Disarm()
	fp.Arm(Spec{Action: Delay, Delay: 5 * time.Millisecond})
	start := time.Now()
	fp.Hit()
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("delay action slept %v, want >= 5ms", d)
	}
	fp.Arm(Spec{Action: Yield})
	fp.Hit() // must not panic or block
}

func TestApplySyntax(t *testing.T) {
	fp := New("test.apply.point")
	defer DisarmAll()
	if err := Apply("test.apply.point=panic@nth:2"); err != nil {
		t.Fatal(err)
	}
	if !fp.Armed() {
		t.Fatal("Apply did not arm a registered point")
	}
	fp.Hit() // hit 1: no fire
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("hit 2 did not fire")
			}
		}()
		fp.Hit()
	}()

	// Arming before registration (FAILPOINTS= consumed at process start).
	if err := Apply("test.apply.late=delay:2ms"); err != nil {
		t.Fatal(err)
	}
	late := New("test.apply.late")
	if !late.Armed() {
		t.Fatal("pending env spec not applied at registration")
	}

	for _, bad := range []string{
		"noequals", "=panic", "x=frobnicate", "x=panic@nth:0",
		"x=panic@prob:1.5", "x=delay:bogus", "x=panic@wat:1",
	} {
		if err := Apply(bad); err == nil {
			t.Errorf("Apply(%q) succeeded, want error", bad)
		}
	}
}

func TestNamesAndLookup(t *testing.T) {
	fp := New("test.names.point")
	found := false
	for _, n := range Names() {
		if n == fp.Name() {
			found = true
		}
	}
	if !found {
		t.Fatal("registered point missing from Names()")
	}
	if got, ok := Lookup("test.names.point"); !ok || got != fp {
		t.Fatal("Lookup did not return the registered point")
	}
	if _, ok := Lookup("test.names.missing"); ok {
		t.Fatal("Lookup found an unregistered point")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	New("test.dup.point")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate New did not panic")
		}
	}()
	New("test.dup.point")
}
