// Package failpoint is a registry of named fault-injection points threaded
// through every commit and validation path in the repository. A disarmed
// failpoint costs one atomic pointer load per hit — cheap enough to leave
// compiled into the hot paths permanently — and an armed one executes a
// configured fault action on a configured schedule.
//
// Failpoints exist to prove the robustness claims the runtimes make: that a
// panic after commit-time locks are taken still releases them, that a forced
// abort mid-validation is indistinguishable from a real conflict, that the
// serial gate reopens when its owner dies. The crash-recovery suite arms
// every registered point in turn and checks those invariants; see
// DESIGN.md's "Failure model" section.
//
// # Naming
//
// Names are dotted paths, <runtime>.<operation>.<position>:
//
//	otb.commit.post-lock    after OTB's commit locks are acquired
//	norec.validate.mid      halfway through NOrec's value-based validation
//	boosting.lock.partial   after some but not all abstract locks are held
//	rtc.server.drop         in the RTC server loop, before serving a request
//
// # Arming
//
// Programmatically:
//
//	defer failpoint.Arm("otb.commit.post-lock", failpoint.Spec{
//		Action: failpoint.Panic, Nth: 3,
//	})()
//
// or from the environment, consumed when the process starts (and applied to
// points registered later, too):
//
//	FAILPOINTS='otb.commit.post-lock=panic@nth:3;norec.validate.mid=abort@prob:0.01,seed:42'
//
// The cmd binaries also accept the same syntax via -failpoints.
//
// # Actions and triggers
//
// Actions: panic (a *failpoint.Panic value — recovered by the runtimes'
// rollback paths and re-raised to the caller), abort (a forced transactional
// abort via abort.Retry(Conflict), indistinguishable from a real conflict),
// delay (sleep Spec.Delay, widening race windows), yield (runtime.Gosched,
// the cheapest scheduling perturbation).
//
// Triggers compose with any action: Nth fires exactly once on the nth hit;
// Every fires on every k-th hit; Prob fires with the given probability,
// deterministically derived from Seed and the hit ordinal so a run is
// reproducible from its seed; default is every hit.
package failpoint

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/abort"
)

// Action is the fault a failpoint injects when it fires.
type Action int

const (
	// Panic panics with a *Panic value. Runtimes recover it on their
	// rollback paths (releasing locks and logs) and re-raise it to the
	// caller of Atomic/Run.
	Panic Action = iota
	// Abort forces a transactional abort (abort.Retry with Conflict), which
	// the retry loop handles exactly like a real validation failure.
	Abort
	// Delay sleeps for Spec.Delay before continuing, widening race windows.
	Delay
	// Yield calls runtime.Gosched, perturbing scheduling at the point.
	Yield
)

// String returns the action's FAILPOINTS-syntax name.
func (a Action) String() string {
	switch a {
	case Panic:
		return "panic"
	case Abort:
		return "abort"
	case Delay:
		return "delay"
	case Yield:
		return "yield"
	default:
		return "unknown"
	}
}

// PanicValue is the value an armed Panic-action failpoint panics with.
// Callers of Atomic/Run recover it to distinguish injected crashes from real
// bugs.
type PanicValue struct {
	// Name is the failpoint that fired.
	Name string
	// Hit is the 1-based hit ordinal at which it fired.
	Hit uint64
}

// Error lets a recovered *PanicValue print usefully.
func (p *PanicValue) Error() string {
	return fmt.Sprintf("failpoint %s fired (hit %d)", p.Name, p.Hit)
}

// Spec configures an armed failpoint: one action plus an optional trigger
// schedule. Zero trigger fields mean "fire on every hit".
type Spec struct {
	// Action is the fault to inject.
	Action Action
	// Delay is the sleep duration for the Delay action.
	Delay time.Duration
	// Nth, if nonzero, fires exactly once: on the nth hit (1-based).
	Nth uint64
	// Every, if nonzero, fires on hits n where n%Every == 0.
	Every uint64
	// Prob, if nonzero, fires each hit with this probability in (0,1],
	// decided deterministically from Seed and the hit ordinal.
	Prob float64
	// Seed seeds the per-hit probability decision; runs with equal seeds
	// fire on the same hit ordinals.
	Seed uint64
}

// armed is the immutable armed state swapped into FP.st.
type armed struct {
	spec Spec
	hits atomic.Uint64
}

// FP is one registered failpoint. The zero value is not usable; points are
// created by New (typically as package-level vars next to the code they
// instrument).
type FP struct {
	name string
	// st is nil while disarmed — the only state the hot path ever loads.
	st atomic.Pointer[armed]
}

// registry maps names to registered points; pendingEnv holds FAILPOINTS=
// specs whose points are not registered yet (package init order is
// unspecified, so env arming must tolerate any registration order).
var registry struct {
	mu         sync.Mutex
	points     map[string]*FP
	pendingEnv map[string]Spec
}

func init() {
	registry.points = make(map[string]*FP)
	registry.pendingEnv = make(map[string]Spec)
	if env := os.Getenv("FAILPOINTS"); env != "" {
		if err := Apply(env); err != nil {
			fmt.Fprintln(os.Stderr, "failpoint: ignoring invalid FAILPOINTS:", err)
		}
	}
}

// New registers a failpoint under name and returns it. Registering the same
// name twice panics: names are global identities the test suites enumerate.
// If a FAILPOINTS= spec (or an earlier Apply) named this point, it is armed
// immediately.
func New(name string) *FP {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.points[name]; dup {
		panic("failpoint: duplicate registration of " + name)
	}
	fp := &FP{name: name}
	registry.points[name] = fp
	if spec, ok := registry.pendingEnv[name]; ok {
		delete(registry.pendingEnv, name)
		fp.st.Store(&armed{spec: spec})
	}
	return fp
}

// Lookup returns the registered point with the given name, if any.
func Lookup(name string) (*FP, bool) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	fp, ok := registry.points[name]
	return fp, ok
}

// Names returns every registered failpoint name, sorted. The crash-recovery
// suite uses it to prove each point has a scenario.
func Names() []string {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	names := make([]string, 0, len(registry.points))
	for n := range registry.points {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Arm arms the named point with spec and returns a disarm function (use with
// defer in tests). Unknown names are remembered and applied if the point
// registers later, matching FAILPOINTS= semantics.
func Arm(name string, spec Spec) (disarm func()) {
	registry.mu.Lock()
	fp, ok := registry.points[name]
	if !ok {
		registry.pendingEnv[name] = spec
		registry.mu.Unlock()
		return func() { Disarm(name) }
	}
	registry.mu.Unlock()
	fp.Arm(spec)
	return fp.Disarm
}

// Disarm disarms the named point (and drops any pending spec for it).
func Disarm(name string) {
	registry.mu.Lock()
	fp, ok := registry.points[name]
	delete(registry.pendingEnv, name)
	registry.mu.Unlock()
	if ok {
		fp.Disarm()
	}
}

// DisarmAll disarms every registered point and clears pending specs.
// Crash-recovery tests call it between scenarios.
func DisarmAll() {
	registry.mu.Lock()
	points := make([]*FP, 0, len(registry.points))
	for _, fp := range registry.points {
		points = append(points, fp)
	}
	registry.pendingEnv = make(map[string]Spec)
	registry.mu.Unlock()
	for _, fp := range points {
		fp.Disarm()
	}
}

// Apply parses a FAILPOINTS-syntax string and arms each named point. The
// grammar, entries separated by ';':
//
//	name=action[@trigger[,trigger...]]
//	action  = panic | abort | delay:<duration> | yield
//	trigger = nth:<n> | every:<k> | prob:<p>[,seed:<s>]
//
// Example: "otb.commit.post-lock=panic@nth:3;norec.validate.mid=delay:1ms".
// Points not yet registered are armed when they register. It backs both the
// FAILPOINTS environment variable and the cmd binaries' -failpoints flag.
func Apply(s string) error {
	for _, entry := range strings.Split(s, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, rest, ok := strings.Cut(entry, "=")
		if !ok || name == "" {
			return fmt.Errorf("failpoint: bad entry %q (want name=action[@triggers])", entry)
		}
		spec, err := parseSpec(rest)
		if err != nil {
			return fmt.Errorf("failpoint: %s: %w", name, err)
		}
		Arm(strings.TrimSpace(name), spec)
	}
	return nil
}

func parseSpec(s string) (Spec, error) {
	var spec Spec
	actionStr, trigStr, hasTrig := strings.Cut(s, "@")
	actionStr = strings.TrimSpace(actionStr)
	switch {
	case actionStr == "panic":
		spec.Action = Panic
	case actionStr == "abort":
		spec.Action = Abort
	case actionStr == "yield":
		spec.Action = Yield
	case strings.HasPrefix(actionStr, "delay:"):
		d, err := time.ParseDuration(strings.TrimPrefix(actionStr, "delay:"))
		if err != nil {
			return spec, fmt.Errorf("bad delay %q: %w", actionStr, err)
		}
		spec.Action, spec.Delay = Delay, d
	case actionStr == "delay":
		spec.Action, spec.Delay = Delay, time.Millisecond
	default:
		return spec, fmt.Errorf("unknown action %q", actionStr)
	}
	if !hasTrig {
		return spec, nil
	}
	for _, t := range strings.Split(trigStr, ",") {
		t = strings.TrimSpace(t)
		key, val, ok := strings.Cut(t, ":")
		if !ok {
			return spec, fmt.Errorf("bad trigger %q (want key:value)", t)
		}
		switch key {
		case "nth":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil || n == 0 {
				return spec, fmt.Errorf("bad nth %q", val)
			}
			spec.Nth = n
		case "every":
			k, err := strconv.ParseUint(val, 10, 64)
			if err != nil || k == 0 {
				return spec, fmt.Errorf("bad every %q", val)
			}
			spec.Every = k
		case "prob":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p <= 0 || p > 1 {
				return spec, fmt.Errorf("bad prob %q (want (0,1])", val)
			}
			spec.Prob = p
		case "seed":
			s, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return spec, fmt.Errorf("bad seed %q", val)
			}
			spec.Seed = s
		default:
			return spec, fmt.Errorf("unknown trigger %q", key)
		}
	}
	return spec, nil
}

// Name returns the point's registered name.
func (fp *FP) Name() string { return fp.name }

// Arm arms the point with spec, resetting its hit counter.
func (fp *FP) Arm(spec Spec) { fp.st.Store(&armed{spec: spec}) }

// Disarm returns the point to its single-atomic-load fast path.
func (fp *FP) Disarm() { fp.st.Store(nil) }

// Armed reports whether the point is currently armed.
func (fp *FP) Armed() bool { return fp.st.Load() != nil }

// Hits reports how many times the point has been hit since it was last
// armed (0 while disarmed). The crash-recovery suite uses it to prove that
// faults recovered out of the caller's sight (server-side drops) fired.
func (fp *FP) Hits() uint64 {
	if st := fp.st.Load(); st != nil {
		return st.hits.Load()
	}
	return 0
}

// Hit is the instrumentation call sites make. Disarmed (the permanent
// production state) it is one atomic pointer load; armed, it counts the hit,
// evaluates the trigger schedule, and executes the action if due. Hit never
// returns normally when a Panic or Abort action fires.
func (fp *FP) Hit() {
	st := fp.st.Load()
	if st == nil {
		return
	}
	fp.fire(st)
}

// fire is kept out of Hit so the disarmed path stays inlinable.
func (fp *FP) fire(st *armed) {
	n := st.hits.Add(1)
	sp := &st.spec
	switch {
	case sp.Nth != 0:
		if n != sp.Nth {
			return
		}
	case sp.Every != 0:
		if n%sp.Every != 0 {
			return
		}
	case sp.Prob != 0:
		// Deterministic per-hit decision: hash (seed, ordinal) so equal
		// seeds reproduce the same firing pattern without shared PRNG state.
		if float64(splitmix64(sp.Seed^n)>>11)/float64(1<<53) >= sp.Prob {
			return
		}
	}
	switch sp.Action {
	case Panic:
		panic(&PanicValue{Name: fp.name, Hit: n})
	case Abort:
		abort.Retry(abort.Conflict)
	case Delay:
		time.Sleep(sp.Delay)
	case Yield:
		runtime.Gosched()
	}
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed 64-bit hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
