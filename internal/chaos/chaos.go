// Package chaos packages the fault-injection patterns the transactional
// runtimes are tested with: foreign lock holders, concurrent committers
// racing a victim transaction, forced-abort injectors, and sustained write
// storms. The helpers grew out of the OTB injection tests and are shared by
// the boosting, STM, and starvation tests so every runtime is provoked the
// same way.
//
// The helpers are deliberately runtime-agnostic: they speak abort.Signal
// (the universal abort protocol) and spin.VersionedLock (the universal
// semantic lock), never a specific STM's types.
package chaos

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/abort"
	"repro/internal/spin"
)

// HoldVersionedLock acquires l as a foreign holder — standing in for a
// concurrent transaction parked between PreCommit and OnCommit — and returns
// the release function. The caller's transaction must then observe the lock
// busy. It fails the test if the lock is already held.
func HoldVersionedLock(t testing.TB, l *spin.VersionedLock) (release func()) {
	t.Helper()
	if _, ok := l.TryLock(); !ok {
		t.Fatal("chaos: could not take foreign lock")
	}
	return l.UnlockUnchanged
}

// CommitConcurrently runs commit on another goroutine and waits for it to
// finish. Called from inside a victim transaction's body, it interleaves a
// full committed transaction into the victim's execution, invalidating
// whatever the victim has read so its next post-validation must abort.
func CommitConcurrently(commit func()) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		commit()
	}()
	<-done
}

// ExpectAbort runs f expecting it to abort with reason want, failing the
// test if f returns normally or aborts with a different reason. It is the
// assertion form of the abort.Signal recover idiom for driving a single
// transaction attempt by hand.
func ExpectAbort(t testing.TB, want abort.Reason, f func()) {
	t.Helper()
	defer func() {
		t.Helper()
		sig, ok := recover().(abort.Signal)
		if !ok {
			t.Fatalf("chaos: expected abort signal, got %v", sig)
		}
		if sig.Reason != want {
			t.Fatalf("chaos: abort reason = %v, want %v", sig.Reason, want)
		}
	}()
	f()
	t.Fatalf("chaos: expected %v abort, f returned normally", want)
}

// AbortInjector forces a transaction to abort for its first N attempts,
// making retry-loop behaviour (budgets, escalation) deterministic instead of
// depending on real conflicts. Place Hit inside the transaction body:
//
//	inj := chaos.NewAbortInjector(5, abort.Conflict)
//	otb.Atomic(nil, func(tx *otb.Tx) {
//		inj.Hit() // aborts attempts 1..5, no-op from attempt 6 on
//		...
//	})
//
// The counter is atomic, so one injector can doom transactions on several
// goroutines until its budget of forced aborts is spent.
type AbortInjector struct {
	remaining atomic.Int64
	reason    abort.Reason
}

// NewAbortInjector creates an injector that forces n aborts with the given
// reason.
func NewAbortInjector(n int, r abort.Reason) *AbortInjector {
	inj := &AbortInjector{reason: r}
	inj.remaining.Store(int64(n))
	return inj
}

// Hit aborts the calling transaction attempt while forced aborts remain.
func (inj *AbortInjector) Hit() {
	if inj.remaining.Add(-1) >= 0 {
		abort.Retry(inj.reason)
	}
}

// Remaining reports how many forced aborts are left (negative once
// exhausted: it counts calls, not aborts).
func (inj *AbortInjector) Remaining() int64 { return inj.remaining.Load() }

// Storm starts n goroutines repeatedly calling work (each is passed its
// worker index) and returns a stop function that halts them and waits for
// them to exit. It is the write-storm harness of the starvation tests: the
// storm keeps committing while a victim transaction tries to get through.
func Storm(n int, work func(worker int)) (stop func()) {
	var halt atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for !halt.Load() {
				work(worker)
			}
		}(i)
	}
	return func() {
		halt.Store(true)
		wg.Wait()
	}
}
