package leak

import (
	"testing"
	"time"
)

// fakeTB records Errorf calls instead of failing the real test.
type fakeTB struct {
	errs []string
}

func (f *fakeTB) Helper()           {}
func (f *fakeTB) Cleanup(fn func()) { fn() }
func (f *fakeTB) Errorf(s string, a ...any) {
	f.errs = append(f.errs, s)
	_ = a
}

func TestNoLeakPasses(t *testing.T) {
	var ft fakeTB
	check := Check(&ft)
	done := make(chan struct{})
	go func() { <-done }()
	close(done) // goroutine exits within the grace period
	check()
	if len(ft.errs) != 0 {
		t.Fatalf("clean test reported %d leaks", len(ft.errs))
	}
}

func TestLeakDetected(t *testing.T) {
	var ft fakeTB
	check := Check(&ft)
	block := make(chan struct{})
	go func() { <-block }() // still parked when check runs
	start := time.Now()
	check()
	close(block)
	if len(ft.errs) == 0 {
		t.Fatal("leaked goroutine not reported")
	}
	// The grace period must actually have been waited out.
	if time.Since(start) < time.Second {
		t.Fatalf("checker gave up after %v, want ~2s grace", time.Since(start))
	}
}

func TestPreexistingGoroutinesIgnored(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	go func() { <-block }() // alive before the snapshot
	var ft fakeTB
	Check(&ft)()
	if len(ft.errs) != 0 {
		t.Fatalf("pre-existing goroutine reported as leak: %v", ft.errs)
	}
}

func TestInterestingFilters(t *testing.T) {
	if interesting("goroutine 5 [running]:\ntesting.tRunner(...)") {
		t.Error("test runner stack should be ignored")
	}
	if !interesting("goroutine 9 [chan receive]:\nrepro/internal/rtc.(*STM).serve(...)") {
		t.Error("runtime server stack should be interesting")
	}
	if interesting("") {
		t.Error("empty stack should be ignored")
	}
}
