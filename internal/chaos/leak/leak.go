// Package leak is a hand-rolled goroutine-leak checker for stress tests: it
// snapshots the goroutines alive when a test starts and fails the test if
// new ones are still alive when it ends. Server-based runtimes (RTC,
// RInval) and the telemetry publisher run long-lived goroutines by design;
// the checker filters those by stack-trace substring rather than requiring
// every test to stop them.
//
// Usage, first line of a stress test:
//
//	defer leak.Check(t)()
//
// or, when cleanup must run after other t.Cleanup handlers:
//
//	leak.CheckCleanup(t)
package leak

import (
	"runtime"
	"strings"
	"time"
)

// TB is the subset of testing.TB the checker needs (so the package stays
// importable from helpers without a testing dependency in signatures).
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Cleanup(func())
}

// ignoredStacks are substrings of goroutine stacks that never count as
// leaks: the runtime's own workers, testing machinery, and this package.
var ignoredStacks = []string{
	"testing.(*T).Run",          // test runner goroutines
	"testing.tRunner",           // sibling parallel tests
	"testing.runTests",          // main test goroutine
	"testing.(*M).",             // test main
	"runtime.goexit0",           // exiting goroutines caught mid-teardown
	"created by runtime.gc",     // GC workers
	"runtime.MHeap_Scavenger",   // scavenger (old runtimes)
	"runtime/trace.Start",       // tracer
	"signal.signal_recv",        // signal handler
	"repro/internal/telemetry.", // the -telemetry publisher goroutine
	"runtime.ReadTrace",         // tracer reader
	"runtime.ensureSigM",        // signal mask goroutine
	"os/signal.loop",            // signal loop
	"runtime.forcegchelper",     // forced-GC helper
	"runtime.bgsweep",           // background sweeper
	"runtime.bgscavenge",        // background scavenger
	"runtime.runfinq",           // finalizer goroutine
	"runtime.gopark",            // bare header line fallback is never alone
}

// interesting reports whether one goroutine stack counts as a potential
// leak.
func interesting(stack string) bool {
	if stack == "" {
		return false
	}
	for _, ig := range ignoredStacks {
		if strings.Contains(stack, ig) {
			return false
		}
	}
	return true
}

// snapshot returns the set of live interesting goroutine stacks, keyed by
// the goroutine header line ("goroutine 12 [running]:") — stable enough to
// diff before/after within one test.
func snapshot() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	stacks := make(map[string]string)
	for _, g := range strings.Split(string(buf), "\n\n") {
		if !interesting(g) {
			continue
		}
		header, _, _ := strings.Cut(g, "\n")
		stacks[header] = g
	}
	return stacks
}

// Check snapshots live goroutines and returns a function that fails t if
// goroutines not alive at the snapshot are still alive when it runs. New
// goroutines get a grace period to exit on their own (stress-test workers
// racing past their done-channel check are not leaks).
func Check(t TB) func() {
	before := snapshot()
	return func() {
		t.Helper()
		leaked := wait(before)
		for _, stack := range leaked {
			t.Errorf("leaked goroutine:\n%s", stack)
		}
	}
}

// CheckCleanup registers Check via t.Cleanup, so it runs after the test and
// its earlier cleanups (structure Stop calls registered later run first —
// t.Cleanup is LIFO — so register leak checking before creating servers).
func CheckCleanup(t TB) {
	t.Cleanup(Check(t))
}

// wait polls for new goroutines to exit, returning the stacks of those
// still alive after the grace period.
func wait(before map[string]string) []string {
	deadline := time.Now().Add(2 * time.Second)
	for {
		var leaked []string
		for header, stack := range snapshot() {
			if _, ok := before[header]; !ok {
				leaked = append(leaked, stack)
			}
		}
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(10 * time.Millisecond)
	}
}
