package chaos

import (
	"runtime"
	"time"
)

// Jitter perturbs thread scheduling at explicit preemption points, widening
// the interleaving space a stress test explores beyond what the runtime
// scheduler produces on its own. It is seeded and sequential, so a given
// seed yields the same decision sequence on every run; each worker
// goroutine owns its own Jitter (the struct is not safe for concurrent
// use).
type Jitter struct {
	state    uint64
	permille int // probability of preemption per point, in 1/1000
	points   uint64
}

// NewJitter creates a jitter source. permille is the per-point preemption
// probability in thousandths: 0 disables, 1000 preempts at every point.
func NewJitter(seed int64, permille int) *Jitter {
	return &Jitter{state: uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d, permille: permille}
}

// next is splitmix64, cheap enough for a per-operation call.
func (j *Jitter) next() uint64 {
	j.state += 0x9e3779b97f4a7c15
	z := j.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Point is a preemption point: with the configured probability it yields
// the processor, and every 64th taken preemption it parks the goroutine
// briefly so other threads can run several operations, not just one.
func (j *Jitter) Point() {
	if j == nil || j.permille <= 0 {
		return
	}
	if j.next()%1000 >= uint64(j.permille) {
		return
	}
	j.points++
	if j.points%64 == 0 {
		time.Sleep(50 * time.Microsecond)
		return
	}
	runtime.Gosched()
}
