package recovery

import (
	"context"
	"testing"

	"repro/internal/txnet"
)

// txnetClient builds a txstore server plus one client for the network
// failpoint scenarios: run pushes one set transaction through the full wire
// stack (frame codec, session, admission, store). All four network faults
// are recovered server-side — an injected panic drops that one connection,
// and the client's session retry protocol (reconnect, resend, replay cache)
// turns the drop into a committed transaction the caller never sees fail.
func txnetClient(t *testing.T) (func(int64), func(int64), func()) {
	s, err := txnet.Listen("127.0.0.1:0", txnet.Options{})
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	c, err := txnet.Dial(s.Addr(), &txnet.ClientOptions{Seed: 1})
	if err != nil {
		_ = s.Close()
		t.Fatalf("dial: %v", err)
	}
	run := func(k int64) {
		_, err := c.Do(context.Background(), []txnet.Op{
			{Code: txnet.OpAdd, Struct: 0, Key: k % 16},
			{Code: txnet.OpContains, Struct: 0, Key: (k + 1) % 16},
		})
		if err != nil {
			t.Fatalf("Do: %v", err)
		}
	}
	stop := func() {
		_ = c.Close()
		_ = s.Close()
	}
	return run, nil, stop
}

func init() {
	scenarios = append(scenarios,
		scenario{fp: "txnet.conn.drop", recovered: true, mk: txnetClient},
		scenario{fp: "txnet.read.stall", recovered: true, mk: txnetClient},
		scenario{fp: "txnet.write.partial", recovered: true, mk: txnetClient},
		scenario{fp: "txnet.server.stall", recovered: true, mk: txnetClient},
	)
}
