package recovery

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/chaos/failpoint"
	"repro/internal/wal"
)

// The WAL failpoints are all "recovered" in this suite's sense: the wal
// package converts the injected panic into an error on the faulting call
// (a poisoned log, a failed sync, a discarded snapshot, a failed open),
// and crash recovery is re-opening the directory — which truncates any
// torn tail and skips unreadable snapshots. Each run() is therefore one
// full open → append → sync → (periodic) snapshot → close cycle against
// a per-scenario directory, so the 100 follow-up runs after the fault
// double as 100 successful recoveries of the surviving log.
func walCycle() func(t *testing.T) (func(int64), func(int64), func()) {
	return func(t *testing.T) (func(int64), func(int64), func()) {
		dir := t.TempDir()
		injected := func(err error) bool {
			var pv *failpoint.PanicValue
			return errors.As(err, &pv)
		}
		run := func(k int64) {
			l, _, err := wal.Open(dir, wal.Options{Policy: wal.SyncAlways})
			if err != nil {
				if !injected(err) {
					t.Errorf("open cycle %d: %v", k, err)
				}
				return
			}
			defer l.Close()
			lsn, err := l.Append([]byte(fmt.Sprintf("cycle-%d", k)))
			if err != nil {
				if !injected(err) {
					t.Errorf("append cycle %d: %v", k, err)
				}
				return
			}
			if err := l.SyncTo(lsn); err != nil {
				if !injected(err) {
					t.Errorf("sync cycle %d: %v", k, err)
				}
				return
			}
			if k%8 == 7 {
				if err := l.Snapshot([]byte(fmt.Sprintf("snap-%d", k))); err != nil && !injected(err) {
					t.Errorf("snapshot cycle %d: %v", k, err)
				}
			}
		}
		return run, nil, func() {}
	}
}

func init() {
	scenarios = append(scenarios,
		scenario{fp: "wal.append.torn", recovered: true, mk: walCycle()},
		scenario{fp: "wal.fsync.fail", recovered: true, mk: walCycle()},
		scenario{fp: "wal.snapshot.partial", recovered: true, mk: walCycle()},
		scenario{fp: "wal.replay.stall", recovered: true, mk: walCycle()},
	)
}
