package recovery

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro/internal/chaos/failpoint"
	"repro/internal/lincheck"
	"repro/internal/otb"
	"repro/internal/stm/norec"
)

// seedOffset lets CI rotate the fault-injection seeds per run: every
// failpoint seed below is offset by $FAILPOINT_SEED (default 0), so the
// probabilistic panic/abort/delay schedules differ between runs while any
// failure stays reproducible by exporting the printed value.
func seedOffset(t *testing.T) uint64 {
	v := os.Getenv("FAILPOINT_SEED")
	if v == "" {
		return 0
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		t.Fatalf("bad FAILPOINT_SEED %q: %v", v, err)
	}
	t.Logf("FAILPOINT_SEED=%d", n)
	return n
}

// txView is one attempt's transactional view of an OTB set (mirrors the
// wrapper in the otb package's own opacity test).
type txView struct {
	tx *otb.Tx
	s  *otb.ListSet
}

func (v txView) Add(k int64) bool      { return v.s.Add(v.tx, k) }
func (v txView) Remove(k int64) bool   { return v.s.Remove(v.tx, k) }
func (v txView) Contains(k int64) bool { return v.s.Contains(v.tx, k) }

// TestOpacityOTBUnderFailpoints runs the opacity checker while fault
// injection is live on OTB's validation and commit paths: probabilistic
// forced aborts (including after commit locks are taken) and delays that
// widen the race windows. The surviving history must still be opaque —
// injected aborts must be indistinguishable from real conflicts.
func TestOpacityOTBUnderFailpoints(t *testing.T) {
	defer failpoint.DisarmAll()
	off := seedOffset(t)
	spec := fmt.Sprintf("otb.validate.mid=abort@prob:0.05,seed:%d;"+
		"otb.commit.post-lock=abort@prob:0.05,seed:%d;"+
		"otb.commit.pre-lock=delay:20us@prob:0.1,seed:%d",
		7+off, 11+off, 13+off)
	if err := failpoint.Apply(spec); err != nil {
		t.Fatal(err)
	}
	s := otb.NewListSet()
	cfg := lincheck.DefaultSTMConfig(31)
	cfg.Name = "recovery/otb-failpoints"
	cfg.Cells = 8 // key range
	if testing.Short() {
		cfg = cfg.Scaled(2)
	}
	lincheck.StressTxnSet(t, cfg, func(th int, body func(lincheck.Set)) {
		otb.Atomic(nil, func(tx *otb.Tx) { body(txView{tx, s}) })
	})
}

// TestOpacityNOrecUnderFailpoints is the memory-STM counterpart: forced
// aborts with the writer lock held (recovery must restore the pre-lock
// timestamp) and delays in validation, with the recorded history checked
// for opacity.
func TestOpacityNOrecUnderFailpoints(t *testing.T) {
	defer failpoint.DisarmAll()
	off := seedOffset(t)
	spec := fmt.Sprintf("norec.commit.locked=abort@prob:0.1,seed:%d;"+
		"norec.validate.mid=delay:20us@prob:0.2,seed:%d",
		3+off, 5+off)
	if err := failpoint.Apply(spec); err != nil {
		t.Fatal(err)
	}
	s := norec.New()
	defer s.Stop()
	cfg := lincheck.DefaultSTMConfig(41)
	cfg.Name = "recovery/norec-failpoints"
	if testing.Short() {
		cfg = cfg.Scaled(2)
	}
	lincheck.StressSTM(t, s, cfg)
}
