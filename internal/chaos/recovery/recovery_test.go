package recovery

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/boosting"
	"repro/internal/chaos/failpoint"
	"repro/internal/chaos/leak"
	"repro/internal/cm"
	"repro/internal/conc"
	"repro/internal/htm"
	"repro/internal/integrate"
	"repro/internal/mem"
	"repro/internal/otb"
	"repro/internal/rinval"
	"repro/internal/rtc"
	"repro/internal/stm"
	"repro/internal/stm/glock"
	"repro/internal/stm/invalstm"
	"repro/internal/stm/norec"
	"repro/internal/stm/ringsw"
	"repro/internal/stm/tl2"
	"repro/internal/stm/tml"
)

// scenario provokes one failpoint with a one-shot panic and proves the
// owning runtime survives it.
type scenario struct {
	fp string
	// recovered marks faults the runtime recovers out of the caller's
	// sight (server-side drops): the panic must NOT reach the caller, and
	// firing is observed through the hit counter instead.
	recovered bool
	// mk builds a fresh structure and returns run (one read-write
	// transaction keyed by k), an optional stirrer (a concurrent workload
	// some failpoints need to become reachable, e.g. clock movement for
	// NOrec's validation), and a teardown.
	mk func(t *testing.T) (run func(k int64), stir func(k int64), stop func())
}

// mkCells allocates n zeroed cells.
func mkCells(n int) []*mem.Cell {
	cells := make([]*mem.Cell, n)
	for i := range cells {
		cells[i] = mem.NewCell(0)
	}
	return cells
}

// memAlg is the generic scenario body for memory STMs: increment one cell,
// read a second so commit-time validation has work to do.
func memAlg(alg stm.Algorithm) (func(int64), func(int64), func()) {
	cells := mkCells(8)
	run := func(k int64) {
		alg.Atomic(func(tx stm.Tx) {
			i := int(k) % len(cells)
			v := tx.Read(cells[i])
			tx.Read(cells[(i+1)%len(cells)])
			tx.Write(cells[i], v+1)
		})
	}
	return run, nil, alg.Stop
}

// otbSet is the scenario body for the OTB failpoints: a lookup plus an
// insert, so commits carry both semantic read and write sets.
func otbSet() (func(int64), func(int64), func()) {
	set := otb.NewListSet()
	run := func(k int64) {
		otb.Atomic(nil, func(tx *otb.Tx) {
			set.Contains(tx, (k+1)%16)
			set.Add(tx, k%16)
		})
	}
	return run, nil, func() {}
}

// boostSet inserts three distinct keys per transaction so the partial-lock
// window (second and third abstract lock acquisitions) is exercised.
func boostSet() (func(int64), func(int64), func()) {
	set := boosting.NewSet(conc.NewLazyList(), 64)
	run := func(k int64) {
		boosting.Atomic(nil, nil, func(tx *boosting.Tx) {
			set.Add(tx, k%16)
			set.Add(tx, (k+5)%16)
			set.Add(tx, (k+11)%16)
		})
	}
	return run, nil, func() {}
}

// integrateAlg mixes a semantic set operation with raw memory accesses, the
// workload of the integration framework's commit failpoints.
func integrateAlg(alg integrate.Algorithm) (func(int64), func(int64), func()) {
	set := otb.NewListSet()
	cell := mem.NewCell(0)
	run := func(k int64) {
		alg.Atomic(func(ctx *integrate.Ctx) {
			set.Add(ctx.Sem(), k%16)
			ctx.Write(cell, ctx.Read(cell)+1)
		})
	}
	return run, nil, alg.Stop
}

// norecValidate needs the clock to move mid-transaction before validation
// (and its failpoint) is reachable, so it pairs a long-read-set victim with
// a stirrer that commits writes concurrently.
func norecValidate() (func(int64), func(int64), func()) {
	s := norec.New()
	cells := mkCells(8)
	run := func(k int64) {
		s.Atomic(func(tx stm.Tx) {
			for r := 0; r < 64; r++ {
				tx.Read(cells[r%len(cells)])
			}
			v := tx.Read(cells[0])
			tx.Write(cells[0], v+1)
		})
	}
	stir := func(k int64) {
		s.Atomic(func(tx stm.Tx) {
			tx.Write(cells[int(k)%len(cells)], uint64(k))
		})
	}
	return run, stir, s.Stop
}

// htmSoftware forces the capacity fallback: more writes than the hardware
// bound, so every transaction commits on the software path.
func htmSoftware() (func(int64), func(int64), func()) {
	tm := htm.New(htm.Options{WriteCap: 4})
	cells := mkCells(8)
	run := func(k int64) {
		tm.Atomic(func(tx stm.Tx) {
			for i := 0; i < 6; i++ {
				v := tx.Read(cells[i])
				tx.Write(cells[i], v+1)
			}
		})
	}
	return run, nil, tm.Stop
}

// scenarios covers every registered failpoint (TestEveryFailpointHasScenario
// enforces the bijection).
var scenarios = []scenario{
	{fp: "otb.validate.mid", mk: func(t *testing.T) (func(int64), func(int64), func()) { return otbSet() }},
	{fp: "otb.commit.pre-lock", mk: func(t *testing.T) (func(int64), func(int64), func()) { return otbSet() }},
	{fp: "otb.commit.post-lock", mk: func(t *testing.T) (func(int64), func(int64), func()) { return otbSet() }},
	{fp: "boosting.lock.partial", mk: func(t *testing.T) (func(int64), func(int64), func()) { return boostSet() }},
	{fp: "boosting.commit.pre", mk: func(t *testing.T) (func(int64), func(int64), func()) { return boostSet() }},
	{fp: "norec.validate.mid", mk: func(t *testing.T) (func(int64), func(int64), func()) { return norecValidate() }},
	{fp: "norec.commit.locked", mk: func(t *testing.T) (func(int64), func(int64), func()) { return memAlg(norec.New()) }},
	{fp: "tl2.commit.locked", mk: func(t *testing.T) (func(int64), func(int64), func()) { return memAlg(tl2.New()) }},
	{fp: "tml.commit.locked", mk: func(t *testing.T) (func(int64), func(int64), func()) { return memAlg(tml.New()) }},
	{fp: "ringsw.commit.locked", mk: func(t *testing.T) (func(int64), func(int64), func()) { return memAlg(ringsw.New()) }},
	{fp: "invalstm.commit.locked", mk: func(t *testing.T) (func(int64), func(int64), func()) { return memAlg(invalstm.New()) }},
	{fp: "glock.commit.pre", mk: func(t *testing.T) (func(int64), func(int64), func()) { return memAlg(glock.New()) }},
	{fp: "otbnorec.commit.locked", mk: func(t *testing.T) (func(int64), func(int64), func()) { return integrateAlg(integrate.NewOTBNOrec()) }},
	{fp: "otbtl2.commit.locked", mk: func(t *testing.T) (func(int64), func(int64), func()) { return integrateAlg(integrate.NewOTBTL2()) }},
	{fp: "rtc.commit.pre", mk: func(t *testing.T) (func(int64), func(int64), func()) { return memAlg(rtc.New(rtc.Options{})) }},
	{fp: "rtc.server.drop", recovered: true, mk: func(t *testing.T) (func(int64), func(int64), func()) { return memAlg(rtc.New(rtc.Options{})) }},
	{fp: "rinval.commit.pre", mk: func(t *testing.T) (func(int64), func(int64), func()) { return memAlg(rinval.New(rinval.V1)) }},
	{fp: "rinval.server.drop", recovered: true, mk: func(t *testing.T) (func(int64), func(int64), func()) { return memAlg(rinval.New(rinval.V1)) }},
	{fp: "htm.hw.commit", mk: func(t *testing.T) (func(int64), func(int64), func()) { return memAlg(htm.New(htm.Options{})) }},
	{fp: "htm.sw.locked", mk: func(t *testing.T) (func(int64), func(int64), func()) { return htmSoftware() }},
}

// runRecover runs one transaction, converting an injected panic into its
// *failpoint.PanicValue. Any other panic is a genuine bug and propagates.
func runRecover(run func(int64), k int64, saw *atomic.Bool) (pv *failpoint.PanicValue) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		if v, ok := p.(*failpoint.PanicValue); ok {
			saw.Store(true)
			pv = v
			return
		}
		panic(p)
	}()
	run(k)
	return nil
}

// TestCrashRecovery arms each failpoint with a one-shot panic, provokes it,
// and then requires 100 follow-up transactions on the same structure to
// commit — with every lock released, the serial gate open, and no goroutine
// leaked. Scenarios share the process-wide serial gate and failpoint
// registry, so they run sequentially.
func TestCrashRecovery(t *testing.T) {
	failpoint.DisarmAll()
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.fp, func(t *testing.T) {
			defer leak.Check(t)()
			fp, ok := failpoint.Lookup(sc.fp)
			if !ok {
				t.Fatalf("failpoint %q is not registered", sc.fp)
			}
			run, stir, stop := sc.mk(t)
			defer stop()
			defer failpoint.Arm(sc.fp, failpoint.Spec{Action: failpoint.Panic, Nth: 1})()

			var saw atomic.Bool
			quit := make(chan struct{})
			done := make(chan struct{})
			if stir != nil {
				go func() {
					defer close(done)
					for k := int64(1000); ; k++ {
						select {
						case <-quit:
							return
						default:
						}
						runRecover(stir, k, &saw)
					}
				}()
			} else {
				close(done)
			}

			deadline := time.Now().Add(20 * time.Second)
			for k := int64(0); fp.Hits() == 0; k++ {
				if time.Now().After(deadline) {
					close(quit)
					<-done
					t.Fatalf("failpoint %s never fired", sc.fp)
				}
				pv := runRecover(run, k, &saw)
				if pv == nil {
					continue
				}
				if pv.Name != sc.fp {
					t.Fatalf("wrong failpoint fired: %s (want %s)", pv.Name, sc.fp)
				}
			}
			close(quit)
			<-done

			if sc.recovered && saw.Load() {
				t.Fatalf("failpoint %s is recovered server-side, but its panic reached a caller", sc.fp)
			}
			if !sc.recovered && !saw.Load() {
				t.Fatalf("failpoint %s fired but the panic never reached the caller (swallowed?)", sc.fp)
			}

			// The crash is behind us; the structure must still work. A stuck
			// lock or wedged server would hang or panic these (the armed
			// one-shot trigger is already consumed).
			for k := int64(0); k < 100; k++ {
				run(k)
			}
			if cm.SerialActive() {
				t.Fatalf("serial gate still closed after recovering from %s", sc.fp)
			}
		})
	}
}

// TestEveryFailpointHasScenario pins the suite to the registry: a new
// failpoint cannot be added without a crash-recovery scenario.
func TestEveryFailpointHasScenario(t *testing.T) {
	covered := make(map[string]int)
	for _, sc := range scenarios {
		covered[sc.fp]++
		if covered[sc.fp] > 1 {
			t.Errorf("duplicate scenario for failpoint %s", sc.fp)
		}
		if _, ok := failpoint.Lookup(sc.fp); !ok {
			t.Errorf("scenario %s names an unregistered failpoint", sc.fp)
		}
	}
	for _, name := range failpoint.Names() {
		if covered[name] == 0 {
			t.Errorf("failpoint %s has no crash-recovery scenario", name)
		}
	}
}
