package recovery

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/abort"
	"repro/internal/chaos/failpoint"
	"repro/internal/cm"
	"repro/internal/mem"
	"repro/internal/otb"
	"repro/internal/stm"
	"repro/internal/stm/norec"
)

// TestCanceledBeforeFirstAttempt: an already-cancelled context returns
// before the body ever runs, for both OTB and NOrec.
func TestCanceledBeforeFirstAttempt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	ran := false
	if err := otb.AtomicCtx(ctx, nil, func(tx *otb.Tx) { ran = true }); !errors.Is(err, context.Canceled) {
		t.Fatalf("otb: err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("otb: body ran despite pre-cancelled context")
	}

	s := norec.New()
	defer s.Stop()
	if err := s.AtomicCtx(ctx, func(tx stm.Tx) { ran = true }); !errors.Is(err, context.Canceled) {
		t.Fatalf("norec: err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("norec: body ran despite pre-cancelled context")
	}

	// The runtimes stay usable after the refusal.
	set := otb.NewListSet()
	otb.Atomic(nil, func(tx *otb.Tx) { set.Add(tx, 1) })
	cell := mem.NewCell(0)
	s.Atomic(func(tx stm.Tx) { tx.Write(cell, 7) })
	if cell.Load() != 7 {
		t.Fatalf("cell = %d, want 7", cell.Load())
	}
}

// TestCanceledMidRetryOTB cancels during the abort/backoff loop: the third
// attempt cancels the context and aborts; the loop must observe the
// cancellation instead of retrying a fourth time.
func TestCanceledMidRetryOTB(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	attempts := 0
	err := otb.AtomicCtx(ctx, nil, func(tx *otb.Tx) {
		attempts++
		if attempts == 3 {
			cancel()
		}
		abort.Retry(abort.Conflict)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (no retry after cancellation)", attempts)
	}
}

// TestCanceledMidValidationOTB keeps every attempt dying inside semantic
// validation (an armed forced-abort failpoint); cancelling mid-stream must
// end the loop at the next check.
func TestCanceledMidValidationOTB(t *testing.T) {
	defer failpoint.Arm("otb.validate.mid", failpoint.Spec{Action: failpoint.Abort})()
	set := otb.NewListSet()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	attempts := 0
	err := otb.AtomicCtx(ctx, nil, func(tx *otb.Tx) {
		attempts++
		if attempts == 2 {
			cancel()
		}
		set.Contains(tx, 1)
		set.Add(tx, 2)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	failpoint.Disarm("otb.validate.mid")
	otb.Atomic(nil, func(tx *otb.Tx) { set.Add(tx, 3) }) // still usable
}

// TestCanceledMidCommitNOrec is the NOrec counterpart: every attempt is
// forced to abort with the writer lock held, and cancellation must win over
// the retry loop with the lock fully released.
func TestCanceledMidCommitNOrec(t *testing.T) {
	defer failpoint.Arm("norec.commit.locked", failpoint.Spec{Action: failpoint.Abort})()
	s := norec.New()
	defer s.Stop()
	cell := mem.NewCell(0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	attempts := 0
	err := s.AtomicCtx(ctx, func(tx stm.Tx) {
		attempts++
		if attempts == 2 {
			cancel()
		}
		tx.Write(cell, uint64(attempts))
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	failpoint.Disarm("norec.commit.locked")
	// The abandoned attempts restored the clock: a fresh write commits.
	s.Atomic(func(tx stm.Tx) { tx.Write(cell, 9) })
	if cell.Load() != 9 {
		t.Fatalf("cell = %d, want 9", cell.Load())
	}
}

// TestDeadlineExpiresMidRetry drives a permanently-conflicting transaction
// against a deadline: the loop must give up with DeadlineExceeded — even if
// the retry budget escalated it to serial mode meanwhile, the gate must be
// reopened on the way out.
func TestDeadlineExpiresMidRetry(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := otb.AtomicCtx(ctx, nil, func(tx *otb.Tx) {
		abort.Retry(abort.Conflict)
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if cm.SerialActive() {
		t.Fatal("serial gate still closed after a cancelled escalated transaction")
	}
}
