package recovery

import (
	"testing"
	"time"

	"repro/internal/mvotb"
)

// mvotbSet builds a multi-version runtime with an aggressive background
// sweeper (1ms) and returns a read-write transaction body: a snapshot read,
// then an updater transaction carrying both a semantic read and a write, so
// the commit.install window (locks held, read set validated, versions not
// yet published) is reached on every run. The gc.sweep failpoint is
// provoked by the background collector itself — run only has to keep the
// process alive long enough for a tick — and is recovered inside the GC
// goroutine: a crashed sweep must not kill collection, let alone the
// process.
func mvotbSet(t *testing.T) (func(int64), func(int64), func()) {
	rt := mvotb.New(mvotb.Options{GCInterval: time.Millisecond})
	set := rt.NewSet(16)
	run := func(k int64) {
		rt.ReadOnly(func(x *mvotb.STx) { set.SnapContains(x, k%16) })
		rt.Atomic(func(tx *mvotb.Tx) {
			set.Contains(tx, (k+1)%16)
			if k%2 == 0 {
				set.Add(tx, k%16)
			} else {
				set.Remove(tx, k%16)
			}
		})
	}
	return run, nil, rt.Stop
}

func init() {
	scenarios = append(scenarios,
		scenario{fp: "mvotb.commit.install", recovered: false, mk: mvotbSet},
		scenario{fp: "mvotb.gc.sweep", recovered: true, mk: mvotbSet},
	)
}
