package recovery

import (
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos/failpoint"
	"repro/internal/otb"
	"repro/internal/trace"
)

// TestFlightRecorderSurvivesInjectedPanic proves an injected panic
// mid-attempt (between the semantic locks being taken and the commit
// publishing) leaves the flight recorder consistent: the snapshot decodes
// with no torn slots, the debug endpoint still serves, and the recorder
// keeps recording afterwards.
func TestFlightRecorderSurvivesInjectedPanic(t *testing.T) {
	failpoint.DisarmAll()
	trace.Enable(1) // sample everything so the dying attempt is in the rings
	defer func() {
		trace.Disable()
		trace.Default.Reset()
	}()

	set := otb.NewListSet()
	run := func(k int64) {
		otb.Atomic(nil, func(tx *otb.Tx) {
			set.Contains(tx, (k+1)%16)
			set.Add(tx, k%16)
		})
	}

	fp, ok := failpoint.Lookup("otb.commit.post-lock")
	if !ok {
		t.Fatal("failpoint otb.commit.post-lock is not registered")
	}
	disarm := failpoint.Arm("otb.commit.post-lock", failpoint.Spec{Action: failpoint.Panic, Nth: 1})
	defer disarm()

	var saw atomic.Bool
	deadline := time.Now().Add(20 * time.Second)
	for k := int64(0); fp.Hits() == 0; k++ {
		if time.Now().After(deadline) {
			t.Fatal("failpoint never fired")
		}
		runRecover(run, k, &saw)
	}
	if !saw.Load() {
		t.Fatal("failpoint fired but the panic never reached the caller")
	}

	// The panic unwound a sampled transaction mid-commit with ring slots
	// already written. Every slot the snapshot returns must decode cleanly.
	snap := trace.Default.Snapshot()
	if len(snap) == 0 {
		t.Fatal("recorder lost its history across the injected panic")
	}
	for _, e := range snap {
		if e.Kind.String() == "unknown" {
			t.Fatalf("torn slot decoded: %+v", e)
		}
		if e.Runtime == "" {
			t.Fatalf("event without a runtime: %+v", e)
		}
	}
	// The Perfetto exporter walks the full history; it must not trip over
	// the truncated span the panic left open.
	if _, err := trace.ExportPerfetto(snap); err != nil {
		t.Fatalf("perfetto export after panic: %v", err)
	}

	// The endpoint must still serve the live state.
	srv, err := trace.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/debug/trace", "/debug/trace/perfetto", "/debug/trace/conflicts", "/debug/trace/aborts"} {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Fatalf("GET %s: empty body", path)
		}
	}

	// And it must still be recording: follow-up transactions append events.
	before := len(snap)
	for k := int64(0); k < 50; k++ {
		run(k)
	}
	if after := len(trace.Default.Snapshot()); after <= before {
		t.Fatalf("recorder stopped recording after the panic: %d -> %d events", before, after)
	}
}
