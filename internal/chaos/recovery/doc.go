// Package recovery holds the crash-recovery conformance suite: for every
// registered failpoint it arms a one-shot panic, provokes it, and proves the
// runtime survives — follow-up transactions on the same structure commit, no
// abstract or commit-time lock stays stuck, the serial gate reopens, and no
// goroutine leaks. A companion test checks opacity of histories produced
// while fault injection is live. See DESIGN.md's "Failure model" section.
package recovery
