package mvotb

// Set is a multi-version boosted set: updater operations follow OTB
// semantics (read-your-writes, deferred publication), snapshot operations
// resolve against the reader's pinned timestamp.
type Set struct{ t *table }

// NewSet creates a set backed by at least nbuckets hash buckets (rounded up
// to a power of two).
func (rt *Runtime) NewSet(nbuckets int) *Set {
	return &Set{t: rt.newTable(nbuckets)}
}

// Add inserts key within tx, returning false if already present.
func (s *Set) Add(tx *Tx, key int64) bool {
	if w := tx.findWrite(s.t, key); w != nil {
		if w.present {
			return false
		}
		w.present, w.val = true, 0
		return true
	}
	if _, present := s.t.read(tx, key); present {
		return false
	}
	tx.addWrite(s.t, key, true, 0)
	return true
}

// Remove deletes key within tx, returning false if absent.
func (s *Set) Remove(tx *Tx, key int64) bool {
	if w := tx.findWrite(s.t, key); w != nil {
		if !w.present {
			return false
		}
		w.present = false
		return true
	}
	if _, present := s.t.read(tx, key); !present {
		return false
	}
	tx.addWrite(s.t, key, false, 0)
	return true
}

// Contains reports within tx whether key is present.
func (s *Set) Contains(tx *Tx, key int64) bool {
	if w := tx.findWrite(s.t, key); w != nil {
		return w.present
	}
	_, present := s.t.read(tx, key)
	return present
}

// SnapContains reports whether key is present at the reader's snapshot.
func (s *Set) SnapContains(x *STx, key int64) bool {
	_, ok := s.t.snapRead(x, key)
	return ok
}

// Len counts the currently-present keys (not linearizable; tests and
// reporting). Epoch-pinned like every traversal.
func (s *Set) Len() int {
	g := s.t.rt.mem.Enter()
	defer g.Exit()
	n := 0
	for i := range s.t.buckets {
		for kn := s.t.buckets[i].head.Load(); kn != nil; kn = kn.next.Load() {
			if h := kn.head.Load(); h != nil && h.present {
				n++
			}
		}
	}
	return n
}

// Map is a multi-version boosted map over the same version-chained core.
type Map struct{ t *table }

// NewMap creates a map backed by at least nbuckets hash buckets.
func (rt *Runtime) NewMap(nbuckets int) *Map {
	return &Map{t: rt.newTable(nbuckets)}
}

// Put inserts or updates key within tx, returning true if it inserted
// (key was absent).
func (m *Map) Put(tx *Tx, key int64, val uint64) bool {
	if w := tx.findWrite(m.t, key); w != nil {
		inserted := !w.present
		w.present, w.val = true, val
		return inserted
	}
	_, present := m.t.read(tx, key)
	tx.addWrite(m.t, key, true, val)
	return !present
}

// Get returns the value bound to key within tx.
func (m *Map) Get(tx *Tx, key int64) (uint64, bool) {
	if w := tx.findWrite(m.t, key); w != nil {
		if !w.present {
			return 0, false
		}
		return w.val, true
	}
	return m.t.read(tx, key)
}

// Delete removes key within tx, returning false if absent.
func (m *Map) Delete(tx *Tx, key int64) bool {
	if w := tx.findWrite(m.t, key); w != nil {
		if !w.present {
			return false
		}
		w.present, w.val = false, 0
		return true
	}
	if _, present := m.t.read(tx, key); !present {
		return false
	}
	tx.addWrite(m.t, key, false, 0)
	return true
}

// ContainsKey reports within tx whether key is bound.
func (m *Map) ContainsKey(tx *Tx, key int64) bool {
	_, ok := m.Get(tx, key)
	return ok
}

// SnapGet returns the value bound to key at the reader's snapshot.
func (m *Map) SnapGet(x *STx, key int64) (uint64, bool) {
	return m.t.snapRead(x, key)
}

// SnapContains reports whether key is bound at the reader's snapshot.
func (m *Map) SnapContains(x *STx, key int64) bool {
	_, ok := m.t.snapRead(x, key)
	return ok
}
