package mvotb

import (
	"sync"
	"sync/atomic"

	"repro/internal/mem/epoch"
	"repro/internal/spin"
)

// version is one entry of a per-key version chain, newest first. A key's
// state at snapshot S is the first version with createTS <= S: present=true
// carries the value, present=false is a tombstone (the key was removed at
// createTS). createTS, val and present are immutable after install;
// deleteTS is set exactly once, to the commit timestamp of the superseding
// version; next is rewritten only by the sweeper (truncation to nil).
type version struct {
	val      uint64
	present  bool
	createTS uint64
	deleteTS atomic.Uint64
	next     atomic.Pointer[version]
}

// versionPool recycles chain entries. Versions flow back in through epoch
// reclamation only (freeVersion is the Retire callback), so a pooled version
// is never reused while any pinned reader could still walk it.
var versionPool = sync.Pool{New: func() any { return &version{} }}

func newVersion(val uint64, present bool, ts uint64) *version {
	v := versionPool.Get().(*version)
	v.val, v.present, v.createTS = val, present, ts
	v.deleteTS.Store(0)
	v.next.Store(nil)
	return v
}

// freeVersion is the epoch.Retire callback returning a reclaimed version to
// the pool. Top-level so Retire call sites do not allocate a closure.
func freeVersion(v any) { versionPool.Put(v) }

// keyNode anchors one key's version chain inside a bucket. Nodes are
// unlinked only by the sweeper, and only once their whole history collapses
// to a tombstone older than every active snapshot.
type keyNode struct {
	key  int64
	next atomic.Pointer[keyNode]
	head atomic.Pointer[version]
}

var keyNodePool = sync.Pool{New: func() any { return &keyNode{} }}

func newKeyNode(key int64) *keyNode {
	n := keyNodePool.Get().(*keyNode)
	n.key = key
	n.next.Store(nil)
	n.head.Store(nil)
	return n
}

func freeKeyNode(v any) { keyNodePool.Put(v) }

// bucketSeq hands out bucket allocation ids, the global lock-acquisition
// order across every table of every runtime (transactions may span a set
// and a map).
var bucketSeq atomic.Uint64

// bucket is one hash bucket: a versioned lock covering key insertion and
// version installs for every key that hashes here, and the key-chain head.
// Padded so neighbouring bucket locks never share a cache line.
type bucket struct {
	id   uint64
	lock spin.VersionedLock
	head atomic.Pointer[keyNode]
	_    [spin.CacheLineSize - 24]byte
}

// find returns the bucket's node for key, or nil.
func (b *bucket) find(key int64) *keyNode {
	for n := b.head.Load(); n != nil; n = n.next.Load() {
		if n.key == key {
			return n
		}
	}
	return nil
}

// table is the shared multi-version core behind Set and Map: a fixed
// power-of-two bucket array of version-chained keys.
type table struct {
	rt      *Runtime
	buckets []bucket
	mask    uint64
}

func (rt *Runtime) newTable(nbuckets int) *table {
	n := 8
	for n < nbuckets {
		n <<= 1
	}
	t := &table{rt: rt, buckets: make([]bucket, n), mask: uint64(n - 1)}
	for i := range t.buckets {
		t.buckets[i].id = bucketSeq.Add(1)
	}
	rt.tableMu.Lock()
	rt.tables = append(rt.tables, t)
	rt.tableMu.Unlock()
	return t
}

// hashKey mixes the key (Fibonacci hashing) so sequential benchmark keys
// spread across buckets.
func hashKey(k int64) uint64 {
	h := uint64(k) * 0x9E3779B97F4A7C15
	return h ^ (h >> 29)
}

func (t *table) bucket(key int64) *bucket {
	return &t.buckets[hashKey(key)&t.mask]
}

// mutBreakSnapshot is a test-only mutation switch: when set, snapshot reads
// return the newest version regardless of the reader's timestamp — the bug
// class (a reader observing a version newer than its snapshot) the opacity
// checker must catch. Set only by mutation tests, before any concurrency.
var mutBreakSnapshot bool

// visible walks the chain for the newest version with createTS <= snap.
func visible(head *version, snap uint64) *version {
	v := head
	if mutBreakSnapshot {
		return v
	}
	for v != nil && v.createTS > snap {
		v = v.next.Load()
	}
	return v
}

// snapRead resolves key at the transaction's snapshot: no locks, no read
// set, no validation. A locked bucket means a commit (or sweep) is in its
// short critical section; waiting it out is what guarantees a reader whose
// snapshot already covers that commit finds the installed versions (see the
// package comment's snapshot rule). The sweeper cannot reclaim anything the
// walk can reach: the reader published its snapshot before loading it and
// its epoch pin covers the traversal.
func (t *table) snapRead(x *STx, key int64) (uint64, bool) {
	x.tr.Op(traceKey(key))
	b := t.bucket(key)
	var bo spin.Backoff
	for spin.IsLocked(b.lock.Sample()) {
		bo.Wait()
	}
	n := b.find(key)
	if n == nil {
		return 0, false
	}
	v := visible(n.head.Load(), x.snap)
	if v == nil || !v.present {
		return 0, false
	}
	return v.val, true
}

// read resolves key at "now" for an updater: it observes the current head
// version, post-validates the transaction's prior reads (opacity), and
// records a semantic read entry so commit re-validates the observation.
func (t *table) read(tx *Tx, key int64) (uint64, bool) {
	tx.tr.Op(traceKey(key))
	b := t.bucket(key)
	n := b.find(key)
	var v *version
	if n != nil {
		v = n.head.Load()
	}
	tx.postValidate()
	tx.reads = append(tx.reads, readEntry{b: b, key: key, ver: v})
	if v == nil || !v.present {
		return 0, false
	}
	return v.val, true
}

// scanBucket measures the longest version chain and reports whether the
// bucket holds garbage relative to minSnap: versions shadowed below the
// first one visible at minSnap, or a node whose whole history is a
// tombstone no reachable snapshot can distinguish from absence.
func scanBucket(b *bucket, minSnap uint64) (longest int, dirty bool) {
	for n := b.head.Load(); n != nil; n = n.next.Load() {
		l := 0
		seenCut := false
		for v := n.head.Load(); v != nil; v = v.next.Load() {
			l++
			if seenCut {
				dirty = true
			} else if v.createTS <= minSnap {
				seenCut = true
			}
		}
		if l > longest {
			longest = l
		}
		if h := n.head.Load(); h != nil && !h.present && h.createTS <= minSnap && h.next.Load() == nil {
			dirty = true
		}
	}
	return longest, dirty
}

// sweepBucket reclaims the bucket's garbage. Caller holds the bucket lock,
// so no committer can install concurrently; readers may still be walking,
// which is why truncated versions and unlinked nodes are retired through
// the epoch guard rather than pooled directly.
func sweepBucket(b *bucket, minSnap uint64, g *epoch.Guard) {
	var pred *keyNode
	n := b.head.Load()
	for n != nil {
		next := n.next.Load()
		// Truncate everything below the newest version still visible to the
		// oldest active snapshot: every snapshot S >= minSnap resolves to
		// that version or newer, so the suffix is unreachable going forward.
		for v := n.head.Load(); v != nil; v = v.next.Load() {
			if v.createTS <= minSnap {
				old := v.next.Load()
				if old != nil {
					v.next.Store(nil)
					for old != nil {
						nx := old.next.Load()
						g.Retire(old, freeVersion)
						old = nx
					}
				}
				break
			}
		}
		// A history reduced to one tombstone older than minSnap is
		// indistinguishable from absence at every reachable snapshot:
		// unlink the node itself.
		if h := n.head.Load(); h != nil && !h.present && h.createTS <= minSnap && h.next.Load() == nil {
			if pred == nil {
				b.head.Store(next)
			} else {
				pred.next.Store(next)
			}
			g.Retire(h, freeVersion)
			g.Retire(n, freeKeyNode)
			n = next
			continue
		}
		pred = n
		n = next
	}
}

// traceKey maps a user key to a flight-recorder attribution key (positive
// keys map to themselves; the rest are offset into the high half).
func traceKey(key int64) uint64 {
	if key > 0 {
		return uint64(key)
	}
	return uint64(key) ^ (1 << 63)
}

// lockTraceKey attributes bucket-lock events in the global-lock namespace.
func lockTraceKey(b *bucket) uint64 { return 1<<60 | b.id }
