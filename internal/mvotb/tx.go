package mvotb

import (
	"repro/internal/abort"
	"repro/internal/mem/epoch"
	"repro/internal/spin"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// readEntry is one semantic observation: "key currently resolves to version
// ver in bucket b" (ver == nil or a tombstone means absent). Commit and
// every post-validation re-check it.
type readEntry struct {
	b   *bucket
	key int64
	ver *version
}

// check re-evaluates the observation. Identity of the head version is the
// conflict test; two distinct absences (nil node, a different tombstone —
// e.g. after a sweep unlinked the one we saw) are semantically equal, so
// they pass rather than spuriously aborting.
func (e *readEntry) check() bool {
	n := e.b.find(e.key)
	var cur *version
	if n != nil {
		cur = n.head.Load()
	}
	if cur == e.ver {
		return true
	}
	curAbsent := cur == nil || !cur.present
	obsAbsent := e.ver == nil || !e.ver.present
	return curAbsent && obsAbsent
}

// writeEntry is one deferred semantic write: the state (present, val) key
// will have after commit. One entry per (table, key); later operations in
// the same transaction update it in place.
type writeEntry struct {
	t       *table
	b       *bucket
	key     int64
	present bool
	val     uint64
}

// Tx is an updater transaction: the normal OTB optimistic path (unmonitored
// reads of current heads, post-validation after every operation, two-phase
// locked commit) plus an atomic multi-version install at its commit
// timestamp.
type Tx struct {
	rt       *Runtime
	reads    []readEntry
	writes   []writeEntry
	toLock   []*bucket // scratch: deduplicated lock targets
	locked   []*bucket // buckets locked by this transaction
	lockSnap []uint64  // scratch: sampled lock versions during validation
	eg       *epoch.Guard
	tel      *telemetry.Local
	tr       *trace.Local
	hint     uint32 // clock shard hint
}

// Trace returns the transaction's flight-recorder handle (possibly nil; all
// its methods are nil-safe).
func (tx *Tx) Trace() *trace.Local { return tx.tr }

func (tx *Tx) reset() {
	tx.reads = tx.reads[:0]
	tx.writes = tx.writes[:0]
	tx.toLock = tx.toLock[:0]
	tx.locked = tx.locked[:0]
	tx.lockSnap = tx.lockSnap[:0]
}

func (tx *Tx) unpin() {
	if tx.eg != nil {
		tx.eg.Exit()
		tx.eg = nil
	}
}

func (tx *Tx) findWrite(t *table, key int64) *writeEntry {
	for i := range tx.writes {
		if tx.writes[i].t == t && tx.writes[i].key == key {
			return &tx.writes[i]
		}
	}
	return nil
}

func (tx *Tx) addWrite(t *table, key int64, present bool, val uint64) {
	tx.writes = append(tx.writes, writeEntry{t: t, b: t.bucket(key), key: key, present: present, val: val})
}

func (tx *Tx) ownsBucket(b *bucket) bool {
	for _, l := range tx.locked {
		if l == b {
			return true
		}
	}
	return false
}

// ownedVersion marks a lock-snapshot slot for a bucket this transaction
// itself holds (valid by construction).
const ownedVersion = ^uint64(0)

// validate checks the whole read set in the three-phase style of OTB's
// Algorithm 2: sample the involved bucket locks (failing on foreign
// holders), re-check the semantic observations, then confirm the sampled
// versions unchanged, which makes the read set validate atomically.
func (tx *Tx) validate() bool {
	tx.lockSnap = tx.lockSnap[:0]
	for i := range tx.reads {
		b := tx.reads[i].b
		if tx.ownsBucket(b) {
			tx.lockSnap = append(tx.lockSnap, ownedVersion)
			continue
		}
		v := b.lock.Sample()
		if spin.IsLocked(v) {
			tx.tr.ValidateFail(traceKey(tx.reads[i].key))
			return false
		}
		tx.lockSnap = append(tx.lockSnap, v)
	}
	for i := range tx.reads {
		if !tx.reads[i].check() {
			tx.tr.ValidateFail(traceKey(tx.reads[i].key))
			return false
		}
	}
	for i := range tx.reads {
		v := tx.lockSnap[i]
		if v == ownedVersion {
			continue
		}
		if tx.reads[i].b.lock.Sample() != v {
			tx.tr.ValidateFail(traceKey(tx.reads[i].key))
			return false
		}
	}
	return true
}

// postValidate runs after every operation (opacity), aborting on failure.
func (tx *Tx) postValidate() {
	if !tx.validate() {
		abort.Retry(abort.Conflict)
	}
	tx.tr.Validated()
}

// addToLock appends b to the lock-target scratch unless present.
func (tx *Tx) addToLock(b *bucket) {
	for _, m := range tx.toLock {
		if m == b {
			return
		}
	}
	tx.toLock = append(tx.toLock, b)
}

// sortBucketsByID insertion-sorts buckets ascending by allocation id (the
// global lock order), allocation-free on the commit path.
func sortBucketsByID(bs []*bucket) {
	for i := 1; i < len(bs); i++ {
		b := bs[i]
		j := i - 1
		for j >= 0 && bs[j].id > b.id {
			bs[j+1] = bs[j]
			j--
		}
		bs[j+1] = b
	}
}

// commit is the two-phase-locked commit with a multi-version install: lock
// the write set's buckets in global order, validate the read set under
// them, tick the clock to the commit timestamp, install one new version per
// write, release (bumping lock versions so concurrent validations observe
// the commit). Read-only updater transactions skip the locks and only
// validate, pinning their serialization point at commit.
func (tx *Tx) commit() {
	if len(tx.writes) == 0 {
		if !tx.validate() {
			abort.Retry(abort.Conflict)
		}
		tx.tr.Validated()
		return
	}
	tx.toLock = tx.toLock[:0]
	for i := range tx.writes {
		tx.addToLock(tx.writes[i].b)
	}
	sortBucketsByID(tx.toLock)
	for _, b := range tx.toLock {
		if _, ok := b.lock.TryLock(); !ok {
			tx.tr.LockBusy(lockTraceKey(b))
			abort.Retry(abort.LockBusy)
		}
		tx.tr.Lock(lockTraceKey(b))
		tx.locked = append(tx.locked, b)
	}
	if !tx.validate() {
		abort.Retry(abort.Conflict)
	}
	tx.tr.Validated()
	fpInstall.Hit()
	ts := tx.rt.clock.Tick(tx.hint)
	for i := range tx.writes {
		tx.writes[i].install(ts)
	}
	for _, b := range tx.locked {
		b.lock.Unlock()
		tx.tr.Unlock(lockTraceKey(b))
	}
	tx.locked = tx.locked[:0]
}

// install publishes one write as a new chain head at commit timestamp ts.
// The bucket lock is held: no other committer can race, and the reader
// protocol (wait out locked buckets when the snapshot could cover ts)
// guarantees visibility ordering. A delete of a key with no node installs
// nothing — validation proved the key absent, and absence needs no history.
func (w *writeEntry) install(ts uint64) {
	n := w.b.find(w.key)
	if n == nil {
		if !w.present {
			return
		}
		n = newKeyNode(w.key)
		v := newVersion(w.val, true, ts)
		n.head.Store(v)
		n.next.Store(w.b.head.Load())
		w.b.head.Store(n) // publish fully-initialized
		return
	}
	old := n.head.Load()
	v := newVersion(w.val, w.present, ts)
	v.next.Store(old)
	if old != nil {
		old.deleteTS.Store(ts)
	}
	n.head.Store(v)
}

// rollback releases anything held by an aborting transaction with lock
// versions unchanged — nothing was published (install cannot fail), so
// concurrent readers are not spuriously invalidated.
func (tx *Tx) rollback() {
	for _, b := range tx.locked {
		b.lock.UnlockUnchanged()
	}
	tx.reset()
}
