// Package mvotb is the multi-version optimistic-transactional-boosting
// runtime: OTB's semantic sets and maps with per-key version chains, so
// read-only transactions pin a snapshot timestamp at begin and never
// validate, never lock, and never abort ("Optimized Multi-Version Object
// Based Transactional Systems", arXiv 1905.01200, over the PPoPP'14 OTB
// base).
//
// Updaters run the normal OTB optimistic path — unmonitored traversal,
// semantic read/write sets, post-validation after every operation, a
// two-phase-locked commit — and install new versions atomically under
// per-bucket versioned locks, stamped by a global spin.ShardedClock.
// Readers resolve every key against their snapshot: the newest version with
// createTS <= snapshot. A background sweeper reclaims versions older than
// the minimum active snapshot through an epoch domain and publishes the
// live chain length as a telemetry gauge ("mvotb.chain.max").
//
//	rt := mvotb.New(mvotb.Options{})
//	defer rt.Stop()
//	set := rt.NewSet(1024)
//	rt.Atomic(func(tx *mvotb.Tx) { set.Add(tx, 1) })
//	rt.ReadOnly(func(x *mvotb.STx) { _ = set.SnapContains(x, 1) })
//
// Snapshot rule (what makes readers abort-free): a writer ticks the clock
// to its commit timestamp T only while holding every bucket lock it will
// touch, and unlocks only after all its versions are installed. A reader
// that observed snapshot S before the tick has S < T and correctly skips
// the new versions; a reader whose S >= T can only have pinned S after the
// tick, hence after the locks were taken — so when it finds the bucket
// unlocked the versions are already installed, and when it finds the bucket
// locked it waits for the (short) install to finish. Either way the chain
// walk returns exactly the committed state at S.
package mvotb

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/abort"
	"repro/internal/chaos/failpoint"
	"repro/internal/cm"
	"repro/internal/mem/epoch"
	"repro/internal/spin"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Failpoints on the version-install and GC paths; disarmed they are one
// atomic load each.
var (
	// fpInstall fires inside commit after every bucket lock is held and the
	// read set validated, but before the clock tick and version install —
	// the most dangerous window; recovery must release the locks with their
	// versions unchanged (nothing was published).
	fpInstall = failpoint.New("mvotb.commit.install")
	// fpGCSweep fires at the top of a GC cycle, before the sweeper takes
	// any bucket lock. The GC goroutine recovers injected panics and keeps
	// sweeping (crash coverage must not kill collection for the process
	// lifetime).
	fpGCSweep = failpoint.New("mvotb.gc.sweep")
)

// meter/roMeter split updater and read-only statistics so a read-mostly run
// can prove the snapshot path aborts zero times (the MVOTB-RO abort column
// is structurally zero: the path has no validation and no locks).
var (
	meter   = telemetry.M("MVOTB")
	roMeter = telemetry.M("MVOTB-RO")
)

// traceSrc is the flight-recorder source shared by both paths.
var traceSrc = trace.S("MVOTB")

// DefaultGCInterval is the background sweep period when Options.GCInterval
// is zero.
const DefaultGCInterval = 25 * time.Millisecond

// Options configures a Runtime.
type Options struct {
	// GCInterval is the background version-sweep period (0 means
	// DefaultGCInterval). Tests shorten it to provoke collection.
	GCInterval time.Duration
}

// snapSlot publishes one reader's active snapshot timestamp (0 = idle) on
// its own cache line. Slots are bound to pooled STx descriptors once and
// scanned by the sweeper.
type snapSlot struct {
	ts atomic.Uint64
	_  [spin.CacheLineSize - 8]byte
}

// Runtime owns the version clock, the snapshot registry, the epoch domain
// the structures retire into, and the background sweeper. Structures from
// different runtimes must not meet in one transaction (they would carry
// unrelated timestamps).
type Runtime struct {
	clock spin.ShardedClock
	mem   *epoch.Manager
	cmgr  atomic.Pointer[cm.Manager]

	// snapMu guards slot registration and the sweeper's scan; the snapshot
	// hot path touches it only on its (rare) confirm-loop fallback.
	snapMu    sync.Mutex
	snapSlots []*snapSlot

	tableMu sync.Mutex
	tables  []*table

	gcEvery time.Duration
	quit    chan struct{}
	done    chan struct{}
	stopped sync.Once

	updPool sync.Pool // *updRunner
	roPool  sync.Pool // *STx

	chainGauge *telemetry.Gauge
}

// New creates a runtime and starts its background sweeper. Call Stop when
// done (tests leak-check the GC goroutine).
func New(opts Options) *Runtime {
	rt := &Runtime{
		mem:        epoch.NewManager(),
		gcEvery:    opts.GCInterval,
		quit:       make(chan struct{}),
		done:       make(chan struct{}),
		chainGauge: telemetry.G("mvotb.chain.max"),
	}
	if rt.gcEvery <= 0 {
		rt.gcEvery = DefaultGCInterval
	}
	rt.updPool.New = func() any {
		tx := &Tx{rt: rt, tel: meter.Local(), tr: traceSrc.Local(), hint: spin.NextShardHint()}
		return &updRunner{tx: tx}
	}
	rt.roPool.New = func() any {
		x := &STx{rt: rt, slot: &snapSlot{}, tel: roMeter.Local(), tr: traceSrc.Local()}
		rt.snapMu.Lock()
		rt.snapSlots = append(rt.snapSlots, x.slot)
		rt.snapMu.Unlock()
		return x
	}
	go rt.gcLoop()
	return rt
}

func init() {
	meter.SetPolicySource(func() string { return cm.Or(nil).Policy().Name() })
}

// SetManager installs the contention manager updater transactions run under
// (nil restores the shared default). Read-only transactions never contend,
// so no manager applies to them.
func (rt *Runtime) SetManager(m *cm.Manager) { rt.cmgr.Store(m) }

// Stop halts the background sweeper and waits for it to exit. Idempotent.
func (rt *Runtime) Stop() {
	rt.stopped.Do(func() { close(rt.quit) })
	<-rt.done
}

// tableList snapshots the registered tables.
func (rt *Runtime) tableList() []*table {
	rt.tableMu.Lock()
	out := rt.tables
	rt.tableMu.Unlock()
	return out
}

// --- read-only (snapshot) transactions ---

// STx is a read-only snapshot transaction: it holds a snapshot timestamp
// pinned at begin and resolves every read against it. It records no read
// set, takes no locks, and cannot abort.
type STx struct {
	rt   *Runtime
	snap uint64
	slot *snapSlot
	eg   *epoch.Guard
	tel  *telemetry.Local
	tr   *trace.Local
}

// Snapshot returns the transaction's pinned timestamp (tests and tracing).
func (x *STx) Snapshot() uint64 { return x.snap }

// pinSnapshot publishes the snapshot before relying on it, so a concurrent
// sweep can never reclaim versions this reader still needs. The sweeper
// loads the clock BEFORE scanning slots; we store our candidate and confirm
// the clock did not move past it — if the confirm load still reads s, any
// sweep that missed our slot loaded the clock before it advanced beyond s,
// so its bound is <= s. A moved clock retries (the stale published value is
// smaller, hence safely conservative); persistent movement falls back to
// the registration mutex, under which the same ordering argument is direct.
func (x *STx) pinSnapshot() {
	rt := x.rt
	for i := 0; i < 4; i++ {
		s := rt.clock.Load()
		x.slot.ts.Store(s)
		if rt.clock.Load() == s {
			x.snap = s
			return
		}
	}
	rt.snapMu.Lock()
	s := rt.clock.Load()
	x.slot.ts.Store(s)
	rt.snapMu.Unlock()
	x.snap = s
}

// ReadOnly runs fn as a snapshot transaction. The body executes exactly
// once: there is no validation and no retry loop, hence no abort — the
// guarantee the whole runtime exists for.
func (rt *Runtime) ReadOnly(fn func(*STx)) {
	_ = rt.ReadOnlyCtx(nil, fn)
}

// ReadOnlyCtx is ReadOnly observing ctx: cancellation is checked once at
// begin (a running snapshot body never blocks on other transactions beyond
// a bounded install wait, so mid-flight cancellation has nothing to
// interrupt).
func (rt *Runtime) ReadOnlyCtx(ctx context.Context, fn func(*STx)) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	x := rt.roPool.Get().(*STx)
	start := x.tel.Start()
	x.tr.TxStart()
	x.eg = rt.mem.Enter()
	x.pinSnapshot()
	defer func() {
		x.slot.ts.Store(0)
		x.eg.Exit()
		x.eg = nil
		x.tr.TxEnd()
		rt.roPool.Put(x)
	}()
	fn(x)
	x.tel.Commit(start)
	return nil
}

// --- updater transactions ---

// updRunner drives one updater transaction through abort.RunPolicyTxCtx via
// TxRunner methods, so the hot path allocates no closures.
type updRunner struct {
	tx *Tx
	fn func(*Tx)
}

func (r *updRunner) Begin() {
	r.tx.reset()
	r.tx.tr.AttemptStart()
	r.tx.eg = r.tx.rt.mem.Enter()
}

func (r *updRunner) Attempt() {
	r.fn(r.tx)
	cs := r.tx.tel.Start()
	r.tx.tr.CommitBegin()
	r.tx.commit()
	r.tx.tr.CommitEnd()
	r.tx.tel.CommitPhase(cs)
	r.tx.unpin()
}

func (r *updRunner) Rollback(reason abort.Reason) {
	r.tx.rollback()
	r.tx.unpin()
	r.tx.tel.Abort(reason)
	r.tx.tr.Abort(reason)
}

// Atomic runs fn as an updater transaction, retrying on abort until commit.
func (rt *Runtime) Atomic(fn func(*Tx)) {
	_ = rt.AtomicCtx(nil, fn)
}

// AtomicCtx is Atomic observing ctx: cancellation or deadline expiry is
// checked at every retry-loop top and inside contention-management waits; an
// abandoned transaction rolls back with abort.Canceled and the context's
// error is returned (nil after a successful commit).
func (rt *Runtime) AtomicCtx(ctx context.Context, fn func(*Tx)) error {
	r := rt.updPool.Get().(*updRunner)
	tx := r.tx
	r.fn = fn
	defer func() {
		tx.reset()
		r.fn = nil
		rt.updPool.Put(r)
	}()
	start := tx.tel.Start()
	tx.tr.TxStart()
	defer tx.tr.TxEnd()
	escalated, err := abort.RunPolicyTxCtx(ctx, nil, cm.Or(rt.cmgr.Load()), r)
	if escalated {
		tx.tel.Escalated()
		tx.tr.Escalated()
	}
	if err != nil {
		return err
	}
	tx.tel.Commit(start)
	return nil
}

// --- background version GC ---

// minActiveSnap returns the sweep bound: no version visible at or after it
// may be reclaimed. The clock is loaded before the slot scan — see
// pinSnapshot for why that order makes the bound safe against readers
// registering concurrently.
func (rt *Runtime) minActiveSnap() uint64 {
	m := rt.clock.Load()
	rt.snapMu.Lock()
	for _, s := range rt.snapSlots {
		if v := s.ts.Load(); v != 0 && v < m {
			m = v
		}
	}
	rt.snapMu.Unlock()
	return m
}

func (rt *Runtime) gcLoop() {
	defer close(rt.done)
	t := time.NewTicker(rt.gcEvery)
	defer t.Stop()
	for {
		select {
		case <-rt.quit:
			return
		case <-t.C:
			rt.gcSafe()
		}
	}
}

// gcSafe runs one sweep, recovering injected failpoint panics only: fault
// injection must not kill the process-lifetime collector, while a genuine
// bug still crashes loudly. The failpoint fires before any lock or epoch
// pin is taken, so recovery holds nothing.
func (rt *Runtime) gcSafe() {
	defer func() {
		if p := recover(); p != nil {
			if _, ok := p.(*failpoint.PanicValue); ok {
				return
			}
			panic(p)
		}
	}()
	rt.gcOnce()
}

// GC runs one synchronous collection cycle. The background loop calls the
// same sweep on a ticker; tests call it directly to make reclamation
// deterministic.
func (rt *Runtime) GC() { rt.gcOnce() }

func (rt *Runtime) gcOnce() {
	fpGCSweep.Hit()
	minSnap := rt.minActiveSnap()
	g := rt.mem.Enter()
	defer g.Exit()
	maxChain := 0
	for _, t := range rt.tableList() {
		for i := range t.buckets {
			b := &t.buckets[i]
			longest, dirty := scanBucket(b, minSnap)
			if longest > maxChain {
				maxChain = longest
			}
			if !dirty {
				continue
			}
			if _, ok := b.lock.TryLock(); !ok {
				continue // a committer owns it; next cycle
			}
			sweepBucket(b, minSnap, g)
			// The sweep preserves every semantic fact an updater could have
			// read (it only discards shadowed versions and provably-absent
			// tombstone nodes), so the lock version is restored unchanged
			// and concurrent validations are not spuriously invalidated.
			b.lock.UnlockUnchanged()
		}
	}
	rt.chainGauge.Set(int64(maxChain))
}

// MaxChainLen reports the longest live version chain across the runtime's
// structures (epoch-pinned scan; tests and reporting).
func (rt *Runtime) MaxChainLen() int {
	g := rt.mem.Enter()
	defer g.Exit()
	longest := 0
	for _, t := range rt.tableList() {
		for i := range t.buckets {
			if l, _ := scanBucket(&t.buckets[i], 0); l > longest {
				longest = l
			}
		}
	}
	return longest
}
