package mvotb_test

import (
	"testing"

	"repro/internal/mvotb"
	"repro/internal/race"
)

// These tests pin the two MVOTB fast paths at zero allocations per
// operation: the snapshot read path (pooled STx descriptor, no read set, no
// locks) and the updater commit path (pooled descriptor and runner, pooled
// version nodes recycled through epoch reclamation by the sweeper).
//
// The update loop runs a GC cycle per transaction: multi-versioning
// inherently creates one version per write, and the steady state is only
// allocation-free because the sweeper feeds shadowed versions back to the
// pools. Measuring commit+sweep together pins exactly that loop.

const warmupRounds = 200

func runAllocTx(t *testing.T, name string, fn func()) {
	t.Helper()
	if race.Enabled {
		t.Skip("race-mode sync.Pool drops Puts at random; pooled paths cannot be allocation-free")
	}
	for i := 0; i < warmupRounds; i++ {
		fn()
	}
	if allocs := testing.AllocsPerRun(1000, fn); allocs > 0 {
		t.Errorf("%s: %.2f allocs/op, want 0", name, allocs)
	}
}

func newAllocRuntime(t testing.TB) (*mvotb.Runtime, *mvotb.Set) {
	rt := mvotb.New(mvotb.Options{GCInterval: 1 << 62}) // manual GC in the loop
	t.Cleanup(rt.Stop)
	s := rt.NewSet(64)
	for k := int64(1); k <= 64; k++ {
		rt.Atomic(func(tx *mvotb.Tx) { s.Add(tx, k) })
	}
	return rt, s
}

// TestReadOnlyAllocFree pins the snapshot path: begin (pin), one read, end.
func TestReadOnlyAllocFree(t *testing.T) {
	rt, s := newAllocRuntime(t)
	var sink bool
	body := func(x *mvotb.STx) { sink = s.SnapContains(x, 32) }
	runAllocTx(t, "mvotb snapshot read tx", func() {
		rt.ReadOnly(body)
	})
	_ = sink
}

// TestWriteTxAllocFree pins the updater commit path plus the sweep that
// recycles the versions it shadowed.
func TestWriteTxAllocFree(t *testing.T) {
	rt, s := newAllocRuntime(t)
	adding := false
	key := int64(32)
	body := func(tx *mvotb.Tx) {
		if adding {
			s.Add(tx, key)
		} else {
			s.Remove(tx, key)
		}
	}
	runAllocTx(t, "mvotb write tx", func() {
		rt.Atomic(body)
		adding = !adding
		rt.GC()
	})
}

// BenchmarkReadOnlyTx reports ns/op and allocs/op for the snapshot path.
func BenchmarkReadOnlyTx(b *testing.B) {
	rt, s := newAllocRuntime(b)
	var sink bool
	body := func(x *mvotb.STx) { sink = s.SnapContains(x, 32) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.ReadOnly(body)
	}
	_ = sink
}

// BenchmarkWriteTx reports ns/op and allocs/op for the updater commit path
// (with the recycling sweep amortized in, as in the alloc test).
func BenchmarkWriteTx(b *testing.B) {
	rt, s := newAllocRuntime(b)
	adding := false
	key := int64(32)
	body := func(tx *mvotb.Tx) {
		if adding {
			s.Add(tx, key)
		} else {
			s.Remove(tx, key)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Atomic(body)
		adding = !adding
		rt.GC()
	}
}
