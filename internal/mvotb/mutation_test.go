package mvotb

import (
	"testing"
	"time"

	"repro/internal/lincheck"
)

// runSnapshotSchedule drives one fixed interleaving that only a correct
// snapshot rule serializes: a reader pins its snapshot and observes key A,
// then — with the reader still open — a writer commits {remove A, add B}
// atomically, then the reader observes B. A correct multi-version runtime
// answers (A=true, B=false): the reader's whole view is its begin-time
// state. The broken mutant resolves reads against the newest version and
// answers (A=true, B=true) — a state that never existed, which the opacity
// checker must reject (before the writer B was absent; after it A was).
func runSnapshotSchedule(t *testing.T) lincheck.Result {
	t.Helper()
	rt := New(Options{GCInterval: time.Hour})
	defer rt.Stop()
	s := rt.NewSet(8)
	const keyA, keyB = 1, 2

	rec := lincheck.NewTxnRecorder(2)
	// Setup (thread 0): A present before anything else.
	rec.BeginAttempt(0)
	rt.Atomic(func(tx *Tx) {
		ok := s.Add(tx, keyA)
		rec.Op(0, lincheck.Op{Kind: lincheck.Add, Key: keyA, Ok: ok})
	})
	rec.Commit(0)

	// Reader (thread 1) brackets the writer's commit.
	rt.ReadOnly(func(x *STx) {
		rec.BeginAttempt(1)
		rec.Op(1, lincheck.Op{Kind: lincheck.Contains, Key: keyA, Ok: s.SnapContains(x, keyA)})

		rec.BeginAttempt(0)
		rt.Atomic(func(tx *Tx) {
			rec.Op(0, lincheck.Op{Kind: lincheck.Remove, Key: keyA, Ok: s.Remove(tx, keyA)})
			rec.Op(0, lincheck.Op{Kind: lincheck.Add, Key: keyB, Ok: s.Add(tx, keyB)})
		})
		rec.Commit(0)

		rec.Op(1, lincheck.Op{Kind: lincheck.Contains, Key: keyB, Ok: s.SnapContains(x, keyB)})
	})
	rec.Commit(1)

	return lincheck.CheckOpacity(lincheck.SetTxnSpec(), rec.History())
}

// TestSnapshotScheduleOpaque: the correct runtime serializes the fixed
// schedule (reader before writer).
func TestSnapshotScheduleOpaque(t *testing.T) {
	if res := runSnapshotSchedule(t); res.Outcome != lincheck.Ok {
		t.Fatalf("correct runtime judged %v: %s", res.Outcome, res.Detail)
	}
}

// TestMutationBrokenSnapshotCaught flips the visibility mutation (snapshot
// reads resolve to the newest version, ignoring the pinned timestamp) and
// requires the opacity checker to reject the same schedule. This proves the
// checker actually constrains the snapshot rule — the guarantee the whole
// runtime exists for — rather than vacuously passing.
func TestMutationBrokenSnapshotCaught(t *testing.T) {
	mutBreakSnapshot = true
	defer func() { mutBreakSnapshot = false }()
	res := runSnapshotSchedule(t)
	if res.Outcome != lincheck.Violation {
		t.Fatalf("broken snapshot visibility judged %v, want violation (detail: %s)", res.Outcome, res.Detail)
	}
	t.Logf("caught: %s", res.Detail)
}
