package mvotb_test

import (
	"testing"

	"repro/internal/lincheck"
	"repro/internal/mvotb"
	"repro/internal/telemetry"
)

// Linearizability and opacity checks for the multi-version runtime, to the
// same bar as every other runtime: single-operation transactions as
// linearizable set/map operations, multi-operation transactions against the
// transactional opacity specification, and — the MVOTB-specific leg — a
// read-mostly split where half the threads run Contains-only bodies through
// the never-abort snapshot path, recorded into the same history.

// atomicSet runs each abstract operation in its own MVOTB transaction.
type atomicSet struct {
	rt *mvotb.Runtime
	s  *mvotb.Set
}

func (a atomicSet) Add(k int64) (ok bool) {
	a.rt.Atomic(func(tx *mvotb.Tx) { ok = a.s.Add(tx, k) })
	return
}

func (a atomicSet) Remove(k int64) (ok bool) {
	a.rt.Atomic(func(tx *mvotb.Tx) { ok = a.s.Remove(tx, k) })
	return
}

// Contains goes through the snapshot path on purpose: a single-key
// read-only transaction is a linearizable Contains (it takes effect at its
// snapshot point), and routing it here puts the reader protocol itself
// under the checker.
func (a atomicSet) Contains(k int64) (ok bool) {
	a.rt.ReadOnly(func(x *mvotb.STx) { ok = a.s.SnapContains(x, k) })
	return
}

// atomicMap is atomicSet for the map, Get/ContainsKey via snapshots.
type atomicMap struct {
	rt *mvotb.Runtime
	m  *mvotb.Map
}

func (a atomicMap) Put(k int64, v uint64) (ok bool) {
	a.rt.Atomic(func(tx *mvotb.Tx) { ok = a.m.Put(tx, k, v) })
	return
}

func (a atomicMap) Get(k int64) (v uint64, ok bool) {
	a.rt.ReadOnly(func(x *mvotb.STx) { v, ok = a.m.SnapGet(x, k) })
	return
}

func (a atomicMap) Delete(k int64) (ok bool) {
	a.rt.Atomic(func(tx *mvotb.Tx) { ok = a.m.Delete(tx, k) })
	return
}

func TestLincheckMVOTBSet(t *testing.T) {
	rt := newRuntime(t)
	cfg := lincheck.DefaultConfig(21)
	cfg.Name = "mvotb/set"
	if testing.Short() {
		cfg = cfg.Scaled(4)
	}
	lincheck.StressSet(t, cfg, func() lincheck.Set {
		return atomicSet{rt, rt.NewSet(16)}
	})
}

func TestLincheckMVOTBMap(t *testing.T) {
	rt := newRuntime(t)
	cfg := lincheck.DefaultConfig(22)
	cfg.Name = "mvotb/map"
	if testing.Short() {
		cfg = cfg.Scaled(4)
	}
	lincheck.StressMap(t, cfg, func() lincheck.Map {
		return atomicMap{rt, rt.NewMap(16)}
	})
}

// txView is one attempt's transactional view of an MVOTB set.
type txView struct {
	tx *mvotb.Tx
	s  *mvotb.Set
}

func (v txView) Add(k int64) bool      { return v.s.Add(v.tx, k) }
func (v txView) Remove(k int64) bool   { return v.s.Remove(v.tx, k) }
func (v txView) Contains(k int64) bool { return v.s.Contains(v.tx, k) }

// roView is a snapshot transaction's read-only view; the RO stress driver
// only ever calls Contains on it.
type roView struct {
	x *mvotb.STx
	s *mvotb.Set
}

func (v roView) Add(int64) bool        { panic("mvotb: write on read-only view") }
func (v roView) Remove(int64) bool     { panic("mvotb: write on read-only view") }
func (v roView) Contains(k int64) bool { return v.s.SnapContains(v.x, k) }

// TestOpacityMVOTBSetTxns checks multi-operation updater transactions for
// opacity.
func TestOpacityMVOTBSetTxns(t *testing.T) {
	rt := newRuntime(t)
	s := rt.NewSet(16)
	cfg := lincheck.DefaultSTMConfig(23)
	cfg.Name = "mvotb/set-txns"
	cfg.Cells = 8
	if testing.Short() {
		cfg = cfg.Scaled(2)
	}
	lincheck.StressTxnSet(t, cfg, func(th int, body func(lincheck.Set)) {
		rt.Atomic(func(tx *mvotb.Tx) { body(txView{tx, s}) })
	})
}

// TestOpacityMVOTBReadMostly is the acceptance check for the snapshot path:
// updater and snapshot transactions interleave in one recorded history, the
// opacity checker must find a commit order, and the MVOTB-RO meter must
// show zero aborts — the read-only population never retried.
func TestOpacityMVOTBReadMostly(t *testing.T) {
	rt := newRuntime(t)
	s := rt.NewSet(16)
	cfg := lincheck.DefaultSTMConfig(24)
	cfg.Name = "mvotb/set-ro"
	cfg.Cells = 8
	if testing.Short() {
		cfg = cfg.Scaled(2)
	}
	telemetry.Enable()
	before := telemetry.M("MVOTB-RO").Snapshot()
	lincheck.StressTxnSetRO(t, cfg,
		func(th int, body func(lincheck.Set)) {
			rt.Atomic(func(tx *mvotb.Tx) { body(txView{tx, s}) })
		},
		func(th int, body func(lincheck.Set)) {
			rt.ReadOnly(func(x *mvotb.STx) { body(roView{x, s}) })
		})
	after := telemetry.M("MVOTB-RO").Snapshot()
	if d := after.TotalAborts() - before.TotalAborts(); d != 0 {
		t.Errorf("MVOTB-RO aborts grew by %d during read-mostly stress, want 0", d)
	}
	if after.Commits == before.Commits {
		t.Error("MVOTB-RO commits did not grow; snapshot path not exercised")
	}
}
