package mvotb_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos/leak"
	"repro/internal/mvotb"
)

func newRuntime(t testing.TB) *mvotb.Runtime {
	t.Helper()
	rt := mvotb.New(mvotb.Options{})
	t.Cleanup(rt.Stop)
	return rt
}

func TestSetBasics(t *testing.T) {
	leak.CheckCleanup(t)
	rt := newRuntime(t)
	s := rt.NewSet(64)
	rt.Atomic(func(tx *mvotb.Tx) {
		if !s.Add(tx, 1) {
			t.Error("Add(1) on empty set = false")
		}
		if s.Add(tx, 1) {
			t.Error("second Add(1) in same tx = true")
		}
		if !s.Contains(tx, 1) {
			t.Error("Contains(1) after Add = false (read-your-writes)")
		}
		if s.Contains(tx, 2) {
			t.Error("Contains(2) = true")
		}
	})
	rt.Atomic(func(tx *mvotb.Tx) {
		if !s.Contains(tx, 1) {
			t.Error("Contains(1) in later tx = false")
		}
		if !s.Remove(tx, 1) {
			t.Error("Remove(1) = false")
		}
		if s.Contains(tx, 1) {
			t.Error("Contains(1) after Remove in same tx = true")
		}
		if s.Remove(tx, 1) {
			t.Error("second Remove(1) in same tx = true")
		}
	})
	rt.ReadOnly(func(x *mvotb.STx) {
		if s.SnapContains(x, 1) {
			t.Error("SnapContains(1) after committed remove = true")
		}
	})
	if n := s.Len(); n != 0 {
		t.Errorf("Len = %d, want 0", n)
	}
}

func TestMapBasics(t *testing.T) {
	leak.CheckCleanup(t)
	rt := newRuntime(t)
	m := rt.NewMap(64)
	rt.Atomic(func(tx *mvotb.Tx) {
		if !m.Put(tx, 7, 70) {
			t.Error("Put(7) on empty map: inserted = false")
		}
		if m.Put(tx, 7, 71) {
			t.Error("second Put(7): inserted = true")
		}
		if v, ok := m.Get(tx, 7); !ok || v != 71 {
			t.Errorf("Get(7) = %d,%v want 71,true", v, ok)
		}
	})
	rt.Atomic(func(tx *mvotb.Tx) {
		if v, ok := m.Get(tx, 7); !ok || v != 71 {
			t.Errorf("Get(7) in later tx = %d,%v want 71,true", v, ok)
		}
		if !m.Delete(tx, 7) {
			t.Error("Delete(7) = false")
		}
		if m.ContainsKey(tx, 7) {
			t.Error("ContainsKey(7) after Delete = true")
		}
		if m.Delete(tx, 7) {
			t.Error("second Delete(7) = true")
		}
	})
	rt.ReadOnly(func(x *mvotb.STx) {
		if _, ok := m.SnapGet(x, 7); ok {
			t.Error("SnapGet(7) after committed delete: ok = true")
		}
	})
}

// TestSnapshotIsolation holds a reader's snapshot across a committed update
// and checks the reader keeps seeing its begin-time state while a fresh
// reader sees the new one.
func TestSnapshotIsolation(t *testing.T) {
	leak.CheckCleanup(t)
	rt := newRuntime(t)
	s := rt.NewSet(64)
	m := rt.NewMap(64)
	rt.Atomic(func(tx *mvotb.Tx) {
		s.Add(tx, 1)
		m.Put(tx, 1, 100)
	})
	pinned := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		rt.ReadOnly(func(x *mvotb.STx) {
			close(pinned)
			<-release
			if !s.SnapContains(x, 1) {
				t.Error("old reader: SnapContains(1) = false after concurrent remove")
			}
			if s.SnapContains(x, 2) {
				t.Error("old reader: SnapContains(2) = true, sees future insert")
			}
			if v, ok := m.SnapGet(x, 1); !ok || v != 100 {
				t.Errorf("old reader: SnapGet(1) = %d,%v want 100,true", v, ok)
			}
		})
	}()
	<-pinned
	rt.Atomic(func(tx *mvotb.Tx) {
		s.Remove(tx, 1)
		s.Add(tx, 2)
		m.Put(tx, 1, 200)
	})
	rt.ReadOnly(func(x *mvotb.STx) {
		if s.SnapContains(x, 1) {
			t.Error("new reader: SnapContains(1) = true")
		}
		if !s.SnapContains(x, 2) {
			t.Error("new reader: SnapContains(2) = false")
		}
		if v, ok := m.SnapGet(x, 1); !ok || v != 200 {
			t.Errorf("new reader: SnapGet(1) = %d,%v want 200,true", v, ok)
		}
	})
	close(release)
	<-done
}

// TestSnapshotAtomicity: a reader must never observe half of a committed
// multi-key transaction. Updaters atomically move a token between two keys;
// readers must always see exactly one of them.
func TestSnapshotAtomicity(t *testing.T) {
	leak.CheckCleanup(t)
	rt := newRuntime(t)
	// One bucket-collision-prone small table raises contention on purpose.
	s := rt.NewSet(8)
	rt.Atomic(func(tx *mvotb.Tx) { s.Add(tx, 0) })
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		at := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			next := (at + 1) % 3
			rt.Atomic(func(tx *mvotb.Tx) {
				s.Remove(tx, at)
				s.Add(tx, next)
			})
			at = next
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				rt.ReadOnly(func(x *mvotb.STx) {
					n := 0
					for k := int64(0); k < 3; k++ {
						if s.SnapContains(x, k) {
							n++
						}
					}
					if n != 1 {
						t.Errorf("snapshot sees %d tokens, want exactly 1", n)
					}
				})
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestReadOnlyCtxCanceled: a canceled context is observed at begin.
func TestReadOnlyCtxCanceled(t *testing.T) {
	rt := newRuntime(t)
	s := rt.NewSet(8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	if err := rt.ReadOnlyCtx(ctx, func(x *mvotb.STx) { ran = true; _ = s.SnapContains(x, 1) }); err == nil {
		t.Fatal("ReadOnlyCtx(canceled) = nil error")
	}
	if ran {
		t.Fatal("body ran under canceled context")
	}
}

// TestGCBoundsChains is the reclamation acceptance test: a pinned reader
// holds history alive while updaters churn one key (the chain grows); once
// the reader drains and GC runs, the chain collapses back to a single
// version and the tombstone-only key vanishes, with no goroutine or epoch
// guard left behind.
func TestGCBoundsChains(t *testing.T) {
	defer leak.Check(t)()
	rt := mvotb.New(mvotb.Options{GCInterval: time.Hour}) // manual GC only
	defer rt.Stop()
	s := rt.NewSet(8)

	rt.Atomic(func(tx *mvotb.Tx) { s.Add(tx, 99) })
	pinned := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		rt.ReadOnly(func(x *mvotb.STx) {
			if !s.SnapContains(x, 99) {
				t.Error("pinned reader: SnapContains(99) = false at begin")
			}
			close(pinned)
			<-release
			// Re-check after a sweep ran below the pin: GC must have
			// preserved everything this snapshot can see.
			if !s.SnapContains(x, 99) {
				t.Error("pinned reader: SnapContains(99) = false after GC")
			}
			if s.SnapContains(x, 42) {
				t.Error("pinned reader: SnapContains(42) = true, churn leaked past snapshot")
			}
		})
	}()
	<-pinned

	const churns = 40
	for i := 0; i < churns; i++ {
		rt.Atomic(func(tx *mvotb.Tx) {
			if i%2 == 0 {
				s.Remove(tx, 42)
			} else {
				s.Add(tx, 42)
			}
		})
		rt.Atomic(func(tx *mvotb.Tx) { s.Add(tx, 7) })
		rt.Atomic(func(tx *mvotb.Tx) { s.Remove(tx, 7) })
	}
	if got := rt.MaxChainLen(); got < 2 {
		t.Fatalf("chain did not grow under pinned reader: MaxChainLen = %d", got)
	}
	// GC with the reader still pinned must respect its snapshot: chains may
	// shrink above the pin but the begin-time state survives (the reader
	// re-checks its view after release).
	rt.GC()
	close(release)
	<-done
	// With no active snapshot, repeated GC collapses every chain to one
	// version (epoch reclamation needs a few cycles to drain limbo).
	for i := 0; i < 10 && rt.MaxChainLen() > 1; i++ {
		rt.GC()
	}
	if got := rt.MaxChainLen(); got > 1 {
		t.Errorf("MaxChainLen = %d after readers drained and GC, want <= 1", got)
	}
	// Tombstone-only keys (7 was last removed, 42 ends removed on even
	// churn) are unlinked entirely.
	rt.ReadOnly(func(x *mvotb.STx) {
		if s.SnapContains(x, 7) {
			t.Error("key 7 present after final remove")
		}
		if !s.SnapContains(x, 99) {
			t.Error("key 99 lost by GC")
		}
	})
	if n := s.Len(); n != 2 { // 42 (even churns end with Add at i=39? see below) + 99
		// churns=40: i ranges 0..39; i%2==0 → Remove(42), odd → Add(42).
		// Last op on 42 is i=39 (odd) → Add. So 42 and 99 remain.
		t.Errorf("Len = %d, want 2 (keys 42 and 99)", n)
	}
}

// TestConcurrentChurnWithGC runs updaters, snapshot readers and the
// background sweeper together under the race detector.
func TestConcurrentChurnWithGC(t *testing.T) {
	defer leak.Check(t)()
	rt := mvotb.New(mvotb.Options{GCInterval: time.Millisecond})
	defer rt.Stop()
	s := rt.NewSet(32)
	m := rt.NewMap(32)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			k := int64(w)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rt.Atomic(func(tx *mvotb.Tx) {
					if i%2 == 0 {
						s.Add(tx, k)
						m.Put(tx, k, uint64(i))
					} else {
						s.Remove(tx, k)
						m.Delete(tx, k)
					}
				})
				k = (k + 3) % 24
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rt.ReadOnly(func(x *mvotb.STx) {
					for k := int64(0); k < 24; k++ {
						inSet := s.SnapContains(x, k)
						_, inMap := m.SnapGet(x, k)
						if inSet != inMap {
							t.Errorf("snapshot tore set/map pair for key %d: set=%v map=%v", k, inSet, inMap)
							return
						}
					}
				})
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestStopIdempotent: Stop twice is safe and the sweeper goroutine exits.
func TestStopIdempotent(t *testing.T) {
	defer leak.Check(t)()
	rt := mvotb.New(mvotb.Options{GCInterval: time.Millisecond})
	rt.Stop()
	rt.Stop()
}
