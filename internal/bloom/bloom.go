// Package bloom implements the fixed-size bloom filters used for conflict
// and dependency detection: RingSTM commit filters, InvalSTM read/write
// filters, and RTC's independent-transaction detector.
//
// Filters are 1024 bits (the RSTM default the paper uses) with two hash
// probes per key, and support the only three operations the algorithms
// need: add, intersection test, and union.
package bloom

import "math/bits"

// Words is the number of 64-bit words in a Filter (1024 bits).
const Words = 16

// Filter is a 1024-bit bloom filter. The zero value is empty.
type Filter [Words]uint64

// hash1 and hash2 derive two independent probe positions from a key using
// 64-bit mixing (splitmix64 finalizer constants).
func hash1(key uint64) uint64 {
	key ^= key >> 33
	key *= 0xff51afd7ed558ccd
	key ^= key >> 33
	return key
}

func hash2(key uint64) uint64 {
	key *= 0xc4ceb9fe1a85ec53
	key ^= key >> 29
	key *= 0x9e3779b97f4a7c15
	key ^= key >> 32
	return key
}

// Add inserts key into the filter.
func (f *Filter) Add(key uint64) {
	h1, h2 := hash1(key), hash2(key)
	f[(h1>>6)%Words] |= 1 << (h1 & 63)
	f[(h2>>6)%Words] |= 1 << (h2 & 63)
}

// MayContain reports whether key may have been added (false positives are
// possible; false negatives are not).
func (f *Filter) MayContain(key uint64) bool {
	h1, h2 := hash1(key), hash2(key)
	if f[(h1>>6)%Words]&(1<<(h1&63)) == 0 {
		return false
	}
	return f[(h2>>6)%Words]&(1<<(h2&63)) != 0
}

// Intersects reports whether the two filters share any set bit. Two
// transactions whose filters do not intersect are guaranteed independent.
func (f *Filter) Intersects(g *Filter) bool {
	for i := range f {
		if f[i]&g[i] != 0 {
			return true
		}
	}
	return false
}

// Union ors g into f.
func (f *Filter) Union(g *Filter) {
	for i := range f {
		f[i] |= g[i]
	}
}

// Clear empties the filter.
func (f *Filter) Clear() {
	*f = Filter{}
}

// Empty reports whether no key has been added.
func (f *Filter) Empty() bool {
	for _, w := range f {
		if w != 0 {
			return false
		}
	}
	return true
}

// PopCount returns the number of set bits, a cheap density measure used by
// adaptive policies and tests.
func (f *Filter) PopCount() int {
	n := 0
	for _, w := range f {
		n += bits.OnesCount64(w)
	}
	return n
}
