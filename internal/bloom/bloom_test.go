package bloom

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := func(keys []uint64, probe uint64) bool {
		var fl Filter
		for _, k := range keys {
			fl.Add(k)
		}
		for _, k := range keys {
			if !fl.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyFilter(t *testing.T) {
	var f Filter
	if !f.Empty() {
		t.Fatal("fresh filter should be empty")
	}
	if f.MayContain(42) {
		t.Fatal("empty filter must not contain anything")
	}
	var g Filter
	g.Add(1)
	if f.Intersects(&g) {
		t.Fatal("empty filter intersects nothing")
	}
	g.Clear()
	if !g.Empty() {
		t.Fatal("Clear should empty the filter")
	}
}

func TestIntersectsIffSharedBits(t *testing.T) {
	var a, b Filter
	a.Add(1)
	a.Add(2)
	b.Add(3)
	// Disjoint keys usually (not always) give disjoint filters; assert only
	// the guaranteed direction: a shared key forces intersection.
	b.Add(2)
	if !a.Intersects(&b) {
		t.Fatal("filters sharing key 2 must intersect")
	}
	if !b.Intersects(&a) {
		t.Fatal("Intersects must be symmetric")
	}
}

func TestUnion(t *testing.T) {
	var a, b Filter
	a.Add(1)
	b.Add(2)
	a.Union(&b)
	if !a.MayContain(1) || !a.MayContain(2) {
		t.Fatal("union must contain both sides' keys")
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	var f Filter
	const inserted = 64
	for i := 0; i < inserted; i++ {
		f.Add(rng.Uint64())
	}
	hits := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if f.MayContain(rng.Uint64()) {
			hits++
		}
	}
	// 64 keys × 2 probes over 1024 bits: expected fp rate ≈ (128/1024)² ≈ 1.5%.
	if rate := float64(hits) / probes; rate > 0.10 {
		t.Fatalf("false positive rate %.3f too high for 64 keys", rate)
	}
}

func TestPopCount(t *testing.T) {
	var f Filter
	if f.PopCount() != 0 {
		t.Fatal("empty filter has zero bits")
	}
	f.Add(1)
	n := f.PopCount()
	if n != 1 && n != 2 {
		t.Fatalf("one key sets 1 or 2 bits, got %d", n)
	}
}
