package mem

import (
	"sync"
	"testing"
)

func TestCellIDsUnique(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		c := NewCell(uint64(i))
		if c.ID() == 0 {
			t.Fatal("cell id must be non-zero")
		}
		if seen[c.ID()] {
			t.Fatalf("duplicate cell id %d", c.ID())
		}
		seen[c.ID()] = true
		if c.Load() != uint64(i) {
			t.Fatalf("Load = %d, want %d", c.Load(), i)
		}
	}
}

func TestArenaAlloc(t *testing.T) {
	a := NewArena(10)
	if a.Cap() != 10 || a.Len() != 0 {
		t.Fatalf("fresh arena: cap=%d len=%d", a.Cap(), a.Len())
	}
	first := a.Alloc(3)
	second := a.Alloc(2)
	if second != first+3 {
		t.Fatalf("allocations not consecutive: %d then %d", first, second)
	}
	if a.Len() != 5 {
		t.Fatalf("Len = %d, want 5", a.Len())
	}
	c := a.Cell(first + 1)
	c.Store(42)
	if a.Cell(first+1).Load() != 42 {
		t.Fatal("cell mutation lost")
	}
	if a.Cell(first).ID() == a.Cell(second).ID() {
		t.Fatal("arena cells must have distinct ids")
	}
}

func TestArenaExhaustionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("over-allocation should panic")
		}
	}()
	a := NewArena(4)
	a.Alloc(5)
}

func TestArenaConcurrentAlloc(t *testing.T) {
	a := NewArena(8000)
	const workers = 8
	const each = 100
	var mu sync.Mutex
	seen := map[uint64]bool{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				base := a.Alloc(10)
				mu.Lock()
				for k := base; k < base+10; k++ {
					if seen[k] {
						t.Errorf("cell %d allocated twice", k)
					}
					seen[k] = true
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != workers*each*10 {
		t.Fatalf("allocated %d distinct cells, want %d", len(seen), workers*each*10)
	}
}
