// Package epoch implements epoch-based reclamation (EBR) for lock-free and
// optimistically traversed data structures: retired nodes are recycled into
// object pools only after every thread that could still hold a reference has
// moved on, replacing the allocate-and-let-GC-sweep pattern on the hot path.
//
// The scheme is the classic three-epoch design (Fraser 2004). A global epoch
// counter advances only when every pinned guard has observed the current
// value; a node retired in epoch e is handed back to its pool when the
// global epoch reaches e+2, by which time every guard that was active when
// the node was unlinked has exited. Unlike hazard pointers, readers pay only
// two uncontended atomic stores per critical region (pin and unpin) and
// never per-node bookkeeping — the right trade for OTB's unmonitored
// traversals, which visit hundreds of nodes per operation.
//
// Usage:
//
//	g := epoch.Default.Enter()   // pin: traversed nodes stay alive
//	... traverse, unlink nodes, g.Retire(n, freeFn) ...
//	g.Exit()                     // unpin: flush retirements
//
// Guards are pooled; Enter/Exit on the steady state perform no allocation.
package epoch

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/spin"
)

// retired is one node awaiting reclamation: the value and the function that
// returns it to its owner's pool. free must be a top-level function (method
// values and closures allocate at the Retire call site).
type retired struct {
	v    any
	free func(any)
}

// slot is one guard's padded epoch announcement: 0 when idle, the pinned
// epoch otherwise. Slots live forever (they are recycled through a freelist
// when their guard is collected), so the advance scan may visit slots whose
// guard is long gone — those read 0 and do not block progress.
type slot struct {
	e atomic.Uint64
	_ [spin.CacheLineSize - 8]byte
}

// Manager is an independent reclamation domain. Structures sharing nodes
// must share a Manager; unrelated structures may use separate managers (or
// the package-level Default).
type Manager struct {
	epoch atomic.Uint64 // current global epoch, starts at 1

	mu      sync.Mutex
	slots   []*slot // every announcement slot ever registered
	free    []*slot // slots whose guards were collected, for reuse
	buckets [3]struct {
		items []retired // retirements tagged with epoch ≡ index (mod 3)
	}
	reclaimed atomic.Uint64 // lifetime count of nodes handed back to pools

	pool sync.Pool // *Guard
}

// NewManager creates a reclamation domain.
func NewManager() *Manager {
	m := &Manager{}
	m.epoch.Store(1)
	m.pool.New = func() any { return m.newGuard() }
	return m
}

// Default is the shared reclamation domain used by the OTB and concurrent
// structures in this repository.
var Default = NewManager()

// Guard is one pinned critical region. A Guard is owned by a single
// goroutine between Enter and Exit and must not be shared.
type Guard struct {
	m     *Manager
	slot  *slot
	batch []retired // retirements made under this pin, flushed on Exit
}

// newGuard allocates a guard with a registered announcement slot, reusing a
// slot whose previous guard was dropped by the pool if one is available. The
// finalizer returns the slot to the freelist when the pool discards the
// guard during a GC cycle, so slot registrations do not grow without bound.
func (m *Manager) newGuard() *Guard {
	m.mu.Lock()
	var s *slot
	if n := len(m.free); n > 0 {
		s = m.free[n-1]
		m.free = m.free[:n-1]
	} else {
		s = new(slot)
		m.slots = append(m.slots, s)
	}
	m.mu.Unlock()
	g := &Guard{m: m, slot: s}
	runtime.SetFinalizer(g, func(g *Guard) {
		g.m.mu.Lock()
		g.m.free = append(g.m.free, g.slot)
		g.m.mu.Unlock()
	})
	return g
}

// Enter pins the calling goroutine to the current epoch and returns the
// guard. Until Exit, no node retired during the pin (by anyone) is recycled,
// so references obtained from the shared structure stay valid.
func (m *Manager) Enter() *Guard {
	g := m.pool.Get().(*Guard)
	for {
		e := m.epoch.Load()
		g.slot.e.Store(e)
		// Re-check: if the global epoch moved between the load and the
		// announcement, the advancing thread may not have seen our pin;
		// re-announce at the new epoch. Both operations are sequentially
		// consistent, so once the re-check passes, any later advance scan
		// observes the announcement.
		if m.epoch.Load() == e {
			return g
		}
	}
}

// Retire schedules v for recycling once no pinned guard can still hold a
// reference. free is called exactly once, after two epoch advances; it must
// be a top-level function (not a closure) for Retire to stay allocation-free
// in the steady state.
func (g *Guard) Retire(v any, free func(any)) {
	g.batch = append(g.batch, retired{v: v, free: free})
}

// Exit unpins the guard, publishes its retirements tagged with the current
// epoch, attempts to advance the epoch, and returns the guard to the pool.
func (g *Guard) Exit() {
	if len(g.batch) > 0 {
		m := g.m
		m.mu.Lock()
		e := m.epoch.Load()
		b := &m.buckets[e%3]
		b.items = append(b.items, g.batch...)
		g.m.tryAdvanceLocked()
		m.mu.Unlock()
		clear(g.batch)
		g.batch = g.batch[:0]
	}
	g.slot.e.Store(0)
	g.m.pool.Put(g)
}

// tryAdvanceLocked advances the global epoch if every pinned guard has
// observed it, then recycles the retirements that two advances have proven
// unreachable. Caller holds m.mu.
func (m *Manager) tryAdvanceLocked() {
	e := m.epoch.Load()
	for _, s := range m.slots {
		if v := s.e.Load(); v != 0 && v < e {
			return // a guard is still pinned at an older epoch
		}
	}
	m.epoch.Store(e + 1)
	// The bucket now tagged (e+1)%3 holds retirements from epoch e-2: every
	// guard active at their retirement has since exited (it would otherwise
	// have blocked one of the two intervening advances). Recycle them.
	b := &m.buckets[(e+1)%3]
	for i := range b.items {
		b.items[i].free(b.items[i].v)
	}
	m.reclaimed.Add(uint64(len(b.items)))
	clear(b.items)
	b.items = b.items[:0]
}

// Advance attempts one epoch advance (recycling anything that became safe).
// Reclamation normally piggybacks on Exit; Advance lets idle periods and
// tests drain the limbo lists.
func (m *Manager) Advance() {
	m.mu.Lock()
	m.tryAdvanceLocked()
	m.mu.Unlock()
}

// Drain advances until all limbo buckets are empty. It only makes progress
// while no guard is pinned; tests call it after workers have stopped.
func (m *Manager) Drain() {
	for i := 0; i < 3; i++ {
		m.Advance()
	}
}

// Epoch returns the current global epoch (diagnostics and tests).
func (m *Manager) Epoch() uint64 { return m.epoch.Load() }

// Reclaimed returns the lifetime count of nodes recycled (diagnostics and
// tests).
func (m *Manager) Reclaimed() uint64 { return m.reclaimed.Load() }

// Pending returns the number of retirements awaiting reclamation
// (diagnostics and tests); it takes the manager lock.
func (m *Manager) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for i := range m.buckets {
		n += len(m.buckets[i].items)
	}
	return n
}
