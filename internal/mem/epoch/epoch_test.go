package epoch

import (
	"repro/internal/race"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/chaos/leak"
)

// testNode is a recyclable node with a free-count so tests can detect
// double-free and use-after-free.
type testNode struct {
	val   atomic.Uint64
	frees atomic.Int32
	live  atomic.Bool
}

func TestRetireReclaimsAfterTwoAdvances(t *testing.T) {
	m := NewManager()
	n := &testNode{}
	n.live.Store(true)
	free := func(v any) {
		nd := v.(*testNode)
		nd.live.Store(false)
		nd.frees.Add(1)
	}

	g := m.Enter()
	g.Retire(n, free)
	g.Exit()

	if n.frees.Load() != 0 {
		t.Fatal("node freed immediately at Exit")
	}
	m.Drain()
	if got := n.frees.Load(); got != 1 {
		t.Fatalf("frees = %d after Drain, want 1", got)
	}
	if m.Pending() != 0 {
		t.Fatalf("Pending() = %d after Drain, want 0", m.Pending())
	}
	if m.Reclaimed() != 1 {
		t.Fatalf("Reclaimed() = %d, want 1", m.Reclaimed())
	}
}

func TestPinnedGuardBlocksReclaim(t *testing.T) {
	m := NewManager()
	n := &testNode{}
	freed := make(chan struct{})
	free := func(v any) { close(freed) }

	reader := m.Enter() // pinned across the retirement

	g := m.Enter()
	g.Retire(n, free)
	g.Exit()

	// However often we try, the epoch cannot advance past the reader's pin,
	// so the node must stay in limbo.
	for i := 0; i < 10; i++ {
		m.Advance()
	}
	select {
	case <-freed:
		t.Fatal("node reclaimed while a guard was still pinned")
	default:
	}
	if m.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", m.Pending())
	}

	reader.Exit()
	m.Drain()
	select {
	case <-freed:
	default:
		t.Fatal("node not reclaimed after the pinned guard exited")
	}
}

// TestStressReclamation hammers a manager from many goroutines that pin,
// publish nodes through a tiny shared structure, unlink, retire, and verify
// that no node they can still reach has been freed. It runs under the
// goroutine-leak checker.
func TestStressReclamation(t *testing.T) {
	defer leak.Check(t)()

	const (
		workers = 8
		slots   = 16
	)
	iters := 20000
	if testing.Short() {
		iters = 4000
	}

	m := NewManager()
	var shared [slots]atomic.Pointer[testNode]
	for i := range shared {
		n := &testNode{}
		n.live.Store(true)
		shared[i].Store(n)
	}

	var retireCount atomic.Uint64
	free := func(v any) {
		nd := v.(*testNode)
		if !nd.live.CompareAndSwap(true, false) {
			t.Error("double free or free of never-live node")
		}
		nd.frees.Add(1)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*2654435761 + 1
			for i := 0; i < iters; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				idx := int(rng % slots)
				g := m.Enter()
				old := shared[idx].Load()
				// Reading through the pin: the node must not have been
				// recycled out from under us.
				if !old.live.Load() {
					t.Error("read a freed node under an active guard")
					g.Exit()
					return
				}
				old.val.Load()
				if rng%4 == 0 {
					// Replace and retire the old node.
					n := &testNode{}
					n.live.Store(true)
					if shared[idx].CompareAndSwap(old, n) {
						g.Retire(old, free)
						retireCount.Add(1)
					}
				}
				g.Exit()
			}
		}(w)
	}
	wg.Wait()
	m.Drain()

	if got, want := m.Reclaimed(), retireCount.Load(); got != want {
		t.Fatalf("Reclaimed() = %d, want %d (every retired node recycled after drain)", got, want)
	}
	if m.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", m.Pending())
	}
}

// TestEnterExitAllocFree checks the guard pool keeps the pin/unpin fast path
// allocation-free in the steady state.
func TestEnterExitAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("race-mode sync.Pool drops Puts at random; pooled paths cannot be allocation-free")
	}
	m := NewManager()
	// Warm the pool.
	for i := 0; i < 100; i++ {
		m.Enter().Exit()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		m.Enter().Exit()
	})
	if allocs > 0 {
		t.Fatalf("Enter/Exit allocates %.2f objects per pin, want 0", allocs)
	}
}
