// Package mem defines the transactional memory substrate: shared 64-bit
// words (Cells) that STM algorithms read and write, grouped into arenas with
// stable integer identities.
//
// Every Cell is an atomic word, so value-based validation (NOrec, RTC,
// RInval) is data-race-free in Go while preserving the algorithms'
// semantics. Cells carry an allocation id used (instead of their address)
// to index ownership-record tables and to feed bloom filters, avoiding any
// use of unsafe pointer arithmetic.
package mem

import "sync/atomic"

// Cell is one word of transactional memory. Create Cells with an Arena (or
// NewCell for standalone globals) so that they carry a unique id.
type Cell struct {
	id uint64
	v  atomic.Uint64
}

// nextID hands out globally unique cell ids, starting at 1 so that id 0 can
// mean "no cell".
var nextID atomic.Uint64

// NewCell allocates a standalone cell holding v.
func NewCell(v uint64) *Cell {
	c := &Cell{id: nextID.Add(1)}
	c.v.Store(v)
	return c
}

// ID returns the cell's unique allocation id.
func (c *Cell) ID() uint64 { return c.id }

// Load returns the cell's current value with atomic (acquire) semantics.
// STM algorithms wrap this with their validation protocol; direct use is
// only safe outside transactions (e.g. to inspect final state in tests).
func (c *Cell) Load() uint64 { return c.v.Load() }

// Store sets the cell's value with atomic (release) semantics. Only commit
// routines and non-transactional initialization should call this.
func (c *Cell) Store(v uint64) { c.v.Store(v) }

// Arena is a fixed-capacity pool of Cells with a lock-free bump allocator.
// STM data structures (internal/stmds) allocate their node fields from an
// arena; references between nodes are cell values holding node indexes, so
// no pointers cross the transactional boundary.
type Arena struct {
	cells []Cell
	next  atomic.Uint64
}

// NewArena creates an arena with capacity for n cells.
func NewArena(n int) *Arena {
	a := &Arena{cells: make([]Cell, n)}
	for i := range a.cells {
		a.cells[i].id = nextID.Add(1)
	}
	return a
}

// Alloc reserves n consecutive cells and returns the index of the first.
// It panics if the arena is exhausted: arenas are sized by the workload
// generator, so exhaustion is a harness bug, not a recoverable condition.
func (a *Arena) Alloc(n int) uint64 {
	base := a.next.Add(uint64(n)) - uint64(n)
	if base+uint64(n) > uint64(len(a.cells)) {
		panic("mem: arena exhausted")
	}
	return base
}

// Cell returns the cell at index i.
func (a *Arena) Cell(i uint64) *Cell { return &a.cells[i] }

// Len returns the number of cells allocated so far.
func (a *Arena) Len() int { return int(a.next.Load()) }

// Cap returns the arena capacity.
func (a *Arena) Cap() int { return len(a.cells) }
