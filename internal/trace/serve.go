package trace

import (
	"context"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"runtime/pprof"
	"time"

	"repro/internal/telemetry"
)

func init() {
	// Append the conflict attribution table to every telemetry.WriteTable
	// rendering (stmbench, reproduce, the bench figure drivers) whenever
	// the Default recorder has attributions to show.
	telemetry.RegisterSection(func(w io.Writer) {
		entries := Default.Conflicts(10)
		if len(entries) == 0 {
			return
		}
		fmt.Fprintln(w)
		writeConflictEntries(w, entries)
	})
}

// Do runs f under runtime/pprof labels naming the transactional runtime
// and the workload, so CPU profiles taken during a run split per algorithm
// and per workload. Labels are inherited by goroutines started inside f,
// which covers the bench harness's workers.
func Do(runtimeName, workload string, f func()) {
	pprof.Do(context.Background(),
		pprof.Labels("algorithm", runtimeName, "workload", workload),
		func(context.Context) { f() })
}

// Server is a running debug endpoint, as returned by Serve.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down, giving in-flight requests a short grace
// period (a profile download cut off mid-stream is a corrupt profile)
// before dropping whatever is left.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

// Shutdown stops the endpoint gracefully: the listener closes immediately,
// in-flight requests get until ctx to finish, and anything still running
// past that is dropped outright — Shutdown never returns with the port or
// connections still held. It returns ctx's error when the grace period
// expired, nil on a clean drain.
func (s *Server) Shutdown(ctx context.Context) error {
	if err := s.srv.Shutdown(ctx); err != nil {
		// Graceful drain timed out (or ctx was already dead): fall back to
		// dropping the stragglers so shutdown still completes.
		_ = s.srv.Close()
		return err
	}
	return nil
}

// NewMux builds the debug mux for a recorder:
//
//	/debug/trace           human-readable snapshot: telemetry table,
//	                       conflict table, last aborts, recorder state
//	/debug/trace/perfetto  flight-recorder dump as trace-event JSON
//	                       (load in ui.perfetto.dev)
//	/debug/trace/conflicts conflict attribution table (text)
//	/debug/trace/aborts    last-N-aborts dump (text)
//	/metrics               OpenMetrics text exposition (Prometheus-scrapable)
//	/debug/vars            expvar (includes telemetry's "transactions")
//	/debug/pprof/...       the standard pprof handlers
func NewMux(r *Recorder) *http.ServeMux {
	telemetry.Publish()
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "flight recorder: enabled=%v sample=1/%d events=%d\n\n",
			r.Enabled(), r.SampleEvery(), len(r.Snapshot()))
		telemetry.WriteTable(w, telemetry.Default.Snapshot())
		fmt.Fprintln(w)
		r.WriteConflicts(w, 10)
		fmt.Fprintln(w)
		r.WriteAborts(w, 20)
	})
	mux.HandleFunc("/debug/trace/perfetto", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := r.WritePerfetto(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/trace/conflicts", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.WriteConflicts(w, 50)
	})
	mux.HandleFunc("/debug/trace/aborts", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.WriteAborts(w, abortLogCap)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", telemetry.OpenMetricsContentType)
		if err := telemetry.WriteOpenMetrics(w, telemetry.Default.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	return mux
}

// Serve starts the live debug endpoint for the Default recorder on addr
// (e.g. "localhost:6060", or ":0" to pick a port — read it back with
// Addr). The caller owns the returned Server and should Close it on
// shutdown. Serving does not enable the recorder; arm it separately with
// Enable so the endpoint can also inspect a quiesced process.
func Serve(addr string) (*Server, error) {
	return ServeRecorder(addr, Default)
}

// ServeRecorder is Serve for a specific recorder instance.
func ServeRecorder(addr string, r *Recorder) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewMux(r), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}
