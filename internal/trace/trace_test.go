package trace

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/abort"
)

// fakeClock returns a deterministic recorder clock ticking by step.
func fakeClock(step int64) func() int64 {
	var t atomic.Int64
	return func() int64 { return t.Add(step) }
}

func newTestRecorder(t *testing.T, nrings, slots int) *Recorder {
	t.Helper()
	r := NewRecorderSized(nrings, slots)
	r.SetClock(fakeClock(10))
	return r
}

func TestDisabledRecordsNothing(t *testing.T) {
	r := newTestRecorder(t, 1, 64)
	l := r.Source("NOrec").Local()
	l.TxStart()
	l.AttemptStart()
	l.Op(7)
	l.LockBusy(7)
	l.Abort(abort.LockBusy)
	l.TxEnd()
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("disabled recorder captured %d events", len(got))
	}
	if got := r.Conflicts(0); len(got) != 0 {
		t.Fatalf("disabled recorder attributed %d conflicts", len(got))
	}
	if got := r.LastAborts(10); len(got) != 0 {
		t.Fatalf("disabled recorder logged %d aborts", len(got))
	}
}

func TestNilSafety(t *testing.T) {
	var s *Source
	if s.Name() != "" {
		t.Fatal("nil source name")
	}
	l := s.Local()
	if l != nil {
		t.Fatal("nil source must hand out nil locals")
	}
	l.TxStart()
	l.AttemptStart()
	l.Op(1)
	l.Lock(1)
	l.Unlock(1)
	l.Validated()
	l.CommitBegin()
	l.CommitEnd()
	l.LockBusy(1)
	l.ValidateFail(1)
	l.NoteKey(1)
	l.Abort(abort.Conflict)
	l.HWAttempt(1)
	l.Fallback()
	l.Escalated()
	l.QueueWait(l.Now())
	l.Execute(0)
	l.TxEnd()
	var r *Recorder
	r.SetEnabled(true)
	r.SetSampleEvery(4)
	if r.Enabled() || r.Source("x") != nil || r.Snapshot() != nil {
		t.Fatal("nil recorder must be inert")
	}
	r.Reset()
}

func TestLifecycleEvents(t *testing.T) {
	r := newTestRecorder(t, 1, 256)
	r.SetEnabled(true)
	l := r.Source("OTB-list").Local()

	l.TxStart()
	l.AttemptStart()
	l.Op(41)
	l.LockBusy(41)
	l.Abort(abort.LockBusy)
	l.AttemptStart() // emits the CM pause for the gap after the abort
	l.Op(41)
	l.Lock(41)
	l.Validated()
	l.CommitBegin()
	l.CommitEnd()
	l.Unlock(41)
	l.TxEnd()

	evs := r.Snapshot()
	var kinds []string
	for _, e := range evs {
		kinds = append(kinds, e.Kind.String())
		if e.Runtime != "OTB-list" {
			t.Fatalf("event %v has runtime %q", e.Kind, e.Runtime)
		}
		if e.Span == 0 {
			t.Fatalf("event %v missing span", e.Kind)
		}
	}
	want := "tx-start attempt read lock-busy abort cm-pause attempt read lock validate commit commit-end unlock tx-end"
	if got := strings.Join(kinds, " "); got != want {
		t.Fatalf("event sequence\n got: %s\nwant: %s", got, want)
	}

	// The abort carries the attributed key and the attempt's lifetime.
	for _, e := range evs {
		switch e.Kind {
		case EvAbort:
			if e.Key != 41 || e.Reason != abort.LockBusy || e.Arg == 0 {
				t.Fatalf("abort event = %+v", e)
			}
			if e.Attempt != 1 {
				t.Fatalf("abort on attempt %d, want 1", e.Attempt)
			}
		case EvPause:
			if e.Arg == 0 {
				t.Fatal("cm-pause without duration")
			}
		}
	}

	// Monotone publication order.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("snapshot out of order at %d", i)
		}
	}
}

func TestSampling(t *testing.T) {
	r := newTestRecorder(t, 1, 1024)
	r.SetEnabled(true)
	r.SetSampleEvery(4)
	l := r.Source("NOrec").Local()
	sampled := 0
	for i := 0; i < 100; i++ {
		l.TxStart()
		if l.span != 0 {
			sampled++
		}
		l.AttemptStart()
		l.TxEnd()
	}
	if sampled != 25 {
		t.Fatalf("sampled %d of 100 transactions at 1/4", sampled)
	}
	var starts int
	for _, e := range r.Snapshot() {
		if e.Kind == EvTxStart {
			starts++
		}
	}
	if starts != 25 {
		t.Fatalf("recorded %d tx-starts, want 25", starts)
	}
}

// TestUnsampledAttribution: conflict attribution covers every transaction
// while the recorder is enabled, not just sampled ones.
func TestUnsampledAttribution(t *testing.T) {
	r := newTestRecorder(t, 1, 64)
	r.SetEnabled(true)
	r.SetSampleEvery(1 << 30) // effectively sample nothing
	l := r.Source("TL2").Local()
	for i := 0; i < 10; i++ {
		l.TxStart()
		l.ValidateFail(99)
		l.Abort(abort.Conflict)
		l.TxEnd()
	}
	entries := r.Conflicts(0)
	if len(entries) != 1 || entries[0].Key != 99 || entries[0].Aborts != 10 {
		t.Fatalf("conflict entries = %+v", entries)
	}
	if entries[0].WaitNS != 0 {
		t.Fatal("unsampled aborts must not invent wait time")
	}
}

func TestConflictTopK(t *testing.T) {
	r := newTestRecorder(t, 1, 64)
	r.SetEnabled(true)
	l := r.Source("OTB-list").Local()
	charge := func(key uint64, n int) {
		for i := 0; i < n; i++ {
			l.TxStart()
			l.AttemptStart() // stamps the attempt so the abort has a lifetime
			l.LockBusy(key)
			l.Abort(abort.LockBusy)
			l.TxEnd()
		}
	}
	charge(5, 30)
	charge(9, 10)
	charge(2, 20)
	top := r.Conflicts(2)
	if len(top) != 2 || top[0].Key != 5 || top[0].Aborts != 30 || top[1].Key != 2 {
		t.Fatalf("top-2 = %+v", top)
	}
	if top[0].WaitNS == 0 {
		t.Fatal("sampled aborts must accumulate wait time")
	}
	if all := r.Conflicts(0); len(all) != 3 {
		t.Fatalf("full table has %d entries, want 3", len(all))
	}
}

func TestAbortLog(t *testing.T) {
	r := newTestRecorder(t, 1, 4096)
	r.SetEnabled(true)
	l := r.Source("RInval").Local()
	for i := 0; i < abortLogCap+10; i++ {
		l.TxStart()
		l.NoteKey(uint64(i + 1))
		l.Abort(abort.Invalidated)
		l.TxEnd()
	}
	recs := r.LastAborts(5)
	if len(recs) != 5 {
		t.Fatalf("got %d abort records", len(recs))
	}
	// Oldest-first tail of the full sequence.
	for i, rec := range recs {
		wantKey := uint64(abortLogCap + 10 - 4 + i)
		if rec.Key != wantKey || rec.Runtime != "RInval" || rec.Reason != abort.Invalidated {
			t.Fatalf("record %d = %+v, want key %d", i, rec, wantKey)
		}
	}
	// Asking for more than the cap is clamped, not wrapped.
	if got := r.LastAborts(abortLogCap * 2); len(got) != abortLogCap {
		t.Fatalf("over-asking returned %d records", len(got))
	}
	var sb strings.Builder
	r.WriteAborts(&sb, 3)
	if !strings.Contains(sb.String(), "invalidated") {
		t.Fatalf("abort dump missing reason:\n%s", sb.String())
	}
}

// TestRingWrap: a ring smaller than the history keeps only the newest events
// and every surviving slot decodes cleanly.
func TestRingWrap(t *testing.T) {
	r := newTestRecorder(t, 1, 8)
	r.SetEnabled(true)
	l := r.Source("NOrec").Local()
	for i := 0; i < 100; i++ {
		l.TxStart()
		l.TxEnd()
	}
	evs := r.Snapshot()
	if len(evs) != 8 {
		t.Fatalf("wrapped ring holds %d events, want 8", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("wrapped ring lost interior events: %d -> %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	if evs[len(evs)-1].Seq != 200 {
		t.Fatalf("newest event has seq %d, want 200", evs[len(evs)-1].Seq)
	}
}

// TestSnapshotUnderLoad runs writers concurrently with snapshot readers and
// checks every decoded event is well-formed (the seqlock skips torn slots,
// it must never surface a half-written one).
func TestSnapshotUnderLoad(t *testing.T) {
	r := NewRecorderSized(4, 64) // small rings force constant wrapping
	r.SetClock(fakeClock(1))
	r.SetEnabled(true)
	src := r.Source("OTB-skip")
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			l := src.Local()
			for i := 0; i < 50 || !stop.Load(); i++ {
				l.TxStart()
				l.AttemptStart()
				l.Op(id + 1)
				l.LockBusy(id + 1)
				l.Abort(abort.LockBusy)
				l.AttemptStart()
				l.CommitBegin()
				l.CommitEnd()
				l.TxEnd()
			}
		}(uint64(w))
	}
	for i := 0; i < 200; i++ {
		for _, e := range r.Snapshot() {
			if e.Kind >= numKinds {
				t.Errorf("decoded torn kind %d", e.Kind)
			}
			if e.Runtime != "OTB-skip" {
				t.Errorf("decoded torn source %q", e.Runtime)
			}
			if e.Kind == EvAbort && (e.Key < 1 || e.Key > 4) {
				t.Errorf("decoded torn key %d", e.Key)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if entries := r.Conflicts(0); len(entries) != 4 {
		t.Fatalf("conflict table has %d keys, want 4", len(entries))
	}
}

func TestReset(t *testing.T) {
	r := newTestRecorder(t, 2, 64)
	r.SetEnabled(true)
	l := r.Source("TML").Local()
	l.TxStart()
	l.NoteKey(3)
	l.Abort(abort.Conflict)
	l.TxEnd()
	if len(r.Snapshot()) == 0 || len(r.Conflicts(0)) == 0 || len(r.LastAborts(1)) == 0 {
		t.Fatal("setup recorded nothing")
	}
	r.Reset()
	if len(r.Snapshot()) != 0 || len(r.Conflicts(0)) != 0 || len(r.LastAborts(1)) != 0 {
		t.Fatal("reset left residue")
	}
	// Spans keep advancing across Reset so windows never alias.
	l.TxStart()
	if l.span != 2 {
		t.Fatalf("span after reset = %d, want 2", l.span)
	}
	l.TxEnd()
}

func TestConflictTableOverflow(t *testing.T) {
	var tbl conflictTable
	for k := uint64(1); k <= conflictSlots*2; k++ {
		tbl.note(k, 0)
	}
	if tbl.overflow.Load() == 0 {
		t.Fatal("past-capacity attribution must count overflow")
	}
}

func TestServeEndpoints(t *testing.T) {
	r := newTestRecorder(t, 1, 64)
	r.SetEnabled(true)
	l := r.Source("OTB-list").Local()
	l.TxStart()
	l.AttemptStart()
	l.LockBusy(17)
	l.Abort(abort.LockBusy)
	l.TxEnd()

	srv, err := ServeRecorder("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(b)
	}

	if body := get("/debug/trace"); !strings.Contains(body, "flight recorder: enabled=true") {
		t.Fatalf("/debug/trace:\n%s", body)
	}
	if body := get("/debug/trace/conflicts"); !strings.Contains(body, "17") {
		t.Fatalf("/debug/trace/conflicts missing hot key:\n%s", body)
	}
	if body := get("/debug/trace/aborts"); !strings.Contains(body, "lock-busy") {
		t.Fatalf("/debug/trace/aborts missing reason:\n%s", body)
	}
	if body := get("/debug/trace/perfetto"); !strings.Contains(body, `"traceEvents"`) {
		t.Fatalf("/debug/trace/perfetto not trace-event JSON:\n%.200s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "transactions") {
		t.Fatalf("/debug/vars missing telemetry:\n%.200s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index:\n%.200s", body)
	}
}

// TestWriteTableSection: the Default recorder's conflict table rides along
// with telemetry.WriteTable output once it has attributions.
func TestWriteTableSection(t *testing.T) {
	Default.Reset()
	defer func() {
		Disable()
		Default.Reset()
	}()
	Enable(1)
	l := S("section-test").Local()
	l.TxStart()
	l.LockBusy(123)
	l.Abort(abort.LockBusy)
	l.TxEnd()

	var sb strings.Builder
	writeConflictEntries(&sb, Default.Conflicts(10))
	if !strings.Contains(sb.String(), "123") || !strings.Contains(sb.String(), "section-test") {
		t.Fatalf("conflict section:\n%s", sb.String())
	}
}

func TestQueueWaitExecute(t *testing.T) {
	r := newTestRecorder(t, 1, 64)
	r.SetEnabled(true)
	l := r.Source("RTC").Local()
	l.TxStart()
	start := l.Now()
	if start == 0 {
		t.Fatal("Now returned zero for a sampled span")
	}
	l.QueueWait(start)
	l.Execute(l.Now())
	l.TxEnd()
	var sawWait, sawExec bool
	for _, e := range r.Snapshot() {
		switch e.Kind {
		case EvQueueWait:
			sawWait = e.Arg > 0
		case EvExecute:
			sawExec = e.Arg > 0
		}
	}
	if !sawWait || !sawExec {
		t.Fatalf("queue-wait=%v execute=%v", sawWait, sawExec)
	}
}
