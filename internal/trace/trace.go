// Package trace is the transaction flight recorder: a low-overhead, sampled
// event tracer that records *where* time goes inside a transaction — the
// optimistic traversal, commit-time locking and validation, semantic aborts,
// contention-manager pauses, serial-mode escalations and hardware/software
// fallbacks — and *which* key or node each conflict is attributable to.
//
// It complements package telemetry: telemetry aggregates (how often does
// NOrec abort?), the flight recorder attributes (which key, which phase,
// which attempt). Together they are the observability layer the tuning PRs
// build on.
//
// Design constraints, in the same order as telemetry's:
//
//  1. Near-zero cost when disabled. Every runtime is wired unconditionally,
//     so the begin-transaction fast path is exactly one atomic load of the
//     recorder's enabled flag, and every other recording call is one
//     predictable branch on a descriptor-local field (the sampled-span id).
//     Nil *Source and nil *Local are valid no-op recorders.
//  2. No allocation on the hot path. Sampled transactions write fixed-size
//     event slots into per-P ring buffers (one ring per GOMAXPROCS slot,
//     assigned to descriptors round-robin, so a ring is effectively
//     goroutine-local while a transaction runs). A slot is published with a
//     per-slot sequence word, seqlock-style, so readers — and crash-recovery
//     tests — can always tell a torn or in-flight slot from a valid one.
//  3. Readers never stop writers. Snapshot walks the rings with atomic
//     loads and skips anything mid-write; the conflict table is a fixed
//     open-addressed array of atomic counters.
//
// On top of the recorder sit four consumers:
//
//   - the conflict attribution table (per-runtime top-K contended keys with
//     abort counts and sampled wait-time sums), also appended to
//     telemetry.WriteTable output as a "hot keys" section;
//   - the Perfetto / Chrome trace-event exporter (WritePerfetto): one
//     process per runtime, one track per descriptor, one slice per attempt
//     phase — load the JSON in ui.perfetto.dev;
//   - the last-N-aborts dump (WriteAborts) for failure triage;
//   - the live debug endpoint (Serve): snapshot, conflict table, Perfetto
//     dump, expvar and pprof on one mux.
//
// Typical wiring (see internal/stm/norec for the real thing):
//
//	src := trace.S("NOrec")            // source from the Default recorder
//	tr  := src.Local()                 // one per pooled tx descriptor
//	tr.TxStart()                       // the one atomic check when disabled
//	... tr.AttemptStart / tr.ValidateFail(key) / tr.Abort(reason) ...
//	tr.TxEnd()
package trace

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/abort"
)

// Kind is the type of one recorded event. The taxonomy is shared by every
// runtime so traces compose across algorithms.
type Kind uint8

// Event kinds, roughly in transaction-lifecycle order.
const (
	// EvTxStart opens a sampled transaction (one per Atomic call).
	EvTxStart Kind = iota
	// EvAttemptStart opens one optimistic attempt; Attempt carries the
	// 1-based attempt ordinal.
	EvAttemptStart
	// EvRead is a read/traversal operation; Key is the searched key (OTB)
	// or the cell id (memory STMs).
	EvRead
	// EvLock is a semantic or ownership lock acquisition; Key names the
	// locked node or orec.
	EvLock
	// EvLockBusy is a lock found busy (the acquisition failed and the
	// attempt will abort with the lock-busy or timeout reason).
	EvLockBusy
	// EvUnlock is a lock release.
	EvUnlock
	// EvValidate is a whole-read-set validation that passed.
	EvValidate
	// EvValidateFail is a validation failure; Key names the failing entry.
	EvValidateFail
	// EvPause is the contention-manager pause between an abort and the next
	// attempt; Arg is the pause duration in nanoseconds.
	EvPause
	// EvFallback marks a fall-through to a slow path (HTM software
	// fallback).
	EvFallback
	// EvEscalate marks serial-mode escalation after an exhausted retry
	// budget.
	EvEscalate
	// EvCommitBegin opens the commit phase (locking + validation +
	// publication).
	EvCommitBegin
	// EvCommitEnd closes a successful commit phase.
	EvCommitEnd
	// EvAbort records an aborted attempt: Reason classifies it, Key is the
	// attributed conflict key (0 = unattributed), Arg is the attempt's
	// lifetime in nanoseconds.
	EvAbort
	// EvTxEnd closes a sampled transaction.
	EvTxEnd
	// EvQueueWait is time a committing client spent waiting for a server
	// verdict (RTC/RInval); Arg is the wait in nanoseconds.
	EvQueueWait
	// EvExecute is server-side commit execution time (RTC/RInval); Arg is
	// the duration in nanoseconds.
	EvExecute
	// EvHWAttempt opens one emulated-hardware attempt (hybrid HTM).
	EvHWAttempt
	// EvReqStart opens a networked-request span under a wire-propagated
	// trace id (the Span field); Arg carries the parent span id.
	EvReqStart
	// EvStage is one completed request lifecycle stage; Key is the Stage
	// code, Arg the duration in nanoseconds (the event timestamp is the
	// stage's end).
	EvStage
	// EvResend marks a same-sequence resend of a request after a
	// connection failure (the exactly-once retry path); Arg is the resend
	// ordinal when known.
	EvResend
	// EvReqEnd closes a networked-request span.
	EvReqEnd

	numKinds
)

// String returns the kind's name as used in exports.
func (k Kind) String() string {
	names := [...]string{
		EvTxStart: "tx-start", EvAttemptStart: "attempt", EvRead: "read",
		EvLock: "lock", EvLockBusy: "lock-busy", EvUnlock: "unlock",
		EvValidate: "validate", EvValidateFail: "validate-fail",
		EvPause: "cm-pause", EvFallback: "fallback", EvEscalate: "escalate",
		EvCommitBegin: "commit", EvCommitEnd: "commit-end", EvAbort: "abort",
		EvTxEnd: "tx-end", EvQueueWait: "queue-wait", EvExecute: "execute",
		EvHWAttempt: "hw-attempt", EvReqStart: "req-start", EvStage: "stage",
		EvResend: "resend", EvReqEnd: "req-end",
	}
	if int(k) < len(names) && names[k] != "" {
		return names[k]
	}
	return "unknown"
}

// Stage identifies one phase of a networked request's lifecycle, shared by
// the txnet client and server so a cross-process trace composes into one
// timeline. Stage codes travel in EvStage events (Key field) and in the wire
// response's stage block.
type Stage uint8

// Request lifecycle stages, in causal order.
const (
	// StageQueue is client-side encode + socket write.
	StageQueue Stage = iota
	// StageNet is wire time: the client's round trip minus the server-side
	// stages it learned from the response.
	StageNet
	// StageDispatch is server-side frame receipt to session lock held.
	StageDispatch
	// StageAdmission is the admission-slot wait (including a shed verdict).
	StageAdmission
	// StageExecute is store execution of the transaction body.
	StageExecute
	// StageWALAppend is the write-ahead-log append (durable servers).
	StageWALAppend
	// StageFsync is the group-commit fsync wait (durable servers).
	StageFsync
	// StageAck is response encode + socket write back to the client.
	StageAck

	// NumStages sizes per-request stage arrays.
	NumStages
)

// String returns the stage's name as used in exports and metric labels.
func (s Stage) String() string {
	names := [NumStages]string{
		StageQueue: "queue", StageNet: "net", StageDispatch: "dispatch",
		StageAdmission: "admission", StageExecute: "execute",
		StageWALAppend: "wal-append", StageFsync: "fsync", StageAck: "ack",
	}
	if s < NumStages {
		return names[s]
	}
	return "unknown"
}

// Event is one decoded flight-recorder event, as returned by Snapshot.
type Event struct {
	// Seq is the global publication order (monotone across all rings).
	Seq uint64
	// TS is the recorder-clock timestamp in nanoseconds.
	TS int64
	// Span identifies the sampled transaction the event belongs to.
	Span uint64
	// Track identifies the recording descriptor (the export's thread lane).
	Track uint16
	// Runtime is the owning source's (algorithm) name.
	Runtime string
	// Kind is the event type.
	Kind Kind
	// Reason classifies EvAbort events.
	Reason abort.Reason
	// Attempt is the 1-based attempt ordinal the event occurred in.
	Attempt uint16
	// Key is the involved key/node/cell id (0 = none).
	Key uint64
	// Arg is the kind-specific argument (durations in nanoseconds).
	Arg uint64
}

// Recorder is a flight-recorder instance: a set of per-P event rings, the
// named sources recording into them, the conflict attribution table, and
// the last-N-aborts log. The zero value is not usable; call NewRecorder.
type Recorder struct {
	on      atomic.Bool
	every   atomic.Uint64 // sample 1 in every transactions (min 1)
	txCtr   atomic.Uint64 // sampling counter
	spanSeq atomic.Uint64 // sampled-transaction ids
	evSeq   atomic.Uint64 // global event publication order
	tracks  atomic.Uint32 // Local (track) id assignment
	nextRng atomic.Uint32 // round-robin ring assignment

	clock atomic.Pointer[func() int64]

	rings []ring

	mu      sync.Mutex
	sources map[string]*Source
	names   []string // source name by id

	aborts abortLog
}

// defaultRingSlots is the per-ring slot count: deep enough to hold several
// milliseconds of a contended run, small enough (64 B/slot) that the whole
// recorder stays around a megabyte.
const defaultRingSlots = 2048

// NewRecorder creates a disabled recorder with one ring per GOMAXPROCS
// slot.
func NewRecorder() *Recorder {
	return NewRecorderSized(runtime.GOMAXPROCS(0), defaultRingSlots)
}

// NewRecorderSized creates a disabled recorder with nrings rings of the
// given slot count (rounded up to a power of two). Tests use small sizes to
// exercise wrap-around.
func NewRecorderSized(nrings, slots int) *Recorder {
	if nrings < 1 {
		nrings = 1
	}
	size := 1
	for size < slots {
		size *= 2
	}
	r := &Recorder{
		rings:   make([]ring, nrings),
		sources: make(map[string]*Source),
	}
	for i := range r.rings {
		r.rings[i].slots = make([]slot, size)
		r.rings[i].mask = uint64(size - 1)
	}
	r.every.Store(1)
	now := func() int64 { return time.Now().UnixNano() }
	r.clock.Store(&now)
	return r
}

// SetClock replaces the recorder's timestamp source (tests use a
// deterministic counter so exports are golden-testable). Safe to call
// concurrently, but intended for setup.
func (r *Recorder) SetClock(f func() int64) {
	if f != nil {
		r.clock.Store(&f)
	}
}

func (r *Recorder) now() int64 { return (*r.clock.Load())() }

// SetEnabled turns recording on or off. Disabled is the production default:
// every wired call site reduces to one atomic load (TxStart) or one
// predictable branch (everything else).
func (r *Recorder) SetEnabled(on bool) {
	if r != nil {
		r.on.Store(on)
	}
}

// Enabled reports whether the recorder is armed.
func (r *Recorder) Enabled() bool { return r != nil && r.on.Load() }

// SetSampleEvery makes the recorder trace one in every n transactions
// (n <= 1 traces every transaction). Sampling keeps the enabled overhead
// proportional: unsampled transactions pay one counter increment.
func (r *Recorder) SetSampleEvery(n uint64) {
	if r == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	r.every.Store(n)
}

// SampleEvery returns the current sampling divisor.
func (r *Recorder) SampleEvery() uint64 {
	if r == nil {
		return 1
	}
	return r.every.Load()
}

// Source returns the recorder's source with the given name (one per
// algorithm), creating it on first use. A nil recorder returns a nil
// (no-op) source.
func (r *Recorder) Source(name string) *Source {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sources[name]
	if !ok {
		s = &Source{r: r, id: uint16(len(r.names)), name: name}
		r.sources[name] = s
		r.names = append(r.names, name)
	}
	return s
}

// sourceName resolves a source id to its name ("" if unknown).
func (r *Recorder) sourceName(id uint16) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(id) < len(r.names) {
		return r.names[id]
	}
	return ""
}

// sourceList returns the sources sorted by name.
func (r *Recorder) sourceList() []*Source {
	r.mu.Lock()
	out := make([]*Source, 0, len(r.sources))
	for _, s := range r.sources {
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Snapshot decodes every valid event currently held in the rings, ordered
// by publication sequence. It is wait-free with respect to writers: slots
// mid-write (or torn by a crash between field stores) fail the per-slot
// sequence check and are skipped.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for i := range r.rings {
		out = r.rings[i].collect(r, out)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Reset discards all recorded events, conflict attributions and abort
// records. Counters (span ids, sequence numbers) keep advancing so
// snapshots from different windows never alias.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	for i := range r.rings {
		r.rings[i].reset()
	}
	for _, s := range r.sourceList() {
		s.conflicts.reset()
	}
	r.aborts.reset()
}

// Source is the recording identity of one transactional runtime. Sources
// are shared by every instance of the algorithm; a nil *Source is a valid
// no-op recorder.
type Source struct {
	r         *Recorder
	id        uint16
	name      string
	conflicts conflictTable
}

// Name returns the source's (algorithm) name.
func (s *Source) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Local returns a recording handle bound to one ring of the recorder,
// assigned round-robin. Hold one per transaction descriptor (descriptors
// are pooled per-P, so the ring stays effectively goroutine-local). A nil
// source returns a nil Local, which is a valid no-op recorder.
func (s *Source) Local() *Local {
	if s == nil {
		return nil
	}
	r := s.r
	i := r.nextRng.Add(1) - 1
	return &Local{
		src:   s,
		ring:  &r.rings[int(i)%len(r.rings)],
		track: uint16(r.tracks.Add(1)),
	}
}

// Local is a ring-bound recording handle. All methods are nil-safe; while
// the recorder is disabled (or the current transaction was not sampled)
// every method is a no-op costing one predictable branch. A Local is owned
// by one goroutine at a time (the descriptor-pool discipline).
type Local struct {
	src   *Source
	ring  *ring
	track uint16

	span      uint64 // nonzero while the current transaction is sampled
	attempt   uint16
	attemptTS int64  // recorder-clock ns at attempt start
	pauseTS   int64  // set at abort; next attempt emits the CM pause
	lastKey   uint64 // last conflict-attributed key (consumed by Abort)
}

// emit writes one event slot for the current span.
func (l *Local) emit(k Kind, reason abort.Reason, key, arg uint64) {
	l.emitAt(l.src.r.now(), k, reason, key, arg)
}

func (l *Local) emitAt(ts int64, k Kind, reason abort.Reason, key, arg uint64) {
	meta := uint64(k) | uint64(uint8(reason))<<8 |
		uint64(l.attempt)<<16 | uint64(l.src.id)<<32 | uint64(l.track)<<48
	l.ring.write(l.src.r, ts, l.span, meta, key, arg)
}

// TxStart begins a transaction: the one atomic check every transaction
// pays while the recorder is disabled. When enabled it counts the
// transaction against the sampling divisor and, if selected, opens a span
// that every subsequent call on this Local records into until TxEnd.
func (l *Local) TxStart() {
	if l == nil {
		return
	}
	r := l.src.r
	if !r.on.Load() {
		l.span = 0
		return
	}
	n := r.txCtr.Add(1)
	if every := r.every.Load(); every > 1 && n%every != 0 {
		l.span = 0
		return
	}
	l.span = r.spanSeq.Add(1)
	l.attempt = 0
	l.attemptTS = 0
	l.pauseTS = 0
	l.lastKey = 0
	l.emit(EvTxStart, 0, 0, 0)
}

// TxEnd closes the sampled span (no-op when the transaction was not
// sampled). Call it on every exit path, including cancellation and
// re-raised panics; the runtimes put it next to their descriptor-pool
// returns.
func (l *Local) TxEnd() {
	if l == nil || l.span == 0 {
		return
	}
	l.emit(EvTxEnd, 0, 0, 0)
	l.span = 0
}

// AttemptStart opens one optimistic attempt. If the previous attempt
// aborted, the time since the abort is emitted first as the
// contention-manager pause.
func (l *Local) AttemptStart() {
	if l == nil || l.span == 0 {
		return
	}
	now := l.src.r.now()
	if l.pauseTS != 0 {
		if d := now - l.pauseTS; d > 0 {
			l.emitAt(now, EvPause, 0, 0, uint64(d))
		}
		l.pauseTS = 0
	}
	l.attempt++
	l.attemptTS = now
	l.emitAt(now, EvAttemptStart, 0, 0, uint64(l.attempt))
}

// Op records one read/traversal operation on key.
func (l *Local) Op(key uint64) {
	if l == nil || l.span == 0 {
		return
	}
	l.emit(EvRead, 0, key, 0)
}

// Lock records acquiring the lock guarding key.
func (l *Local) Lock(key uint64) {
	if l == nil || l.span == 0 {
		return
	}
	l.emit(EvLock, 0, key, 0)
}

// Unlock records releasing the lock guarding key.
func (l *Local) Unlock(key uint64) {
	if l == nil || l.span == 0 {
		return
	}
	l.emit(EvUnlock, 0, key, 0)
}

// Validated records a whole-read-set validation that passed.
func (l *Local) Validated() {
	if l == nil || l.span == 0 {
		return
	}
	l.emit(EvValidate, 0, 0, 0)
}

// CommitBegin opens the commit phase (lock acquisition, final validation,
// publication).
func (l *Local) CommitBegin() {
	if l == nil || l.span == 0 {
		return
	}
	l.emit(EvCommitBegin, 0, 0, 0)
}

// CommitEnd closes a successful commit phase.
func (l *Local) CommitEnd() {
	if l == nil || l.span == 0 {
		return
	}
	l.emit(EvCommitEnd, 0, 0, 0)
}

// HWAttempt opens one emulated-hardware attempt (hybrid HTM).
func (l *Local) HWAttempt(n int) {
	if l == nil || l.span == 0 {
		return
	}
	l.attempt = uint16(n)
	l.attemptTS = l.src.r.now()
	l.emitAt(l.attemptTS, EvHWAttempt, 0, 0, uint64(n))
}

// Fallback records a fall-through to a slow path (HTM software fallback).
func (l *Local) Fallback() {
	if l == nil || l.span == 0 {
		return
	}
	l.emit(EvFallback, 0, 0, 0)
}

// Escalated records serial-mode escalation.
func (l *Local) Escalated() {
	if l == nil || l.span == 0 {
		return
	}
	l.emit(EvEscalate, 0, 0, 0)
}

// LockBusy notes that the lock guarding key was found busy. The key is
// remembered and attributed by the abort that follows; sampled spans also
// record the event. It runs on abort paths only, so the extra atomic load
// (for attribution of unsampled transactions) is off the hot path.
func (l *Local) LockBusy(key uint64) {
	if l == nil {
		return
	}
	if l.span != 0 {
		l.lastKey = key
		l.emit(EvLockBusy, 0, key, 0)
		return
	}
	if l.src.r.on.Load() {
		l.lastKey = key
	}
}

// ValidateFail notes a validation failure on the entry guarding key; like
// LockBusy it feeds the conflict attribution of the abort that follows.
func (l *Local) ValidateFail(key uint64) {
	if l == nil {
		return
	}
	if l.span != 0 {
		l.lastKey = key
		l.emit(EvValidateFail, 0, key, 0)
		return
	}
	if l.src.r.on.Load() {
		l.lastKey = key
	}
}

// NoteKey attributes the next abort to key without emitting an event (for
// call sites that only know the key, not the failure mode).
func (l *Local) NoteKey(key uint64) {
	if l == nil {
		return
	}
	if l.span != 0 || l.src.r.on.Load() {
		l.lastKey = key
	}
}

// Abort records one aborted attempt: the event (sampled spans), the
// conflict-table attribution under the last noted key (every transaction
// while the recorder is enabled), and the last-N-aborts log entry.
func (l *Local) Abort(reason abort.Reason) {
	if l == nil {
		return
	}
	key := l.lastKey
	l.lastKey = 0
	r := l.src.r
	if l.span != 0 {
		now := r.now()
		var wait uint64
		if l.attemptTS != 0 && now > l.attemptTS {
			wait = uint64(now - l.attemptTS)
		}
		l.emitAt(now, EvAbort, reason, key, wait)
		l.pauseTS = now
		if key != 0 {
			l.src.conflicts.note(key, wait)
		}
		r.aborts.add(abortRecord{
			ts: now, src: l.src.id, span: l.span,
			attempt: l.attempt, reason: reason, key: key,
		})
		return
	}
	if !r.on.Load() {
		return
	}
	if key != 0 {
		l.src.conflicts.note(key, 0)
	}
}

// Draw counts one request against the sampling divisor without opening a
// span. The txnet client uses it to decide whether a request carries a wire
// trace id; the verdict then travels to the server, which opens its span on
// the propagated id rather than drawing again. Costs one atomic load while
// the recorder is disabled.
func (l *Local) Draw() bool {
	if l == nil {
		return false
	}
	r := l.src.r
	if !r.on.Load() {
		return false
	}
	n := r.txCtr.Add(1)
	if every := r.every.Load(); every > 1 && n%every != 0 {
		return false
	}
	return true
}

// SpanOpen opens a request span under an explicit id — the wire-propagated
// trace id — bypassing the sampling draw (the id's presence IS the sampling
// verdict, made once at the client). parent is the opening peer's span id
// (zero for a root span). A zero id, nil Local or disabled recorder leaves
// the span closed; every later call stays a one-branch no-op.
func (l *Local) SpanOpen(id, parent uint64) {
	if l == nil {
		return
	}
	if id == 0 || !l.src.r.on.Load() {
		l.span = 0
		return
	}
	l.span = id
	l.attempt = 0
	l.attemptTS = 0
	l.pauseTS = 0
	l.lastKey = 0
	l.emit(EvReqStart, 0, 0, parent)
}

// SpanActive reports whether a request span is open on this Local.
func (l *Local) SpanActive() bool { return l != nil && l.span != 0 }

// SpanClose closes the request span opened by SpanOpen (no-op otherwise).
func (l *Local) SpanClose() {
	if l == nil || l.span == 0 {
		return
	}
	l.emit(EvReqEnd, 0, 0, 0)
	l.span = 0
}

// Stage records a completed request lifecycle stage of d nanoseconds ending
// now. Non-positive durations are dropped.
func (l *Local) Stage(st Stage, d int64) {
	if l == nil || l.span == 0 || d <= 0 {
		return
	}
	l.emit(EvStage, 0, uint64(st), uint64(d))
}

// Resend marks the open request span as a same-sequence resend (the
// exactly-once retry path); n is the resend ordinal when known.
func (l *Local) Resend(n int) {
	if l == nil || l.span == 0 {
		return
	}
	l.emit(EvResend, 0, 0, uint64(n))
}

// Now returns the recorder clock when the current transaction is sampled,
// or zero: the start stamp for QueueWait / Execute phases.
func (l *Local) Now() int64 {
	if l == nil || l.span == 0 {
		return 0
	}
	return l.src.r.now()
}

// QueueWait records the time since start (a Now stamp) as client-side
// queue wait for a server verdict. A zero start is a no-op.
func (l *Local) QueueWait(start int64) {
	if l == nil || l.span == 0 || start == 0 {
		return
	}
	now := l.src.r.now()
	if d := now - start; d > 0 {
		l.emitAt(now, EvQueueWait, 0, 0, uint64(d))
	}
}

// Execute records the time since start (a Now stamp) as server-side
// execution of a commit request. A zero start is a no-op.
func (l *Local) Execute(start int64) {
	if l == nil || l.span == 0 || start == 0 {
		return
	}
	now := l.src.r.now()
	if d := now - start; d > 0 {
		l.emitAt(now, EvExecute, 0, 0, uint64(d))
	}
}

// Default is the package-level recorder every runtime wires into. It
// starts disabled, making all wired call sites no-ops until Enable.
var Default = NewRecorder()

// S returns the Default recorder's source with the given name.
func S(name string) *Source { return Default.Source(name) }

// Enable arms the Default recorder, sampling one in every n transactions
// (n <= 1 records every transaction).
func Enable(n uint64) {
	Default.SetSampleEvery(n)
	Default.SetEnabled(true)
}

// Disable returns the Default recorder to its one-atomic-load fast path.
func Disable() { Default.SetEnabled(false) }
