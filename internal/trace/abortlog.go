package trace

import (
	"fmt"
	"io"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/abort"
)

// abortLogCap bounds the last-N-aborts ring. 256 records is enough to see
// the tail of any failure without holding the whole run.
const abortLogCap = 256

// abortRecord is one logged abort (sampled transactions only — the log is
// a triage tool for "what just went wrong", not a counter; the conflict
// table and telemetry count everything).
type abortRecord struct {
	ts      int64
	src     uint16
	span    uint64
	attempt uint16
	reason  abort.Reason
	key     uint64
}

// abortLog is a mutex-guarded ring of the most recent aborts. The abort
// path is already a slow path (backoff follows), so a short critical
// section is acceptable; recording never allocates.
type abortLog struct {
	mu   sync.Mutex
	recs [abortLogCap]abortRecord
	next uint64 // total records ever written; next%cap is the write slot
}

func (l *abortLog) add(r abortRecord) {
	l.mu.Lock()
	l.recs[l.next%abortLogCap] = r
	l.next++
	l.mu.Unlock()
}

func (l *abortLog) reset() {
	l.mu.Lock()
	l.next = 0
	l.mu.Unlock()
}

// last returns up to n most recent records, oldest first.
func (l *abortLog) last(n int) []abortRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := l.next
	count := uint64(n)
	if count > total {
		count = total
	}
	if count > abortLogCap {
		count = abortLogCap
	}
	out := make([]abortRecord, 0, count)
	for i := total - count; i < total; i++ {
		out = append(out, l.recs[i%abortLogCap])
	}
	return out
}

// AbortRecord is one entry of the last-N-aborts dump.
type AbortRecord struct {
	// TS is the recorder-clock timestamp in nanoseconds.
	TS int64
	// Runtime is the aborting algorithm's name.
	Runtime string
	// Span is the sampled transaction id.
	Span uint64
	// Attempt is the 1-based attempt ordinal that aborted.
	Attempt uint16
	// Reason classifies the abort.
	Reason abort.Reason
	// Key is the attributed conflict key (0 = unattributed).
	Key uint64
}

// LastAborts returns up to n most recent sampled aborts, oldest first.
func (r *Recorder) LastAborts(n int) []AbortRecord {
	if r == nil {
		return nil
	}
	recs := r.aborts.last(n)
	out := make([]AbortRecord, len(recs))
	for i, rec := range recs {
		out[i] = AbortRecord{
			TS: rec.ts, Runtime: r.sourceName(rec.src), Span: rec.span,
			Attempt: rec.attempt, Reason: rec.reason, Key: rec.key,
		}
	}
	return out
}

// WriteAborts renders the last-n-aborts dump as aligned text, oldest
// first — the plain-text failure-triage view.
func (r *Recorder) WriteAborts(w io.Writer, n int) {
	recs := r.LastAborts(n)
	if len(recs) == 0 {
		fmt.Fprintln(w, "aborts: none recorded")
		return
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "ts\talgorithm\tspan\tattempt\treason\tkey\n")
	for _, rec := range recs {
		key := "-"
		if rec.Key != 0 {
			key = fmt.Sprintf("%d", rec.Key)
		}
		fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%s\t%s\n",
			rec.TS, rec.Runtime, rec.Span, rec.Attempt, rec.Reason, key)
	}
	tw.Flush()
}

// nsDuration formats a nanosecond count as a duration.
func nsDuration(ns uint64) time.Duration { return time.Duration(ns) }
