package trace

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/chaos/leak"
)

// serveSlow is a Server whose /slow?hold=<dur> handler streams until the
// hold elapses, the connection dies, or the request context is cancelled —
// a deterministic stand-in for a long profile download, letting shutdown
// tests control exactly how long an in-flight request stays in flight.
func serveSlow(t *testing.T) *Server {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		hold, err := time.ParseDuration(r.URL.Query().Get("hold"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		f := w.(http.Flusher)
		end := time.Now().Add(hold)
		for time.Now().Before(end) {
			select {
			case <-r.Context().Done():
				return
			case <-time.After(5 * time.Millisecond):
			}
			if _, err := w.Write([]byte("tick\n")); err != nil {
				return
			}
			f.Flush()
		}
	})
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}
}

// get issues the request in the background, returning a channel with the
// final body read error (nil = complete response).
func get(t *testing.T, url string) <-chan error {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		resp, err := http.Get(url)
		if err != nil {
			done <- err
			return
		}
		defer resp.Body.Close()
		_, err = io.Copy(io.Discard, resp.Body)
		done <- err
	}()
	return done
}

func TestServeShutdownWaitsForInflight(t *testing.T) {
	defer leak.Check(t)()
	// The real debug mux: a one-second runtime-trace download is in flight
	// when Shutdown starts; with budget to spare it completes, not cut off.
	srv, err := ServeRecorder("127.0.0.1:0", NewRecorder())
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	done := get(t, "http://"+srv.Addr()+"/debug/pprof/trace?seconds=1")
	time.Sleep(100 * time.Millisecond) // let the handler start streaming

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("in-flight request was dropped: %v", err)
	}
	if _, err := net.DialTimeout("tcp", srv.Addr(), 100*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

func TestServeShutdownDeadlineDropsStragglers(t *testing.T) {
	defer leak.Check(t)()
	srv := serveSlow(t)
	done := get(t, "http://"+srv.Addr()+"/slow?hold=30s")
	time.Sleep(100 * time.Millisecond)

	// A tiny budget cannot drain a thirty-second download: Shutdown must
	// report the expiry AND still tear everything down via the fallback.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := srv.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("shutdown blocked %v past its budget", waited)
	}
	if err := <-done; err == nil {
		t.Fatal("straggler request survived a forced shutdown")
	}
	if _, err := net.DialTimeout("tcp", srv.Addr(), 100*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after forced shutdown")
	}
}

func TestServeCloseIsGraceful(t *testing.T) {
	defer leak.Check(t)()
	srv := serveSlow(t)
	// Close's built-in grace period covers a short in-flight request.
	done := get(t, "http://"+srv.Addr()+"/slow?hold=300ms")
	time.Sleep(50 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("in-flight request dropped by Close: %v", err)
	}
}
