package trace_test

import (
	"math/rand/v2"
	"sync/atomic"
	"testing"

	"repro/internal/abort"
	"repro/internal/bench"
	"repro/internal/otb"
	"repro/internal/trace"
)

// benchOTBListSet runs the OTB list-set microbenchmark (the paper's primary
// workload) with the Default recorder in the given state. Comparing the
// disarmed and armed variants bounds the flight-recorder overhead; the
// ISSUE's acceptance bar is < 2 ns/op for the disarmed (default) state,
// where every wired call site reduces to one atomic load and a branch.
func benchOTBListSet(b *testing.B, enabled bool, every uint64) {
	trace.Default.SetEnabled(enabled)
	trace.Default.SetSampleEvery(every)
	defer func() {
		trace.Default.SetEnabled(false)
		trace.Default.Reset()
	}()

	wl := bench.SetWorkload{InitialSize: 512, KeyRange: 512 * 8, WritePct: 20, OpsPerTx: 1}
	d := bench.NewOTBDriver(otb.NewListSet())
	defer d.Stop()
	wl.Populate(d)

	var worker atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := int(worker.Add(1))
		gen := wl.NewSetWorker(id)
		rng := rand.New(rand.NewPCG(uint64(id), 99))
		for pb.Next() {
			d.RunTx(gen(rng))
		}
	})
}

func BenchmarkOTBListSetRecorderDisabled(b *testing.B) { benchOTBListSet(b, false, 64) }

// BenchmarkOTBListSetRecorderSampled is the armed state at the default
// 1-in-64 sampling rate: most transactions still only pay the sampling
// check, sampled ones write ring slots.
func BenchmarkOTBListSetRecorderSampled(b *testing.B) { benchOTBListSet(b, true, 64) }

// BenchmarkOTBListSetRecorderEvery records every transaction — the
// worst-case armed overhead.
func BenchmarkOTBListSetRecorderEvery(b *testing.B) { benchOTBListSet(b, true, 1) }

// BenchmarkDisabledRecord measures the raw cost of one fully wired event
// sequence against a disabled recorder — the per-transaction tax every
// runtime pays when the flight recorder is off. Each iteration covers the
// events of one contended read-modify-write transaction.
func BenchmarkDisabledRecord(b *testing.B) {
	r := trace.NewRecorderSized(1, 64)
	l := r.Source("bench").Local()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.TxStart()
		l.AttemptStart()
		l.Op(7)
		l.CommitBegin()
		l.Lock(7)
		l.Validated()
		l.CommitEnd()
		l.Unlock(7)
		l.TxEnd()
	}
}

// BenchmarkSampledRecord is the same sequence with the recorder armed and
// the transaction sampled, bounding the slot-write fast path.
func BenchmarkSampledRecord(b *testing.B) {
	r := trace.NewRecorderSized(1, 1<<10)
	r.SetEnabled(true)
	r.SetSampleEvery(1)
	l := r.Source("bench").Local()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.TxStart()
		l.AttemptStart()
		l.Op(7)
		l.CommitBegin()
		l.Lock(7)
		l.Validated()
		l.CommitEnd()
		l.Unlock(7)
		l.TxEnd()
	}
}

// BenchmarkUnsampledAttribution is the armed-but-unsampled path: conflict
// attribution still counts aborts for every transaction, so this bounds
// the cost the 1-in-N transactions that lose the sampling draw still pay
// on the abort path.
func BenchmarkUnsampledAttribution(b *testing.B) {
	r := trace.NewRecorderSized(1, 64)
	r.SetEnabled(true)
	r.SetSampleEvery(1 << 30)
	l := r.Source("bench").Local()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.TxStart()
		l.AttemptStart()
		l.LockBusy(7)
		l.Abort(abort.LockBusy)
		l.TxEnd()
	}
}
