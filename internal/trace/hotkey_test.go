package trace_test

import (
	"testing"

	"repro/internal/otb"
	"repro/internal/trace"
)

// TestConflictTableNamesHotKey is the acceptance check for conflict
// attribution end-to-end: a stress workload whose conflicts all land on one
// hot key must surface that key at the top of the OTB runtime's conflict
// table. The interleaving is driven deterministically (a committing
// transaction nested inside another's first attempt) so the test does not
// depend on scheduler-provided contention — this box may have one core.
func TestConflictTableNamesHotKey(t *testing.T) {
	trace.Enable(1)
	defer func() {
		trace.Disable()
		trace.Default.Reset()
	}()

	const hot = int64(42)
	set := otb.NewListSet()
	// Cold keys around the hot one so traversal has work and reads touch
	// more than the contended node — the hot key must still dominate.
	for k := int64(1); k <= 64; k++ {
		otb.Atomic(nil, func(tx *otb.Tx) { set.Add(tx, k) })
	}

	for i := 0; i < 20; i++ {
		firstAttempt := true
		otb.Atomic(nil, func(tx *otb.Tx) {
			set.Contains(tx, int64(1+i%64)) // cold read
			set.Contains(tx, hot)           // pins the hot node in the read set
			if firstAttempt {
				firstAttempt = false
				// A full transaction commits over the pinned node before this
				// attempt validates, forcing a conflict abort attributed to it.
				otb.Atomic(nil, func(tx2 *otb.Tx) {
					if !set.Remove(tx2, hot) {
						set.Add(tx2, hot)
					}
				})
			}
			set.Contains(tx, int64(1+(i+7)%64))
		})
	}

	entries := trace.Default.Conflicts(5)
	if len(entries) == 0 {
		t.Fatal("no conflicts recorded")
	}
	top := entries[0]
	if top.Runtime != "OTB" || top.Key != uint64(hot) {
		t.Fatalf("top contended key = %s/%d (aborts %d), want OTB/%d\nall: %+v",
			top.Runtime, top.Key, top.Aborts, hot, entries)
	}
	if top.WaitNS == 0 {
		t.Fatal("hot key accumulated no lost time despite sampled aborts")
	}
}

// TestSkipSetAbsentReadValidateFail regresses a nil dereference: a skip-list
// read that saw its key absent records no curr node, and attributing the
// validation failure must fall back to the bottom-level successor instead
// of dereferencing it.
func TestSkipSetAbsentReadValidateFail(t *testing.T) {
	trace.Enable(1)
	defer func() {
		trace.Disable()
		trace.Default.Reset()
	}()

	set := otb.NewSkipSet()
	otb.Atomic(nil, func(tx *otb.Tx) { set.Add(tx, 10) })
	otb.Atomic(nil, func(tx *otb.Tx) { set.Add(tx, 30) })

	const absent = int64(20)
	firstAttempt := true
	otb.Atomic(nil, func(tx *otb.Tx) {
		set.Contains(tx, absent) // absent read: entry anchored on succ 30
		if firstAttempt {
			firstAttempt = false
			// Committing Add(20) between the read and its validation makes
			// the absent-read entry fail its adjacency recheck.
			otb.Atomic(nil, func(tx2 *otb.Tx) { set.Add(tx2, absent) })
		}
		set.Contains(tx, 10)
	})

	for _, e := range trace.Default.Conflicts(10) {
		if e.Runtime == "OTB" && e.Aborts > 0 {
			return
		}
	}
	t.Fatal("forced skip-list absent-read conflict was not attributed")
}
