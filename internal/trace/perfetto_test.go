package trace

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/abort"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenHistory drives two descriptors of one runtime through a scripted
// contended interleaving — tx A loses key 7 to tx B, pauses, retries and
// commits — on a deterministic clock, all from one goroutine so the event
// order is exact.
func goldenHistory() *Recorder {
	r := NewRecorderSized(1, 256)
	r.SetClock(fakeClock(100))
	r.SetEnabled(true)
	src := r.Source("OTB-list")
	a, b := src.Local(), src.Local()

	a.TxStart()
	a.AttemptStart()
	a.Op(7)
	b.TxStart()
	b.AttemptStart()
	b.Op(7)
	b.CommitBegin()
	b.Lock(7)
	a.LockBusy(7) // A hits B's commit-time lock
	a.Abort(abort.LockBusy)
	b.Validated()
	b.CommitEnd()
	b.Unlock(7)
	b.TxEnd()
	a.AttemptStart() // emits A's CM pause
	a.Op(7)
	a.CommitBegin()
	a.Lock(7)
	a.Validated()
	a.CommitEnd()
	a.Unlock(7)
	a.TxEnd()
	return r
}

// TestPerfettoGolden pins the exporter's exact output for the scripted
// contended history. Regenerate with: go test ./internal/trace/ -run Golden -update
func TestPerfettoGolden(t *testing.T) {
	r := goldenHistory()
	got, err := ExportPerfetto(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "perfetto_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if string(got) != string(want) {
		t.Fatalf("perfetto export drifted from golden file (run with -update to regenerate)\ngot:\n%s", got)
	}
}

// TestPerfettoWellFormed checks structural validity independent of the
// golden bytes: the export is valid trace-event JSON, every duration slice
// opened is closed, and both descriptor tracks appear.
func TestPerfettoWellFormed(t *testing.T) {
	r := goldenHistory()
	raw, err := ExportPerfetto(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	depth := map[[2]int]int{}
	tracks := map[int]bool{}
	var sawAbort, sawPause, sawProcess bool
	for _, e := range doc.TraceEvents {
		lane := [2]int{e.PID, e.TID}
		switch e.Ph {
		case "B":
			depth[lane]++
		case "E":
			depth[lane]--
			if depth[lane] < 0 {
				t.Fatalf("unbalanced E on lane %v", lane)
			}
		case "M":
			if e.Name == "process_name" && e.Args["name"] == "OTB-list" {
				sawProcess = true
			}
			continue
		case "i":
			if e.Name == "abort:lock-busy" {
				sawAbort = true
				if e.Args["key"] != float64(7) {
					t.Fatalf("abort instant lost its key: %v", e.Args)
				}
			}
		case "X":
			if e.Name == "cm-pause" {
				sawPause = true
				if e.Dur <= 0 {
					t.Fatal("cm-pause slice without duration")
				}
			}
		}
		tracks[e.TID] = true
	}
	for lane, d := range depth {
		if d != 0 {
			t.Fatalf("lane %v left %d slices open", lane, d)
		}
	}
	if !sawAbort || !sawPause || !sawProcess {
		t.Fatalf("missing events: abort=%v pause=%v process=%v", sawAbort, sawPause, sawProcess)
	}
	if len(tracks) < 2 {
		t.Fatalf("expected two descriptor tracks, got %v", tracks)
	}
}

// TestPerfettoTruncatedHistory: a wrapped ring loses the oldest events; the
// exporter must still close every slice it opens.
func TestPerfettoTruncatedHistory(t *testing.T) {
	r := NewRecorderSized(1, 8)
	r.SetClock(fakeClock(10))
	r.SetEnabled(true)
	l := r.Source("NOrec").Local()
	for i := 0; i < 20; i++ {
		l.TxStart()
		l.AttemptStart()
		l.CommitBegin()
		l.CommitEnd()
		l.TxEnd()
	}
	// Leave a transaction open mid-commit so the tail is truncated too.
	l.TxStart()
	l.AttemptStart()
	l.CommitBegin()
	raw, err := ExportPerfetto(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			PID int    `json:"pid"`
			TID int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	depth := map[[2]int]int{}
	for _, e := range doc.TraceEvents {
		lane := [2]int{e.PID, e.TID}
		switch e.Ph {
		case "B":
			depth[lane]++
		case "E":
			depth[lane]--
			if depth[lane] < 0 {
				t.Fatalf("unbalanced E on lane %v", lane)
			}
		}
	}
	for lane, d := range depth {
		if d != 0 {
			t.Fatalf("lane %v left %d slices open", lane, d)
		}
	}
	l.TxEnd()
}

// requestHistory scripts one cross-layer request on each of two recorders
// — a "client" drawing the sample and a "server" adopting the wire id —
// the way txnet does it, on deterministic clocks.
func requestHistory(traceID uint64) (client, server *Recorder) {
	client = NewRecorderSized(1, 256)
	client.SetClock(fakeClock(100))
	client.SetEnabled(true)
	cl := client.Source("txnet.client").Local()
	cl.SpanOpen(traceID, 0)
	cl.Resend(1)
	cl.Stage(StageQueue, 300)
	cl.Stage(StageNet, 900)
	cl.SpanClose()

	server = NewRecorderSized(1, 256)
	server.SetClock(fakeClock(100))
	server.SetEnabled(true)
	sl := server.Source("txnet.server").Local()
	sl.SpanOpen(traceID, traceID)
	sl.Stage(StageDispatch, 50)
	sl.Stage(StageExecute, 400)
	sl.Stage(StageFsync, 700)
	sl.SpanClose()
	return client, server
}

// TestRequestSpanExport checks the request-span event kinds export as one
// named slice stack per side, every slice carrying the trace id argument.
func TestRequestSpanExport(t *testing.T) {
	const traceID = 0xabc123
	client, _ := requestHistory(traceID)
	raw, err := ExportPerfetto(client.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Dur  float64        `json:"dur,omitempty"`
			Args map[string]any `json:"args,omitempty"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"request": "B", "queue": "X", "net": "X", "resend": "i"}
	seen := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if ph, ok := want[e.Name]; ok {
			if e.Ph != ph {
				t.Fatalf("%s exported as ph=%q, want %q", e.Name, e.Ph, ph)
			}
			if tr, _ := e.Args["trace"].(string); tr != "0000000000abc123" {
				t.Fatalf("%s trace arg %v", e.Name, e.Args)
			}
			seen[e.Name] = true
		}
	}
	for name := range want {
		if !seen[name] {
			t.Fatalf("slice %q missing from export", name)
		}
	}
}

// TestMergePerfetto merges a client dump and a server dump and checks the
// result is one well-formed trace: every event of the second dump moved to
// a fresh pid, and the shared trace id appears under both pids.
func TestMergePerfetto(t *testing.T) {
	const traceID = 0x77
	client, server := requestHistory(traceID)
	cd, err := ExportPerfetto(client.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	sd, err := ExportPerfetto(server.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergePerfetto(cd, sd)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			PID  int            `json:"pid"`
			Args map[string]any `json:"args,omitempty"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(merged, &doc); err != nil {
		t.Fatalf("merged dump does not parse: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	pidsByTrace := map[int]bool{}
	allPIDs := map[int]bool{}
	for _, e := range doc.TraceEvents {
		allPIDs[e.PID] = true
		if tr, _ := e.Args["trace"].(string); tr == "0000000000000077" {
			pidsByTrace[e.PID] = true
		}
	}
	if len(allPIDs) < 2 {
		t.Fatalf("merge collapsed the dumps into pids %v", allPIDs)
	}
	if len(pidsByTrace) < 2 {
		t.Fatalf("trace id spans pids %v, want both processes", pidsByTrace)
	}
}
