package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// perfettoEvent is one Chrome trace-event record. The subset used here
// (B/E duration slices, X complete slices, i instants, M metadata) loads in
// ui.perfetto.dev and chrome://tracing.
type perfettoEvent struct {
	Name string         `json:"name,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// perfettoTrace is the top-level JSON object.
type perfettoTrace struct {
	TraceEvents     []perfettoEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
}

// lane is the reconstruction state of one (runtime, track) timeline: the
// stack of open B slices.
type lane struct {
	pid, tid int
	open     []string
	lastTS   float64
}

// us converts recorder nanoseconds to trace microseconds.
func us(ns int64) float64 { return float64(ns) / 1e3 }

// ExportPerfetto converts a snapshot into Chrome trace-event JSON: one
// process per runtime, one thread track per recording descriptor, one
// slice per attempt / commit phase, instants for reads, locks, validation
// outcomes and aborts, and X slices for CM pauses and server queue/execute
// phases.
func ExportPerfetto(events []Event) ([]byte, error) {
	// Deterministic pid assignment: sorted unique runtime names.
	names := map[string]bool{}
	for _, e := range events {
		names[e.Runtime] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	pids := make(map[string]int, len(sorted))
	out := perfettoTrace{DisplayTimeUnit: "ms", TraceEvents: []perfettoEvent{}}
	for i, n := range sorted {
		pids[n] = i + 1
		out.TraceEvents = append(out.TraceEvents, perfettoEvent{
			Name: "process_name", Ph: "M", PID: i + 1,
			Args: map[string]any{"name": n},
		})
	}

	lanes := map[[2]int]*lane{}
	laneOf := func(e Event) *lane {
		k := [2]int{pids[e.Runtime], int(e.Track)}
		l, ok := lanes[k]
		if !ok {
			l = &lane{pid: k[0], tid: k[1]}
			lanes[k] = l
			out.TraceEvents = append(out.TraceEvents, perfettoEvent{
				Name: "thread_name", Ph: "M", PID: l.pid, TID: l.tid,
				Args: map[string]any{"name": fmt.Sprintf("track %d", l.tid)},
			})
		}
		return l
	}

	pushArgs := func(l *lane, ts float64, name string, args map[string]any) {
		out.TraceEvents = append(out.TraceEvents,
			perfettoEvent{Name: name, Ph: "B", TS: ts, PID: l.pid, TID: l.tid, Args: args})
		l.open = append(l.open, name)
	}
	push := func(l *lane, ts float64, name string) { pushArgs(l, ts, name, nil) }
	popOne := func(l *lane, ts float64) {
		out.TraceEvents = append(out.TraceEvents,
			perfettoEvent{Ph: "E", TS: ts, PID: l.pid, TID: l.tid})
		l.open = l.open[:len(l.open)-1]
	}
	// popTo closes open slices until (and including) the innermost one
	// whose name matches pred; without a match it is a no-op.
	popTo := func(l *lane, ts float64, pred func(string) bool) {
		depth := -1
		for i := len(l.open) - 1; i >= 0; i-- {
			if pred(l.open[i]) {
				depth = i
				break
			}
		}
		if depth < 0 {
			return
		}
		for len(l.open) > depth {
			popOne(l, ts)
		}
	}
	isAttempt := func(s string) bool { return s == "attempt" || s == "hw-attempt" }

	instant := func(l *lane, ts float64, name string, args map[string]any) {
		out.TraceEvents = append(out.TraceEvents, perfettoEvent{
			Name: name, Ph: "i", TS: ts, PID: l.pid, TID: l.tid, S: "t", Args: args,
		})
	}
	slice := func(l *lane, end float64, durNS uint64, name string) {
		d := us(int64(durNS))
		out.TraceEvents = append(out.TraceEvents, perfettoEvent{
			Name: name, Ph: "X", TS: end - d, Dur: d, PID: l.pid, TID: l.tid,
		})
	}
	traceArgs := func(e Event) map[string]any {
		return map[string]any{"trace": fmt.Sprintf("%016x", e.Span)}
	}

	for _, e := range events {
		l := laneOf(e)
		ts := us(e.TS)
		if ts > l.lastTS {
			l.lastTS = ts
		}
		switch e.Kind {
		case EvTxStart:
			// A new transaction implicitly closes anything a truncated
			// (wrapped-out) history left open on this lane.
			for len(l.open) > 0 {
				popOne(l, ts)
			}
			push(l, ts, "tx")
		case EvAttemptStart:
			popTo(l, ts, isAttempt)
			push(l, ts, "attempt")
		case EvHWAttempt:
			popTo(l, ts, isAttempt)
			push(l, ts, "hw-attempt")
		case EvCommitBegin:
			push(l, ts, "commit")
		case EvCommitEnd:
			popTo(l, ts, func(s string) bool { return s == "commit" })
		case EvAbort:
			popTo(l, ts, func(s string) bool { return s == "commit" })
			popTo(l, ts, isAttempt)
			args := map[string]any{"reason": e.Reason.String()}
			if e.Key != 0 {
				args["key"] = e.Key
			}
			if e.Arg != 0 {
				args["lost_ns"] = e.Arg
			}
			instant(l, ts, "abort:"+e.Reason.String(), args)
		case EvTxEnd:
			for len(l.open) > 0 {
				popOne(l, ts)
			}
		case EvReqStart:
			// A new request implicitly closes anything a truncated history
			// left open on this lane (same contract as EvTxStart).
			for len(l.open) > 0 {
				popOne(l, ts)
			}
			args := traceArgs(e)
			if e.Arg != 0 && e.Arg != e.Span {
				args["parent"] = fmt.Sprintf("%016x", e.Arg)
			}
			pushArgs(l, ts, "request", args)
		case EvReqEnd:
			for len(l.open) > 0 {
				popOne(l, ts)
			}
		case EvStage:
			d := us(int64(e.Arg))
			out.TraceEvents = append(out.TraceEvents, perfettoEvent{
				Name: Stage(e.Key).String(), Ph: "X", TS: ts - d, Dur: d,
				PID: l.pid, TID: l.tid, Args: traceArgs(e),
			})
		case EvResend:
			args := traceArgs(e)
			if e.Arg != 0 {
				args["resend"] = e.Arg
			}
			instant(l, ts, "resend", args)
		case EvPause:
			slice(l, ts, e.Arg, "cm-pause")
		case EvQueueWait:
			slice(l, ts, e.Arg, "queue-wait")
		case EvExecute:
			slice(l, ts, e.Arg, "execute")
		case EvRead, EvLock, EvLockBusy, EvUnlock, EvValidate, EvValidateFail,
			EvFallback, EvEscalate:
			var args map[string]any
			if e.Key != 0 {
				args = map[string]any{"key": e.Key}
			}
			instant(l, ts, e.Kind.String(), args)
		}
	}

	// Close anything the ring truncated mid-flight, deterministically
	// ordered by (pid, tid).
	keys := make([][2]int, 0, len(lanes))
	for k := range lanes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		l := lanes[k]
		for len(l.open) > 0 {
			popOne(l, l.lastTS)
		}
	}
	return json.MarshalIndent(out, "", " ")
}

// MergePerfetto combines several trace-event JSON dumps — typically one per
// process, e.g. cmd/txload's client-side export plus the server's
// /debug/trace/perfetto dump — into one trace. Process ids of later dumps
// are offset past the earlier ones so lanes never collide; timestamps are
// left untouched (both recorders stamp wall-clock nanoseconds, so spans
// sharing a wire trace id line up on one timeline).
func MergePerfetto(dumps ...[]byte) ([]byte, error) {
	out := perfettoTrace{DisplayTimeUnit: "ms", TraceEvents: []perfettoEvent{}}
	base := 0
	for i, d := range dumps {
		var t perfettoTrace
		if err := json.Unmarshal(d, &t); err != nil {
			return nil, fmt.Errorf("trace: merge dump %d: %w", i, err)
		}
		maxPID := base
		for _, e := range t.TraceEvents {
			e.PID += base
			if e.PID > maxPID {
				maxPID = e.PID
			}
			out.TraceEvents = append(out.TraceEvents, e)
		}
		base = maxPID
	}
	return json.MarshalIndent(out, "", " ")
}

// WritePerfetto exports the recorder's current snapshot as trace-event
// JSON.
func (r *Recorder) WritePerfetto(w io.Writer) error {
	b, err := ExportPerfetto(r.Snapshot())
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}
