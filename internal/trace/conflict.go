package trace

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"text/tabwriter"
)

// conflictSlots sizes each source's attribution table. 1024 distinct
// contended keys per runtime is far beyond any workload here; overflow is
// counted, not dropped silently.
const conflictSlots = 1024

// conflictSlot is one open-addressed table entry. Key 0 means empty —
// attribution keys are defined to be nonzero (cell ids start at 1; OTB
// keys exclude the sentinels; key 0 means "unattributed").
type conflictSlot struct {
	key    atomic.Uint64
	aborts atomic.Uint64
	waitNS atomic.Uint64
}

// conflictTable counts aborts per contended key with lock-free
// open-addressed probing. Abort counts cover every transaction while the
// recorder is enabled; wait-time sums come from sampled attempts only
// (unsampled transactions carry no start timestamp).
type conflictTable struct {
	slots    [conflictSlots]conflictSlot
	overflow atomic.Uint64
}

// note charges one abort (and waitNs of lost attempt time) to key.
func (t *conflictTable) note(key uint64, waitNs uint64) {
	h := splitmix64(key)
	for i := uint64(0); i < 32; i++ {
		s := &t.slots[(h+i)&(conflictSlots-1)]
		k := s.key.Load()
		if k == 0 {
			if !s.key.CompareAndSwap(0, key) {
				k = s.key.Load()
				if k != key {
					continue
				}
			}
		} else if k != key {
			continue
		}
		s.aborts.Add(1)
		s.waitNS.Add(waitNs)
		return
	}
	t.overflow.Add(1)
}

func (t *conflictTable) reset() {
	for i := range t.slots {
		t.slots[i].key.Store(0)
		t.slots[i].aborts.Store(0)
		t.slots[i].waitNS.Store(0)
	}
	t.overflow.Store(0)
}

// ConflictEntry is one row of the conflict attribution table.
type ConflictEntry struct {
	// Runtime is the owning source's name.
	Runtime string
	// Key is the contended key / node / cell id.
	Key uint64
	// Aborts counts attempts aborted with this key attributed.
	Aborts uint64
	// WaitNS sums the lifetimes of sampled attempts lost to this key.
	WaitNS uint64
}

// entries collects the source's nonzero attribution rows.
func (s *Source) entries(out []ConflictEntry) []ConflictEntry {
	for i := range s.conflicts.slots {
		sl := &s.conflicts.slots[i]
		k := sl.key.Load()
		if k == 0 {
			continue
		}
		a := sl.aborts.Load()
		if a == 0 {
			continue
		}
		out = append(out, ConflictEntry{
			Runtime: s.name, Key: k, Aborts: a, WaitNS: sl.waitNS.Load(),
		})
	}
	return out
}

// Conflicts returns the recorder-wide top-k contended keys, most aborted
// first (ties broken by runtime then key for determinism). k <= 0 returns
// every entry.
func (r *Recorder) Conflicts(k int) []ConflictEntry {
	if r == nil {
		return nil
	}
	var out []ConflictEntry
	for _, s := range r.sourceList() {
		out = s.entries(out)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Aborts != out[j].Aborts {
			return out[i].Aborts > out[j].Aborts
		}
		if out[i].Runtime != out[j].Runtime {
			return out[i].Runtime < out[j].Runtime
		}
		return out[i].Key < out[j].Key
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// WriteConflicts renders the top-k conflict attribution table as aligned
// text:
//
//	hot keys    algorithm   key   aborts   lost-time
func (r *Recorder) WriteConflicts(w io.Writer, k int) {
	entries := r.Conflicts(k)
	if len(entries) == 0 {
		fmt.Fprintln(w, "hot keys: none recorded")
		return
	}
	writeConflictEntries(w, entries)
}

func writeConflictEntries(w io.Writer, entries []ConflictEntry) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "hot-key\talgorithm\taborts\tlost-time\n")
	for _, e := range entries {
		fmt.Fprintf(tw, "%d\t%s\t%d\t%v\n",
			e.Key, e.Runtime, e.Aborts, nsDuration(e.WaitNS))
	}
	tw.Flush()
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed 64-bit hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
