package trace

import (
	"sync/atomic"

	"repro/internal/abort"
)

// slot is one fixed-size event record. Every field is an atomic word: the
// writer publishes with the seq word (seqlock-style), and keeping the data
// words atomic too makes concurrent reads race-free under the Go memory
// model without any lock.
//
// seq protocol: 0 = never written; odd = write in progress (or torn by a
// crash between stores); even nonzero = valid, holding the global
// publication sequence shifted left by one.
type slot struct {
	seq  atomic.Uint64
	ts   atomic.Int64
	span atomic.Uint64
	meta atomic.Uint64 // kind | reason<<8 | attempt<<16 | src<<32 | track<<48
	key  atomic.Uint64
	arg  atomic.Uint64
	_    [8]byte // pad to one 64-byte line
}

// ring is one per-P event ring: a power-of-two slot array with a monotone
// write cursor. Locals are bound to rings round-robin, so while a
// transaction runs its ring is effectively goroutine-local; after a wrap
// collision the seq protocol keeps readers consistent.
type ring struct {
	pos   atomic.Uint64
	slots []slot
	mask  uint64
}

// write claims the next slot and publishes one event. It never allocates
// and never blocks.
func (rg *ring) write(r *Recorder, ts int64, span, meta, key, arg uint64) {
	i := rg.pos.Add(1) - 1
	s := &rg.slots[i&rg.mask]
	sq := r.evSeq.Add(1)
	s.seq.Store(1) // writing: readers skip until the final store below
	s.ts.Store(ts)
	s.span.Store(span)
	s.meta.Store(meta)
	s.key.Store(key)
	s.arg.Store(arg)
	s.seq.Store(sq << 1)
}

// collect appends every currently valid event in the ring to out. A slot
// whose seq word changes (or is odd/zero) during the read is skipped: it
// was mid-write or torn.
func (rg *ring) collect(r *Recorder, out []Event) []Event {
	for i := range rg.slots {
		s := &rg.slots[i]
		v1 := s.seq.Load()
		if v1 == 0 || v1&1 == 1 {
			continue
		}
		ts := s.ts.Load()
		span := s.span.Load()
		meta := s.meta.Load()
		key := s.key.Load()
		arg := s.arg.Load()
		if s.seq.Load() != v1 {
			continue
		}
		out = append(out, Event{
			Seq:     v1 >> 1,
			TS:      ts,
			Span:    span,
			Track:   uint16(meta >> 48),
			Runtime: r.sourceName(uint16(meta >> 32)),
			Kind:    Kind(meta & 0xff),
			Reason:  abort.Reason((meta >> 8) & 0xff),
			Attempt: uint16(meta >> 16),
			Key:     key,
			Arg:     arg,
		})
	}
	return out
}

// reset invalidates every slot and rewinds the cursor.
func (rg *ring) reset() {
	for i := range rg.slots {
		rg.slots[i].seq.Store(0)
	}
	rg.pos.Store(0)
}
