// Package spin provides the low-level synchronization primitives shared by
// every transactional layer in this repository: versioned sequence locks,
// yielding exponential backoff, cache-line padding, and the contention
// counters used as the cache-miss proxy metric of Figure 5.6.
//
// All busy-waits in the repository go through Backoff, which always yields
// to the scheduler. This is mandatory for correctness when GOMAXPROCS=1
// (a spinning goroutine would otherwise starve the lock holder forever) and
// harmless on many-core machines.
package spin

import (
	"runtime"
	"sync/atomic"
)

// CacheLineSize is the assumed size of a cache line. Request slots and lock
// stripes are padded to this size to avoid false sharing, mirroring the
// cache-aligned request arrays of RTC and RInval.
const CacheLineSize = 64

// Pad occupies one cache line. Embed it between fields that are written by
// different goroutines.
type Pad [CacheLineSize]byte

// Backoff is a yielding exponential backoff. The zero value is ready to use.
//
// Wait yields at least once per call, so a loop of the form
//
//	var b spin.Backoff
//	for !try() { b.Wait() }
//
// cannot starve other goroutines even on a single-processor runtime.
type Backoff struct {
	n uint
}

// maxBackoffIters bounds the busy iterations between yields.
const maxBackoffIters = 1 << 8

// Wait spins for an exponentially growing number of iterations and then
// yields the processor.
func (b *Backoff) Wait() {
	iters := uint(1) << b.n
	if b.n < 8 {
		b.n++
	}
	for i := uint(0); i < iters && i < maxBackoffIters; i++ {
		spinHint()
	}
	runtime.Gosched()
}

// Reset restores the backoff to its initial (shortest) delay.
func (b *Backoff) Reset() { b.n = 0 }

// spinHint is a tiny delay standing in for a PAUSE instruction.
//
//go:noinline
func spinHint() {}

// SeqLock is a versioned sequence lock: even values mean unlocked, odd values
// mean locked. The version increases by one on every acquire and release, so
// readers can detect intervening writers by comparing versions. This is the
// global timestamped lock of NOrec, TML, RTC and RInval.
type SeqLock struct {
	v atomic.Uint64
}

// Load returns the current version.
func (l *SeqLock) Load() uint64 { return l.v.Load() }

// IsLocked reports whether version v denotes a held lock.
func IsLocked(v uint64) bool { return v&1 == 1 }

// TryLock attempts to acquire the lock by advancing version from the observed
// even value old to old+1. It fails if the lock changed or is held.
func (l *SeqLock) TryLock(old uint64) bool {
	if IsLocked(old) {
		return false
	}
	return l.v.CompareAndSwap(old, old+1)
}

// Lock spins (yielding) until the lock is acquired and returns the version
// it observed before acquiring (the even value that was replaced).
func (l *SeqLock) Lock(c *Counters) uint64 {
	var b Backoff
	for {
		old := l.v.Load()
		if !IsLocked(old) {
			if l.v.CompareAndSwap(old, old+1) {
				return old
			}
			c.IncCAS()
		}
		c.IncSpin()
		b.Wait()
	}
}

// Unlock releases the lock, advancing the version to the next even value.
// It panics if the lock is not held.
func (l *SeqLock) Unlock() {
	v := l.v.Load()
	if !IsLocked(v) {
		panic("spin: Unlock of unlocked SeqLock")
	}
	l.v.Store(v + 1)
}

// UnlockUnchanged releases the lock restoring the pre-acquisition version,
// for aborted critical sections that published nothing (readers holding the
// old version stay valid). It panics if the lock is not held.
func (l *SeqLock) UnlockUnchanged() {
	v := l.v.Load()
	if !IsLocked(v) {
		panic("spin: UnlockUnchanged of unlocked SeqLock")
	}
	l.v.Store(v - 1)
}

// WaitUnlocked spins (yielding) until the version is even, and returns it.
func (l *SeqLock) WaitUnlocked(c *Counters) uint64 {
	var b Backoff
	for {
		v := l.v.Load()
		if !IsLocked(v) {
			return v
		}
		c.IncSpin()
		b.Wait()
	}
}

// VersionedLock is a per-object sequence lock used on data structure nodes
// (OTB semantic locks) and on TL2 ownership records. Like SeqLock, even
// versions are unlocked; the version doubles as the validation timestamp.
type VersionedLock struct {
	v atomic.Uint64
}

// Sample returns the current version; callers validate by re-sampling.
func (l *VersionedLock) Sample() uint64 { return l.v.Load() }

// TryLock acquires the lock iff it is currently unlocked, returning the
// pre-acquisition version and whether the acquisition succeeded.
func (l *VersionedLock) TryLock() (uint64, bool) {
	v := l.v.Load()
	if IsLocked(v) {
		return v, false
	}
	if l.v.CompareAndSwap(v, v+1) {
		return v, true
	}
	return v, false
}

// Unlock releases the lock, advancing to the next even version so that any
// reader holding an older sample observes the change.
func (l *VersionedLock) Unlock() {
	v := l.v.Load()
	if !IsLocked(v) {
		panic("spin: Unlock of unlocked VersionedLock")
	}
	l.v.Store(v + 1)
}

// UnlockUnchanged releases the lock restoring the pre-acquisition version,
// for aborts that did not modify the protected object.
func (l *VersionedLock) UnlockUnchanged() {
	v := l.v.Load()
	if !IsLocked(v) {
		panic("spin: UnlockUnchanged of unlocked VersionedLock")
	}
	l.v.Store(v - 1)
}

// Counters aggregates the contention events used as the portable proxy for
// the hardware cache-miss counters of Figure 5.6: every failed CAS and every
// spin iteration on a shared lock is, on real hardware, a coherence miss.
type Counters struct {
	CASFailures atomic.Uint64 // compare-and-swap attempts that lost a race
	Spins       atomic.Uint64 // wait iterations on a held lock
}

// IncCAS records one lost compare-and-swap race. A nil receiver discards the
// event, so uninstrumented call sites can pass a nil *Counters.
func (c *Counters) IncCAS() {
	if c != nil {
		c.CASFailures.Add(1)
	}
}

// IncSpin records one wait iteration on a held lock. A nil receiver discards
// the event.
func (c *Counters) IncSpin() {
	if c != nil {
		c.Spins.Add(1)
	}
}

// Snapshot returns the current counter values.
func (c *Counters) Snapshot() (casFailures, spins uint64) {
	return c.CASFailures.Load(), c.Spins.Load()
}

// Reset zeroes the counters.
func (c *Counters) Reset() {
	c.CASFailures.Store(0)
	c.Spins.Store(0)
}
