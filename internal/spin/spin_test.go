package spin

import (
	"sync"
	"testing"
)

func TestSeqLockBasics(t *testing.T) {
	var l SeqLock
	if v := l.Load(); v != 0 || IsLocked(v) {
		t.Fatalf("fresh lock: v=%d", v)
	}
	if !l.TryLock(0) {
		t.Fatal("TryLock(0) on fresh lock should succeed")
	}
	if v := l.Load(); !IsLocked(v) || v != 1 {
		t.Fatalf("after lock: v=%d", v)
	}
	if l.TryLock(1) {
		t.Fatal("TryLock on held lock must fail")
	}
	l.Unlock()
	if v := l.Load(); IsLocked(v) || v != 2 {
		t.Fatalf("after unlock: v=%d", v)
	}
	if l.TryLock(0) {
		t.Fatal("TryLock with stale version must fail")
	}
}

func TestSeqLockUnlockPanicsWhenFree(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock of free lock should panic")
		}
	}()
	var l SeqLock
	l.Unlock()
}

func TestSeqLockMutualExclusion(t *testing.T) {
	var l SeqLock
	var ctr Counters
	shared := 0
	const workers = 8
	const each = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				l.Lock(&ctr)
				shared++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if shared != workers*each {
		t.Fatalf("shared = %d, want %d (mutual exclusion broken)", shared, workers*each)
	}
}

func TestVersionedLockRestores(t *testing.T) {
	var l VersionedLock
	v0 := l.Sample()
	if _, ok := l.TryLock(); !ok {
		t.Fatal("TryLock on free lock")
	}
	if _, ok := l.TryLock(); ok {
		t.Fatal("TryLock on held lock must fail")
	}
	l.UnlockUnchanged()
	if l.Sample() != v0 {
		t.Fatal("UnlockUnchanged must restore the version")
	}
	l.TryLock()
	l.Unlock()
	if l.Sample() == v0 {
		t.Fatal("Unlock must advance the version")
	}
	if IsLocked(l.Sample()) {
		t.Fatal("lock should be free")
	}
}

func TestWaitUnlockedReturnsEven(t *testing.T) {
	var l SeqLock
	l.TryLock(0)
	done := make(chan uint64, 1)
	go func() { done <- l.WaitUnlocked(nil) }()
	l.Unlock()
	if v := <-done; IsLocked(v) {
		t.Fatalf("WaitUnlocked returned odd version %d", v)
	}
}

func TestCountersNilSafe(t *testing.T) {
	var c *Counters
	c.IncCAS() // must not panic
	c.IncSpin()
	var real Counters
	real.IncCAS()
	real.IncSpin()
	real.IncSpin()
	casf, spins := real.Snapshot()
	if casf != 1 || spins != 2 {
		t.Fatalf("counters = %d,%d; want 1,2", casf, spins)
	}
	real.Reset()
	casf, spins = real.Snapshot()
	if casf != 0 || spins != 0 {
		t.Fatal("Reset should zero counters")
	}
}

func TestBackoffAlwaysYields(t *testing.T) {
	// A spinning goroutine using Backoff must not starve another goroutine
	// on GOMAXPROCS=1: the flag setter below only runs if Wait yields.
	done := make(chan struct{})
	flag := make(chan struct{}, 1)
	go func() {
		flag <- struct{}{}
		close(done)
	}()
	var b Backoff
	for {
		select {
		case <-done:
			return
		default:
			b.Wait()
		}
	}
}
