package spin

import "sync/atomic"

// ClockShards is the number of shards in a ShardedClock. It must be a power
// of two; timestamps issued by shard i are congruent to i modulo ClockShards,
// which makes every timestamp globally unique without a shared fetch-add.
const ClockShards = 8

// ShardedClock is a version clock split across cache-line-padded shards so
// concurrent committers do not serialize on one cache line (the TL2 global
// clock bottleneck). Each shard only issues timestamps congruent to its own
// index modulo ClockShards, so timestamps are globally unique, and every
// Tick returns a value strictly greater than any value any goroutine could
// have observed via Load before the Tick began.
//
// The price of sharding is that two concurrent Ticks on different shards are
// not ordered by the clock: TL2's "wv == rv+1 ⇒ skip read validation" fast
// path is unsound on a sharded clock and callers must always validate their
// read sets (see the correctness note in DESIGN.md).
type ShardedClock struct {
	shards [ClockShards]struct {
		v atomic.Uint64
		_ [CacheLineSize - 8]byte
	}
}

// Load returns the clock's current value: the maximum over all shards. It is
// monotone across totally ordered calls, and any timestamp published (stored
// to shared memory) before a Load began is ≤ the returned value.
func (c *ShardedClock) Load() uint64 {
	var m uint64
	for i := range c.shards {
		if v := c.shards[i].v.Load(); v > m {
			m = v
		}
	}
	return m
}

// Tick advances the clock on the shard selected by hint and returns the new
// timestamp. The result is globally unique and strictly greater than every
// clock value observable before the call. Callers pass a stable per-thread
// (per-descriptor) hint so repeat committers stay on their own cache line.
func (c *ShardedClock) Tick(hint uint32) uint64 {
	i := uint64(hint) & (ClockShards - 1)
	s := &c.shards[i].v
	for {
		old := s.Load()
		m := c.Load()
		if old > m {
			m = old
		}
		next := (m/ClockShards+1)*ClockShards + i
		if s.CompareAndSwap(old, next) {
			return next
		}
	}
}

// statShards is the slot count of a ShardedU64; a power of two.
const statShards = 8

// ShardedU64 is an event counter split across cache-line-padded slots so
// that hot paths on different goroutines do not contend on one line (the
// commit/abort statistics counters are bumped once per transaction). Load
// sums the slots; it is accurate once writers are quiescent and never
// undercounts completed Adds.
type ShardedU64 struct {
	slots [statShards]struct {
		v atomic.Uint64
		_ [CacheLineSize - 8]byte
	}
}

// Add adds n on the slot selected by hint.
func (s *ShardedU64) Add(hint uint32, n uint64) {
	s.slots[hint&(statShards-1)].v.Add(n)
}

// Inc adds one on the slot selected by hint.
func (s *ShardedU64) Inc(hint uint32) {
	s.slots[hint&(statShards-1)].v.Add(1)
}

// Load returns the sum over all slots.
func (s *ShardedU64) Load() uint64 {
	var sum uint64
	for i := range s.slots {
		sum += s.slots[i].v.Load()
	}
	return sum
}

// shardSeq backs NextShardHint.
var shardSeq atomic.Uint32

// NextShardHint returns a fresh shard hint. Transaction descriptors take one
// at creation so pooled descriptors spread across clock and counter shards.
func NextShardHint() uint32 { return shardSeq.Add(1) }
