package spin

import (
	"runtime"
	"sync"
	"testing"
)

// TestShardedClockUniqueMonotone drives concurrent Ticks on many goroutines
// and checks the two properties TL2 relies on: every issued timestamp is
// globally unique, and each goroutine's own sequence of timestamps is
// strictly increasing.
func TestShardedClockUniqueMonotone(t *testing.T) {
	const (
		goroutines = 8
		perG       = 2000
	)
	var c ShardedClock
	out := make([][]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			vals := make([]uint64, 0, perG)
			for i := 0; i < perG; i++ {
				vals = append(vals, c.Tick(uint32(g)))
			}
			out[g] = vals
		}(g)
	}
	wg.Wait()

	seen := make(map[uint64]bool, goroutines*perG)
	for g, vals := range out {
		var prev uint64
		for i, v := range vals {
			if v == 0 {
				t.Fatalf("goroutine %d tick %d: zero timestamp", g, i)
			}
			if i > 0 && v <= prev {
				t.Fatalf("goroutine %d tick %d: %d not greater than previous %d", g, i, v, prev)
			}
			prev = v
			if seen[v] {
				t.Fatalf("duplicate timestamp %d", v)
			}
			seen[v] = true
		}
	}
	if got := c.Load(); got == 0 {
		t.Fatalf("Load() = 0 after %d ticks", goroutines*perG)
	}
}

// TestShardedClockTickExceedsObserved checks Tick's ordering contract: a
// value observed via Load before a Tick is strictly less than the Tick's
// result, even when the observation happened on another goroutine's shard.
func TestShardedClockTickExceedsObserved(t *testing.T) {
	var c ShardedClock
	for hint := uint32(0); hint < 2*ClockShards; hint++ {
		before := c.Load()
		wv := c.Tick(hint)
		if wv <= before {
			t.Fatalf("Tick(%d) = %d, not greater than prior Load %d", hint, wv, before)
		}
		if wv%ClockShards != uint64(hint)%ClockShards {
			t.Fatalf("Tick(%d) = %d: residue %d, want %d", hint, wv, wv%ClockShards, uint64(hint)%ClockShards)
		}
	}
}

// TestShardedClockLoadMonotone checks Load never goes backwards while
// concurrent tickers run.
func TestShardedClockLoadMonotone(t *testing.T) {
	var c ShardedClock
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Tick(uint32(g))
				}
			}
		}(g)
	}
	var prev uint64
	for i := 0; i < 5000; i++ {
		v := c.Load()
		if v < prev {
			t.Errorf("Load went backwards: %d after %d", v, prev)
			break
		}
		prev = v
		if i%64 == 0 {
			runtime.Gosched()
		}
	}
	close(stop)
	wg.Wait()
}

// TestShardedU64 checks concurrent sums land.
func TestShardedU64(t *testing.T) {
	var s ShardedU64
	const (
		goroutines = 8
		perG       = 10000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(h uint32) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.Inc(h)
			}
		}(uint32(g))
	}
	wg.Wait()
	if got := s.Load(); got != goroutines*perG {
		t.Fatalf("Load() = %d, want %d", got, goroutines*perG)
	}
	s.Add(3, 5)
	if got := s.Load(); got != goroutines*perG+5 {
		t.Fatalf("Load() after Add = %d, want %d", got, goroutines*perG+5)
	}
}

// TestNextShardHint just checks hints vary.
func TestNextShardHint(t *testing.T) {
	a, b := NextShardHint(), NextShardHint()
	if a == b {
		t.Fatalf("consecutive hints equal: %d", a)
	}
}
