package txnet

import (
	"sync"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Wire-layer metrics. netStats aggregates across every Server in the
// process (there is almost always exactly one); the per-request observer
// (reqObs.finish) feeds the histograms with the wire trace id as the
// OpenMetrics exemplar, so a slow bucket points at one concrete trace.
var netStats struct {
	reqLatency   telemetry.Histogram
	stageLatency [trace.NumStages]telemetry.Histogram
}

// Live-server registry: the OpenMetrics emitter walks it for counters and
// gauges that live on the Server (stats block, session table, admission).
var (
	serversMu sync.Mutex
	servers   = map[*Server]struct{}{}
)

func registerServer(s *Server) {
	serversMu.Lock()
	servers[s] = struct{}{}
	serversMu.Unlock()
}

func unregisterServer(s *Server) {
	serversMu.Lock()
	delete(servers, s)
	serversMu.Unlock()
}

func liveServers() []*Server {
	serversMu.Lock()
	defer serversMu.Unlock()
	out := make([]*Server, 0, len(servers))
	for s := range servers {
		out = append(out, s)
	}
	return out
}

func init() {
	telemetry.RegisterOpenMetrics(emitNetMetrics)
}

// netCounterFamilies drives the per-server counter exposition; each value
// is summed across live servers.
var netCounterFamilies = []struct {
	name, help string
	value      func(Stats) uint64
}{
	{"txnet_conns", "Connections accepted.", func(s Stats) uint64 { return s.Conns }},
	{"txnet_requests", "Transaction requests received.", func(s Stats) uint64 { return s.Requests }},
	{"txnet_commits", "Transactions committed.", func(s Stats) uint64 { return s.Commits }},
	{"txnet_replays", "Duplicate sequence numbers answered from the exactly-once cache.", func(s Stats) uint64 { return s.Replays }},
	{"txnet_shed", "Requests shed by admission control.", func(s Stats) uint64 { return s.Shed }},
	{"txnet_deadline_exceeded", "Requests past their wire deadline on arrival.", func(s Stats) uint64 { return s.Deadline }},
	{"txnet_aborted", "Requests answered StatusAborted.", func(s Stats) uint64 { return s.Aborted }},
	{"txnet_bad_requests", "Malformed or invalid requests.", func(s Stats) uint64 { return s.BadRequests }},
	{"txnet_shutdown_responses", "Requests refused because the server was draining.", func(s Stats) uint64 { return s.ShutdownResp }},
	{"txnet_dropped_conns", "Connections dropped by injected faults.", func(s Stats) uint64 { return s.DroppedConns }},
}

// emitNetMetrics renders the txnet families: server counters, session
// lifecycle counters, live-session and admission gauges, and the request /
// per-stage latency histograms (with trace-id exemplars).
func emitNetMetrics(om *telemetry.OM) {
	live := liveServers()

	var sum Stats
	var admExecuted, admShed uint64
	var sessions int
	for _, s := range live {
		st := s.Stats()
		sum.Conns += st.Conns
		sum.Requests += st.Requests
		sum.Commits += st.Commits
		sum.Replays += st.Replays
		sum.Shed += st.Shed
		sum.Deadline += st.Deadline
		sum.Aborted += st.Aborted
		sum.BadRequests += st.BadRequests
		sum.ShutdownResp += st.ShutdownResp
		sum.DroppedConns += st.DroppedConns
		sessions += st.Sessions
		admExecuted += s.adm.executed.Load()
		admShed += s.adm.sheds.Load()
	}

	for _, fam := range netCounterFamilies {
		om.Family(fam.name, "counter", fam.help)
		om.Total(fam.name, "", fam.value(sum))
	}

	ss := SessionStatsSnapshot()
	om.Family("txnet_sessions_opened", "counter", "Sessions opened.")
	om.Total("txnet_sessions_opened", "", ss.Opened)
	om.Family("txnet_sessions_closed", "counter", "Sessions closed by explicit goodbye.")
	om.Total("txnet_sessions_closed", "", ss.Closed)
	om.Family("txnet_sessions_swept", "counter", "Sessions reclaimed by TTL expiry.")
	om.Total("txnet_sessions_swept", "", ss.Swept)
	om.Family("txnet_sessions_resumed", "counter", "Sessions resumed after reconnect.")
	om.Total("txnet_sessions_resumed", "", ss.Resumed)
	om.Family("txnet_session_resume_expired", "counter", "Resume attempts on dead sessions.")
	om.Total("txnet_session_resume_expired", "", ss.ResumeExpired)

	om.Family("txnet_sessions", "gauge", "Live sessions.")
	om.Value("txnet_sessions", "", float64(sessions))
	om.Family("txnet_admission_executed", "counter", "Requests that obtained an admission slot.")
	om.Total("txnet_admission_executed", "", admExecuted)

	om.Family("txnet_request_duration_seconds", "histogram",
		"Server-side request latency, receipt to response flush.")
	om.Histogram("txnet_request_duration_seconds", "", netStats.reqLatency.Snapshot())

	om.Family("txnet_stage_duration_seconds", "histogram",
		"Per-stage server latency (see the stage label).")
	for st := trace.Stage(0); st < trace.NumStages; st++ {
		snap := netStats.stageLatency[st].Snapshot()
		if snap.Total == 0 {
			continue
		}
		om.Histogram("txnet_stage_duration_seconds",
			`stage="`+telemetry.EscapeLabel(st.String())+`"`, snap)
	}
}
