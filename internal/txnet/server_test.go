package txnet

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos/leak"
	"repro/internal/cm"
)

// rawConn is a test helper speaking the wire protocol directly, for
// exercising server semantics the client library deliberately hides
// (stale sequence numbers, raw statuses, replays).
type rawConn struct {
	t    *testing.T
	c    net.Conn
	br   *bufio.Reader
	sess uint64
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return &rawConn{t: t, c: c, br: bufio.NewReader(c)}
}

func (r *rawConn) hello(id uint64) response {
	r.t.Helper()
	resp := r.send(appendHello(nil, id))
	if resp.status == StatusHello {
		r.sess = resp.sessionID
	}
	return resp
}

func (r *rawConn) send(payload []byte) response {
	r.t.Helper()
	if err := writeFrame(r.c, payload); err != nil {
		r.t.Fatalf("write: %v", err)
	}
	frame, err := readFrame(r.br, nil)
	if err != nil {
		r.t.Fatalf("read: %v", err)
	}
	resp, err := parseResponse(frame)
	if err != nil {
		r.t.Fatalf("parse: %v", err)
	}
	return resp
}

func (r *rawConn) txn(seq uint64, deadline time.Duration, ops ...Op) response {
	r.t.Helper()
	return r.send(appendTxn(nil, r.sess, seq, deadline, 0, 0, 0, ops))
}

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s, err := Listen("127.0.0.1:0", opts)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestServerBasicOps(t *testing.T) {
	leak.CheckCleanup(t)
	s := newTestServer(t, Options{})
	rc := dialRaw(t, s.Addr())
	if h := rc.hello(0); h.status != StatusHello || h.sessionID == 0 || h.lastSeq != 0 {
		t.Fatalf("hello: %+v", h)
	}

	// One batch across all three structures, atomically.
	resp := rc.txn(1, 0,
		Op{Code: OpAdd, Struct: 0, Key: 5},         // set add
		Op{Code: OpPut, Struct: 1, Key: 9, Val: 3}, // map put
		Op{Code: OpAdd, Struct: 2, Key: 11},        // pq add
	)
	if resp.status != StatusOK {
		t.Fatalf("batch: %+v", resp)
	}
	for i, r := range resp.results {
		if !r.OK {
			t.Fatalf("op %d not applied: %+v", i, r)
		}
	}

	resp = rc.txn(2, 0,
		Op{Code: OpContains, Struct: 0, Key: 5},
		Op{Code: OpGet, Struct: 1, Key: 9},
		Op{Code: OpRemoveMin, Struct: 2},
	)
	if resp.status != StatusOK {
		t.Fatalf("read batch: %+v", resp)
	}
	if !resp.results[0].OK {
		t.Error("set lost key 5")
	}
	if !resp.results[1].OK || resp.results[1].Out != 3 {
		t.Errorf("map: %+v", resp.results[1])
	}
	if !resp.results[2].OK || int64(resp.results[2].Out) != 11 {
		t.Errorf("pq min: %+v", resp.results[2])
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestServerExactlyOnceReplay(t *testing.T) {
	leak.CheckCleanup(t)
	s := newTestServer(t, Options{})
	rc := dialRaw(t, s.Addr())
	rc.hello(0)

	first := rc.txn(1, 0, Op{Code: OpAdd, Struct: 0, Key: 7})
	if first.status != StatusOK || !first.results[0].OK {
		t.Fatalf("first add: %+v", first)
	}
	// Retrying the same seq must replay the cached commit — results say
	// "inserted" even though the key is now present, because the response is
	// the original one, and the add must not apply twice.
	replay := rc.txn(1, 0, Op{Code: OpAdd, Struct: 0, Key: 7})
	if replay.status != StatusOK || !replay.results[0].OK {
		t.Fatalf("replay: %+v", replay)
	}
	if got := s.Stats().Replays; got != 1 {
		t.Fatalf("replays: %d want 1", got)
	}
	// A genuinely new add of the same key observes it present exactly once.
	fresh := rc.txn(2, 0, Op{Code: OpAdd, Struct: 0, Key: 7})
	if fresh.status != StatusOK || fresh.results[0].OK {
		t.Fatalf("second real add should report duplicate: %+v", fresh)
	}
}

func TestServerReplaySurvivesReconnect(t *testing.T) {
	leak.CheckCleanup(t)
	s := newTestServer(t, Options{})
	rc := dialRaw(t, s.Addr())
	rc.hello(0)
	if resp := rc.txn(1, 0, Op{Code: OpAdd, Struct: 0, Key: 1}); resp.status != StatusOK {
		t.Fatalf("add: %+v", resp)
	}
	sess := rc.sess
	rc.c.Close()

	rc2 := dialRaw(t, s.Addr())
	if h := rc2.hello(sess); h.status != StatusHello || h.sessionID != sess || h.lastSeq != 1 {
		t.Fatalf("resume: %+v", h)
	}
	replay := rc2.txn(1, 0, Op{Code: OpAdd, Struct: 0, Key: 1})
	if replay.status != StatusOK || !replay.results[0].OK {
		t.Fatalf("replay after reconnect: %+v", replay)
	}
	if s.Stats().Replays != 1 {
		t.Fatalf("replays: %d", s.Stats().Replays)
	}
}

func TestServerSeqValidation(t *testing.T) {
	leak.CheckCleanup(t)
	s := newTestServer(t, Options{})
	rc := dialRaw(t, s.Addr())
	rc.hello(0)

	if resp := rc.txn(0, 0, Op{Code: OpAdd, Struct: 0, Key: 1}); resp.status != StatusBadRequest {
		t.Fatalf("seq 0: %+v", resp)
	}
	if resp := rc.txn(5, 0, Op{Code: OpAdd, Struct: 0, Key: 1}); resp.status != StatusOK {
		t.Fatalf("seq gap should execute: %+v", resp)
	}
	if resp := rc.txn(3, 0, Op{Code: OpAdd, Struct: 0, Key: 1}); resp.status != StatusBadRequest {
		t.Fatalf("stale seq: %+v", resp)
	}
}

func TestServerUnknownSessionAndBadOps(t *testing.T) {
	leak.CheckCleanup(t)
	s := newTestServer(t, Options{})
	rc := dialRaw(t, s.Addr())

	if h := rc.hello(999); h.status != StatusBadRequest {
		t.Fatalf("unknown session hello: %+v", h)
	}
	rc2 := dialRaw(t, s.Addr())
	rc2.sess = 999
	if resp := rc2.txn(1, 0, Op{Code: OpAdd, Struct: 0, Key: 1}); resp.status != StatusBadRequest {
		t.Fatalf("unknown session txn: %+v", resp)
	}

	rc3 := dialRaw(t, s.Addr())
	rc3.hello(0)
	// Op code out of range, structure out of range, kind mismatch: all
	// BadRequest, none applied.
	for _, op := range []Op{
		{Code: numOpCodes, Struct: 0, Key: 1},
		{Code: OpAdd, Struct: 99, Key: 1},
		{Code: OpPut, Struct: 0, Key: 1}, // put on a set
	} {
		if resp := rc3.txn(1, 0, op); resp.status != StatusBadRequest {
			t.Fatalf("op %+v: %+v", op, resp)
		}
	}
	// The failed batch applied nothing and didn't advance the seq window.
	if resp := rc3.txn(1, 0, Op{Code: OpContains, Struct: 0, Key: 1}); resp.status != StatusOK || resp.results[0].OK {
		t.Fatalf("key leaked from failed batch: %+v", resp)
	}
}

// blockingStore parks Exec until released, for deadline/overload/drain
// tests. Exec returns ctx.Err() if the context dies first.
type blockingStore struct {
	mu      sync.Mutex
	waiting chan struct{} // receives one token per parked Exec
	release chan struct{}
}

func newBlockingStore() *blockingStore {
	return &blockingStore{
		waiting: make(chan struct{}, 1024),
		release: make(chan struct{}),
	}
}

func (b *blockingStore) NumStructs() int { return 1 }

func (b *blockingStore) Exec(ctx context.Context, ops []Op, res []OpResult) error {
	b.waiting <- struct{}{}
	b.mu.Lock()
	release := b.release
	b.mu.Unlock()
	select {
	case <-release:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (b *blockingStore) releaseAll() {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case <-b.release:
	default:
		close(b.release)
	}
}

func TestServerDeadline(t *testing.T) {
	leak.CheckCleanup(t)
	st := newBlockingStore()
	defer st.releaseAll()
	s := newTestServer(t, Options{Store: st})
	rc := dialRaw(t, s.Addr())
	rc.hello(0)

	resp := rc.txn(1, 5*time.Millisecond, Op{Code: OpAdd, Struct: 0, Key: 1})
	if resp.status != StatusDeadline {
		t.Fatalf("want deadline-exceeded, got %+v", resp)
	}
	if s.Stats().Deadline != 1 {
		t.Fatalf("deadline counter: %d", s.Stats().Deadline)
	}
	// The failed request left no cache entry: the same seq re-executes.
	st.releaseAll()
	if resp := rc.txn(1, 0, Op{Code: OpAdd, Struct: 0, Key: 1}); resp.status != StatusOK {
		t.Fatalf("reissue after deadline: %+v", resp)
	}
	if s.Stats().Replays != 0 {
		t.Fatalf("deadline response must not be cached (replays %d)", s.Stats().Replays)
	}
}

func TestServerOverload(t *testing.T) {
	leak.CheckCleanup(t)
	st := newBlockingStore()
	defer st.releaseAll()
	s := newTestServer(t, Options{Store: st, MaxInflight: 1, AdmissionPatience: time.Millisecond})

	occupier := dialRaw(t, s.Addr())
	occupier.hello(0)
	occDone := make(chan response, 1)
	go func() {
		occDone <- occupier.txn(1, 0, Op{Code: OpAdd, Struct: 0, Key: 1})
	}()
	<-st.waiting // the only slot is now held

	rc := dialRaw(t, s.Addr())
	rc.hello(0)
	resp := rc.txn(1, 0, Op{Code: OpAdd, Struct: 0, Key: 2})
	if resp.status != StatusOverloaded {
		t.Fatalf("want overloaded, got %+v", resp)
	}
	if resp.retryAfter < time.Millisecond {
		t.Fatalf("retry-after hint too small: %v", resp.retryAfter)
	}
	if s.Stats().Shed != 1 {
		t.Fatalf("shed counter: %d", s.Stats().Shed)
	}

	st.releaseAll()
	if occ := <-occDone; occ.status != StatusOK {
		t.Fatalf("occupier: %+v", occ)
	}
	// Slot free again: the shed request's retry goes through, same seq.
	if resp := rc.txn(1, 0, Op{Code: OpAdd, Struct: 0, Key: 2}); resp.status != StatusOK {
		t.Fatalf("retry after shed: %+v", resp)
	}
}

func TestServerSerialModeSheds(t *testing.T) {
	leak.CheckCleanup(t)
	st := newBlockingStore()
	defer st.releaseAll()
	s := newTestServer(t, Options{Store: st, MaxInflight: 1, AdmissionPatience: time.Minute})

	occupier := dialRaw(t, s.Addr())
	occupier.hello(0)
	occDone := make(chan response, 1)
	go func() {
		occDone <- occupier.txn(1, 0, Op{Code: OpAdd, Struct: 0, Key: 1})
	}()
	<-st.waiting

	// With the contention manager escalated to serial mode, a full server
	// sheds instantly instead of waiting out the (deliberately huge)
	// admission patience.
	mgr := cm.New(cm.Backoff, cm.DefaultBudget)
	mgr.Escalate()
	rc := dialRaw(t, s.Addr())
	rc.hello(0)
	start := time.Now()
	resp := rc.txn(1, 0, Op{Code: OpAdd, Struct: 0, Key: 2})
	shedIn := time.Since(start)
	mgr.Release()

	if resp.status != StatusOverloaded {
		t.Fatalf("want overloaded, got %+v", resp)
	}
	if shedIn > 10*time.Second {
		t.Fatalf("serial-mode shed waited %v (patience leak)", shedIn)
	}
	st.releaseAll()
	if occ := <-occDone; occ.status != StatusOK {
		t.Fatalf("occupier: %+v", occ)
	}
}

func TestServerGracefulDrain(t *testing.T) {
	leak.CheckCleanup(t)
	st := newBlockingStore()
	s := newTestServer(t, Options{Store: st})
	rc := dialRaw(t, s.Addr())
	rc.hello(0)

	inflight := make(chan response, 1)
	go func() {
		inflight <- rc.txn(1, 0, Op{Code: OpAdd, Struct: 0, Key: 1})
	}()
	<-st.waiting

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()
	// Give the drain a moment to close the listener, then finish the
	// in-flight transaction: it must commit and be answered.
	time.Sleep(20 * time.Millisecond)
	st.releaseAll()

	if err := <-shutdownErr; err != nil {
		t.Fatalf("graceful drain: %v", err)
	}
	if resp := <-inflight; resp.status != StatusOK {
		t.Fatalf("in-flight during drain: %+v", resp)
	}
	if _, err := net.DialTimeout("tcp", s.Addr(), 100*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

func TestServerDrainDeadline(t *testing.T) {
	leak.CheckCleanup(t)
	st := newBlockingStore()
	defer st.releaseAll()
	s := newTestServer(t, Options{Store: st})
	rc := dialRaw(t, s.Addr())
	rc.hello(0)

	inflight := make(chan response, 1)
	go func() {
		inflight <- rc.txn(1, 0, Op{Code: OpAdd, Struct: 0, Key: 1})
	}()
	<-st.waiting

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := s.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain deadline: err = %v", err)
	}
	// The straggler was cancelled and told the server is gone.
	if resp := <-inflight; resp.status != StatusShutdown {
		t.Fatalf("straggler: %+v", resp)
	}
}

func TestServerRefusesNewWorkWhileDraining(t *testing.T) {
	leak.CheckCleanup(t)
	st := newBlockingStore()
	s := newTestServer(t, Options{Store: st})
	rc := dialRaw(t, s.Addr())
	rc.hello(0)

	// A second session on its own connection, opened before the drain: a
	// session's requests serialize, so the probe must not queue behind the
	// parked transaction.
	probe := dialRaw(t, s.Addr())
	probe.hello(0)

	inflight := make(chan response, 1)
	go func() {
		inflight <- rc.txn(1, 0, Op{Code: OpAdd, Struct: 0, Key: 1})
	}()
	<-st.waiting

	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	// Let the drain flag settle; a probe racing ahead of it merely parks in
	// the store until the drain cancels it, which the loop also tolerates.
	time.Sleep(20 * time.Millisecond)
	// Existing connections stay usable during the drain, but new
	// transactions on them are refused.
	deadline := time.Now().Add(2 * time.Second)
	for seq := uint64(1); ; seq++ { // fresh seq each probe, or replays mask the drain
		resp := probe.txn(seq, 0, Op{Code: OpAdd, Struct: 0, Key: 2})
		if resp.status == StatusShutdown {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain never refused new work: %+v", resp)
		}
	}
	st.releaseAll()
	<-inflight
	<-done
}

func TestSessionSweep(t *testing.T) {
	leak.CheckCleanup(t)
	tbl := newSessionTable(time.Hour)
	a := tbl.open()
	tbl.open()
	if tbl.len() != 2 {
		t.Fatalf("len: %d", tbl.len())
	}
	if n := tbl.sweep(time.Now()); n != 0 {
		t.Fatalf("fresh sessions swept: %d", n)
	}
	if n := tbl.sweep(time.Now().Add(2 * time.Hour)); n != 2 {
		t.Fatalf("idle sessions kept: swept %d", n)
	}
	if _, ok := tbl.lookup(a.id); ok {
		t.Fatal("swept session still resolvable")
	}
}

func TestAdmissionRetryAfterClamps(t *testing.T) {
	a := newAdmission(2, time.Millisecond)
	if d := a.retryAfter(); d != time.Millisecond {
		t.Fatalf("cold hint: %v", d)
	}
	a.ewmaNs.Store(uint64(10 * time.Second))
	if d := a.retryAfter(); d != 2*time.Second {
		t.Fatalf("hot hint not clamped: %v", d)
	}
}
