// Package txnet puts the repository's transactional runtimes on a socket:
// a TCP server (cmd/txstore) exposing OTB sets, maps and priority queues —
// or any runtime wrapped in the Store interface — through a length-prefixed
// binary wire protocol with per-client transaction sessions, and a client
// library whose retries are exactly-once by construction.
//
// The design promotes the paper's Chapter 5 remote-execution split (RTC:
// clients post commit requests to dedicated server goroutines) across a real
// network boundary, where the robustness tier built underneath it — the
// contention manager's serial gate, failpoints, panic-safe rollback, and
// context cancellation — finally meets real failure modes: dropped
// connections, stalled reads, partial writes, slow clients and overload.
//
// # Sessions and exactly-once retries
//
// Every client owns a session. Each transaction request carries
// (sessionID, seq); the server serializes requests per session, executes a
// request only when seq is beyond the session's last committed sequence
// number, and caches the last committed response. A client that loses its
// connection mid-request cannot know whether the transaction committed, so
// it reconnects and resends the same seq: if the transaction had committed,
// the cached response is replayed without re-executing; if it had not, it
// executes now. Either way the transaction applies exactly once. Sequence
// numbers only advance on commit, so failed requests (deadline, shed,
// aborted) leave no state and are safe to re-issue or skip.
//
// # Deadlines, overload, drain
//
// Client context deadlines ride the wire as a remaining-time budget and
// become the server-side context for the transaction itself
// (otb.AtomicCtx / stm.AtomicCtx), so a transaction whose client has given
// up stops retrying instead of burning server cycles. The wire distinguishes
// deadline-exceeded, aborted, overloaded (with a retry-after hint) and
// shutting-down, so clients can react differently to each.
//
// Admission control bounds the number of concurrently executing
// transactions: arrivals beyond the bound wait briefly for a slot and are
// then shed with StatusOverloaded and a retry-after hint derived from
// observed commit latency; while the contention manager's serial-mode gate
// is closed (the system is already known to be thrashing), arrivals that
// miss the fast path are shed immediately rather than queued.
//
// Shutdown drains: the listener closes, in-flight transactions finish under
// the caller's drain deadline, late requests get StatusShutdown, and every
// goroutine (accept loop, connection handlers, session sweeper) exits —
// verified leak-free by internal/chaos/leak in the chaos soak test.
//
// # Failpoints
//
// Four failpoints model the network's failure modes and are exercised by the
// chaos soak test (internal/chaos/recovery proves each is survivable):
//
//	txnet.conn.drop     connection dropped after a request is read
//	txnet.read.stall    server-side read stall (slow/hostile client path)
//	txnet.write.partial connection dropped after a partial response write
//	txnet.server.stall  stall between admission and execution
package txnet
