package txnet

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frame")
	if err := writeFrame(&buf, payload); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	got, err := readFrame(&buf, nil)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("frame round-trip: got %q want %q", got, payload)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := readFrame(&buf, nil); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestTxnRoundTrip(t *testing.T) {
	ops := []Op{
		{Code: OpAdd, Struct: 0, Key: -42},
		{Code: OpPut, Struct: 1, Key: 7, Val: 1<<63 + 9},
		{Code: OpRemoveMin, Struct: 2},
	}
	b := appendTxn(nil, 17, 99, 1500*time.Millisecond, 0xabcdef0123456789, 0x42, flagResend|flagStages, ops)
	req, _, err := parseTxn(b, nil)
	if err != nil {
		t.Fatalf("parseTxn: %v", err)
	}
	if req.session != 17 || req.seq != 99 {
		t.Fatalf("session/seq: got %d/%d want 17/99", req.session, req.seq)
	}
	if req.deadline != 1500*time.Millisecond {
		t.Fatalf("deadline: got %v", req.deadline)
	}
	if req.traceID != 0xabcdef0123456789 || req.parent != 0x42 {
		t.Fatalf("trace context: got %x/%x", req.traceID, req.parent)
	}
	if req.flags != flagResend|flagStages {
		t.Fatalf("flags: got %x", req.flags)
	}
	if len(req.ops) != len(ops) {
		t.Fatalf("ops: got %d want %d", len(req.ops), len(ops))
	}
	for i := range ops {
		if req.ops[i] != ops[i] {
			t.Fatalf("op %d: got %+v want %+v", i, req.ops[i], ops[i])
		}
	}
}

func TestTxnReusesOpsBuffer(t *testing.T) {
	scratch := make([]Op, 0, 8)
	b := appendTxn(nil, 1, 1, 0, 0, 0, 0, []Op{{Code: OpContains, Key: 5}})
	_, ops, err := parseTxn(b, scratch)
	if err != nil {
		t.Fatalf("parseTxn: %v", err)
	}
	if cap(ops) != cap(scratch) {
		t.Fatalf("ops buffer not reused: cap %d want %d", cap(ops), cap(scratch))
	}
}

func TestTxnMalformed(t *testing.T) {
	good := appendTxn(nil, 1, 1, 0, 0, 0, 0, []Op{{Code: OpAdd, Key: 1}})
	cases := map[string][]byte{
		"empty":      {},
		"wrong type": append([]byte{msgHello}, good[1:]...),
		"truncated":  good[:len(good)-3],
		"extra":      append(append([]byte{}, good...), 0xAA),
	}
	for name, p := range cases {
		if _, _, err := parseTxn(p, nil); err == nil {
			t.Errorf("%s payload accepted", name)
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	b := appendHello(nil, 1234)
	if b[0] != msgHello || be64(b[1:]) != 1234 {
		t.Fatalf("hello request encoding: % x", b)
	}
	r, err := parseResponse(appendHelloResp(nil, 55, 9))
	if err != nil {
		t.Fatalf("parse hello resp: %v", err)
	}
	if r.status != StatusHello || r.sessionID != 55 || r.lastSeq != 9 {
		t.Fatalf("hello resp: %+v", r)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	results := []OpResult{{Out: 7, OK: true}, {Out: 0, OK: false}}
	r, err := parseResponse(appendOKResp(nil, 42, results, nil))
	if err != nil {
		t.Fatalf("parse ok: %v", err)
	}
	if r.status != StatusOK || r.seq != 42 || len(r.results) != 2 {
		t.Fatalf("ok resp: %+v", r)
	}
	if r.results[0] != results[0] || r.results[1] != results[1] {
		t.Fatalf("results: %+v", r.results)
	}

	r, err = parseResponse(appendErrResp(nil, StatusOverloaded, 3, 7*time.Millisecond, ""))
	if err != nil {
		t.Fatalf("parse overloaded: %v", err)
	}
	if r.status != StatusOverloaded || r.seq != 3 || r.retryAfter != 7*time.Millisecond {
		t.Fatalf("overloaded resp: %+v", r)
	}

	r, err = parseResponse(appendErrResp(nil, StatusAborted, 4, 0, "conflict on key 9"))
	if err != nil {
		t.Fatalf("parse aborted: %v", err)
	}
	if r.status != StatusAborted || r.msg != "conflict on key 9" {
		t.Fatalf("aborted resp: %+v", r)
	}

	for _, st := range []Status{StatusDeadline, StatusShutdown} {
		r, err = parseResponse(appendErrResp(nil, st, 5, 0, ""))
		if err != nil {
			t.Fatalf("parse %s: %v", st, err)
		}
		if r.status != st || r.seq != 5 {
			t.Fatalf("%s resp: %+v", st, r)
		}
	}
}

func TestResponseMalformed(t *testing.T) {
	ok := appendOKResp(nil, 1, []OpResult{{OK: true}}, nil)
	cases := map[string][]byte{
		"empty":          {},
		"short ok":       ok[:5],
		"ok extra":       append(append([]byte{}, ok...), 1),
		"unknown status": {200, 0, 0, 0, 0, 0, 0, 0, 1},
		"deadline body":  append(appendErrResp(nil, StatusDeadline, 1, 0, ""), 9),
	}
	for name, p := range cases {
		if _, err := parseResponse(p); err == nil {
			t.Errorf("%s response accepted", name)
		}
	}
}

func TestClampMillis(t *testing.T) {
	cases := []struct {
		in   time.Duration
		want uint32
	}{
		{0, 0},
		{-time.Second, 0},
		{time.Microsecond, 1}, // rounds up: a positive budget must stay a deadline
		{time.Millisecond, 1},
		{1500 * time.Microsecond, 2},
		{time.Hour * 24 * 365 * 200, 1<<32 - 1},
	}
	for _, c := range cases {
		if got := clampMillis(c.in); got != c.want {
			t.Errorf("clampMillis(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestStatusAndOpStrings(t *testing.T) {
	for st := StatusOK; st <= StatusHello; st++ {
		if strings.HasPrefix(st.String(), "status(") {
			t.Errorf("status %d has no name", byte(st))
		}
	}
	for c := OpAdd; c < numOpCodes; c++ {
		if strings.HasPrefix(c.String(), "op(") {
			t.Errorf("opcode %d has no name", uint8(c))
		}
	}
}
