package txnet

import (
	"context"
	"fmt"

	"repro/internal/mvotb"
)

// MVOTBStore serves the multi-version runtime's structures: a set (index 0)
// and a map (index 1). Batches that only read — every op is a Contains or
// Get — execute as one never-abort snapshot transaction; anything else runs
// the updater path. A read-heavy wire workload therefore gets the
// multi-version payoff (no validation, no retries) without any protocol
// change: the client cannot tell which path served it.
type MVOTBStore struct {
	rt  *mvotb.Runtime
	set *mvotb.Set
	m   *mvotb.Map
}

// NewMVOTBStore builds a store over a fresh runtime.
func NewMVOTBStore() *MVOTBStore {
	rt := mvotb.New(mvotb.Options{})
	return &MVOTBStore{rt: rt, set: rt.NewSet(256), m: rt.NewMap(256)}
}

// Stop halts the runtime's background version GC.
func (s *MVOTBStore) Stop() { s.rt.Stop() }

// NumStructs implements Store.
func (s *MVOTBStore) NumStructs() int { return 2 }

// readOnlyBatch reports whether every op resolves through the snapshot
// path.
func readOnlyBatch(ops []Op) bool {
	for _, op := range ops {
		if op.Code != OpContains && op.Code != OpGet {
			return false
		}
	}
	return true
}

// Exec implements Store.
func (s *MVOTBStore) Exec(ctx context.Context, ops []Op, res []OpResult) error {
	if err := validateOps(2, ops); err != nil {
		return err
	}
	for i, op := range ops {
		setOp := op.Code == OpAdd || op.Code == OpRemove || op.Code == OpContains
		mapOp := op.Code == OpPut || op.Code == OpGet || op.Code == OpDelete || op.Code == OpContains
		if (op.Struct == 0 && !setOp) || (op.Struct == 1 && !mapOp) {
			return fmt.Errorf("%w: op %d: %s on structure %d", ErrBadOp, i, op.Code, op.Struct)
		}
	}
	if readOnlyBatch(ops) {
		return s.rt.ReadOnlyCtx(ctx, func(x *mvotb.STx) {
			for i, op := range ops {
				if op.Struct == 0 {
					res[i] = OpResult{OK: s.set.SnapContains(x, op.Key)}
					continue
				}
				if op.Code == OpGet {
					v, ok := s.m.SnapGet(x, op.Key)
					res[i] = OpResult{Out: v, OK: ok}
				} else {
					res[i] = OpResult{OK: s.m.SnapContains(x, op.Key)}
				}
			}
		})
	}
	return s.rt.AtomicCtx(ctx, func(tx *mvotb.Tx) {
		for i, op := range ops {
			if op.Struct == 0 {
				switch op.Code {
				case OpAdd:
					res[i] = OpResult{OK: s.set.Add(tx, op.Key)}
				case OpRemove:
					res[i] = OpResult{OK: s.set.Remove(tx, op.Key)}
				default:
					res[i] = OpResult{OK: s.set.Contains(tx, op.Key)}
				}
				continue
			}
			switch op.Code {
			case OpPut:
				res[i] = OpResult{OK: s.m.Put(tx, op.Key, op.Val)}
			case OpGet:
				v, ok := s.m.Get(tx, op.Key)
				res[i] = OpResult{Out: v, OK: ok}
			case OpDelete:
				res[i] = OpResult{OK: s.m.Delete(tx, op.Key)}
			default:
				res[i] = OpResult{OK: s.m.ContainsKey(tx, op.Key)}
			}
		}
	})
}
