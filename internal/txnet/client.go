package txnet

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// clientSrc is the flight-recorder source client request spans record under.
var clientSrc = trace.S("txnet.client")

// Terminal client errors. ErrDeadline, ErrAborted and ErrUnavailable are
// definitive: the transaction did not commit (the server only caches and
// replays committed responses, so a definitive non-OK answer proves no
// effect). ErrSessionExpired means the exactly-once window was lost — the
// client cannot retry safely and surfaces the uncertainty.
var (
	ErrDeadline       = errors.New("txnet: deadline exceeded")
	ErrAborted        = errors.New("txnet: transaction aborted")
	ErrUnavailable    = errors.New("txnet: server shutting down")
	ErrSessionExpired = errors.New("txnet: session expired on server")
	ErrClosed         = errors.New("txnet: client closed")
)

// ClientOptions tune the retry behaviour. Zero fields take defaults.
type ClientOptions struct {
	// DialTimeout bounds each connection attempt (default 2s).
	DialTimeout time.Duration
	// RequestTimeout bounds each request round-trip when the context has
	// no earlier deadline, so a stalled server is detected and the request
	// retried over a fresh connection (default 30s).
	RequestTimeout time.Duration
	// RetryBase and RetryMax bound the jittered exponential reconnect
	// backoff (defaults 1ms and 250ms).
	RetryBase time.Duration
	RetryMax  time.Duration
	// Seed seeds the backoff jitter; 0 derives one from the clock.
	Seed int64
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.DialTimeout == 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.RetryBase == 0 {
		o.RetryBase = time.Millisecond
	}
	if o.RetryMax == 0 {
		o.RetryMax = 250 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = time.Now().UnixNano()
	}
	return o
}

// ClientStats counts client-side retry activity.
type ClientStats struct {
	Reconnects uint64 // connections re-established
	Resends    uint64 // requests re-sent after a connection failure
	Overloads  uint64 // StatusOverloaded responses honored
}

// Client is a connection to a txstore server holding one session. A Client
// serializes its requests (sessions are sequential by design); use one
// Client per concurrent actor.
//
// Requests are exactly-once: every transaction carries the session's next
// sequence number, and any retry after a connection failure resends the
// same number, which the server either executes (it never saw it) or
// answers from its cache (it committed and the response was lost). Do never
// double-applies and never loses a committed acknowledgement.
type Client struct {
	addr string
	o    ClientOptions

	mu      sync.Mutex
	conn    net.Conn
	br      *bufio.Reader
	session uint64
	seq     uint64
	rng     *rand.Rand
	buf     []byte
	closed  bool
	tr      *trace.Local

	stats struct {
		reconnects, resends, overloads atomic.Uint64
	}
}

// Dial connects to a txstore server and opens a fresh session. opts may be
// nil for defaults.
func Dial(addr string, opts *ClientOptions) (*Client, error) {
	o := ClientOptions{}
	if opts != nil {
		o = *opts
	}
	c := &Client{addr: addr, o: o.withDefaults(), tr: clientSrc.Local()}
	c.rng = rand.New(rand.NewSource(c.o.Seed))
	if err := c.connectLocked(context.Background()); err != nil {
		return nil, err
	}
	return c, nil
}

// Stats snapshots the client's retry counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Reconnects: c.stats.reconnects.Load(),
		Resends:    c.stats.resends.Load(),
		Overloads:  c.stats.overloads.Load(),
	}
}

// Session returns the server-assigned session ID.
func (c *Client) Session() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.session
}

// Close says goodbye and tears the connection down. The goodbye frame
// frees the server-side session immediately instead of leaving it to the
// TTL sweeper; it is best-effort — if the connection is already dead the
// session still expires by TTL as before.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.conn != nil && c.session != 0 {
		c.buf = appendBye(c.buf[:0], c.session)
		_ = c.conn.SetDeadline(time.Now().Add(time.Second))
		if err := writeFrame(c.conn, c.buf); err == nil {
			_, _ = readFrame(c.br, nil) // wait for the ack, ignore its content
		}
	}
	return c.dropLocked()
}

func (c *Client) dropLocked() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn, c.br = nil, nil
	return err
}

// connectLocked dials and runs the session handshake (resuming the existing
// session if one was ever established). Call with mu held.
func (c *Client) connectLocked(ctx context.Context) error {
	d := net.Dialer{Timeout: c.o.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return err
	}
	br := bufio.NewReader(conn)
	c.buf = appendHello(c.buf[:0], c.session)
	_ = conn.SetDeadline(time.Now().Add(c.o.DialTimeout))
	if err := writeFrame(conn, c.buf); err != nil {
		conn.Close()
		return err
	}
	frame, err := readFrame(br, nil)
	if err != nil {
		conn.Close()
		return err
	}
	_ = conn.SetDeadline(time.Time{})
	r, err := parseResponse(frame)
	if err != nil {
		conn.Close()
		return err
	}
	switch r.status {
	case StatusHello:
		c.session = r.sessionID
		c.conn, c.br = conn, br
		return nil
	case StatusBadRequest:
		conn.Close()
		return fmt.Errorf("%w (session %d)", ErrSessionExpired, c.session)
	default:
		conn.Close()
		return fmt.Errorf("txnet: unexpected hello response %s", r.status)
	}
}

// backoff sleeps the n-th jittered exponential wait, honouring ctx.
func (c *Client) backoff(ctx context.Context, n int) error {
	d := c.o.RetryBase << uint(n)
	if d > c.o.RetryMax || d <= 0 {
		d = c.o.RetryMax
	}
	c.mu.Lock()
	d = d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.mu.Unlock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stages is the per-request latency breakdown filled by DoStages: one
// duration per trace.Stage — client-side queue (encode + socket write) and
// net (round trip minus server time), plus the server-reported dispatch,
// admission, execute, WAL-append, fsync and ack stages — and the whole
// call's duration. Stages the request did not pass through stay zero.
type Stages struct {
	D       [trace.NumStages]time.Duration
	Total   time.Duration
	Resends int // same-seq resends this call needed
}

// Do executes ops as one atomic transaction and returns one result per op.
// Connection failures are retried transparently (same sequence number —
// safe by the session protocol); overload responses are retried after the
// server's hint. Definitive failures return ErrDeadline, ErrAborted,
// ErrUnavailable or ErrSessionExpired; in every such case the transaction
// did not apply.
func (c *Client) Do(ctx context.Context, ops []Op) ([]OpResult, error) {
	return c.DoStages(ctx, ops, nil)
}

// DoStages is Do with a latency breakdown: when st is non-nil the request
// asks the server for its stage block and fills st with the combined
// client+server view on return. When the flight recorder samples the
// request, a trace id is generated, propagated on the wire (surviving
// resends verbatim) and recorded with every stage span on both ends.
func (c *Client) DoStages(ctx context.Context, ops []Op, st *Stages) ([]OpResult, error) {
	t0 := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	seq := c.seq + 1
	var traceID uint64
	if c.tr.Draw() {
		// Nonzero by construction: zero means "unsampled" on the wire.
		traceID = uint64(c.rng.Int63())<<1 | 1
	}
	c.tr.SpanOpen(traceID, 0)
	defer c.tr.SpanClose()
	var flags byte
	if st != nil {
		flags |= flagStages
	}
	resends := 0
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if c.conn == nil {
			if err := c.connectLocked(ctx); err != nil {
				if errors.Is(err, ErrSessionExpired) || ctx.Err() != nil {
					return nil, err
				}
				c.mu.Unlock()
				berr := c.backoff(ctx, attempt)
				c.mu.Lock()
				if c.closed {
					return nil, ErrClosed
				}
				if berr != nil {
					return nil, berr
				}
				continue
			}
			c.stats.reconnects.Add(1)
		}
		r, queueNS, netNS, err := c.roundTrip(ctx, seq, ops, traceID, flags)
		if err != nil {
			// Connection-level failure mid-request: the server may or may
			// not have committed. Reconnect and resend the same seq; the
			// session cache disambiguates. The resend keeps the original
			// trace id so the retried commit stays one trace.
			_ = c.dropLocked()
			c.stats.resends.Add(1)
			resends++
			flags |= flagResend
			c.tr.Resend(resends)
			c.mu.Unlock()
			berr := c.backoff(ctx, attempt)
			c.mu.Lock()
			if c.closed {
				return nil, ErrClosed
			}
			if berr != nil {
				return nil, berr
			}
			continue
		}
		switch r.status {
		case StatusOK:
			c.seq = seq
			var serverNS int64
			for _, d := range r.stages {
				serverNS += d
			}
			if wireNS := netNS - serverNS; wireNS > 0 {
				netNS = wireNS
			}
			c.tr.Stage(trace.StageQueue, queueNS)
			c.tr.Stage(trace.StageNet, netNS)
			if st != nil {
				*st = Stages{Total: time.Since(t0), Resends: resends}
				st.D[trace.StageQueue] = time.Duration(queueNS)
				st.D[trace.StageNet] = time.Duration(netNS)
				for i, d := range r.stages {
					if d > 0 {
						st.D[i] = time.Duration(d)
					}
				}
			}
			return r.results, nil
		case StatusOverloaded:
			c.stats.overloads.Add(1)
			c.mu.Unlock()
			werr := sleepCtx(ctx, c.jitter(r.retryAfter))
			c.mu.Lock()
			if c.closed {
				return nil, ErrClosed
			}
			if werr != nil {
				return nil, werr
			}
			continue
		case StatusDeadline:
			c.seq = seq
			return nil, ErrDeadline
		case StatusAborted:
			c.seq = seq
			return nil, fmt.Errorf("%w: %s", ErrAborted, r.msg)
		case StatusShutdown:
			c.seq = seq
			return nil, ErrUnavailable
		case StatusBadRequest:
			c.seq = seq
			if r.msg == "unknown session" {
				return nil, ErrSessionExpired
			}
			return nil, fmt.Errorf("txnet: bad request: %s", r.msg)
		default:
			return nil, fmt.Errorf("txnet: unexpected response %s", r.status)
		}
	}
}

// jitter spreads a server retry hint over [hint/2, hint] so shed clients do
// not return in one synchronized wave.
func (c *Client) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return c.o.RetryBase
	}
	return d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
}

// roundTrip sends one txn frame and reads its response, returning the
// client-side stage timings: queueNS (encode + socket write) and netNS (the
// wait for the response frame, which the caller narrows to wire time by
// subtracting the server-reported stages). Timing is skipped — both return
// zero — when neither the trace span nor a stage breakdown wants it. Call
// with mu held.
func (c *Client) roundTrip(ctx context.Context, seq uint64, ops []Op,
	traceID uint64, flags byte) (r response, queueNS, netNS int64, err error) {
	var deadline time.Duration
	ioDeadline := time.Now().Add(c.o.RequestTimeout)
	if d, ok := ctx.Deadline(); ok {
		deadline = time.Until(d)
		if deadline <= 0 {
			return response{}, 0, 0, context.DeadlineExceeded
		}
		if d.Before(ioDeadline) {
			// Give the server's deadline response a moment to arrive before
			// the socket gives up.
			ioDeadline = d.Add(100 * time.Millisecond)
		}
	}
	timed := traceID != 0 || flags&flagStages != 0
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	c.buf = appendTxn(c.buf[:0], c.session, seq, deadline, traceID, traceID, flags, ops)
	_ = c.conn.SetDeadline(ioDeadline)
	if err := writeFrame(c.conn, c.buf); err != nil {
		return response{}, 0, 0, err
	}
	var sent time.Time
	if timed {
		sent = time.Now()
		queueNS = sent.Sub(t0).Nanoseconds()
	}
	frame, err := readFrame(c.br, nil)
	if err != nil {
		return response{}, 0, 0, err
	}
	if timed {
		netNS = time.Since(sent).Nanoseconds()
	}
	_ = c.conn.SetDeadline(time.Time{})
	r, err = parseResponse(frame)
	if err != nil {
		return response{}, 0, 0, err
	}
	if r.status != StatusHello && r.seq != seq {
		return response{}, 0, 0, fmt.Errorf("txnet: response for seq %d, want %d", r.seq, seq)
	}
	return r, queueNS, netNS, nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Convenience single-op helpers over the default store layout (set at
// index 0, map at 1, PQ at 2, as built by NewOTBStore).

// Do1 executes a single-op transaction.
func (c *Client) Do1(ctx context.Context, op Op) (OpResult, error) {
	res, err := c.Do(ctx, []Op{op})
	if err != nil {
		return OpResult{}, err
	}
	return res[0], nil
}

// SetAdd adds key to the set structure at index st.
func (c *Client) SetAdd(ctx context.Context, st uint32, key int64) (bool, error) {
	r, err := c.Do1(ctx, Op{Code: OpAdd, Struct: st, Key: key})
	return r.OK, err
}

// SetRemove removes key from the set structure at index st.
func (c *Client) SetRemove(ctx context.Context, st uint32, key int64) (bool, error) {
	r, err := c.Do1(ctx, Op{Code: OpRemove, Struct: st, Key: key})
	return r.OK, err
}

// SetContains reports membership of key in the set structure at index st.
func (c *Client) SetContains(ctx context.Context, st uint32, key int64) (bool, error) {
	r, err := c.Do1(ctx, Op{Code: OpContains, Struct: st, Key: key})
	return r.OK, err
}

// MapPut stores key→val in the map structure at index st, reporting whether
// a new entry was created.
func (c *Client) MapPut(ctx context.Context, st uint32, key int64, val uint64) (bool, error) {
	r, err := c.Do1(ctx, Op{Code: OpPut, Struct: st, Key: key, Val: val})
	return r.OK, err
}

// MapGet reads key from the map structure at index st.
func (c *Client) MapGet(ctx context.Context, st uint32, key int64) (uint64, bool, error) {
	r, err := c.Do1(ctx, Op{Code: OpGet, Struct: st, Key: key})
	return r.Out, r.OK, err
}

// PQAdd inserts key into the priority queue at index st.
func (c *Client) PQAdd(ctx context.Context, st uint32, key int64) (bool, error) {
	r, err := c.Do1(ctx, Op{Code: OpAdd, Struct: st, Key: key})
	return r.OK, err
}

// PQRemoveMin pops the minimum of the priority queue at index st.
func (c *Client) PQRemoveMin(ctx context.Context, st uint32) (int64, bool, error) {
	r, err := c.Do1(ctx, Op{Code: OpRemoveMin, Struct: st})
	return int64(r.Out), r.OK, err
}
