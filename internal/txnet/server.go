package txnet

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos/failpoint"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// serverSrc is the flight-recorder source server request spans record under.
var serverSrc = trace.S("txnet.server")

// Network failpoints. All four are recovered at the connection level: an
// injected panic drops that connection (the fault a real network inflicts)
// and the server keeps serving everyone else. Real panics stay loud.
var (
	// fpConnDrop fires after a request frame is read, before dispatch —
	// the connection dies with a request received but unanswered, forcing
	// the client down the reconnect-and-retry path.
	fpConnDrop = failpoint.New("txnet.conn.drop")
	// fpReadStall fires before each frame read (delay stalls the server's
	// read path, modeling a slow or hostile client; panic drops the conn).
	fpReadStall = failpoint.New("txnet.read.stall")
	// fpWritePartial fires after the first half of a response has been
	// flushed to the wire — a panic here leaves the client with a
	// truncated frame, exercising its resynchronization via reconnect.
	fpWritePartial = failpoint.New("txnet.write.partial")
	// fpServerStall fires between admission and execution (delay widens
	// the window where a committed-but-unanswered transaction exists).
	fpServerStall = failpoint.New("txnet.server.stall")
)

// Options configure a Server. The zero value serves the default OTBStore
// with production-shaped limits.
type Options struct {
	// Store executes transactions; nil means NewOTBStore().
	Store Store
	// MaxInflight bounds concurrently executing transactions (admission
	// slots). 0 means DefaultMaxInflight.
	MaxInflight int
	// AdmissionPatience is how long an arrival waits for a slot before
	// being shed. 0 means DefaultAdmissionPatience.
	AdmissionPatience time.Duration
	// SessionTTL expires idle sessions (and their exactly-once caches).
	// 0 means DefaultSessionTTL.
	SessionTTL time.Duration
	// Durable, when set, makes commits crash-recoverable: the server
	// adopts the recovered store and session table from OpenDurable
	// (overriding Store) and acknowledges mutating transactions only
	// after the write-ahead log has accepted them.
	Durable *Durable
	// SlowThreshold, when positive, logs a structured line with the full
	// per-stage breakdown for every request whose total service time
	// (receipt to response flushed) reaches it.
	SlowThreshold time.Duration
	// SlowWriter receives slow-request lines (default os.Stderr).
	SlowWriter io.Writer
}

// Defaults for Options zero fields.
const (
	DefaultMaxInflight       = 128
	DefaultAdmissionPatience = 5 * time.Millisecond
	DefaultSessionTTL        = 5 * time.Minute
)

// Stats is a point-in-time snapshot of server counters.
type Stats struct {
	Conns        uint64 // connections accepted
	Requests     uint64 // transaction requests received
	Commits      uint64 // transactions committed
	Replays      uint64 // duplicate seq answered from the session cache
	Shed         uint64 // requests shed by admission control
	Deadline     uint64 // requests that exceeded their wire deadline
	Aborted      uint64 // requests answered StatusAborted
	BadRequests  uint64 // malformed or invalid requests
	ShutdownResp uint64 // requests refused because the server was draining
	DroppedConns uint64 // connections dropped by injected faults
	Sessions     int    // live sessions
}

// Server is a running txstore endpoint. Create with Listen or Serve; stop
// with Shutdown (graceful drain) or Close.
type Server struct {
	opts  Options
	store Store
	dur   *Durable // nil unless Options.Durable
	ln    net.Listener
	adm   *admission
	sess  *sessionTable

	ctx    context.Context // cancelled when drain gives up on in-flight work
	cancel context.CancelFunc

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool // set by closeConns; late-accepted conns are refused

	inflightMu sync.Mutex // guards draining vs. reqWG.Add
	reqWG      sync.WaitGroup
	draining   bool

	shutdownOnce sync.Once
	shutdownErr  error
	done         chan struct{} // closed when Shutdown finishes
	connWG       sync.WaitGroup

	slowNS int64     // slow-request threshold (0 = off)
	slow   io.Writer // slow-request sink

	stats struct {
		conns, requests, commits, replays atomic.Uint64
		shed, deadline, aborted, badReq   atomic.Uint64
		shutdownResp, droppedConns        atomic.Uint64
	}
}

// Listen starts a server on addr ("host:port", ":0" picks a port).
func Listen(addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Serve(ln, opts), nil
}

// Serve starts a server on an existing listener, which it owns from now on.
func Serve(ln net.Listener, opts Options) *Server {
	if opts.Store == nil && opts.Durable == nil {
		opts.Store = NewOTBStore()
	}
	if opts.MaxInflight == 0 {
		opts.MaxInflight = DefaultMaxInflight
	}
	if opts.AdmissionPatience == 0 {
		opts.AdmissionPatience = DefaultAdmissionPatience
	}
	if opts.SessionTTL == 0 {
		opts.SessionTTL = DefaultSessionTTL
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:   opts,
		store:  opts.Store,
		ln:     ln,
		adm:    newAdmission(opts.MaxInflight, opts.AdmissionPatience),
		sess:   newSessionTable(opts.SessionTTL),
		ctx:    ctx,
		cancel: cancel,
		conns:  make(map[net.Conn]struct{}),
		done:   make(chan struct{}),
	}
	if opts.Durable != nil {
		// Durable mode owns both the store (recovery already rebuilt it)
		// and the session table (resumed sessions carry their caches).
		s.dur = opts.Durable
		s.store = opts.Durable.store
		s.sess = opts.Durable.adoptSessions(opts.SessionTTL)
	}
	if opts.SlowThreshold > 0 {
		s.slowNS = opts.SlowThreshold.Nanoseconds()
		s.slow = opts.SlowWriter
		if s.slow == nil {
			s.slow = os.Stderr
		}
	}
	registerServer(s)
	s.connWG.Add(2)
	go s.acceptLoop()
	go s.sweepLoop()
	return s
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	return Stats{
		Conns:        s.stats.conns.Load(),
		Requests:     s.stats.requests.Load(),
		Commits:      s.stats.commits.Load(),
		Replays:      s.stats.replays.Load(),
		Shed:         s.stats.shed.Load(),
		Deadline:     s.stats.deadline.Load(),
		Aborted:      s.stats.aborted.Load(),
		BadRequests:  s.stats.badReq.Load(),
		ShutdownResp: s.stats.shutdownResp.Load(),
		DroppedConns: s.stats.droppedConns.Load(),
		Sessions:     s.sess.len(),
	}
}

// Shutdown drains gracefully: stop accepting, let in-flight transactions
// finish until ctx expires, then cancel whatever is left (in-flight
// transactions return Canceled and answer StatusShutdown), close every
// connection, and wait for all server goroutines to exit. It returns ctx's
// error if the drain deadline was hit, nil on a clean drain. Subsequent
// calls wait for the first and return its result.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdownOnce.Do(func() {
		s.inflightMu.Lock()
		s.draining = true
		s.inflightMu.Unlock()
		_ = s.ln.Close()

		drained := make(chan struct{})
		go func() {
			s.reqWG.Wait()
			close(drained)
		}()
		select {
		case <-drained:
		case <-ctx.Done():
			s.shutdownErr = ctx.Err()
		}
		// Cancel stragglers (no-op when drained) and give them a moment to
		// write their StatusShutdown responses before yanking connections.
		s.cancel()
		if s.shutdownErr != nil {
			select {
			case <-drained:
			case <-time.After(250 * time.Millisecond):
			}
		}
		s.closeConns()
		s.connWG.Wait()
		s.cancel()
		if s.dur != nil {
			if cerr := s.dur.Close(); cerr != nil && s.shutdownErr == nil {
				s.shutdownErr = cerr
			}
		}
		unregisterServer(s)
		close(s.done)
	})
	<-s.done
	return s.shutdownErr
}

// Close is Shutdown with a one-second drain budget.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

func (s *Server) closeConns() {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	s.closed = true
	for c := range s.conns {
		_ = c.Close()
	}
}

// acceptLoop admits connections until the listener closes.
func (s *Server) acceptLoop() {
	defer s.connWG.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed (Shutdown) or fatal; either way stop
		}
		s.connMu.Lock()
		if s.closed {
			// Raced with closeConns: this conn would be served but never
			// torn down, hanging the drain. Refuse it instead.
			s.connMu.Unlock()
			_ = c.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.connMu.Unlock()
		s.stats.conns.Add(1)
		s.connWG.Add(1)
		go s.handleConn(c)
	}
}

// sweepLoop expires idle sessions until shutdown.
func (s *Server) sweepLoop() {
	defer s.connWG.Done()
	tick := time.NewTicker(30 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case now := <-tick.C:
			s.sess.sweep(now)
		}
	}
}

// errConnDropped signals the handler to close the connection after an
// injected fault.
var errConnDropped = errors.New("txnet: connection dropped by failpoint")

// handleConn serves one connection: frames in, frames out, strictly in
// order. Injected failpoint panics anywhere in the request path drop the
// connection (the client's retry protocol makes that safe); real panics
// propagate and crash the test/process — a protocol bug must stay loud.
func (s *Server) handleConn(c net.Conn) {
	defer s.connWG.Done()
	defer func() {
		_ = c.Close()
		s.connMu.Lock()
		delete(s.conns, c)
		s.connMu.Unlock()
	}()
	// handleFrame recovers injected panics on the dispatch path; this catches
	// the one place outside it (the read-stall hit below), so a panic-armed
	// txnet.read.stall also drops the connection instead of the process.
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		if _, injected := p.(*failpoint.PanicValue); injected {
			s.stats.droppedConns.Add(1)
			return
		}
		panic(p)
	}()
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	tl := serverSrc.Local()
	var (
		buf  []byte
		ops  []Op
		resp []byte
	)
	for {
		fpReadStall.Hit()
		frame, err := readFrame(br, buf)
		if err != nil {
			return
		}
		buf = frame
		ops, err = s.handleFrame(bw, tl, frame, ops, &resp)
		if err != nil {
			if errors.Is(err, errConnDropped) {
				s.stats.droppedConns.Add(1)
			}
			return
		}
	}
}

// handleFrame dispatches one request and writes its response. It recovers
// injected failpoint panics into errConnDropped.
func (s *Server) handleFrame(bw *bufio.Writer, tl *trace.Local, frame []byte, ops []Op, resp *[]byte) (opsOut []Op, err error) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		if _, injected := p.(*failpoint.PanicValue); injected {
			opsOut, err = ops, errConnDropped
			return
		}
		panic(p)
	}()
	if len(frame) == 0 {
		return ops, fmt.Errorf("txnet: empty frame")
	}
	fpConnDrop.Hit()
	switch frame[0] {
	case msgHello:
		if len(frame) != 9 {
			return ops, fmt.Errorf("txnet: malformed hello")
		}
		var sess *session
		if id := be64(frame[1:]); id == 0 {
			sess = s.sess.open()
			if s.dur != nil {
				// The grant must survive a crash: a client holding an
				// ID the server forgot loses its exactly-once window.
				s.dur.logSessionOpen(sess.id)
			}
		} else {
			var ok bool
			if sess, ok = s.sess.lookup(id); !ok {
				sessStats.resumeExpired.Add(1)
				*resp = appendErrResp((*resp)[:0], StatusBadRequest, 0, 0, "unknown session")
				return ops, s.writeResp(bw, *resp)
			}
			sessStats.resumed.Add(1)
		}
		*resp = appendHelloResp((*resp)[:0], sess.id, sess.lastSeq)
		return ops, s.writeResp(bw, *resp)
	case msgBye:
		if len(frame) != 9 {
			return ops, fmt.Errorf("txnet: malformed bye")
		}
		if id := be64(frame[1:]); id != 0 && s.sess.remove(id) {
			sessStats.closed.Add(1)
			if s.dur != nil {
				s.dur.logSessionClose(id)
			}
		}
		*resp = appendByeResp((*resp)[:0])
		return ops, s.writeResp(bw, *resp)
	case msgTxn:
		req, ops, perr := parseTxn(frame, ops)
		if perr != nil {
			s.stats.badReq.Add(1)
			*resp = appendErrResp((*resp)[:0], StatusBadRequest, 0, 0, perr.Error())
			if werr := s.writeResp(bw, *resp); werr != nil {
				return ops, werr
			}
			return ops, nil
		}
		s.stats.requests.Add(1)
		var obs reqObs
		s.beginObs(&obs, tl, &req)
		// An injected panic between here and finish leaves the span open;
		// abandon (a no-op after finish) closes it on that path.
		defer obs.abandon()
		*resp = s.execTxn(req, (*resp)[:0], &obs)
		werr := s.writeResp(bw, *resp)
		obs.finish(s, &req, Status((*resp)[0]), werr == nil)
		return ops, werr
	default:
		return ops, fmt.Errorf("txnet: unknown message type %d", frame[0])
	}
}

// execTxn runs one transaction request through the session, admission and
// store layers, returning the encoded response. o records where the
// request's time went (a disarmed o makes every stamp one branch).
func (s *Server) execTxn(req txnReq, resp []byte, o *reqObs) []byte {
	sess, ok := s.sess.lookup(req.session)
	if !ok {
		s.stats.badReq.Add(1)
		return appendErrResp(resp, StatusBadRequest, req.seq, 0, "unknown session")
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	o.stamp(trace.StageDispatch)
	switch {
	case req.seq == sess.lastSeq && sess.lastResp != nil:
		// Retry of the committed transaction: replay the cached verdict.
		s.stats.replays.Add(1)
		o.replay = true
		return append(resp, sess.lastResp...)
	case req.seq == 0:
		s.stats.badReq.Add(1)
		return appendErrResp(resp, StatusBadRequest, req.seq, 0, "seq must be positive")
	case req.seq < sess.lastSeq:
		s.stats.badReq.Add(1)
		return appendErrResp(resp, StatusBadRequest, req.seq, 0,
			fmt.Sprintf("stale seq %d (session at %d)", req.seq, sess.lastSeq))
	}

	// Admission: enter the in-flight set only if the server is not
	// draining, so Shutdown's drain wait covers every executing request.
	s.inflightMu.Lock()
	if s.draining {
		s.inflightMu.Unlock()
		s.stats.shutdownResp.Add(1)
		return appendErrResp(resp, StatusShutdown, req.seq, 0, "")
	}
	s.reqWG.Add(1)
	s.inflightMu.Unlock()
	defer s.reqWG.Done()

	admitted := s.adm.acquire(s.ctx)
	o.stamp(trace.StageAdmission)
	if !admitted {
		if s.ctx.Err() != nil {
			s.stats.shutdownResp.Add(1)
			return appendErrResp(resp, StatusShutdown, req.seq, 0, "")
		}
		s.stats.shed.Add(1)
		return appendErrResp(resp, StatusOverloaded, req.seq, s.adm.retryAfter(), "")
	}
	start := time.Now()
	defer func() { s.adm.release(time.Since(start)) }()

	fpServerStall.Hit()

	ctx := s.ctx
	var cancel context.CancelFunc
	if req.deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, req.deadline)
		defer cancel()
	}
	results := make([]OpResult, len(req.ops))
	var err error
	if s.dur != nil {
		// Durable commit path: execute, log, ack — commitTxn returns only
		// store errors (log failures crash via walFatal, never ack).
		resp, err = s.dur.commitTxn(ctx, sess, req, results, resp, o)
		if err == nil {
			s.stats.commits.Add(1)
			return resp
		}
	} else {
		err = s.store.Exec(ctx, req.ops, results)
		o.stamp(trace.StageExecute)
		if err == nil {
			s.stats.commits.Add(1)
			resp = appendOKResp(resp, req.seq, results, o.wireStages(req))
			// Commit and cache move together under the session lock: from here
			// on, a retry of req.seq replays this exact response.
			sess.lastSeq = req.seq
			sess.lastResp = append(sess.lastResp[:0], resp...)
			return resp
		}
	}
	switch {
	case errors.Is(err, ErrBadOp):
		s.stats.badReq.Add(1)
		return appendErrResp(resp, StatusBadRequest, req.seq, 0, err.Error())
	case errors.Is(err, context.DeadlineExceeded) && req.deadline > 0 && s.ctx.Err() == nil:
		s.stats.deadline.Add(1)
		return appendErrResp(resp, StatusDeadline, req.seq, 0, "")
	case s.ctx.Err() != nil:
		s.stats.shutdownResp.Add(1)
		return appendErrResp(resp, StatusShutdown, req.seq, 0, "")
	default:
		s.stats.aborted.Add(1)
		return appendErrResp(resp, StatusAborted, req.seq, 0, err.Error())
	}
}

// writeResp frames and flushes one response. With txnet.write.partial armed
// the header (promising the full length) and first half of the payload are
// flushed to the wire before the failpoint fires, so an injected panic
// leaves the client holding a truncated frame — the nastiest network fault:
// bytes arrived, then silence.
func (s *Server) writeResp(bw *bufio.Writer, payload []byte) error {
	if fpWritePartial.Armed() && len(payload) > 1 {
		var hdr [4]byte
		hdr[0] = byte(len(payload) >> 24)
		hdr[1] = byte(len(payload) >> 16)
		hdr[2] = byte(len(payload) >> 8)
		hdr[3] = byte(len(payload))
		half := len(payload) / 2
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := bw.Write(payload[:half]); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		fpWritePartial.Hit()
		if _, err := bw.Write(payload[half:]); err != nil {
			return err
		}
		return bw.Flush()
	}
	if err := writeFrame(bw, payload); err != nil {
		return err
	}
	return bw.Flush()
}

// reqObs carries one request's observability state: the open trace span,
// per-stage wall-clock stamps, and the replay/resend markers. Its zero
// value is fully disarmed — every stamp collapses to one predictable branch
// — so untraced requests on a server with no slow log and disabled
// telemetry pay nothing (guarded by the trace_bench_test overhead bench).
type reqObs struct {
	tl      *trace.Local
	traceID uint64
	armed   bool
	done    bool
	replay  bool
	start   time.Time
	mark    time.Time
	stages  [trace.NumStages]int64
}

// beginObs arms the observer when anyone wants the data: the wire carried a
// trace id (the client's sampling verdict), the client asked for a stage
// block, the server logs slow requests, or telemetry is recording.
func (s *Server) beginObs(o *reqObs, tl *trace.Local, req *txnReq) {
	if req.traceID != 0 {
		o.traceID = req.traceID
		tl.SpanOpen(req.traceID, req.parent)
		if tl.SpanActive() {
			o.tl = tl
			if req.flags&flagResend != 0 {
				tl.Resend(0)
			}
		}
	}
	o.armed = o.tl != nil || o.traceID != 0 || s.slowNS > 0 ||
		req.flags&flagStages != 0 || telemetry.Default.Enabled()
	if o.armed {
		now := time.Now()
		o.start, o.mark = now, now
	}
}

// stamp closes the stage that began at the previous stamp (or at receipt).
func (o *reqObs) stamp(st trace.Stage) {
	if !o.armed {
		return
	}
	now := time.Now()
	if d := now.Sub(o.mark).Nanoseconds(); d > 0 {
		o.stages[st] += d
		o.tl.Stage(st, d)
	}
	o.mark = now
}

// rearm resets the stage clock without recording anything, so untracked
// work between two stages (snapshotting, bookkeeping) is not billed to the
// next stage.
func (o *reqObs) rearm() {
	if o.armed {
		o.mark = time.Now()
	}
}

// wireStages returns the stage array for the OK response's wire block when
// the request asked for one (flagStages), nil otherwise. The block misses
// the ack stage by construction — the response is encoded before it is
// written — but the server's own histograms and trace spans include it.
func (o *reqObs) wireStages(req txnReq) *[trace.NumStages]int64 {
	if o.armed && req.flags&flagStages != 0 {
		return &o.stages
	}
	return nil
}

// finish stamps the ack stage, feeds the wire-layer histograms (with the
// trace id as exemplar), emits the slow-request line when warranted, and
// closes the span. flushed is false when the response write failed.
func (o *reqObs) finish(s *Server, req *txnReq, st Status, flushed bool) {
	if o.done {
		return
	}
	o.done = true
	if !o.armed {
		return
	}
	if flushed {
		o.stamp(trace.StageAck)
	}
	total := time.Since(o.start).Nanoseconds()
	netStats.reqLatency.ObserveEx(total, o.traceID)
	for i, d := range o.stages {
		if d > 0 {
			netStats.stageLatency[i].ObserveEx(d, o.traceID)
		}
	}
	if s.slowNS > 0 && total >= s.slowNS {
		s.logSlow(req, st, total, o)
	}
	o.tl.SpanClose()
}

// abandon closes a span finish never reached (injected-panic paths).
func (o *reqObs) abandon() {
	if !o.done {
		o.done = true
		o.tl.SpanClose()
	}
}

// logSlow writes one structured (logfmt) slow-request line with the full
// stage breakdown, e.g.:
//
//	txnet slow-request trace=4f1e... session=3 seq=17 status=ok total=12ms
//	  dispatch=1µs admission=8ms execute=2ms wal-append=40µs fsync=1.9ms ack=3µs
func (s *Server) logSlow(req *txnReq, st Status, totalNS int64, o *reqObs) {
	var b strings.Builder
	fmt.Fprintf(&b, "txnet slow-request trace=%016x session=%d seq=%d status=%s total=%v",
		o.traceID, req.session, req.seq, st, time.Duration(totalNS))
	if req.flags&flagResend != 0 {
		b.WriteString(" resend=true")
	}
	if o.replay {
		b.WriteString(" replay=true")
	}
	for i, d := range o.stages {
		if d > 0 {
			fmt.Fprintf(&b, " %s=%v", trace.Stage(i), time.Duration(d))
		}
	}
	b.WriteByte('\n')
	_, _ = io.WriteString(s.slow, b.String())
}

func be64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}
