package txnet

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/chaos/failpoint"
	"repro/internal/chaos/leak"
)

func newTestClient(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr, &ClientOptions{Seed: 1})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClientBasic(t *testing.T) {
	leak.CheckCleanup(t)
	s := newTestServer(t, Options{})
	c := newTestClient(t, s.Addr())
	ctx := context.Background()

	if ok, err := c.SetAdd(ctx, 0, 5); err != nil || !ok {
		t.Fatalf("add: %v %v", ok, err)
	}
	if ok, err := c.SetContains(ctx, 0, 5); err != nil || !ok {
		t.Fatalf("contains: %v %v", ok, err)
	}
	if ok, err := c.MapPut(ctx, 1, 9, 77); err != nil || !ok {
		t.Fatalf("put: %v %v", ok, err)
	}
	if v, ok, err := c.MapGet(ctx, 1, 9); err != nil || !ok || v != 77 {
		t.Fatalf("get: %v %v %v", v, ok, err)
	}
	if ok, err := c.PQAdd(ctx, 2, 3); err != nil || !ok {
		t.Fatalf("pq add: %v %v", ok, err)
	}
	if k, ok, err := c.PQRemoveMin(ctx, 2); err != nil || !ok || k != 3 {
		t.Fatalf("pq remove-min: %v %v %v", k, ok, err)
	}

	// Multi-op batch through Do directly.
	res, err := c.Do(ctx, []Op{
		{Code: OpAdd, Struct: 0, Key: 6},
		{Code: OpContains, Struct: 0, Key: 5},
	})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if !res[0].OK || !res[1].OK {
		t.Fatalf("batch results: %+v", res)
	}
}

func TestClientReconnectAfterConnDrop(t *testing.T) {
	leak.CheckCleanup(t)
	s := newTestServer(t, Options{})
	c := newTestClient(t, s.Addr())
	ctx := context.Background()

	// The next request frame read by the server kills its connection before
	// dispatch — the request was never executed, so the client's resend of
	// the same seq executes it exactly once.
	defer failpoint.Arm("txnet.conn.drop", failpoint.Spec{Action: failpoint.Panic, Nth: 1})()
	if ok, err := c.SetAdd(ctx, 0, 42); err != nil || !ok {
		t.Fatalf("add across drop: %v %v", ok, err)
	}
	if c.Stats().Resends == 0 || c.Stats().Reconnects == 0 {
		t.Fatalf("expected a resend over a fresh connection: %+v", c.Stats())
	}
	st := s.Stats()
	if st.DroppedConns != 1 {
		t.Fatalf("dropped conns: %d", st.DroppedConns)
	}
	if st.Commits != 1 || st.Replays != 0 {
		t.Fatalf("drop-before-dispatch must execute once, no replay: %+v", st)
	}
}

func TestClientRetryAfterPartialWrite(t *testing.T) {
	leak.CheckCleanup(t)
	s := newTestServer(t, Options{})
	c := newTestClient(t, s.Addr())
	ctx := context.Background()

	// The transaction commits, but its response is cut off mid-frame. The
	// client cannot tell "lost request" from "lost response" — only the
	// session cache can, by replaying the committed verdict.
	defer failpoint.Arm("txnet.write.partial", failpoint.Spec{Action: failpoint.Panic, Nth: 1})()
	ok, err := c.SetAdd(ctx, 0, 42)
	if err != nil || !ok {
		t.Fatalf("add across partial write: %v %v", ok, err)
	}
	st := s.Stats()
	if st.Commits != 1 {
		t.Fatalf("transaction must have applied exactly once: %+v", st)
	}
	if st.Replays != 1 {
		t.Fatalf("retry must be answered from the session cache: %+v", st)
	}
	// And the state agrees: the key is present, a fresh add is a duplicate.
	if ok, err := c.SetAdd(ctx, 0, 42); err != nil || ok {
		t.Fatalf("fresh add after replay: %v %v", ok, err)
	}
}

func TestClientReadStallDelay(t *testing.T) {
	leak.CheckCleanup(t)
	s := newTestServer(t, Options{})
	c := newTestClient(t, s.Addr())
	// A delayed server read path slows responses down but must not corrupt
	// the session: every op still applies exactly once, in order.
	defer failpoint.Arm("txnet.read.stall", failpoint.Spec{Action: failpoint.Delay, Delay: 5 * time.Millisecond, Every: 2})()
	for i := int64(0); i < 6; i++ {
		if ok, err := c.SetAdd(context.Background(), 0, i); err != nil || !ok {
			t.Fatalf("add %d under stall: %v %v", i, ok, err)
		}
	}
}

func TestClientOverloadBackoff(t *testing.T) {
	leak.CheckCleanup(t)
	st := newBlockingStore()
	s := newTestServer(t, Options{Store: st, MaxInflight: 1, AdmissionPatience: time.Millisecond})

	occupier := dialRaw(t, s.Addr())
	occupier.hello(0)
	occDone := make(chan response, 1)
	go func() {
		occDone <- occupier.txn(1, 0, Op{Code: OpAdd, Struct: 0, Key: 1})
	}()
	<-st.waiting

	c := newTestClient(t, s.Addr())
	clientDone := make(chan error, 1)
	go func() {
		_, err := c.Do(context.Background(), []Op{{Code: OpAdd, Struct: 0, Key: 2}})
		clientDone <- err
	}()
	// The client must be shed at least once, then succeed after the slot
	// frees up — all without surfacing an error.
	waitFor(t, time.Second, func() bool { return c.Stats().Overloads > 0 })
	st.releaseAll()
	if occ := <-occDone; occ.status != StatusOK {
		t.Fatalf("occupier: %+v", occ)
	}
	if err := <-clientDone; err != nil {
		t.Fatalf("shed request never recovered: %v", err)
	}
}

func TestClientDeadline(t *testing.T) {
	leak.CheckCleanup(t)
	st := newBlockingStore()
	defer st.releaseAll()
	s := newTestServer(t, Options{Store: st})
	c := newTestClient(t, s.Addr())

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := c.Do(ctx, []Op{{Code: OpAdd, Struct: 0, Key: 1}})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	// Definitive failure: nothing applied, and the next request proceeds.
	st.releaseAll()
	if ok, err := c.SetContains(context.Background(), 0, 1); err != nil || ok {
		t.Fatalf("deadline-exceeded txn leaked state: %v %v", ok, err)
	}
}

func TestClientUnavailableDuringDrain(t *testing.T) {
	leak.CheckCleanup(t)
	st := newBlockingStore()
	defer st.releaseAll()
	s := newTestServer(t, Options{Store: st})

	// Park one transaction so the drain has something to cancel.
	rc := dialRaw(t, s.Addr())
	rc.hello(0)
	inflight := make(chan response, 1)
	go func() {
		inflight <- rc.txn(1, 0, Op{Code: OpAdd, Struct: 0, Key: 1})
	}()
	<-st.waiting

	c := newTestClient(t, s.Addr())
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	time.Sleep(20 * time.Millisecond) // let the drain flag settle
	_, err := c.Do(context.Background(), []Op{{Code: OpAdd, Struct: 0, Key: 2}})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want ErrUnavailable, got %v", err)
	}
	<-inflight
	<-done
}

func TestClientSessionExpired(t *testing.T) {
	leak.CheckCleanup(t)
	s := newTestServer(t, Options{SessionTTL: time.Nanosecond})
	c := newTestClient(t, s.Addr())
	if ok, err := c.SetAdd(context.Background(), 0, 1); err != nil || !ok {
		t.Fatalf("add: %v %v", ok, err)
	}
	// Expire the session behind the client's back. The next request must
	// fail loudly: the exactly-once window is gone and a silent retry could
	// double-apply.
	time.Sleep(time.Millisecond)
	if n := s.sess.sweep(time.Now()); n == 0 {
		t.Fatal("session not swept")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, err := c.Do(ctx, []Op{{Code: OpAdd, Struct: 0, Key: 2}})
	if !errors.Is(err, ErrSessionExpired) {
		t.Fatalf("want ErrSessionExpired, got %v", err)
	}
}

func TestClientClosed(t *testing.T) {
	leak.CheckCleanup(t)
	s := newTestServer(t, Options{})
	c := newTestClient(t, s.Addr())
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := c.Do(context.Background(), []Op{{Code: OpAdd, Struct: 0, Key: 1}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
