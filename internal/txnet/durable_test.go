package txnet

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/chaos/leak"
	"repro/internal/wal"
)

// newDurableServer opens (or reopens) the durable state in dir and serves
// it. Callers that restart must Shutdown the previous server first — two
// servers on one WAL dir would interleave appends.
func newDurableServer(t *testing.T, dir string, snapEvery int) *Server {
	t.Helper()
	dur, err := OpenDurable(NewOTBStore(), DurabilityOptions{
		Dir:           dir,
		Fsync:         wal.SyncAlways,
		SnapshotEvery: snapEvery,
	})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	return newTestServer(t, Options{Durable: dur, SessionTTL: time.Hour})
}

func shutdown(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func TestDurableRestartKeepsStateAndSessions(t *testing.T) {
	leak.CheckCleanup(t)
	dir := filepath.Join(t.TempDir(), "wal")

	s := newDurableServer(t, dir, -1)
	rc := dialRaw(t, s.Addr())
	rc.hello(0)
	sessID := rc.sess
	if resp := rc.txn(1, 0,
		Op{Code: OpAdd, Struct: 0, Key: 5},
		Op{Code: OpPut, Struct: 1, Key: 9, Val: 3},
		Op{Code: OpAdd, Struct: 2, Key: 11},
	); resp.status != StatusOK {
		t.Fatalf("txn: %+v", resp)
	}
	// A mutating txn whose results are non-trivial, to compare after replay.
	last := rc.txn(2, 0,
		Op{Code: OpAdd, Struct: 0, Key: 5},      // duplicate → OK=false
		Op{Code: OpRemoveMin, Struct: 2},        // pops 11
		Op{Code: OpGet, Struct: 1, Key: 9},      // reads 3
		Op{Code: OpDelete, Struct: 1, Key: 404}, // absent → false
	)
	if last.status != StatusOK {
		t.Fatalf("txn 2: %+v", last)
	}
	shutdown(t, s)

	s2 := newDurableServer(t, dir, -1)
	rec := s2.dur.Recovery()
	if rec.CommitsReplayed != 2 || rec.SessionsRestored != 1 || rec.TornTail {
		t.Fatalf("recovery: %+v", rec)
	}
	rc2 := dialRaw(t, s2.Addr())
	if h := rc2.hello(sessID); h.status != StatusHello || h.lastSeq != 2 {
		t.Fatalf("resume after restart: %+v", h)
	}
	// Criterion (b): retrying the last acked seq replays the cached verdict
	// bit-for-bit (the replayed response was rebuilt from the log).
	replay := rc2.txn(2, 0,
		Op{Code: OpAdd, Struct: 0, Key: 5},
		Op{Code: OpRemoveMin, Struct: 2},
		Op{Code: OpGet, Struct: 1, Key: 9},
		Op{Code: OpDelete, Struct: 1, Key: 404},
	)
	if replay.status != StatusOK || len(replay.results) != len(last.results) {
		t.Fatalf("replayed verdict: %+v", replay)
	}
	for i := range last.results {
		if replay.results[i] != last.results[i] {
			t.Fatalf("result %d changed across restart: %+v vs %+v", i, replay.results[i], last.results[i])
		}
	}
	// Criterion (a): state survived — key 5 present, map[9]=3, pq empty.
	chk := rc2.txn(3, 0,
		Op{Code: OpContains, Struct: 0, Key: 5},
		Op{Code: OpGet, Struct: 1, Key: 9},
		Op{Code: OpMin, Struct: 2},
	)
	if chk.status != StatusOK || !chk.results[0].OK || chk.results[1].Out != 3 || chk.results[2].OK {
		t.Fatalf("recovered state: %+v", chk)
	}
	shutdown(t, s2)
}

func TestDurableSnapshotCutsReplay(t *testing.T) {
	leak.CheckCleanup(t)
	dir := filepath.Join(t.TempDir(), "wal")

	s := newDurableServer(t, dir, 8)
	rc := dialRaw(t, s.Addr())
	rc.hello(0)
	const total = 30
	for i := 1; i <= total; i++ {
		if resp := rc.txn(uint64(i), 0, Op{Code: OpAdd, Struct: 0, Key: int64(i)}); resp.status != StatusOK {
			t.Fatalf("txn %d: %+v", i, resp)
		}
	}
	shutdown(t, s)

	s2 := newDurableServer(t, dir, 8)
	rec := s2.dur.Recovery()
	if rec.SnapshotLSN == 0 {
		t.Fatalf("no snapshot was taken: %+v", rec)
	}
	// 30 commits at cadence 8 → last snapshot at commit 24, tail ≤ 6 commits.
	if rec.CommitsReplayed >= total || rec.CommitsReplayed > 8 {
		t.Fatalf("snapshot did not cut replay: %+v", rec)
	}
	rc2 := dialRaw(t, s2.Addr())
	rc2.hello(0)
	for i := 1; i <= total; i++ {
		resp := rc2.txn(uint64(i), 0, Op{Code: OpContains, Struct: 0, Key: int64(i)})
		if resp.status != StatusOK || !resp.results[0].OK {
			t.Fatalf("key %d lost across snapshot+replay: %+v", i, resp)
		}
	}
	shutdown(t, s2)
}

func TestDurableReadsNotLogged(t *testing.T) {
	leak.CheckCleanup(t)
	dir := filepath.Join(t.TempDir(), "wal")
	s := newDurableServer(t, dir, -1)
	rc := dialRaw(t, s.Addr())
	rc.hello(0)
	if resp := rc.txn(1, 0, Op{Code: OpAdd, Struct: 0, Key: 1}); resp.status != StatusOK {
		t.Fatalf("seed txn: %+v", resp)
	}
	before := s.dur.log.NextLSN()
	for i := 2; i <= 6; i++ {
		if resp := rc.txn(uint64(i), 0, Op{Code: OpContains, Struct: 0, Key: 1}); resp.status != StatusOK {
			t.Fatalf("read txn %d: %+v", i, resp)
		}
	}
	if after := s.dur.log.NextLSN(); after != before {
		t.Fatalf("read-only transactions were logged: lsn %d → %d", before, after)
	}
	// But the exactly-once cache still tracks them.
	if resp := rc.txn(6, 0, Op{Code: OpContains, Struct: 0, Key: 1}); resp.status != StatusOK || !resp.results[0].OK {
		t.Fatalf("read replay: %+v", resp)
	}
	shutdown(t, s)
}

func TestByeFreesSessionImmediately(t *testing.T) {
	leak.CheckCleanup(t)
	s := newTestServer(t, Options{})
	before := SessionStatsSnapshot()

	rc := dialRaw(t, s.Addr())
	rc.hello(0)
	id := rc.sess
	if n := s.sess.len(); n != 1 {
		t.Fatalf("sessions after hello: %d", n)
	}
	if resp := rc.send(appendBye(nil, id)); resp.status != StatusBye {
		t.Fatalf("bye: %+v", resp)
	}
	if n := s.sess.len(); n != 0 {
		t.Fatalf("sessions after bye: %d", n)
	}
	// The freed ID is gone for good — resuming it must fail loudly.
	rc2 := dialRaw(t, s.Addr())
	if h := rc2.hello(id); h.status != StatusBadRequest {
		t.Fatalf("resume of closed session: %+v", h)
	}
	after := SessionStatsSnapshot()
	if after.Opened-before.Opened != 1 || after.Closed-before.Closed != 1 || after.ResumeExpired-before.ResumeExpired != 1 {
		t.Fatalf("session stats deltas: before %+v after %+v", before, after)
	}
}

func TestClientCloseSendsBye(t *testing.T) {
	leak.CheckCleanup(t)
	s := newTestServer(t, Options{})
	c, err := Dial(s.Addr(), nil)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, err := c.SetAdd(context.Background(), 0, 1); err != nil {
		t.Fatalf("SetAdd: %v", err)
	}
	if n := s.sess.len(); n != 1 {
		t.Fatalf("sessions before close: %d", n)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if n := s.sess.len(); n != 0 {
		t.Fatalf("session not freed by Close: %d live", n)
	}
	if err := c.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
}

func TestDurableByeSurvivesRestart(t *testing.T) {
	leak.CheckCleanup(t)
	dir := filepath.Join(t.TempDir(), "wal")
	s := newDurableServer(t, dir, -1)
	rc := dialRaw(t, s.Addr())
	rc.hello(0)
	id := rc.sess
	if resp := rc.txn(1, 0, Op{Code: OpAdd, Struct: 0, Key: 7}); resp.status != StatusOK {
		t.Fatalf("txn: %+v", resp)
	}
	if resp := rc.send(appendBye(nil, id)); resp.status != StatusBye {
		t.Fatalf("bye: %+v", resp)
	}
	shutdown(t, s)

	s2 := newDurableServer(t, dir, -1)
	if rec := s2.dur.Recovery(); rec.SessionsRestored != 0 {
		t.Fatalf("closed session resurrected: %+v", rec)
	}
	rc2 := dialRaw(t, s2.Addr())
	if h := rc2.hello(id); h.status != StatusBadRequest {
		t.Fatalf("resume of closed session after restart: %+v", h)
	}
	// The data the session wrote is still there.
	rc3 := dialRaw(t, s2.Addr())
	rc3.hello(0)
	if resp := rc3.txn(1, 0, Op{Code: OpContains, Struct: 0, Key: 7}); resp.status != StatusOK || !resp.results[0].OK {
		t.Fatalf("state after closed session: %+v", resp)
	}
	shutdown(t, s2)
}

func TestDurableSnapshotPreservesResponseCache(t *testing.T) {
	leak.CheckCleanup(t)
	dir := filepath.Join(t.TempDir(), "wal")
	s := newDurableServer(t, dir, 1) // snapshot after every commit
	rc := dialRaw(t, s.Addr())
	rc.hello(0)
	id := rc.sess
	last := rc.txn(1, 0, Op{Code: OpAdd, Struct: 0, Key: 3}, Op{Code: OpContains, Struct: 0, Key: 99})
	if last.status != StatusOK {
		t.Fatalf("txn: %+v", last)
	}
	shutdown(t, s)

	s2 := newDurableServer(t, dir, 1)
	rec := s2.dur.Recovery()
	if rec.SnapshotLSN == 0 || rec.CommitsReplayed != 0 {
		t.Fatalf("expected pure-snapshot recovery: %+v", rec)
	}
	// The verdict must come from the snapshot's session cache (no commit
	// records were replayed to rebuild it).
	rc2 := dialRaw(t, s2.Addr())
	if h := rc2.hello(id); h.status != StatusHello || h.lastSeq != 1 {
		t.Fatalf("resume: %+v", h)
	}
	replay := rc2.txn(1, 0, Op{Code: OpAdd, Struct: 0, Key: 3}, Op{Code: OpContains, Struct: 0, Key: 99})
	if replay.status != StatusOK || replay.results[0] != last.results[0] || replay.results[1] != last.results[1] {
		t.Fatalf("snapshot-cached verdict: %+v vs %+v", replay, last)
	}
	shutdown(t, s2)
}

func TestSnapshotPayloadRoundTrip(t *testing.T) {
	store := NewOTBStore()
	dur := &Durable{store: store, sess: newSessionTable(time.Hour)}
	ctx := context.Background()
	ops := []Op{
		{Code: OpAdd, Struct: 0, Key: 10},
		{Code: OpPut, Struct: 1, Key: 20, Val: 7},
		{Code: OpAdd, Struct: 2, Key: 30},
	}
	res := make([]OpResult, len(ops))
	if err := store.Exec(ctx, ops, res); err != nil {
		t.Fatal(err)
	}
	sess := dur.sess.open()
	sess.lastSeq = 9
	sess.lastResp = []byte{1, 2, 3}

	payload := dur.snapshotPayloadLocked()

	dur2 := &Durable{store: NewOTBStore(), sess: newSessionTable(time.Hour)}
	if err := dur2.applySnapshot(payload); err != nil {
		t.Fatalf("applySnapshot: %v", err)
	}
	s2, ok := dur2.sess.lookup(sess.id)
	if !ok || s2.lastSeq != 9 || !bytes.Equal(s2.lastResp, []byte{1, 2, 3}) {
		t.Fatalf("session round-trip: %+v ok=%v", s2, ok)
	}
	chk := []Op{
		{Code: OpContains, Struct: 0, Key: 10},
		{Code: OpGet, Struct: 1, Key: 20},
		{Code: OpMin, Struct: 2},
	}
	cres := make([]OpResult, len(chk))
	if err := dur2.store.Exec(ctx, chk, cres); err != nil {
		t.Fatal(err)
	}
	if !cres[0].OK || cres[1].Out != 7 || cres[2].Out != 30 || !cres[2].OK {
		t.Fatalf("store round-trip: %+v", cres)
	}
	// A new session opened post-restore must not collide with restored IDs.
	if ns := dur2.sess.open(); ns.id <= sess.id {
		t.Fatalf("nextID not restored: new id %d after restored %d", ns.id, sess.id)
	}
}
