package txnet

import (
	"testing"

	"repro/internal/trace"
)

// BenchmarkReqObsDisarmed bounds the per-site cost the server dispatch path
// pays for request observability when nobody is looking: no wire trace id,
// no stage request, no slow log, telemetry off. The ISSUE's acceptance bar
// is < 2 ns per disarmed site — each stamp must collapse to one branch.
func BenchmarkReqObsDisarmed(b *testing.B) {
	var o reqObs
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.stamp(trace.StageDispatch)
		o.stamp(trace.StageAdmission)
		o.stamp(trace.StageExecute)
	}
	// 3 sites per iteration; ns/op / 3 is the per-site cost.
}

// BenchmarkReqObsArmed is the fully armed comparison point: a wire trace
// id with an active span, so every stamp reads the clock and writes a ring
// slot.
func BenchmarkReqObsArmed(b *testing.B) {
	r := trace.NewRecorderSized(1, 1<<10)
	r.SetEnabled(true)
	r.SetSampleEvery(1)
	tl := r.Source("bench").Local()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var o reqObs
		o.tl = tl
		tl.SpanOpen(uint64(i)|1, 0)
		o.traceID = uint64(i) | 1
		o.armed = true
		o.stamp(trace.StageDispatch)
		o.stamp(trace.StageExecute)
		tl.SpanClose()
	}
}

// BenchmarkBeginObsDisarmed measures the whole disarmed begin/finish
// bracket around a request: arming decision, no-op stamps, no-op finish.
func BenchmarkBeginObsDisarmed(b *testing.B) {
	s := &Server{}
	req := txnReq{session: 1, seq: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var o reqObs
		s.beginObs(&o, nil, &req)
		o.stamp(trace.StageDispatch)
		o.stamp(trace.StageExecute)
		o.finish(s, &req, StatusOK, true)
	}
}
