package txnet

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"repro/internal/trace"
)

// Wire format: every message is one frame — a 4-byte big-endian payload
// length followed by the payload. The first payload byte is the message type
// (requests) or status (responses); all integers are big-endian.
//
// Requests:
//
//	hello:  msgHello, u64 sessionID (0 = open a new session)
//	txn:    msgTxn, u64 sessionID, u64 seq, u32 deadline (ms, 0 = none),
//	        u64 traceID (0 = unsampled), u64 parentSpan, u8 flags,
//	        u16 nops, nops × (u8 code, u32 struct, u64 key, u64 val)
//	bye:    msgBye, u64 sessionID (frees the session immediately)
//
// The trace context propagates the client's sampling verdict: a nonzero
// traceID tells the server to open a request span under exactly that id, so
// client and server spans compose into one cross-process trace. The id is
// preserved verbatim across exactly-once resends (flagResend marks them), so
// a retried commit stays one trace.
//
// Responses:
//
//	hello:  StatusHello, u64 sessionID, u64 lastSeq
//	bye:    StatusBye (no body)
//	txn:    status, u64 seq, then status-specific:
//	        StatusOK         u16 n, n × (u64 out, u8 ok),
//	                         u8 nstages, nstages × (u8 stage, u64 ns)
//	        StatusOverloaded u32 retry-after (ms)
//	        StatusAborted /
//	        StatusBadRequest u16 len, message
//	        StatusDeadline / StatusShutdown (no body)
//
// The OK stage block reports where the server spent the request's time
// (trace.Stage codes); it is empty unless the request asked for it with
// flagStages. Replayed responses return the original execution's stages.

// MaxFrame bounds a frame payload; a length prefix beyond it poisons the
// connection (protocol desync or a hostile peer) and the conn is dropped.
const MaxFrame = 1 << 20

// Request message types.
const (
	msgHello byte = 1
	msgTxn   byte = 2
	msgBye   byte = 3
)

// Txn request trace-context flags.
const (
	// flagResend marks a same-sequence resend after a connection failure.
	flagResend byte = 1 << 0
	// flagStages asks the server to fill the OK response's stage block.
	flagStages byte = 1 << 1
)

// Status is the first byte of every response.
type Status byte

// Response statuses. The distinctions matter to the client's retry logic:
// only StatusOK means the transaction committed; StatusOverloaded is
// retryable after the hint; StatusDeadline, StatusAborted, StatusShutdown
// and StatusBadRequest are definitive for this request (nothing applied).
const (
	StatusOK         Status = 0
	StatusAborted    Status = 1
	StatusDeadline   Status = 2
	StatusOverloaded Status = 3
	StatusBadRequest Status = 4
	StatusShutdown   Status = 5
	StatusHello      Status = 6
	StatusBye        Status = 7
)

// String names the status for errors and logs.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusAborted:
		return "aborted"
	case StatusDeadline:
		return "deadline-exceeded"
	case StatusOverloaded:
		return "overloaded"
	case StatusBadRequest:
		return "bad-request"
	case StatusShutdown:
		return "shutting-down"
	case StatusHello:
		return "hello"
	case StatusBye:
		return "bye"
	default:
		return fmt.Sprintf("status(%d)", byte(s))
	}
}

// OpCode identifies one structure operation inside a transaction.
type OpCode uint8

// Operation codes, grouped by abstract type. Which codes a structure
// accepts depends on its kind (set, map, pq); a mismatch is a BadOp.
const (
	OpAdd OpCode = iota // set, pq
	OpRemove
	OpContains
	OpPut // map
	OpGet
	OpDelete
	OpMin // pq
	OpRemoveMin

	numOpCodes
)

var opNames = [...]string{
	OpAdd: "add", OpRemove: "remove", OpContains: "contains",
	OpPut: "put", OpGet: "get", OpDelete: "delete",
	OpMin: "min", OpRemoveMin: "remove-min",
}

func (c OpCode) String() string {
	if int(c) < len(opNames) {
		return opNames[c]
	}
	return fmt.Sprintf("op(%d)", uint8(c))
}

// Op is one operation of a transaction: an opcode against the structure at
// index Struct in the server's registry, with a key and (for Put) a value.
type Op struct {
	Code   OpCode
	Struct uint32
	Key    int64
	Val    uint64
}

// OpResult is the outcome of one op: Out carries Get/Min/RemoveMin values,
// OK the boolean result (membership, insertedness, non-emptiness).
type OpResult struct {
	Out uint64
	OK  bool
}

// opWireSize is the encoded size of one Op.
const opWireSize = 1 + 4 + 8 + 8

// txnReq is a parsed transaction request.
type txnReq struct {
	session  uint64
	seq      uint64
	deadline time.Duration // 0 = none
	traceID  uint64        // wire trace context (0 = unsampled)
	parent   uint64        // opening peer's span id
	flags    byte          // flagResend | flagStages
	ops      []Op
}

// response is a parsed transaction (or hello) response.
type response struct {
	status     Status
	seq        uint64
	retryAfter time.Duration // StatusOverloaded
	msg        string        // StatusAborted / StatusBadRequest
	results    []OpResult    // StatusOK
	sessionID  uint64        // StatusHello
	lastSeq    uint64        // StatusHello

	// stages is the server-side stage breakdown of an OK response
	// (nanoseconds per trace.Stage); hasStages reports a non-empty block.
	stages    [trace.NumStages]int64
	hasStages bool
}

// writeFrame writes one length-prefixed frame. The caller flushes.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame into buf (grown as needed) and returns the
// payload slice. It rejects frames beyond MaxFrame without reading them.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("txnet: frame of %d bytes exceeds limit %d", n, MaxFrame)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// appendHello encodes a hello request.
func appendHello(b []byte, sessionID uint64) []byte {
	b = append(b, msgHello)
	return binary.BigEndian.AppendUint64(b, sessionID)
}

// appendBye encodes a goodbye request.
func appendBye(b []byte, sessionID uint64) []byte {
	b = append(b, msgBye)
	return binary.BigEndian.AppendUint64(b, sessionID)
}

// appendByeResp encodes a goodbye acknowledgement.
func appendByeResp(b []byte) []byte {
	return append(b, byte(StatusBye))
}

// appendTxn encodes a transaction request. deadline is clamped to the u32
// millisecond range; zero means none. traceID/parent/flags carry the trace
// context (all zero for unsampled requests).
func appendTxn(b []byte, session, seq uint64, deadline time.Duration,
	traceID, parent uint64, flags byte, ops []Op) []byte {
	b = append(b, msgTxn)
	b = binary.BigEndian.AppendUint64(b, session)
	b = binary.BigEndian.AppendUint64(b, seq)
	b = binary.BigEndian.AppendUint32(b, clampMillis(deadline))
	b = binary.BigEndian.AppendUint64(b, traceID)
	b = binary.BigEndian.AppendUint64(b, parent)
	b = append(b, flags)
	b = binary.BigEndian.AppendUint16(b, uint16(len(ops)))
	for _, op := range ops {
		b = append(b, byte(op.Code))
		b = binary.BigEndian.AppendUint32(b, op.Struct)
		b = binary.BigEndian.AppendUint64(b, uint64(op.Key))
		b = binary.BigEndian.AppendUint64(b, op.Val)
	}
	return b
}

// clampMillis converts a duration to wire milliseconds, rounding up so a
// positive sub-millisecond budget does not become "no deadline".
func clampMillis(d time.Duration) uint32 {
	if d <= 0 {
		return 0
	}
	ms := (d + time.Millisecond - 1) / time.Millisecond
	if ms > 1<<32-1 {
		return 1<<32 - 1
	}
	return uint32(ms)
}

// maxOps bounds the ops of one transaction (fits comfortably in MaxFrame).
const maxOps = 4096

// parseTxn decodes a transaction request payload (after the type byte has
// been inspected but not consumed). ops is reused when large enough.
func parseTxn(p []byte, ops []Op) (txnReq, []Op, error) {
	var req txnReq
	if len(p) < 1+8+8+4+8+8+1+2 || p[0] != msgTxn {
		return req, ops, fmt.Errorf("txnet: malformed txn request (%d bytes)", len(p))
	}
	req.session = binary.BigEndian.Uint64(p[1:])
	req.seq = binary.BigEndian.Uint64(p[9:])
	if ms := binary.BigEndian.Uint32(p[17:]); ms != 0 {
		req.deadline = time.Duration(ms) * time.Millisecond
	}
	req.traceID = binary.BigEndian.Uint64(p[21:])
	req.parent = binary.BigEndian.Uint64(p[29:])
	req.flags = p[37]
	n := int(binary.BigEndian.Uint16(p[38:]))
	p = p[40:]
	if n > maxOps || len(p) != n*opWireSize {
		return req, ops, fmt.Errorf("txnet: txn body length %d does not match %d ops", len(p), n)
	}
	if cap(ops) < n {
		ops = make([]Op, n)
	}
	ops = ops[:n]
	for i := 0; i < n; i++ {
		o := p[i*opWireSize:]
		ops[i] = Op{
			Code:   OpCode(o[0]),
			Struct: binary.BigEndian.Uint32(o[1:]),
			Key:    int64(binary.BigEndian.Uint64(o[5:])),
			Val:    binary.BigEndian.Uint64(o[13:]),
		}
	}
	req.ops = ops
	return req, ops, nil
}

// appendHelloResp encodes a hello response.
func appendHelloResp(b []byte, sessionID, lastSeq uint64) []byte {
	b = append(b, byte(StatusHello))
	b = binary.BigEndian.AppendUint64(b, sessionID)
	return binary.BigEndian.AppendUint64(b, lastSeq)
}

// appendOKResp encodes a committed transaction's response. stages, when
// non-nil, is the server-side stage breakdown (nanoseconds indexed by
// trace.Stage); zero stages are elided from the wire block.
func appendOKResp(b []byte, seq uint64, results []OpResult, stages *[trace.NumStages]int64) []byte {
	b = append(b, byte(StatusOK))
	b = binary.BigEndian.AppendUint64(b, seq)
	b = binary.BigEndian.AppendUint16(b, uint16(len(results)))
	for _, r := range results {
		b = binary.BigEndian.AppendUint64(b, r.Out)
		if r.OK {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	n := 0
	if stages != nil {
		for _, d := range stages {
			if d > 0 {
				n++
			}
		}
	}
	b = append(b, byte(n))
	if n > 0 {
		for st, d := range stages {
			if d > 0 {
				b = append(b, byte(st))
				b = binary.BigEndian.AppendUint64(b, uint64(d))
			}
		}
	}
	return b
}

// appendErrResp encodes a non-OK response. retryAfter is encoded for
// StatusOverloaded, msg for StatusAborted and StatusBadRequest.
func appendErrResp(b []byte, st Status, seq uint64, retryAfter time.Duration, msg string) []byte {
	b = append(b, byte(st))
	b = binary.BigEndian.AppendUint64(b, seq)
	switch st {
	case StatusOverloaded:
		b = binary.BigEndian.AppendUint32(b, clampMillis(retryAfter))
	case StatusAborted, StatusBadRequest:
		if len(msg) > 1<<16-1 {
			msg = msg[:1<<16-1]
		}
		b = binary.BigEndian.AppendUint16(b, uint16(len(msg)))
		b = append(b, msg...)
	}
	return b
}

// parseResponse decodes any response payload.
func parseResponse(p []byte) (response, error) {
	var r response
	if len(p) < 1 {
		return r, fmt.Errorf("txnet: empty response")
	}
	r.status = Status(p[0])
	p = p[1:]
	if r.status == StatusHello {
		if len(p) != 16 {
			return r, fmt.Errorf("txnet: malformed hello response")
		}
		r.sessionID = binary.BigEndian.Uint64(p)
		r.lastSeq = binary.BigEndian.Uint64(p[8:])
		return r, nil
	}
	if r.status == StatusBye {
		if len(p) != 0 {
			return r, fmt.Errorf("txnet: unexpected bye body")
		}
		return r, nil
	}
	if len(p) < 8 {
		return r, fmt.Errorf("txnet: short %s response", r.status)
	}
	r.seq = binary.BigEndian.Uint64(p)
	p = p[8:]
	switch r.status {
	case StatusOK:
		if len(p) < 2 {
			return r, fmt.Errorf("txnet: short ok response")
		}
		n := int(binary.BigEndian.Uint16(p))
		p = p[2:]
		if len(p) < n*9+1 {
			return r, fmt.Errorf("txnet: ok body length %d does not match %d results", len(p), n)
		}
		r.results = make([]OpResult, n)
		for i := 0; i < n; i++ {
			r.results[i] = OpResult{
				Out: binary.BigEndian.Uint64(p[i*9:]),
				OK:  p[i*9+8] == 1,
			}
		}
		p = p[n*9:]
		ns := int(p[0])
		p = p[1:]
		if len(p) != ns*9 {
			return r, fmt.Errorf("txnet: ok stage block length %d does not match %d stages", len(p), ns)
		}
		for i := 0; i < ns; i++ {
			st := trace.Stage(p[i*9])
			d := binary.BigEndian.Uint64(p[i*9+1:])
			if st >= trace.NumStages || d == 0 || d > 1<<62 {
				return r, fmt.Errorf("txnet: malformed stage entry %d", i)
			}
			if r.stages[st] != 0 {
				return r, fmt.Errorf("txnet: duplicate stage entry %v", st)
			}
			r.stages[st] = int64(d)
			r.hasStages = true
		}
	case StatusOverloaded:
		if len(p) != 4 {
			return r, fmt.Errorf("txnet: malformed overloaded response")
		}
		r.retryAfter = time.Duration(binary.BigEndian.Uint32(p)) * time.Millisecond
	case StatusAborted, StatusBadRequest:
		if len(p) < 2 {
			return r, fmt.Errorf("txnet: short %s response", r.status)
		}
		n := int(binary.BigEndian.Uint16(p))
		if len(p[2:]) != n {
			return r, fmt.Errorf("txnet: %s message length mismatch", r.status)
		}
		r.msg = string(p[2 : 2+n])
	case StatusDeadline, StatusShutdown:
		if len(p) != 0 {
			return r, fmt.Errorf("txnet: unexpected %s body", r.status)
		}
	default:
		return r, fmt.Errorf("txnet: unknown response status %d", byte(r.status))
	}
	return r, nil
}
