package txnet

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"
)

// FuzzDecodeFrame feeds arbitrary bytes to the framing layer. The decoder
// may reject, but must never panic, never hand back more than MaxFrame
// bytes, and must return exactly the advertised payload when it accepts.
func FuzzDecodeFrame(f *testing.F) {
	frame := func(payload []byte) []byte {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
		return append(hdr[:], payload...)
	}
	f.Add(frame(appendHello(nil, 0)))
	f.Add(frame(appendHello(nil, 42)))
	f.Add(frame(appendBye(nil, 7)))
	f.Add(frame(appendTxn(nil, 1, 2, 50*time.Millisecond, 0, 0, 0, []Op{
		{Code: OpAdd, Struct: 0, Key: 10},
		{Code: OpPut, Struct: 1, Key: -3, Val: 99},
	})))
	f.Add(frame(nil))
	f.Add([]byte{})                       // short header
	f.Add([]byte{0, 0, 0, 5, 1, 2})       // truncated payload
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // oversize length prefix
	f.Add(frame(appendOKResp(nil, 3, []OpResult{{Out: 1, OK: true}}, nil)))

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := readFrame(bytes.NewReader(data), nil)
		if err != nil {
			return
		}
		if len(payload) > MaxFrame {
			t.Fatalf("readFrame returned %d bytes, over MaxFrame", len(payload))
		}
		if len(data) < 4 {
			t.Fatalf("readFrame accepted a %d-byte input", len(data))
		}
		want := binary.BigEndian.Uint32(data)
		if uint32(len(payload)) != want {
			t.Fatalf("payload %d bytes, header promised %d", len(payload), want)
		}
		if !bytes.Equal(payload, data[4:4+want]) {
			t.Fatalf("payload does not match frame body")
		}
	})
}

// FuzzDecodeTxn runs arbitrary payloads through both message decoders —
// the request parser the server exposes to the network and the response
// parser the client exposes to the server. Neither may panic, and an
// accepted transaction must re-encode to the exact input (the session
// replay cache depends on byte-stable round-trips).
func FuzzDecodeTxn(f *testing.F) {
	f.Add(appendHello(nil, 0))
	f.Add(appendBye(nil, 12))
	f.Add(appendTxn(nil, 1, 1, 0, 0, 0, 0, []Op{{Code: OpContains, Struct: 0, Key: 5}}))
	f.Add(appendTxn(nil, 9, 4, time.Second, 0xdeadbeefcafef00d, 0x1234, flagResend|flagStages, []Op{
		{Code: OpRemoveMin, Struct: 2},
		{Code: OpDelete, Struct: 1, Key: 1 << 40},
	}))
	f.Add(appendOKResp(nil, 2, []OpResult{{Out: 7, OK: false}, {OK: true}}, nil))
	f.Add(appendHelloResp(nil, 3, 17))
	f.Add(appendByeResp(nil))
	f.Add(appendErrResp(nil, StatusOverloaded, 5, 20*time.Millisecond, ""))
	f.Add(appendErrResp(nil, StatusBadRequest, 6, 0, "bad op"))
	f.Add([]byte{byte(msgTxn), 0, 0}) // truncated request
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if req, ops, err := parseTxn(data, nil); err == nil {
			if len(ops) > maxOps {
				t.Fatalf("parseTxn accepted %d ops, over maxOps", len(ops))
			}
			enc := appendTxn(nil, req.session, req.seq, req.deadline, req.traceID, req.parent, req.flags, ops)
			if !bytes.Equal(enc, data) {
				t.Fatalf("txn round-trip mismatch:\n in  %x\n out %x", data, enc)
			}
		}
		_, _ = parseResponse(data)
	})
}
