package txnet

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/otb"
	"repro/internal/stm"
	"repro/internal/stmds"
)

// ErrBadOp marks a structurally invalid request: an op code a structure
// does not support, or a structure index outside the registry. The server
// answers StatusBadRequest without executing anything.
var ErrBadOp = errors.New("txnet: invalid operation")

// Store executes one transaction — a batch of ops applied atomically —
// against a registry of structures addressed by index. Exec must be
// all-or-nothing: either every op applied and res holds one result per op,
// or nothing applied and an error classifies why (ctx errors propagate
// unchanged; invalid requests wrap ErrBadOp and are detected before any
// transactional work). Implementations are shared by every connection and
// must be safe for concurrent use.
type Store interface {
	Exec(ctx context.Context, ops []Op, res []OpResult) error
	// NumStructs reports the registry size, for request validation.
	NumStructs() int
}

// OTBStore serves OTB structures: any mix of sets, maps and priority
// queues, all updated in one otb.Atomic transaction per request. The zero
// value is empty; register structures before serving (registration is not
// synchronized with traffic).
type OTBStore struct {
	structs []otbStruct
}

// otbStruct dispatches ops onto one OTB structure kind. supports is checked
// before the transaction starts, so apply never fails mid-transaction. dump
// emits ops that rebuild the structure's current state (quiescent callers
// only — snapshots run with the commit path held).
type otbStruct interface {
	supports(c OpCode) bool
	apply(tx *otb.Tx, op Op) OpResult
	dump(st uint32, emit func(Op))
}

// NewOTBStore builds the default store: one ListSet (index 0), one Map
// (index 1) and one SkipPQ (index 2) — the three abstract types the paper
// boosts, behind one transactional API (the Proust design space).
func NewOTBStore() *OTBStore {
	s := &OTBStore{}
	s.AddSet(otb.NewListSet())
	s.AddMap(otb.NewMap())
	s.AddPQ(otb.NewSkipPQ())
	return s
}

// NumStructs implements Store.
func (s *OTBStore) NumStructs() int { return len(s.structs) }

// AddSet registers a set (ListSet and SkipSet both qualify) and returns its
// wire index.
func (s *OTBStore) AddSet(set otbSetOps) uint32 {
	s.structs = append(s.structs, otbSet{set})
	return uint32(len(s.structs) - 1)
}

// AddMap registers an OTB ordered map and returns its wire index.
func (s *OTBStore) AddMap(m *otb.Map) uint32 {
	s.structs = append(s.structs, otbMap{m})
	return uint32(len(s.structs) - 1)
}

// AddPQ registers a skip-list priority queue and returns its wire index.
func (s *OTBStore) AddPQ(q *otb.SkipPQ) uint32 {
	s.structs = append(s.structs, otbPQ{q})
	return uint32(len(s.structs) - 1)
}

// otbSetOps is the common surface of otb.ListSet and otb.SkipSet.
type otbSetOps interface {
	Add(tx *otb.Tx, key int64) bool
	Remove(tx *otb.Tx, key int64) bool
	Contains(tx *otb.Tx, key int64) bool
	Keys() []int64
}

type otbSet struct{ s otbSetOps }

func (w otbSet) supports(c OpCode) bool {
	return c == OpAdd || c == OpRemove || c == OpContains
}

func (w otbSet) apply(tx *otb.Tx, op Op) OpResult {
	switch op.Code {
	case OpAdd:
		return OpResult{OK: w.s.Add(tx, op.Key)}
	case OpRemove:
		return OpResult{OK: w.s.Remove(tx, op.Key)}
	default:
		return OpResult{OK: w.s.Contains(tx, op.Key)}
	}
}

func (w otbSet) dump(st uint32, emit func(Op)) {
	for _, k := range w.s.Keys() {
		emit(Op{Code: OpAdd, Struct: st, Key: k})
	}
}

type otbMap struct{ m *otb.Map }

func (w otbMap) supports(c OpCode) bool {
	return c == OpPut || c == OpGet || c == OpDelete || c == OpContains
}

func (w otbMap) apply(tx *otb.Tx, op Op) OpResult {
	switch op.Code {
	case OpPut:
		return OpResult{OK: w.m.Put(tx, op.Key, op.Val)}
	case OpGet:
		v, ok := w.m.Get(tx, op.Key)
		return OpResult{Out: v, OK: ok}
	case OpDelete:
		return OpResult{OK: w.m.Delete(tx, op.Key)}
	default:
		return OpResult{OK: w.m.ContainsKey(tx, op.Key)}
	}
}

func (w otbMap) dump(st uint32, emit func(Op)) {
	for k, v := range w.m.Snapshot() {
		emit(Op{Code: OpPut, Struct: st, Key: k, Val: v})
	}
}

type otbPQ struct{ q *otb.SkipPQ }

func (w otbPQ) supports(c OpCode) bool {
	return c == OpAdd || c == OpMin || c == OpRemoveMin
}

func (w otbPQ) apply(tx *otb.Tx, op Op) OpResult {
	switch op.Code {
	case OpAdd:
		return OpResult{OK: w.q.Add(tx, op.Key)}
	case OpMin:
		k, ok := w.q.Min(tx)
		return OpResult{Out: uint64(k), OK: ok}
	default:
		k, ok := w.q.RemoveMin(tx)
		return OpResult{Out: uint64(k), OK: ok}
	}
}

func (w otbPQ) dump(st uint32, emit func(Op)) {
	for _, k := range w.q.Keys() {
		emit(Op{Code: OpAdd, Struct: st, Key: k})
	}
}

// DumpOps emits one op per live entry across every registered structure,
// in registry order — replaying them against an empty store rebuilds the
// current state. The caller must be quiescent (no concurrent Exec); the
// durable commit path guarantees this by snapshotting under its lock.
func (s *OTBStore) DumpOps(emit func(Op)) {
	for i, st := range s.structs {
		st.dump(uint32(i), emit)
	}
}

// validateOps rejects malformed batches before any transactional work —
// codes in range and structure indexes inside the registry — so a failing
// batch provably applied nothing.
func validateOps(nstructs int, ops []Op) error {
	for i, op := range ops {
		if op.Code >= numOpCodes {
			return fmt.Errorf("%w: op %d has unknown code %d", ErrBadOp, i, uint8(op.Code))
		}
		if int(op.Struct) >= nstructs {
			return fmt.Errorf("%w: op %d addresses structure %d of %d", ErrBadOp, i, op.Struct, nstructs)
		}
	}
	return nil
}

// Exec implements Store: all ops run in one OTB transaction, so the batch
// commits or aborts as a unit.
func (s *OTBStore) Exec(ctx context.Context, ops []Op, res []OpResult) error {
	if err := validateOps(len(s.structs), ops); err != nil {
		return err
	}
	for i, op := range ops {
		if !s.structs[op.Struct].supports(op.Code) {
			return fmt.Errorf("%w: op %d: %s on structure %d", ErrBadOp, i, op.Code, op.Struct)
		}
	}
	return otb.AtomicCtx(ctx, nil, func(tx *otb.Tx) {
		for i, op := range ops {
			res[i] = s.structs[op.Struct].apply(tx, op)
		}
	})
}

// STMStore serves word-based STM structures: a set and a map, both backed
// by stmds.HashMap chains over the given algorithm's cells, executed with
// the algorithm's AtomicCtx. It demonstrates that the network layer is
// runtime-agnostic — any stm.AlgorithmCtx hosts the same wire API.
//
// Structure indexes: 0 is a set (Add/Remove/Contains via membership), 1 is
// a map (Put/Get/Delete/Contains). Capacity is fixed at construction (the
// underlying arenas do not grow).
type STMStore struct {
	alg stm.AlgorithmCtx
	set *stmds.HashMap // membership via Put(key, 1)/Delete
	kv  *stmds.HashMap
}

// NewSTMStore builds an STM-backed store over alg with room for capacity
// inserts per structure.
func NewSTMStore(alg stm.AlgorithmCtx, capacity int) *STMStore {
	return &STMStore{
		alg: alg,
		set: stmds.NewHashMap(256, capacity),
		kv:  stmds.NewHashMap(256, capacity),
	}
}

// NumStructs implements Store.
func (s *STMStore) NumStructs() int { return 2 }

// Exec implements Store.
func (s *STMStore) Exec(ctx context.Context, ops []Op, res []OpResult) error {
	if err := validateOps(2, ops); err != nil {
		return err
	}
	for i, op := range ops {
		setOp := op.Code == OpAdd || op.Code == OpRemove || op.Code == OpContains
		mapOp := op.Code == OpPut || op.Code == OpGet || op.Code == OpDelete || op.Code == OpContains
		if (op.Struct == 0 && !setOp) || (op.Struct == 1 && !mapOp) {
			return fmt.Errorf("%w: op %d: %s on structure %d", ErrBadOp, i, op.Code, op.Struct)
		}
	}
	return s.alg.AtomicCtx(ctx, func(tx stm.Tx) {
		for i, op := range ops {
			if op.Struct == 0 {
				switch op.Code {
				case OpAdd:
					res[i] = OpResult{OK: s.set.Put(tx, op.Key, 1)}
				case OpRemove:
					res[i] = OpResult{OK: s.set.Delete(tx, op.Key)}
				default:
					_, found := s.set.Get(tx, op.Key)
					res[i] = OpResult{OK: found}
				}
				continue
			}
			switch op.Code {
			case OpPut:
				res[i] = OpResult{OK: s.kv.Put(tx, op.Key, op.Val)}
			case OpGet:
				v, found := s.kv.Get(tx, op.Key)
				res[i] = OpResult{Out: v, OK: found}
			case OpDelete:
				res[i] = OpResult{OK: s.kv.Delete(tx, op.Key)}
			default:
				_, found := s.kv.Get(tx, op.Key)
				res[i] = OpResult{OK: found}
			}
		}
	})
}
