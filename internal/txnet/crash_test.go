package txnet

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/lincheck"
	"repro/internal/wal"
)

// The crash-kill harness: a durable txstore runs in a CHILD PROCESS (the
// re-executed test binary), a workload drives it over real TCP, and the
// child is killed — by SIGKILL at a random moment or by an armed WAL
// failpoint crashing it from the inside. A fresh child then recovers the
// same WAL directory and the parent verifies the durability contract:
//
//	(a) every acknowledged commit survives,
//	(b) a resumed session retrying its last sequence number gets the
//	    cached verdict back, byte-for-byte,
//	(c) the recovered history of the contended keys is linearizable.
//
// In-flight requests at the kill are resolved through the session
// protocol: the restarted server's lastSeq reveals whether the request
// committed (resend it, record the replayed verdict) or vanished (drop
// it — it provably never applied).

// TestMain turns the test binary into the crash child when re-executed by
// the harness; TXNET_CRASH_* carries the configuration (env, not flags,
// so the child never touches the testing flag set).
func TestMain(m *testing.M) {
	if os.Getenv("TXNET_CRASH_CHILD") == "1" {
		crashChildMain()
		return
	}
	os.Exit(m.Run())
}

// crashChildMain is the child: open the durable store, serve it, print one
// READY line with the recovery summary, then wait to be killed. Exit code
// 3 marks setup failures so the parent can tell them from crash exits.
func crashChildMain() {
	policy, err := wal.ParsePolicy(os.Getenv("TXNET_CRASH_FSYNC"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		os.Exit(3)
	}
	snap, err := strconv.Atoi(os.Getenv("TXNET_CRASH_SNAP"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		os.Exit(3)
	}
	dur, err := OpenDurable(NewOTBStore(), DurabilityOptions{
		Dir:           os.Getenv("TXNET_CRASH_DIR"),
		Fsync:         policy,
		SnapshotEvery: snap,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		os.Exit(3)
	}
	srv, err := Listen("127.0.0.1:0", Options{Durable: dur, SessionTTL: time.Hour})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		os.Exit(3)
	}
	rec := dur.Recovery()
	fmt.Printf("READY %s records=%d commits=%d torn=%v sessions=%d\n",
		srv.Addr(), rec.RecordsReplayed, rec.CommitsReplayed, rec.TornTail, rec.SessionsRestored)
	select {}
}

// childRecovery is the parsed READY line.
type childRecovery struct {
	records, commits, sessions int
	torn                       bool
}

// crashChild is one child process under parent control.
type crashChild struct {
	cmd    *exec.Cmd
	addr   string
	rec    childRecovery
	stderr *bytes.Buffer
	exited chan struct{}
	werr   error
}

// startChild launches the child. With waitReady it blocks until the READY
// line arrives (or the child dies / 30s pass); without, stdout is
// discarded — the caller intends to kill the child mid-recovery.
func startChild(t *testing.T, dir, fsync string, snap int, failpoints string, waitReady bool) (*crashChild, error) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"TXNET_CRASH_CHILD=1",
		"TXNET_CRASH_DIR="+dir,
		"TXNET_CRASH_FSYNC="+fsync,
		"TXNET_CRASH_SNAP="+strconv.Itoa(snap),
		"FAILPOINTS="+failpoints,
	)
	ch := &crashChild{cmd: cmd, stderr: &bytes.Buffer{}, exited: make(chan struct{})}
	cmd.Stderr = ch.stderr
	ready := make(chan error, 1)
	if waitReady {
		out, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		go func() {
			sc := bufio.NewScanner(out)
			for sc.Scan() {
				line := sc.Text()
				var tornStr string
				if n, _ := fmt.Sscanf(line, "READY %s records=%d commits=%d torn=%s sessions=%d",
					&ch.addr, &ch.rec.records, &ch.rec.commits, &tornStr, &ch.rec.sessions); n == 5 {
					ch.rec.torn = tornStr == "true"
					ready <- nil
					break
				}
			}
			_, _ = io.Copy(io.Discard, out) // drain until the child dies
		}()
	} else {
		cmd.Stdout = io.Discard
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	go func() {
		ch.werr = cmd.Wait()
		close(ch.exited)
	}()
	t.Cleanup(func() { ch.kill(); <-ch.exited })
	if !waitReady {
		return ch, nil
	}
	select {
	case err := <-ready:
		return ch, err
	case <-ch.exited:
		return ch, fmt.Errorf("child exited before READY (%v)\nstderr:\n%s", ch.werr, ch.stderr.String())
	case <-time.After(30 * time.Second):
		ch.kill()
		return ch, fmt.Errorf("child never became READY\nstderr:\n%s", ch.stderr.String())
	}
}

func (ch *crashChild) kill() {
	if ch.cmd.Process != nil {
		_ = ch.cmd.Process.Kill() // SIGKILL: no defers, no flushes, no mercy
	}
}

func (ch *crashChild) waitExit(t *testing.T, d time.Duration) {
	t.Helper()
	select {
	case <-ch.exited:
	case <-time.After(d):
		t.Fatalf("child did not exit within %v\nstderr:\n%s", d, ch.stderr.String())
	}
}

// ackedTxn is one transaction the workload sent: ops always, results only
// once acknowledged.
type ackedTxn struct {
	seq     uint64
	ops     []Op
	results []OpResult
}

// crashWorker is one session's view of the run, examined after the crash.
type crashWorker struct {
	id         int
	sess       uint64
	seq        uint64 // last acknowledged seq
	lastMutAck uint64 // last acknowledged MUTATING seq
	acked      []ackedTxn
	inflight   *ackedTxn // sent, unacknowledged at the crash
	fatal      error     // protocol violation observed by the worker
}

// wconn is a raw client connection whose failures are data, not test
// aborts — a dead connection is the expected signature of the kill.
type wconn struct {
	c  net.Conn
	br *bufio.Reader
}

func dialCrash(addr string) (*wconn, error) {
	c, err := net.DialTimeout("tcp", addr, 3*time.Second)
	if err != nil {
		return nil, err
	}
	return &wconn{c: c, br: bufio.NewReader(c)}, nil
}

func (w *wconn) rt(payload []byte) (response, error) {
	_ = w.c.SetDeadline(time.Now().Add(3 * time.Second))
	if err := writeFrame(w.c, payload); err != nil {
		return response{}, err
	}
	frame, err := readFrame(w.br, nil)
	if err != nil {
		return response{}, err
	}
	return parseResponse(frame)
}

func (w *wconn) close() { _ = w.c.Close() }

// sendTxn drives one transaction to an ack or a connection failure,
// honouring overload hints. ok=false means the connection died — the
// caller's inflight bookkeeping takes over.
func sendTxn(conn *wconn, w *crashWorker, seq uint64, ops []Op) (response, bool) {
	for {
		resp, err := conn.rt(appendTxn(nil, w.sess, seq, 0, 0, 0, 0, ops))
		if err != nil {
			return response{}, false
		}
		if resp.status == StatusOverloaded {
			d := resp.retryAfter
			if d <= 0 {
				d = time.Millisecond
			}
			time.Sleep(d)
			continue
		}
		return resp, true
	}
}

const (
	nDisjoint   = 3
	nShared     = 2
	auditThread = nShared // lincheck thread for post-recovery reads
	sharedKeys  = 8
)

// disjointBase returns worker i's private key range start. Ranges never
// overlap each other or the shared lincheck keys.
func disjointBase(i int) int64 { return int64(1000 * (i + 1)) }

func isMutOp(c OpCode) bool {
	switch c {
	case OpAdd, OpRemove, OpPut, OpDelete, OpRemoveMin:
		return true
	}
	return false
}

// runDisjoint hammers the child with small mutating batches on a private
// key range (set struct 0, map struct 1) until the connection dies.
func runDisjoint(w *crashWorker, addr string, rng *rand.Rand) {
	conn, err := dialCrash(addr)
	if err != nil {
		return
	}
	defer conn.close()
	h, err := conn.rt(appendHello(nil, 0))
	if err != nil || h.status != StatusHello {
		return
	}
	w.sess = h.sessionID
	base := disjointBase(w.id)
	for {
		n := 1 + rng.Intn(3)
		ops := make([]Op, n)
		for j := range ops {
			k := base + rng.Int63n(200)
			switch rng.Intn(4) {
			case 0:
				ops[j] = Op{Code: OpAdd, Struct: 0, Key: k}
			case 1:
				ops[j] = Op{Code: OpRemove, Struct: 0, Key: k}
			case 2:
				ops[j] = Op{Code: OpPut, Struct: 1, Key: k, Val: 1 + rng.Uint64()%1000}
			default:
				ops[j] = Op{Code: OpDelete, Struct: 1, Key: k}
			}
		}
		seq := w.seq + 1
		w.inflight = &ackedTxn{seq: seq, ops: ops}
		resp, ok := sendTxn(conn, w, seq, ops)
		if !ok {
			return
		}
		switch resp.status {
		case StatusOK:
			w.inflight.results = resp.results
			w.acked = append(w.acked, *w.inflight)
			w.inflight = nil
			w.seq, w.lastMutAck = seq, seq
		case StatusShutdown:
			return
		default:
			w.fatal = fmt.Errorf("disjoint worker %d seq %d: unexpected %s", w.id, seq, resp.status)
			return
		}
	}
}

// runShared issues single-op set transactions on the contended keys,
// recording every completed op for the linearizability check. The op left
// open at the crash is resolved (or dropped) by the verifier.
func runShared(w *crashWorker, addr string, rng *rand.Rand, rec *lincheck.Recorder, thread int) {
	conn, err := dialCrash(addr)
	if err != nil {
		return
	}
	defer conn.close()
	h, err := conn.rt(appendHello(nil, 0))
	if err != nil || h.status != StatusHello {
		return
	}
	w.sess = h.sessionID
	for {
		k := rng.Int63n(sharedKeys)
		var op Op
		var kind lincheck.Kind
		switch rng.Intn(3) {
		case 0:
			op, kind = Op{Code: OpAdd, Struct: 0, Key: k}, lincheck.Add
		case 1:
			op, kind = Op{Code: OpRemove, Struct: 0, Key: k}, lincheck.Remove
		default:
			op, kind = Op{Code: OpContains, Struct: 0, Key: k}, lincheck.Contains
		}
		seq := w.seq + 1
		rec.Invoke(thread, kind, k, 0)
		w.inflight = &ackedTxn{seq: seq, ops: []Op{op}}
		resp, ok := sendTxn(conn, w, seq, []Op{op})
		if !ok {
			return
		}
		switch resp.status {
		case StatusOK:
			rec.Return(thread, resp.results[0].Out, resp.results[0].OK)
			w.inflight.results = resp.results
			w.acked = append(w.acked, *w.inflight)
			w.inflight = nil
			w.seq = seq
			if isMutOp(op.Code) {
				w.lastMutAck = seq
			}
		case StatusShutdown:
			return
		default:
			w.fatal = fmt.Errorf("shared worker %d seq %d: unexpected %s", w.id, seq, resp.status)
			return
		}
	}
}

// crashMode is how one round kills the child.
type crashMode int

const (
	modeSigkill crashMode = iota
	modeTorn              // wal.append.torn crashes the child from inside
	modeFsync             // wal.fsync.fail crashes the child from inside
)

func (m crashMode) String() string {
	switch m {
	case modeTorn:
		return "torn-append"
	case modeFsync:
		return "fsync-fail"
	default:
		return "sigkill"
	}
}

func TestCrashKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-kill harness re-execs the test binary; skipped in -short")
	}
	rounds := 20
	seed := chaosSeed(t)
	for r := 0; r < rounds; r++ {
		r := r
		t.Run(fmt.Sprintf("round-%02d", r), func(t *testing.T) {
			runCrashRound(t, r, int64(seed)+int64(r)*7919)
		})
	}
}

func runCrashRound(t *testing.T, round int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	dir := filepath.Join(t.TempDir(), "wal")
	snapEvery := []int{-1, 16, 64}[round%3]
	mode := modeSigkill
	switch round % 5 {
	case 3:
		mode = modeTorn
	case 4:
		mode = modeFsync
	}
	doubleCrash := mode == modeSigkill && round%6 == 5
	t.Logf("mode=%s snapshot-every=%d double-crash=%v seed=%d", mode, snapEvery, doubleCrash, seed)

	// Arm the internal crash after the session-open appends (≤ 5) are
	// through, so the fault lands on a commit.
	var failpoints string
	k := 8 + rng.Intn(24)
	switch mode {
	case modeTorn:
		failpoints = fmt.Sprintf("wal.append.torn=panic@nth:%d", k)
	case modeFsync:
		failpoints = fmt.Sprintf("wal.fsync.fail=panic@nth:%d", k)
	}

	child, err := startChild(t, dir, "always", snapEvery, failpoints, true)
	if err != nil {
		t.Fatalf("start child: %v", err)
	}

	rec := lincheck.NewRecorder(nShared + 1)
	workers := make([]*crashWorker, nDisjoint+nShared)
	var wg sync.WaitGroup
	for i := 0; i < nDisjoint; i++ {
		w := &crashWorker{id: i}
		workers[i] = w
		wg.Add(1)
		go func(w *crashWorker, s int64) {
			defer wg.Done()
			runDisjoint(w, child.addr, rand.New(rand.NewSource(s)))
		}(w, seed+int64(i)+100)
	}
	for i := 0; i < nShared; i++ {
		w := &crashWorker{id: nDisjoint + i}
		workers[nDisjoint+i] = w
		wg.Add(1)
		go func(w *crashWorker, thread int, s int64) {
			defer wg.Done()
			runShared(w, child.addr, rand.New(rand.NewSource(s)), rec, thread)
		}(w, i, seed+int64(i)+200)
	}

	if mode == modeSigkill {
		time.Sleep(time.Duration(20+rng.Intn(100)) * time.Millisecond)
		child.kill()
	}
	// Internal-crash modes end themselves once the workload trips the
	// failpoint; the workers' commit stream guarantees it trips.
	child.waitExit(t, 30*time.Second)
	wg.Wait()
	for _, w := range workers {
		if w.fatal != nil {
			t.Fatalf("workload: %v", w.fatal)
		}
	}

	if doubleCrash {
		// Kill the NEXT child mid-recovery: replay is stretched by the
		// stall failpoint and the process killed inside it. Recovery must
		// be idempotent — the final child sees the same truth.
		mid, err := startChild(t, dir, "always", snapEvery, "wal.replay.stall=delay:1ms", false)
		if err != nil {
			t.Fatalf("start mid child: %v", err)
		}
		time.Sleep(time.Duration(rng.Intn(20)) * time.Millisecond)
		mid.kill()
		mid.waitExit(t, 10*time.Second)
	}

	final, err := startChild(t, dir, "always", snapEvery, "", true)
	if err != nil {
		t.Fatalf("start recovery child: %v", err)
	}
	t.Logf("recovered: %+v", final.rec)
	if mode == modeTorn && !doubleCrash && !final.rec.torn {
		// The torn append poisoned the log mid-record, so recovery must
		// have truncated a torn tail (no intermediate child to eat it).
		t.Errorf("torn-append round recovered without a torn tail: %+v", final.rec)
	}

	verifyCrashRound(t, final.addr, workers, rec, seed)
	if t.Failed() {
		copyWALArtifacts(t, dir)
	}
}

// verifyCrashRound checks the three durability criteria against the
// recovered child.
func verifyCrashRound(t *testing.T, addr string, workers []*crashWorker, rec *lincheck.Recorder, seed int64) {
	t.Helper()
	for _, w := range workers {
		if w.sess == 0 {
			continue // crashed before the session opened; nothing promised
		}
		conn, err := dialCrash(addr)
		if err != nil {
			t.Fatalf("dial recovered server: %v", err)
		}
		h, err := conn.rt(appendHello(nil, w.sess))
		if err != nil || h.status != StatusHello {
			t.Fatalf("worker %d: resume session %d: %+v err=%v", w.id, w.sess, h, err)
		}
		lastSeq := h.lastSeq
		disjoint := w.id < nDisjoint

		// The recovered lastSeq must be explainable: at least the last
		// acked mutating seq (acked ⇒ fsynced ⇒ replayed), at most the
		// last seq ever sent. Disjoint workers only send mutating txns,
		// so for them the bound is exact: last acked or the in-flight.
		hi := w.seq
		if w.inflight != nil {
			hi = w.inflight.seq
		}
		if lastSeq < w.lastMutAck || lastSeq > hi {
			t.Fatalf("worker %d: recovered lastSeq %d outside [%d,%d]", w.id, lastSeq, w.lastMutAck, hi)
		}
		if disjoint && lastSeq != w.seq && !(w.inflight != nil && lastSeq == w.inflight.seq) {
			t.Fatalf("worker %d: recovered lastSeq %d, want %d or in-flight", w.id, lastSeq, w.seq)
		}

		// Resolve the in-flight transaction: committed iff the recovered
		// session is at its seq. Committed → the retry MUST replay the
		// cached verdict; vanished → it provably never applied.
		committedInflight := false
		if w.inflight != nil && lastSeq == w.inflight.seq {
			resp, ok := sendTxn(conn, w, w.inflight.seq, w.inflight.ops)
			if !ok || resp.status != StatusOK {
				t.Fatalf("worker %d: replay of committed in-flight seq %d: %+v", w.id, w.inflight.seq, resp)
			}
			w.inflight.results = resp.results
			committedInflight = true
			if !disjoint {
				rec.Return(w.id-nDisjoint, resp.results[0].Out, resp.results[0].OK)
			}
		}

		// Criterion (b): retry the transaction the recovered session is
		// parked on; the cached verdict must match the original ack.
		if !committedInflight && len(w.acked) > 0 && lastSeq == w.acked[len(w.acked)-1].seq {
			last := w.acked[len(w.acked)-1]
			resp, ok := sendTxn(conn, w, last.seq, last.ops)
			if !ok || resp.status != StatusOK {
				t.Fatalf("worker %d: replay of acked seq %d: %+v", w.id, last.seq, resp)
			}
			if len(resp.results) != len(last.results) {
				t.Fatalf("worker %d: replayed %d results, acked %d", w.id, len(resp.results), len(last.results))
			}
			for i := range last.results {
				if resp.results[i] != last.results[i] {
					t.Fatalf("worker %d seq %d result %d: replayed %+v, acked %+v",
						w.id, last.seq, i, resp.results[i], last.results[i])
				}
			}
		}

		// Criterion (a) for the private ranges: fold the acked txns (plus
		// a committed in-flight) into the expected final state and audit
		// every touched key through a fresh session.
		if disjoint {
			verifyDisjointState(t, addr, w, committedInflight)
		}
		conn.close()
	}

	// Criterion (c): audit the contended keys and check the whole
	// recorded history — pre-crash ops, resolved in-flights, and these
	// reads — against the sequential set model.
	conn, err := dialCrash(addr)
	if err != nil {
		t.Fatalf("dial for audit: %v", err)
	}
	defer conn.close()
	h, err := conn.rt(appendHello(nil, 0))
	if err != nil || h.status != StatusHello {
		t.Fatalf("audit hello: %+v err=%v", h, err)
	}
	audit := &crashWorker{sess: h.sessionID}
	for k := int64(0); k < sharedKeys; k++ {
		rec.Invoke(auditThread, lincheck.Contains, k, 0)
		resp, ok := sendTxn(conn, audit, uint64(k)+1, []Op{{Code: OpContains, Struct: 0, Key: k}})
		if !ok || resp.status != StatusOK {
			t.Fatalf("audit read of key %d: %+v", k, resp)
		}
		rec.Return(auditThread, resp.results[0].Out, resp.results[0].OK)
	}
	hist := rec.History()
	res := lincheck.Check(lincheck.SetModel(), hist)
	switch res.Outcome {
	case lincheck.Violation:
		path := lincheck.DumpArtifact("crash-kill", seed, res, hist, nil)
		t.Fatalf("recovered history is not linearizable: %s\nartifact: %s", res.Detail, path)
	case lincheck.Inconclusive:
		t.Logf("lincheck inconclusive on %d ops (budget)", len(hist))
	}
}

// verifyDisjointState replays worker w's acked transactions into a model
// and audits every touched key on the recovered server. The range is
// private to w, so equality must be exact — an unacked mutation that
// leaked in, or an acked one that vanished, both show up here.
func verifyDisjointState(t *testing.T, addr string, w *crashWorker, committedInflight bool) {
	t.Helper()
	wantSet := make(map[int64]bool)
	wantMap := make(map[int64]uint64)
	touchedSet := make(map[int64]bool)
	touchedMap := make(map[int64]bool)
	apply := func(tx ackedTxn) {
		for _, op := range tx.ops {
			switch op.Code {
			case OpAdd:
				wantSet[op.Key] = true
				touchedSet[op.Key] = true
			case OpRemove:
				delete(wantSet, op.Key)
				touchedSet[op.Key] = true
			case OpPut:
				wantMap[op.Key] = op.Val
				touchedMap[op.Key] = true
			case OpDelete:
				delete(wantMap, op.Key)
				touchedMap[op.Key] = true
			}
		}
	}
	for _, tx := range w.acked {
		apply(tx)
	}
	if committedInflight {
		apply(*w.inflight)
	}

	conn, err := dialCrash(addr)
	if err != nil {
		t.Fatalf("dial for state audit: %v", err)
	}
	defer conn.close()
	h, err := conn.rt(appendHello(nil, 0))
	if err != nil || h.status != StatusHello {
		t.Fatalf("state audit hello: %+v err=%v", h, err)
	}
	auditor := &crashWorker{sess: h.sessionID}
	var ops []Op
	for k := range touchedSet {
		ops = append(ops, Op{Code: OpContains, Struct: 0, Key: k})
	}
	for k := range touchedMap {
		ops = append(ops, Op{Code: OpGet, Struct: 1, Key: k})
	}
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].Struct != ops[j].Struct {
			return ops[i].Struct < ops[j].Struct
		}
		return ops[i].Key < ops[j].Key
	})
	seq := uint64(0)
	for len(ops) > 0 {
		n := len(ops)
		if n > 512 {
			n = 512
		}
		batch := ops[:n]
		ops = ops[n:]
		seq++
		resp, ok := sendTxn(conn, auditor, seq, batch)
		if !ok || resp.status != StatusOK {
			t.Fatalf("state audit batch: %+v", resp)
		}
		for i, op := range batch {
			got := resp.results[i]
			if op.Code == OpContains {
				if want := wantSet[op.Key]; got.OK != want {
					t.Errorf("worker %d: set key %d: recovered %v, want %v", w.id, op.Key, got.OK, want)
				}
			} else {
				wantVal, wantOK := wantMap[op.Key]
				if got.OK != wantOK || (wantOK && got.Out != wantVal) {
					t.Errorf("worker %d: map key %d: recovered (%d,%v), want (%d,%v)",
						w.id, op.Key, got.Out, got.OK, wantVal, wantOK)
				}
			}
		}
	}
}

// copyWALArtifacts preserves the WAL directory of a failed round under
// $WAL_ARTIFACTS (the CI durability job uploads it).
func copyWALArtifacts(t *testing.T, dir string) {
	dst := os.Getenv("WAL_ARTIFACTS")
	if dst == "" {
		return
	}
	out := filepath.Join(dst, filepath.Base(t.Name()))
	if err := os.MkdirAll(out, 0o755); err != nil {
		t.Logf("wal artifact: %v", err)
		return
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Logf("wal artifact: %v", err)
		return
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err == nil {
			_ = os.WriteFile(filepath.Join(out, e.Name()), b, 0o644)
		}
	}
	t.Logf("WAL preserved in %s", out)
}
