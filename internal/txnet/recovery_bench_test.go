package txnet

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/wal"
)

// buildDurableLog writes commits logged transactions into a fresh durable
// store at dir (SyncNever: a clean Close loses nothing, and building the
// fixture is not the thing being measured) and returns the session ID that
// wrote them.
func buildDurableLog(tb testing.TB, dir string, commits, snapEvery int) uint64 {
	tb.Helper()
	d, err := OpenDurable(NewOTBStore(), DurabilityOptions{
		Dir:           dir,
		Fsync:         wal.SyncNever,
		SnapshotEvery: snapEvery,
	})
	if err != nil {
		tb.Fatalf("open durable: %v", err)
	}
	sess := d.sess.open()
	d.logSessionOpen(sess.id)
	results := make([]OpResult, 2)
	for i := 0; i < commits; i++ {
		k := int64(i % 4096)
		req := txnReq{
			session: sess.id,
			seq:     uint64(i + 1),
			ops: []Op{
				{Code: OpAdd, Struct: 0, Key: k},
				{Code: OpPut, Struct: 1, Key: k, Val: uint64(i)},
			},
		}
		if _, err := d.commitTxn(context.Background(), sess, req, results, nil, new(reqObs)); err != nil {
			tb.Fatalf("commit %d: %v", i, err)
		}
	}
	if err := d.Close(); err != nil {
		tb.Fatalf("close durable: %v", err)
	}
	return sess.id
}

// recoverDurable reopens the directory and returns the recovery stats.
func recoverDurable(tb testing.TB, dir string) (*Durable, RecoveryStats) {
	tb.Helper()
	d, err := OpenDurable(NewOTBStore(), DurabilityOptions{Dir: dir, Fsync: wal.SyncNever})
	if err != nil {
		tb.Fatalf("recover: %v", err)
	}
	return d, d.Recovery()
}

// TestRecoveryTiming measures recovery of the same workload with and
// without snapshots, checks the replay accounting, and — when
// RECOVERY_BENCH_OUT is set — emits the timings as stmbench-result/v1
// records with recovery_ms populated, so CI can archive the trend.
func TestRecoveryTiming(t *testing.T) {
	const commits = 5000
	var out []bench.Result
	for _, tc := range []struct {
		name      string
		snapEvery int
		maxReplay int
	}{
		{"log-only", -1, commits},
		{"snapshot-64", 64, 64},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			sessID := buildDurableLog(t, dir, commits, tc.snapEvery)
			d, rec := recoverDurable(t, dir)
			defer d.Close()
			if rec.CommitsReplayed > tc.maxReplay {
				t.Fatalf("replayed %d commits, want at most %d", rec.CommitsReplayed, tc.maxReplay)
			}
			if tc.snapEvery < 0 && rec.CommitsReplayed != commits {
				t.Fatalf("log-only recovery replayed %d commits, want %d", rec.CommitsReplayed, commits)
			}
			sess, ok := d.sess.lookup(sessID)
			if !ok || sess.lastSeq != commits {
				t.Fatalf("recovered session: ok=%v lastSeq=%d, want %d", ok, sess.lastSeq, commits)
			}
			if rec.Elapsed <= 0 {
				t.Fatalf("recovery elapsed %v, want > 0", rec.Elapsed)
			}
			t.Logf("recovered %d records (%d commits) in %v", rec.RecordsReplayed, rec.CommitsReplayed, rec.Elapsed)
			out = append(out, bench.Result{
				Schema:     bench.ResultSchema,
				Structure:  "recovery/" + tc.name,
				Algorithm:  "otb-durable",
				Threads:    1,
				OpsPerTx:   2,
				DurationNS: rec.Elapsed.Nanoseconds(),
				TxPerSec:   float64(rec.CommitsReplayed) / rec.Elapsed.Seconds(),
				RecoveryMS: float64(rec.Elapsed) / float64(time.Millisecond),
			})
		})
	}
	if path := os.Getenv("RECOVERY_BENCH_OUT"); path != "" && len(out) == 2 {
		if err := bench.WriteResults(path, out); err != nil {
			t.Fatalf("write %s: %v", path, err)
		}
		t.Logf("recovery timings written to %s", path)
	}
}

// BenchmarkRecovery times OpenDurable against a prebuilt log, reporting
// both ns/op and the replayed-commit rate.
func BenchmarkRecovery(b *testing.B) {
	for _, snapEvery := range []int{-1, 256} {
		name := "log-only"
		if snapEvery > 0 {
			name = fmt.Sprintf("snapshot-%d", snapEvery)
		}
		b.Run(name, func(b *testing.B) {
			dir := b.TempDir()
			buildDurableLog(b, dir, 10000, snapEvery)
			b.ResetTimer()
			var replayed int
			for i := 0; i < b.N; i++ {
				d, rec := recoverDurable(b, dir)
				replayed += rec.CommitsReplayed
				_ = d.Close()
			}
			b.StopTimer()
			b.ReportMetric(float64(replayed)/float64(b.N), "commits-replayed/op")
		})
	}
}
