package txnet

import (
	"context"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos/failpoint"
	"repro/internal/chaos/leak"
	"repro/internal/lincheck"
)

// chaosSeed offsets the failpoint schedules by $FAILPOINT_SEED (default 0),
// so CI runs with rotating seeds explore different fault interleavings
// while any one run stays reproducible.
func chaosSeed(t *testing.T) uint64 {
	v := os.Getenv("FAILPOINT_SEED")
	if v == "" {
		return 0
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		t.Fatalf("bad FAILPOINT_SEED %q: %v", v, err)
	}
	t.Logf("FAILPOINT_SEED=%d", n)
	return n
}

// clientSet adapts a Client to the lincheck.Set interface. Any transport
// error fails the test: under connection chaos the retry protocol must
// always reach a definitive committed answer.
type clientSet struct {
	t *testing.T
	c *Client
}

func (s clientSet) Add(key int64) bool      { return s.call(OpAdd, key) }
func (s clientSet) Remove(key int64) bool   { return s.call(OpRemove, key) }
func (s clientSet) Contains(key int64) bool { return s.call(OpContains, key) }

func (s clientSet) call(code OpCode, key int64) bool {
	r, err := s.c.Do1(context.Background(), Op{Code: code, Struct: 0, Key: key})
	if err != nil {
		s.t.Errorf("%s(%d): %v", code, key, err)
		return false
	}
	return r.OK
}

// chaosRotor cycles fault injection across all four network failpoints
// while the workload runs, one at a time so every fault class gets clean
// exposure. Initial Dial calls must complete before the rotor starts —
// Dial does not retry (only Do's reconnect path does).
func chaosRotor(seed uint64, stop <-chan struct{}, wg *sync.WaitGroup) {
	specs := []struct {
		name string
		spec failpoint.Spec
	}{
		{"txnet.conn.drop", failpoint.Spec{Action: failpoint.Panic, Prob: 0.05, Seed: seed + 1}},
		{"txnet.read.stall", failpoint.Spec{Action: failpoint.Delay, Delay: time.Millisecond, Prob: 0.1, Seed: seed + 2}},
		{"txnet.write.partial", failpoint.Spec{Action: failpoint.Panic, Prob: 0.05, Seed: seed + 3}},
		{"txnet.server.stall", failpoint.Spec{Action: failpoint.Delay, Delay: time.Millisecond, Prob: 0.1, Seed: seed + 4}},
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int(seed % 4); ; i++ {
			s := specs[i%len(specs)]
			disarm := failpoint.Arm(s.name, s.spec)
			select {
			case <-stop:
				disarm()
				return
			case <-time.After(10 * time.Millisecond):
			}
			disarm()
		}
	}()
}

// TestChaosSoakLincheck runs concurrent clients against a live server while
// faults rotate across every network failpoint, records the full operation
// history, and checks it linearizes against the sequential set model. A
// duplicated apply or a lost acknowledgement shows up as a history no
// sequential set can explain.
func TestChaosSoakLincheck(t *testing.T) {
	leak.CheckCleanup(t)
	seed := chaosSeed(t)
	s := newTestServer(t, Options{})

	const threads = 8
	opsPer := 150
	if testing.Short() {
		opsPer = 40
	}
	rec := lincheck.NewRecorder(threads)

	// Connect everyone before the chaos starts.
	clients := make([]*Client, threads)
	for th := range clients {
		c, err := Dial(s.Addr(), &ClientOptions{Seed: int64(seed) + int64(th) + 1})
		if err != nil {
			t.Fatalf("thread %d dial: %v", th, err)
		}
		defer c.Close()
		clients[th] = c
	}

	stop := make(chan struct{})
	var chaosWG sync.WaitGroup
	chaosRotor(seed, stop, &chaosWG)

	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			set := lincheck.RecordedSet{S: clientSet{t: t, c: clients[th]}, R: rec, Thread: th}
			rng := seed*0x9E3779B97F4A7C15 + uint64(th)*0xBF58476D1CE4E5B9 + 1
			for i := 0; i < opsPer; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				key := int64(rng % 8) // small key space maximizes interleaving
				switch (rng >> 8) % 4 {
				case 0, 1:
					set.Add(key)
				case 2:
					set.Remove(key)
				default:
					set.Contains(key)
				}
			}
		}(th)
	}
	wg.Wait()
	close(stop)
	chaosWG.Wait()
	if t.Failed() {
		return // transport errors already reported; the history is partial
	}

	hist := rec.History()
	res := lincheck.Check(lincheck.SetModel(), hist)
	if res.Outcome == lincheck.Violation {
		path := lincheck.DumpArtifact("txnet-chaos-soak", int64(seed), res, hist, nil)
		t.Fatalf("history not linearizable: %s\nartifact: %s", res.Detail, path)
	}
	if res.Outcome == lincheck.Inconclusive {
		t.Logf("lincheck budget exhausted after %d steps (not a failure)", res.Cost)
	}

	st := s.Stats()
	t.Logf("soak: %d ops, server stats %+v", len(hist), st)
	if st.Commits == 0 {
		t.Fatal("soak committed nothing")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("shutdown after soak: %v", err)
	}
}

// TestManyConnectionsExactlyOnce drives a large fleet of connections, each
// adding globally unique keys while connections are dropped and responses
// truncated underneath them. Uniqueness turns the exactly-once guarantee
// into two countable assertions: every add reports "inserted" (a duplicate
// apply would report false on the retry), and every acknowledged key is
// present afterwards (a lost commit would be absent).
func TestManyConnectionsExactlyOnce(t *testing.T) {
	leak.CheckCleanup(t)
	seed := chaosSeed(t)
	s := newTestServer(t, Options{})

	nClients, opsPer := 1000, 4
	if testing.Short() {
		nClients = 64
	}

	// Fault injection arms only after every client has dialed (Dial does
	// not retry); reconnect hellos inside Do retry and are fair game.
	ready := make(chan *Client, nClients)
	start := make(chan struct{})
	acked := make([]int64, 0, nClients*opsPer)
	var ackedMu sync.Mutex
	var resends, dupApplies atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < nClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(s.Addr(), &ClientOptions{Seed: int64(seed) + int64(i) + 1})
			if err != nil {
				t.Errorf("client %d dial: %v", i, err)
				ready <- nil
				return
			}
			defer c.Close()
			ready <- c
			<-start
			mine := make([]int64, 0, opsPer)
			for j := 0; j < opsPer; j++ {
				key := int64(i*opsPer + j) // globally unique
				ok, err := c.SetAdd(context.Background(), 0, key)
				if err != nil {
					t.Errorf("client %d add %d: %v", i, key, err)
					return
				}
				if !ok {
					dupApplies.Add(1)
					t.Errorf("client %d: add(%d) reported duplicate — applied twice", i, key)
				}
				mine = append(mine, key)
			}
			resends.Add(c.Stats().Resends)
			ackedMu.Lock()
			acked = append(acked, mine...)
			ackedMu.Unlock()
		}(i)
	}
	for i := 0; i < nClients; i++ {
		<-ready
	}
	disarmDrop := failpoint.Arm("txnet.conn.drop", failpoint.Spec{Action: failpoint.Panic, Prob: 0.01, Seed: seed + 11})
	disarmPartial := failpoint.Arm("txnet.write.partial", failpoint.Spec{Action: failpoint.Panic, Prob: 0.01, Seed: seed + 12})
	close(start)
	wg.Wait()
	disarmDrop()
	disarmPartial()
	if t.Failed() {
		return
	}

	// Lost-ack audit: every acknowledged key must be present.
	v, err := Dial(s.Addr(), &ClientOptions{Seed: int64(seed) + 7})
	if err != nil {
		t.Fatalf("verifier dial: %v", err)
	}
	defer v.Close()
	const batch = 512
	lost := 0
	for i := 0; i < len(acked); i += batch {
		end := i + batch
		if end > len(acked) {
			end = len(acked)
		}
		ops := make([]Op, 0, batch)
		for _, k := range acked[i:end] {
			ops = append(ops, Op{Code: OpContains, Struct: 0, Key: k})
		}
		res, err := v.Do(context.Background(), ops)
		if err != nil {
			t.Fatalf("verify batch: %v", err)
		}
		for j, r := range res {
			if !r.OK {
				lost++
				t.Errorf("acked key %d missing — commit lost", acked[i+j])
			}
		}
	}

	st := s.Stats()
	t.Logf("fleet: %d clients × %d adds; server %+v; client resends %d",
		nClients, opsPer, st, resends.Load())
	if lost != 0 || dupApplies.Load() != 0 {
		t.Fatalf("exactly-once violated: %d lost acks, %d duplicate applies", lost, dupApplies.Load())
	}
	if st.DroppedConns > 0 && resends.Load() == 0 {
		t.Error("connections were dropped but no client resent — retry path untested")
	}

	// Drain the whole fleet's server leak-free.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain after fleet: %v", err)
	}
}

// TestSoakSessionsSweepable double-checks the soak leaves no unbounded
// session growth once clients go idle past the TTL.
func TestSoakSessionsSweepable(t *testing.T) {
	leak.CheckCleanup(t)
	s := newTestServer(t, Options{SessionTTL: time.Millisecond})
	for i := 0; i < 10; i++ {
		rc := dialRaw(t, s.Addr())
		rc.hello(0)
		rc.c.Close()
	}
	if got := s.Stats().Sessions; got != 10 {
		t.Fatalf("sessions: %d", got)
	}
	time.Sleep(5 * time.Millisecond)
	if n := s.sess.sweep(time.Now()); n != 10 {
		t.Fatalf("swept %d of 10", n)
	}
}
