package txnet

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/cm"
)

// admission bounds the number of transactions executing concurrently and
// sheds the excess instead of queuing it unboundedly. Two watermarks gate
// an arrival that misses a free slot:
//
//   - Serial-mode escalation: while the contention manager's process-wide
//     serial gate is closed, the system has already declared optimism lost;
//     piling more work on the gate only lengthens the convoy, so arrivals
//     are shed immediately.
//   - Patience: otherwise the arrival waits at most `patience` for a slot
//     (a bounded admission queue in time rather than length), then sheds.
//
// Shed responses carry a retry-after hint derived from the observed commit
// latency EWMA — roughly "how long until the backlog ahead of you clears" —
// so well-behaved clients back off proportionally to actual service time.
type admission struct {
	slots    chan struct{}
	patience time.Duration
	ewmaNs   atomic.Uint64 // commit latency EWMA, nanoseconds
	sheds    atomic.Uint64
	executed atomic.Uint64
}

func newAdmission(slots int, patience time.Duration) *admission {
	a := &admission{slots: make(chan struct{}, slots), patience: patience}
	for i := 0; i < slots; i++ {
		a.slots <- struct{}{}
	}
	return a
}

// acquire obtains an execution slot, or reports shed=true with nothing
// held. ctx aborts the wait (connection-level teardown).
func (a *admission) acquire(ctx context.Context) (ok bool) {
	select {
	case <-a.slots:
		return true
	default:
	}
	if cm.SerialActive() {
		a.sheds.Add(1)
		return false
	}
	t := time.NewTimer(a.patience)
	defer t.Stop()
	select {
	case <-a.slots:
		return true
	case <-t.C:
		a.sheds.Add(1)
		return false
	case <-ctx.Done():
		return false
	}
}

// release returns a slot and folds the request's service time into the
// latency EWMA (alpha = 1/8, fixed-point on raw nanoseconds; races between
// updaters lose an update, which is fine for a hint).
func (a *admission) release(service time.Duration) {
	a.executed.Add(1)
	old := a.ewmaNs.Load()
	a.ewmaNs.Store(old - old/8 + uint64(service)/8)
	a.slots <- struct{}{}
}

// retryAfter is the hint shed clients receive: enough time for the current
// backlog to drain at the observed service rate, clamped to [1ms, 2s] so a
// cold EWMA or a latency spike still yields a sane wait.
func (a *admission) retryAfter() time.Duration {
	backlog := cap(a.slots) - len(a.slots) + 1
	d := time.Duration(a.ewmaNs.Load()) * time.Duration(backlog)
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}
