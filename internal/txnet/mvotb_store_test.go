package txnet

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/chaos/leak"
)

// newMVOTBServer builds a test server over the multi-version store.
func newMVOTBServer(t *testing.T, opts Options) (*Server, *MVOTBStore) {
	t.Helper()
	st := NewMVOTBStore()
	t.Cleanup(st.Stop)
	opts.Store = st
	return newTestServer(t, opts), st
}

// TestMVOTBStoreWire drives mixed and read-only batches through the full
// wire stack against the multi-version store: updates atomically, reads
// through the snapshot path (the all-read batch), same answers either way.
func TestMVOTBStoreWire(t *testing.T) {
	leak.CheckCleanup(t)
	s, _ := newMVOTBServer(t, Options{})
	c := newTestClient(t, s.Addr())
	ctx := context.Background()

	res, err := c.Do(ctx, []Op{
		{Code: OpAdd, Struct: 0, Key: 5},
		{Code: OpPut, Struct: 1, Key: 9, Val: 3},
		{Code: OpContains, Struct: 0, Key: 5}, // mixed batch: updater path
	})
	if err != nil {
		t.Fatalf("mixed batch: %v", err)
	}
	for i, r := range res {
		if !r.OK {
			t.Fatalf("mixed batch op %d: %+v", i, r)
		}
	}

	// All-read batch: snapshot path. One atomic view across both structures.
	res, err = c.Do(ctx, []Op{
		{Code: OpContains, Struct: 0, Key: 5},
		{Code: OpGet, Struct: 1, Key: 9},
		{Code: OpContains, Struct: 0, Key: 6},
	})
	if err != nil {
		t.Fatalf("read batch: %v", err)
	}
	if !res[0].OK || !res[1].OK || res[1].Out != 3 || res[2].OK {
		t.Fatalf("read batch results: %+v", res)
	}

	// Unsupported op on the set is rejected before any transactional work.
	if _, err := c.Do(ctx, []Op{{Code: OpMin, Struct: 0}}); err == nil {
		t.Fatal("OpMin on mvotb set: want error")
	}
}

// TestSessionTTLExpiryOnResume is the reconnect leg of session expiry: a
// client whose idle session was swept and whose connection is gone gets a
// definitive bad-request verdict when it tries to resume — never a fresh
// session that would silently re-apply an unacknowledged transaction. The
// store's state must show exactly the committed history.
func TestSessionTTLExpiryOnResume(t *testing.T) {
	leak.CheckCleanup(t)
	s, _ := newMVOTBServer(t, Options{SessionTTL: time.Nanosecond})
	c := newTestClient(t, s.Addr())
	ctx := context.Background()

	if ok, err := c.SetAdd(ctx, 0, 1); err != nil || !ok {
		t.Fatalf("add: %v %v", ok, err)
	}

	// Connection dies and the idle session expires while the client is away.
	c.mu.Lock()
	_ = c.dropLocked()
	c.mu.Unlock()
	time.Sleep(time.Millisecond)
	if n := s.sess.sweep(time.Now()); n == 0 {
		t.Fatal("session not swept")
	}

	// The next request forces the hello-resume path; the server no longer
	// knows the session and must refuse, loudly.
	dctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if _, err := c.Do(dctx, []Op{{Code: OpAdd, Struct: 0, Key: 2}}); !errors.Is(err, ErrSessionExpired) {
		t.Fatalf("want ErrSessionExpired on resume, got %v", err)
	}

	// A fresh session sees exactly the committed history: key 1 applied
	// once, the refused key 2 never applied.
	c2 := newTestClient(t, s.Addr())
	res, err := c2.Do(ctx, []Op{
		{Code: OpContains, Struct: 0, Key: 1},
		{Code: OpContains, Struct: 0, Key: 2},
	})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !res[0].OK || res[1].OK {
		t.Fatalf("state after expiry: key1=%v key2=%v, want true,false", res[0].OK, res[1].OK)
	}
	if ok, err := c2.SetAdd(ctx, 0, 1); err != nil || ok {
		t.Fatalf("re-add key 1: ok=%v err=%v, want false (already present exactly once)", ok, err)
	}
}
