package txnet

import (
	"sync"
	"sync/atomic"
	"time"
)

// session is the per-client exactly-once state. Sessions outlive
// connections: a client that reconnects resumes its session by ID, and the
// cached last response makes retrying an unacknowledged request safe.
//
// lastSeq advances only when a transaction commits. A request with
// seq == lastSeq is a retry of the committed transaction and is answered
// from lastResp without executing; seq > lastSeq executes (sequence gaps
// are normal — failed requests never advance lastSeq and the client moves
// on); seq < lastSeq is a protocol violation.
type session struct {
	id uint64
	// mu serializes requests of one session, so a zombie connection still
	// executing a retry-superseded request and the retry itself cannot
	// interleave: the retry observes either the cached response or a
	// not-yet-committed lastSeq, never a half-applied transaction.
	mu       sync.Mutex
	lastSeq  uint64
	lastResp []byte // encoded StatusOK response for lastSeq
	lastUsed atomic.Int64
}

func (s *session) touch() { s.lastUsed.Store(time.Now().UnixNano()) }

// sessionTable maps session IDs to live sessions. IDs are dense counters —
// sessions are an at-least-once-delivery dedup mechanism, not an
// authentication boundary (the server trusts its network, like any
// in-process runtime trusts its callers).
type sessionTable struct {
	mu       sync.Mutex
	sessions map[uint64]*session
	nextID   uint64
	ttl      time.Duration
}

func newSessionTable(ttl time.Duration) *sessionTable {
	return &sessionTable{sessions: make(map[uint64]*session), ttl: ttl}
}

// open creates a new session.
func (t *sessionTable) open() *session {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	s := &session{id: t.nextID}
	s.touch()
	t.sessions[s.id] = s
	return s
}

// lookup resumes an existing session; ok is false if it never existed or
// was expired (the client's exactly-once window is gone — it must fail
// loudly rather than risk a duplicate apply).
func (t *sessionTable) lookup(id uint64) (*session, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.sessions[id]
	if ok {
		s.touch()
	}
	return s, ok
}

// len reports the number of live sessions.
func (t *sessionTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.sessions)
}

// sweep drops sessions idle beyond the TTL and reports how many were
// removed. A swept session's cached response is gone, so the TTL must
// comfortably exceed any client's reconnect window (default 5 minutes vs.
// sub-second reconnect backoff).
func (t *sessionTable) sweep(now time.Time) int {
	cutoff := now.Add(-t.ttl).UnixNano()
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for id, s := range t.sessions {
		if s.lastUsed.Load() < cutoff {
			delete(t.sessions, id)
			n++
		}
	}
	return n
}
