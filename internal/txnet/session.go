package txnet

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// session is the per-client exactly-once state. Sessions outlive
// connections: a client that reconnects resumes its session by ID, and the
// cached last response makes retrying an unacknowledged request safe.
//
// lastSeq advances only when a transaction commits. A request with
// seq == lastSeq is a retry of the committed transaction and is answered
// from lastResp without executing; seq > lastSeq executes (sequence gaps
// are normal — failed requests never advance lastSeq and the client moves
// on); seq < lastSeq is a protocol violation.
type session struct {
	id uint64
	// mu serializes requests of one session, so a zombie connection still
	// executing a retry-superseded request and the retry itself cannot
	// interleave: the retry observes either the cached response or a
	// not-yet-committed lastSeq, never a half-applied transaction.
	mu       sync.Mutex
	lastSeq  uint64
	lastResp []byte // encoded StatusOK response for lastSeq
	lastUsed atomic.Int64
}

func (s *session) touch() { s.lastUsed.Store(time.Now().UnixNano()) }

// sessStats counts session-table health events across the process —
// rendered into telemetry.WriteTable so resume-after-expiry spikes (lost
// exactly-once windows) are visible on the debug endpoint.
var sessStats struct {
	opened        atomic.Uint64
	closed        atomic.Uint64 // explicit goodbye
	swept         atomic.Uint64 // TTL expiry
	resumed       atomic.Uint64
	resumeExpired atomic.Uint64 // resume attempts on dead sessions
}

// SessionStats is a point-in-time snapshot of the session counters.
type SessionStats struct {
	Opened        uint64
	Closed        uint64
	Swept         uint64
	Resumed       uint64
	ResumeExpired uint64
}

// SessionStatsSnapshot reads the session-table counters.
func SessionStatsSnapshot() SessionStats {
	return SessionStats{
		Opened:        sessStats.opened.Load(),
		Closed:        sessStats.closed.Load(),
		Swept:         sessStats.swept.Load(),
		Resumed:       sessStats.resumed.Load(),
		ResumeExpired: sessStats.resumeExpired.Load(),
	}
}

func init() {
	telemetry.RegisterSection(writeSessionSection)
}

func writeSessionSection(w io.Writer) {
	s := SessionStatsSnapshot()
	if s.Opened == 0 && s.ResumeExpired == 0 {
		return
	}
	fmt.Fprintf(w, "\nsessions: opened %d  closed %d  swept %d  resumed %d  resume-after-expiry %d\n",
		s.Opened, s.Closed, s.Swept, s.Resumed, s.ResumeExpired)
}

// sessionTable maps session IDs to live sessions. IDs are dense counters —
// sessions are an at-least-once-delivery dedup mechanism, not an
// authentication boundary (the server trusts its network, like any
// in-process runtime trusts its callers).
type sessionTable struct {
	mu       sync.Mutex
	sessions map[uint64]*session
	nextID   uint64
	ttl      time.Duration
}

func newSessionTable(ttl time.Duration) *sessionTable {
	return &sessionTable{sessions: make(map[uint64]*session), ttl: ttl}
}

// open creates a new session.
func (t *sessionTable) open() *session {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	s := &session{id: t.nextID}
	s.touch()
	t.sessions[s.id] = s
	sessStats.opened.Add(1)
	return s
}

// restore recreates the session with the given ID during recovery,
// returning the existing one if replay already produced it. nextID is
// pushed past every restored ID so post-recovery opens never collide.
func (t *sessionTable) restore(id uint64) *session {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.sessions[id]; ok {
		return s
	}
	s := &session{id: id}
	s.touch()
	t.sessions[id] = s
	if id > t.nextID {
		t.nextID = id
	}
	return s
}

// remove frees a session immediately (explicit client goodbye).
func (t *sessionTable) remove(id uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.sessions[id]; !ok {
		return false
	}
	delete(t.sessions, id)
	return true
}

// lookup resumes an existing session; ok is false if it never existed or
// was expired (the client's exactly-once window is gone — it must fail
// loudly rather than risk a duplicate apply).
func (t *sessionTable) lookup(id uint64) (*session, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.sessions[id]
	if ok {
		s.touch()
	}
	return s, ok
}

// len reports the number of live sessions.
func (t *sessionTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.sessions)
}

// each calls fn for every live session. Callers that read per-session
// fields (the durable snapshot encoder) must hold whatever lock orders
// commits against the iteration; the table lock only pins the map.
func (t *sessionTable) each(fn func(*session)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.sessions {
		fn(s)
	}
}

// counter reads the ID allocator, for snapshot encoding.
func (t *sessionTable) counter() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.nextID
}

// setNextID restores the ID counter from a snapshot (never lowers it).
func (t *sessionTable) setNextID(id uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id > t.nextID {
		t.nextID = id
	}
}

// sweep drops sessions idle beyond the TTL and reports how many were
// removed. A swept session's cached response is gone, so the TTL must
// comfortably exceed any client's reconnect window (default 5 minutes vs.
// sub-second reconnect backoff).
func (t *sessionTable) sweep(now time.Time) int {
	cutoff := now.Add(-t.ttl).UnixNano()
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for id, s := range t.sessions {
		if s.lastUsed.Load() < cutoff {
			delete(t.sessions, id)
			n++
		}
	}
	sessStats.swept.Add(uint64(n))
	return n
}
