package txnet

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos/failpoint"
	"repro/internal/chaos/leak"
	"repro/internal/trace"
)

// syncBuffer is a mutex-guarded bytes.Buffer: the slow-request log writes
// from connection goroutines while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// spanEvents filters a recorder snapshot down to one source's events for
// one span, in publication order.
func spanEvents(evs []trace.Event, runtime string, span uint64) []trace.Event {
	var out []trace.Event
	for _, e := range evs {
		if e.Runtime == runtime && e.Span == span {
			out = append(out, e)
		}
	}
	return out
}

func stagesOf(evs []trace.Event) map[trace.Stage]uint64 {
	m := map[trace.Stage]uint64{}
	for _, e := range evs {
		if e.Kind == trace.EvStage {
			m[trace.Stage(e.Key)] += e.Arg
		}
	}
	return m
}

func findReqStart(evs []trace.Event) (trace.Event, bool) {
	for _, e := range evs {
		if e.Kind == trace.EvReqStart {
			return e, true
		}
	}
	return trace.Event{}, false
}

// TestTraceEndToEnd commits one mutating transaction against a durable
// server with the flight recorder sampling everything, and checks the
// acceptance shape: the client span and the server span share one trace id
// (the wire-propagated one), the server records execute, wal-append, fsync
// and ack stages under that id, and the client's wire stage block carries
// the server-side breakdown.
func TestTraceEndToEnd(t *testing.T) {
	leak.CheckCleanup(t)
	s := newDurableServer(t, t.TempDir(), -1)

	trace.Default.Reset()
	trace.Enable(1)
	defer func() {
		trace.Disable()
		trace.Default.Reset()
	}()

	c := newTestClient(t, s.Addr())
	var st Stages
	res, err := c.DoStages(context.Background(), []Op{
		{Code: OpAdd, Struct: 0, Key: 7},
		{Code: OpPut, Struct: 1, Key: 7, Val: 99},
	}, &st)
	if err != nil {
		t.Fatalf("DoStages: %v", err)
	}
	if !res[0].OK || !res[1].OK {
		t.Fatalf("results: %+v", res)
	}

	evs := trace.Default.Snapshot()
	var span uint64
	for _, e := range evs {
		if e.Runtime == "txnet.client" && e.Kind == trace.EvReqStart {
			span = e.Span
			break
		}
	}
	if span == 0 {
		t.Fatalf("no client request span in %d events", len(evs))
	}

	client := spanEvents(evs, "txnet.client", span)
	server := spanEvents(evs, "txnet.server", span)
	if len(server) == 0 {
		t.Fatalf("server recorded no events under the client's trace id %016x", span)
	}
	start, ok := findReqStart(server)
	if !ok {
		t.Fatalf("server span %016x has no req-start", span)
	}
	if start.Arg != span {
		t.Fatalf("server parent = %016x, want the client root %016x", start.Arg, span)
	}

	cs, ss := stagesOf(client), stagesOf(server)
	if cs[trace.StageNet] == 0 {
		t.Fatalf("client recorded no net stage: %v", cs)
	}
	for _, want := range []trace.Stage{trace.StageExecute, trace.StageWALAppend, trace.StageFsync, trace.StageAck} {
		if ss[want] == 0 {
			t.Fatalf("server span missing %v stage: %v", want, ss)
		}
	}
	for _, evsSide := range [][]trace.Event{client, server} {
		if evsSide[len(evsSide)-1].Kind != trace.EvReqEnd {
			t.Fatalf("span not closed: last event %v", evsSide[len(evsSide)-1].Kind)
		}
	}

	// The wire stage block carried the server breakdown back to the client.
	if st.Total <= 0 {
		t.Fatalf("stages total %v", st.Total)
	}
	if st.D[trace.StageWALAppend] <= 0 || st.D[trace.StageFsync] <= 0 {
		t.Fatalf("wire stage block missing durability stages: %+v", st.D)
	}
	if st.D[trace.StageNet] <= 0 {
		t.Fatalf("wire stage block missing client net stage: %+v", st.D)
	}
}

// TestTraceRetryKeepsID drops the server connection after the first request
// frame is read (the request never dispatches), forcing the client's
// exactly-once resend, and checks that the retry is one trace: the resent
// request reuses the original trace id verbatim, both sides mark the resend,
// and the operation still executes exactly once.
func TestTraceRetryKeepsID(t *testing.T) {
	leak.CheckCleanup(t)
	s := newTestServer(t, Options{})

	trace.Default.Reset()
	trace.Enable(1)
	defer func() {
		trace.Disable()
		trace.Default.Reset()
	}()

	c := newTestClient(t, s.Addr())
	defer failpoint.Arm("txnet.conn.drop", failpoint.Spec{Action: failpoint.Panic, Nth: 1})()
	if ok, err := c.SetAdd(context.Background(), 0, 42); err != nil || !ok {
		t.Fatalf("add across drop: %v %v", ok, err)
	}
	if c.Stats().Resends == 0 {
		t.Fatalf("expected a resend: %+v", c.Stats())
	}

	evs := trace.Default.Snapshot()
	var clientSpans []uint64
	for _, e := range evs {
		if e.Runtime == "txnet.client" && e.Kind == trace.EvReqStart {
			clientSpans = append(clientSpans, e.Span)
		}
	}
	if len(clientSpans) != 1 {
		t.Fatalf("client opened %d request spans, want 1 (the retry must stay one trace)", len(clientSpans))
	}
	span := clientSpans[0]

	client := spanEvents(evs, "txnet.client", span)
	server := spanEvents(evs, "txnet.server", span)
	if len(server) == 0 {
		t.Fatalf("resent request did not carry trace id %016x to the server", span)
	}

	var clientResend, serverResend bool
	for _, e := range client {
		if e.Kind == trace.EvResend && e.Arg == 1 {
			clientResend = true
		}
	}
	for _, e := range server {
		if e.Kind == trace.EvResend {
			serverResend = true
		}
	}
	if !clientResend {
		t.Fatalf("client span has no resend marker")
	}
	if !serverResend {
		t.Fatalf("server span has no resend marker (flagResend not propagated)")
	}

	// Exactly once: the add committed a single time, so the key is present
	// and a second add reports it as a duplicate.
	if ok, err := c.SetContains(context.Background(), 0, 42); err != nil || !ok {
		t.Fatalf("contains: %v %v", ok, err)
	}
	if ok, err := c.SetAdd(context.Background(), 0, 42); err != nil || ok {
		t.Fatalf("re-add: ok=%v err=%v, want duplicate", ok, err)
	}
}

// TestSlowRequestLog drives one traced request through a server with a
// zero slow threshold and checks the structured line: the wire trace id,
// session/seq, and at least one stage duration.
func TestSlowRequestLog(t *testing.T) {
	leak.CheckCleanup(t)
	var buf syncBuffer
	s := newTestServer(t, Options{SlowThreshold: time.Nanosecond, SlowWriter: &buf})
	c := newTestClient(t, s.Addr())
	if ok, err := c.SetAdd(context.Background(), 0, 1); err != nil || !ok {
		t.Fatalf("add: %v %v", ok, err)
	}
	c.Close()
	s.Close()
	out := buf.String()
	if !strings.Contains(out, "txnet slow-request trace=") ||
		!strings.Contains(out, "status=ok") || !strings.Contains(out, "execute=") {
		t.Fatalf("slow log missing fields:\n%s", out)
	}
}
