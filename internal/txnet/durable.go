package txnet

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"repro/internal/trace"
	"repro/internal/wal"
)

// Durable makes a txnet server crash-recoverable: every committed mutating
// transaction is appended to a semantic write-ahead log (the op batch, not
// page images) before its acknowledgement leaves the process, and periodic
// snapshots — a full store dump plus the session table with its
// exactly-once response caches — bound replay time and let the log be
// truncated. On startup the newest valid snapshot is applied and the log
// tail replayed, so under -fsync=always every acked commit survives a kill
// and every resumed session still replays its cached verdict.
//
// Ordering: mutating transactions execute and log under one mutex, which
// fixes the replay order to the execution order. Durable mode therefore
// trades mutating-commit concurrency for deterministic recovery; read-only
// transactions are never logged and keep running fully concurrently.
//
// Failure model is fail-stop: if the log cannot append or fsync, the
// server must not keep acknowledging — commitTxn panics with *walFatal,
// which the connection handlers deliberately do not recover, crashing the
// process before any non-durable ack escapes.
type Durable struct {
	store DurableStore
	log   *wal.Log
	// mu orders everything the log sees: mutating Exec+Append pairs,
	// session lastSeq/lastResp updates (including read-only ones, so the
	// snapshot encoder can read them under mu alone), session open/close
	// records, and snapshots. Lock order: session.mu → mu → table.mu.
	mu               sync.Mutex
	buf              []byte
	snapEvery        int
	commitsSinceSnap int
	sess             *sessionTable
	rec              RecoveryStats
}

// DurableStore is a Store whose full state can be dumped as ops — what a
// snapshot needs beyond the session table. OTBStore implements it.
type DurableStore interface {
	Store
	DumpOps(emit func(Op))
}

// DurabilityOptions configure OpenDurable.
type DurabilityOptions struct {
	// Dir holds the log segments and snapshots.
	Dir string
	// Fsync is the group-commit policy (wal.SyncAlways acknowledges only
	// after fsync; wal.SyncInterval bounds loss to FsyncInterval;
	// wal.SyncNever leaves flushing to the OS).
	Fsync wal.Policy
	// FsyncInterval is the background fsync cadence under SyncInterval.
	FsyncInterval time.Duration
	// SnapshotEvery snapshots after that many logged commits. 0 means
	// DefaultSnapshotEvery; negative disables snapshotting.
	SnapshotEvery int
}

// DefaultSnapshotEvery is the snapshot cadence when unset.
const DefaultSnapshotEvery = 4096

// RecoveryStats describes what OpenDurable found and rebuilt.
type RecoveryStats struct {
	SnapshotLSN      uint64
	RecordsReplayed  int // log records beyond the snapshot
	CommitsReplayed  int // commit records among them
	SessionsRestored int
	TornTail         bool
	SnapshotsSkipped int
	Elapsed          time.Duration
}

// walFatal wraps a durable-commit-path log failure. It is panicked and
// deliberately NOT recovered by the connection handlers: once the log is
// broken the server cannot promise durability, so it must stop
// acknowledging — crash now, recover on restart.
type walFatal struct{ err error }

func (f *walFatal) Error() string { return "txnet: durability lost: " + f.err.Error() }
func (f *walFatal) Unwrap() error { return f.err }

func (d *Durable) fatal(err error) {
	panic(&walFatal{err: err})
}

// OpenDurable opens (creating if needed) the durable state in o.Dir,
// replays it into store, and returns the handle to pass as
// Options.Durable. The store must be empty: recovery rebuilds it from the
// snapshot and log.
func OpenDurable(store DurableStore, o DurabilityOptions) (*Durable, error) {
	start := time.Now()
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = DefaultSnapshotEvery
	}
	l, rec, err := wal.Open(o.Dir, wal.Options{Policy: o.Fsync, Interval: o.FsyncInterval})
	if err != nil {
		return nil, err
	}
	d := &Durable{
		store:     store,
		log:       l,
		snapEvery: o.SnapshotEvery,
		sess:      newSessionTable(DefaultSessionTTL),
	}
	if err := d.replay(rec); err != nil {
		_ = l.Close()
		return nil, err
	}
	d.rec.SnapshotLSN = rec.SnapshotLSN
	d.rec.RecordsReplayed = len(rec.Records)
	d.rec.TornTail = rec.TornTail
	d.rec.SnapshotsSkipped = rec.SnapshotsSkipped
	d.rec.SessionsRestored = d.sess.len()
	d.rec.Elapsed = time.Since(start)
	return d, nil
}

// Recovery reports what the last OpenDurable rebuilt.
func (d *Durable) Recovery() RecoveryStats { return d.rec }

// Close flushes and closes the log. The owning server calls this after its
// last connection has drained.
func (d *Durable) Close() error { return d.log.Close() }

// adoptSessions hands the recovered session table to the serving layer,
// applying its TTL. Restored sessions start with a fresh idle clock —
// server downtime must not burn a client's exactly-once window.
func (d *Durable) adoptSessions(ttl time.Duration) *sessionTable {
	d.sess.mu.Lock()
	d.sess.ttl = ttl
	d.sess.mu.Unlock()
	return d.sess
}

// Durable log record kinds (first payload byte).
const (
	recCommit       byte = 1
	recSessionOpen  byte = 2
	recSessionClose byte = 3
)

// mutating reports whether any op changes state; pure-read batches are not
// logged (replaying them is a no-op, and skipping them keeps the log — and
// therefore recovery time — proportional to actual writes).
func mutating(ops []Op) bool {
	for _, op := range ops {
		switch op.Code {
		case OpAdd, OpRemove, OpPut, OpDelete, OpRemoveMin:
			return true
		}
	}
	return false
}

func appendOp(b []byte, op Op) []byte {
	b = append(b, byte(op.Code))
	b = binary.BigEndian.AppendUint32(b, op.Struct)
	b = binary.BigEndian.AppendUint64(b, uint64(op.Key))
	return binary.BigEndian.AppendUint64(b, op.Val)
}

func parseOp(p []byte) Op {
	return Op{
		Code:   OpCode(p[0]),
		Struct: binary.BigEndian.Uint32(p[1:]),
		Key:    int64(binary.BigEndian.Uint64(p[5:])),
		Val:    binary.BigEndian.Uint64(p[13:]),
	}
}

// commitTxn is execTxn's commit path in durable mode: execute, log, ack —
// in that order, with the ack written to the wire only after SyncTo
// honours the fsync policy. Called with sess.mu held. Store errors return
// for the caller's status classification; log errors never return.
func (d *Durable) commitTxn(ctx context.Context, sess *session, req txnReq, results []OpResult, resp []byte, o *reqObs) ([]byte, error) {
	if !mutating(req.ops) {
		// Read-only: nothing to log. Execute outside d.mu (reads keep
		// their concurrency) but update the session cache under it, so
		// the snapshot encoder sees a consistent pair.
		err := d.store.Exec(ctx, req.ops, results)
		o.stamp(trace.StageExecute)
		if err != nil {
			return resp, err
		}
		resp = appendOKResp(resp, req.seq, results, o.wireStages(req))
		d.mu.Lock()
		sess.lastSeq = req.seq
		sess.lastResp = append(sess.lastResp[:0], resp...)
		d.mu.Unlock()
		return resp, nil
	}

	d.mu.Lock()
	err := d.store.Exec(ctx, req.ops, results)
	o.stamp(trace.StageExecute)
	if err != nil {
		d.mu.Unlock()
		return resp, err
	}
	// The store has applied; from here every exit must be an ack or a
	// crash. A logging failure after apply cannot be reported as an abort
	// — that would un-promise a state change the store already made.
	d.buf = append(d.buf[:0], recCommit)
	d.buf = binary.BigEndian.AppendUint64(d.buf, sess.id)
	d.buf = binary.BigEndian.AppendUint64(d.buf, req.seq)
	d.buf = binary.BigEndian.AppendUint16(d.buf, uint16(len(req.ops)))
	for _, op := range req.ops {
		d.buf = appendOp(d.buf, op)
	}
	lsn, err := d.log.Append(d.buf)
	if err != nil {
		d.mu.Unlock()
		d.fatal(err)
	}
	o.stamp(trace.StageWALAppend)
	okStart := len(resp)
	resp = appendOKResp(resp, req.seq, results, o.wireStages(req))
	sess.lastSeq = req.seq
	sess.lastResp = append(sess.lastResp[:0], resp...)
	d.commitsSinceSnap++
	if d.snapEvery > 0 && d.commitsSinceSnap >= d.snapEvery {
		d.commitsSinceSnap = 0
		// Snapshot failures are survivable (the log still has
		// everything); wal counts them and we carry on.
		_ = d.log.Snapshot(d.snapshotPayloadLocked())
	}
	d.mu.Unlock()
	o.rearm()
	if err := d.log.SyncTo(lsn); err != nil {
		d.fatal(err)
	}
	o.stamp(trace.StageFsync)
	if ws := o.wireStages(req); ws != nil {
		// Re-encode so the wire block includes the fsync wait. The cached
		// replay keeps the pre-fsync block (the results are identical and
		// both parse the same).
		resp = appendOKResp(resp[:okStart], req.seq, results, ws)
	}
	return resp, nil
}

// logSessionOpen records a session grant. Synced under the ack policy like
// a commit: once the client holds the ID, a restart must still honour it.
func (d *Durable) logSessionOpen(id uint64) {
	d.mu.Lock()
	d.buf = append(d.buf[:0], recSessionOpen)
	d.buf = binary.BigEndian.AppendUint64(d.buf, id)
	lsn, err := d.log.Append(d.buf)
	d.mu.Unlock()
	if err != nil {
		d.fatal(err)
	}
	if err := d.log.SyncTo(lsn); err != nil {
		d.fatal(err)
	}
}

// logSessionClose records an explicit goodbye. Not synced — resurrecting
// a closed session after a crash is harmless (it idles out), so the close
// can ride the next group commit.
func (d *Durable) logSessionClose(id uint64) {
	d.mu.Lock()
	d.buf = append(d.buf[:0], recSessionClose)
	d.buf = binary.BigEndian.AppendUint64(d.buf, id)
	_, err := d.log.Append(d.buf)
	d.mu.Unlock()
	if err != nil {
		d.fatal(err)
	}
}

// snapshotPayloadLocked encodes the full recovery image: session table
// (with exactly-once caches), ID counter, then the store as one op per
// live entry. Caller holds d.mu, which excludes every writer of the
// fields read here.
func (d *Durable) snapshotPayloadLocked() []byte {
	var b []byte
	var nsess uint32
	lenAt := len(b)
	b = binary.BigEndian.AppendUint32(b, 0)
	d.sess.each(func(s *session) {
		nsess++
		b = binary.BigEndian.AppendUint64(b, s.id)
		b = binary.BigEndian.AppendUint64(b, s.lastSeq)
		b = binary.BigEndian.AppendUint32(b, uint32(len(s.lastResp)))
		b = append(b, s.lastResp...)
	})
	binary.BigEndian.PutUint32(b[lenAt:], nsess)
	b = binary.BigEndian.AppendUint64(b, d.sess.counter())
	var nops uint32
	opsAt := len(b)
	b = binary.BigEndian.AppendUint32(b, 0)
	d.store.DumpOps(func(op Op) {
		nops++
		b = appendOp(b, op)
	})
	binary.BigEndian.PutUint32(b[opsAt:], nops)
	return b
}

// replay rebuilds store and session state from a recovery image: snapshot
// first, then the log tail in LSN order. Replay handlers are idempotent
// and create sessions on demand, so a snapshot taken between a session's
// open and its open record landing in the log still recovers exactly.
func (d *Durable) replay(rec *wal.Recovery) error {
	if rec.Snapshot != nil {
		if err := d.applySnapshot(rec.Snapshot); err != nil {
			return fmt.Errorf("txnet: snapshot at lsn %d: %w", rec.SnapshotLSN, err)
		}
	}
	results := make([]OpResult, 0, 64)
	for _, r := range rec.Records {
		if err := d.replayRecord(r, &results); err != nil {
			return fmt.Errorf("txnet: replaying lsn %d: %w", r.LSN, err)
		}
	}
	return nil
}

func (d *Durable) replayRecord(r wal.Record, results *[]OpResult) error {
	p := r.Payload
	if len(p) == 0 {
		return fmt.Errorf("empty record")
	}
	switch p[0] {
	case recSessionOpen:
		if len(p) != 9 {
			return fmt.Errorf("session-open record of %d bytes", len(p))
		}
		d.sess.restore(binary.BigEndian.Uint64(p[1:]))
		return nil
	case recSessionClose:
		if len(p) != 9 {
			return fmt.Errorf("session-close record of %d bytes", len(p))
		}
		d.sess.remove(binary.BigEndian.Uint64(p[1:]))
		return nil
	case recCommit:
		if len(p) < 1+8+8+2 {
			return fmt.Errorf("commit record of %d bytes", len(p))
		}
		id := binary.BigEndian.Uint64(p[1:])
		seq := binary.BigEndian.Uint64(p[9:])
		n := int(binary.BigEndian.Uint16(p[17:]))
		p = p[19:]
		if len(p) != n*opWireSize {
			return fmt.Errorf("commit body %d bytes for %d ops", len(p), n)
		}
		ops := make([]Op, n)
		for i := range ops {
			ops[i] = parseOp(p[i*opWireSize:])
		}
		if cap(*results) < n {
			*results = make([]OpResult, n)
		}
		res := (*results)[:n]
		if err := d.store.Exec(context.Background(), ops, res); err != nil {
			return fmt.Errorf("re-executing: %w", err)
		}
		sess := d.sess.restore(id)
		if seq >= sess.lastSeq {
			sess.lastSeq = seq
			sess.lastResp = appendOKResp(sess.lastResp[:0], seq, res, nil)
		}
		d.rec.CommitsReplayed++
		return nil
	default:
		return fmt.Errorf("unknown record kind %d", p[0])
	}
}

// applySnapshot decodes and applies one snapshot payload. Store ops are
// re-executed in batches so a huge store does not allocate one giant
// result slice.
func (d *Durable) applySnapshot(p []byte) error {
	if len(p) < 4 {
		return fmt.Errorf("short header")
	}
	nsess := int(binary.BigEndian.Uint32(p))
	p = p[4:]
	for i := 0; i < nsess; i++ {
		if len(p) < 20 {
			return fmt.Errorf("truncated session %d", i)
		}
		id := binary.BigEndian.Uint64(p)
		lastSeq := binary.BigEndian.Uint64(p[8:])
		n := int(binary.BigEndian.Uint32(p[16:]))
		p = p[20:]
		if len(p) < n {
			return fmt.Errorf("truncated session %d response", i)
		}
		s := d.sess.restore(id)
		s.lastSeq = lastSeq
		if n > 0 {
			s.lastResp = append([]byte(nil), p[:n]...)
		}
		p = p[n:]
	}
	if len(p) < 12 {
		return fmt.Errorf("truncated trailer")
	}
	d.sess.setNextID(binary.BigEndian.Uint64(p))
	nops := int(binary.BigEndian.Uint32(p[8:]))
	p = p[12:]
	if len(p) != nops*opWireSize {
		return fmt.Errorf("store dump %d bytes for %d ops", len(p), nops)
	}
	const batch = 1024
	ops := make([]Op, 0, batch)
	results := make([]OpResult, batch)
	flush := func() error {
		if len(ops) == 0 {
			return nil
		}
		if err := d.store.Exec(context.Background(), ops, results[:len(ops)]); err != nil {
			return fmt.Errorf("rebuilding store: %w", err)
		}
		ops = ops[:0]
		return nil
	}
	for i := 0; i < nops; i++ {
		ops = append(ops, parseOp(p[i*opWireSize:]))
		if len(ops) == batch {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}
