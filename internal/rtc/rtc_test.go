package rtc_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos/leak"
	"repro/internal/mem"
	"repro/internal/rtc"
	"repro/internal/stm"
)

func variants() map[string]rtc.Options {
	return map[string]rtc.Options{
		"no-dd":         {Secondaries: 0},
		"one-secondary": {Secondaries: 1, DDThreshold: 1},
		"two-secondary": {Secondaries: 2, DDThreshold: 1},
	}
}

func TestCounterIncrement(t *testing.T) {
	leak.CheckCleanup(t)
	for name, opts := range variants() {
		t.Run(name, func(t *testing.T) {
			s := rtc.New(opts)
			defer s.Stop()
			const workers = 8
			const each = 200
			c := mem.NewCell(0)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < each; i++ {
						s.Atomic(func(tx stm.Tx) { tx.Write(c, tx.Read(c)+1) })
					}
				}()
			}
			wg.Wait()
			if got := c.Load(); got != workers*each {
				t.Fatalf("counter = %d, want %d", got, workers*each)
			}
		})
	}
}

func TestBankInvariant(t *testing.T) {
	leak.CheckCleanup(t)
	for name, opts := range variants() {
		t.Run(name, func(t *testing.T) {
			s := rtc.New(opts)
			defer s.Stop()
			const accounts = 32
			const initial = 100
			cells := make([]*mem.Cell, accounts)
			for i := range cells {
				cells[i] = mem.NewCell(initial)
			}
			const workers = 6
			const each = 150
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int) {
					defer wg.Done()
					for i := 0; i < each; i++ {
						from := (seed*31 + i) % accounts
						to := (seed + i*17 + 1) % accounts
						if from == to {
							to = (to + 1) % accounts
						}
						s.Atomic(func(tx stm.Tx) {
							a := tx.Read(cells[from])
							b := tx.Read(cells[to])
							if a == 0 {
								return
							}
							tx.Write(cells[from], a-1)
							tx.Write(cells[to], b+1)
						})
					}
				}(w)
			}
			wg.Wait()
			var total uint64
			for _, c := range cells {
				total += c.Load()
			}
			if total != accounts*initial {
				t.Fatalf("total = %d, want %d", total, accounts*initial)
			}
		})
	}
}

func TestReadConsistency(t *testing.T) {
	leak.CheckCleanup(t)
	s := rtc.New(rtc.Options{Secondaries: 1, DDThreshold: 1})
	defer s.Stop()
	a, b := mem.NewCell(0), mem.NewCell(0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.Atomic(func(tx stm.Tx) {
				tx.Write(a, i)
				tx.Write(b, i)
			})
		}
	}()
	for i := 0; i < 1500; i++ {
		s.Atomic(func(tx stm.Tx) {
			va, vb := tx.Read(a), tx.Read(b)
			if va != vb {
				t.Errorf("torn read: %d != %d", va, vb)
			}
		})
	}
	close(stop)
	wg.Wait()
}

// TestSecondaryCommitsIndependent drives disjoint transactions with large
// write sets so the dependency detector has windows to fill, then checks it
// actually committed some of them.
func TestSecondaryCommitsIndependent(t *testing.T) {
	leak.CheckCleanup(t)
	s := rtc.New(rtc.Options{Secondaries: 1, DDThreshold: 2})
	defer s.Stop()
	const workers = 8
	const each = 300
	const cellsPer = 8
	banks := make([][]*mem.Cell, workers)
	for w := range banks {
		banks[w] = make([]*mem.Cell, cellsPer)
		for i := range banks[w] {
			banks[w][i] = mem.NewCell(0)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(mine []*mem.Cell) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				s.Atomic(func(tx stm.Tx) {
					for _, c := range mine {
						tx.Write(c, tx.Read(c)+1)
					}
				})
			}
		}(banks[w])
	}
	wg.Wait()
	for w := range banks {
		for i, c := range banks[w] {
			if c.Load() != each {
				t.Fatalf("banks[%d][%d] = %d, want %d", w, i, c.Load(), each)
			}
		}
	}
	t.Logf("secondary commits: %d of %d", s.SecondaryCommits(), s.Commits())
}

// TestShutdownUnderConcurrentClients exercises the full service lifecycle
// under load: a pool of clients hammers the servers until their context is
// cancelled mid-flight, every client unwinds with context.Canceled (never a
// hang, never a lost commit), and Stop then brings the server goroutines
// down leak-free. The cell sum must equal the commit count — a commit whose
// effect vanished, or an effect without a commit, means the drain tore a
// transaction in half.
func TestShutdownUnderConcurrentClients(t *testing.T) {
	leak.CheckCleanup(t)
	for name, opts := range variants() {
		t.Run(name, func(t *testing.T) {
			s := rtc.New(opts)
			const cellsN = 16
			cells := make([]*mem.Cell, cellsN)
			for i := range cells {
				cells[i] = mem.NewCell(0)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()

			const workers = 8
			var committed atomic.Uint64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; ; i++ {
						err := s.AtomicCtx(ctx, func(tx stm.Tx) {
							c := cells[(w*31+i)%cellsN]
							tx.Write(c, tx.Read(c)+1)
						})
						if err != nil {
							if !errors.Is(err, context.Canceled) {
								t.Errorf("worker %d: AtomicCtx = %v, want context.Canceled", w, err)
							}
							return
						}
						committed.Add(1)
					}
				}(w)
			}

			time.Sleep(30 * time.Millisecond)
			cancel()
			drained := make(chan struct{})
			go func() { wg.Wait(); close(drained) }()
			select {
			case <-drained:
			case <-time.After(10 * time.Second):
				t.Fatal("clients did not unwind after cancellation")
			}
			s.Stop()

			if committed.Load() == 0 {
				t.Fatal("no transaction committed before the drain")
			}
			var sum uint64
			for _, c := range cells {
				sum += c.Load()
			}
			if sum != committed.Load() {
				t.Fatalf("cell sum %d != client-observed commits %d", sum, committed.Load())
			}
			if s.Commits() != committed.Load() {
				t.Fatalf("server commit count %d != client-observed commits %d", s.Commits(), committed.Load())
			}
		})
	}
}
