// Package rtc implements Remote Transaction Commit (Chapter 5): a
// NOrec-style STM whose commit phases execute on dedicated server
// goroutines instead of in the application threads. Clients post commit
// requests into a cache-padded request array and spin (yielding) on their
// own slot; the main server executes commits serially, and one or more
// secondary servers use bloom filters to detect requests independent of the
// in-flight commit and execute them concurrently.
//
// The "dedicated cores" of the paper become dedicated goroutines here: the
// request/response protocol, the dependency detection, and the
// server-synchronization rules (the servers lock and the odd/even global
// timestamp) are reproduced exactly; core pinning is not expressible in
// portable Go.
package rtc

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/abort"
	"repro/internal/bloom"
	"repro/internal/chaos/failpoint"
	"repro/internal/cm"
	"repro/internal/mem"
	"repro/internal/spin"
	"repro/internal/stm"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Failpoints on the RTC commit paths.
var (
	// fpCommitPre fires client-side, before the commit request is posted to
	// the server; nothing is held.
	fpCommitPre = failpoint.New("rtc.commit.pre")
	// fpServerDrop fires in the main server's serve routine before the
	// request is examined. Injected panics are recovered by the server
	// itself — a dead server would strand every client — which aborts the
	// in-flight request and keeps serving.
	fpServerDrop = failpoint.New("rtc.server.drop")
)

// Request states.
const (
	stateReady int32 = iota
	statePending
	stateAborted
)

// DefaultClients is the default size of the request array.
const DefaultClients = 64

// DefaultDDThreshold is the write-set size at or above which dependency
// detection is enabled for a commit (Section 5.1.1: short commits finish
// before the secondary server can make progress, so DD is counterproductive
// for them).
const DefaultDDThreshold = 4

// request is one slot of the cache-aligned requests array.
type request struct {
	state atomic.Int32
	tx    *txDesc
	_     spin.Pad
}

// txDesc is the transaction context a client hands to the servers.
type txDesc struct {
	snapshot uint64
	attempts uint32 // aborted attempts of this transaction (CM priority)
	reads    []stm.ReadEntry
	writes   stm.WriteSet
	wf       bloom.Filter // write filter
	rwf      bloom.Filter // read-write filter
}

// Options configure an RTC instance.
type Options struct {
	// Clients is the size of the request array (maximum concurrent
	// transactions). 0 means DefaultClients.
	Clients int
	// Secondaries is the number of dependency-detector servers (Figure
	// 5.11 sweeps 0, 1, 2). 0 disables dependency detection entirely.
	Secondaries int
	// DDThreshold is the minimum write-set size for DD-enabled commits.
	// 0 means DefaultDDThreshold.
	DDThreshold int
	// FairScheduling makes the main server involve the contention manager
	// in its decisions (the paper's Section 7.1.3 proposal): among pending
	// requests it serves the transaction with the most aborted attempts
	// first, instead of sweeping in slot order.
	FairScheduling bool
}

// STM is an RTC instance. Stop must be called to release its servers.
type STM struct {
	clock       spin.SeqLock // global timestamp; only the main server advances it
	reqs        []request
	clients     chan *client
	serversLock atomic.Bool
	ddActive    atomic.Bool
	mainReq     atomic.Int32
	windowWF    bloom.Filter // union of write filters committed in the open window
	threshold   int
	secondaries int
	fair        bool
	ctr         spin.Counters
	cmgr        *cm.Manager
	stats       struct {
		commits     atomic.Uint64
		aborts      atomic.Uint64
		secondaries atomic.Uint64 // commits executed by secondary servers
	}
	stop     atomic.Bool
	wg       sync.WaitGroup
	traceSrc *trace.Source
}

// New creates an RTC instance with one main server and opts.Secondaries
// dependency detectors, all started immediately.
func New(opts Options) *STM {
	n := opts.Clients
	if n == 0 {
		n = DefaultClients
	}
	thr := opts.DDThreshold
	if thr == 0 {
		thr = DefaultDDThreshold
	}
	s := &STM{
		reqs:        make([]request, n),
		clients:     make(chan *client, n),
		threshold:   thr,
		secondaries: opts.Secondaries,
		fair:        opts.FairScheduling,
	}
	s.mainReq.Store(-1)
	mtr := telemetry.M("RTC")
	mtr.SetPolicySource(func() string { return cm.Or(s.cmgr).Policy().Name() })
	src := trace.S("RTC")
	for i := 0; i < n; i++ {
		s.clients <- &client{s: s, slot: i, tx: &txDesc{}, tel: mtr.Local(), tr: src.Local()}
	}
	s.traceSrc = src
	s.wg.Add(1)
	go s.mainServer()
	for k := 0; k < opts.Secondaries; k++ {
		s.wg.Add(1)
		go s.secondaryServer()
	}
	return s
}

// Name implements stm.Algorithm.
func (s *STM) Name() string { return "RTC" }

// Counters implements stm.Algorithm.
func (s *STM) Counters() *spin.Counters { return &s.ctr }

// SetManager installs the contention manager transactions run under (nil
// means the shared cm.Default manager). It must be set before any
// transaction runs. The servers themselves are never gated, so an escalated
// client's commit requests are still served while the other clients pause.
func (s *STM) SetManager(m *cm.Manager) { s.cmgr = m }

// Stop shuts down the server goroutines. In-flight transactions must have
// drained first (callers stop their workers before the algorithm).
func (s *STM) Stop() {
	s.stop.Store(true)
	s.wg.Wait()
}

// Commits and Aborts report lifetime transaction outcomes.
func (s *STM) Commits() uint64 { return s.stats.commits.Load() }

// Aborts reports the number of aborted attempts.
func (s *STM) Aborts() uint64 { return s.stats.aborts.Load() }

// SecondaryCommits reports how many commits the dependency detectors
// executed (Figure 5.11's effectiveness measure).
func (s *STM) SecondaryCommits() uint64 { return s.stats.secondaries.Load() }

// client is a transaction descriptor bound to one request slot.
type client struct {
	s    *STM
	slot int
	tx   *txDesc
	tel  *telemetry.Local
	tr   *trace.Local
}

// Atomic implements stm.Algorithm.
func (s *STM) Atomic(fn func(stm.Tx)) { s.AtomicCtx(nil, fn) }

// AtomicCtx implements stm.AlgorithmCtx: Atomic observing ctx. The client
// descriptor returns to the channel even when fn (or an armed failpoint)
// panics — a leaked client would shrink the request array for the life of
// the instance. No commit request is in flight when the panic unwinds: the
// client posts at most one request per attempt and blocks until its verdict.
func (s *STM) AtomicCtx(ctx context.Context, fn func(stm.Tx)) error {
	c := <-s.clients
	defer func() { s.clients <- c }()
	c.tx.attempts = 0
	start := c.tel.Start()
	c.tr.TxStart()
	defer c.tr.TxEnd()
	escalated, err := abort.RunPolicyCtx(ctx, nil, cm.Or(s.cmgr),
		c.begin,
		func() {
			fn(c)
			cs := c.tel.Start()
			c.tr.CommitBegin()
			c.commit()
			c.tr.CommitEnd()
			c.tel.CommitPhase(cs)
		},
		func(r abort.Reason) {
			c.tx.attempts++
			s.stats.aborts.Add(1)
			c.tr.Abort(r)
			c.tel.Abort(r)
		},
	)
	if escalated {
		c.tr.Escalated()
		c.tel.Escalated()
	}
	if err != nil {
		return err
	}
	s.stats.commits.Add(1)
	c.tel.Commit(start)
	return nil
}

func (c *client) begin() {
	c.tr.AttemptStart()
	t := c.tx
	t.reads = t.reads[:0]
	t.writes.Reset()
	t.wf.Clear()
	t.rwf.Clear()
	t.snapshot = c.s.clock.WaitUnlocked(&c.s.ctr)
}

// Read implements stm.Tx: NOrec-style post-read validation plus read-write
// filter maintenance (Algorithm 8).
func (c *client) Read(cell *mem.Cell) uint64 {
	t := c.tx
	if v, ok := t.writes.Get(cell); ok {
		return v
	}
	t.rwf.Add(cell.ID())
	v := cell.Load()
	for t.snapshot != c.s.clock.Load() {
		t.snapshot = c.validate()
		v = cell.Load()
	}
	t.reads = append(t.reads, stm.ReadEntry{Cell: cell, Val: v})
	return v
}

// Write implements stm.Tx.
func (c *client) Write(cell *mem.Cell, v uint64) {
	t := c.tx
	t.wf.Add(cell.ID())
	t.rwf.Add(cell.ID())
	t.writes.Put(cell, v)
}

// validate is the client-side value validation (Algorithm 8).
func (c *client) validate() uint64 {
	var b spin.Backoff
	for {
		ts := c.s.clock.Load()
		if spin.IsLocked(ts) {
			c.s.ctr.IncSpin()
			b.Wait()
			continue
		}
		for i := range c.tx.reads {
			if c.tx.reads[i].Cell.Load() != c.tx.reads[i].Val {
				c.tr.ValidateFail(c.tx.reads[i].Cell.ID())
				abort.Retry(abort.Conflict)
			}
		}
		if ts == c.s.clock.Load() {
			return ts
		}
	}
}

// commit posts the request and waits for a server verdict (Algorithm 9).
// Read-only transactions commit locally.
func (c *client) commit() {
	if c.tx.writes.Len() == 0 {
		return
	}
	fpCommitPre.Hit()
	if !serverValidateWouldPass(c.tx) {
		// Cheap pre-check to spare the server a doomed request.
		c.tr.ValidateFail(0)
		abort.Retry(abort.Conflict)
	}
	req := &c.s.reqs[c.slot]
	req.tx = c.tx
	qs := c.tr.Now()
	req.state.Store(statePending)
	var b spin.Backoff
	for {
		st := req.state.Load()
		if st == stateReady {
			c.tr.QueueWait(qs)
			return
		}
		if st == stateAborted {
			c.tr.QueueWait(qs)
			abort.Retry(abort.Conflict)
		}
		c.s.ctr.IncSpin()
		b.Wait()
	}
}

// serverValidateWouldPass re-checks the read set values (shared by the
// client pre-check and the servers; the servers call it when the timestamp
// is stable).
func serverValidateWouldPass(t *txDesc) bool {
	for i := range t.reads {
		if t.reads[i].Cell.Load() != t.reads[i].Val {
			return false
		}
	}
	return true
}

// mainServer executes commit requests serially (Algorithm 10). With fair
// scheduling it serves the most-aborted pending request first; otherwise it
// sweeps the array in slot order.
func (s *STM) mainServer() {
	defer s.wg.Done()
	tr := s.traceSrc.Local()
	var b spin.Backoff
	for !s.stop.Load() {
		progressed := false
		if s.fair {
			progressed = s.serveMostStarved(tr)
		} else {
			for i := range s.reqs {
				if s.reqs[i].state.Load() == statePending {
					s.serve(i, tr)
					progressed = true
				}
			}
		}
		if !progressed {
			b.Wait()
		} else {
			b.Reset()
		}
	}
}

// serveMostStarved picks the pending request with the most aborted
// attempts (ties to the lowest slot) and serves it.
func (s *STM) serveMostStarved(tr *trace.Local) bool {
	best := -1
	var bestAttempts uint32
	for i := range s.reqs {
		if s.reqs[i].state.Load() != statePending {
			continue
		}
		a := s.reqs[i].tx.attempts
		if best == -1 || a > bestAttempts {
			best, bestAttempts = i, a
		}
	}
	if best == -1 {
		return false
	}
	s.serve(best, tr)
	return true
}

// serve runs the commit protocol for the pending request at slot i. An
// injected (failpoint) panic is recovered here: the drop point is before
// the clock is touched, so nothing is held; the request is aborted — the
// client retries — and the server keeps running. Anything else still
// crashes: a real bug in the commit protocol must stay loud.
func (s *STM) serve(i int, tr *trace.Local) {
	req := &s.reqs[i]
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		if _, injected := p.(*failpoint.PanicValue); !injected {
			panic(p)
		}
		req.state.Store(stateAborted)
	}()
	// A served request is one span on the server's track: execute time is
	// the server-side complement of the client's queue wait.
	tr.TxStart()
	defer tr.TxEnd()
	es := tr.Now()
	defer tr.Execute(es)
	fpServerDrop.Hit()
	t := req.tx
	if !serverValidateWouldPass(t) {
		req.state.Store(stateAborted)
		return
	}
	if s.secondaries == 0 || t.writes.Len() < s.threshold {
		s.commitNoDD(req, t)
	} else {
		s.commitDD(i, req, t)
	}
}

// commitNoDD is the dependency-detection-disabled commit: bump the
// timestamp to odd, publish, bump to even, answer the client.
func (s *STM) commitNoDD(req *request, t *txDesc) {
	ts := s.clock.Load()
	if !s.clock.TryLock(ts) {
		// Only the main server advances the clock; this cannot fail.
		panic("rtc: main server lost the clock")
	}
	t.writes.Publish()
	s.clock.Unlock()
	req.state.Store(stateReady)
}

// commitDD opens a dependency-detection window around the commit so
// secondary servers can execute independent requests concurrently.
func (s *STM) commitDD(i int, req *request, t *txDesc) {
	s.windowWF = t.wf
	s.mainReq.Store(int32(i))
	s.ddActive.Store(true)
	ts := s.clock.Load()
	if !s.clock.TryLock(ts) {
		panic("rtc: main server lost the clock")
	}
	t.writes.Publish()
	// Give the detectors a scheduling point while the window is open: on a
	// machine with fewer cores than servers they would otherwise never
	// observe it (on the paper's hardware they run truly in parallel).
	runtime.Gosched()
	// Wait for any in-flight secondary commit before closing the window.
	var b spin.Backoff
	for !s.serversLock.CompareAndSwap(false, true) {
		s.ctr.IncCAS()
		b.Wait()
	}
	s.ddActive.Store(false)
	s.clock.Unlock()
	s.serversLock.Store(false)
	s.mainReq.Store(-1)
	req.state.Store(stateReady)
}

// secondaryServer scans for requests independent of the open commit window
// and executes them concurrently with the main server (Algorithm 11).
func (s *STM) secondaryServer() {
	defer s.wg.Done()
	tr := s.traceSrc.Local()
	var b spin.Backoff
	for !s.stop.Load() {
		if !s.ddActive.Load() {
			b.Wait()
			continue
		}
		ts := s.clock.Load()
		if !spin.IsLocked(ts) {
			b.Wait()
			continue
		}
		main := s.mainReq.Load()
		progressed := false
		for i := range s.reqs {
			if int32(i) == main {
				continue
			}
			req := &s.reqs[i]
			if req.state.Load() != statePending {
				continue
			}
			tr.TxStart()
			es := tr.Now()
			served := s.trySecondaryCommit(ts, req)
			if served {
				tr.Execute(es)
			}
			tr.TxEnd()
			if served {
				progressed = true
				break // one commit per window per detector
			}
		}
		if !progressed {
			b.Wait()
		} else {
			b.Reset()
		}
	}
}

// trySecondaryCommit attempts to execute req concurrently with the window
// open at timestamp ts. It returns true if it reached a verdict (commit or
// abort) for req.
func (s *STM) trySecondaryCommit(ts uint64, req *request) bool {
	t := req.tx
	if !s.serversLock.CompareAndSwap(false, true) {
		s.ctr.IncCAS()
		return false
	}
	if s.clock.Load() != ts || !s.ddActive.Load() {
		s.serversLock.Store(false)
		return false
	}
	// Independence: the request's reads and writes must be disjoint from
	// everything written in this window (the main request plus any commits
	// by other detectors).
	if t.rwf.Intersects(&s.windowWF) {
		s.serversLock.Store(false)
		return false
	}
	if !serverValidateWouldPass(t) {
		req.state.Store(stateAborted)
		s.serversLock.Store(false)
		return true
	}
	t.writes.Publish()
	s.windowWF.Union(&t.wf)
	req.state.Store(stateReady)
	s.stats.secondaries.Add(1)
	s.serversLock.Store(false)
	// Wait for the window to close so at most one of this detector's
	// commits extends any given main commit.
	var b spin.Backoff
	for s.clock.Load() == ts && !s.stop.Load() {
		b.Wait()
	}
	return true
}

var _ stm.Algorithm = (*STM)(nil)
