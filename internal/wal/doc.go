// Package wal is a checksummed, length-prefixed write-ahead log with
// snapshots, built for the durable txstore (DESIGN.md, "Durability model").
//
// The log is payload-opaque: callers append byte records (the networked
// store logs its semantic commit records — session, sequence number, and
// the transaction's operations in the wire codec) and get back a log
// sequence number (LSN). Durability is governed by the sync policy:
//
//	SyncAlways    every SyncTo waits until the record's bytes are fsynced;
//	              concurrent callers share one fsync (group commit)
//	SyncInterval  a background goroutine flushes and fsyncs on a cadence
//	SyncNever     the OS decides; only Close and Snapshot force an fsync
//
// Snapshot(payload) atomically supersedes the log's history: the payload
// (a full dump of the caller's state, covering every appended record) is
// written to a temp file, fsynced, renamed into place, and only then are
// the covered segments deleted. Open loads the newest valid snapshot and
// replays the record tail beyond it. A torn final record — the expected
// residue of a crash mid-append — is detected by its checksum or short
// length, truncated away, and reported; corruption anywhere earlier is a
// hard error, because silently skipping committed history would be data
// loss.
//
// The append path is poisoned by its first error: a log that failed to
// write or sync a record refuses all further work, so a caller that has
// already applied the record in memory can only fail stop (crash without
// acknowledging) rather than diverge from its own log. The txnet server
// does exactly that.
//
// Failure injection: wal.append.torn (flushes a half-written record before
// erroring), wal.fsync.fail, wal.snapshot.partial and wal.replay.stall are
// registered failpoints; injected panics are converted to errors at the
// package boundary so callers see a failed disk, not a crashed library.
package wal
