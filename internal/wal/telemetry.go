package wal

import (
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Package-wide durability counters, aggregated across logs (one process
// serves one store; per-log split would add plumbing for no insight).
var stats struct {
	appends          atomic.Uint64
	appendedBytes    atomic.Uint64
	fsyncs           atomic.Uint64
	snapshots        atomic.Uint64
	snapshotErrs     atomic.Uint64
	segmentsDeleted  atomic.Uint64
	replayedRecords  atomic.Uint64
	tornTails        atomic.Uint64
	snapshotsSkipped atomic.Uint64
}

// fsyncLatency tracks the fsync wall time behind group commit — the
// latency every SyncAlways acknowledgement ultimately waits on.
var fsyncLatency telemetry.Histogram

// Stats is a point-in-time snapshot of the package counters.
type Stats struct {
	Appends          uint64
	AppendedBytes    uint64
	Fsyncs           uint64
	Snapshots        uint64
	SnapshotErrs     uint64
	SegmentsDeleted  uint64
	ReplayedRecords  uint64
	TornTails        uint64
	SnapshotsSkipped uint64
}

// StatsSnapshot reads the package counters.
func StatsSnapshot() Stats {
	return Stats{
		Appends:          stats.appends.Load(),
		AppendedBytes:    stats.appendedBytes.Load(),
		Fsyncs:           stats.fsyncs.Load(),
		Snapshots:        stats.snapshots.Load(),
		SnapshotErrs:     stats.snapshotErrs.Load(),
		SegmentsDeleted:  stats.segmentsDeleted.Load(),
		ReplayedRecords:  stats.replayedRecords.Load(),
		TornTails:        stats.tornTails.Load(),
		SnapshotsSkipped: stats.snapshotsSkipped.Load(),
	}
}

func init() {
	telemetry.RegisterSection(writeSection)
	telemetry.RegisterOpenMetrics(emitOpenMetrics)
}

// walCounterFamilies drives the OpenMetrics counter exposition.
var walCounterFamilies = []struct {
	name, help string
	value      func(Stats) uint64
}{
	{"wal_appends", "Records appended to the write-ahead log.", func(s Stats) uint64 { return s.Appends }},
	{"wal_appended_bytes", "Payload bytes appended to the write-ahead log.", func(s Stats) uint64 { return s.AppendedBytes }},
	{"wal_fsyncs", "Group-commit fsync calls.", func(s Stats) uint64 { return s.Fsyncs }},
	{"wal_snapshots", "Snapshots written.", func(s Stats) uint64 { return s.Snapshots }},
	{"wal_snapshot_errors", "Snapshot attempts that failed.", func(s Stats) uint64 { return s.SnapshotErrs }},
	{"wal_snapshots_skipped", "Snapshots skipped because one was in flight.", func(s Stats) uint64 { return s.SnapshotsSkipped }},
	{"wal_segments_deleted", "Log segments deleted by truncation.", func(s Stats) uint64 { return s.SegmentsDeleted }},
	{"wal_replayed_records", "Records replayed during recovery.", func(s Stats) uint64 { return s.ReplayedRecords }},
	{"wal_torn_tails", "Torn log tails discarded during recovery.", func(s Stats) uint64 { return s.TornTails }},
}

// emitOpenMetrics renders the durability families for /metrics: the
// package counters plus the group-commit fsync latency histogram.
func emitOpenMetrics(om *telemetry.OM) {
	s := StatsSnapshot()
	for _, fam := range walCounterFamilies {
		om.Family(fam.name, "counter", fam.help)
		om.Total(fam.name, "", fam.value(s))
	}
	om.Family("wal_fsync_duration_seconds", "histogram",
		"Group-commit fsync wall time.")
	om.Histogram("wal_fsync_duration_seconds", "", fsyncLatency.Snapshot())
}

// writeSection renders the durability line in telemetry.WriteTable (and
// therefore on the trace.Serve debug endpoint). Silent when the process
// never touched a log.
func writeSection(w io.Writer) {
	s := StatsSnapshot()
	if s.Appends == 0 && s.ReplayedRecords == 0 && s.Snapshots == 0 && s.TornTails == 0 {
		return
	}
	h := fsyncLatency.Snapshot()
	fmt.Fprintf(w, "\nwal: appends %d (%d bytes)  fsyncs %d (p50 %v p99 %v)  snapshots %d (errs %d, skipped %d)  segments-deleted %d  replayed %d  torn-tails %d\n",
		s.Appends, s.AppendedBytes, s.Fsyncs, h.Quantile(0.50), h.Quantile(0.99),
		s.Snapshots, s.SnapshotErrs, s.SnapshotsSkipped, s.SegmentsDeleted, s.ReplayedRecords, s.TornTails)
}
