package wal

import (
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Package-wide durability counters, aggregated across logs (one process
// serves one store; per-log split would add plumbing for no insight).
var stats struct {
	appends          atomic.Uint64
	appendedBytes    atomic.Uint64
	fsyncs           atomic.Uint64
	snapshots        atomic.Uint64
	snapshotErrs     atomic.Uint64
	segmentsDeleted  atomic.Uint64
	replayedRecords  atomic.Uint64
	tornTails        atomic.Uint64
	snapshotsSkipped atomic.Uint64
}

// fsyncLatency tracks the fsync wall time behind group commit — the
// latency every SyncAlways acknowledgement ultimately waits on.
var fsyncLatency telemetry.Histogram

// Stats is a point-in-time snapshot of the package counters.
type Stats struct {
	Appends          uint64
	AppendedBytes    uint64
	Fsyncs           uint64
	Snapshots        uint64
	SnapshotErrs     uint64
	SegmentsDeleted  uint64
	ReplayedRecords  uint64
	TornTails        uint64
	SnapshotsSkipped uint64
}

// StatsSnapshot reads the package counters.
func StatsSnapshot() Stats {
	return Stats{
		Appends:          stats.appends.Load(),
		AppendedBytes:    stats.appendedBytes.Load(),
		Fsyncs:           stats.fsyncs.Load(),
		Snapshots:        stats.snapshots.Load(),
		SnapshotErrs:     stats.snapshotErrs.Load(),
		SegmentsDeleted:  stats.segmentsDeleted.Load(),
		ReplayedRecords:  stats.replayedRecords.Load(),
		TornTails:        stats.tornTails.Load(),
		SnapshotsSkipped: stats.snapshotsSkipped.Load(),
	}
}

func init() {
	telemetry.RegisterSection(writeSection)
}

// writeSection renders the durability line in telemetry.WriteTable (and
// therefore on the trace.Serve debug endpoint). Silent when the process
// never touched a log.
func writeSection(w io.Writer) {
	s := StatsSnapshot()
	if s.Appends == 0 && s.ReplayedRecords == 0 && s.Snapshots == 0 && s.TornTails == 0 {
		return
	}
	h := fsyncLatency.Snapshot()
	fmt.Fprintf(w, "\nwal: appends %d (%d bytes)  fsyncs %d (p50 %v p99 %v)  snapshots %d (errs %d, skipped %d)  segments-deleted %d  replayed %d  torn-tails %d\n",
		s.Appends, s.AppendedBytes, s.Fsyncs, h.Quantile(0.50), h.Quantile(0.99),
		s.Snapshots, s.SnapshotErrs, s.SnapshotsSkipped, s.SegmentsDeleted, s.ReplayedRecords, s.TornTails)
}
