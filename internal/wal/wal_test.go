package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos/failpoint"
)

func mustOpen(t *testing.T, dir string, opts Options) (*Log, *Recovery) {
	t.Helper()
	l, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func appendN(t *testing.T, l *Log, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		lsn, err := l.Append([]byte(fmt.Sprintf("record-%04d", i)))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if err := l.SyncTo(lsn); err != nil {
			t.Fatalf("SyncTo %d: %v", lsn, err)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := mustOpen(t, dir, Options{Policy: SyncAlways})
	if rec.Snapshot != nil || len(rec.Records) != 0 || rec.TornTail {
		t.Fatalf("fresh dir recovery: %+v", rec)
	}
	appendN(t, l, 0, 10)
	if got := l.NextLSN(); got != 11 {
		t.Fatalf("NextLSN = %d, want 11", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec2 := mustOpen(t, dir, Options{Policy: SyncAlways})
	defer l2.Close()
	if len(rec2.Records) != 10 || rec2.TornTail {
		t.Fatalf("recovered %d records (torn=%v), want 10 clean", len(rec2.Records), rec2.TornTail)
	}
	for i, r := range rec2.Records {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has lsn %d", i, r.LSN)
		}
		if want := fmt.Sprintf("record-%04d", i); string(r.Payload) != want {
			t.Fatalf("record %d payload %q, want %q", i, r.Payload, want)
		}
	}
	if got := l2.NextLSN(); got != 11 {
		t.Fatalf("reopened NextLSN = %d, want 11", got)
	}
	// The reopened log must append seamlessly after the recovered tail.
	appendN(t, l2, 10, 1)
}

// segFiles returns the segment file names in dir.
func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), segSuffix) {
			out = append(out, e.Name())
		}
	}
	return out
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncAlways})
	appendN(t, l, 0, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segFiles(t, dir)
	if len(segs) != 1 {
		t.Fatalf("segments: %v", segs)
	}
	// Chop bytes off the final record, simulating a crash mid-append.
	path := filepath.Join(dir, segs[0])
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	l2, rec := mustOpen(t, dir, Options{Policy: SyncAlways})
	if len(rec.Records) != 4 || !rec.TornTail {
		t.Fatalf("recovered %d records torn=%v, want 4 torn", len(rec.Records), rec.TornTail)
	}
	if got := l2.NextLSN(); got != 5 {
		t.Fatalf("NextLSN = %d, want 5 (torn record's lsn is reusable)", got)
	}
	// The truncated log accepts new appends at the reclaimed LSN.
	appendN(t, l2, 100, 2)
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec3 := mustOpenAndClose(t, dir)
	if len(rec3.Records) != 6 || rec3.TornTail {
		t.Fatalf("after re-append: %d records torn=%v, want 6 clean", len(rec3.Records), rec3.TornTail)
	}
}

func mustOpenAndClose(t *testing.T, dir string) (*Log, *Recovery) {
	t.Helper()
	l, rec := mustOpen(t, dir, Options{Policy: SyncAlways})
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return l, rec
}

func TestCorruptTailRecordTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncAlways})
	appendN(t, l, 0, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segFiles(t, dir)[0])
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff // flip a bit inside the final record's payload
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := mustOpenAndClose(t, dir)
	if len(rec.Records) != 4 || !rec.TornTail {
		t.Fatalf("recovered %d records torn=%v, want 4 torn", len(rec.Records), rec.TornTail)
	}
}

func TestMidLogCorruptionIsFatal(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncAlways})
	appendN(t, l, 0, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segFiles(t, dir)[0])
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[20] ^= 0xff // inside the first record's payload, far from the tail
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted mid-log corruption")
	}
}

func TestSnapshotTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncAlways})
	appendN(t, l, 0, 8)
	if err := l.Snapshot([]byte("state-after-8")); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	appendN(t, l, 8, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec := mustOpen(t, dir, Options{Policy: SyncAlways})
	defer l2.Close()
	if string(rec.Snapshot) != "state-after-8" || rec.SnapshotLSN != 8 {
		t.Fatalf("snapshot %q lsn %d", rec.Snapshot, rec.SnapshotLSN)
	}
	if len(rec.Records) != 3 || rec.Records[0].LSN != 9 {
		t.Fatalf("tail: %d records starting at %d, want 3 from 9", len(rec.Records), rec.Records[0].LSN)
	}
	// The pre-snapshot segment must be gone.
	if segs := segFiles(t, dir); len(segs) != 1 {
		t.Fatalf("segments after snapshot: %v", segs)
	}
}

func TestSecondSnapshotRemovesFirst(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncAlways})
	appendN(t, l, 0, 4)
	if err := l.Snapshot([]byte("one")); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 4, 4)
	if err := l.Snapshot([]byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ents, _ := os.ReadDir(dir)
	snaps := 0
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), snapSuffix) {
			snaps++
		}
	}
	if snaps != 1 {
		t.Fatalf("%d snapshot files, want 1", snaps)
	}
	_, rec := mustOpenAndClose(t, dir)
	if string(rec.Snapshot) != "two" || len(rec.Records) != 0 {
		t.Fatalf("recovered %q + %d records", rec.Snapshot, len(rec.Records))
	}
}

func TestCorruptSnapshotSkipped(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncAlways})
	appendN(t, l, 0, 4)
	if err := l.Snapshot([]byte("good")); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 4, 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Plant a newer, garbage snapshot. Recovery must skip it and fall back
	// to the older valid one — whose record tail is still on disk.
	if err := os.WriteFile(filepath.Join(dir, snapName(6)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := mustOpenAndClose(t, dir)
	if rec.SnapshotsSkipped != 1 {
		t.Fatalf("SnapshotsSkipped = %d, want 1", rec.SnapshotsSkipped)
	}
	if string(rec.Snapshot) != "good" || rec.SnapshotLSN != 4 || len(rec.Records) != 2 {
		t.Fatalf("fell back to %q lsn %d with %d records", rec.Snapshot, rec.SnapshotLSN, len(rec.Records))
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncAlways})
	const writers, each = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				lsn, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					errs <- err
					return
				}
				if err := l.SyncTo(lsn); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := l.SyncedLSN(); got != writers*each {
		t.Fatalf("SyncedLSN = %d, want %d", got, writers*each)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := mustOpenAndClose(t, dir)
	if len(rec.Records) != writers*each {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), writers*each)
	}
}

func TestIntervalPolicySyncsInBackground(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncInterval, Interval: time.Millisecond})
	lsn, err := l.Append([]byte("interval"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SyncTo(lsn); err != nil { // must not block or error
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.SyncedLSN() < lsn {
		if time.Now().After(deadline) {
			t.Fatalf("background sync never covered lsn %d", lsn)
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendTornFailpointPoisonsLog(t *testing.T) {
	failpoint.DisarmAll()
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncAlways})
	appendN(t, l, 0, 3)
	defer failpoint.Arm("wal.append.torn", failpoint.Spec{Action: failpoint.Panic, Nth: 1})()
	if _, err := l.Append([]byte("doomed-record")); err == nil {
		t.Fatal("torn append did not error")
	}
	var pv *failpoint.PanicValue
	if _, err := l.Append([]byte("after")); err == nil || !errors.As(err, &pv) {
		t.Fatalf("poisoned log accepted an append (err=%v)", err)
	}
	if err := l.SyncTo(1); err == nil {
		t.Fatal("poisoned log accepted a sync")
	}
	_ = l.Close()

	// Recovery truncates the torn record; the three whole ones survive.
	_, rec := mustOpenAndClose(t, dir)
	if len(rec.Records) != 3 || !rec.TornTail {
		t.Fatalf("recovered %d records torn=%v, want 3 torn", len(rec.Records), rec.TornTail)
	}
}

func TestFsyncFailpointFailsSync(t *testing.T) {
	failpoint.DisarmAll()
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncAlways})
	lsn, err := l.Append([]byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	defer failpoint.Arm("wal.fsync.fail", failpoint.Spec{Action: failpoint.Panic, Nth: 1})()
	var pv *failpoint.PanicValue
	if err := l.SyncTo(lsn); err == nil || !errors.As(err, &pv) {
		t.Fatalf("SyncTo under fsync fault: %v", err)
	}
	// fsync failure is sticky: the log must refuse to pretend later syncs
	// succeeded (fsyncgate semantics).
	if err := l.SyncTo(lsn); err == nil {
		t.Fatal("second SyncTo succeeded after an fsync failure")
	}
	_ = l.Close()
}

func TestSnapshotPartialFailpointLeavesLogUsable(t *testing.T) {
	failpoint.DisarmAll()
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncAlways})
	appendN(t, l, 0, 4)
	func() {
		defer failpoint.Arm("wal.snapshot.partial", failpoint.Spec{Action: failpoint.Panic, Nth: 1})()
		var pv *failpoint.PanicValue
		if err := l.Snapshot(bytes.Repeat([]byte("s"), 64)); err == nil || !errors.As(err, &pv) {
			t.Fatalf("Snapshot under partial fault: %v", err)
		}
	}()
	// A failed snapshot must not cost any history or wedge the log.
	appendN(t, l, 4, 2)
	if err := l.Snapshot([]byte("retried")); err != nil {
		t.Fatalf("retried snapshot: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := mustOpenAndClose(t, dir)
	if string(rec.Snapshot) != "retried" || len(rec.Records) != 0 || rec.SnapshotsSkipped != 0 {
		t.Fatalf("recovery after failed+retried snapshot: %+v", rec)
	}
}

func TestReplayStallFailpointFailsOpen(t *testing.T) {
	failpoint.DisarmAll()
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncAlways})
	appendN(t, l, 0, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	func() {
		defer failpoint.Arm("wal.replay.stall", failpoint.Spec{Action: failpoint.Panic, Nth: 2})()
		_, _, err := Open(dir, Options{})
		var pv *failpoint.PanicValue
		if err == nil || !errors.As(err, &pv) {
			t.Fatalf("Open under replay fault: %v", err)
		}
	}()
	// Recovery is read-only up to the stall, so a retry succeeds in full.
	_, rec := mustOpenAndClose(t, dir)
	if len(rec.Records) != 3 {
		t.Fatalf("retry recovered %d records, want 3", len(rec.Records))
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{"always": SyncAlways, "interval": SyncInterval, "never": SyncNever} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("ParsePolicy accepted garbage")
	}
}

func TestSyncNeverLosesNothingOnCleanClose(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncNever})
	appendN(t, l, 0, 5) // SyncTo is a no-op under SyncNever
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := mustOpenAndClose(t, dir)
	if len(rec.Records) != 5 {
		t.Fatalf("recovered %d records, want 5", len(rec.Records))
	}
}
