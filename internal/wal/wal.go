package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/chaos/failpoint"
)

// Durability failpoints. All four convert their injected panic into an
// error at the package boundary (see injectedHit): the caller observes a
// failed append/fsync/snapshot/replay, exactly what a sick disk produces.
var (
	// fpAppendTorn fires mid-record: the header and first half of the
	// payload are flushed to the file before the fault, leaving a torn
	// record on disk — the residue recovery must truncate.
	fpAppendTorn = failpoint.New("wal.append.torn")
	// fpFsyncFail fires in the fsync wrapper, before the kernel sync —
	// modeling an fsync error, after which the log refuses further work
	// (a failed fsync leaves the page cache in an unknown state; retrying
	// would be the classic fsyncgate bug).
	fpFsyncFail = failpoint.New("wal.fsync.fail")
	// fpSnapshotPartial fires halfway through writing a snapshot's payload
	// to its temp file; the half-written temp must never be loaded.
	fpSnapshotPartial = failpoint.New("wal.snapshot.partial")
	// fpReplayStall fires once per record scanned during Open (delay
	// stretches the recovery window so a second crash can land inside it).
	fpReplayStall = failpoint.New("wal.replay.stall")
)

// Policy selects when appended records are fsynced.
type Policy int

// Sync policies, from strongest to weakest.
const (
	// SyncAlways makes SyncTo block until the record is on disk; an
	// acknowledgement sent after SyncTo can never be lost to a crash.
	SyncAlways Policy = iota
	// SyncInterval fsyncs on a background cadence (Options.Interval); a
	// crash loses at most one interval of acknowledged work.
	SyncInterval
	// SyncNever leaves persistence to the OS page cache; a process crash
	// loses nothing (the kernel has the writes), a machine crash may lose
	// everything since the last snapshot.
	SyncNever
)

// String returns the policy's flag syntax ("always", "interval", "never").
func (p Policy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy parses the -fsync flag syntax.
func ParsePolicy(s string) (Policy, error) {
	switch strings.TrimSpace(s) {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (always, interval or never)", s)
	}
}

// Options configure Open.
type Options struct {
	// Policy is the fsync policy (default SyncAlways — the zero value must
	// be the safe one).
	Policy Policy
	// Interval is the SyncInterval cadence (default 2ms).
	Interval time.Duration
}

// Record is one replayed log record.
type Record struct {
	LSN     uint64
	Payload []byte
}

// Recovery reports what Open reconstructed.
type Recovery struct {
	// Snapshot is the newest valid snapshot payload, nil if none.
	Snapshot []byte
	// SnapshotLSN is the last LSN the snapshot covers (0 without one).
	SnapshotLSN uint64
	// Records are the replayed records beyond the snapshot, in LSN order.
	Records []Record
	// TornTail is true when a torn or corrupt final record was truncated.
	TornTail bool
	// SnapshotsSkipped counts snapshot files that failed validation.
	SnapshotsSkipped int
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// On-disk layout. Segments are named by the LSN of their first record so
// recovery orders them lexically; a record is a u32 body length, a u32
// CRC-32C of the body, and the body (u64 LSN, payload). Snapshots carry a
// magic, version, covered LSN, and a CRC-32C'd payload; they are written
// to a .tmp name, fsynced, and renamed, so a snapshot file that exists
// under its final name is complete unless the disk itself corrupted it.
const (
	segPrefix  = "wal-"
	segSuffix  = ".log"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
	tmpSuffix  = ".tmp"

	recHeaderSize = 8 // u32 len + u32 crc
	// MaxRecordSize bounds one record's payload (4× the wire frame limit,
	// so any single transaction the server accepts fits with headroom).
	MaxRecordSize = 4 << 20

	snapMagic   = 0x57414c53 // "WALS"
	snapVersion = 1
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func segName(firstLSN uint64) string { return fmt.Sprintf("%s%016x%s", segPrefix, firstLSN, segSuffix) }
func snapName(snapLSN uint64) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, snapLSN, snapSuffix)
}

// segMeta tracks one on-disk segment: its first LSN and the first LSN of
// the next segment (== nextLSN for the active one). A segment is covered
// by a snapshot at LSN s iff next <= s+1.
type segMeta struct {
	first uint64
	name  string
}

// Log is an open write-ahead log. Append/SyncTo/Snapshot are safe for
// concurrent use.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex // file, buffer, LSN counter, segment list
	f       *os.File
	w       *bufio.Writer
	nextLSN uint64
	segs    []segMeta // sorted by first; last is the active segment
	snapLSN uint64    // newest durable snapshot
	err     error     // sticky: first append/flush failure poisons the log
	closed  bool

	// Group commit: one syncer runs at a time; others wait on the cond
	// until syncedLSN covers them or the syncer errs.
	syncMu    sync.Mutex
	syncCond  *sync.Cond
	syncing   bool
	syncedLSN uint64
	syncErr   error // sticky

	stop chan struct{} // interval ticker shutdown
	done chan struct{}
}

// injectedHit fires fp and converts an injected panic into an error, so
// wal's callers always see fault injection as I/O failure.
func injectedHit(fp *failpoint.FP) (err error) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		if pv, ok := p.(*failpoint.PanicValue); ok {
			err = pv
			return
		}
		panic(p)
	}()
	fp.Hit()
	return nil
}

// Append writes one record and returns its LSN. The record is buffered;
// it is durable per the sync policy (call SyncTo for SyncAlways). The
// first failed append poisons the log: every later call returns the same
// error, so nothing can be written after a torn record.
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) == 0 || len(payload) > MaxRecordSize {
		return 0, fmt.Errorf("wal: record payload of %d bytes (want 1..%d)", len(payload), MaxRecordSize)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.err != nil {
		return 0, l.err
	}
	lsn := l.nextLSN
	var hdr [recHeaderSize + 8]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(8+len(payload)))
	binary.BigEndian.PutUint64(hdr[8:], lsn)
	crc := crc32.Update(0, crcTable, hdr[8:16])
	crc = crc32.Update(crc, crcTable, payload)
	binary.BigEndian.PutUint32(hdr[4:], crc)

	write := func(b []byte) bool {
		if l.err == nil {
			if _, werr := l.w.Write(b); werr != nil {
				l.poisonLocked(fmt.Errorf("wal: append: %w", werr))
			}
		}
		return l.err == nil
	}
	if fpAppendTorn.Armed() && len(payload) >= 2 {
		// Flush the header and half the payload so the fault leaves real
		// torn bytes on disk, then fire. If the failpoint does not trigger
		// on this hit, complete the record normally.
		half := len(payload) / 2
		if !write(hdr[:]) || !write(payload[:half]) {
			return 0, l.err
		}
		if ferr := l.w.Flush(); ferr != nil {
			l.poisonLocked(fmt.Errorf("wal: append: %w", ferr))
			return 0, l.err
		}
		if ierr := injectedHit(fpAppendTorn); ierr != nil {
			l.poisonLocked(fmt.Errorf("wal: append torn: %w", ierr))
			return 0, l.err
		}
		if !write(payload[half:]) {
			return 0, l.err
		}
	} else {
		if !write(hdr[:]) || !write(payload) {
			return 0, l.err
		}
	}
	l.nextLSN++
	stats.appends.Add(1)
	stats.appendedBytes.Add(uint64(recHeaderSize + 8 + len(payload)))
	return lsn, nil
}

// poisonLocked records the log's first fatal error (mu held) and mirrors
// it to the sync side so blocked SyncTo callers fail too.
func (l *Log) poisonLocked(err error) {
	if l.err == nil {
		l.err = err
	}
	l.syncMu.Lock()
	if l.syncErr == nil {
		l.syncErr = err
	}
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
}

// SyncTo blocks until the record at lsn is durable per the policy. Under
// SyncAlways concurrent callers are batched behind a single fsync (group
// commit); under SyncInterval and SyncNever it only surfaces a poisoned
// log, without waiting.
func (l *Log) SyncTo(lsn uint64) error {
	if l.opts.Policy != SyncAlways {
		l.mu.Lock()
		err := l.err
		l.mu.Unlock()
		return err
	}
	l.syncMu.Lock()
	for {
		if l.syncErr != nil {
			err := l.syncErr
			l.syncMu.Unlock()
			return err
		}
		if l.syncedLSN >= lsn {
			l.syncMu.Unlock()
			return nil
		}
		if !l.syncing {
			break
		}
		l.syncCond.Wait()
	}
	l.syncing = true
	l.syncMu.Unlock()
	return l.syncNow()
}

// Sync forces a flush + fsync regardless of policy.
func (l *Log) Sync() error {
	l.syncMu.Lock()
	for l.syncing {
		if l.syncErr != nil {
			err := l.syncErr
			l.syncMu.Unlock()
			return err
		}
		l.syncCond.Wait()
	}
	l.syncing = true
	l.syncMu.Unlock()
	return l.syncNow()
}

// syncNow runs one flush+fsync round as the claimed syncer and publishes
// the result. Callers must have set l.syncing under syncMu.
func (l *Log) syncNow() error {
	l.mu.Lock()
	var (
		err    error
		target uint64
	)
	if l.closed {
		err = ErrClosed
	} else if l.err != nil {
		err = l.err
	} else if ferr := l.w.Flush(); ferr != nil {
		l.poisonLocked(fmt.Errorf("wal: flush: %w", ferr))
		err = l.err
	} else {
		target = l.nextLSN - 1
	}
	f := l.f
	l.mu.Unlock()

	if err == nil {
		// fsync outside l.mu so appenders are not blocked behind the disk;
		// the file cannot be rotated away because Snapshot also claims the
		// syncer role.
		err = l.fsyncFile(f)
		if err != nil {
			l.mu.Lock()
			l.poisonLocked(err)
			l.mu.Unlock()
		}
	}

	l.syncMu.Lock()
	if err != nil {
		if l.syncErr == nil {
			l.syncErr = err
		}
	} else if target > l.syncedLSN {
		l.syncedLSN = target
	}
	l.syncing = false
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
	return err
}

// fsyncFile syncs one file, observing latency and the fsync failpoint.
func (l *Log) fsyncFile(f *os.File) error {
	if ierr := injectedHit(fpFsyncFail); ierr != nil {
		return fmt.Errorf("wal: fsync: %w", ierr)
	}
	start := time.Now()
	err := f.Sync()
	fsyncLatency.Observe(time.Since(start).Nanoseconds())
	stats.fsyncs.Add(1)
	if err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	return nil
}

// SyncedLSN reports the highest LSN known durable via SyncAlways group
// commit (0 under other policies until Sync/Close).
func (l *Log) SyncedLSN() uint64 {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	return l.syncedLSN
}

// NextLSN reports the LSN the next Append will return.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// Snapshot supersedes the appended history with payload, which must
// describe the caller's state after every record appended so far (callers
// serialize their appends against Snapshot; txnet holds its commit mutex
// across both). The snapshot is fsynced before any log truncation, under
// every policy — weaker fsync policies bound the window of lost recent
// commits, never the integrity of a truncation. On error the log is
// untouched and still usable (a failed snapshot is retried later).
func (l *Log) Snapshot(payload []byte) error {
	// Claim the syncer role so the active file is not mid-fsync while we
	// rotate it.
	l.syncMu.Lock()
	for l.syncing {
		l.syncCond.Wait()
	}
	l.syncing = true
	l.syncMu.Unlock()
	release := func() {
		l.syncMu.Lock()
		l.syncing = false
		l.syncCond.Broadcast()
		l.syncMu.Unlock()
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	defer release()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	if ferr := l.w.Flush(); ferr != nil {
		l.poisonLocked(fmt.Errorf("wal: flush: %w", ferr))
		return l.err
	}
	snapLSN := l.nextLSN - 1

	if err := writeSnapshotFile(l.dir, snapLSN, payload); err != nil {
		stats.snapshotErrs.Add(1)
		return err
	}

	// Rotate: the old segment is fully covered by the snapshot, the new
	// one starts at nextLSN.
	old := l.f
	if err := old.Close(); err != nil {
		l.poisonLocked(fmt.Errorf("wal: rotate: %w", err))
		return l.err
	}
	nf, err := os.OpenFile(filepath.Join(l.dir, segName(l.nextLSN)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		l.poisonLocked(fmt.Errorf("wal: rotate: %w", err))
		return l.err
	}
	l.f = nf
	l.w.Reset(nf)
	covered := l.segs
	l.segs = []segMeta{{first: l.nextLSN, name: segName(l.nextLSN)}}
	if err := fsyncDir(l.dir); err != nil {
		l.poisonLocked(err)
		return l.err
	}

	// Truncate: every prior segment and snapshot is superseded.
	for _, s := range covered {
		if s.name == segName(l.nextLSN) {
			continue
		}
		if os.Remove(filepath.Join(l.dir, s.name)) == nil {
			stats.segmentsDeleted.Add(1)
		}
	}
	removeOldSnapshots(l.dir, snapLSN)

	l.snapLSN = snapLSN
	stats.snapshots.Add(1)

	l.syncMu.Lock()
	if snapLSN > l.syncedLSN {
		l.syncedLSN = snapLSN
	}
	l.syncMu.Unlock()
	return nil
}

// Close flushes, fsyncs and closes the log. A poisoned log closes without
// further writes and returns its first error.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.mu.Unlock()
	if l.stop != nil {
		close(l.stop)
		<-l.done
	}
	var err error
	l.mu.Lock()
	if l.err != nil {
		err = l.err
	} else if ferr := l.w.Flush(); ferr != nil {
		err = ferr
	}
	l.closed = true
	f := l.f
	l.mu.Unlock()
	if err == nil {
		err = l.fsyncFile(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	l.syncMu.Lock()
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
	return err
}

// intervalLoop is the SyncInterval background syncer.
func (l *Log) intervalLoop() {
	defer close(l.done)
	tick := time.NewTicker(l.opts.Interval)
	defer tick.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-tick.C:
			l.syncMu.Lock()
			if l.syncing || l.syncErr != nil {
				l.syncMu.Unlock()
				continue
			}
			l.syncing = true
			l.syncMu.Unlock()
			_ = l.syncNow() // errors poison the log; appenders see them
		}
	}
}

// fsyncDir fsyncs a directory so renames and creates within it are
// durable.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: fsync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: fsync dir: %w", err)
	}
	return nil
}
