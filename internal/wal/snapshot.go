package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// writeSnapshotFile persists one snapshot: header + CRC'd payload to a
// temp name, fsync, rename, fsync dir. Only after the rename survives a
// crash is the snapshot eligible to be loaded, so a half-written temp
// (crash or wal.snapshot.partial) is invisible to recovery.
func writeSnapshotFile(dir string, snapLSN uint64, payload []byte) error {
	final := filepath.Join(dir, snapName(snapLSN))
	tmp := final + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	cleanup := func() {
		_ = f.Close()
		_ = os.Remove(tmp)
	}
	var hdr [24]byte
	binary.BigEndian.PutUint32(hdr[0:], snapMagic)
	binary.BigEndian.PutUint32(hdr[4:], snapVersion)
	binary.BigEndian.PutUint64(hdr[8:], snapLSN)
	binary.BigEndian.PutUint32(hdr[16:], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[20:], crc32.Checksum(payload, crcTable))
	if _, err := f.Write(hdr[:]); err != nil {
		cleanup()
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	half := len(payload) / 2
	if _, err := f.Write(payload[:half]); err != nil {
		cleanup()
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if ierr := injectedHit(fpSnapshotPartial); ierr != nil {
		cleanup()
		return fmt.Errorf("wal: snapshot partial: %w", ierr)
	}
	if _, err := f.Write(payload[half:]); err != nil {
		cleanup()
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("wal: snapshot fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	return fsyncDir(dir)
}

// loadSnapshotFile validates and returns one snapshot's payload.
func loadSnapshotFile(path string) (payload []byte, snapLSN uint64, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: snapshot %s: %w", filepath.Base(path), err)
	}
	if len(b) < 24 {
		return nil, 0, fmt.Errorf("wal: snapshot %s: short header (%d bytes)", filepath.Base(path), len(b))
	}
	if binary.BigEndian.Uint32(b[0:]) != snapMagic {
		return nil, 0, fmt.Errorf("wal: snapshot %s: bad magic", filepath.Base(path))
	}
	if v := binary.BigEndian.Uint32(b[4:]); v != snapVersion {
		return nil, 0, fmt.Errorf("wal: snapshot %s: unsupported version %d", filepath.Base(path), v)
	}
	snapLSN = binary.BigEndian.Uint64(b[8:])
	n := binary.BigEndian.Uint32(b[16:])
	crc := binary.BigEndian.Uint32(b[20:])
	body := b[24:]
	if uint32(len(body)) != n {
		return nil, 0, fmt.Errorf("wal: snapshot %s: payload %d bytes, header says %d", filepath.Base(path), len(body), n)
	}
	if crc32.Checksum(body, crcTable) != crc {
		return nil, 0, fmt.Errorf("wal: snapshot %s: checksum mismatch", filepath.Base(path))
	}
	return body, snapLSN, nil
}

// removeOldSnapshots deletes every snapshot strictly older than keepLSN.
func removeOldSnapshots(dir string, keepLSN uint64) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		lsn, ok := parseNamed(e.Name(), snapPrefix, snapSuffix)
		if ok && lsn < keepLSN {
			_ = os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// parseNamed extracts the hex LSN from a "<prefix>%016x<suffix>" name.
func parseNamed(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := name[len(prefix) : len(name)-len(suffix)]
	if len(hex) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}
