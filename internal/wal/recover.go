package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Open opens (or creates) the log in dir and recovers its contents: the
// newest valid snapshot plus every record beyond it, in LSN order. A torn
// or checksum-corrupt record at the very end of the log — the residue of
// a crash mid-append — is truncated away and reported via
// Recovery.TornTail; the same corruption anywhere earlier is a hard
// error, because skipping committed history would silently lose it.
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	if opts.Interval <= 0 {
		opts.Interval = 2 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segMeta
	var snaps []uint64
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			// A crash mid-snapshot leaves a temp file; it was never
			// renamed, so it covers nothing and is garbage.
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		if lsn, ok := parseNamed(name, segPrefix, segSuffix); ok {
			segs = append(segs, segMeta{first: lsn, name: name})
			continue
		}
		if lsn, ok := parseNamed(name, snapPrefix, snapSuffix); ok {
			snaps = append(snaps, lsn)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] }) // newest first

	rec := &Recovery{}
	for _, lsn := range snaps {
		payload, gotLSN, lerr := loadSnapshotFile(filepath.Join(dir, snapName(lsn)))
		if lerr != nil || gotLSN != lsn {
			rec.SnapshotsSkipped++
			stats.snapshotsSkipped.Add(1)
			continue
		}
		rec.Snapshot, rec.SnapshotLSN = payload, lsn
		break
	}

	// Scan segments in order, keeping records beyond the snapshot. LSNs
	// must be contiguous from the first record on disk through the tail;
	// any gap means a segment went missing and recovery cannot be trusted.
	var (
		active    *os.File
		expect    uint64 // next LSN the scan must see; 0 = not yet pinned
		keptFirst uint64
	)
	fail := func(err error) (*Log, *Recovery, error) {
		if active != nil {
			_ = active.Close()
		}
		return nil, nil, err
	}
	for i, seg := range segs {
		last := i == len(segs)-1
		if expect != 0 && seg.first != expect {
			return fail(fmt.Errorf("wal: segment %s starts at lsn %d, want %d (missing segment?)", seg.name, seg.first, expect))
		}
		if expect == 0 {
			if seg.first > rec.SnapshotLSN+1 {
				return fail(fmt.Errorf("wal: segment %s starts at lsn %d but the newest snapshot covers only lsn %d", seg.name, seg.first, rec.SnapshotLSN))
			}
			expect = seg.first
		}
		flags := os.O_RDONLY
		if last {
			flags = os.O_RDWR
		}
		f, oerr := os.OpenFile(filepath.Join(dir, seg.name), flags, 0)
		if oerr != nil {
			return fail(fmt.Errorf("wal: %w", oerr))
		}
		next, torn, serr := scanSegment(f, expect, rec.SnapshotLSN, last, &rec.Records)
		if serr != nil {
			_ = f.Close()
			return fail(serr)
		}
		expect = next
		if torn {
			rec.TornTail = true
			stats.tornTails.Add(1)
		}
		if last {
			active = f
		} else {
			_ = f.Close()
		}
	}
	if len(rec.Records) > 0 {
		keptFirst = rec.Records[0].LSN
		if rec.SnapshotLSN != 0 && keptFirst != rec.SnapshotLSN+1 {
			return fail(fmt.Errorf("wal: first surviving record is lsn %d, want %d (log gap after snapshot)", keptFirst, rec.SnapshotLSN+1))
		}
	}
	stats.replayedRecords.Add(uint64(len(rec.Records)))

	nextLSN := uint64(1)
	if rec.SnapshotLSN+1 > nextLSN {
		nextLSN = rec.SnapshotLSN + 1
	}
	if expect > nextLSN {
		nextLSN = expect
	}

	l := &Log{dir: dir, opts: opts, nextLSN: nextLSN, snapLSN: rec.SnapshotLSN, segs: segs}
	l.syncCond = sync.NewCond(&l.syncMu)
	l.syncedLSN = nextLSN - 1 // everything on disk is at least written
	if active == nil {
		name := segName(nextLSN)
		f, cerr := os.OpenFile(filepath.Join(dir, name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if cerr != nil {
			return nil, nil, fmt.Errorf("wal: %w", cerr)
		}
		active = f
		l.segs = append(l.segs, segMeta{first: nextLSN, name: name})
		if derr := fsyncDir(dir); derr != nil {
			_ = f.Close()
			return nil, nil, derr
		}
	} else if _, serr := active.Seek(0, io.SeekEnd); serr != nil {
		_ = active.Close()
		return nil, nil, fmt.Errorf("wal: %w", serr)
	}
	l.f = active
	l.w = bufio.NewWriterSize(active, 1<<16)
	if opts.Policy == SyncInterval {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.intervalLoop()
	}
	return l, rec, nil
}

// scanSegment reads one segment's records starting at LSN expect,
// appending those beyond snapLSN to out. It returns the next expected
// LSN. In the last segment a torn/corrupt record truncates the file at
// the last valid boundary (torn=true); elsewhere it is a hard error.
func scanSegment(f *os.File, expect, snapLSN uint64, last bool, out *[]Record) (next uint64, torn bool, err error) {
	st, err := f.Stat()
	if err != nil {
		return 0, false, fmt.Errorf("wal: %w", err)
	}
	size := st.Size()
	br := bufio.NewReaderSize(f, 1<<16)
	var (
		off    int64 // validated byte offset
		hdr    [recHeaderSize]byte
		body   []byte
		tornAt = func(why string) (uint64, bool, error) {
			if !last {
				return 0, false, fmt.Errorf("wal: corrupt record at lsn %d (%s) before the log tail — refusing to skip committed history", expect, why)
			}
			if terr := f.Truncate(off); terr != nil {
				return 0, false, fmt.Errorf("wal: truncating torn tail: %w", terr)
			}
			if serr := f.Sync(); serr != nil {
				return 0, false, fmt.Errorf("wal: truncating torn tail: %w", serr)
			}
			return expect, true, nil
		}
	)
	for {
		if _, rerr := io.ReadFull(br, hdr[:]); rerr != nil {
			if rerr == io.EOF {
				return expect, false, nil // clean segment boundary
			}
			return tornAt("short header")
		}
		n := binary.BigEndian.Uint32(hdr[0:])
		crc := binary.BigEndian.Uint32(hdr[4:])
		if n < 8 || n > 8+MaxRecordSize {
			return tornAt(fmt.Sprintf("implausible length %d", n))
		}
		if cap(body) < int(n) {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, rerr := io.ReadFull(br, body); rerr != nil {
			return tornAt("short body")
		}
		// A corrupt record with log bytes beyond its claimed extent cannot
		// be a torn final write — something after it was once committed,
		// so truncating here would discard durable history.
		end := off + int64(recHeaderSize+n)
		if crc32.Checksum(body, crcTable) != crc {
			if end < size {
				return 0, false, fmt.Errorf("wal: corrupt record at lsn %d (checksum mismatch) with %d log bytes beyond it — refusing to skip committed history", expect, size-end)
			}
			return tornAt("checksum mismatch")
		}
		lsn := binary.BigEndian.Uint64(body)
		if lsn != expect {
			if end < size {
				return 0, false, fmt.Errorf("wal: corrupt record at lsn %d (lsn %d on disk) with %d log bytes beyond it — refusing to skip committed history", expect, lsn, size-end)
			}
			return tornAt(fmt.Sprintf("lsn %d, want %d", lsn, expect))
		}
		if ierr := injectedHit(fpReplayStall); ierr != nil {
			return 0, false, fmt.Errorf("wal: replay stalled: %w", ierr)
		}
		off += int64(recHeaderSize + n)
		if lsn > snapLSN {
			payload := make([]byte, len(body)-8)
			copy(payload, body[8:])
			*out = append(*out, Record{LSN: lsn, Payload: payload})
		}
		expect = lsn + 1
	}
}
