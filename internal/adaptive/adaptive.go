// Package adaptive implements the lightweight adaptive STM framework the
// paper's Section 5.4.1 describes as RTC's deployment vehicle: several
// algorithms are registered, one is active, and the runtime can switch
// between them in a "stop-the-world" manner — new transactions block, the
// in-flight ones drain, then the active algorithm changes. Switching to or
// away from RTC is exactly the case the paper calls out (allocating the
// request array and binding servers happens in the algorithm's constructor;
// draining guarantees no transaction straddles two algorithms).
package adaptive

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/spin"
	"repro/internal/stm"
)

// STM multiplexes transactions over a set of registered algorithms, one of
// which is active at a time.
type STM struct {
	mu       sync.RWMutex // R: in-flight transactions; W: a switch
	active   stm.Algorithm
	algs     map[string]stm.Algorithm
	order    []string
	ctr      spin.Counters
	commits  atomic.Uint64
	switches atomic.Uint64
}

// New creates an adaptive STM. The first algorithm is active initially;
// at least one algorithm is required.
func New(algs ...stm.Algorithm) (*STM, error) {
	if len(algs) == 0 {
		return nil, fmt.Errorf("adaptive: at least one algorithm required")
	}
	s := &STM{algs: make(map[string]stm.Algorithm, len(algs))}
	for _, a := range algs {
		if _, dup := s.algs[a.Name()]; dup {
			return nil, fmt.Errorf("adaptive: duplicate algorithm %q", a.Name())
		}
		s.algs[a.Name()] = a
		s.order = append(s.order, a.Name())
	}
	s.active = algs[0]
	return s, nil
}

// Name implements stm.Algorithm, reporting the active algorithm.
func (s *STM) Name() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return "Adaptive(" + s.active.Name() + ")"
}

// Active returns the active algorithm's name.
func (s *STM) Active() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.active.Name()
}

// Algorithms returns the registered algorithm names in registration order.
func (s *STM) Algorithms() []string { return append([]string(nil), s.order...) }

// Counters implements stm.Algorithm.
func (s *STM) Counters() *spin.Counters { return &s.ctr }

// Stop stops every registered algorithm.
func (s *STM) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.algs {
		a.Stop()
	}
}

// Commits reports transactions executed through the adaptive layer.
func (s *STM) Commits() uint64 { return s.commits.Load() }

// Switches reports completed algorithm switches.
func (s *STM) Switches() uint64 { return s.switches.Load() }

// Atomic implements stm.Algorithm: the transaction runs entirely on the
// algorithm that was active when it started; a concurrent switch waits for
// it to finish.
func (s *STM) Atomic(fn func(stm.Tx)) {
	s.mu.RLock()
	alg := s.active
	alg.Atomic(fn)
	s.mu.RUnlock()
	s.commits.Add(1)
}

// Switch makes the named algorithm active, blocking new transactions and
// waiting for in-flight ones to drain first. It returns an error for an
// unknown name; switching to the already-active algorithm is a no-op.
func (s *STM) Switch(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	next, ok := s.algs[name]
	if !ok {
		return fmt.Errorf("adaptive: unknown algorithm %q", name)
	}
	if next != s.active {
		s.active = next
		s.switches.Add(1)
	}
	return nil
}

var _ stm.Algorithm = (*STM)(nil)
