// Package adaptive implements the lightweight adaptive STM framework the
// paper's Section 5.4.1 describes as RTC's deployment vehicle: several
// algorithms are registered, one is active, and the runtime can switch
// between them in a "stop-the-world" manner — new transactions block, the
// in-flight ones drain, then the active algorithm changes. Switching to or
// away from RTC is exactly the case the paper calls out (allocating the
// request array and binding servers happens in the algorithm's constructor;
// draining guarantees no transaction straddles two algorithms).
package adaptive

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cm"
	"repro/internal/spin"
	"repro/internal/stm"
	"repro/internal/telemetry"
)

// STM multiplexes transactions over a set of registered algorithms, one of
// which is active at a time.
type STM struct {
	mu       sync.RWMutex // R: in-flight transactions; W: a switch
	active   stm.Algorithm
	algs     map[string]stm.Algorithm
	order    []string
	ctr      spin.Counters
	commits  atomic.Uint64
	switches atomic.Uint64
}

// New creates an adaptive STM. The first algorithm is active initially;
// at least one algorithm is required.
func New(algs ...stm.Algorithm) (*STM, error) {
	if len(algs) == 0 {
		return nil, fmt.Errorf("adaptive: at least one algorithm required")
	}
	s := &STM{algs: make(map[string]stm.Algorithm, len(algs))}
	for _, a := range algs {
		if _, dup := s.algs[a.Name()]; dup {
			return nil, fmt.Errorf("adaptive: duplicate algorithm %q", a.Name())
		}
		s.algs[a.Name()] = a
		s.order = append(s.order, a.Name())
	}
	s.active = algs[0]
	return s, nil
}

// Name implements stm.Algorithm, reporting the active algorithm.
func (s *STM) Name() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return "Adaptive(" + s.active.Name() + ")"
}

// Active returns the active algorithm's name.
func (s *STM) Active() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.active.Name()
}

// Algorithms returns the registered algorithm names in registration order.
func (s *STM) Algorithms() []string { return append([]string(nil), s.order...) }

// Counters implements stm.Algorithm.
func (s *STM) Counters() *spin.Counters { return &s.ctr }

// Stop stops every registered algorithm.
func (s *STM) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.algs {
		a.Stop()
	}
}

// Commits reports transactions executed through the adaptive layer.
func (s *STM) Commits() uint64 { return s.commits.Load() }

// Switches reports completed algorithm switches.
func (s *STM) Switches() uint64 { return s.switches.Load() }

// Atomic implements stm.Algorithm: the transaction runs entirely on the
// algorithm that was active when it started; a concurrent switch waits for
// it to finish.
func (s *STM) Atomic(fn func(stm.Tx)) {
	s.mu.RLock()
	alg := s.active
	alg.Atomic(fn)
	s.mu.RUnlock()
	s.commits.Add(1)
}

// Switch makes the named algorithm active, blocking new transactions and
// waiting for in-flight ones to drain first. It returns an error for an
// unknown name; switching to the already-active algorithm is a no-op.
func (s *STM) Switch(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	next, ok := s.algs[name]
	if !ok {
		return fmt.Errorf("adaptive: unknown algorithm %q", name)
	}
	if next != s.active {
		s.active = next
		s.switches.Add(1)
	}
	return nil
}

var _ stm.Algorithm = (*STM)(nil)

// ---------------------------------------------------------------------------
// Telemetry-driven switching

// TunerConfig parameterizes a Tuner. Rates are abort rates in [0,1]:
// aborted attempts over all attempts observed since the previous decision.
type TunerConfig struct {
	// Preferred is the algorithm to run under low contention; Fallback is
	// the algorithm to retreat to when Preferred thrashes (typically a
	// serializing algorithm such as CGL or RTC, whose abort rate is
	// structurally low).
	Preferred, Fallback string
	// HighWater switches Preferred→Fallback when exceeded; LowWater
	// switches back when the fallback's observed rate drops below it.
	// LowWater < HighWater gives hysteresis so the tuner does not flap.
	HighWater, LowWater float64
	// Window is the minimum number of attempts (commits+aborts) that must
	// accumulate between decisions; smaller windows are ignored as noise.
	Window uint64

	// CM, when non-nil, is a contention manager the tuner also retunes on
	// the same hysteresis: crossing HighWater installs StormPolicy, dropping
	// under LowWater restores CalmPolicy. Both must name registered cm
	// policies when CM is set; empty strings default to "polite" (storm) and
	// "backoff" (calm). Managers swap policies atomically, so retuning needs
	// no drain.
	CM                      *cm.Manager
	CalmPolicy, StormPolicy string
}

// Tuner drives STM.Switch from live telemetry abort rates, replacing the
// ad-hoc per-algorithm counters callers previously had to poll. Each
// Observe call compares the active algorithm's meter against the values
// seen at the previous decision, so rates are windowed, not lifetime.
// Tuner is not safe for concurrent use; run it from one control goroutine.
type Tuner struct {
	s    *STM
	reg  *telemetry.Registry
	cfg  TunerConfig
	last map[string]window

	calm, storm cm.Policy // resolved from cfg when cfg.CM is set
}

// window is the (commits, aborts) baseline of one meter at the previous
// decision point.
type window struct{ commits, aborts uint64 }

// NewTuner creates a tuner over s using meters from reg (telemetry.Default
// if nil). Preferred and Fallback must name registered algorithms.
func NewTuner(s *STM, reg *telemetry.Registry, cfg TunerConfig) (*Tuner, error) {
	if reg == nil {
		reg = telemetry.Default
	}
	for _, name := range []string{cfg.Preferred, cfg.Fallback} {
		if _, ok := s.algs[name]; !ok {
			return nil, fmt.Errorf("adaptive: tuner names unregistered algorithm %q", name)
		}
	}
	if cfg.HighWater <= cfg.LowWater {
		return nil, fmt.Errorf("adaptive: tuner needs LowWater < HighWater, got %v >= %v",
			cfg.LowWater, cfg.HighWater)
	}
	if cfg.Window == 0 {
		cfg.Window = 1
	}
	t := &Tuner{s: s, reg: reg, cfg: cfg, last: make(map[string]window)}
	if cfg.CM != nil {
		if cfg.CalmPolicy == "" {
			cfg.CalmPolicy = "backoff"
		}
		if cfg.StormPolicy == "" {
			cfg.StormPolicy = "polite"
		}
		var ok bool
		if t.calm, ok = cm.Lookup(cfg.CalmPolicy); !ok {
			return nil, fmt.Errorf("adaptive: tuner names unknown cm policy %q", cfg.CalmPolicy)
		}
		if t.storm, ok = cm.Lookup(cfg.StormPolicy); !ok {
			return nil, fmt.Errorf("adaptive: tuner names unknown cm policy %q", cfg.StormPolicy)
		}
	}
	return t, nil
}

// rate returns the active algorithm's abort rate and attempt count over the
// window since its last decision, and the current meter totals.
func (t *Tuner) rate(name string) (rate float64, attempts uint64, now window) {
	snap := t.reg.Meter(name).Snapshot()
	now = window{commits: snap.Commits, aborts: snap.TotalAborts()}
	prev := t.last[name]
	dc, da := now.commits-prev.commits, now.aborts-prev.aborts
	attempts = dc + da
	if attempts == 0 {
		return 0, 0, now
	}
	return float64(da) / float64(attempts), attempts, now
}

// Observe makes one switching decision from the active algorithm's windowed
// abort rate and reports whether a switch happened. Decisions:
//
//   - active == Preferred and rate >= HighWater → switch to Fallback
//   - active == Fallback and rate <= LowWater → switch back to Preferred
//
// Windows with fewer than Window attempts are left to accumulate.
func (t *Tuner) Observe() (switched bool, err error) {
	active := t.s.Active()
	rate, attempts, now := t.rate(active)
	if attempts < t.cfg.Window {
		return false, nil
	}
	t.last[active] = now // consume the window whether or not we switch
	switch {
	case active == t.cfg.Preferred && rate >= t.cfg.HighWater:
		// Also reset the fallback's window so its old history does not
		// trigger an immediate switch back.
		fb := t.reg.Meter(t.cfg.Fallback).Snapshot()
		t.last[t.cfg.Fallback] = window{commits: fb.Commits, aborts: fb.TotalAborts()}
		if t.cfg.CM != nil {
			t.cfg.CM.SetPolicy(t.storm)
		}
		return true, t.s.Switch(t.cfg.Fallback)
	case active == t.cfg.Fallback && rate <= t.cfg.LowWater:
		pf := t.reg.Meter(t.cfg.Preferred).Snapshot()
		t.last[t.cfg.Preferred] = window{commits: pf.Commits, aborts: pf.TotalAborts()}
		if t.cfg.CM != nil {
			t.cfg.CM.SetPolicy(t.calm)
		}
		return true, t.s.Switch(t.cfg.Preferred)
	}
	return false, nil
}
