package adaptive_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/abort"
	"repro/internal/adaptive"
	"repro/internal/cm"
	"repro/internal/mem"
	"repro/internal/rtc"
	"repro/internal/stm"
	"repro/internal/stm/norec"
	"repro/internal/stm/tl2"
	"repro/internal/telemetry"
)

func TestRequiresAlgorithms(t *testing.T) {
	if _, err := adaptive.New(); err == nil {
		t.Fatal("New() with no algorithms should error")
	}
	if _, err := adaptive.New(norec.New(), norec.New()); err == nil {
		t.Fatal("duplicate names should error")
	}
}

func TestSwitchChangesActive(t *testing.T) {
	s, err := adaptive.New(norec.New(), tl2.New())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	if s.Active() != "NOrec" {
		t.Fatalf("initial active = %q", s.Active())
	}
	if err := s.Switch("TL2"); err != nil {
		t.Fatal(err)
	}
	if s.Active() != "TL2" {
		t.Fatalf("active = %q after switch", s.Active())
	}
	if err := s.Switch("nope"); err == nil {
		t.Fatal("unknown algorithm should error")
	}
	if s.Switches() != 1 {
		t.Fatalf("switches = %d, want 1", s.Switches())
	}
}

// TestSwitchUnderLoad drives continuous transactions while cycling through
// NOrec, TL2 and RTC; the counter must be exact despite the stop-the-world
// switches, proving no transaction straddled two algorithms.
func TestSwitchUnderLoad(t *testing.T) {
	s, err := adaptive.New(norec.New(), tl2.New(), rtc.New(rtc.Options{Secondaries: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	c := mem.NewCell(0)
	const workers = 6
	const each = 300
	var wg sync.WaitGroup
	var done atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				s.Atomic(func(tx stm.Tx) { tx.Write(c, tx.Read(c)+1) })
			}
		}()
	}
	// Switcher cycles algorithms until the workers finish.
	go func() {
		names := s.Algorithms()
		for i := 0; !done.Load(); i++ {
			if err := s.Switch(names[i%len(names)]); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	done.Store(true)
	if got := c.Load(); got != workers*each {
		t.Fatalf("counter = %d, want %d (a transaction straddled a switch?)", got, workers*each)
	}
	if s.Commits() != workers*each {
		t.Fatalf("commits = %d, want %d", s.Commits(), workers*each)
	}
	t.Logf("completed with %d switches", s.Switches())
}

// TestTunerSwitchesOnAbortRate drives the telemetry-backed tuner with
// synthetic meter activity: a thrashing preferred algorithm must trigger the
// fallback, and a calm fallback must switch back.
func TestTunerSwitchesOnAbortRate(t *testing.T) {
	s, err := adaptive.New(norec.New(), tl2.New())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	reg := telemetry.NewRegistry()
	reg.SetEnabled(true)
	cfg := adaptive.TunerConfig{
		Preferred: "NOrec",
		Fallback:  "TL2",
		HighWater: 0.5,
		LowWater:  0.1,
		Window:    100,
	}
	tn, err := adaptive.NewTuner(s, reg, cfg)
	if err != nil {
		t.Fatal(err)
	}

	norecTel := reg.Meter("NOrec").Local()
	tl2Tel := reg.Meter("TL2").Local()

	// Below the window: no decision.
	for i := 0; i < 50; i++ {
		norecTel.Abort(abort.Conflict)
	}
	if sw, err := tn.Observe(); err != nil || sw {
		t.Fatalf("Observe below window: switched=%v err=%v", sw, err)
	}

	// Past the window at 100% abort rate: switch to the fallback.
	for i := 0; i < 100; i++ {
		norecTel.Abort(abort.Conflict)
	}
	if sw, err := tn.Observe(); err != nil || !sw {
		t.Fatalf("Observe over high water: switched=%v err=%v", sw, err)
	}
	if s.Active() != "TL2" {
		t.Fatalf("active = %q, want TL2", s.Active())
	}

	// Calm fallback: low abort rate switches back to the preferred.
	for i := 0; i < 200; i++ {
		tl2Tel.Commit(0)
	}
	if sw, err := tn.Observe(); err != nil || !sw {
		t.Fatalf("Observe under low water: switched=%v err=%v", sw, err)
	}
	if s.Active() != "NOrec" {
		t.Fatalf("active = %q, want NOrec", s.Active())
	}

	// Moderate rate between the waters: hysteresis holds the position.
	for i := 0; i < 70; i++ {
		norecTel.Commit(0)
	}
	for i := 0; i < 30; i++ {
		norecTel.Abort(abort.Conflict)
	}
	if sw, err := tn.Observe(); err != nil || sw {
		t.Fatalf("Observe inside hysteresis band: switched=%v err=%v", sw, err)
	}
}

// TestTunerValidation covers constructor errors.
func TestTunerValidation(t *testing.T) {
	s, err := adaptive.New(norec.New())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	if _, err := adaptive.NewTuner(s, nil, adaptive.TunerConfig{
		Preferred: "NOrec", Fallback: "nope", HighWater: 0.5, LowWater: 0.1,
	}); err == nil {
		t.Fatal("unregistered fallback should error")
	}
	if _, err := adaptive.NewTuner(s, nil, adaptive.TunerConfig{
		Preferred: "NOrec", Fallback: "NOrec", HighWater: 0.1, LowWater: 0.5,
	}); err == nil {
		t.Fatal("inverted watermarks should error")
	}
}

// TestTunerRetunesCM checks that the tuner moves the contention manager
// between its calm and storm policies on the same hysteresis that switches
// algorithms.
func TestTunerRetunesCM(t *testing.T) {
	s, err := adaptive.New(norec.New(), tl2.New())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	reg := telemetry.NewRegistry()
	reg.SetEnabled(true)
	mgr := cm.New(cm.Backoff, cm.DefaultBudget)
	tn, err := adaptive.NewTuner(s, reg, adaptive.TunerConfig{
		Preferred: "NOrec", Fallback: "TL2",
		HighWater: 0.5, LowWater: 0.1, Window: 10,
		CM: mgr, CalmPolicy: "karma", StormPolicy: "polite",
	})
	if err != nil {
		t.Fatal(err)
	}

	norecTel := reg.Meter("NOrec").Local()
	tl2Tel := reg.Meter("TL2").Local()

	for i := 0; i < 20; i++ {
		norecTel.Abort(abort.Conflict)
	}
	if sw, err := tn.Observe(); err != nil || !sw {
		t.Fatalf("Observe over high water: switched=%v err=%v", sw, err)
	}
	if got := mgr.Policy().Name(); got != "polite" {
		t.Fatalf("storm policy = %q, want polite", got)
	}

	for i := 0; i < 20; i++ {
		tl2Tel.Commit(0)
	}
	if sw, err := tn.Observe(); err != nil || !sw {
		t.Fatalf("Observe under low water: switched=%v err=%v", sw, err)
	}
	if got := mgr.Policy().Name(); got != "karma" {
		t.Fatalf("calm policy = %q, want karma", got)
	}

	// Unknown policy names are rejected at construction.
	if _, err := adaptive.NewTuner(s, reg, adaptive.TunerConfig{
		Preferred: "NOrec", Fallback: "TL2",
		HighWater: 0.5, LowWater: 0.1,
		CM: mgr, StormPolicy: "nope",
	}); err == nil {
		t.Fatal("unknown cm policy should error")
	}
}
