// Package conformance runs one shared semantic specification against every
// set, map and priority-queue implementation in the repository: the
// hand-over-hand concurrent structures (internal/conc), the optimistically
// boosted ones (internal/otb), the pessimistically boosted ones
// (internal/boosting), the multi-version ones (internal/mvotb) and the
// STM-backed ones (internal/stmds).
//
// The specification is the sequential model from internal/lincheck; the
// package provides uniform adapters so each implementation presents the
// lincheck.Set / lincheck.Map / lincheck.PQ interface regardless of whether
// its native API is direct, transactional over *otb.Tx / *boosting.Tx, or
// transactional over stm.Tx. Transactional adapters wrap every operation in
// a standalone single-operation transaction.
package conformance

import (
	"repro/internal/boosting"
	"repro/internal/conc"
	"repro/internal/lincheck"
	"repro/internal/mvotb"
	"repro/internal/otb"
	"repro/internal/stm"
	"repro/internal/stm/norec"
	"repro/internal/stmds"
)

// arenaCap sizes the stmds arenas. STM attempts allocate fresh nodes even
// when they abort, so the capacity is far above the committed element count.
const arenaCap = 1 << 18

// SetEntry names one set implementation. New returns a fresh instance and a
// cleanup function (which stops the backing STM where there is one).
type SetEntry struct {
	Name string
	New  func() (lincheck.Set, func())
}

// MapEntry names one map implementation.
type MapEntry struct {
	Name string
	New  func() (lincheck.Map, func())
}

// PQEntry names one priority-queue implementation.
type PQEntry struct {
	Name string
	New  func() (lincheck.PQ, func())
}

func noStop() {}

// Sets returns every set implementation in the repository.
func Sets() []SetEntry {
	return []SetEntry{
		{"conc/lazy-list", func() (lincheck.Set, func()) { return conc.NewLazyList(), noStop }},
		{"conc/lazy-skip", func() (lincheck.Set, func()) { return conc.NewLazySkipList(), noStop }},
		{"otb/listset", func() (lincheck.Set, func()) { return otbSet{otb.NewListSet()}, noStop }},
		{"otb/skipset", func() (lincheck.Set, func()) { return otbSet{otb.NewSkipSet()}, noStop }},
		{"otb/hashset", func() (lincheck.Set, func()) { return otbSet{otb.NewHashSet(16)}, noStop }},
		{"boosting/list", func() (lincheck.Set, func()) {
			return boostSet{boosting.NewSet(conc.NewLazyList(), 64)}, noStop
		}},
		{"boosting/skip", func() (lincheck.Set, func()) {
			return boostSet{boosting.NewSet(conc.NewLazySkipList(), 64)}, noStop
		}},
		{"mvotb/set", func() (lincheck.Set, func()) {
			rt := mvotb.New(mvotb.Options{})
			return mvotbSet{rt, rt.NewSet(16)}, rt.Stop
		}},
		{"stmds/list", func() (lincheck.Set, func()) {
			alg := norec.New()
			return stmSet{alg, stmds.NewList(arenaCap)}, alg.Stop
		}},
		{"stmds/skiplist", func() (lincheck.Set, func()) {
			alg := norec.New()
			return stmSet{alg, stmds.NewSkipList(arenaCap)}, alg.Stop
		}},
		{"stmds/dlist", func() (lincheck.Set, func()) {
			alg := norec.New()
			return stmSet{alg, stmds.NewDList(arenaCap)}, alg.Stop
		}},
		{"stmds/rbtree", func() (lincheck.Set, func()) {
			alg := norec.New()
			return stmSet{alg, rbSet{stmds.NewRBTree(arenaCap)}}, alg.Stop
		}},
	}
}

// Maps returns every map implementation in the repository.
func Maps() []MapEntry {
	return []MapEntry{
		{"otb/map", func() (lincheck.Map, func()) { return otbMap{otb.NewMap()}, noStop }},
		{"mvotb/map", func() (lincheck.Map, func()) {
			rt := mvotb.New(mvotb.Options{})
			return mvotbMap{rt, rt.NewMap(16)}, rt.Stop
		}},
		{"stmds/hashmap", func() (lincheck.Map, func()) {
			alg := norec.New()
			return stmMap{alg, stmds.NewHashMap(64, arenaCap)}, alg.Stop
		}},
	}
}

// PQs returns every priority-queue implementation in the repository.
func PQs() []PQEntry {
	return []PQEntry{
		{"conc/heap", func() (lincheck.PQ, func()) { return conc.NewHeapPQ(), noStop }},
		{"conc/skip", func() (lincheck.PQ, func()) {
			return boosting.SkipPQAdapter{Q: conc.NewSkipPQ()}, noStop
		}},
		{"otb/heap", func() (lincheck.PQ, func()) { return otbHeapPQ{otb.NewHeapPQ()}, noStop }},
		{"otb/skip", func() (lincheck.PQ, func()) { return otbSkipPQ{otb.NewSkipPQ()}, noStop }},
		{"boosting/heap", func() (lincheck.PQ, func()) { return boostPQ{boosting.NewPQ()}, noStop }},
		{"boosting/skip", func() (lincheck.PQ, func()) {
			return boostPQ{boosting.NewPQOver(boosting.SkipPQAdapter{Q: conc.NewSkipPQ()})}, noStop
		}},
	}
}

// otbSetOps is the transactional set surface shared by ListSet, SkipSet and
// HashSet.
type otbSetOps interface {
	Add(*otb.Tx, int64) bool
	Remove(*otb.Tx, int64) bool
	Contains(*otb.Tx, int64) bool
}

// otbSet runs each operation in its own OTB transaction.
type otbSet struct{ s otbSetOps }

func (a otbSet) Add(k int64) (ok bool) {
	otb.Atomic(nil, func(tx *otb.Tx) { ok = a.s.Add(tx, k) })
	return
}

func (a otbSet) Remove(k int64) (ok bool) {
	otb.Atomic(nil, func(tx *otb.Tx) { ok = a.s.Remove(tx, k) })
	return
}

func (a otbSet) Contains(k int64) (ok bool) {
	otb.Atomic(nil, func(tx *otb.Tx) { ok = a.s.Contains(tx, k) })
	return
}

// otbMap runs each operation in its own OTB transaction.
type otbMap struct{ m *otb.Map }

func (a otbMap) Put(k int64, v uint64) (ok bool) {
	otb.Atomic(nil, func(tx *otb.Tx) { ok = a.m.Put(tx, k, v) })
	return
}

func (a otbMap) Get(k int64) (v uint64, ok bool) {
	otb.Atomic(nil, func(tx *otb.Tx) { v, ok = a.m.Get(tx, k) })
	return
}

func (a otbMap) Delete(k int64) (ok bool) {
	otb.Atomic(nil, func(tx *otb.Tx) { ok = a.m.Delete(tx, k) })
	return
}

type otbHeapPQ struct{ q *otb.HeapPQ }

func (a otbHeapPQ) Add(k int64) {
	otb.Atomic(nil, func(tx *otb.Tx) { a.q.Add(tx, k) })
}

func (a otbHeapPQ) Min() (k int64, ok bool) {
	otb.Atomic(nil, func(tx *otb.Tx) { k, ok = a.q.Min(tx) })
	return
}

func (a otbHeapPQ) RemoveMin() (k int64, ok bool) {
	otb.Atomic(nil, func(tx *otb.Tx) { k, ok = a.q.RemoveMin(tx) })
	return
}

type otbSkipPQ struct{ q *otb.SkipPQ }

func (a otbSkipPQ) Add(k int64) {
	otb.Atomic(nil, func(tx *otb.Tx) { a.q.Add(tx, k) })
}

func (a otbSkipPQ) Min() (k int64, ok bool) {
	otb.Atomic(nil, func(tx *otb.Tx) { k, ok = a.q.Min(tx) })
	return
}

func (a otbSkipPQ) RemoveMin() (k int64, ok bool) {
	otb.Atomic(nil, func(tx *otb.Tx) { k, ok = a.q.RemoveMin(tx) })
	return
}

// mvotbSet runs updates in standalone MVOTB transactions and membership
// queries through the never-abort snapshot path (a single-key read-only
// transaction linearizes at its snapshot point).
type mvotbSet struct {
	rt *mvotb.Runtime
	s  *mvotb.Set
}

func (a mvotbSet) Add(k int64) (ok bool) {
	a.rt.Atomic(func(tx *mvotb.Tx) { ok = a.s.Add(tx, k) })
	return
}

func (a mvotbSet) Remove(k int64) (ok bool) {
	a.rt.Atomic(func(tx *mvotb.Tx) { ok = a.s.Remove(tx, k) })
	return
}

func (a mvotbSet) Contains(k int64) (ok bool) {
	a.rt.ReadOnly(func(x *mvotb.STx) { ok = a.s.SnapContains(x, k) })
	return
}

// mvotbMap is mvotbSet for the map.
type mvotbMap struct {
	rt *mvotb.Runtime
	m  *mvotb.Map
}

func (a mvotbMap) Put(k int64, v uint64) (ok bool) {
	a.rt.Atomic(func(tx *mvotb.Tx) { ok = a.m.Put(tx, k, v) })
	return
}

func (a mvotbMap) Get(k int64) (v uint64, ok bool) {
	a.rt.ReadOnly(func(x *mvotb.STx) { v, ok = a.m.SnapGet(x, k) })
	return
}

func (a mvotbMap) Delete(k int64) (ok bool) {
	a.rt.Atomic(func(tx *mvotb.Tx) { ok = a.m.Delete(tx, k) })
	return
}

// boostSet runs each operation in its own boosted transaction.
type boostSet struct{ s *boosting.Set }

func (a boostSet) Add(k int64) (ok bool) {
	boosting.Atomic(nil, nil, func(tx *boosting.Tx) { ok = a.s.Add(tx, k) })
	return
}

func (a boostSet) Remove(k int64) (ok bool) {
	boosting.Atomic(nil, nil, func(tx *boosting.Tx) { ok = a.s.Remove(tx, k) })
	return
}

func (a boostSet) Contains(k int64) (ok bool) {
	boosting.Atomic(nil, nil, func(tx *boosting.Tx) { ok = a.s.Contains(tx, k) })
	return
}

type boostPQ struct{ q *boosting.PQ }

func (a boostPQ) Add(k int64) {
	boosting.Atomic(nil, nil, func(tx *boosting.Tx) { a.q.Add(tx, k) })
}

func (a boostPQ) Min() (k int64, ok bool) {
	boosting.Atomic(nil, nil, func(tx *boosting.Tx) { k, ok = a.q.Min(tx) })
	return
}

func (a boostPQ) RemoveMin() (k int64, ok bool) {
	boosting.Atomic(nil, nil, func(tx *boosting.Tx) { k, ok = a.q.RemoveMin(tx) })
	return
}

// stmSetOps is the transactional set surface shared by the stmds
// structures.
type stmSetOps interface {
	Add(stm.Tx, int64) bool
	Remove(stm.Tx, int64) bool
	Contains(stm.Tx, int64) bool
}

// rbSet renames RBTree's Insert/Delete to the common Add/Remove surface.
type rbSet struct{ t *stmds.RBTree }

func (r rbSet) Add(tx stm.Tx, k int64) bool      { return r.t.Insert(tx, k) }
func (r rbSet) Remove(tx stm.Tx, k int64) bool   { return r.t.Delete(tx, k) }
func (r rbSet) Contains(tx stm.Tx, k int64) bool { return r.t.Contains(tx, k) }

// stmSet runs each operation in its own STM transaction.
type stmSet struct {
	alg stm.Algorithm
	s   stmSetOps
}

func (a stmSet) Add(k int64) (ok bool) {
	a.alg.Atomic(func(tx stm.Tx) { ok = a.s.Add(tx, k) })
	return
}

func (a stmSet) Remove(k int64) (ok bool) {
	a.alg.Atomic(func(tx stm.Tx) { ok = a.s.Remove(tx, k) })
	return
}

func (a stmSet) Contains(k int64) (ok bool) {
	a.alg.Atomic(func(tx stm.Tx) { ok = a.s.Contains(tx, k) })
	return
}

// stmMap runs each operation in its own STM transaction.
type stmMap struct {
	alg stm.Algorithm
	m   *stmds.HashMap
}

func (a stmMap) Put(k int64, v uint64) (ok bool) {
	a.alg.Atomic(func(tx stm.Tx) { ok = a.m.Put(tx, k, v) })
	return
}

func (a stmMap) Get(k int64) (v uint64, ok bool) {
	a.alg.Atomic(func(tx stm.Tx) { v, ok = a.m.Get(tx, k) })
	return
}

func (a stmMap) Delete(k int64) (ok bool) {
	a.alg.Atomic(func(tx stm.Tx) { ok = a.m.Delete(tx, k) })
	return
}
