package conformance

import (
	"math/rand/v2"
	"testing"

	"repro/internal/lincheck"
)

// The sequential suite drives every implementation through the same
// randomized single-threaded workload and checks each response against the
// lincheck sequential model — one specification, all implementations. Any
// divergence (a Put that returns the wrong insert flag, a Remove that lies)
// fails with the offending op.

// stepSeq applies op's result to the per-key model state, failing the test
// if the model rejects it.
func stepSeq(t *testing.T, m lincheck.Model, states map[int64]any, op lincheck.Op) {
	t.Helper()
	st, ok := states[op.Key]
	if !ok {
		st = m.Init()
	}
	next, legal := m.Step(st, op)
	if !legal {
		t.Fatalf("sequential spec violated at %v", op)
	}
	states[op.Key] = next
}

func TestConformanceSequentialSets(t *testing.T) {
	for _, e := range Sets() {
		t.Run(e.Name, func(t *testing.T) {
			s, stop := e.New()
			defer stop()
			m := lincheck.SetModel()
			states := map[int64]any{}
			rng := rand.New(rand.NewPCG(7, 7))
			for i := 0; i < 400; i++ {
				key := int64(rng.IntN(8))
				op := lincheck.Op{Key: key}
				switch rng.IntN(3) {
				case 0:
					op.Kind, op.Ok = lincheck.Add, s.Add(key)
				case 1:
					op.Kind, op.Ok = lincheck.Remove, s.Remove(key)
				default:
					op.Kind, op.Ok = lincheck.Contains, s.Contains(key)
				}
				stepSeq(t, m, states, op)
			}
		})
	}
}

func TestConformanceSequentialMaps(t *testing.T) {
	for _, e := range Maps() {
		t.Run(e.Name, func(t *testing.T) {
			mp, stop := e.New()
			defer stop()
			m := lincheck.MapModel()
			states := map[int64]any{}
			rng := rand.New(rand.NewPCG(11, 11))
			for i := 0; i < 400; i++ {
				key := int64(rng.IntN(8))
				op := lincheck.Op{Key: key}
				switch rng.IntN(3) {
				case 0:
					op.Kind, op.In = lincheck.Put, uint64(i)+1
					op.Ok = mp.Put(key, op.In)
				case 1:
					op.Kind = lincheck.Get
					op.Out, op.Ok = mp.Get(key)
				default:
					op.Kind, op.Ok = lincheck.Delete, mp.Delete(key)
				}
				stepSeq(t, m, states, op)
			}
		})
	}
}

func TestConformanceSequentialPQs(t *testing.T) {
	for _, e := range PQs() {
		t.Run(e.Name, func(t *testing.T) {
			q, stop := e.New()
			defer stop()
			m := lincheck.PQModel()
			state := m.Init()
			rng := rand.New(rand.NewPCG(13, 13))
			for i := 0; i < 300; i++ {
				var op lincheck.Op
				switch rng.IntN(3) {
				case 0:
					// Unique keys: duplicate handling differs across variants.
					op.Kind, op.Key = lincheck.Add, int64(rng.IntN(64))<<16|int64(i)
					q.Add(op.Key)
				case 1:
					op.Kind = lincheck.Min
					k, ok := q.Min()
					op.Out, op.Ok = uint64(k), ok
				default:
					op.Kind = lincheck.RemoveMin
					k, ok := q.RemoveMin()
					op.Out, op.Ok = uint64(k), ok
				}
				next, legal := m.Step(state, op)
				if !legal {
					t.Fatalf("sequential spec violated at %v", op)
				}
				state = next
			}
		})
	}
}

// The concurrent matrix runs the lincheck stress driver over every
// implementation: record a multithreaded history with scheduling jitter,
// then search for a linearization witness.

func lcfg(seed int64, name string) lincheck.Config {
	cfg := lincheck.DefaultConfig(seed)
	cfg.Name = name
	if testing.Short() {
		cfg = cfg.Scaled(4)
	}
	return cfg
}

func TestLincheckConformanceSets(t *testing.T) {
	for i, e := range Sets() {
		e, i := e, i
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			s, stop := e.New()
			defer stop()
			lincheck.StressSet(t, lcfg(100+int64(i), e.Name), func() lincheck.Set { return s })
		})
	}
}

func TestLincheckConformanceMaps(t *testing.T) {
	for i, e := range Maps() {
		e, i := e, i
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			m, stop := e.New()
			defer stop()
			lincheck.StressMap(t, lcfg(200+int64(i), e.Name), func() lincheck.Map { return m })
		})
	}
}

func TestLincheckConformancePQs(t *testing.T) {
	for i, e := range PQs() {
		e, i := e, i
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			q, stop := e.New()
			defer stop()
			cfg := lcfg(300+int64(i), e.Name)
			cfg.Threads, cfg.Ops = 3, 120 // pq histories are unpartitioned
			if testing.Short() {
				cfg.Ops = 60
			}
			lincheck.StressPQ(t, cfg, func() lincheck.PQ { return q })
		})
	}
}
