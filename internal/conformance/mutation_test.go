package conformance

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/lincheck"
	"repro/internal/mem"
	"repro/internal/spin"
	"repro/internal/stm"
)

// Mutation tests: seed a known concurrency bug into a copy of a structure
// (or algorithm) and require the checkers to catch it. They pin down that
// the harness has teeth — the conformance matrix passing means something
// only if these fail loudly on broken code.

// unvalidatedNode / unvalidatedList is conc.LazyList with the post-lock
// validation deliberately removed: Add and Remove lock (pred, curr) and
// mutate without re-checking that the pair is still adjacent and unmarked.
// Inserts after a concurrently removed predecessor are lost, and removals
// can resurrect unlinked suffixes. All shared fields stay atomic so the bug
// is invisible to the race detector — only a linearizability check sees it.
type unvalidatedNode struct {
	key    int64
	next   atomic.Pointer[unvalidatedNode]
	marked atomic.Bool
	mu     sync.Mutex
}

type unvalidatedList struct{ head *unvalidatedNode }

func newUnvalidatedList() *unvalidatedList {
	tail := &unvalidatedNode{key: math.MaxInt64}
	head := &unvalidatedNode{key: math.MinInt64}
	head.next.Store(tail)
	return &unvalidatedList{head: head}
}

func (l *unvalidatedList) locate(key int64) (pred, curr *unvalidatedNode) {
	pred = l.head
	curr = pred.next.Load()
	for curr.key < key {
		pred = curr
		curr = curr.next.Load()
	}
	return pred, curr
}

func (l *unvalidatedList) Add(key int64) bool {
	pred, curr := l.locate(key)
	runtime.Gosched() // widen the locate-to-lock window the validation would close
	pred.mu.Lock()
	curr.mu.Lock()
	defer pred.mu.Unlock()
	defer curr.mu.Unlock()
	if curr.key == key {
		return false
	}
	n := &unvalidatedNode{key: key}
	n.next.Store(curr)
	pred.next.Store(n)
	return true
}

func (l *unvalidatedList) Remove(key int64) bool {
	pred, curr := l.locate(key)
	runtime.Gosched()
	pred.mu.Lock()
	curr.mu.Lock()
	defer pred.mu.Unlock()
	defer curr.mu.Unlock()
	if curr.key != key {
		return false
	}
	curr.marked.Store(true)
	pred.next.Store(curr.next.Load())
	return true
}

func (l *unvalidatedList) Contains(key int64) bool {
	curr := l.head
	for curr.key < key {
		curr = curr.next.Load()
	}
	return curr.key == key && !curr.marked.Load()
}

// TestLincheckMutationUnvalidatedList requires the linearizability checker
// to catch the missing-validation bug within a bounded number of seeded
// runs. The workload is deliberately hot: few keys, many threads, heavy
// preemption jitter.
func TestLincheckMutationUnvalidatedList(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		cfg := lincheck.Config{
			Name: "mutant-lazy-list", Seed: seed,
			Threads: 6, Ops: 150, Keys: 3,
			AddPct: 40, RemovePct: 40, JitterPermille: 150,
		}
		res, _ := lincheck.RunSet(cfg, func() lincheck.Set { return newUnvalidatedList() })
		if res.Outcome == lincheck.Violation {
			t.Logf("caught at seed %d: %s", seed, res.Detail)
			return
		}
	}
	t.Fatal("checker never caught the unvalidated lazy list in 25 seeded runs")
}

// racySTM is a deliberately broken software transactional memory: writes
// are buffered and flushed under a global lock, but reads go straight to
// memory with no validation and no snapshot, so a transaction can observe
// half of another transaction's commit. It is the "skip NOrec's value-based
// revalidation" mutation distilled to its essence.
type racySTM struct {
	mu  sync.Mutex
	ctr spin.Counters
}

func (*racySTM) Name() string               { return "racy" }
func (*racySTM) Stop()                      {}
func (a *racySTM) Counters() *spin.Counters { return &a.ctr }

type racyTx struct {
	writes map[*mem.Cell]uint64
}

func (t *racyTx) Read(c *mem.Cell) uint64 {
	if v, ok := t.writes[c]; ok {
		return v
	}
	return c.Load() // unvalidated direct read: torn snapshots possible
}

func (t *racyTx) Write(c *mem.Cell, v uint64) { t.writes[c] = v }

func (a *racySTM) Atomic(fn func(stm.Tx)) {
	tx := &racyTx{writes: make(map[*mem.Cell]uint64)}
	fn(tx)
	a.mu.Lock()
	for c, v := range tx.writes {
		c.Store(v)
	}
	a.mu.Unlock()
}

// TestOpacityMutationRacySTM requires the opacity checker to catch the
// torn reads the validation-free STM produces.
func TestOpacityMutationRacySTM(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		cfg := lincheck.STMConfig{
			Name: "racy-stm", Seed: seed,
			Threads: 6, Txns: 80, OpsPerTx: 6, Cells: 4,
			WritePct: 50, JitterPermille: 150,
		}
		res, _ := lincheck.RunSTM(&racySTM{}, cfg)
		if res.Outcome == lincheck.Violation {
			t.Logf("caught at seed %d: %s", seed, res.Detail)
			return
		}
	}
	t.Fatal("checker never caught the validation-free STM in 25 seeded runs")
}
