package conformance

import (
	"fmt"
	"testing"

	"repro/internal/lincheck"
	"repro/internal/stm/norec"
)

// corpusSeeds is the regression corpus: seeds that exercised interesting
// interleavings during development (checker backtracking depth, aborted
// attempts straddling commits, contended PQ removals). Replaying them keeps
// the checker pinned to histories it has handled before; add the seed from
// any future field failure here.
var corpusSeeds = []int64{
	1, 7, 42, 97, 1009, 4242, 31337, 65537, 271828, 314159,
}

// corpusStructures picks one representative set per implementation family.
func corpusStructures() []SetEntry {
	var out []SetEntry
	for _, e := range Sets() {
		switch e.Name {
		case "conc/lazy-list", "otb/listset", "boosting/list", "stmds/list":
			out = append(out, e)
		}
	}
	return out
}

// TestLincheckCorpus replays every corpus seed through a small contended
// run on one representative structure per family plus one STM opacity run.
// Configs are deliberately tiny so the whole corpus stays fast enough for
// -short.
func TestLincheckCorpus(t *testing.T) {
	for _, seed := range corpusSeeds {
		for _, e := range corpusStructures() {
			seed, e := seed, e
			t.Run(fmt.Sprintf("seed%d/%s", seed, e.Name), func(t *testing.T) {
				t.Parallel()
				cfg := lincheck.DefaultConfig(seed).Scaled(4)
				cfg.JitterPermille = 80
				cfg.Name = e.Name
				s, stop := e.New()
				defer stop()
				lincheck.StressSet(t, cfg, func() lincheck.Set { return s })
			})
		}
		seed := seed
		t.Run(fmt.Sprintf("seed%d/stm/norec", seed), func(t *testing.T) {
			t.Parallel()
			alg := norec.New()
			defer alg.Stop()
			scfg := lincheck.DefaultSTMConfig(seed).Scaled(2)
			scfg.JitterPermille = 80
			lincheck.StressSTM(t, alg, scfg)
		})
	}
}
