package integrate_test

import (
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/integrate"
	"repro/internal/mem"
	"repro/internal/otb"
)

func algorithms() []integrate.Algorithm {
	return []integrate.Algorithm{integrate.NewOTBNOrec(), integrate.NewOTBTL2()}
}

// stressIters scales a stress-test iteration count down under -short (the
// CI race job) while keeping full coverage in the default run.
func stressIters(full int) int {
	if testing.Short() {
		return full / 5
	}
	return full
}

func TestMixedSetAndMemory(t *testing.T) {
	for _, alg := range algorithms() {
		t.Run(alg.Name(), func(t *testing.T) {
			defer alg.Stop()
			set := otb.NewListSet()
			success := mem.NewCell(0)
			failure := mem.NewCell(0)
			const workers = 6
			each := stressIters(150)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					rng := rand.New(rand.NewPCG(seed, 3))
					for i := 0; i < each; i++ {
						k := int64(rng.IntN(64))
						alg.Atomic(func(ctx *integrate.Ctx) {
							// Algorithm 7 of the paper: a set op and counter
							// updates must be atomic together.
							if set.Add(ctx.Sem(), k) {
								ctx.Write(success, ctx.Read(success)+1)
							} else {
								ctx.Write(failure, ctx.Read(failure)+1)
							}
						})
					}
				}(uint64(w + 1))
			}
			wg.Wait()
			total := success.Load() + failure.Load()
			if total != uint64(workers*each) {
				t.Fatalf("counter total = %d, want %d", total, workers*each)
			}
			// Every successful add inserted a distinct key exactly once.
			if got := uint64(set.Len()); got != success.Load() {
				t.Fatalf("set len = %d, successful adds = %d", got, success.Load())
			}
		})
	}
}

func TestMixedSkipSetPairInvariant(t *testing.T) {
	for _, alg := range algorithms() {
		t.Run(alg.Name(), func(t *testing.T) {
			defer alg.Stop()
			set := otb.NewSkipSet()
			counter := mem.NewCell(0) // net element count, updated in-tx
			const pairs = 16
			const offset = 400
			const workers = 6
			each := stressIters(100)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					rng := rand.New(rand.NewPCG(seed, 17))
					for i := 0; i < each; i++ {
						k := int64(rng.IntN(pairs)) + 1
						alg.Atomic(func(ctx *integrate.Ctx) {
							sem := ctx.Sem()
							if set.Contains(sem, k) {
								set.Remove(sem, k)
								set.Remove(sem, k+offset)
								ctx.Write(counter, ctx.Read(counter)-2)
							} else {
								set.Add(sem, k)
								set.Add(sem, k+offset)
								ctx.Write(counter, ctx.Read(counter)+2)
							}
						})
					}
				}(uint64(w + 1))
			}
			wg.Wait()
			if got, want := uint64(set.Len()), counter.Load(); got != want {
				t.Fatalf("set len = %d, in-tx counter = %d", got, want)
			}
			present := map[int64]bool{}
			for _, k := range set.Keys() {
				present[k] = true
			}
			for k := int64(1); k <= pairs; k++ {
				if present[k] != present[k+offset] {
					t.Fatalf("pair invariant broken for %d", k)
				}
			}
		})
	}
}

func TestTwoSetsOneTransaction(t *testing.T) {
	for _, alg := range algorithms() {
		t.Run(alg.Name(), func(t *testing.T) {
			defer alg.Stop()
			src := otb.NewListSet()
			dst := otb.NewSkipSet()
			alg.Atomic(func(ctx *integrate.Ctx) {
				for i := int64(0); i < 20; i++ {
					src.Add(ctx.Sem(), i)
				}
			})
			// Move all elements atomically, one per transaction.
			const workers = 4
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(base int64) {
					defer wg.Done()
					for i := base; i < 20; i += workers {
						alg.Atomic(func(ctx *integrate.Ctx) {
							if src.Remove(ctx.Sem(), i) {
								dst.Add(ctx.Sem(), i)
							}
						})
					}
				}(int64(w))
			}
			wg.Wait()
			if src.Len() != 0 {
				t.Fatalf("src len = %d, want 0", src.Len())
			}
			if dst.Len() != 20 {
				t.Fatalf("dst len = %d, want 20", dst.Len())
			}
		})
	}
}

func TestMemoryOnlyTransactions(t *testing.T) {
	for _, alg := range algorithms() {
		t.Run(alg.Name(), func(t *testing.T) {
			defer alg.Stop()
			c := mem.NewCell(0)
			const workers = 8
			each := stressIters(200)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < each; i++ {
						alg.Atomic(func(ctx *integrate.Ctx) {
							ctx.Write(c, ctx.Read(c)+1)
						})
					}
				}()
			}
			wg.Wait()
			if got := c.Load(); got != uint64(workers*each) {
				t.Fatalf("counter = %d, want %d", got, workers*each)
			}
		})
	}
}

// TestOpacityAcrossLayers checks that a transaction never observes the
// memory counter out of sync with the set size mid-execution, even while
// writers continuously update both.
func TestOpacityAcrossLayers(t *testing.T) {
	for _, alg := range algorithms() {
		t.Run(alg.Name(), func(t *testing.T) {
			defer alg.Stop()
			set := otb.NewListSet()
			size := mem.NewCell(0)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				k := int64(0)
				for {
					select {
					case <-stop:
						return
					default:
					}
					k++
					key := k
					alg.Atomic(func(ctx *integrate.Ctx) {
						if set.Add(ctx.Sem(), key%50) {
							ctx.Write(size, ctx.Read(size)+1)
						} else if set.Remove(ctx.Sem(), key%50) {
							ctx.Write(size, ctx.Read(size)-1)
						}
					})
				}
			}()
			for i := 0; i < stressIters(400); i++ {
				alg.Atomic(func(ctx *integrate.Ctx) {
					n := ctx.Read(size)
					// Count two sample keys transactionally; their combined
					// presence can never exceed the tracked size.
					present := uint64(0)
					if set.Contains(ctx.Sem(), 1) {
						present++
					}
					if set.Contains(ctx.Sem(), 2) {
						present++
					}
					if present > n {
						t.Errorf("observed %d present keys with size=%d", present, n)
					}
				})
			}
			close(stop)
			wg.Wait()
			if got, want := uint64(set.Len()), size.Load(); got != want {
				t.Fatalf("final set len %d != counter %d", got, want)
			}
		})
	}
}
