// Package integrate implements the Chapter 4 framework: STM contexts that
// let one transaction mix traditional memory reads/writes with OTB data
// structure operations, preserving atomicity and opacity across both.
//
// Two contexts are provided, mirroring the paper's case studies:
//
//   - OTBNOrec extends NOrec. The single global lock synchronizes both
//     memory and semantic commits, so semantic locks are skipped entirely
//     and post-read validation co-validates memory values and semantic
//     read sets (both value-based and incremental).
//   - OTBTL2 extends TL2. Memory uses ownership records; data structure
//     operations validate semantically with lock sampling, and commit
//     interleaves orec locking with the OTB PreCommit/OnCommit/PostCommit
//     protocol.
//
// Usage:
//
//	alg := integrate.NewOTBNOrec()
//	set := otb.NewListSet()
//	alg.Atomic(func(ctx *integrate.Ctx) {
//		if set.Add(ctx.Sem(), x) {
//			ctx.Write(nSuccess, ctx.Read(nSuccess)+1)
//		}
//	})
package integrate

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/abort"
	"repro/internal/chaos/failpoint"
	"repro/internal/cm"
	"repro/internal/mem"
	"repro/internal/otb"
	"repro/internal/spin"
	"repro/internal/stm"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// norecClockTraceKey tags flight-recorder lock events for OTB-NOrec's
// single global commit lock, which has no per-cell identity.
const norecClockTraceKey = 1<<60 | 3

// tl2OrecTraceKey tags an ownership-record index so orec lock events
// cannot collide with cell IDs or semantic keys in the conflict table.
func tl2OrecTraceKey(idx int) uint64 { return uint64(idx) | 1<<62 }

// Failpoints on the integrated commit paths.
var (
	// fpNOrecCommitLocked fires with OTB-NOrec's global lock held, before
	// any memory or semantic publication.
	fpNOrecCommitLocked = failpoint.New("otbnorec.commit.locked")
	// fpTL2CommitLocked fires with both the memory orecs and the semantic
	// locks held, before anything is published — the deepest lock nesting in
	// the repository; recovery unwinds both layers.
	fpTL2CommitLocked = failpoint.New("otbtl2.commit.locked")
)

// Ctx is the transaction handle passed to atomic blocks: STM memory access
// plus the semantic transaction for OTB operations.
type Ctx struct {
	memory stm.Tx
	sem    *otb.Tx
}

// Read reads a memory cell transactionally.
func (c *Ctx) Read(cell *mem.Cell) uint64 { return c.memory.Read(cell) }

// Write writes a memory cell transactionally.
func (c *Ctx) Write(cell *mem.Cell, v uint64) { c.memory.Write(cell, v) }

// Sem returns the semantic (OTB) transaction, passed to OTB structure
// operations.
func (c *Ctx) Sem() *otb.Tx { return c.sem }

// Algorithm is an integrated OTB+STM algorithm.
type Algorithm interface {
	Name() string
	Atomic(fn func(*Ctx))
	// AtomicCtx is Atomic observing a context; see stm.AlgorithmCtx.
	AtomicCtx(ctx context.Context, fn func(*Ctx)) error
	Counters() *spin.Counters
	Stop()
}

// ---------------------------------------------------------------------------
// OTB-NOrec

// OTBNOrec is the NOrec-based integration context.
type OTBNOrec struct {
	clock spin.SeqLock
	// semanticLocks ablates the paper's OTB-NOrec optimization of skipping
	// fine-grained semantic locks under the global lock: when set, commits
	// run the full PreCommit/PostCommit protocol anyway, measuring the cost
	// the optimization saves.
	semanticLocks bool
	ctr           spin.Counters
	cmgr          *cm.Manager
	stats         struct {
		commits atomic.Uint64
		aborts  atomic.Uint64
	}
	pool sync.Pool
}

// NewOTBNOrec creates an OTB-NOrec instance.
func NewOTBNOrec() *OTBNOrec {
	s := &OTBNOrec{}
	telemetry.M(s.Name()).SetPolicySource(func() string { return cm.Or(s.cmgr).Policy().Name() })
	s.pool.New = func() any { return newNorecCtx(s) }
	return s
}

// SetManager installs the contention manager transactions run under (nil
// means the shared cm.Default manager). It must be set before any
// transaction runs.
func (s *OTBNOrec) SetManager(m *cm.Manager) { s.cmgr = m }

// NewOTBNOrecSemanticLocks creates an instance with the lock-granularity
// optimization ablated (semantic locks are acquired even though the global
// lock subsumes them). For the ablation benches only.
func NewOTBNOrecSemanticLocks() *OTBNOrec {
	s := NewOTBNOrec()
	s.semanticLocks = true
	return s
}

// Name implements Algorithm.
func (s *OTBNOrec) Name() string { return "OTB-NOrec" }

// Counters implements Algorithm.
func (s *OTBNOrec) Counters() *spin.Counters { return &s.ctr }

// Stop implements Algorithm (no background goroutines).
func (s *OTBNOrec) Stop() {}

// Commits and Aborts report lifetime transaction outcomes.
func (s *OTBNOrec) Commits() uint64 { return s.stats.commits.Load() }

// Aborts reports the number of aborted attempts.
func (s *OTBNOrec) Aborts() uint64 { return s.stats.aborts.Load() }

// norecCtx is one OTB-NOrec transaction descriptor. It implements
// abort.TxRunner so the retry loop drives it without per-transaction
// closures.
type norecCtx struct {
	s          *OTBNOrec
	snapshot   uint64
	holdsClock bool
	reads      []stm.ReadEntry
	writes     stm.WriteSet
	fn         func(*Ctx)
	ctx        Ctx
	tel        *telemetry.Local
	tr         *trace.Local
}

func newNorecCtx(s *OTBNOrec) *norecCtx {
	t := &norecCtx{s: s, tel: telemetry.M(s.Name()).Local(), tr: trace.S(s.Name()).Local()}
	sem := otb.NewTx(&s.ctr)
	// The semantic layer traces into the integrated context's descriptor
	// track, so OTB operations and memory events share one span.
	sem.SetTraceLocal(t.tr)
	// onOperationValidate: identical to onReadAccess — wait for a stable
	// global timestamp while co-validating memory and semantics.
	sem.SetValidator(func(*otb.Tx) {
		for t.snapshot != t.s.clock.Load() {
			t.snapshot = t.validateAll()
		}
	})
	t.ctx = Ctx{memory: t, sem: sem}
	return t
}

// Atomic implements Algorithm.
func (s *OTBNOrec) Atomic(fn func(*Ctx)) { s.AtomicCtx(nil, fn) }

// AtomicCtx implements Algorithm: Atomic observing ctx. The descriptor
// returns to its pool even when fn (or an armed failpoint) panics — the
// rollback path has already released the semantic state and global lock.
func (s *OTBNOrec) AtomicCtx(ctx context.Context, fn func(*Ctx)) error {
	t := s.pool.Get().(*norecCtx)
	t.fn = fn
	defer func() {
		t.fn = nil
		t.ctx.sem.Reset()
		t.reads = t.reads[:0]
		t.writes.Reset()
		s.pool.Put(t)
	}()
	start := t.tel.Start()
	t.tr.TxStart()
	defer t.tr.TxEnd()
	escalated, err := abort.RunPolicyTxCtx(ctx, nil, cm.Or(s.cmgr), t)
	if escalated {
		t.tr.Escalated()
		t.tel.Escalated()
	}
	if err != nil {
		return err
	}
	s.stats.commits.Add(1)
	t.tel.Commit(start)
	return nil
}

// Begin implements abort.TxRunner: start one attempt. The semantic
// transaction pins an epoch guard so the OTB nodes it traverses cannot be
// recycled mid-attempt.
func (t *norecCtx) Begin() {
	t.tr.AttemptStart()
	t.reads = t.reads[:0]
	t.writes.Reset()
	t.ctx.sem.Reset()
	t.ctx.sem.Pin()
	t.snapshot = t.s.clock.WaitUnlocked(&t.s.ctr)
}

// Attempt implements abort.TxRunner: run the body and commit.
func (t *norecCtx) Attempt() {
	t.fn(&t.ctx)
	cs := t.tel.Start()
	t.tr.CommitBegin()
	t.commit()
	t.tr.CommitEnd()
	t.ctx.sem.Unpin()
	t.tel.CommitPhase(cs)
}

// Rollback implements abort.TxRunner: undo a failed attempt.
func (t *norecCtx) Rollback(r abort.Reason) {
	t.ctx.sem.Rollback()
	t.ctx.sem.Unpin()
	if t.holdsClock {
		t.s.clock.Unlock()
		t.holdsClock = false
		t.tr.Unlock(norecClockTraceKey)
	}
	t.s.stats.aborts.Add(1)
	t.tr.Abort(r)
	t.tel.Abort(r)
}

// Read implements stm.Tx with NOrec's post-read loop over the combined
// validation.
func (t *norecCtx) Read(c *mem.Cell) uint64 {
	if v, ok := t.writes.Get(c); ok {
		return v
	}
	v := c.Load()
	for t.snapshot != t.s.clock.Load() {
		t.snapshot = t.validateAll()
		v = c.Load()
	}
	t.reads = append(t.reads, stm.ReadEntry{Cell: c, Val: v})
	return v
}

// Write implements stm.Tx.
func (t *norecCtx) Write(c *mem.Cell, v uint64) { t.writes.Put(c, v) }

// validateAll value-validates the memory read set and semantically
// validates every attached OTB structure (without semantic locks: the
// global lock is the only synchronizer), returning a stable timestamp.
func (t *norecCtx) validateAll() uint64 {
	var b spin.Backoff
	for {
		ts := t.s.clock.Load()
		if spin.IsLocked(ts) {
			t.s.ctr.IncSpin()
			b.Wait()
			continue
		}
		for i := range t.reads {
			if t.reads[i].Cell.Load() != t.reads[i].Val {
				t.tr.ValidateFail(t.reads[i].Cell.ID())
				abort.Retry(abort.Conflict)
			}
		}
		if !t.ctx.sem.ValidateAllWithoutLocks() {
			abort.Retry(abort.Conflict)
		}
		if ts == t.s.clock.Load() {
			t.tr.Validated()
			return ts
		}
	}
}

// commit publishes both memory and semantic write sets under the global
// lock. Semantic locks (PreCommit/PostCommit) are skipped: the global lock
// subsumes them, which is the paper's OTB-NOrec optimization.
func (t *norecCtx) commit() {
	if t.writes.Len() == 0 && !t.ctx.sem.HasSemanticWrites() {
		return
	}
	for !t.s.clock.TryLock(t.snapshot) {
		t.s.ctr.IncCAS()
		t.snapshot = t.validateAll()
	}
	t.holdsClock = true
	t.tr.Lock(norecClockTraceKey)
	fpNOrecCommitLocked.Hit()
	if t.s.semanticLocks {
		// Ablation: pay for the fine-grained semantic locks the global
		// lock makes redundant.
		t.ctx.sem.PreCommitAll()
	}
	t.writes.Publish()
	t.ctx.sem.OnCommitAll()
	// Without the ablation, PreCommit is skipped (the global lock subsumes
	// semantic locks), but OnCommit still creates inserted nodes in the
	// locked state; PostCommit releases everything acquired either way.
	t.ctx.sem.PostCommitAll()
	t.s.clock.Unlock()
	t.holdsClock = false
	t.tr.Unlock(norecClockTraceKey)
}

// ---------------------------------------------------------------------------
// OTB-TL2

// orecBits sets the ownership-record table size.
const orecBits = 16

type orec struct {
	v atomic.Uint64
	_ [spin.CacheLineSize - 8]byte
}

func orecLocked(v uint64) bool    { return v&1 == 1 }
func orecVersion(v uint64) uint64 { return v >> 1 }

// OTBTL2 is the TL2-based integration context.
type OTBTL2 struct {
	clock atomic.Uint64
	orecs []orec
	ctr   spin.Counters
	cmgr  *cm.Manager
	stats struct {
		commits atomic.Uint64
		aborts  atomic.Uint64
	}
	pool sync.Pool
}

// NewOTBTL2 creates an OTB-TL2 instance.
func NewOTBTL2() *OTBTL2 {
	s := &OTBTL2{orecs: make([]orec, 1<<orecBits)}
	telemetry.M(s.Name()).SetPolicySource(func() string { return cm.Or(s.cmgr).Policy().Name() })
	s.pool.New = func() any { return newTL2Ctx(s) }
	return s
}

// SetManager installs the contention manager transactions run under (nil
// means the shared cm.Default manager). It must be set before any
// transaction runs.
func (s *OTBTL2) SetManager(m *cm.Manager) { s.cmgr = m }

// Name implements Algorithm.
func (s *OTBTL2) Name() string { return "OTB-TL2" }

// Counters implements Algorithm.
func (s *OTBTL2) Counters() *spin.Counters { return &s.ctr }

// Stop implements Algorithm (no background goroutines).
func (s *OTBTL2) Stop() {}

// Commits and Aborts report lifetime transaction outcomes.
func (s *OTBTL2) Commits() uint64 { return s.stats.commits.Load() }

// Aborts reports the number of aborted attempts.
func (s *OTBTL2) Aborts() uint64 { return s.stats.aborts.Load() }

func orecIdx(c *mem.Cell) int {
	h := c.ID() * 0x9e3779b97f4a7c15
	return int(h >> (64 - orecBits))
}

// tl2Ctx is one OTB-TL2 transaction descriptor. It implements
// abort.TxRunner so the retry loop drives it without per-transaction
// closures.
type tl2Ctx struct {
	s      *OTBTL2
	rv     uint64
	reads  []*orec
	writes stm.WriteSet
	locked []tl2Locked
	seen   []tl2Locked // lockWriteSet scratch: distinct orecs, sorted by idx
	fn     func(*Ctx)
	ctx    Ctx
	tel    *telemetry.Local
	tr     *trace.Local
}

type tl2Locked struct {
	o   *orec
	idx int
	old uint64
}

func newTL2Ctx(s *OTBTL2) *tl2Ctx {
	t := &tl2Ctx{s: s, tel: telemetry.M(s.Name()).Local(), tr: trace.S(s.Name()).Local()}
	sem := otb.NewTx(&s.ctr)
	sem.SetTraceLocal(t.tr)
	// onOperationValidate: semantic validation with lock sampling only; TL2
	// memory reads are self-validating and need no re-check here.
	sem.SetValidator(func(sem *otb.Tx) {
		if !sem.ValidateAllWithLocks() {
			abort.Retry(abort.Conflict)
		}
	})
	t.ctx = Ctx{memory: t, sem: sem}
	return t
}

// Atomic implements Algorithm.
func (s *OTBTL2) Atomic(fn func(*Ctx)) { s.AtomicCtx(nil, fn) }

// AtomicCtx implements Algorithm: Atomic observing ctx. The descriptor
// returns to its pool even when fn (or an armed failpoint) panics — the
// rollback path has already unwound both the orec and semantic lock layers.
func (s *OTBTL2) AtomicCtx(ctx context.Context, fn func(*Ctx)) error {
	t := s.pool.Get().(*tl2Ctx)
	t.fn = fn
	defer func() {
		t.fn = nil
		t.ctx.sem.Reset()
		t.reset()
		s.pool.Put(t)
	}()
	start := t.tel.Start()
	t.tr.TxStart()
	defer t.tr.TxEnd()
	escalated, err := abort.RunPolicyTxCtx(ctx, nil, cm.Or(s.cmgr), t)
	if escalated {
		t.tr.Escalated()
		t.tel.Escalated()
	}
	if err != nil {
		return err
	}
	s.stats.commits.Add(1)
	t.tel.Commit(start)
	return nil
}

// Begin implements abort.TxRunner: start one attempt. The semantic
// transaction pins an epoch guard so the OTB nodes it traverses cannot be
// recycled mid-attempt.
func (t *tl2Ctx) Begin() {
	t.tr.AttemptStart()
	t.reset()
	t.ctx.sem.Reset()
	t.ctx.sem.Pin()
	t.rv = t.s.clock.Load()
}

// Attempt implements abort.TxRunner: run the body and commit.
func (t *tl2Ctx) Attempt() {
	t.fn(&t.ctx)
	cs := t.tel.Start()
	t.tr.CommitBegin()
	t.commit()
	t.tr.CommitEnd()
	t.ctx.sem.Unpin()
	t.tel.CommitPhase(cs)
}

// Rollback implements abort.TxRunner: undo a failed attempt.
func (t *tl2Ctx) Rollback(r abort.Reason) {
	t.releaseLocked()
	t.ctx.sem.Rollback()
	t.ctx.sem.Unpin()
	t.s.stats.aborts.Add(1)
	t.tr.Abort(r)
	t.tel.Abort(r)
}

func (t *tl2Ctx) reset() {
	t.reads = t.reads[:0]
	t.writes.Reset()
	t.locked = t.locked[:0]
	t.seen = t.seen[:0]
}

// Read implements stm.Tx with TL2 sampling plus semantic co-validation (the
// paper's onReadAccess calls validate-with-locks of all attached sets).
func (t *tl2Ctx) Read(c *mem.Cell) uint64 {
	if v, ok := t.writes.Get(c); ok {
		return v
	}
	o := &t.s.orecs[orecIdx(c)]
	v1 := o.v.Load()
	val := c.Load()
	v2 := o.v.Load()
	if v1 != v2 || orecLocked(v1) || orecVersion(v1) > t.rv {
		t.tr.ValidateFail(c.ID())
		abort.Retry(abort.Conflict)
	}
	if !t.ctx.sem.ValidateAllWithLocks() {
		abort.Retry(abort.Conflict)
	}
	t.reads = append(t.reads, o)
	return val
}

// Write implements stm.Tx.
func (t *tl2Ctx) Write(c *mem.Cell, v uint64) { t.writes.Put(c, v) }

// commit interleaves TL2's orec protocol with the OTB semantic two-phase
// commit: memory locks, then semantic locks, then co-validation, then both
// publications, then both releases.
func (t *tl2Ctx) commit() {
	sem := t.ctx.sem
	if t.writes.Len() == 0 && !sem.HasSemanticWrites() {
		// Read-only: both memory (self-validating reads) and semantics
		// (validated per operation) are already consistent.
		return
	}
	t.lockWriteSet()
	sem.PreCommitAll()
	fpTL2CommitLocked.Hit()
	wv := t.s.clock.Add(1)
	if wv != t.rv+1 {
		t.validateReads()
	}
	if !sem.ValidateAllWithLocks() {
		abort.Retry(abort.Conflict)
	}
	t.tr.Validated()
	t.writes.Publish()
	sem.OnCommitAll()
	for _, l := range t.locked {
		l.o.v.Store(wv << 1)
		t.tr.Unlock(tl2OrecTraceKey(l.idx))
	}
	t.locked = t.locked[:0]
	sem.PostCommitAll()
}

func (t *tl2Ctx) lockWriteSet() {
	t.seen = t.seen[:0]
	for _, e := range t.writes.Entries() {
		idx := orecIdx(e.Cell)
		dup := false
		for _, l := range t.seen {
			if l.idx == idx {
				dup = true
				break
			}
		}
		if !dup {
			t.seen = append(t.seen, tl2Locked{o: &t.s.orecs[idx], idx: idx})
		}
	}
	for i := 1; i < len(t.seen); i++ {
		for j := i; j > 0 && t.seen[j].idx < t.seen[j-1].idx; j-- {
			t.seen[j], t.seen[j-1] = t.seen[j-1], t.seen[j]
		}
	}
	for _, l := range t.seen {
		v := l.o.v.Load()
		if orecLocked(v) || orecVersion(v) > t.rv || !l.o.v.CompareAndSwap(v, v|1) {
			t.s.ctr.IncCAS()
			t.tr.LockBusy(tl2OrecTraceKey(l.idx))
			abort.Retry(abort.LockBusy)
		}
		t.tr.Lock(tl2OrecTraceKey(l.idx))
		t.locked = append(t.locked, tl2Locked{o: l.o, idx: l.idx, old: v})
	}
}

func (t *tl2Ctx) validateReads() {
	for _, o := range t.reads {
		v := o.v.Load()
		if orecLocked(v) {
			old, mine := t.ownedOld(o)
			if !mine || orecVersion(old) > t.rv {
				t.tr.ValidateFail(0) // orec identity only; no cell to name
				abort.Retry(abort.Conflict)
			}
			continue
		}
		if orecVersion(v) > t.rv {
			t.tr.ValidateFail(0)
			abort.Retry(abort.Conflict)
		}
	}
}

func (t *tl2Ctx) ownedOld(o *orec) (uint64, bool) {
	for _, l := range t.locked {
		if l.o == o {
			return l.old, true
		}
	}
	return 0, false
}

func (t *tl2Ctx) releaseLocked() {
	for _, l := range t.locked {
		l.o.v.Store(l.old)
		t.tr.Unlock(tl2OrecTraceKey(l.idx))
	}
	t.locked = t.locked[:0]
}
