package stamp_test

import (
	"math/rand/v2"
	"testing"

	"repro/internal/stamp"
	"repro/internal/stm"
	"repro/internal/stm/glock"
	"repro/internal/stm/norec"
)

func TestAppsComplete(t *testing.T) {
	apps := stamp.Apps()
	if len(apps) != 6 {
		t.Fatalf("got %d apps, want the paper's 6", len(apps))
	}
	names := map[string]bool{}
	for _, a := range apps {
		names[a.Name] = true
		if a.Cells <= 0 || a.Reads <= 0 {
			t.Errorf("%s: degenerate profile %+v", a.Name, a)
		}
	}
	for _, want := range []string{"genome", "intruder", "kmeans", "labyrinth", "ssca2", "vacation"} {
		if !names[want] {
			t.Errorf("missing app %s", want)
		}
	}
}

func TestAppByName(t *testing.T) {
	if _, ok := stamp.AppByName("genome"); !ok {
		t.Fatal("genome should resolve")
	}
	if _, ok := stamp.AppByName("nope"); ok {
		t.Fatal("unknown app should not resolve")
	}
}

func TestWorkloadRuns(t *testing.T) {
	alg := glock.New()
	for _, app := range stamp.Apps() {
		w := stamp.NewWorkload(app)
		rng := rand.New(rand.NewPCG(1, 1))
		var sink uint64
		for i := 0; i < 50; i++ {
			sink += w.RunTx(alg, rng)
		}
		_ = sink
	}
}

// TestCommitRatioOrdering checks that the profiles reproduce Table 5.1's
// headline ordering: ssca2's commit share dominates vacation's, and
// labyrinth's is the smallest.
func TestCommitRatioOrdering(t *testing.T) {
	ratio := func(app stamp.App) float64 {
		alg := norec.New()
		prof := &stm.Profile{}
		alg.SetProfile(prof)
		w := stamp.NewWorkload(app)
		rng := rand.New(rand.NewPCG(7, 7))
		var sink uint64
		for i := 0; i < 3000; i++ {
			sink += w.RunTx(alg, rng)
		}
		_ = sink
		snap := prof.Snapshot()
		if snap.TotalNS == 0 {
			return 0
		}
		return float64(snap.CommitNS) / float64(snap.TotalNS)
	}
	get := func(name string) stamp.App {
		a, ok := stamp.AppByName(name)
		if !ok {
			t.Fatalf("app %s missing", name)
		}
		return a
	}
	ssca2 := ratio(get("ssca2"))
	genome := ratio(get("genome"))
	vacation := ratio(get("vacation"))
	labyrinth := ratio(get("labyrinth"))
	if !(ssca2 > vacation) {
		t.Errorf("commit ratio ordering broken: ssca2 %.3f <= vacation %.3f", ssca2, vacation)
	}
	if !(ssca2 > labyrinth) {
		t.Errorf("commit ratio ordering broken: ssca2 %.3f <= labyrinth %.3f", ssca2, labyrinth)
	}
	if !(genome > labyrinth) {
		t.Errorf("commit ratio ordering broken: genome %.3f <= labyrinth %.3f", genome, labyrinth)
	}
}
