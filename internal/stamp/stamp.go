// Package stamp provides synthetic transaction profiles standing in for the
// STAMP benchmark suite, which the paper uses in Chapters 5 and 6. Real
// STAMP is a set of C programs with external inputs; what the paper's
// evaluation actually exercises is each application's transaction *shape* —
// read-set size, write-set size, contention, and the resulting commit-time
// ratio (Table 5.1). Each profile here reproduces that shape over an array
// of STM cells, with non-transactional "application work" between
// transactions, so the same comparisons (NOrec vs RTC vs RInval vs ...) can
// be regenerated.
//
// The per-application parameters were chosen so the relative commit-time
// ratios order like Table 5.1: ssca2 ≫ kmeans ≈ genome > intruder >
// vacation ≫ labyrinth (≈ read-only).
package stamp

import (
	"math/rand/v2"

	"repro/internal/mem"
	"repro/internal/stm"
)

// App is one synthetic application profile.
type App struct {
	// Name is the STAMP application this profile substitutes for.
	Name string
	// Cells is the shared-array size; smaller arrays mean more conflicts.
	Cells int
	// Reads and Writes are the per-transaction set sizes.
	Reads, Writes int
	// ReadOnlyPct is the percentage of read-only transactions.
	ReadOnlyPct int
	// LocalWork is the non-transactional work (iterations) between
	// transactions, which dilutes the commit ratio relative to total time.
	LocalWork int
}

// Apps returns the six profiles in the paper's STAMP subset.
func Apps() []App {
	return []App{
		// ssca2: tiny transactions, almost all commit work, little between.
		{Name: "ssca2", Cells: 1 << 16, Reads: 2, Writes: 2, ReadOnlyPct: 0, LocalWork: 20},
		// kmeans: short transactions (centroid updates), moderate non-tx work.
		{Name: "kmeans", Cells: 1 << 10, Reads: 4, Writes: 4, ReadOnlyPct: 0, LocalWork: 120},
		// genome: medium transactions (segment dedup/insert), some read-only.
		{Name: "genome", Cells: 1 << 14, Reads: 24, Writes: 6, ReadOnlyPct: 20, LocalWork: 150},
		// intruder: medium transactions with higher contention queues.
		{Name: "intruder", Cells: 1 << 9, Reads: 24, Writes: 6, ReadOnlyPct: 10, LocalWork: 400},
		// vacation: long tree traversals, few writes.
		{Name: "vacation", Cells: 1 << 16, Reads: 120, Writes: 8, ReadOnlyPct: 40, LocalWork: 300},
		// labyrinth: very long, dominated by private computation over a
		// grid copy; commits are rare and tiny relative to the transaction.
		{Name: "labyrinth", Cells: 1 << 14, Reads: 300, Writes: 2, ReadOnlyPct: 90, LocalWork: 6000},
	}
}

// AppByName returns the profile with the given name, or false.
func AppByName(name string) (App, bool) {
	for _, a := range Apps() {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}

// Workload is an App instantiated over a concrete cell array.
type Workload struct {
	App
	cells []*mem.Cell
}

// NewWorkload allocates the shared state for the profile.
func NewWorkload(app App) *Workload {
	w := &Workload{App: app, cells: make([]*mem.Cell, app.Cells)}
	for i := range w.cells {
		w.cells[i] = mem.NewCell(uint64(i))
	}
	return w
}

// RunTx executes one transaction of the profile on alg, followed by the
// profile's non-transactional work, whose checksum is returned so the
// compiler cannot elide it (callers accumulate it into a local sink).
// rng must be goroutine-local.
func (w *Workload) RunTx(alg stm.Algorithm, rng *rand.Rand) uint64 {
	readOnly := rng.IntN(100) < w.ReadOnlyPct
	// Pre-draw the index sequence so retries replay the same footprint.
	idx := make([]int, w.Reads)
	for i := range idx {
		idx[i] = rng.IntN(len(w.cells))
	}
	alg.Atomic(func(tx stm.Tx) {
		var acc uint64
		for _, i := range idx {
			acc += tx.Read(w.cells[i])
		}
		if !readOnly {
			for k := 0; k < w.Writes; k++ {
				c := w.cells[idx[k%len(idx)]]
				tx.Write(c, acc+uint64(k))
			}
		}
	})
	var s uint64
	for i := 0; i < w.LocalWork; i++ {
		s += uint64(i) * 0x9e37
	}
	return s
}
