// Package rinval implements Remote Invalidation (Chapter 6): an
// invalidation-based STM (InvalSTM's conflict model) whose commit and
// invalidation routines execute on dedicated server goroutines, in three
// versions matching the paper:
//
//   - V1 replaces InvalSTM's global spin lock with remote execution: one
//     commit server both publishes the write set and invalidates
//     conflicting in-flight transactions.
//   - V2 runs commit and invalidation concurrently on two servers inside
//     the same commit window; the client is answered when both finish.
//   - V3 accelerates commit: the client is released as soon as its writes
//     are published, while the invalidation server finishes the window in
//     the background (the window stays closed to readers until then, which
//     preserves opacity).
//
// Like InvalSTM, readers never validate their read sets: committers doom
// conflicting readers through bloom-filter intersection, making per-read
// overhead constant instead of NOrec's quadratic incremental validation.
package rinval

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/abort"
	"repro/internal/bloom"
	"repro/internal/chaos/failpoint"
	"repro/internal/cm"
	"repro/internal/mem"
	"repro/internal/spin"
	"repro/internal/stm"
	"repro/internal/stm/invalstm"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Failpoints on the RInval commit paths.
var (
	// fpCommitPre fires client-side, before the commit request is posted to
	// the server; nothing is held.
	fpCommitPre = failpoint.New("rinval.commit.pre")
	// fpServerDrop fires on the commit server before a request's commit
	// routine runs (and before the clock window opens). Injected panics are
	// recovered by the server itself — a dead server would strand every
	// client — which aborts the in-flight request and keeps serving.
	fpServerDrop = failpoint.New("rinval.server.drop")
)

// Version selects the RInval variant.
type Version int

// The three versions of Chapter 6.
const (
	V1 Version = 1 + iota // remote commit + invalidation on one server
	V2                    // commit and invalidation in parallel servers
	V3                    // client released after publish; invalidation async
)

// Request states.
const (
	stateReady int32 = iota
	statePending
	stateAborted
)

// DefaultClients is the default request-array size.
const DefaultClients = 64

// request is one slot of the cache-aligned requests array.
type request struct {
	state atomic.Int32
	tx    *txDesc
	_     spin.Pad
}

// txDesc is a client transaction context.
type txDesc struct {
	slot   int // registry slot (descs index)
	writes stm.WriteSet
	wf     bloom.Filter
}

// STM is an RInval instance. Stop must be called to release its servers.
type STM struct {
	version Version
	clock   spin.SeqLock
	descs   []invalstm.Desc
	reqs    []request
	clients chan *client
	ctr     spin.Counters
	prof    *stm.Profile
	cmgr    *cm.Manager

	// Commit/invalidation server rendezvous (V2, V3). The committer's slot
	// and write filter are copied here before the window opens, because V3
	// releases the client before invalidation finishes and the client's
	// next transaction reuses (and clears) its own filter.
	invalReq  atomic.Int32 // request index whose invalidation is wanted, or -1
	invalDone atomic.Bool
	invalSlot int
	invalWF   bloom.Filter

	stats struct {
		commits atomic.Uint64
		aborts  atomic.Uint64
	}
	stop     atomic.Bool
	wg       sync.WaitGroup
	traceSrc *trace.Source
}

// New creates an RInval instance of the given version with the default
// client capacity and starts its servers.
func New(version Version) *STM { return NewWithClients(version, DefaultClients) }

// NewWithClients creates an RInval instance with an explicit request-array
// size.
func NewWithClients(version Version, n int) *STM {
	s := &STM{
		version: version,
		descs:   make([]invalstm.Desc, n),
		reqs:    make([]request, n),
		clients: make(chan *client, n),
	}
	s.invalReq.Store(-1)
	mtr := telemetry.M(s.Name())
	mtr.SetPolicySource(func() string { return cm.Or(s.cmgr).Policy().Name() })
	s.traceSrc = trace.S(s.Name())
	for i := 0; i < n; i++ {
		s.clients <- &client{s: s, tx: &txDesc{slot: i}, tel: mtr.Local(), tr: s.traceSrc.Local()}
	}
	s.wg.Add(1)
	go s.commitServer()
	if version != V1 {
		s.wg.Add(1)
		go s.invalServer()
	}
	return s
}

// Name implements stm.Algorithm.
func (s *STM) Name() string {
	switch s.version {
	case V1:
		return "RInval-V1"
	case V2:
		return "RInval-V2"
	default:
		return "RInval-V3"
	}
}

// SetProfile attaches a critical-path profiler (may be nil).
func (s *STM) SetProfile(p *stm.Profile) { s.prof = p }

// SetManager installs the contention manager transactions run under (nil
// means the shared cm.Default manager). It must be set before any
// transaction runs. The commit and invalidation servers are never gated, so
// an escalated client's requests are still served while other clients pause.
func (s *STM) SetManager(m *cm.Manager) { s.cmgr = m }

// Counters implements stm.Algorithm.
func (s *STM) Counters() *spin.Counters { return &s.ctr }

// Stop shuts down the servers; callers drain their workers first.
func (s *STM) Stop() {
	s.stop.Store(true)
	s.wg.Wait()
}

// Commits and Aborts report lifetime transaction outcomes.
func (s *STM) Commits() uint64 { return s.stats.commits.Load() }

// Aborts reports the number of aborted attempts.
func (s *STM) Aborts() uint64 { return s.stats.aborts.Load() }

// client is a transaction descriptor bound to one registry slot and one
// request slot.
type client struct {
	s   *STM
	tx  *txDesc
	tel *telemetry.Local
	tr  *trace.Local
}

// Atomic implements stm.Algorithm.
func (s *STM) Atomic(fn func(stm.Tx)) { s.AtomicCtx(nil, fn) }

// AtomicCtx implements stm.AlgorithmCtx: Atomic observing ctx. The registry
// slot is deactivated and the client returned to the channel even when fn
// (or an armed failpoint) panics — a leaked Active slot makes every later
// committer scan a ghost reader forever, and a leaked client shrinks the
// request array for the life of the instance. No commit request is in
// flight when a panic unwinds: the client posts at most one request per
// attempt and blocks until its verdict.
func (s *STM) AtomicCtx(ctx context.Context, fn func(stm.Tx)) error {
	c := <-s.clients
	total := s.prof.Now()
	start := c.tel.Start()
	d := &s.descs[c.tx.slot]
	d.Active.Store(true)
	defer func() {
		d.Starved.Store(0)
		d.ClearFilter()
		d.Active.Store(false)
		s.clients <- c
	}()
	c.tr.TxStart()
	defer c.tr.TxEnd()
	escalated, err := abort.RunPolicyCtx(ctx, nil, cm.Or(s.cmgr),
		c.begin,
		func() {
			fn(c)
			cs := c.tel.Start()
			c.tr.CommitBegin()
			c.commit()
			c.tr.CommitEnd()
			c.tel.CommitPhase(cs)
		},
		func(r abort.Reason) {
			if r == abort.Invalidated {
				d.Starved.Add(1)
			}
			s.stats.aborts.Add(1)
			c.tr.Abort(r)
			c.tel.Abort(r)
		},
	)
	if escalated {
		c.tr.Escalated()
		c.tel.Escalated()
	}
	if err != nil {
		return err
	}
	s.stats.commits.Add(1)
	c.tel.Commit(start)
	s.prof.AddTotal(total, true)
	return nil
}

func (c *client) begin() {
	c.tr.AttemptStart()
	d := &c.s.descs[c.tx.slot]
	d.ClearFilter()
	d.Invalidated.Store(false)
	c.tx.writes.Reset()
	c.tx.wf.Clear()
}

// Read implements stm.Tx: publish the read filter bit, read under a stable
// even timestamp, and check the doomed flag (constant work per read).
func (c *client) Read(cell *mem.Cell) uint64 {
	if v, ok := c.tx.writes.Get(cell); ok {
		return v
	}
	d := &c.s.descs[c.tx.slot]
	publishRead(d, cell.ID())
	start := c.s.prof.Now()
	defer c.s.prof.AddValidation(start)
	var b spin.Backoff
	for {
		ts := c.s.clock.WaitUnlocked(&c.s.ctr)
		v := cell.Load()
		if c.s.clock.Load() == ts {
			if d.Invalidated.Load() {
				c.tr.ValidateFail(cell.ID())
				abort.Retry(abort.Invalidated)
			}
			return v
		}
		b.Wait()
	}
}

// publishRead sets the bloom bits for key in the shared descriptor.
func publishRead(d *invalstm.Desc, key uint64) {
	var f bloom.Filter
	f.Add(key)
	for i, w := range f {
		if w != 0 {
			d.ReadFilter[i].Or(w)
		}
	}
}

// Write implements stm.Tx.
func (c *client) Write(cell *mem.Cell, v uint64) {
	c.tx.wf.Add(cell.ID())
	c.tx.writes.Put(cell, v)
}

// commit posts the request to the commit server and waits for the verdict.
func (c *client) commit() {
	d := &c.s.descs[c.tx.slot]
	if c.tx.writes.Len() == 0 {
		if d.Invalidated.Load() {
			c.tr.ValidateFail(0)
			abort.Retry(abort.Invalidated)
		}
		return
	}
	fpCommitPre.Hit()
	start := c.s.prof.Now()
	defer c.s.prof.AddCommit(start)
	req := &c.s.reqs[c.tx.slot]
	req.tx = c.tx
	qs := c.tr.Now()
	req.state.Store(statePending)
	var b spin.Backoff
	for {
		st := req.state.Load()
		if st == stateReady {
			c.tr.QueueWait(qs)
			return
		}
		if st == stateAborted {
			c.tr.QueueWait(qs)
			abort.Retry(abort.Invalidated)
		}
		c.s.ctr.IncSpin()
		b.Wait()
	}
}

// commitServer executes commit requests serially.
func (s *STM) commitServer() {
	defer s.wg.Done()
	tr := s.traceSrc.Local()
	var b spin.Backoff
	for !s.stop.Load() {
		progressed := false
		for i := range s.reqs {
			req := &s.reqs[i]
			if req.state.Load() != statePending {
				continue
			}
			progressed = true
			t := req.tx
			if s.descs[t.slot].Invalidated.Load() {
				req.state.Store(stateAborted)
				continue
			}
			if !cm.SerialActive() && s.starvedConflict(t) {
				// Contention manager: defer to a starving doomed reader
				// instead of invalidating it yet again. Suspended while a
				// transaction runs in serial mode: the starving reader is
				// paused at the gate and can never clear its own starvation,
				// so deferring to it would stall the escalated committer
				// forever.
				req.state.Store(stateAborted)
				continue
			}
			s.dispatch(req, t, tr)
		}
		if !progressed {
			b.Wait()
		} else {
			b.Reset()
		}
	}
}

// dispatch runs one request's commit routine. An injected (failpoint)
// panic is recovered here: the drop point is before the clock window
// opens, so nothing is held; the request is aborted — the client retries —
// and the server keeps running. Anything else still crashes: a real bug in
// a commit routine must stay loud.
func (s *STM) dispatch(req *request, t *txDesc, tr *trace.Local) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		if _, injected := p.(*failpoint.PanicValue); !injected {
			panic(p)
		}
		req.state.Store(stateAborted)
	}()
	// A dispatched request is one span on the server's track: execute time
	// is the server-side complement of the client's queue wait.
	tr.TxStart()
	defer tr.TxEnd()
	es := tr.Now()
	defer tr.Execute(es)
	fpServerDrop.Hit()
	switch s.version {
	case V1:
		s.commitV1(req, t)
	case V2:
		s.commitV2(req, t)
	default:
		s.commitV3(req, t)
	}
}

// commitV1: one server publishes and invalidates inside the window.
func (s *STM) commitV1(req *request, t *txDesc) {
	s.lockClock()
	t.writes.Publish()
	s.invalidate(t.slot, &t.wf)
	s.clock.Unlock()
	req.state.Store(stateReady)
}

// commitV2: the invalidation server dooms readers concurrently with the
// write-set publication; the client is answered when both are done.
func (s *STM) commitV2(req *request, t *txDesc) {
	s.lockClock()
	s.openInval(t)
	t.writes.Publish()
	s.waitInval()
	s.clock.Unlock()
	req.state.Store(stateReady)
}

// commitV3: the client is released right after publication; the window is
// closed (and readers released) once the invalidation server finishes.
func (s *STM) commitV3(req *request, t *txDesc) {
	s.lockClock()
	s.openInval(t)
	t.writes.Publish()
	req.state.Store(stateReady)
	s.waitInval()
	s.clock.Unlock()
}

func (s *STM) lockClock() {
	ts := s.clock.Load()
	if !s.clock.TryLock(ts) {
		panic("rinval: commit server lost the clock")
	}
}

// openInval hands the committer's slot and write filter to the
// invalidation server. The atomic store of invalReq publishes the copies.
func (s *STM) openInval(t *txDesc) {
	s.invalSlot = t.slot
	s.invalWF = t.wf
	s.invalDone.Store(false)
	s.invalReq.Store(int32(t.slot))
}

// waitInval blocks until the invalidation server finishes the open window.
func (s *STM) waitInval() {
	var b spin.Backoff
	for !s.invalDone.Load() {
		if s.stop.Load() {
			return
		}
		b.Wait()
	}
}

// starvedConflict reports whether committing t would doom a transaction
// the contention manager says t must defer to.
func (s *STM) starvedConflict(t *txDesc) bool {
	mine := s.descs[t.slot].Starved.Load()
	for i := range s.descs {
		if i == t.slot {
			continue
		}
		d := &s.descs[i]
		if d.Active.Load() && d.IntersectsWrite(&t.wf) &&
			invalstm.ShouldDefer(d, i, mine, t.slot) {
			return true
		}
	}
	return false
}

// invalidate dooms every active transaction (other than the committer at
// slot) whose read filter intersects the committed write filter.
func (s *STM) invalidate(slot int, wf *bloom.Filter) {
	for i := range s.descs {
		if i == slot {
			continue
		}
		d := &s.descs[i]
		if d.Active.Load() && d.IntersectsWrite(wf) {
			d.Invalidated.Store(true)
		}
	}
}

// invalServer runs the invalidation routine for V2/V3 windows.
func (s *STM) invalServer() {
	defer s.wg.Done()
	var b spin.Backoff
	for !s.stop.Load() {
		if s.invalReq.Load() < 0 {
			b.Wait()
			continue
		}
		s.invalidate(s.invalSlot, &s.invalWF)
		s.invalReq.Store(-1)
		s.invalDone.Store(true)
		b.Reset()
	}
}

var _ stm.Algorithm = (*STM)(nil)
