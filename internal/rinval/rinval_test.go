package rinval_test

import (
	"sync"
	"testing"

	"repro/internal/chaos/leak"
	"repro/internal/mem"
	"repro/internal/rinval"
	"repro/internal/stm"
)

func versions() []rinval.Version {
	return []rinval.Version{rinval.V1, rinval.V2, rinval.V3}
}

func TestCounterIncrement(t *testing.T) {
	leak.CheckCleanup(t)
	for _, v := range versions() {
		s := rinval.New(v)
		t.Run(s.Name(), func(t *testing.T) {
			defer s.Stop()
			const workers = 8
			const each = 200
			c := mem.NewCell(0)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < each; i++ {
						s.Atomic(func(tx stm.Tx) { tx.Write(c, tx.Read(c)+1) })
					}
				}()
			}
			wg.Wait()
			if got := c.Load(); got != workers*each {
				t.Fatalf("counter = %d, want %d", got, workers*each)
			}
		})
	}
}

func TestBankInvariant(t *testing.T) {
	leak.CheckCleanup(t)
	for _, v := range versions() {
		s := rinval.New(v)
		t.Run(s.Name(), func(t *testing.T) {
			defer s.Stop()
			const accounts = 24
			const initial = 50
			cells := make([]*mem.Cell, accounts)
			for i := range cells {
				cells[i] = mem.NewCell(initial)
			}
			const workers = 6
			const each = 120
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int) {
					defer wg.Done()
					for i := 0; i < each; i++ {
						from := (seed*13 + i) % accounts
						to := (seed + i*7 + 1) % accounts
						if from == to {
							to = (to + 1) % accounts
						}
						s.Atomic(func(tx stm.Tx) {
							a := tx.Read(cells[from])
							b := tx.Read(cells[to])
							if a == 0 {
								return
							}
							tx.Write(cells[from], a-1)
							tx.Write(cells[to], b+1)
						})
					}
				}(w)
			}
			wg.Wait()
			var total uint64
			for _, c := range cells {
				total += c.Load()
			}
			if total != accounts*initial {
				t.Fatalf("total = %d, want %d", total, accounts*initial)
			}
		})
	}
}

func TestReadConsistency(t *testing.T) {
	leak.CheckCleanup(t)
	for _, v := range versions() {
		s := rinval.New(v)
		t.Run(s.Name(), func(t *testing.T) {
			defer s.Stop()
			a, b := mem.NewCell(0), mem.NewCell(0)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := uint64(1); ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					s.Atomic(func(tx stm.Tx) {
						tx.Write(a, i)
						tx.Write(b, i)
					})
				}
			}()
			for i := 0; i < 1000; i++ {
				s.Atomic(func(tx stm.Tx) {
					va, vb := tx.Read(a), tx.Read(b)
					if va != vb {
						t.Errorf("torn read: %d != %d", va, vb)
					}
				})
			}
			close(stop)
			wg.Wait()
		})
	}
}

// TestInvalidationDoomsReaders checks that a long reader conflicting with a
// committer is actually doomed and retried rather than committing a stale
// snapshot.
func TestInvalidationDoomsReaders(t *testing.T) {
	leak.CheckCleanup(t)
	for _, v := range versions() {
		s := rinval.New(v)
		t.Run(s.Name(), func(t *testing.T) {
			defer s.Stop()
			cells := make([]*mem.Cell, 8)
			for i := range cells {
				cells[i] = mem.NewCell(0)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := uint64(1); ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					s.Atomic(func(tx stm.Tx) {
						for _, c := range cells {
							tx.Write(c, i)
						}
					})
				}
			}()
			for i := 0; i < 500; i++ {
				s.Atomic(func(tx stm.Tx) {
					first := tx.Read(cells[0])
					for _, c := range cells[1:] {
						if got := tx.Read(c); got != first {
							t.Errorf("inconsistent snapshot: %d != %d", got, first)
						}
					}
				})
			}
			close(stop)
			wg.Wait()
			if s.Aborts() == 0 {
				t.Log("no aborts observed (low contention on this host)")
			}
		})
	}
}

// TestWriterDoesNotStarveReaders regresses the livelock where a continuous
// writer doomed a conflicting reader on every attempt; the contention
// manager must let the reader through.
func TestWriterDoesNotStarveReaders(t *testing.T) {
	leak.CheckCleanup(t)
	for _, v := range versions() {
		s := rinval.New(v)
		t.Run(s.Name(), func(t *testing.T) {
			defer s.Stop()
			cells := make([]*mem.Cell, 8)
			for i := range cells {
				cells[i] = mem.NewCell(0)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := uint64(1); ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					s.Atomic(func(tx stm.Tx) {
						for _, c := range cells {
							tx.Write(c, i)
						}
					})
				}
			}()
			// The reader must complete all its transactions in bounded time
			// despite the adversarial writer.
			for i := 0; i < 300; i++ {
				s.Atomic(func(tx stm.Tx) {
					first := tx.Read(cells[0])
					for _, c := range cells[1:] {
						if tx.Read(c) != first {
							t.Error("torn read")
						}
					}
				})
			}
			close(stop)
			wg.Wait()
		})
	}
}
