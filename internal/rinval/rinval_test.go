package rinval_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos/leak"
	"repro/internal/mem"
	"repro/internal/rinval"
	"repro/internal/stm"
)

func versions() []rinval.Version {
	return []rinval.Version{rinval.V1, rinval.V2, rinval.V3}
}

func TestCounterIncrement(t *testing.T) {
	leak.CheckCleanup(t)
	for _, v := range versions() {
		s := rinval.New(v)
		t.Run(s.Name(), func(t *testing.T) {
			defer s.Stop()
			const workers = 8
			const each = 200
			c := mem.NewCell(0)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < each; i++ {
						s.Atomic(func(tx stm.Tx) { tx.Write(c, tx.Read(c)+1) })
					}
				}()
			}
			wg.Wait()
			if got := c.Load(); got != workers*each {
				t.Fatalf("counter = %d, want %d", got, workers*each)
			}
		})
	}
}

func TestBankInvariant(t *testing.T) {
	leak.CheckCleanup(t)
	for _, v := range versions() {
		s := rinval.New(v)
		t.Run(s.Name(), func(t *testing.T) {
			defer s.Stop()
			const accounts = 24
			const initial = 50
			cells := make([]*mem.Cell, accounts)
			for i := range cells {
				cells[i] = mem.NewCell(initial)
			}
			const workers = 6
			const each = 120
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int) {
					defer wg.Done()
					for i := 0; i < each; i++ {
						from := (seed*13 + i) % accounts
						to := (seed + i*7 + 1) % accounts
						if from == to {
							to = (to + 1) % accounts
						}
						s.Atomic(func(tx stm.Tx) {
							a := tx.Read(cells[from])
							b := tx.Read(cells[to])
							if a == 0 {
								return
							}
							tx.Write(cells[from], a-1)
							tx.Write(cells[to], b+1)
						})
					}
				}(w)
			}
			wg.Wait()
			var total uint64
			for _, c := range cells {
				total += c.Load()
			}
			if total != accounts*initial {
				t.Fatalf("total = %d, want %d", total, accounts*initial)
			}
		})
	}
}

func TestReadConsistency(t *testing.T) {
	leak.CheckCleanup(t)
	for _, v := range versions() {
		s := rinval.New(v)
		t.Run(s.Name(), func(t *testing.T) {
			defer s.Stop()
			a, b := mem.NewCell(0), mem.NewCell(0)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := uint64(1); ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					s.Atomic(func(tx stm.Tx) {
						tx.Write(a, i)
						tx.Write(b, i)
					})
				}
			}()
			for i := 0; i < 1000; i++ {
				s.Atomic(func(tx stm.Tx) {
					va, vb := tx.Read(a), tx.Read(b)
					if va != vb {
						t.Errorf("torn read: %d != %d", va, vb)
					}
				})
			}
			close(stop)
			wg.Wait()
		})
	}
}

// TestInvalidationDoomsReaders checks that a long reader conflicting with a
// committer is actually doomed and retried rather than committing a stale
// snapshot.
func TestInvalidationDoomsReaders(t *testing.T) {
	leak.CheckCleanup(t)
	for _, v := range versions() {
		s := rinval.New(v)
		t.Run(s.Name(), func(t *testing.T) {
			defer s.Stop()
			cells := make([]*mem.Cell, 8)
			for i := range cells {
				cells[i] = mem.NewCell(0)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := uint64(1); ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					s.Atomic(func(tx stm.Tx) {
						for _, c := range cells {
							tx.Write(c, i)
						}
					})
				}
			}()
			for i := 0; i < 500; i++ {
				s.Atomic(func(tx stm.Tx) {
					first := tx.Read(cells[0])
					for _, c := range cells[1:] {
						if got := tx.Read(c); got != first {
							t.Errorf("inconsistent snapshot: %d != %d", got, first)
						}
					}
				})
			}
			close(stop)
			wg.Wait()
			if s.Aborts() == 0 {
				t.Log("no aborts observed (low contention on this host)")
			}
		})
	}
}

// TestWriterDoesNotStarveReaders regresses the livelock where a continuous
// writer doomed a conflicting reader on every attempt; the contention
// manager must let the reader through.
func TestWriterDoesNotStarveReaders(t *testing.T) {
	leak.CheckCleanup(t)
	for _, v := range versions() {
		s := rinval.New(v)
		t.Run(s.Name(), func(t *testing.T) {
			defer s.Stop()
			cells := make([]*mem.Cell, 8)
			for i := range cells {
				cells[i] = mem.NewCell(0)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := uint64(1); ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					s.Atomic(func(tx stm.Tx) {
						for _, c := range cells {
							tx.Write(c, i)
						}
					})
				}
			}()
			// The reader must complete all its transactions in bounded time
			// despite the adversarial writer.
			for i := 0; i < 300; i++ {
				s.Atomic(func(tx stm.Tx) {
					first := tx.Read(cells[0])
					for _, c := range cells[1:] {
						if tx.Read(c) != first {
							t.Error("torn read")
						}
					}
				})
			}
			close(stop)
			wg.Wait()
		})
	}
}

// TestShutdownUnderConcurrentClients exercises the full service lifecycle
// under load for each protocol version: clients hammer the commit (and, for
// V2/V3, invalidation) servers until their context is cancelled mid-flight,
// every client unwinds with context.Canceled, and Stop then brings the
// server goroutines down leak-free. The cell sum must equal the commit
// count — a torn drain shows up as a commit without an effect or vice
// versa.
func TestShutdownUnderConcurrentClients(t *testing.T) {
	leak.CheckCleanup(t)
	for _, v := range versions() {
		s := rinval.New(v)
		t.Run(s.Name(), func(t *testing.T) {
			const cellsN = 16
			cells := make([]*mem.Cell, cellsN)
			for i := range cells {
				cells[i] = mem.NewCell(0)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()

			const workers = 8
			var committed atomic.Uint64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; ; i++ {
						err := s.AtomicCtx(ctx, func(tx stm.Tx) {
							c := cells[(w*31+i)%cellsN]
							tx.Write(c, tx.Read(c)+1)
						})
						if err != nil {
							if !errors.Is(err, context.Canceled) {
								t.Errorf("worker %d: AtomicCtx = %v, want context.Canceled", w, err)
							}
							return
						}
						committed.Add(1)
					}
				}(w)
			}

			time.Sleep(30 * time.Millisecond)
			cancel()
			drained := make(chan struct{})
			go func() { wg.Wait(); close(drained) }()
			select {
			case <-drained:
			case <-time.After(10 * time.Second):
				t.Fatal("clients did not unwind after cancellation")
			}
			s.Stop()

			if committed.Load() == 0 {
				t.Fatal("no transaction committed before the drain")
			}
			var sum uint64
			for _, c := range cells {
				sum += c.Load()
			}
			if sum != committed.Load() {
				t.Fatalf("cell sum %d != client-observed commits %d", sum, committed.Load())
			}
			if s.Commits() != committed.Load() {
				t.Fatalf("server commit count %d != client-observed commits %d", s.Commits(), committed.Load())
			}
		})
	}
}
