// Package abort implements the transaction-abort protocol shared by every
// transactional layer (STM algorithms, OTB, boosting, the integration
// framework): an abort unwinds the user function with a private panic value
// that the retry loop recovers, rolls back, and retries with backoff.
//
// This mirrors DEUCE's exception-driven retry: user code inside an atomic
// block simply calls the transactional API and never observes the panic.
package abort

import "repro/internal/spin"

// Signal is the panic value used to unwind an aborted transaction.
// Its Reason is reported by statistics hooks.
type Signal struct {
	// Reason classifies the conflict that caused the abort.
	Reason Reason
}

// Reason classifies why a transaction aborted.
type Reason int

// Abort reasons, in the order they are typically detected.
const (
	// Conflict is a read-set (memory or semantic) validation failure.
	Conflict Reason = iota
	// LockBusy means a required lock could not be acquired at commit.
	LockBusy
	// Invalidated means a committing transaction explicitly doomed this one
	// (InvalSTM / RInval).
	Invalidated
	// Explicit is a user-requested retry.
	Explicit

	// NumReasons is the number of distinct abort reasons; statistics
	// layers (package telemetry) size per-reason counter arrays with it.
	NumReasons
)

// String returns the human-readable name of the reason.
func (r Reason) String() string {
	switch r {
	case Conflict:
		return "conflict"
	case LockBusy:
		return "lock-busy"
	case Invalidated:
		return "invalidated"
	case Explicit:
		return "explicit"
	default:
		return "unknown"
	}
}

// Retry aborts the current transaction with the given reason. It never
// returns; the enclosing Run recovers it.
func Retry(r Reason) {
	panic(Signal{Reason: r})
}

// Stats counts the outcomes of a retry loop.
type Stats struct {
	Commits uint64
	Aborts  uint64
}

// Run executes attempt repeatedly until it completes without aborting.
//
// Before each attempt it calls begin; after an abort it calls rollback with
// the signal's reason, waits with exponential backoff, and retries. Panics
// that are not abort Signals propagate unchanged. Stats, if non-nil, is
// updated by the calling goroutine only.
func Run(stats *Stats, begin func(), attempt func(), rollback func(Reason)) {
	var b spin.Backoff
	for {
		if done := runOnce(begin, attempt, rollback); done {
			if stats != nil {
				stats.Commits++
			}
			return
		}
		if stats != nil {
			stats.Aborts++
		}
		b.Wait()
	}
}

// runOnce runs one attempt, converting an abort Signal into a false return.
func runOnce(begin func(), attempt func(), rollback func(Reason)) (committed bool) {
	defer func() {
		if p := recover(); p != nil {
			sig, ok := p.(Signal)
			if !ok {
				panic(p)
			}
			rollback(sig.Reason)
			committed = false
		}
	}()
	begin()
	attempt()
	return true
}
