// Package abort implements the transaction-abort protocol shared by every
// transactional layer (STM algorithms, OTB, boosting, the integration
// framework): an abort unwinds the user function with a private panic value
// that the retry loop recovers, rolls back, and retries with backoff.
//
// This mirrors DEUCE's exception-driven retry: user code inside an atomic
// block simply calls the transactional API and never observes the panic.
//
// Two failure modes beyond ordinary conflicts are handled here so every
// runtime inherits them uniformly:
//
//   - Foreign panics. A panic that is not an abort Signal (a user callback
//     blowing up, a runtime error, an armed failpoint) unwinds the attempt
//     through the same rollback path with the Panicked reason — locks are
//     released, logs discarded, the serial gate reopened — and is then
//     re-raised to the caller.
//   - Cancellation. RunPolicyCtx observes a context at every retry-loop top
//     and inside the contention manager's serial-gate wait; a cancelled
//     transaction rolls back with the Canceled reason and returns the
//     context's error instead of committing.
package abort

import (
	"context"

	"repro/internal/spin"
)

// Signal is the panic value used to unwind an aborted transaction.
// Its Reason is reported by statistics hooks.
type Signal struct {
	// Reason classifies the conflict that caused the abort.
	Reason Reason
}

// Reason classifies why a transaction aborted.
type Reason int

// Abort reasons, in the order they are typically detected.
const (
	// Conflict is a read-set (memory or semantic) validation failure.
	Conflict Reason = iota
	// LockBusy means a required lock could not be acquired at commit.
	LockBusy
	// Invalidated means a committing transaction explicitly doomed this one
	// (InvalSTM / RInval).
	Invalidated
	// Explicit is a user-requested retry.
	Explicit
	// Timeout means a bounded lock-acquisition spin was exhausted
	// (pessimistic boosting's deadlock-avoidance timeout).
	Timeout
	// Canceled means the transaction's context was cancelled or its
	// deadline expired; the retry loop gave up instead of retrying.
	Canceled
	// Panicked means a non-transactional panic (user callback, runtime
	// error, armed failpoint) unwound the attempt. The rollback path runs
	// as for any abort, then the panic is re-raised to the caller — the
	// transaction is not retried.
	Panicked

	// NumReasons is the number of distinct abort reasons; statistics
	// layers (package telemetry) size per-reason counter arrays with it.
	NumReasons
)

// String returns the human-readable name of the reason.
func (r Reason) String() string {
	switch r {
	case Conflict:
		return "conflict"
	case LockBusy:
		return "lock-busy"
	case Invalidated:
		return "invalidated"
	case Explicit:
		return "explicit"
	case Timeout:
		return "timeout"
	case Canceled:
		return "canceled"
	case Panicked:
		return "panicked"
	default:
		return "unknown"
	}
}

// signals holds one pre-boxed Signal per reason so Retry does not allocate
// on the abort path (interface conversion of a struct value otherwise heap-
// allocates per panic).
var signals [NumReasons]any

func init() {
	for r := Conflict; r < NumReasons; r++ {
		signals[r] = Signal{Reason: r}
	}
}

// Retry aborts the current transaction with the given reason. It never
// returns; the enclosing Run recovers it.
func Retry(r Reason) {
	if r >= 0 && r < NumReasons {
		panic(signals[r])
	}
	panic(Signal{Reason: r})
}

// Stats counts the outcomes of a retry loop.
type Stats struct {
	Commits uint64
	Aborts  uint64
}

// Manager is the contention-management hook RunPolicy consults around each
// attempt. The canonical implementation is *cm.Manager (package
// internal/cm); the indirection keeps this package free of a dependency on
// the policy layer.
//
// A Manager is shared by many goroutines; all methods must be safe for
// concurrent use. Per-transaction pacing state (the consecutive-abort count)
// is carried by the retry loop and passed in, so implementations stay
// stateless per call.
type Manager interface {
	// Pause blocks while an escalated transaction elsewhere runs in serial
	// mode. It is called before every optimistic attempt, so the
	// no-escalation fast path must be near-free (one atomic load).
	Pause()
	// OnAbort is called after the n-th consecutive aborted attempt (n >= 1)
	// of one transaction, with the abort's reason. It waits according to the
	// policy and reports whether the transaction has exhausted its retry
	// budget and must escalate to serial mode before the next attempt.
	OnAbort(n int, r Reason) (escalate bool)
	// Escalate acquires the process-wide serial-mode gate: it blocks until
	// this transaction is the only escalated one, then stops new optimistic
	// attempts from starting (they block in Pause) until Release.
	Escalate()
	// Release releases the serial-mode gate after the escalated transaction
	// commits.
	Release()
}

// Run executes attempt repeatedly until it completes without aborting.
//
// Before each attempt it calls begin; after an abort it calls rollback with
// the signal's reason, waits with exponential backoff, and retries. Panics
// that are not abort Signals propagate unchanged. Stats, if non-nil, is
// updated by the calling goroutine only.
//
// Run is the legacy fixed-policy entry point, kept for callers that need no
// contention management; it is RunPolicy with a nil Manager.
func Run(stats *Stats, begin func(), attempt func(), rollback func(Reason)) {
	RunPolicy(stats, nil, begin, attempt, rollback)
}

// CtxPauser is implemented by managers whose serial-gate wait can observe a
// context (cm.Manager). RunPolicyCtx uses it so a transaction cancelled
// while parked at the gate returns promptly instead of waiting out the
// escalated transaction.
type CtxPauser interface {
	// PauseCtx is Manager.Pause returning early with the context's error
	// when ctx is cancelled during the wait.
	PauseCtx(ctx context.Context) error
}

// RunPolicy is Run with a pluggable contention manager. A nil Manager gives
// the default yielding exponential backoff and never escalates.
//
// With a Manager, every optimistic attempt first passes the serial-mode
// gate (Manager.Pause); after each abort the manager paces the retry and
// decides whether the per-transaction retry budget is exhausted. When it
// is, the transaction acquires the process-wide serial gate and retries
// without policy waits until it commits — new optimistic attempts
// everywhere block at the gate meanwhile, so the escalated transaction
// competes only with attempts already in flight and commits after a
// bounded number of retries. RunPolicy reports whether the transaction
// escalated, so callers can record it (telemetry's Escalated counter).
func RunPolicy(stats *Stats, m Manager, begin func(), attempt func(), rollback func(Reason)) (escalated bool) {
	escalated, _ = RunPolicyCtx(nil, stats, m, begin, attempt, rollback)
	return escalated
}

// RunPolicyCtx is RunPolicy observing a context: cancellation (or deadline
// expiry) is checked before every attempt, after every abort, and inside the
// serial-gate wait of managers implementing CtxPauser. On cancellation the
// loop calls rollback with the Canceled reason (attempt state was already
// rolled back, so this only classifies the outcome and lets runtimes record
// it), releases the serial gate if this transaction held it, and returns the
// context's error; the transaction did not commit. A nil ctx never cancels.
//
// Foreign panics (anything that is not an abort Signal) unwind through the
// rollback path with the Panicked reason — releasing locks, logs, and the
// serial gate — and are then re-raised to the caller.
func RunPolicyCtx(ctx context.Context, stats *Stats, m Manager, begin func(), attempt func(), rollback func(Reason)) (escalated bool, err error) {
	t := funcRunner{begin: begin, attempt: attempt, rollback: rollback}
	return RunPolicyTxCtx(ctx, stats, m, &t)
}

// funcRunner adapts the closure-based RunPolicy API to TxRunner.
type funcRunner struct {
	begin    func()
	attempt  func()
	rollback func(Reason)
}

func (f *funcRunner) Begin()            { f.begin() }
func (f *funcRunner) Attempt()          { f.attempt() }
func (f *funcRunner) Rollback(r Reason) { f.rollback(r) }

// TxRunner is implemented by transaction descriptors that drive the retry
// loop through methods instead of closures. Pooled descriptors implementing
// TxRunner let RunPolicyTxCtx execute a whole transaction without a single
// heap allocation — the closure-based RunPolicyCtx API costs one adapter
// allocation per call plus whatever the captured closures escape.
//
// The loop calls Begin before each attempt, Attempt to run the body and
// commit, and Rollback exactly once per failed attempt (including
// cancellation and foreign panics), with the same semantics as the
// begin/attempt/rollback closures of RunPolicyCtx.
type TxRunner interface {
	Begin()
	Attempt()
	Rollback(Reason)
}

// RunPolicyTx is RunPolicyTxCtx with no context.
func RunPolicyTx(stats *Stats, m Manager, t TxRunner) (escalated bool) {
	escalated, _ = RunPolicyTxCtx(nil, stats, m, t)
	return escalated
}

// RunPolicyTxCtx is RunPolicyCtx driving a TxRunner descriptor. It is the
// allocation-free core the closure API wraps.
func RunPolicyTxCtx(ctx context.Context, stats *Stats, m Manager, t TxRunner) (escalated bool, err error) {
	var b spin.Backoff
	n := 0
	defer func() {
		// A foreign panic has already been rolled back by runOnce; make sure
		// an escalated transaction reopens the gate on its way out so the
		// process stays usable, then let the panic continue to the caller.
		if p := recover(); p != nil {
			if escalated {
				m.Release()
			}
			panic(p)
		}
	}()
	for {
		if ctx != nil {
			if e := ctx.Err(); e != nil {
				return cancelTx(t, m, escalated, e)
			}
		}
		if m != nil && !escalated {
			if pc, ok := m.(CtxPauser); ok && ctx != nil {
				if e := pc.PauseCtx(ctx); e != nil {
					return cancelTx(t, m, escalated, e)
				}
			} else {
				m.Pause()
			}
		}
		done, r := runOnce(t)
		if done {
			if stats != nil {
				stats.Commits++
			}
			if escalated {
				m.Release()
			}
			return escalated, nil
		}
		if stats != nil {
			stats.Aborts++
		}
		n++
		// Mid-backoff cancellation: check both before pacing (covers a
		// context that expired during the aborted attempt, e.g. while it was
		// validating) and at the next loop top (covers expiry during the
		// policy wait itself — policy waits are bounded at microseconds).
		if ctx != nil {
			if e := ctx.Err(); e != nil {
				return cancelTx(t, m, escalated, e)
			}
		}
		switch {
		case m == nil:
			b.Wait()
		case escalated:
			// Already serial: retry immediately, but still yield so attempts
			// that were in flight when the gate closed can finish (mandatory
			// when GOMAXPROCS=1).
			b.Wait()
		case m.OnAbort(n, r):
			m.Escalate()
			escalated = true
			b.Reset()
		}
	}
}

// cancelTx classifies a cancelled transaction's outcome and reopens the
// serial gate if this transaction held it.
func cancelTx(t TxRunner, m Manager, escalated bool, e error) (bool, error) {
	t.Rollback(Canceled)
	if escalated {
		m.Release()
	}
	return escalated, e
}

// runOnce runs one attempt, converting an abort Signal into a false return
// carrying the signal's reason. Any other panic runs the same rollback with
// the Panicked reason — the attempt may have been holding locks when it blew
// up, and the rollback path is the one place that knows how to release them
// — and is then re-raised.
func runOnce(t TxRunner) (committed bool, reason Reason) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		if sig, ok := p.(Signal); ok {
			t.Rollback(sig.Reason)
			committed, reason = false, sig.Reason
			return
		}
		t.Rollback(Panicked)
		panic(p)
	}()
	t.Begin()
	t.Attempt()
	return true, 0
}
