package abort

import (
	"errors"
	"testing"
)

func TestRunRetriesUntilSuccess(t *testing.T) {
	var stats Stats
	attempts := 0
	begins := 0
	rollbacks := 0
	Run(&stats,
		func() { begins++ },
		func() {
			attempts++
			if attempts < 3 {
				Retry(Conflict)
			}
		},
		func(r Reason) {
			if r != Conflict {
				t.Errorf("reason = %v, want Conflict", r)
			}
			rollbacks++
		},
	)
	if attempts != 3 || begins != 3 || rollbacks != 2 {
		t.Fatalf("attempts=%d begins=%d rollbacks=%d; want 3,3,2", attempts, begins, rollbacks)
	}
	if stats.Commits != 1 || stats.Aborts != 2 {
		t.Fatalf("stats = %+v; want 1 commit, 2 aborts", stats)
	}
}

func TestForeignPanicsPropagate(t *testing.T) {
	boom := errors.New("boom")
	rolledBack := false
	defer func() {
		if p := recover(); p != boom {
			t.Fatalf("recovered %v, want the foreign panic", p)
		}
		if !rolledBack {
			t.Error("foreign panic must roll back (release locks) before propagating")
		}
	}()
	Run(nil, func() {}, func() { panic(boom) }, func(r Reason) {
		if r != Panicked {
			t.Errorf("rollback reason = %v, want Panicked", r)
		}
		rolledBack = true
	})
}

func TestReasonStrings(t *testing.T) {
	cases := map[Reason]string{
		Conflict:    "conflict",
		LockBusy:    "lock-busy",
		Invalidated: "invalidated",
		Explicit:    "explicit",
		Reason(99):  "unknown",
	}
	for r, want := range cases {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), want)
		}
	}
}

func TestNilStats(t *testing.T) {
	ran := false
	Run(nil, func() {}, func() { ran = true }, func(Reason) {})
	if !ran {
		t.Fatal("attempt did not run")
	}
}
