package bench

import (
	"fmt"
	"io"

	"repro/internal/telemetry"
)

// Experiment is one reproducible artifact of the paper's evaluation. Gen,
// when non-nil, generates the underlying Figure (cmd/reproduce -bench-out
// uses it to also emit machine-readable records); experiments that print
// free-form tables only provide Run.
type Experiment struct {
	ID   string
	Desc string
	Run  func(cfg Config, w io.Writer)
	Gen  func(cfg Config) Figure
}

// figExp adapts a Figure generator to an Experiment. When telemetry is
// enabled, each experiment runs against a freshly reset Default registry
// and appends its own abort-reason breakdown, so the table is windowed to
// the experiment rather than the process lifetime.
func figExp(id, desc string, gen func(Config) Figure) Experiment {
	return Experiment{ID: id, Desc: desc, Gen: gen, Run: func(cfg Config, w io.Writer) {
		telemetry.Default.Reset()
		f := gen(cfg)
		f.Print(w)
		WriteTelemetry(w, id)
	}}
}

// WriteTelemetry appends the Default registry's abort-reason table for one
// experiment, if telemetry is enabled and anything was recorded.
func WriteTelemetry(w io.Writer, id string) {
	if !telemetry.Default.Enabled() {
		return
	}
	snaps := telemetry.Default.Snapshot()
	any := false
	for _, s := range snaps {
		if s.Commits != 0 || s.TotalAborts() != 0 {
			any = true
			break
		}
	}
	if !any {
		return
	}
	fmt.Fprintf(w, "-- %s telemetry (per-algorithm abort breakdown) --\n", id)
	telemetry.WriteTable(w, snaps)
	fmt.Fprintln(w)
}

// Experiments lists every table and figure of the evaluation sections, in
// paper order.
func Experiments() []Experiment {
	return []Experiment{
		figExp("fig3.3", "linked-list set 512, Lazy vs pessimistic vs OTB", Fig33),
		figExp("fig3.4", "skip-list set 512, Lazy vs pessimistic vs OTB", Fig34),
		figExp("fig3.5", "skip-list set 64K, Lazy vs pessimistic vs OTB", Fig35),
		figExp("fig3.6", "heap priority queue 512, tx sizes 1 and 5", Fig36),
		figExp("fig3.7", "skip-list priority queue 512, tx sizes 1 and 5", Fig37),
		figExp("fig4.2", "linked-list 512, pure STM vs OTB integration", Fig42),
		figExp("fig4.3", "skip-list 4K, pure STM vs OTB integration", Fig43),
		figExp("fig4.4", "Algorithm 7 mixed set+memory transactions", Fig44),
		{ID: "table5.1", Desc: "NOrec commit-time ratio on STAMP profiles",
			Run: func(cfg Config, w io.Writer) {
				telemetry.Default.Reset()
				Table51(cfg, w)
				WriteTelemetry(w, "table5.1")
			}},
		figExp("fig5.5", "red-black tree 64K, RingSW/NOrec/TL2/RTC", Fig55),
		figExp("fig5.6", "contention events per tx (cache-miss proxy), NOrec vs RTC", Fig56),
		figExp("fig5.7", "hash map 10K/256 buckets, RingSW/NOrec/TL2/RTC", Fig57),
		figExp("fig5.8", "doubly linked list 500, RingSW/NOrec/TL2/RTC", Fig58),
		figExp("fig5.9", "red-black tree under multiprogramming", Fig59),
		figExp("fig5.10", "STAMP execution time, RingSW/NOrec/TL2/RTC", Fig510),
		figExp("fig5.11", "RTC dependency-detector count sweep (0/1/2)", Fig511),
		figExp("fig6.2", "critical-path breakdown on red-black tree", Fig62),
		figExp("fig6.3", "critical-path breakdown on STAMP profiles", Fig63),
		figExp("fig6.7", "red-black tree 64K, invalidation family", Fig67),
		figExp("fig6.8", "STAMP execution time, invalidation family", Fig68),
		figExp("abl.validation", "ablation: OTB per-operation validation optimization", AblValidation),
		figExp("abl.locks", "ablation: OTB-NOrec semantic-lock skipping", AblLocks),
		figExp("abl.ddthreshold", "ablation: RTC dependency-detection threshold", AblDDThreshold),
		figExp("abl.fairness", "ablation: RTC contention-aware server scheduling", AblFairness),
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
