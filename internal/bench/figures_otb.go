package bench

import (
	"math/rand/v2"

	"repro/internal/boosting"
	"repro/internal/conc"
	"repro/internal/otb"
	"repro/internal/telemetry"
)

// setMix is one workload panel of the Chapter 3 set figures.
type setMix struct {
	name     string
	writePct int
	opsPerTx int
}

// chapter3Mixes are the four workloads of Figures 3.3–3.5.
func chapter3Mixes() []setMix {
	return []setMix{
		{"read-only", 0, 1},
		{"read-intensive", 20, 1},
		{"write-intensive", 80, 1},
		{"high-contention", 80, 5},
	}
}

// runSetPoint measures one (driver, workload, threads) point in
// transactions per second. The run carries a per-driver pprof label (via
// telemetry.Do) so CPU profiles can be split by algorithm; the label is
// inherited by Throughput's worker goroutines.
func runSetPoint(cfg Config, threads int, wl SetWorkload, d SetDriver) float64 {
	wl.Populate(d)
	gens := make([]func(*rand.Rand) []SetOp, threads)
	for i := range gens {
		gens[i] = wl.NewSetWorker(i)
	}
	var tput float64
	telemetry.Default.Do(d.Name(), func() {
		tput = Throughput(cfg, threads, func(id int, rng *rand.Rand) {
			d.RunTx(gens[id](rng))
		})
	})
	return tput
}

// setFigure sweeps the given driver factories over the workloads.
func setFigure(cfg Config, id, title string, size int, mixes []setMix,
	drivers []func() SetDriver) Figure {
	fig := Figure{ID: id, Title: title, XLabel: "threads"}
	for _, mix := range mixes {
		wl := SetWorkload{
			InitialSize: size,
			KeyRange:    int64(size) * 8,
			WritePct:    mix.writePct,
			OpsPerTx:    mix.opsPerTx,
		}
		sp := SubPlot{Name: mix.name, YLabel: "tx/sec"}
		for _, mk := range drivers {
			var s Series
			for _, th := range cfg.Threads {
				d := mk()
				s.Name = d.Name()
				y := runSetPoint(cfg, th, wl, d)
				d.Stop()
				s.Points = append(s.Points, Point{X: th, Y: y})
			}
			sp.Series = append(sp.Series, s)
		}
		fig.SubPlots = append(fig.SubPlots, sp)
	}
	return fig
}

// Fig33 reproduces Figure 3.3: linked-list set, 512 elements, four
// workloads; Lazy vs PessimisticBoosted vs OptimisticBoosted.
func Fig33(cfg Config) Figure {
	drivers := []func() SetDriver{
		func() SetDriver { return NewLazyDriver(conc.NewLazyList()) },
		func() SetDriver { return NewBoostedDriver(boosting.NewSet(conc.NewLazyList(), 4096)) },
		func() SetDriver { return NewOTBDriver(otb.NewListSet()) },
	}
	return setFigure(cfg, "fig3.3", "linked-list set, 512 elements", 512, chapter3Mixes(), drivers)
}

// Fig34 reproduces Figure 3.4: skip-list set, 512 elements.
func Fig34(cfg Config) Figure {
	drivers := []func() SetDriver{
		func() SetDriver { return NewLazyDriver(conc.NewLazySkipList()) },
		func() SetDriver { return NewBoostedDriver(boosting.NewSet(conc.NewLazySkipList(), 4096)) },
		func() SetDriver { return NewOTBDriver(otb.NewSkipSet()) },
	}
	return setFigure(cfg, "fig3.4", "skip-list set, 512 elements", 512, chapter3Mixes(), drivers)
}

// Fig35 reproduces Figure 3.5: skip-list set, 64K elements (the
// low-contention regime where OTB's advantage peaks).
func Fig35(cfg Config) Figure {
	drivers := []func() SetDriver{
		func() SetDriver { return NewLazyDriver(conc.NewLazySkipList()) },
		func() SetDriver { return NewBoostedDriver(boosting.NewSet(conc.NewLazySkipList(), 1<<16)) },
		func() SetDriver { return NewOTBDriver(otb.NewSkipSet()) },
	}
	return setFigure(cfg, "fig3.5", "skip-list set, 64K elements", 64*1024, chapter3Mixes(), drivers)
}

// runPQPoint measures one priority-queue point: 50% add / 50% removeMin.
func runPQPoint(cfg Config, threads, size, opsPerTx int, d PQDriver) float64 {
	seed := make([]PQOp, 0, size)
	rng := rand.New(rand.NewPCG(42, 42))
	for i := 0; i < size; i++ {
		seed = append(seed, PQOp{Kind: PQAdd, Key: rng.Int64N(1 << 40)})
		if len(seed) == 64 {
			d.RunTx(seed)
			seed = seed[:0]
		}
	}
	if len(seed) > 0 {
		d.RunTx(seed)
	}
	var tput float64
	telemetry.Default.Do(d.Name(), func() {
		tput = Throughput(cfg, threads, func(id int, rng *rand.Rand) {
			ops := make([]PQOp, opsPerTx)
			for i := range ops {
				if rng.IntN(2) == 0 {
					ops[i] = PQOp{Kind: PQAdd, Key: rng.Int64N(1 << 40)}
				} else {
					ops[i] = PQOp{Kind: PQRemoveMin}
				}
			}
			d.RunTx(ops)
		})
	})
	return tput
}

// pqFigure sweeps queue drivers over transaction sizes 1 and 5.
func pqFigure(cfg Config, id, title string, size int, drivers []func() PQDriver) Figure {
	fig := Figure{ID: id, Title: title, XLabel: "threads"}
	for _, txSize := range []int{1, 5} {
		sp := SubPlot{Name: sizeName(txSize), YLabel: "tx/sec"}
		for _, mk := range drivers {
			var s Series
			for _, th := range cfg.Threads {
				d := mk()
				s.Name = d.Name()
				y := runPQPoint(cfg, th, size, txSize, d)
				d.Stop()
				s.Points = append(s.Points, Point{X: th, Y: y})
			}
			sp.Series = append(sp.Series, s)
		}
		fig.SubPlots = append(fig.SubPlots, sp)
	}
	return fig
}

func sizeName(n int) string {
	if n == 1 {
		return "tx-size-1"
	}
	return "tx-size-5"
}

// Fig36 reproduces Figure 3.6: heap-based priority queue, 512 elements,
// 50% add / 50% removeMin; pessimistic vs semi-optimistic boosting.
func Fig36(cfg Config) Figure {
	drivers := []func() PQDriver{
		func() PQDriver { return NewBoostedPQDriver(boosting.NewPQ()) },
		func() PQDriver { return NewOTBHeapPQDriver(otb.NewHeapPQ()) },
	}
	return pqFigure(cfg, "fig3.6", "heap-based priority queue, 512 elements", 512, drivers)
}

// Fig37 reproduces Figure 3.7: skip-list-based priority queue, 512
// elements; pessimistic boosting over a concurrent skip queue vs the fully
// optimistic OTB queue.
func Fig37(cfg Config) Figure {
	drivers := []func() PQDriver{
		func() PQDriver {
			return NewBoostedPQDriver(boosting.NewPQOver(boosting.SkipPQAdapter{Q: conc.NewSkipPQ()}))
		},
		func() PQDriver { return NewOTBSkipPQDriver(otb.NewSkipPQ()) },
	}
	return pqFigure(cfg, "fig3.7", "skip-list-based priority queue, 512 elements", 512, drivers)
}
