package bench_test

import "math/rand/v2"

// randAlias keeps the test closures' signatures aligned with the harness.
type randAlias = rand.Rand

// newRand returns a deterministic generator for tests.
func newRand() *rand.Rand {
	return rand.New(rand.NewPCG(1, 2))
}
