package bench

import (
	"repro/internal/boosting"
	"repro/internal/otb"
)

// PQOpKind identifies a priority-queue operation.
type PQOpKind int8

// Priority queue operation kinds.
const (
	PQAdd PQOpKind = iota
	PQRemoveMin
)

// PQOp is one generated queue operation.
type PQOp struct {
	Kind PQOpKind
	Key  int64
}

// PQDriver executes a batch of queue operations as one transaction.
type PQDriver interface {
	Name() string
	RunTx(ops []PQOp)
	Stop()
}

// --- Pessimistic boosting ---

type boostedPQDriver struct{ q *boosting.PQ }

// NewBoostedPQDriver wraps a pessimistically boosted queue.
func NewBoostedPQDriver(q *boosting.PQ) PQDriver { return &boostedPQDriver{q: q} }

func (d *boostedPQDriver) Name() string { return "PessimisticBoosted" }
func (d *boostedPQDriver) Stop()        {}
func (d *boostedPQDriver) RunTx(ops []PQOp) {
	boosting.Atomic(nil, nil, func(tx *boosting.Tx) {
		for _, op := range ops {
			if op.Kind == PQAdd {
				d.q.Add(tx, op.Key)
			} else {
				d.q.RemoveMin(tx)
			}
		}
	})
}

// --- OTB ---

type otbHeapPQDriver struct{ q *otb.HeapPQ }

// NewOTBHeapPQDriver wraps the semi-optimistic heap queue.
func NewOTBHeapPQDriver(q *otb.HeapPQ) PQDriver { return &otbHeapPQDriver{q: q} }

func (d *otbHeapPQDriver) Name() string { return "OptimisticBoosted" }
func (d *otbHeapPQDriver) Stop()        {}
func (d *otbHeapPQDriver) RunTx(ops []PQOp) {
	otb.Atomic(nil, func(tx *otb.Tx) {
		for _, op := range ops {
			if op.Kind == PQAdd {
				d.q.Add(tx, op.Key)
			} else {
				d.q.RemoveMin(tx)
			}
		}
	})
}

type otbSkipPQDriver struct{ q *otb.SkipPQ }

// NewOTBSkipPQDriver wraps the fully optimistic skip-list queue.
func NewOTBSkipPQDriver(q *otb.SkipPQ) PQDriver { return &otbSkipPQDriver{q: q} }

func (d *otbSkipPQDriver) Name() string { return "OptimisticBoosted" }
func (d *otbSkipPQDriver) Stop()        {}
func (d *otbSkipPQDriver) RunTx(ops []PQOp) {
	otb.Atomic(nil, func(tx *otb.Tx) {
		for _, op := range ops {
			if op.Kind == PQAdd {
				d.q.Add(tx, op.Key)
			} else {
				d.q.RemoveMin(tx)
			}
		}
	})
}
