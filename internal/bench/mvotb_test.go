package bench_test

import (
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/mvotb"
	"repro/internal/telemetry"
)

// TestMVOTBReadMostlyZeroROAborts is the ISSUE acceptance check in-tree:
// under the 95%-lookup and 100%-lookup workload mixes, the MVOTB-RO meter
// must report zero aborts — the snapshot path never retried — while still
// committing work (the mix actually routed transactions through it).
func TestMVOTBReadMostlyZeroROAborts(t *testing.T) {
	telemetry.Enable()
	cfg := bench.Config{
		Threads: []int{4},
		Warmup:  5 * time.Millisecond,
		Measure: 50 * time.Millisecond,
	}
	for _, writes := range []int{5, 0} {
		rt := mvotb.New(mvotb.Options{})
		d := bench.NewMVOTBDriver(rt, rt.NewSet(4096))
		wl := bench.SetWorkload{InitialSize: 256, KeyRange: 2048, WritePct: writes, OpsPerTx: 4}
		wl.Populate(d)
		workers := make([]func(*rand.Rand) []bench.SetOp, 4)
		for i := range workers {
			workers[i] = wl.NewSetWorker(i)
		}
		before := telemetry.M("MVOTB-RO").Snapshot()
		bench.Throughput(cfg, 4, func(id int, rng *rand.Rand) {
			d.RunTx(workers[id](rng))
		})
		after := telemetry.M("MVOTB-RO").Snapshot()
		d.Stop()
		if aborts := after.TotalAborts() - before.TotalAborts(); aborts != 0 {
			t.Errorf("writes=%d%%: MVOTB-RO aborts = %d, want 0", writes, aborts)
		}
		if after.Commits == before.Commits {
			t.Errorf("writes=%d%%: snapshot path committed nothing", writes)
		}
	}
}
