package bench

import (
	"context"
	"sync"

	"repro/internal/mvotb"
)

// mvotbDriver runs set transactions on the multi-version runtime. A batch
// with only Contains operations goes through the never-abort snapshot path;
// anything else runs the updater path. That mirrors how a real caller uses
// MVOTB — the read-mostly benchmark mixes are exactly where the snapshot
// path pays.
type mvotbDriver struct {
	rt  *mvotb.Runtime
	set *mvotb.Set
}

// NewMVOTBDriver wraps a multi-version set. Stop stops the runtime (and its
// background version GC).
func NewMVOTBDriver(rt *mvotb.Runtime, set *mvotb.Set) SetDriver {
	return &mvotbDriver{rt: rt, set: set}
}

func (d *mvotbDriver) Name() string      { return "MVOTB" }
func (d *mvotbDriver) Stop()             { d.rt.Stop() }
func (d *mvotbDriver) RunTx(ops []SetOp) { d.RunTxCtx(nil, ops) }

// mvotbRun is a pooled pair of transaction bodies (see boostedRun): one for
// the updater path, one for the snapshot path.
type mvotbRun struct {
	d    *mvotbDriver
	ops  []SetOp
	fn   func(*mvotb.Tx)
	roFn func(*mvotb.STx)
}

var mvotbRunPool = sync.Pool{New: func() any {
	r := &mvotbRun{}
	r.fn = func(tx *mvotb.Tx) {
		for _, op := range r.ops {
			switch op.Kind {
			case OpAdd:
				r.d.set.Add(tx, op.Key)
			case OpRemove:
				r.d.set.Remove(tx, op.Key)
			default:
				r.d.set.Contains(tx, op.Key)
			}
		}
	}
	r.roFn = func(x *mvotb.STx) {
		for _, op := range r.ops {
			r.d.set.SnapContains(x, op.Key)
		}
	}
	return r
}}

// allContains reports whether the batch is pure membership queries.
func allContains(ops []SetOp) bool {
	for _, op := range ops {
		if op.Kind != OpContains {
			return false
		}
	}
	return true
}

func (d *mvotbDriver) RunTxCtx(ctx context.Context, ops []SetOp) error {
	r := mvotbRunPool.Get().(*mvotbRun)
	r.d, r.ops = d, ops
	var err error
	if allContains(ops) {
		err = d.rt.ReadOnlyCtx(ctx, r.roFn)
	} else {
		err = d.rt.AtomicCtx(ctx, r.fn)
	}
	r.d, r.ops = nil, nil
	mvotbRunPool.Put(r)
	return err
}
