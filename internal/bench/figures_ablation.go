package bench

import (
	"fmt"

	"math/rand/v2"

	"repro/internal/integrate"
	"repro/internal/mem"
	"repro/internal/otb"
	"repro/internal/rtc"
	"repro/internal/stm"
)

// AblValidation measures the paper's per-operation validation optimization
// (Section 3.2.1): optimized (presentOnly / bottom-level entries) vs full
// adjacency validation for every read entry, on both OTB sets.
func AblValidation(cfg Config) Figure {
	fig := Figure{ID: "abl.validation",
		Title:  "ablation: OTB validation optimization (optimized vs full adjacency)",
		XLabel: "threads"}
	subplots := []struct {
		name    string
		size    int
		drivers []func() SetDriver
	}{
		{"linked-list 512", 512, []func() SetDriver{
			func() SetDriver { return NewOTBDriver(otb.NewListSet()) },
			func() SetDriver { return namedOTB("FullValidation", otb.NewListSetFullValidation()) },
		}},
		{"skip-list 4K", 4096, []func() SetDriver{
			func() SetDriver { return NewOTBDriver(otb.NewSkipSet()) },
			func() SetDriver { return namedOTB("FullValidation", otb.NewSkipSetFullValidation()) },
		}},
	}
	for _, sub := range subplots {
		wl := SetWorkload{InitialSize: sub.size, KeyRange: int64(sub.size) * 8, WritePct: 20, OpsPerTx: 4}
		sp := SubPlot{Name: sub.name, YLabel: "tx/sec"}
		for _, mk := range sub.drivers {
			var s Series
			for _, th := range cfg.Threads {
				d := mk()
				s.Name = d.Name()
				y := runSetPoint(cfg, th, wl, d)
				d.Stop()
				s.Points = append(s.Points, Point{X: th, Y: y})
			}
			sp.Series = append(sp.Series, s)
		}
		fig.SubPlots = append(fig.SubPlots, sp)
	}
	return fig
}

// namedOTB wraps an OTB set driver with an explicit series name.
func namedOTB(name string, set otbSet) SetDriver {
	return &renamedDriver{SetDriver: NewOTBDriver(set), name: name}
}

type renamedDriver struct {
	SetDriver
	name string
}

func (d *renamedDriver) Name() string { return d.name }

// AblLocks measures the OTB-NOrec lock-granularity optimization: skipping
// semantic locks under the global lock vs acquiring them anyway.
func AblLocks(cfg Config) Figure {
	fig := Figure{ID: "abl.locks",
		Title:  "ablation: OTB-NOrec semantic locks (skipped vs acquired under the global lock)",
		XLabel: "threads"}
	wl := SetWorkload{InitialSize: 512, KeyRange: 4096, WritePct: 50, OpsPerTx: 4}
	sp := SubPlot{Name: "linked-list 512, 50% writes, 4 ops/tx", YLabel: "tx/sec"}
	variants := []struct {
		name string
		mk   func() integrate.Algorithm
	}{
		{"SkipSemanticLocks", func() integrate.Algorithm { return integrate.NewOTBNOrec() }},
		{"AcquireSemanticLocks", func() integrate.Algorithm { return integrate.NewOTBNOrecSemanticLocks() }},
	}
	for _, v := range variants {
		var s Series
		s.Name = v.name
		for _, th := range cfg.Threads {
			alg := v.mk()
			d := NewIntegratedDriver(alg, otb.NewListSet())
			y := runSetPoint(cfg, th, wl, d)
			d.Stop()
			s.Points = append(s.Points, Point{X: th, Y: y})
		}
		sp.Series = append(sp.Series, s)
	}
	fig.SubPlots = append(fig.SubPlots, sp)
	return fig
}

// AblDDThreshold sweeps RTC's dependency-detection threshold: too low and
// short commits waste a window; too high and the detector never engages.
func AblDDThreshold(cfg Config) Figure {
	fig := Figure{ID: "abl.ddthreshold",
		Title:  "ablation: RTC dependency-detection write-set threshold",
		XLabel: "threads"}
	sp := SubPlot{Name: "disjoint 8-cell writers", YLabel: "tx/sec"}
	for _, thr := range []int{1, 4, 16, 64} {
		var s Series
		s.Name = fmt.Sprintf("threshold-%d", thr)
		for _, th := range cfg.Threads {
			alg := rtc.New(rtc.Options{Secondaries: 1, DDThreshold: thr})
			const cellsPer = 8
			banks := make([][]*mem.Cell, th)
			for w := range banks {
				banks[w] = make([]*mem.Cell, cellsPer)
				for i := range banks[w] {
					banks[w][i] = mem.NewCell(0)
				}
			}
			y := Throughput(cfg, th, func(id int, rng *rand.Rand) {
				mine := banks[id]
				alg.Atomic(func(tx stm.Tx) {
					for _, c := range mine {
						tx.Write(c, tx.Read(c)+1)
					}
				})
			})
			alg.Stop()
			s.Points = append(s.Points, Point{X: th, Y: y})
		}
		sp.Series = append(sp.Series, s)
	}
	fig.SubPlots = append(fig.SubPlots, sp)
	return fig
}

// AblFairness compares RTC's slot-order sweep against the contention-aware
// server (serve the most-aborted request first, Section 7.1.3) on a
// hotspot workload where all transactions conflict.
func AblFairness(cfg Config) Figure {
	fig := Figure{ID: "abl.fairness",
		Title:  "ablation: RTC server scheduling (slot order vs most-starved first)",
		XLabel: "threads"}
	sp := SubPlot{Name: "hotspot counter + private work", YLabel: "tx/sec"}
	for _, fair := range []bool{false, true} {
		var s Series
		if fair {
			s.Name = "most-starved-first"
		} else {
			s.Name = "slot-order"
		}
		for _, th := range cfg.Threads {
			alg := rtc.New(rtc.Options{Secondaries: 0, FairScheduling: fair})
			hot := mem.NewCell(0)
			priv := make([]*mem.Cell, th)
			for i := range priv {
				priv[i] = mem.NewCell(0)
			}
			y := Throughput(cfg, th, func(id int, rng *rand.Rand) {
				alg.Atomic(func(tx stm.Tx) {
					tx.Write(hot, tx.Read(hot)+1)
					tx.Write(priv[id], tx.Read(priv[id])+1)
				})
			})
			alg.Stop()
			s.Points = append(s.Points, Point{X: th, Y: y})
		}
		sp.Series = append(sp.Series, s)
	}
	fig.SubPlots = append(fig.SubPlots, sp)
	return fig
}
