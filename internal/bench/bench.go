// Package bench is the experiment harness: timed throughput runs, thread
// sweeps, and the figure/table formatting that regenerates every plot of
// the paper's evaluation sections. cmd/reproduce drives it from the command
// line; the repository-root benchmarks drive it through testing.B.
package bench

import (
	"fmt"
	"io"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Config controls the measurement methodology. The paper warms up 2s and
// measures 5s per point; Full uses shorter windows that are stable on a
// container, and Quick is for tests and smoke runs.
type Config struct {
	Threads []int         // goroutine counts to sweep
	Warmup  time.Duration // per-point warmup
	Measure time.Duration // per-point measurement window
}

// Quick is the configuration used by tests: tiny windows, small sweep.
func Quick() Config {
	return Config{Threads: []int{1, 2, 4}, Warmup: 10 * time.Millisecond, Measure: 40 * time.Millisecond}
}

// Full is the default configuration of cmd/reproduce.
func Full() Config {
	return Config{
		Threads: []int{1, 2, 4, 8, 16, 32, 48, 64},
		Warmup:  200 * time.Millisecond,
		Measure: time.Second,
	}
}

// MemStats summarizes the allocation and garbage-collection behaviour of one
// measurement window, from runtime.ReadMemStats deltas. The per-transaction
// ratios use the transactions counted in the same window, so a pooled
// zero-allocation runtime reports ~0 regardless of throughput.
type MemStats struct {
	Txs             uint64  // transactions counted in the window
	AllocsPerTx     float64 // heap objects allocated per transaction
	AllocBytesPerTx float64 // heap bytes allocated per transaction
	GCPauseTotalNS  uint64  // total stop-the-world pause in the window
	NumGC           uint32  // GC cycles completed in the window
}

// Throughput runs threads goroutines, each looping work(threadID, rng), for
// cfg.Warmup + cfg.Measure and returns committed operations per second
// during the measurement window. work is called once per transaction.
func Throughput(cfg Config, threads int, work func(id int, rng *rand.Rand)) float64 {
	tput, _ := ThroughputMem(cfg, threads, work)
	return tput
}

// ThroughputMem is Throughput plus allocation and GC accounting over the
// measurement window. The memstats snapshots bracket the window (the second
// is taken after the workers stop, so the delta slightly overcounts the
// drain between measure-end and quiescence — bias toward reporting, never
// hiding, allocation).
func ThroughputMem(cfg Config, threads int, work func(id int, rng *rand.Rand)) (float64, MemStats) {
	var (
		stop      atomic.Bool
		measuring atomic.Bool
		count     atomic.Uint64
		wg        sync.WaitGroup
	)
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(id+1), 0x5eed))
			for !stop.Load() {
				work(id, rng)
				if measuring.Load() {
					count.Add(1)
				}
			}
		}(t)
	}
	time.Sleep(cfg.Warmup)
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	measuring.Store(true)
	start := time.Now()
	time.Sleep(cfg.Measure)
	elapsed := time.Since(start)
	stop.Store(true)
	wg.Wait()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	txs := count.Load()
	mem := MemStats{
		Txs:            txs,
		GCPauseTotalNS: m1.PauseTotalNs - m0.PauseTotalNs,
		NumGC:          m1.NumGC - m0.NumGC,
	}
	if txs > 0 {
		mem.AllocsPerTx = float64(m1.Mallocs-m0.Mallocs) / float64(txs)
		mem.AllocBytesPerTx = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(txs)
	}
	return float64(txs) / elapsed.Seconds(), mem
}

// TimedRun executes totalTxs transactions spread over threads goroutines
// and returns the wall time (the STAMP "execution time" methodology).
func TimedRun(threads, totalTxs int, work func(id int, rng *rand.Rand)) time.Duration {
	var wg sync.WaitGroup
	var remaining atomic.Int64
	remaining.Store(int64(totalTxs))
	start := time.Now()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(id+1), 0xabcd))
			for remaining.Add(-1) >= 0 {
				work(id, rng)
			}
		}(t)
	}
	wg.Wait()
	return time.Since(start)
}

// Point is one measurement: X is the thread count (or other sweep value),
// Y the metric.
type Point struct {
	X int
	Y float64
}

// Series is one line of a plot.
type Series struct {
	Name   string
	Points []Point
}

// SubPlot is one panel of a figure (e.g. one workload mix).
type SubPlot struct {
	Name   string
	YLabel string
	Series []Series
}

// Figure is a reproduced paper figure or table.
type Figure struct {
	ID       string // e.g. "fig3.3"
	Title    string
	XLabel   string
	SubPlots []SubPlot
}

// Print renders the figure as aligned text tables, one per subplot, with
// one row per X value and one column per series — the same rows/series the
// paper plots.
func (f *Figure) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	for _, sp := range f.SubPlots {
		fmt.Fprintf(w, "\n-- %s (%s) --\n", sp.Name, sp.YLabel)
		fmt.Fprintf(w, "%-10s", f.XLabel)
		for _, s := range sp.Series {
			fmt.Fprintf(w, "%16s", s.Name)
		}
		fmt.Fprintln(w)
		if len(sp.Series) == 0 {
			continue
		}
		for i := range sp.Series[0].Points {
			fmt.Fprintf(w, "%-10d", sp.Series[0].Points[i].X)
			for _, s := range sp.Series {
				if i < len(s.Points) {
					fmt.Fprintf(w, "%16.3f", s.Points[i].Y)
				} else {
					fmt.Fprintf(w, "%16s", "-")
				}
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w)
}
