package bench

import (
	"encoding/json"
	"os"
)

// ResultSchema is the machine-readable result schema shared by cmd/stmbench
// -json, cmd/reproduce -bench-out, and cmd/benchgate (documented in
// EXPERIMENTS.md, "Machine-readable results").
const ResultSchema = "stmbench-result/v1"

// Result is one stmbench-result/v1 record: one (structure, algorithm,
// threads, workload) measurement. cmd/stmbench extends it with telemetry
// meters; the perf gate compares TxPerSec and AllocsPerTx across runs.
type Result struct {
	Schema      string  `json:"schema"`
	Structure   string  `json:"structure"`
	Algorithm   string  `json:"algorithm"`
	Threads     int     `json:"threads"`
	InitialSize int     `json:"initial_size"`
	WritePct    int     `json:"write_pct"`
	OpsPerTx    int     `json:"ops_per_tx"`
	DurationNS  int64   `json:"duration_ns"`
	TxPerSec    float64 `json:"tx_per_sec"`
	OpsPerSec   float64 `json:"ops_per_sec"`

	AllocsPerTx     float64 `json:"allocs_per_tx"`
	AllocBytesPerTx float64 `json:"alloc_bytes_per_tx"`
	GCPauseTotalNS  uint64  `json:"gc_pause_total_ns"`
	NumGC           uint32  `json:"num_gc"`

	// RecoveryMS is the wall-clock cost of durable-store recovery
	// (snapshot load + log-tail replay), emitted by the recovery-timing
	// suite in internal/txnet; zero (omitted) for throughput records.
	RecoveryMS float64 `json:"recovery_ms,omitempty"`
}

// FigureResults flattens a reproduced figure into stmbench-result/v1
// records: one per series point, with Structure naming the figure panel and
// Algorithm the series. For figures whose Y axis is not a throughput (e.g.
// execution time or ratios), TxPerSec carries the figure's Y value verbatim
// — the record identifies the point; its unit is the figure's YLabel.
func FigureResults(id string, cfg Config, f Figure) []Result {
	var out []Result
	for _, sp := range f.SubPlots {
		for _, s := range sp.Series {
			for _, p := range s.Points {
				out = append(out, Result{
					Schema:     ResultSchema,
					Structure:  id + "/" + sp.Name,
					Algorithm:  s.Name,
					Threads:    p.X,
					DurationNS: int64(cfg.Measure),
					TxPerSec:   p.Y,
				})
			}
		}
	}
	return out
}

// WriteResults writes records as an indented JSON array.
func WriteResults(path string, results []Result) error {
	out, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
