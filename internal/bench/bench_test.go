package bench_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
)

// smokeCfg is an ultra-short configuration for harness plumbing tests.
func smokeCfg() bench.Config {
	return bench.Config{
		Threads: []int{1, 2},
		Warmup:  2 * time.Millisecond,
		Measure: 10 * time.Millisecond,
	}
}

func TestThroughputCountsWork(t *testing.T) {
	cfg := smokeCfg()
	n := 0
	y := bench.Throughput(cfg, 1, func(id int, _ *randT) { n++ })
	if y <= 0 {
		t.Fatalf("throughput = %f, want > 0", y)
	}
	if n == 0 {
		t.Fatal("work never ran")
	}
}

// randT aliases the rand type to keep the closure signature readable.
type randT = randAlias

func TestFigurePrintFormat(t *testing.T) {
	fig := bench.Figure{
		ID: "figX", Title: "test", XLabel: "threads",
		SubPlots: []bench.SubPlot{{
			Name: "w", YLabel: "tx/sec",
			Series: []bench.Series{
				{Name: "A", Points: []bench.Point{{X: 1, Y: 2.5}, {X: 2, Y: 5}}},
				{Name: "B", Points: []bench.Point{{X: 1, Y: 1}, {X: 2, Y: 2}}},
			},
		}},
	}
	var sb strings.Builder
	fig.Print(&sb)
	out := sb.String()
	for _, want := range []string{"figX", "A", "B", "2.500", "threads"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestExperimentsSmoke runs a representative subset of the experiments end
// to end with tiny windows, checking they produce well-formed output with
// the expected series.
func TestExperimentsSmoke(t *testing.T) {
	cases := map[string][]string{
		"fig3.3":   {"Lazy", "PessimisticBoosted", "OptimisticBoosted"},
		"fig3.6":   {"PessimisticBoosted", "OptimisticBoosted"},
		"fig3.7":   {"tx-size-5"},
		"fig4.2":   {"NOrec", "TL2", "OTB-NOrec", "OTB-TL2"},
		"fig4.4":   {"OTB-NOrec", "skip-list"},
		"table5.1": {"genome", "ssca2", "labyrinth"},
		"fig5.6":   {"NOrec", "RTC", "events/tx"},
		"fig5.8":   {"RingSW", "RTC"},
		"fig5.11":  {"RTC-0sec", "RTC-1sec", "RTC-2sec"},
		"fig6.2":   {"NOrec", "InvalSTM", "RInval-V3"},
		"fig6.7":   {"RInval-V1", "RInval-V2", "RInval-V3"},
	}
	cfg := smokeCfg()
	if testing.Short() {
		// Same plumbing, less wall time: one experiment per chapter, a
		// single thread count, and minimal windows.
		cases = map[string][]string{
			"fig3.3": {"Lazy", "PessimisticBoosted", "OptimisticBoosted"},
			"fig4.2": {"NOrec", "TL2", "OTB-NOrec", "OTB-TL2"},
			"fig6.2": {"NOrec", "InvalSTM", "RInval-V3"},
		}
		cfg.Threads = []int{2}
		cfg.Warmup, cfg.Measure = time.Millisecond, 4*time.Millisecond
	}
	for id, wants := range cases {
		t.Run(id, func(t *testing.T) {
			e, ok := bench.Find(id)
			if !ok {
				t.Fatalf("experiment %q not registered", id)
			}
			var sb strings.Builder
			e.Run(cfg, &sb)
			out := sb.String()
			if len(out) == 0 {
				t.Fatal("no output")
			}
			for _, w := range wants {
				if !strings.Contains(out, w) {
					t.Fatalf("output of %s missing %q:\n%s", id, w, out)
				}
			}
		})
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig3.3", "fig3.4", "fig3.5", "fig3.6", "fig3.7",
		"fig4.2", "fig4.3", "fig4.4",
		"table5.1", "fig5.5", "fig5.6", "fig5.7", "fig5.8", "fig5.9",
		"fig5.10", "fig5.11",
		"fig6.2", "fig6.3", "fig6.7", "fig6.8",
		"abl.validation", "abl.locks", "abl.ddthreshold", "abl.fairness",
	}
	for _, id := range want {
		if _, ok := bench.Find(id); !ok {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if got := len(bench.Experiments()); got != len(want) {
		t.Errorf("registry has %d experiments, want %d", got, len(want))
	}
}

func TestSetWorkloadKeyDisjointness(t *testing.T) {
	wl := bench.SetWorkload{InitialSize: 64, KeyRange: 512, WritePct: 100, OpsPerTx: 4}
	gen := wl.NewSetWorker(0)
	rng := newRand()
	for i := 0; i < 200; i++ {
		for _, op := range gen(rng) {
			if op.Kind == bench.OpAdd && op.Key%2 == 0 {
				t.Fatalf("worker added even key %d (reserved for population)", op.Key)
			}
		}
	}
}
