package bench

import (
	"fmt"
	"io"
	"math/rand/v2"
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/rtc"
	"repro/internal/stamp"
	"repro/internal/stm"
	"repro/internal/stm/norec"
	"repro/internal/stm/ringsw"
	"repro/internal/stm/tl2"
	"repro/internal/stmds"
)

// chapter5Drivers builds the four series of the Chapter 5 microbenchmarks
// over a fresh structure from mkSet.
func chapter5Drivers(mkSet func() stmSet) []func() SetDriver {
	return []func() SetDriver{
		func() SetDriver { return NewSTMDriver("RingSW", ringsw.New(), mkSet()) },
		func() SetDriver { return NewSTMDriver("NOrec", norec.New(), mkSet()) },
		func() SetDriver { return NewSTMDriver("TL2", tl2.New(), mkSet()) },
		func() SetDriver {
			return NewSTMDriver("RTC", rtc.New(rtc.Options{Secondaries: 1}), mkSet())
		},
	}
}

// Fig55 reproduces Figure 5.5: red-black tree with 64K elements at 50% and
// 80% reads.
func Fig55(cfg Config) Figure {
	mixes := []setMix{
		{"50pct reads", 50, 1},
		{"80pct reads", 20, 1},
	}
	mkSet := func() stmSet { return RBAsSet(stmds.NewRBTree(1 << 21)) }
	return setFigure(cfg, "fig5.5", "red-black tree, 64K elements",
		64*1024, mixes, chapter5Drivers(mkSet))
}

// Fig56 reproduces Figure 5.6's cache-miss comparison using the portable
// proxy (failed CAS + lock-spin iterations per committed transaction) on a
// large (64K) and a small (64) red-black tree, NOrec vs RTC.
func Fig56(cfg Config) Figure {
	fig := Figure{ID: "fig5.6", Title: "lock contention events per transaction (cache-miss proxy)",
		XLabel: "threads"}
	for _, sub := range []struct {
		name string
		size int
	}{{"large tree (64K)", 64 * 1024}, {"small tree (64)", 64}} {
		sp := SubPlot{Name: sub.name, YLabel: "events/tx"}
		mk := []func() SetDriver{
			func() SetDriver { return NewSTMDriver("NOrec", norec.New(), RBAsSet(stmds.NewRBTree(1<<21))) },
			func() SetDriver {
				return NewSTMDriver("RTC", rtc.New(rtc.Options{Secondaries: 1}), RBAsSet(stmds.NewRBTree(1<<21)))
			},
		}
		wl := SetWorkload{InitialSize: sub.size, KeyRange: int64(sub.size) * 8, WritePct: 50, OpsPerTx: 1}
		for _, mkD := range mk {
			var s Series
			for _, th := range cfg.Threads {
				d := mkD()
				s.Name = d.Name()
				sd := d.(*stmDriver)
				wl.Populate(d)
				sd.alg.Counters().Reset()
				tput := func() float64 {
					gens := make([]func(*rand.Rand) []SetOp, th)
					for i := range gens {
						gens[i] = wl.NewSetWorker(i)
					}
					return Throughput(cfg, th, func(id int, rng *rand.Rand) {
						d.RunTx(gens[id](rng))
					})
				}()
				casf, spins := sd.alg.Counters().Snapshot()
				txs := tput * cfg.Measure.Seconds()
				y := 0.0
				if txs > 0 {
					y = float64(casf+spins) / txs
				}
				d.Stop()
				s.Points = append(s.Points, Point{X: th, Y: y})
			}
			sp.Series = append(sp.Series, s)
		}
		fig.SubPlots = append(fig.SubPlots, sp)
	}
	return fig
}

// HashMapAsSet adapts a HashMap's Put/Get/Delete to the generic set
// interface used by the workload drivers.
func HashMapAsSet(m *stmds.HashMap) interface {
	Add(stm.Tx, int64) bool
	Remove(stm.Tx, int64) bool
	Contains(stm.Tx, int64) bool
} {
	return hashMapAsSet{m}
}

// hashMapAsSet adapts HashMap's Put/Get/Delete to the set interface.
type hashMapAsSet struct{ m *stmds.HashMap }

func (a hashMapAsSet) Add(tx stm.Tx, k int64) bool      { return a.m.Put(tx, k, uint64(k)) }
func (a hashMapAsSet) Remove(tx stm.Tx, k int64) bool   { return a.m.Delete(tx, k) }
func (a hashMapAsSet) Contains(tx stm.Tx, k int64) bool { _, ok := a.m.Get(tx, k); return ok }

// Fig57 reproduces Figure 5.7: hash map with 10,000 elements over 256
// buckets at 50% and 80% reads.
func Fig57(cfg Config) Figure {
	mixes := []setMix{
		{"50pct reads", 50, 1},
		{"80pct reads", 20, 1},
	}
	mkSet := func() stmSet { return hashMapAsSet{stmds.NewHashMap(256, 1<<21)} }
	return setFigure(cfg, "fig5.7", "hash map, 10K elements / 256 buckets",
		10000, mixes, chapter5Drivers(mkSet))
}

// Fig58 reproduces Figure 5.8: doubly linked list with 500 elements at 50%
// and 98% reads (RTC's worst case: tiny commit relative to traversal).
func Fig58(cfg Config) Figure {
	mixes := []setMix{
		{"50pct reads", 50, 1},
		{"98pct reads", 2, 1},
	}
	mkSet := func() stmSet { return stmds.NewDList(1 << 21) }
	return setFigure(cfg, "fig5.8", "doubly linked list, 500 elements",
		500, mixes, chapter5Drivers(mkSet))
}

// Fig59 reproduces Figure 5.9: the multiprogramming experiment — the same
// red-black tree workload with goroutine counts far beyond the host's
// cores (on this container every point is multiprogrammed; the paper's
// 24-core cap corresponds to sweeping past GOMAXPROCS).
func Fig59(cfg Config) Figure {
	over := cfg
	over.Threads = []int{1, 2, 4, 8, 16, 24, 32, 48, 64}
	mixes := []setMix{
		{"50pct reads", 50, 1},
		{"98pct reads", 2, 1},
	}
	mkSet := func() stmSet { return RBAsSet(stmds.NewRBTree(1 << 21)) }
	return setFigure(over, "fig5.9", "red-black tree, 64K elements, threads beyond cores",
		64*1024, mixes, chapter5Drivers(mkSet))
}

// Fig510 reproduces Figure 5.10: execution time of the STAMP profiles.
// Lower is better.
func Fig510(cfg Config) Figure {
	return stampExecTime(cfg, "fig5.10", []func() stm.Algorithm{
		func() stm.Algorithm { return ringsw.New() },
		func() stm.Algorithm { return norec.New() },
		func() stm.Algorithm { return tl2.New() },
		func() stm.Algorithm { return rtc.New(rtc.Options{Secondaries: 1}) },
	})
}

// stampExecTime runs every STAMP profile for a fixed transaction count and
// reports wall seconds per thread count.
func stampExecTime(cfg Config, id string, algs []func() stm.Algorithm) Figure {
	fig := Figure{ID: id, Title: "STAMP profiles: execution time (seconds, lower is better)",
		XLabel: "threads"}
	totalTxs := 20000
	if cfg.Measure.Milliseconds() < 500 {
		totalTxs = 2000 // quick mode
	}
	for _, app := range stamp.Apps() {
		sp := SubPlot{Name: app.Name, YLabel: "seconds"}
		for _, mkAlg := range algs {
			var s Series
			for _, th := range cfg.Threads {
				alg := mkAlg()
				s.Name = alg.Name()
				w := stamp.NewWorkload(app)
				var sink atomic.Uint64
				dur := TimedRun(th, totalTxs, func(id int, rng *rand.Rand) {
					sink.Add(w.RunTx(alg, rng))
				})
				alg.Stop()
				s.Points = append(s.Points, Point{X: th, Y: dur.Seconds()})
			}
			sp.Series = append(sp.Series, s)
		}
		fig.SubPlots = append(fig.SubPlots, sp)
	}
	return fig
}

// Fig511 reproduces Figure 5.11: the effect of the number of dependency
// detector servers (0, 1, 2) on a disjoint-write workload with commit
// phases long enough to open DD windows.
func Fig511(cfg Config) Figure {
	fig := Figure{ID: "fig5.11", Title: "RTC dependency detectors: disjoint writer throughput",
		XLabel: "threads"}
	sp := SubPlot{Name: "disjoint 8-cell writers", YLabel: "tx/sec"}
	for _, secs := range []int{0, 1, 2} {
		var s Series
		s.Name = fmt.Sprintf("RTC-%dsec", secs)
		for _, th := range cfg.Threads {
			alg := rtc.New(rtc.Options{Secondaries: secs, DDThreshold: 2})
			const cellsPer = 8
			banks := make([][]*mem.Cell, th)
			for w := range banks {
				banks[w] = make([]*mem.Cell, cellsPer)
				for i := range banks[w] {
					banks[w][i] = mem.NewCell(0)
				}
			}
			y := Throughput(cfg, th, func(id int, rng *rand.Rand) {
				mine := banks[id]
				alg.Atomic(func(tx stm.Tx) {
					for _, c := range mine {
						tx.Write(c, tx.Read(c)+1)
					}
				})
			})
			alg.Stop()
			s.Points = append(s.Points, Point{X: th, Y: y})
		}
		sp.Series = append(sp.Series, s)
	}
	fig.SubPlots = append(fig.SubPlots, sp)
	return fig
}

// Table51 reproduces Table 5.1: NOrec's commit-time ratio on the STAMP
// profiles — %trans (share of in-transaction time) and %total (share of
// total CPU time including the non-transactional work).
func Table51(cfg Config, w io.Writer) {
	threads := []int{8, 16, 32, 48}
	totalTxs := 20000
	if cfg.Measure.Milliseconds() < 500 {
		totalTxs = 2000
	}
	fmt.Fprintf(w, "== table5.1: NOrec commit-time ratio on STAMP profiles ==\n\n")
	fmt.Fprintf(w, "%-10s", "app")
	for _, th := range threads {
		fmt.Fprintf(w, "  %8s %8s", fmt.Sprintf("%dt/tr%%", th), "tot%")
	}
	fmt.Fprintln(w)
	for _, app := range stamp.Apps() {
		fmt.Fprintf(w, "%-10s", app.Name)
		for _, th := range threads {
			alg := norec.New()
			prof := &stm.Profile{}
			alg.SetProfile(prof)
			wl := stamp.NewWorkload(app)
			var sink atomic.Uint64
			dur := TimedRun(th, totalTxs, func(id int, rng *rand.Rand) {
				sink.Add(wl.RunTx(alg, rng))
			})
			snap := prof.Snapshot()
			trans := 0.0
			if snap.TotalNS > 0 {
				trans = 100 * float64(snap.CommitNS) / float64(snap.TotalNS)
			}
			cpuNS := dur.Nanoseconds() * int64(th)
			total := 0.0
			if cpuNS > 0 {
				total = 100 * float64(snap.CommitNS) / float64(cpuNS)
			}
			alg.Stop()
			fmt.Fprintf(w, "  %8.1f %8.1f", trans, total)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}
