package bench

import (
	"math/rand/v2"
	"sync/atomic"

	"repro/internal/rinval"
	"repro/internal/stamp"
	"repro/internal/stm"
	"repro/internal/stm/invalstm"
	"repro/internal/stm/norec"
	"repro/internal/stmds"
)

// profiledAlg is an algorithm that can expose per-phase timing.
type profiledAlg interface {
	stm.Algorithm
	SetProfile(*stm.Profile)
}

// chapter6ProfiledAlgs builds the three algorithms of the critical-path
// study with profilers attached.
func chapter6ProfiledAlgs() []func() (profiledAlg, *stm.Profile) {
	mk := func(a profiledAlg) (profiledAlg, *stm.Profile) {
		p := &stm.Profile{}
		a.SetProfile(p)
		return a, p
	}
	return []func() (profiledAlg, *stm.Profile){
		func() (profiledAlg, *stm.Profile) { return mk(norec.New()) },
		func() (profiledAlg, *stm.Profile) { return mk(invalstm.New()) },
		func() (profiledAlg, *stm.Profile) { return mk(rinval.New(rinval.V3)) },
	}
}

// breakdownSeries converts a profile snapshot into the three bars of
// Figures 6.2–6.3, normalized to the given baseline total.
func breakdownSeries(name string, snap stm.ProfileSnapshot, baseTotal int64) []Point {
	if baseTotal == 0 {
		baseTotal = 1
	}
	return []Point{
		{X: 0, Y: float64(snap.ValidationNS) / float64(baseTotal)},
		{X: 1, Y: float64(snap.CommitNS) / float64(baseTotal)},
		{X: 2, Y: float64(snap.OtherNS()) / float64(baseTotal)},
	}
}

// Fig62 reproduces Figure 6.2: validation/commit/other share of the
// critical path on a red-black tree, normalized to NOrec's total at the
// same thread count. X encodes the component (0=validation, 1=commit,
// 2=other).
func Fig62(cfg Config) Figure {
	fig := Figure{
		ID:     "fig6.2",
		Title:  "critical-path breakdown on red-black tree (normalized to NOrec; x: 0=validation 1=commit 2=other)",
		XLabel: "component",
	}
	totalTxs := 20000
	if cfg.Measure.Milliseconds() < 500 {
		totalTxs = 2000
	}
	threads := 8
	if len(cfg.Threads) > 0 && cfg.Threads[len(cfg.Threads)-1] < 8 {
		threads = cfg.Threads[len(cfg.Threads)-1]
	}
	sp := SubPlot{Name: "64K tree, 50% writes", YLabel: "fraction of NOrec total"}
	var baseTotal int64
	for _, mkAlg := range chapter6ProfiledAlgs() {
		alg, prof := mkAlg()
		tree := stmds.NewRBTree(1 << 21)
		set := RBAsSet(tree)
		wl := SetWorkload{InitialSize: 64 * 1024, KeyRange: 512 * 1024, WritePct: 50, OpsPerTx: 1}
		d := NewSTMDriver(alg.Name(), alg, set)
		wl.Populate(d)
		gens := make([]func(*rand.Rand) []SetOp, threads)
		for i := range gens {
			gens[i] = wl.NewSetWorker(i)
		}
		TimedRun(threads, totalTxs, func(id int, rng *rand.Rand) {
			d.RunTx(gens[id](rng))
		})
		snap := prof.Snapshot()
		if baseTotal == 0 {
			baseTotal = snap.TotalNS // NOrec runs first
		}
		sp.Series = append(sp.Series, Series{
			Name:   alg.Name(),
			Points: breakdownSeries(alg.Name(), snap, baseTotal),
		})
		d.Stop()
	}
	fig.SubPlots = append(fig.SubPlots, sp)
	return fig
}

// Fig63 reproduces Figure 6.3: the same breakdown on the STAMP profiles.
func Fig63(cfg Config) Figure {
	fig := Figure{
		ID:     "fig6.3",
		Title:  "critical-path breakdown on STAMP profiles (normalized to NOrec; x: 0=validation 1=commit 2=other)",
		XLabel: "component",
	}
	totalTxs := 20000
	if cfg.Measure.Milliseconds() < 500 {
		totalTxs = 2000
	}
	const threads = 8
	for _, app := range stamp.Apps() {
		sp := SubPlot{Name: app.Name, YLabel: "fraction of NOrec total"}
		var baseTotal int64
		for _, mkAlg := range chapter6ProfiledAlgs() {
			alg, prof := mkAlg()
			w := stamp.NewWorkload(app)
			var sink atomic.Uint64
			TimedRun(threads, totalTxs, func(id int, rng *rand.Rand) {
				sink.Add(w.RunTx(alg, rng))
			})
			snap := prof.Snapshot()
			if baseTotal == 0 {
				baseTotal = snap.TotalNS
			}
			sp.Series = append(sp.Series, Series{
				Name:   alg.Name(),
				Points: breakdownSeries(alg.Name(), snap, baseTotal),
			})
			alg.Stop()
		}
		fig.SubPlots = append(fig.SubPlots, sp)
	}
	return fig
}

// Fig67 reproduces Figure 6.7: red-black tree throughput — NOrec and
// InvalSTM vs the three RInval versions.
func Fig67(cfg Config) Figure {
	mixes := []setMix{
		{"50pct reads", 50, 1},
		{"80pct reads", 20, 1},
	}
	mkSet := func() stmSet { return RBAsSet(stmds.NewRBTree(1 << 21)) }
	drivers := []func() SetDriver{
		func() SetDriver { return NewSTMDriver("NOrec", norec.New(), mkSet()) },
		func() SetDriver { return NewSTMDriver("InvalSTM", invalstm.New(), mkSet()) },
		func() SetDriver { return NewSTMDriver("RInval-V1", rinval.New(rinval.V1), mkSet()) },
		func() SetDriver { return NewSTMDriver("RInval-V2", rinval.New(rinval.V2), mkSet()) },
		func() SetDriver { return NewSTMDriver("RInval-V3", rinval.New(rinval.V3), mkSet()) },
	}
	return setFigure(cfg, "fig6.7", "red-black tree, 64K elements (invalidation family)",
		64*1024, mixes, drivers)
}

// Fig68 reproduces Figure 6.8: STAMP execution time for the invalidation
// family.
func Fig68(cfg Config) Figure {
	return stampExecTime(cfg, "fig6.8", []func() stm.Algorithm{
		func() stm.Algorithm { return norec.New() },
		func() stm.Algorithm { return invalstm.New() },
		func() stm.Algorithm { return rinval.New(rinval.V1) },
		func() stm.Algorithm { return rinval.New(rinval.V3) },
	})
}
