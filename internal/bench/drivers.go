package bench

import (
	"context"
	"math/rand/v2"
	"sync"

	"repro/internal/boosting"
	"repro/internal/integrate"
	"repro/internal/otb"
	"repro/internal/stm"
	"repro/internal/stmds"
)

// SetOpKind identifies a set operation in a generated transaction.
type SetOpKind int8

// Set operation kinds.
const (
	OpAdd SetOpKind = iota
	OpRemove
	OpContains
)

// SetOp is one generated set operation.
type SetOp struct {
	Kind SetOpKind
	Key  int64
}

// SetDriver executes a batch of set operations as one transaction on some
// implementation (lazy, boosted, OTB, pure STM, or integrated).
type SetDriver interface {
	Name() string
	// RunTx executes ops atomically (or, for the lazy baseline, merely
	// sequentially — it has no transactions, as the paper notes).
	RunTx(ops []SetOp)
	// RunTxCtx is RunTx observing ctx: a cancelled or expired context makes
	// the transaction give up (rolling back any attempt in flight) and
	// return the context's error instead of committing. A nil ctx never
	// cancels.
	RunTxCtx(ctx context.Context, ops []SetOp) error
	// Stop releases background resources.
	Stop()
}

// --- Lazy (non-transactional upper bound) ---

// concSet abstracts the lazy sets.
type concSet interface {
	Add(int64) bool
	Remove(int64) bool
	Contains(int64) bool
}

type lazyDriver struct{ set concSet }

// NewLazyDriver wraps a lazy concurrent set (no transactional support).
func NewLazyDriver(set concSet) SetDriver { return &lazyDriver{set: set} }

func (d *lazyDriver) Name() string { return "Lazy" }
func (d *lazyDriver) Stop()        {}
func (d *lazyDriver) RunTx(ops []SetOp) {
	for _, op := range ops {
		switch op.Kind {
		case OpAdd:
			d.set.Add(op.Key)
		case OpRemove:
			d.set.Remove(op.Key)
		default:
			d.set.Contains(op.Key)
		}
	}
}

// RunTxCtx has no transaction to abandon; it just refuses to start after
// cancellation.
func (d *lazyDriver) RunTxCtx(ctx context.Context, ops []SetOp) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	d.RunTx(ops)
	return nil
}

// --- Pessimistic boosting ---

type boostedDriver struct{ set *boosting.Set }

// NewBoostedDriver wraps a pessimistically boosted set.
func NewBoostedDriver(set *boosting.Set) SetDriver { return &boostedDriver{set: set} }

func (d *boostedDriver) Name() string      { return "PessimisticBoosted" }
func (d *boostedDriver) Stop()             {}
func (d *boostedDriver) RunTx(ops []SetOp) { d.RunTxCtx(nil, ops) }

// boostedRun is a pooled transaction body: the closure is created once per
// pooled object and captures the run, so the per-transaction path does not
// allocate a fresh closure over the op batch.
type boostedRun struct {
	d   *boostedDriver
	ops []SetOp
	fn  func(*boosting.Tx)
}

var boostedRunPool = sync.Pool{New: func() any {
	r := &boostedRun{}
	r.fn = func(tx *boosting.Tx) {
		for _, op := range r.ops {
			switch op.Kind {
			case OpAdd:
				r.d.set.Add(tx, op.Key)
			case OpRemove:
				r.d.set.Remove(tx, op.Key)
			default:
				r.d.set.Contains(tx, op.Key)
			}
		}
	}
	return r
}}

func (d *boostedDriver) RunTxCtx(ctx context.Context, ops []SetOp) error {
	r := boostedRunPool.Get().(*boostedRun)
	r.d, r.ops = d, ops
	err := boosting.AtomicCtx(ctx, nil, nil, r.fn)
	r.d, r.ops = nil, nil
	boostedRunPool.Put(r)
	return err
}

// --- OTB ---

// otbSet abstracts the two OTB sets.
type otbSet interface {
	Add(*otb.Tx, int64) bool
	Remove(*otb.Tx, int64) bool
	Contains(*otb.Tx, int64) bool
}

type otbDriver struct{ set otbSet }

// NewOTBDriver wraps an optimistically boosted set.
func NewOTBDriver(set otbSet) SetDriver { return &otbDriver{set: set} }

func (d *otbDriver) Name() string      { return "OptimisticBoosted" }
func (d *otbDriver) Stop()             {}
func (d *otbDriver) RunTx(ops []SetOp) { d.RunTxCtx(nil, ops) }

// otbRun is a pooled transaction body (see boostedRun).
type otbRun struct {
	d   *otbDriver
	ops []SetOp
	fn  func(*otb.Tx)
}

var otbRunPool = sync.Pool{New: func() any {
	r := &otbRun{}
	r.fn = func(tx *otb.Tx) {
		for _, op := range r.ops {
			switch op.Kind {
			case OpAdd:
				r.d.set.Add(tx, op.Key)
			case OpRemove:
				r.d.set.Remove(tx, op.Key)
			default:
				r.d.set.Contains(tx, op.Key)
			}
		}
	}
	return r
}}

func (d *otbDriver) RunTxCtx(ctx context.Context, ops []SetOp) error {
	r := otbRunPool.Get().(*otbRun)
	r.d, r.ops = d, ops
	err := otb.AtomicCtx(ctx, nil, r.fn)
	r.d, r.ops = nil, nil
	otbRunPool.Put(r)
	return err
}

// --- Pure STM structures ---

// stmSet abstracts the stmds set-like structures.
type stmSet interface {
	Add(stm.Tx, int64) bool
	Remove(stm.Tx, int64) bool
	Contains(stm.Tx, int64) bool
}

// rbAsSet adapts the red-black tree's Insert/Delete naming.
type rbAsSet struct{ t *stmds.RBTree }

// RBAsSet exposes an RBTree through the generic set interface.
func RBAsSet(t *stmds.RBTree) interface {
	Add(stm.Tx, int64) bool
	Remove(stm.Tx, int64) bool
	Contains(stm.Tx, int64) bool
} {
	return rbAsSet{t}
}

func (a rbAsSet) Add(tx stm.Tx, k int64) bool      { return a.t.Insert(tx, k) }
func (a rbAsSet) Remove(tx stm.Tx, k int64) bool   { return a.t.Delete(tx, k) }
func (a rbAsSet) Contains(tx stm.Tx, k int64) bool { return a.t.Contains(tx, k) }

type stmDriver struct {
	name string
	alg  stm.Algorithm
	set  stmSet
}

// NewSTMDriver runs set operations as transactions of alg over a pure-STM
// structure.
func NewSTMDriver(name string, alg stm.Algorithm, set stmSet) SetDriver {
	return &stmDriver{name: name, alg: alg, set: set}
}

func (d *stmDriver) Name() string      { return d.name }
func (d *stmDriver) Stop()             { d.alg.Stop() }
func (d *stmDriver) RunTx(ops []SetOp) { d.RunTxCtx(nil, ops) }

// stmRun is a pooled transaction body (see boostedRun).
type stmRun struct {
	d   *stmDriver
	ops []SetOp
	fn  func(stm.Tx)
}

var stmRunPool = sync.Pool{New: func() any {
	r := &stmRun{}
	r.fn = func(tx stm.Tx) {
		for _, op := range r.ops {
			switch op.Kind {
			case OpAdd:
				r.d.set.Add(tx, op.Key)
			case OpRemove:
				r.d.set.Remove(tx, op.Key)
			default:
				r.d.set.Contains(tx, op.Key)
			}
		}
	}
	return r
}}

func (d *stmDriver) RunTxCtx(ctx context.Context, ops []SetOp) error {
	r := stmRunPool.Get().(*stmRun)
	r.d, r.ops = d, ops
	defer func() {
		r.d, r.ops = nil, nil
		stmRunPool.Put(r)
	}()
	if ac, ok := d.alg.(stm.AlgorithmCtx); ok {
		return ac.AtomicCtx(ctx, r.fn)
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	d.alg.Atomic(r.fn)
	return nil
}

// --- Integrated (Chapter 4) ---

type integDriver struct {
	alg integrate.Algorithm
	set otbSet
}

// NewIntegratedDriver runs set operations inside an OTB-NOrec / OTB-TL2
// context.
func NewIntegratedDriver(alg integrate.Algorithm, set otbSet) SetDriver {
	return &integDriver{alg: alg, set: set}
}

func (d *integDriver) Name() string      { return d.alg.Name() }
func (d *integDriver) Stop()             { d.alg.Stop() }
func (d *integDriver) RunTx(ops []SetOp) { d.RunTxCtx(nil, ops) }

// integRun is a pooled transaction body (see boostedRun).
type integRun struct {
	d   *integDriver
	ops []SetOp
	fn  func(*integrate.Ctx)
}

var integRunPool = sync.Pool{New: func() any {
	r := &integRun{}
	r.fn = func(ic *integrate.Ctx) {
		for _, op := range r.ops {
			switch op.Kind {
			case OpAdd:
				r.d.set.Add(ic.Sem(), op.Key)
			case OpRemove:
				r.d.set.Remove(ic.Sem(), op.Key)
			default:
				r.d.set.Contains(ic.Sem(), op.Key)
			}
		}
	}
	return r
}}

func (d *integDriver) RunTxCtx(ctx context.Context, ops []SetOp) error {
	r := integRunPool.Get().(*integRun)
	r.d, r.ops = d, ops
	err := d.alg.AtomicCtx(ctx, r.fn)
	r.d, r.ops = nil, nil
	integRunPool.Put(r)
	return err
}

// SetWorkload generates the paper's set micro-benchmark mixes: WritePct
// percent of operations are writes, split evenly between adds of fresh keys
// and removes of keys this worker added earlier (so writes are mostly
// successful, as Section 3.3 requires), the rest are contains over the full
// range. Populated keys are even (multiples of the populate step) and
// worker-added keys are odd, so transient writes never erode the initial
// population and the structure size stays stable around InitialSize.
type SetWorkload struct {
	InitialSize int
	KeyRange    int64
	WritePct    int
	OpsPerTx    int
}

// workerState carries a worker's private queue of previously added keys.
type workerState struct {
	added []int64
	flip  bool
}

// NewSetWorker returns a per-worker transaction generator over the
// workload. Seed it by pre-populating the structure through Populate.
func (w SetWorkload) NewSetWorker(id int) func(rng *rand.Rand) []SetOp {
	st := &workerState{}
	ops := make([]SetOp, w.OpsPerTx)
	return func(rng *rand.Rand) []SetOp {
		for i := range ops {
			if rng.IntN(100) < w.WritePct {
				if st.flip && len(st.added) > 0 {
					last := len(st.added) - 1
					ops[i] = SetOp{Kind: OpRemove, Key: st.added[last]}
					st.added = st.added[:last]
				} else {
					k := rng.Int64N(w.KeyRange) | 1 // odd: disjoint from population
					ops[i] = SetOp{Kind: OpAdd, Key: k}
					st.added = append(st.added, k)
				}
				st.flip = !st.flip
			} else {
				ops[i] = SetOp{Kind: OpContains, Key: rng.Int64N(w.KeyRange)}
			}
		}
		return ops
	}
}

// Populate fills the structure to the workload's initial size with evenly
// spread even keys (single-threaded, before measurement).
func (w SetWorkload) Populate(d SetDriver) {
	step := w.KeyRange / int64(w.InitialSize)
	if step < 2 {
		step = 2
	}
	ops := make([]SetOp, 0, 64)
	for k := int64(0); k < int64(w.InitialSize); k++ {
		ops = append(ops, SetOp{Kind: OpAdd, Key: k * step})
		if len(ops) == 64 {
			d.RunTx(ops)
			ops = ops[:0]
		}
	}
	if len(ops) > 0 {
		d.RunTx(ops)
	}
}
