package bench

import (
	"math/rand/v2"

	"repro/internal/integrate"
	"repro/internal/mem"
	"repro/internal/otb"
	"repro/internal/stm"
	"repro/internal/stm/norec"
	"repro/internal/stm/tl2"
	"repro/internal/stmds"
)

// chapter4Mixes are the two workloads of Figures 4.2–4.3 (one operation per
// transaction, as in the DEUCE set benchmark).
func chapter4Mixes() []setMix {
	return []setMix{
		{"80pct add/remove, 20pct contains", 80, 1},
		{"50pct add/remove, 50pct contains", 50, 1},
	}
}

// Fig42 reproduces Figure 4.2: linked-list set, 512 elements, pure-STM
// baselines vs the integrated OTB contexts.
func Fig42(cfg Config) Figure {
	drivers := []func() SetDriver{
		func() SetDriver { return NewSTMDriver("NOrec", norec.New(), stmds.NewList(1<<22)) },
		func() SetDriver { return NewSTMDriver("TL2", tl2.New(), stmds.NewList(1<<22)) },
		func() SetDriver { return NewIntegratedDriver(integrate.NewOTBNOrec(), otb.NewListSet()) },
		func() SetDriver { return NewIntegratedDriver(integrate.NewOTBTL2(), otb.NewListSet()) },
	}
	return setFigure(cfg, "fig4.2", "linked-list set, 512 elements (pure STM vs OTB integration)",
		512, chapter4Mixes(), drivers)
}

// Fig43 reproduces Figure 4.3: skip-list set, 4K elements.
func Fig43(cfg Config) Figure {
	drivers := []func() SetDriver{
		func() SetDriver { return NewSTMDriver("NOrec", norec.New(), stmds.NewSkipList(1<<20)) },
		func() SetDriver { return NewSTMDriver("TL2", tl2.New(), stmds.NewSkipList(1<<20)) },
		func() SetDriver { return NewIntegratedDriver(integrate.NewOTBNOrec(), otb.NewSkipSet()) },
		func() SetDriver { return NewIntegratedDriver(integrate.NewOTBTL2(), otb.NewSkipSet()) },
	}
	return setFigure(cfg, "fig4.3", "skip-list set, 4K elements (pure STM vs OTB integration)",
		4096, chapter4Mixes(), drivers)
}

// alg7Counters are Algorithm 7's six shared counters (success/failure per
// operation type), updated inside the same transaction as the set op.
type alg7Counters struct {
	cells [6]*mem.Cell
}

func newAlg7Counters() *alg7Counters {
	var c alg7Counters
	for i := range c.cells {
		c.cells[i] = mem.NewCell(0)
	}
	return &c
}

// counterIndex maps (op, outcome) to a counter slot.
func counterIndex(op int, ok bool) int {
	idx := op * 2 // 0:add 1:remove 2:contains
	if !ok {
		idx++
	}
	return idx
}

// Fig44 reproduces Figure 4.4: the integration test case (Algorithm 7) —
// each transaction performs one set operation (50% contains, 50%
// add/remove) and increments the matching shared counter.
func Fig44(cfg Config) Figure {
	fig := Figure{
		ID:     "fig4.4",
		Title:  "Algorithm 7: one set op + shared counter update per transaction",
		XLabel: "threads",
	}
	for _, skip := range []bool{false, true} {
		name := "linked-list"
		if skip {
			name = "skip-list"
		}
		sp := SubPlot{Name: name, YLabel: "tx/sec"}
		for _, mkD := range fig44Drivers(skip) {
			var s Series
			for _, th := range cfg.Threads {
				run := mkD()
				s.Name = run.name
				s.Points = append(s.Points, Point{X: th, Y: run.measure(cfg, th)})
				run.stop()
			}
			sp.Series = append(sp.Series, s)
		}
		fig.SubPlots = append(fig.SubPlots, sp)
	}
	return fig
}

// fig44Run is one prepared Algorithm 7 measurement.
type fig44Run struct {
	name    string
	measure func(cfg Config, threads int) float64
	stop    func()
}

// fig44Drivers builds fresh-run factories for the four series.
func fig44Drivers(skip bool) []func() fig44Run {
	const size = 512
	const keyRange = int64(size) * 8

	mkSTM := func(name string, alg stm.Algorithm, set stmSet) fig44Run {
		stmPopulate(alg, set, size, keyRange)
		cnt := newAlg7Counters()
		return fig44Run{
			name: name,
			measure: func(cfg Config, th int) float64 {
				return Throughput(cfg, th, func(id int, rng *rand.Rand) {
					op := alg7Op(rng)
					key := rng.Int64N(keyRange)
					alg.Atomic(func(tx stm.Tx) {
						var ok bool
						switch op {
						case 0:
							ok = set.Add(tx, key)
						case 1:
							ok = set.Remove(tx, key)
						default:
							ok = set.Contains(tx, key)
						}
						idx := counterIndex(op, ok)
						tx.Write(cnt.cells[idx], tx.Read(cnt.cells[idx])+1)
					})
				})
			},
			stop: alg.Stop,
		}
	}
	mkInteg := func(alg integrate.Algorithm, set otbSet) fig44Run {
		otbPopulate(set, size, keyRange)
		cnt := newAlg7Counters()
		return fig44Run{
			name: alg.Name(),
			measure: func(cfg Config, th int) float64 {
				return Throughput(cfg, th, func(id int, rng *rand.Rand) {
					op := alg7Op(rng)
					key := rng.Int64N(keyRange)
					alg.Atomic(func(ctx *integrate.Ctx) {
						var ok bool
						switch op {
						case 0:
							ok = set.Add(ctx.Sem(), key)
						case 1:
							ok = set.Remove(ctx.Sem(), key)
						default:
							ok = set.Contains(ctx.Sem(), key)
						}
						idx := counterIndex(op, ok)
						ctx.Write(cnt.cells[idx], ctx.Read(cnt.cells[idx])+1)
					})
				})
			},
			stop: alg.Stop,
		}
	}
	if skip {
		return []func() fig44Run{
			func() fig44Run { return mkSTM("NOrec", norec.New(), stmds.NewSkipList(1<<20)) },
			func() fig44Run { return mkSTM("TL2", tl2.New(), stmds.NewSkipList(1<<20)) },
			func() fig44Run { return mkInteg(integrate.NewOTBNOrec(), otb.NewSkipSet()) },
			func() fig44Run { return mkInteg(integrate.NewOTBTL2(), otb.NewSkipSet()) },
		}
	}
	return []func() fig44Run{
		func() fig44Run { return mkSTM("NOrec", norec.New(), stmds.NewList(1<<22)) },
		func() fig44Run { return mkSTM("TL2", tl2.New(), stmds.NewList(1<<22)) },
		func() fig44Run { return mkInteg(integrate.NewOTBNOrec(), otb.NewListSet()) },
		func() fig44Run { return mkInteg(integrate.NewOTBTL2(), otb.NewListSet()) },
	}
}

// alg7Op draws an operation: 50% contains, 25% add, 25% remove.
func alg7Op(rng *rand.Rand) int {
	switch rng.IntN(4) {
	case 0:
		return 0
	case 1:
		return 1
	default:
		return 2
	}
}

// stmPopulate seeds a pure-STM set single-threaded using the same
// algorithm instance.
func stmPopulate(alg stm.Algorithm, set stmSet, size int, keyRange int64) {
	step := keyRange / int64(size)
	if step == 0 {
		step = 1
	}
	for k := int64(0); k < int64(size); k++ {
		key := k * step
		alg.Atomic(func(tx stm.Tx) { set.Add(tx, key) })
	}
}

// otbPopulate seeds an OTB set single-threaded in batched transactions.
func otbPopulate(set otbSet, size int, keyRange int64) {
	step := keyRange / int64(size)
	if step == 0 {
		step = 1
	}
	for k := int64(0); k < int64(size); k += 64 {
		lo, hi := k, min(k+64, int64(size))
		otb.Atomic(nil, func(tx *otb.Tx) {
			for i := lo; i < hi; i++ {
				set.Add(tx, i*step)
			}
		})
	}
}
