package lincheck

import (
	"sync"
	"testing"

	"repro/internal/chaos"
)

// RecordedTxnSet mirrors transactional set operations into a TxnRecorder as
// operations of the current attempt. Operations that abort mid-call
// (unwinding through a panic) record nothing: only responses the body
// actually observed enter the history.
type RecordedTxnSet struct {
	S      Set
	R      *TxnRecorder
	Thread int
}

func (r RecordedTxnSet) Add(k int64) bool {
	ok := r.S.Add(k)
	r.R.Op(r.Thread, Op{Kind: Add, Key: k, Ok: ok})
	return ok
}

func (r RecordedTxnSet) Remove(k int64) bool {
	ok := r.S.Remove(k)
	r.R.Op(r.Thread, Op{Kind: Remove, Key: k, Ok: ok})
	return ok
}

func (r RecordedTxnSet) Contains(k int64) bool {
	ok := r.S.Contains(k)
	r.R.Op(r.Thread, Op{Kind: Contains, Key: k, Ok: ok})
	return ok
}

// RunTxnSet drives multi-operation set transactions through an arbitrary
// transactional runner and checks the recorded history for opacity against
// the set specification. atomic must execute body transactionally —
// invoking it once per attempt with that attempt's transactional set view —
// and return once the transaction has committed; RunTxnSet handles all
// attempt bookkeeping around it. Cells doubles as the key range.
func RunTxnSet(cfg STMConfig, atomic func(thread int, body func(Set))) (Result, []Txn) {
	rec := NewTxnRecorder(cfg.Threads)
	var wg sync.WaitGroup
	for th := 0; th < cfg.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			rng := newPRNG(cfg.Seed + int64(th)*7919)
			j := chaos.NewJitter(cfg.Seed^int64(th), cfg.JitterPermille)
			for i := 0; i < cfg.Txns; i++ {
				atomic(th, func(view Set) {
					rec.BeginAttempt(th)
					rs := RecordedTxnSet{S: view, R: rec, Thread: th}
					for o := 0; o < cfg.OpsPerTx; o++ {
						key := rng.intn(int64(cfg.Cells))
						j.Point()
						switch p := rng.intn(100); {
						case p < int64(cfg.WritePct)/2:
							rs.Add(key)
						case p < int64(cfg.WritePct):
							rs.Remove(key)
						default:
							rs.Contains(key)
						}
					}
				})
				rec.Commit(th)
			}
		}(th)
	}
	wg.Wait()
	txns := rec.History()
	return CheckOpacityBudget(SetTxnSpec(), txns, cfg.budget()), txns
}

// StressTxnSet runs RunTxnSet and fails t on an opacity violation.
func StressTxnSet(t testing.TB, cfg STMConfig, atomic func(thread int, body func(Set))) {
	t.Helper()
	cfg.Seed = seedOverride(t, cfg.Seed)
	res, txns := RunTxnSet(cfg, atomic)
	report(t, cfg.Name, cfg.Seed, res, nil, txns)
}
