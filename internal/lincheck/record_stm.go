package lincheck

import (
	"sync"
	"testing"

	"repro/internal/chaos"
	"repro/internal/mem"
	"repro/internal/stm"
)

// STMConfig parameterizes an opacity stress run against an stm.Algorithm.
type STMConfig struct {
	Name string
	Seed int64
	// Threads workers each run Txns transactions of OpsPerTx operations
	// over Cells shared cells; WritePct of the operations are writes.
	Threads, Txns, OpsPerTx, Cells int
	WritePct                       int
	JitterPermille                 int
	Budget                         int64
}

// DefaultSTMConfig is a contended read-write mix small enough that the
// witness search stays well inside the default budget.
func DefaultSTMConfig(seed int64) STMConfig {
	return STMConfig{
		Seed: seed, Threads: 4, Txns: 60, OpsPerTx: 4, Cells: 6,
		WritePct: 40, JitterPermille: 30,
	}
}

// Scaled divides the per-thread transaction count by n (at least 1).
func (c STMConfig) Scaled(n int) STMConfig {
	c.Txns = max(c.Txns/n, 1)
	return c
}

func (c STMConfig) budget() int64 {
	if c.Budget > 0 {
		return c.Budget
	}
	return DefaultBudget
}

// recTx interposes on an stm.Tx, mirroring every read and write into the
// transaction recorder. Cell identity is translated to a dense index so the
// memory specification can replay the history over a plain value array.
type recTx struct {
	inner  stm.Tx
	rec    *TxnRecorder
	thread int
	index  map[*mem.Cell]int
}

func (t *recTx) Read(c *mem.Cell) uint64 {
	v := t.inner.Read(c)
	t.rec.Op(t.thread, Op{Kind: Read, Key: int64(t.index[c]), Out: v})
	return v
}

func (t *recTx) Write(c *mem.Cell, v uint64) {
	t.inner.Write(c, v)
	t.rec.Op(t.thread, Op{Kind: Write, Key: int64(t.index[c]), In: v})
}

// AtomicRecorded runs fn through alg.Atomic with every attempt recorded:
// the body's re-invocation on retry closes the previous attempt as aborted,
// and the Atomic return commits the final one. Operations that abort
// mid-call (unwinding through a panic) are deliberately not recorded — the
// history holds only operations that returned a value to the body.
func AtomicRecorded(alg stm.Algorithm, rec *TxnRecorder, thread int, index map[*mem.Cell]int, fn func(stm.Tx)) {
	alg.Atomic(func(inner stm.Tx) {
		rec.BeginAttempt(thread)
		fn(&recTx{inner: inner, rec: rec, thread: thread, index: index})
	})
	rec.Commit(thread)
}

// RunSTM executes the configured workload against alg over a fresh cell
// array and checks the recorded transactional history for opacity. Written
// values are unique across the run, so distinct serializations never
// coincide by value and the witness search is sharply constrained.
func RunSTM(alg stm.Algorithm, cfg STMConfig) (Result, []Txn) {
	cells := make([]*mem.Cell, cfg.Cells)
	initial := make([]uint64, cfg.Cells)
	index := make(map[*mem.Cell]int, cfg.Cells)
	for i := range cells {
		cells[i] = mem.NewCell(0)
		index[cells[i]] = i
	}
	rec := NewTxnRecorder(cfg.Threads)
	var wg sync.WaitGroup
	for th := 0; th < cfg.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			rng := newPRNG(cfg.Seed + int64(th)*7919)
			j := chaos.NewJitter(cfg.Seed^int64(th), cfg.JitterPermille)
			for i := 0; i < cfg.Txns; i++ {
				AtomicRecorded(alg, rec, th, index, func(tx stm.Tx) {
					for o := 0; o < cfg.OpsPerTx; o++ {
						c := cells[rng.intn(int64(cfg.Cells))]
						j.Point()
						if rng.intn(100) < int64(cfg.WritePct) {
							tx.Write(c, uint64(th)<<40|uint64(i)<<16|uint64(o)|1<<63)
						} else {
							tx.Read(c)
						}
					}
				})
			}
		}(th)
	}
	wg.Wait()
	txns := rec.History()
	return CheckOpacityBudget(MemSpec(initial), txns, cfg.budget()), txns
}

// StressSTM runs RunSTM and fails t on an opacity violation.
func StressSTM(t testing.TB, alg stm.Algorithm, cfg STMConfig) {
	t.Helper()
	cfg.Seed = seedOverride(t, cfg.Seed)
	if cfg.Name == "" {
		cfg.Name = alg.Name()
	}
	res, txns := RunSTM(alg, cfg)
	report(t, cfg.Name, cfg.Seed, res, nil, txns)
}
