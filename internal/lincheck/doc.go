// Package lincheck is the repository's history-based correctness oracle: it
// records concurrent operation histories and decides, after the fact,
// whether they satisfy the correctness criterion the paper's argument rests
// on — linearizability of the abstract data types (Herlihy & Wing) and
// opacity/strict serializability of the transactional runtimes (Guerraoui &
// Kapalka).
//
// The package has four layers:
//
//   - A low-overhead concurrent history Recorder: per-thread sharded op
//     logs stamped from one global logical clock, plus thin recording
//     wrappers (RecordedSet, RecordedMap, RecordedPQ) for the abstract
//     types every implementation in this repository exposes.
//
//   - A linearizability checker (Check/CheckBudget) implementing the
//     Wing–Gong search with Lowe's just-in-time caching and the
//     P-compositionality optimization: set and map histories are
//     partitioned per key and each sub-history is checked independently
//     against its sequential specification Model.
//
//   - An opacity/strict-serializability checker (CheckOpacity) for
//     transactional histories: a DFS over commit orders of the committed
//     transactions, constrained by real time, searching for a witness
//     order under which every transaction's recorded reads are legal —
//     including the reads of aborted attempts, which opacity requires to
//     have observed a consistent prefix too.
//
//   - A randomized schedule-stressing driver (StressSet, StressMap,
//     StressPQ, StressSTM): seeded PRNG, configurable thread count and
//     operation mix, preemption-point jitter via chaos.Jitter, feeding the
//     recorded history straight into the checkers and dumping failing
//     histories as replayable artifacts.
//
// Checking is NP-hard in general, so the checkers carry a step budget;
// exhausting it yields Inconclusive, never a false verdict. Violation is
// only reported when the search space was exhausted, and Ok only when a
// witness linearization (or commit order) was found.
package lincheck
