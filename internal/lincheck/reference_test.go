package lincheck

import (
	"sort"
	"sync"
)

// Reference implementations (coarse mutex around a sequential structure)
// used by the known-good stress tests, and a brute-force linearizability
// checker used by the fuzz target to cross-validate the WGL search on tiny
// histories.

type mutexSet struct {
	mu sync.Mutex
	m  map[int64]bool
}

func newMutexSet() *mutexSet { return &mutexSet{m: make(map[int64]bool)} }

func (s *mutexSet) Add(k int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m[k] {
		return false
	}
	s.m[k] = true
	return true
}

func (s *mutexSet) Remove(k int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.m[k] {
		return false
	}
	delete(s.m, k)
	return true
}

func (s *mutexSet) Contains(k int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[k]
}

type mutexMap struct {
	mu sync.Mutex
	m  map[int64]uint64
}

func newMutexMap() *mutexMap { return &mutexMap{m: make(map[int64]uint64)} }

func (m *mutexMap) Put(k int64, v uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, had := m.m[k]
	m.m[k] = v
	return !had
}

func (m *mutexMap) Get(k int64) (uint64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.m[k]
	return v, ok
}

func (m *mutexMap) Delete(k int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, had := m.m[k]
	delete(m.m, k)
	return had
}

type mutexPQ struct {
	mu   sync.Mutex
	keys []int64 // sorted ascending
}

func newMutexPQ() *mutexPQ { return &mutexPQ{} }

func (q *mutexPQ) Add(k int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	i := sort.Search(len(q.keys), func(i int) bool { return q.keys[i] >= k })
	q.keys = append(q.keys, 0)
	copy(q.keys[i+1:], q.keys[i:])
	q.keys[i] = k
}

func (q *mutexPQ) Min() (int64, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.keys) == 0 {
		return 0, false
	}
	return q.keys[0], true
}

func (q *mutexPQ) RemoveMin() (int64, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.keys) == 0 {
		return 0, false
	}
	k := q.keys[0]
	q.keys = q.keys[1:]
	return k, true
}

// bruteCheck decides linearizability by enumerating, per partition, every
// permutation that respects real-time order and testing it against the
// model. Exponential; callers keep histories at or below ~7 ops.
func bruteCheck(m Model, ops []Op) bool {
	if m.Partition != nil {
		for _, part := range m.Partition(ops) {
			if !bruteCheckPart(m, part) {
				return false
			}
		}
		return true
	}
	return bruteCheckPart(m, ops)
}

func bruteCheckPart(m Model, ops []Op) bool {
	n := len(ops)
	used := make([]bool, n)
	var rec func(state any, placed int, maxRet int64) bool
	rec = func(state any, placed int, maxRet int64) bool {
		if placed == n {
			return true
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			// Real-time: an op cannot linearize after one that had already
			// returned before it was invoked — i.e. every op whose return
			// precedes this op's invocation must already be placed.
			ok := true
			for j := 0; j < n; j++ {
				if !used[j] && j != i && ops[j].Ret < ops[i].Call {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			next, legal := m.Step(state, ops[i])
			if !legal {
				continue
			}
			used[i] = true
			if rec(next, placed+1, maxRet) {
				used[i] = false
				return true
			}
			used[i] = false
		}
		return false
	}
	return rec(m.Init(), 0, 0)
}
