package lincheck

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// DumpArtifact writes a failing history to a replayable text file and
// returns its path. The directory comes from LINCHECK_ARTIFACTS (the CI
// lincheck job sets it and uploads the directory on failure) and falls back
// to the system temp directory. Dumping is best effort: on any error the
// returned "path" carries the error text instead, so the caller's failure
// message still prints something useful.
func DumpArtifact(name string, seed int64, res Result, hist []Op, txns []Txn) string {
	dir := os.Getenv("LINCHECK_ARTIFACTS")
	if dir == "" {
		dir = os.TempDir()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "(artifact not written: " + err.Error() + ")"
	}
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, name)
	path := filepath.Join(dir, fmt.Sprintf("%s-seed%d.history", clean, seed))

	var sb strings.Builder
	fmt.Fprintf(&sb, "# lincheck failure: %s\n# seed: %d\n# verdict: %s\n# detail: %s\n# cost: %d steps\n",
		name, seed, res.Outcome, res.Detail, res.Cost)
	fmt.Fprintf(&sb, "# replay: LINCHECK_SEED=%d go test -run <the failing test> -count=1 <its package>\n\n", seed)
	if len(txns) > 0 {
		for i := range txns {
			t := &txns[i]
			fmt.Fprintf(&sb, "%s\n", t)
			for _, op := range t.Ops {
				fmt.Fprintf(&sb, "    %s\n", opBody(op))
			}
		}
	} else {
		for _, op := range hist {
			fmt.Fprintf(&sb, "%s\n", op)
		}
	}
	if len(res.Failed) > 0 && len(txns) == 0 {
		sb.WriteString("\n# minimal failing sub-history:\n")
		for _, op := range res.Failed {
			fmt.Fprintf(&sb, "# %s\n", op)
		}
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		return "(artifact not written: " + err.Error() + ")"
	}
	return path
}

// opBody renders an op without its thread/timestamp prefix (transaction
// dumps already carry those on the transaction line).
func opBody(o Op) string {
	s := o.String()
	if i := strings.Index(s, "] "); i >= 0 {
		return s[i+2:]
	}
	return s
}
