package lincheck

import (
	"sync"
	"testing"

	"repro/internal/chaos"
)

// RunTxnSetRO drives a read-mostly split workload for runtimes with a
// dedicated snapshot-reader path: even threads run the usual mixed
// transactions through atomic, odd threads run Contains-only transactions
// through atomicRO (the runtime's read-only entry point, e.g. a
// multi-version snapshot transaction). Both populations record into one
// transactional history, so the opacity check proves the snapshot path
// serializes against updater commits — a reader observing a half-applied or
// future state shows up as a violation. atomicRO must execute body exactly
// like atomic does per attempt; for never-abort snapshot runtimes that is
// a single attempt.
func RunTxnSetRO(cfg STMConfig, atomic func(thread int, body func(Set)), atomicRO func(thread int, body func(Set))) (Result, []Txn) {
	rec := NewTxnRecorder(cfg.Threads)
	var wg sync.WaitGroup
	for th := 0; th < cfg.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			rng := newPRNG(cfg.Seed + int64(th)*7919)
			j := chaos.NewJitter(cfg.Seed^int64(th), cfg.JitterPermille)
			readOnly := th%2 == 1
			for i := 0; i < cfg.Txns; i++ {
				body := func(view Set) {
					rec.BeginAttempt(th)
					rs := RecordedTxnSet{S: view, R: rec, Thread: th}
					for o := 0; o < cfg.OpsPerTx; o++ {
						key := rng.intn(int64(cfg.Cells))
						j.Point()
						switch p := rng.intn(100); {
						case readOnly:
							rs.Contains(key)
						case p < int64(cfg.WritePct)/2:
							rs.Add(key)
						case p < int64(cfg.WritePct):
							rs.Remove(key)
						default:
							rs.Contains(key)
						}
					}
				}
				if readOnly {
					atomicRO(th, body)
				} else {
					atomic(th, body)
				}
				rec.Commit(th)
			}
		}(th)
	}
	wg.Wait()
	txns := rec.History()
	return CheckOpacityBudget(SetTxnSpec(), txns, cfg.budget()), txns
}

// StressTxnSetRO runs RunTxnSetRO and fails t on an opacity violation.
func StressTxnSetRO(t testing.TB, cfg STMConfig, atomic func(thread int, body func(Set)), atomicRO func(thread int, body func(Set))) {
	t.Helper()
	cfg.Seed = seedOverride(t, cfg.Seed)
	res, txns := RunTxnSetRO(cfg, atomic, atomicRO)
	report(t, cfg.Name, cfg.Seed, res, nil, txns)
}
