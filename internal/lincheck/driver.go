package lincheck

import (
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/chaos"
)

// Config parameterizes one schedule-stressing run against an abstract data
// type. The zero value is not useful; start from DefaultConfig.
type Config struct {
	// Name labels artifacts and log lines (usually the implementation).
	Name string
	// Seed drives every random decision of the run. The same seed, config
	// and binary replay the same operation sequence per thread (the
	// interleaving itself still varies — that is the point of rechecking).
	Seed int64
	// Threads is the number of concurrent workers.
	Threads int
	// Ops is the number of operations per worker.
	Ops int
	// Keys is the key-range size; smaller ranges mean more contention.
	Keys int64
	// AddPct and RemovePct set the operation mix; the remainder are reads
	// (Contains / Get / Min).
	AddPct, RemovePct int
	// JitterPermille is the per-operation preemption probability fed to
	// chaos.NewJitter (0 disables schedule jitter).
	JitterPermille int
	// Budget bounds the checker's search steps (0 means DefaultBudget).
	Budget int64
}

// DefaultConfig is a contended mixed workload sized so a full stress run
// plus check completes in tens of milliseconds.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed: seed, Threads: 4, Ops: 400, Keys: 16,
		AddPct: 35, RemovePct: 35, JitterPermille: 30,
	}
}

// Scaled returns the config with the per-thread op count divided by n (at
// least 1); stress tests use it to shrink under -short.
func (c Config) Scaled(n int) Config {
	c.Ops = max(c.Ops/n, 1)
	return c
}

func (c Config) budget() int64 {
	if c.Budget > 0 {
		return c.Budget
	}
	return DefaultBudget
}

// prng is the driver's deterministic per-worker random source (splitmix64).
type prng struct{ state uint64 }

func newPRNG(seed int64) *prng {
	return &prng{state: uint64(seed)*0x9e3779b97f4a7c15 + 0x9e3779b97f4a7c15}
}

func (p *prng) next() uint64 {
	p.state += 0x9e3779b97f4a7c15
	return mix64(p.state)
}

func (p *prng) intn(n int64) int64 { return int64(p.next() % uint64(n)) }

// RunSet executes the configured workload against a fresh set from mk and
// checks the recorded history for linearizability. It returns the result
// and the history so callers (including mutation tests that expect a
// violation) can inspect both.
func RunSet(cfg Config, mk func() Set) (Result, []Op) {
	rec := NewRecorder(cfg.Threads)
	s := mk()
	var wg sync.WaitGroup
	for th := 0; th < cfg.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			rng := newPRNG(cfg.Seed + int64(th)*7919)
			j := chaos.NewJitter(cfg.Seed^int64(th), cfg.JitterPermille)
			rs := RecordedSet{S: s, R: rec, Thread: th}
			for i := 0; i < cfg.Ops; i++ {
				key := rng.intn(cfg.Keys)
				j.Point()
				switch p := rng.intn(100); {
				case p < int64(cfg.AddPct):
					rs.Add(key)
				case p < int64(cfg.AddPct+cfg.RemovePct):
					rs.Remove(key)
				default:
					rs.Contains(key)
				}
			}
		}(th)
	}
	wg.Wait()
	hist := rec.History()
	return CheckBudget(SetModel(), hist, cfg.budget()), hist
}

// RunMap is RunSet for maps; the read share of the mix issues Gets, and
// Puts store values unique across the whole run so stale reads cannot hide
// behind coincidentally equal values.
func RunMap(cfg Config, mk func() Map) (Result, []Op) {
	rec := NewRecorder(cfg.Threads)
	m := mk()
	var wg sync.WaitGroup
	for th := 0; th < cfg.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			rng := newPRNG(cfg.Seed + int64(th)*7919)
			j := chaos.NewJitter(cfg.Seed^int64(th), cfg.JitterPermille)
			rm := RecordedMap{M: m, R: rec, Thread: th}
			for i := 0; i < cfg.Ops; i++ {
				key := rng.intn(cfg.Keys)
				j.Point()
				switch p := rng.intn(100); {
				case p < int64(cfg.AddPct):
					rm.Put(key, uint64(th)<<32|uint64(i)|1<<63)
				case p < int64(cfg.AddPct+cfg.RemovePct):
					rm.Delete(key)
				default:
					rm.Get(key)
				}
			}
		}(th)
	}
	wg.Wait()
	hist := rec.History()
	return CheckBudget(MapModel(), hist, cfg.budget()), hist
}

// RunPQ is RunSet for priority queues. Added keys are unique across the
// whole run (random priority bits plus a disambiguating counter) so
// implementations that reject duplicate keys and those that accept them
// behave identically; Keys controls the priority range, i.e. how often
// concurrent adds race for the same minimum.
func RunPQ(cfg Config, mk func() PQ) (Result, []Op) {
	rec := NewRecorder(cfg.Threads)
	q := mk()
	var wg sync.WaitGroup
	for th := 0; th < cfg.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			rng := newPRNG(cfg.Seed + int64(th)*7919)
			j := chaos.NewJitter(cfg.Seed^int64(th), cfg.JitterPermille)
			rq := RecordedPQ{Q: q, R: rec, Thread: th}
			for i := 0; i < cfg.Ops; i++ {
				j.Point()
				switch p := rng.intn(100); {
				case p < int64(cfg.AddPct):
					// priority | per-thread unique low bits
					key := rng.intn(cfg.Keys)<<24 | int64(th)<<16 | int64(i)
					rq.Add(key)
				case p < int64(cfg.AddPct+cfg.RemovePct):
					rq.RemoveMin()
				default:
					rq.Min()
				}
			}
		}(th)
	}
	wg.Wait()
	hist := rec.History()
	return CheckBudget(PQModel(), hist, cfg.budget()), hist
}

// seedOverride lets a recorded failure be replayed without editing the
// test: LINCHECK_SEED=12345 go test -run TestLincheckLazyList ./internal/conc
func seedOverride(t testing.TB, seed int64) int64 {
	if env := os.Getenv("LINCHECK_SEED"); env != "" {
		if v, err := strconv.ParseInt(env, 10, 64); err == nil {
			t.Logf("lincheck: seed overridden by LINCHECK_SEED=%d", v)
			return v
		}
	}
	return seed
}

// report turns a Result into the test outcome: Violation fails the test
// after dumping the history artifact, Inconclusive logs (the run proved
// nothing either way), Ok is silent.
func report(t testing.TB, name string, seed int64, res Result, hist []Op, txns []Txn) {
	t.Helper()
	switch res.Outcome {
	case Violation:
		path := DumpArtifact(name, seed, res, hist, txns)
		t.Fatalf("lincheck: %s violates its specification (seed %d): %s\nfull history: %s",
			name, seed, res.Detail, path)
	case Inconclusive:
		t.Logf("lincheck: %s check inconclusive after %d steps (seed %d); raise Budget to decide", name, res.Cost, seed)
	}
}

// StressSet runs RunSet and fails t on a violation.
func StressSet(t testing.TB, cfg Config, mk func() Set) {
	t.Helper()
	cfg.Seed = seedOverride(t, cfg.Seed)
	res, hist := RunSet(cfg, mk)
	report(t, cfg.Name, cfg.Seed, res, hist, nil)
}

// StressMap runs RunMap and fails t on a violation.
func StressMap(t testing.TB, cfg Config, mk func() Map) {
	t.Helper()
	cfg.Seed = seedOverride(t, cfg.Seed)
	res, hist := RunMap(cfg, mk)
	report(t, cfg.Name, cfg.Seed, res, hist, nil)
}

// StressPQ runs RunPQ and fails t on a violation.
func StressPQ(t testing.TB, cfg Config, mk func() PQ) {
	t.Helper()
	cfg.Seed = seedOverride(t, cfg.Seed)
	res, hist := RunPQ(cfg, mk)
	report(t, cfg.Name, cfg.Seed, res, hist, nil)
}
