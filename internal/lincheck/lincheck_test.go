package lincheck

import (
	"testing"
)

// mkOp builds a history op with explicit timestamps.
func mkOp(thread int, k Kind, key int64, ok bool, call, ret int64) Op {
	return Op{Thread: thread, Kind: k, Key: key, Ok: ok, Call: call, Ret: ret}
}

func TestSetSequentialLegal(t *testing.T) {
	hist := []Op{
		mkOp(0, Add, 1, true, 1, 2),
		mkOp(0, Contains, 1, true, 3, 4),
		mkOp(0, Add, 1, false, 5, 6),
		mkOp(0, Remove, 1, true, 7, 8),
		mkOp(0, Remove, 1, false, 9, 10),
		mkOp(0, Contains, 1, false, 11, 12),
	}
	if res := Check(SetModel(), hist); res.Outcome != Ok {
		t.Fatalf("sequential legal history rejected: %+v", res)
	}
}

func TestSetSequentialIllegal(t *testing.T) {
	// Add succeeds twice with no Remove between: no order explains it.
	hist := []Op{
		mkOp(0, Add, 1, true, 1, 2),
		mkOp(0, Add, 1, true, 3, 4),
	}
	res := Check(SetModel(), hist)
	if res.Outcome != Violation {
		t.Fatalf("double successful Add accepted: %+v", res)
	}
	if len(res.Failed) != 2 {
		t.Fatalf("Failed sub-history has %d ops, want 2", len(res.Failed))
	}
}

func TestSetConcurrentReorderingAccepted(t *testing.T) {
	// Two overlapping Adds where the one that *returned first* failed: only
	// legal if the other is linearized before it, which overlap permits.
	hist := []Op{
		mkOp(0, Add, 1, false, 1, 4),
		mkOp(1, Add, 1, true, 2, 3),
	}
	if res := Check(SetModel(), hist); res.Outcome != Ok {
		t.Fatalf("legal concurrent reordering rejected: %+v", res)
	}
}

func TestSetRealTimeOrderEnforced(t *testing.T) {
	// Same returns, but strictly sequential: the failed Add completed
	// before the successful one was even invoked, so no witness exists.
	hist := []Op{
		mkOp(0, Add, 1, false, 1, 2),
		mkOp(1, Add, 1, true, 3, 4),
	}
	if res := Check(SetModel(), hist); res.Outcome != Violation {
		t.Fatalf("real-time order violation accepted: %+v", res)
	}
}

func TestSetStaleReadCaught(t *testing.T) {
	// A Contains that missed a committed Add (lost-update symptom).
	hist := []Op{
		mkOp(0, Add, 7, true, 1, 2),
		mkOp(1, Contains, 7, false, 3, 4),
	}
	if res := Check(SetModel(), hist); res.Outcome != Violation {
		t.Fatalf("stale read accepted: %+v", res)
	}
}

func TestPartitioningIsolatesKeys(t *testing.T) {
	// An illegal history on key 2 must be caught even when drowned in legal
	// traffic on other keys; and the reported sub-history is just key 2.
	hist := []Op{
		mkOp(0, Add, 1, true, 1, 2),
		mkOp(0, Add, 2, true, 3, 4),
		mkOp(1, Add, 3, true, 5, 6),
		mkOp(1, Add, 2, true, 7, 8), // illegal second Add
		mkOp(0, Remove, 1, true, 9, 10),
		mkOp(1, Contains, 3, true, 11, 12),
	}
	res := Check(SetModel(), hist)
	if res.Outcome != Violation {
		t.Fatalf("per-key violation not found: %+v", res)
	}
	for _, op := range res.Failed {
		if op.Key != 2 {
			t.Fatalf("failed partition contains key %d, want only key 2", op.Key)
		}
	}
}

func TestMapModelValues(t *testing.T) {
	legal := []Op{
		{Thread: 0, Kind: Put, Key: 1, In: 10, Ok: true, Call: 1, Ret: 2},
		{Thread: 0, Kind: Get, Key: 1, Out: 10, Ok: true, Call: 3, Ret: 4},
		{Thread: 0, Kind: Put, Key: 1, In: 20, Ok: false, Call: 5, Ret: 6},
		{Thread: 0, Kind: Get, Key: 1, Out: 20, Ok: true, Call: 7, Ret: 8},
		{Thread: 0, Kind: Delete, Key: 1, Ok: true, Call: 9, Ret: 10},
		{Thread: 0, Kind: Get, Key: 1, Ok: false, Call: 11, Ret: 12},
	}
	if res := Check(MapModel(), legal); res.Outcome != Ok {
		t.Fatalf("legal map history rejected: %+v", res)
	}
	stale := []Op{
		{Thread: 0, Kind: Put, Key: 1, In: 10, Ok: true, Call: 1, Ret: 2},
		{Thread: 0, Kind: Put, Key: 1, In: 20, Ok: false, Call: 3, Ret: 4},
		{Thread: 1, Kind: Get, Key: 1, Out: 10, Ok: true, Call: 5, Ret: 6}, // stale value
	}
	if res := Check(MapModel(), stale); res.Outcome != Violation {
		t.Fatalf("stale map read accepted: %+v", res)
	}
}

func TestPQModel(t *testing.T) {
	legal := []Op{
		{Thread: 0, Kind: Add, Key: 5, Call: 1, Ret: 2},
		{Thread: 0, Kind: Add, Key: 3, Call: 3, Ret: 4},
		{Thread: 0, Kind: Min, Out: 3, Ok: true, Call: 5, Ret: 6},
		{Thread: 0, Kind: RemoveMin, Out: 3, Ok: true, Call: 7, Ret: 8},
		{Thread: 0, Kind: RemoveMin, Out: 5, Ok: true, Call: 9, Ret: 10},
		{Thread: 0, Kind: RemoveMin, Ok: false, Call: 11, Ret: 12},
	}
	if res := Check(PQModel(), legal); res.Outcome != Ok {
		t.Fatalf("legal pq history rejected: %+v", res)
	}
	// RemoveMin returns 5 while 3 is queued and no overlap allows it.
	illegal := []Op{
		{Thread: 0, Kind: Add, Key: 5, Call: 1, Ret: 2},
		{Thread: 0, Kind: Add, Key: 3, Call: 3, Ret: 4},
		{Thread: 0, Kind: RemoveMin, Out: 5, Ok: true, Call: 5, Ret: 6},
	}
	if res := Check(PQModel(), illegal); res.Outcome != Violation {
		t.Fatalf("non-minimal RemoveMin accepted: %+v", res)
	}
	// With overlap, Add(3) may linearize after the RemoveMin: accepted.
	concurrent := []Op{
		{Thread: 0, Kind: Add, Key: 5, Call: 1, Ret: 2},
		{Thread: 1, Kind: Add, Key: 3, Call: 3, Ret: 7},
		{Thread: 0, Kind: RemoveMin, Out: 5, Ok: true, Call: 4, Ret: 6},
	}
	if res := Check(PQModel(), concurrent); res.Outcome != Ok {
		t.Fatalf("legal concurrent pq history rejected: %+v", res)
	}
}

func TestBudgetYieldsInconclusive(t *testing.T) {
	hist := []Op{
		mkOp(0, Add, 1, true, 1, 2),
		mkOp(0, Remove, 1, true, 3, 4),
		mkOp(0, Add, 1, true, 5, 6),
	}
	res := CheckBudget(SetModel(), hist, 2)
	if res.Outcome != Inconclusive {
		t.Fatalf("tiny budget should be inconclusive, got %+v", res)
	}
}

func TestRecorderHistoryOrdering(t *testing.T) {
	rec := NewRecorder(2)
	rec.Invoke(0, Add, 1, 0)
	rec.Invoke(1, Contains, 1, 0) // overlaps with thread 0's Add
	rec.Return(0, 0, true)
	rec.Return(1, 0, false)
	hist := rec.History()
	if len(hist) != 2 {
		t.Fatalf("history has %d ops, want 2", len(hist))
	}
	if hist[0].Kind != Add || hist[1].Kind != Contains {
		t.Fatalf("history not sorted by invocation: %v", hist)
	}
	if hist[0].Ret < hist[1].Call {
		t.Fatal("ops should overlap in logical time")
	}
	// Overlapping Add(true) / Contains(false) is linearizable.
	if res := Check(SetModel(), hist); res.Outcome != Ok {
		t.Fatalf("recorded overlap rejected: %+v", res)
	}
}

// TestStressKnownGoodSet runs the full driver path against a trivially
// correct mutex-guarded set, checking the end-to-end plumbing accepts it.
func TestStressKnownGoodSet(t *testing.T) {
	cfg := DefaultConfig(42)
	cfg.Name = "mutex-set"
	if testing.Short() {
		cfg = cfg.Scaled(4)
	}
	StressSet(t, cfg, func() Set { return newMutexSet() })
}

func TestStressKnownGoodMap(t *testing.T) {
	cfg := DefaultConfig(43)
	cfg.Name = "mutex-map"
	if testing.Short() {
		cfg = cfg.Scaled(4)
	}
	StressMap(t, cfg, func() Map { return newMutexMap() })
}

func TestStressKnownGoodPQ(t *testing.T) {
	cfg := DefaultConfig(44)
	cfg.Name = "mutex-pq"
	cfg.Threads, cfg.Ops = 3, 120 // pq histories are unpartitioned: keep small
	if testing.Short() {
		cfg = cfg.Scaled(2)
	}
	StressPQ(t, cfg, func() PQ { return newMutexPQ() })
}
