package lincheck

import (
	"testing"
)

// FuzzCheckerVsBruteForce cross-validates the WGL search against a
// permutation-enumerating reference on small random set histories: the two
// must agree on every input. This is the "short fuzz smoke" the CI lincheck
// job runs.
func FuzzCheckerVsBruteForce(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x9a, 0x11, 0xfe})
	f.Add([]byte{0xff, 0x00, 0x7c, 0x33})
	f.Add([]byte{0x10, 0x20, 0x30, 0x40, 0x50, 0x60})
	f.Fuzz(func(t *testing.T, data []byte) {
		hist := decodeHistory(data)
		if len(hist) == 0 {
			return
		}
		res := CheckBudget(SetModel(), hist, 1<<30)
		if res.Outcome == Inconclusive {
			t.Fatalf("budget exhausted on a %d-op history", len(hist))
		}
		want := bruteCheck(SetModel(), hist)
		if (res.Outcome == Ok) != want {
			t.Fatalf("checker=%v brute=%v on history %v", res.Outcome, want, hist)
		}
	})
}

// decodeHistory turns fuzz bytes into a well-formed tiny set history: at
// most 5 ops over 2 keys and 2 threads, with distinct timestamps drawn from
// a byte-driven shuffle so call/return intervals overlap arbitrarily.
func decodeHistory(data []byte) []Op {
	n := len(data) / 2
	if n > 5 {
		n = 5
	}
	if n == 0 {
		return nil
	}
	// Assign each of the 2n timestamps a distinct value via a seeded
	// Fisher–Yates over [1, 2n].
	times := make([]int64, 2*n)
	for i := range times {
		times[i] = int64(i + 1)
	}
	seed := uint64(0x9e3779b97f4a7c15)
	for _, b := range data {
		seed = mix64(seed ^ uint64(b))
	}
	for i := len(times) - 1; i > 0; i-- {
		seed = mix64(seed)
		j := int(seed % uint64(i+1))
		times[i], times[j] = times[j], times[i]
	}
	ops := make([]Op, n)
	for i := 0; i < n; i++ {
		b := data[2*i]
		kinds := [3]Kind{Add, Remove, Contains}
		a, r := times[2*i], times[2*i+1]
		if a > r {
			a, r = r, a
		}
		ops[i] = Op{
			Thread: int(b>>7) & 1,
			Kind:   kinds[int(b)%3],
			Key:    int64(b>>2) & 1,
			Ok:     data[2*i+1]&1 == 1,
			Call:   a,
			Ret:    r,
		}
	}
	return ops
}
