package lincheck

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Kind identifies one abstract-type operation in a recorded history. One
// vocabulary covers every abstract type checked here (set, map, priority
// queue, transactional memory) so histories, models and dumps share code.
type Kind uint8

const (
	// Set operations.
	Add Kind = iota
	Remove
	Contains
	// Map operations.
	Put
	Get
	Delete
	// Priority-queue operations.
	Min
	RemoveMin
	// Transactional-memory operations (opacity histories only).
	Read
	Write
)

var kindNames = [...]string{
	Add: "Add", Remove: "Remove", Contains: "Contains",
	Put: "Put", Get: "Get", Delete: "Delete",
	Min: "Min", RemoveMin: "RemoveMin",
	Read: "Read", Write: "Write",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Op is one completed operation: its arguments, its observed result, and
// the logical timestamps of its invocation and response. Timestamps come
// from a single atomic counter, so they totally order all invocation and
// response events of a run.
type Op struct {
	Thread int
	Kind   Kind
	Key    int64  // set/map/pq key, or cell index for Read/Write
	In     uint64 // input value (Put, Write)
	Out    uint64 // output value (Get, Min, RemoveMin, Read)
	Ok     bool   // boolean result
	Call   int64  // invocation timestamp
	Ret    int64  // response timestamp (0 inside transactional Txn records)
}

// String renders the op the way history dumps and failure messages show it,
// e.g. "t2 [17,24] Add(5) -> true".
func (o Op) String() string {
	var call string
	switch o.Kind {
	case Put:
		call = fmt.Sprintf("Put(%d,%d) -> %v", o.Key, o.In, o.Ok)
	case Write:
		call = fmt.Sprintf("Write(c%d,%d)", o.Key, o.In)
	case Get:
		call = fmt.Sprintf("Get(%d) -> (%d,%v)", o.Key, o.Out, o.Ok)
	case Read:
		call = fmt.Sprintf("Read(c%d) -> %d", o.Key, o.Out)
	case Min, RemoveMin:
		call = fmt.Sprintf("%s() -> (%d,%v)", o.Kind, int64(o.Out), o.Ok)
	default:
		call = fmt.Sprintf("%s(%d) -> %v", o.Kind, o.Key, o.Ok)
	}
	return fmt.Sprintf("t%d [%d,%d] %s", o.Thread, o.Call, o.Ret, call)
}

// histShard is one thread's private op log, padded so logs on adjacent
// threads never share a cache line.
type histShard struct {
	ops     []Op
	pending Op
	open    bool
	_       [64]byte
}

// Recorder collects a concurrent operation history with low overhead: each
// thread appends to its own shard and the only shared write is the logical
// clock increment at invocation and response.
type Recorder struct {
	clock  atomic.Int64
	shards []histShard
}

// NewRecorder creates a recorder for the given number of threads. Thread
// ids passed to Invoke/Return must be in [0, threads).
func NewRecorder(threads int) *Recorder {
	return &Recorder{shards: make([]histShard, threads)}
}

// Now draws the next logical timestamp.
func (r *Recorder) Now() int64 { return r.clock.Add(1) }

// Invoke records the invocation of an operation on thread. Each thread has
// at most one operation in flight; Return completes it.
func (r *Recorder) Invoke(thread int, k Kind, key int64, in uint64) {
	sh := &r.shards[thread]
	if sh.open {
		panic("lincheck: Invoke with an operation already in flight")
	}
	sh.pending = Op{Thread: thread, Kind: k, Key: key, In: in, Call: r.Now()}
	sh.open = true
}

// Return records the response of the thread's in-flight operation.
func (r *Recorder) Return(thread int, out uint64, ok bool) {
	sh := &r.shards[thread]
	if !sh.open {
		panic("lincheck: Return without a pending Invoke")
	}
	sh.pending.Out = out
	sh.pending.Ok = ok
	sh.pending.Ret = r.Now()
	sh.ops = append(sh.ops, sh.pending)
	sh.open = false
}

// History merges the per-thread logs into one history sorted by invocation
// time. It must only be called after all recording threads have finished.
func (r *Recorder) History() []Op {
	var out []Op
	for i := range r.shards {
		out = append(out, r.shards[i].ops...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Call < out[j].Call })
	return out
}

// Set is the abstract set interface the recording wrapper and stress driver
// speak. Adapters for every implementation in the repository live next to
// their packages' tests.
type Set interface {
	Add(key int64) bool
	Remove(key int64) bool
	Contains(key int64) bool
}

// Map is the abstract map interface (int64 keys, uint64 values). Put
// returns true when the key was absent (inserted), false on update.
type Map interface {
	Put(key int64, val uint64) bool
	Get(key int64) (uint64, bool)
	Delete(key int64) bool
}

// PQ is the abstract min-priority-queue interface. Implementations whose
// Add reports duplicate rejection drop the boolean in their adapter; the
// stress driver only ever adds distinct keys, where all variants agree.
type PQ interface {
	Add(key int64)
	Min() (int64, bool)
	RemoveMin() (int64, bool)
}

// RecordedSet runs every operation through the recorder on behalf of one
// thread. It is a thin wrapper: one Invoke, the real call, one Return.
type RecordedSet struct {
	S      Set
	R      *Recorder
	Thread int
}

func (s RecordedSet) Add(key int64) bool {
	s.R.Invoke(s.Thread, Add, key, 0)
	ok := s.S.Add(key)
	s.R.Return(s.Thread, 0, ok)
	return ok
}

func (s RecordedSet) Remove(key int64) bool {
	s.R.Invoke(s.Thread, Remove, key, 0)
	ok := s.S.Remove(key)
	s.R.Return(s.Thread, 0, ok)
	return ok
}

func (s RecordedSet) Contains(key int64) bool {
	s.R.Invoke(s.Thread, Contains, key, 0)
	ok := s.S.Contains(key)
	s.R.Return(s.Thread, 0, ok)
	return ok
}

// RecordedMap records map operations on behalf of one thread.
type RecordedMap struct {
	M      Map
	R      *Recorder
	Thread int
}

func (m RecordedMap) Put(key int64, val uint64) bool {
	m.R.Invoke(m.Thread, Put, key, val)
	ok := m.M.Put(key, val)
	m.R.Return(m.Thread, 0, ok)
	return ok
}

func (m RecordedMap) Get(key int64) (uint64, bool) {
	m.R.Invoke(m.Thread, Get, key, 0)
	v, ok := m.M.Get(key)
	m.R.Return(m.Thread, v, ok)
	return v, ok
}

func (m RecordedMap) Delete(key int64) bool {
	m.R.Invoke(m.Thread, Delete, key, 0)
	ok := m.M.Delete(key)
	m.R.Return(m.Thread, 0, ok)
	return ok
}

// RecordedPQ records priority-queue operations on behalf of one thread.
type RecordedPQ struct {
	Q      PQ
	R      *Recorder
	Thread int
}

func (q RecordedPQ) Add(key int64) {
	q.R.Invoke(q.Thread, Add, key, 0)
	q.Q.Add(key)
	q.R.Return(q.Thread, 0, true)
}

func (q RecordedPQ) Min() (int64, bool) {
	q.R.Invoke(q.Thread, Min, 0, 0)
	k, ok := q.Q.Min()
	q.R.Return(q.Thread, uint64(k), ok)
	return k, ok
}

func (q RecordedPQ) RemoveMin() (int64, bool) {
	q.R.Invoke(q.Thread, RemoveMin, 0, 0)
	k, ok := q.Q.RemoveMin()
	q.R.Return(q.Thread, uint64(k), ok)
	return k, ok
}
