package lincheck

import "sort"

// Wing–Gong linearizability search with Lowe's caching, operating on one
// partition at a time (P-compositionality). The algorithm walks the events
// of the history in timestamp order, provisionally linearizing any pending
// operation whose effect is legal, and backtracks when it reaches the
// response of an operation it could not linearize. A memo table of
// (linearized-set, state) pairs prunes re-exploration.

// Outcome classifies a check.
type Outcome int

const (
	// Ok: a witness linearization (or commit order) was found.
	Ok Outcome = iota
	// Violation: the search space was exhausted without a witness.
	Violation
	// Inconclusive: the step budget ran out before either verdict.
	Inconclusive
)

func (o Outcome) String() string {
	switch o {
	case Ok:
		return "ok"
	case Violation:
		return "violation"
	default:
		return "inconclusive"
	}
}

// Result reports a check's verdict and diagnostics.
type Result struct {
	Outcome Outcome
	// Failed holds the sub-history that admitted no witness (Violation).
	Failed []Op
	// Detail is a one-line human explanation of a Violation.
	Detail string
	// Witness, for opacity checks, is the found commit order (txn IDs).
	Witness []int
	// Cost is the number of search steps spent across all partitions.
	Cost int64
}

// DefaultBudget is the default search-step budget for one check.
const DefaultBudget = 4 << 20

// Check decides whether hist is linearizable with respect to m, using the
// default step budget.
func Check(m Model, hist []Op) Result { return CheckBudget(m, hist, DefaultBudget) }

// CheckBudget is Check with an explicit search-step budget shared across
// all partitions. Exhausting it yields Inconclusive, never a wrong verdict.
func CheckBudget(m Model, hist []Op, budget int64) Result {
	parts := [][]Op{hist}
	if m.Partition != nil {
		parts = m.Partition(hist)
	}
	res := Result{Outcome: Ok}
	remaining := budget
	for _, part := range parts {
		ok, spent := checkPartition(m, part, remaining)
		res.Cost += spent
		remaining -= spent
		switch {
		case ok == partViolation:
			res.Outcome = Violation
			res.Failed = part
			res.Detail = "no linearization of this sub-history satisfies the " + m.Name + " specification"
			return res
		case ok == partInconclusive:
			res.Outcome = Inconclusive
			res.Detail = "search budget exhausted"
			return res
		}
	}
	return res
}

type partVerdict int

const (
	partOk partVerdict = iota
	partViolation
	partInconclusive
)

// event is one node of the doubly-linked event list: an invocation (with
// match pointing at its response) or a response (match nil).
type event struct {
	op         int // index into the partition's ops
	match      *event
	prev, next *event
}

// lift removes a linearized operation's invocation and response from the
// event list.
func lift(e *event) {
	e.prev.next = e.next
	e.next.prev = e.prev
	m := e.match
	m.prev.next = m.next
	m.next.prev = m.prev
}

// unlift reverses lift during backtracking.
func unlift(e *event) {
	m := e.match
	m.prev.next = m
	m.next.prev = m
	e.prev.next = e
	e.next.prev = e
}

// bitset is a fixed-size bit vector over op indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)   { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int) { b[i/64] &^= 1 << (i % 64) }

func (b bitset) hash() uint64 {
	h := uint64(1469598103934665603)
	for _, w := range b {
		h = mix64(h ^ w)
	}
	return h
}

func (b bitset) equal(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

// cacheEntry is one memoized (linearized-set, state) configuration.
type cacheEntry struct {
	lin   bitset
	state any
}

// frame is one provisional linearization on the backtracking stack.
type frame struct {
	entry *event
	state any
}

// checkPartition runs the WGL search on one partition. ops must be a
// complete history (every op has Call and Ret set).
func checkPartition(m Model, ops []Op, budget int64) (partVerdict, int64) {
	n := len(ops)
	if n == 0 {
		return partOk, 0
	}
	// Build the event list in timestamp order. Timestamps are unique (one
	// atomic counter), so a plain sort on the combined event set suffices.
	type rawEvent struct {
		time   int64
		op     int
		invoke bool
	}
	raw := make([]rawEvent, 0, 2*n)
	for i, op := range ops {
		raw = append(raw, rawEvent{op.Call, i, true}, rawEvent{op.Ret, i, false})
	}
	sort.Slice(raw, func(i, j int) bool { return raw[i].time < raw[j].time })

	head := &event{op: -1}
	tail := &event{op: -1}
	head.next, tail.prev = tail, head
	returns := make([]*event, n)
	at := head
	for _, re := range raw {
		e := &event{op: re.op}
		e.prev, e.next = at, tail
		at.next, tail.prev = e, e
		at = e
		if re.invoke {
			// match is fixed up when the response is linked.
		} else {
			returns[re.op] = e
		}
	}
	for e := head.next; e != tail; e = e.next {
		if returns[e.op] != e { // invocation node
			e.match = returns[e.op]
		}
	}

	state := m.Init()
	linearized := newBitset(n)
	cache := make(map[uint64][]cacheEntry)
	var stack []frame
	var spent int64

	cacheSeen := func(lin bitset, st any) bool {
		key := lin.hash() ^ m.Hash(st)
		for _, ce := range cache[key] {
			if ce.lin.equal(lin) && m.Equal(ce.state, st) {
				return true
			}
		}
		cache[key] = append(cache[key], cacheEntry{lin.clone(), st})
		return false
	}

	entry := head.next
	for head.next != tail {
		if spent++; spent > budget {
			return partInconclusive, spent
		}
		if entry.match != nil {
			// Invocation: try to linearize this op here.
			next, legal := m.Step(state, ops[entry.op])
			if legal {
				linearized.set(entry.op)
				fresh := !cacheSeen(linearized, next)
				if fresh {
					stack = append(stack, frame{entry, state})
					state = next
					lift(entry)
					entry = head.next
					continue
				}
				linearized.clear(entry.op)
			}
			entry = entry.next
			continue
		}
		// Response of an op we could not linearize: backtrack.
		if len(stack) == 0 {
			return partViolation, spent
		}
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		entry, state = f.entry, f.state
		linearized.clear(entry.op)
		unlift(entry)
		entry = entry.next
	}
	return partOk, spent
}
