package lincheck

import "sort"

// Model is a sequential specification of an abstract data type. The checker
// searches for an order of the recorded operations under which every Step
// is legal.
//
// States are treated as immutable values: Step must not modify its input
// state, and the returned state must be safe to retain. Hash and Equal let
// the checker memoize (bitset-of-linearized-ops, state) pairs.
type Model struct {
	Name string
	// Init returns the initial (empty) state.
	Init func() any
	// Step applies op to state, returning the successor state and whether
	// the op's recorded result is legal in that state.
	Step func(state any, op Op) (any, bool)
	// Partition splits a history into independently-checkable
	// sub-histories (P-compositionality). Nil means no partitioning.
	Partition func(ops []Op) [][]Op
	// Hash fingerprints a state for the memo table.
	Hash func(state any) uint64
	// Equal reports whether two states are identical.
	Equal func(a, b any) bool
}

// PartitionByKey splits a history into one sub-history per key, preserving
// the original order within each. Sets and maps are products of independent
// per-key objects, so a history is linearizable iff each per-key
// sub-history is — shrinking the search from one large problem to many
// trivial ones.
func PartitionByKey(ops []Op) [][]Op {
	byKey := make(map[int64][]Op)
	var keys []int64
	for _, op := range ops {
		if _, seen := byKey[op.Key]; !seen {
			keys = append(keys, op.Key)
		}
		byKey[op.Key] = append(byKey[op.Key], op)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([][]Op, 0, len(keys))
	for _, k := range keys {
		out = append(out, byKey[k])
	}
	return out
}

// SetModel is the sequential specification of an int64 set, partitioned per
// key: the state of one partition is a single presence bit.
func SetModel() Model {
	return Model{
		Name: "set",
		Init: func() any { return false },
		Step: func(state any, op Op) (any, bool) {
			present := state.(bool)
			switch op.Kind {
			case Add:
				return true, op.Ok == !present
			case Remove:
				return false, op.Ok == present
			case Contains:
				return present, op.Ok == present
			}
			return state, false
		},
		Partition: PartitionByKey,
		Hash: func(state any) uint64 {
			if state.(bool) {
				return 1
			}
			return 0
		},
		Equal: func(a, b any) bool { return a.(bool) == b.(bool) },
	}
}

// mapCell is the per-key state of the map model.
type mapCell struct {
	present bool
	val     uint64
}

// MapModel is the sequential specification of an int64→uint64 map,
// partitioned per key. Put reports insertion (true) vs update (false),
// matching otb.Map and stmds.HashMap.
func MapModel() Model {
	return Model{
		Name: "map",
		Init: func() any { return mapCell{} },
		Step: func(state any, op Op) (any, bool) {
			c := state.(mapCell)
			switch op.Kind {
			case Put:
				return mapCell{present: true, val: op.In}, op.Ok == !c.present
			case Get:
				if c.present {
					return c, op.Ok && op.Out == c.val
				}
				return c, !op.Ok
			case Delete:
				return mapCell{}, op.Ok == c.present
			}
			return state, false
		},
		Partition: PartitionByKey,
		Hash: func(state any) uint64 {
			c := state.(mapCell)
			if !c.present {
				return 0
			}
			return mix64(c.val | 1<<63)
		},
		Equal: func(a, b any) bool { return a.(mapCell) == b.(mapCell) },
	}
}

// PQModel is the sequential specification of a min-priority queue. Priority
// queues do not decompose per key (RemoveMin orders all keys against each
// other), so the model carries the full sorted multiset and histories are
// checked unpartitioned — keep them small.
func PQModel() Model {
	return Model{
		Name: "pq",
		Init: func() any { return []int64(nil) },
		Step: func(state any, op Op) (any, bool) {
			keys := state.([]int64)
			switch op.Kind {
			case Add:
				i := sort.Search(len(keys), func(i int) bool { return keys[i] >= op.Key })
				next := make([]int64, 0, len(keys)+1)
				next = append(next, keys[:i]...)
				next = append(next, op.Key)
				next = append(next, keys[i:]...)
				return next, true
			case Min:
				if len(keys) == 0 {
					return keys, !op.Ok
				}
				return keys, op.Ok && int64(op.Out) == keys[0]
			case RemoveMin:
				if len(keys) == 0 {
					return keys, !op.Ok
				}
				return keys[1:], op.Ok && int64(op.Out) == keys[0]
			}
			return state, false
		},
		Hash: func(state any) uint64 {
			h := uint64(1469598103934665603)
			for _, k := range state.([]int64) {
				h = mix64(h ^ uint64(k))
			}
			return h
		},
		Equal: func(a, b any) bool {
			ka, kb := a.([]int64), b.([]int64)
			if len(ka) != len(kb) {
				return false
			}
			for i := range ka {
				if ka[i] != kb[i] {
					return false
				}
			}
			return true
		},
	}
}

// mix64 is the splitmix64 finalizer, used as the package's hash mixer and
// as the driver PRNG's output function.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
