package lincheck

import "testing"

// mkTxn builds a transaction record with explicit timestamps.
func mkTxn(id, thread int, begin, end int64, committed bool, ops ...Op) Txn {
	return Txn{ID: id, Thread: thread, Begin: begin, End: end, Committed: committed, Ops: ops}
}

func rd(cell int64, saw uint64) Op { return Op{Kind: Read, Key: cell, Out: saw} }
func wr(cell int64, v uint64) Op   { return Op{Kind: Write, Key: cell, In: v} }

func TestOpacitySequentialWitness(t *testing.T) {
	txns := []Txn{
		mkTxn(1, 0, 1, 2, true, wr(0, 1), wr(1, 1)),
		mkTxn(2, 1, 3, 4, true, rd(0, 1), rd(1, 1)),
	}
	res := CheckOpacity(MemSpec([]uint64{0, 0}), txns)
	if res.Outcome != Ok {
		t.Fatalf("consistent history rejected: %+v", res)
	}
	if len(res.Witness) != 2 || res.Witness[0] != 1 || res.Witness[1] != 2 {
		t.Fatalf("witness = %v, want [1 2]", res.Witness)
	}
}

func TestOpacityTornReadCaught(t *testing.T) {
	// The reader observed x from before the writer and y from after: no
	// commit order explains the snapshot.
	txns := []Txn{
		mkTxn(1, 0, 1, 6, true, wr(0, 1), wr(1, 1)),
		mkTxn(2, 1, 2, 5, true, rd(0, 0), rd(1, 1)),
	}
	res := CheckOpacity(MemSpec([]uint64{0, 0}), txns)
	if res.Outcome != Violation {
		t.Fatalf("torn read accepted: %+v", res)
	}
}

func TestOpacityRealTimeEnforced(t *testing.T) {
	// Reader starts strictly after the writer committed but still saw the
	// old value: serializable (reader first), yet not strictly so.
	txns := []Txn{
		mkTxn(1, 0, 1, 2, true, wr(0, 1)),
		mkTxn(2, 1, 3, 4, true, rd(0, 0)),
	}
	if res := CheckOpacity(MemSpec([]uint64{0}), txns); res.Outcome != Violation {
		t.Fatalf("stale read across real-time gap accepted: %+v", res)
	}
	// The same values with overlapping lifetimes are fine: the reader may
	// serialize first.
	overlapped := []Txn{
		mkTxn(1, 0, 1, 4, true, wr(0, 1)),
		mkTxn(2, 1, 2, 5, true, rd(0, 0)),
	}
	if res := CheckOpacity(MemSpec([]uint64{0}), overlapped); res.Outcome != Ok {
		t.Fatalf("legal overlapped serialization rejected: %+v", res)
	}
}

func TestOpacityReadOwnWrites(t *testing.T) {
	txns := []Txn{
		mkTxn(1, 0, 1, 2, true, wr(0, 7), rd(0, 7)),
	}
	if res := CheckOpacity(MemSpec([]uint64{0}), txns); res.Outcome != Ok {
		t.Fatalf("read-own-write rejected: %+v", res)
	}
}

func TestOpacityAbortedAttemptMustBeConsistent(t *testing.T) {
	// The aborted attempt saw a torn snapshot. Strict serializability of
	// the committed transactions holds, but opacity does not.
	txns := []Txn{
		mkTxn(1, 0, 1, 6, true, wr(0, 1), wr(1, 1)),
		mkTxn(2, 1, 2, 5, false, rd(0, 0), rd(1, 1)),
	}
	res := CheckOpacity(MemSpec([]uint64{0, 0}), txns)
	if res.Outcome != Violation {
		t.Fatalf("torn aborted read accepted: %+v", res)
	}
	// A consistent aborted attempt (saw the pre-state) passes.
	fine := []Txn{
		mkTxn(1, 0, 1, 6, true, wr(0, 1), wr(1, 1)),
		mkTxn(2, 1, 2, 5, false, rd(0, 0), rd(1, 0)),
	}
	if res := CheckOpacity(MemSpec([]uint64{0, 0}), fine); res.Outcome != Ok {
		t.Fatalf("consistent aborted attempt rejected: %+v", res)
	}
}

func TestOpacityAbortedWritesDiscarded(t *testing.T) {
	// The aborted attempt wrote 9 to cell 0; a later committed reader must
	// NOT see it — and seeing the initial value is legal.
	txns := []Txn{
		mkTxn(1, 0, 1, 2, false, wr(0, 9), rd(0, 9)),
		mkTxn(2, 1, 3, 4, true, rd(0, 0)),
	}
	if res := CheckOpacity(MemSpec([]uint64{0}), txns); res.Outcome != Ok {
		t.Fatalf("aborted writes leaked into the model: %+v", res)
	}
}

func TestOpacitySetTxnSpecAtomicity(t *testing.T) {
	// Transaction 1 atomically adds keys 1 and 2; transaction 2, strictly
	// later, sees key 1 present but key 2 absent: atomicity broken.
	txns := []Txn{
		mkTxn(1, 0, 1, 2, true,
			Op{Kind: Add, Key: 1, Ok: true}, Op{Kind: Add, Key: 2, Ok: true}),
		mkTxn(2, 1, 3, 4, true,
			Op{Kind: Contains, Key: 1, Ok: true}, Op{Kind: Contains, Key: 2, Ok: false}),
	}
	if res := CheckOpacity(SetTxnSpec(), txns); res.Outcome != Violation {
		t.Fatalf("half-visible transaction accepted: %+v", res)
	}
	fine := []Txn{
		mkTxn(1, 0, 1, 2, true,
			Op{Kind: Add, Key: 1, Ok: true}, Op{Kind: Add, Key: 2, Ok: true}),
		mkTxn(2, 1, 3, 4, true,
			Op{Kind: Contains, Key: 1, Ok: true}, Op{Kind: Contains, Key: 2, Ok: true},
			Op{Kind: Remove, Key: 1, Ok: true}),
		mkTxn(3, 0, 5, 6, true,
			Op{Kind: Contains, Key: 1, Ok: false}, Op{Kind: Contains, Key: 2, Ok: true}),
	}
	if res := CheckOpacity(SetTxnSpec(), fine); res.Outcome != Ok {
		t.Fatalf("legal set-transaction history rejected: %+v", res)
	}
}

func TestTxnRecorderAttemptProtocol(t *testing.T) {
	rec := NewTxnRecorder(1)
	rec.BeginAttempt(0)
	rec.Op(0, rd(0, 0))
	rec.BeginAttempt(0) // retry: previous attempt aborted
	rec.Op(0, rd(0, 1))
	rec.Commit(0)
	txns := rec.History()
	if len(txns) != 2 {
		t.Fatalf("recorded %d attempts, want 2", len(txns))
	}
	if txns[0].Committed || !txns[1].Committed {
		t.Fatalf("attempt status wrong: %v / %v", txns[0].Committed, txns[1].Committed)
	}
	if txns[0].End > txns[1].Begin {
		t.Fatal("aborted attempt must close before the retry begins")
	}
	// An attempt that never did anything is dropped.
	rec2 := NewTxnRecorder(1)
	rec2.BeginAttempt(0)
	rec2.BeginAttempt(0)
	rec2.Commit(0)
	if got := len(rec2.History()); got != 1 {
		t.Fatalf("empty aborted attempt kept: %d txns, want 1", got)
	}
}
