package lincheck

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Txn is one recorded transaction attempt: its program-order operations
// with their observed results, its lifetime in logical time, and whether it
// committed. Aborted attempts matter: opacity demands that even they only
// ever observed a consistent prefix of committed transactions.
type Txn struct {
	ID        int
	Thread    int
	Begin     int64
	End       int64
	Committed bool
	Ops       []Op
}

// String renders a compact one-line form for dumps.
func (t *Txn) String() string {
	status := "committed"
	if !t.Committed {
		status = "aborted"
	}
	return fmt.Sprintf("tx%d t%d [%d,%d] %s (%d ops)", t.ID, t.Thread, t.Begin, t.End, status, len(t.Ops))
}

// txnShard is one thread's private attempt log.
type txnShard struct {
	txns []Txn
	cur  Txn
	open bool
	_    [64]byte
}

// TxnRecorder collects transactional histories. Each thread records its own
// attempts; the only shared state is the logical clock. The attempt
// protocol mirrors how retry loops re-invoke transaction bodies:
//
//	BeginAttempt(th)   // at the top of the body — closes the previous
//	                   // attempt (if still open) as aborted
//	Op(th, op)         // after each successful transactional operation
//	Commit(th)         // after the Atomic call returns
//
// An attempt left open when BeginAttempt is called again was aborted by the
// runtime after the body returned (e.g. commit-time validation); its end
// timestamp is over-approximated by the next attempt's begin, which only
// relaxes the real-time constraints the checker derives — never creating a
// false violation.
type TxnRecorder struct {
	clock  atomic.Int64
	nextID atomic.Int64
	shards []txnShard
}

// NewTxnRecorder creates a recorder for the given number of threads.
func NewTxnRecorder(threads int) *TxnRecorder {
	return &TxnRecorder{shards: make([]txnShard, threads)}
}

// Now draws the next logical timestamp.
func (r *TxnRecorder) Now() int64 { return r.clock.Add(1) }

// BeginAttempt opens a new attempt on thread, closing any previous open
// attempt as aborted.
func (r *TxnRecorder) BeginAttempt(thread int) {
	sh := &r.shards[thread]
	if sh.open {
		r.closeAttempt(sh, false)
	}
	sh.cur = Txn{ID: int(r.nextID.Add(1)), Thread: thread, Begin: r.Now()}
	sh.open = true
}

// Op appends one completed operation to the thread's open attempt.
func (r *TxnRecorder) Op(thread int, op Op) {
	sh := &r.shards[thread]
	if !sh.open {
		panic("lincheck: Op outside an attempt")
	}
	op.Thread = thread
	sh.cur.Ops = append(sh.cur.Ops, op)
}

// Commit closes the thread's open attempt as committed.
func (r *TxnRecorder) Commit(thread int) {
	sh := &r.shards[thread]
	if !sh.open {
		panic("lincheck: Commit outside an attempt")
	}
	r.closeAttempt(sh, true)
}

// closeAttempt stamps and files the current attempt. Aborted attempts that
// recorded no operations are dropped: they constrain nothing.
func (r *TxnRecorder) closeAttempt(sh *txnShard, committed bool) {
	sh.open = false
	sh.cur.End = r.Now()
	sh.cur.Committed = committed
	if committed || len(sh.cur.Ops) > 0 {
		sh.txns = append(sh.txns, sh.cur)
	}
}

// History merges the per-thread logs, sorted by begin time. Call only after
// all recording threads have finished.
func (r *TxnRecorder) History() []Txn {
	var out []Txn
	for i := range r.shards {
		if r.shards[i].open {
			r.closeAttempt(&r.shards[i], false)
		}
		out = append(out, r.shards[i].txns...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Begin < out[j].Begin })
	return out
}

// TxnSpec is a sequential specification at transaction granularity: Apply
// replays a whole transaction's operations, in program order, against a
// state, reporting whether every recorded result is legal. Like Model
// states, TxnSpec states are immutable values.
type TxnSpec struct {
	Name  string
	Init  func() any
	Apply func(state any, t *Txn) (any, bool)
	Hash  func(state any) uint64
	Equal func(a, b any) bool
}

// MemSpec is the transactional-memory specification over a fixed array of
// cells with the given initial values. Op.Key indexes the cell; Read ops
// carry the observed value in Out, Write ops the stored value in In.
// Read-after-write inside one transaction is handled by sequential replay.
func MemSpec(initial []uint64) TxnSpec {
	return TxnSpec{
		Name: "memory",
		Init: func() any { return initial },
		Apply: func(state any, t *Txn) (any, bool) {
			cells := state.([]uint64)
			cloned := false
			for _, op := range t.Ops {
				switch op.Kind {
				case Read:
					if cells[op.Key] != op.Out {
						return state, false
					}
				case Write:
					if !cloned {
						cells = append([]uint64(nil), cells...)
						cloned = true
					}
					cells[op.Key] = op.In
				default:
					return state, false
				}
			}
			if !t.Committed {
				// An aborted attempt's writes never took effect; only its
				// reads had to be consistent.
				return state, true
			}
			return cells, true
		},
		Hash: func(state any) uint64 {
			h := uint64(1469598103934665603)
			for _, v := range state.([]uint64) {
				h = mix64(h ^ v)
			}
			return h
		},
		Equal: func(a, b any) bool {
			va, vb := a.([]uint64), b.([]uint64)
			if len(va) != len(vb) {
				return false
			}
			for i := range va {
				if va[i] != vb[i] {
					return false
				}
			}
			return true
		},
	}
}

// SetTxnSpec is the abstract-set specification at transaction granularity,
// for semantic (OTB/boosting) transactions that perform several set
// operations atomically. State is the sorted key slice.
func SetTxnSpec() TxnSpec {
	return TxnSpec{
		Name: "set",
		Init: func() any { return []int64(nil) },
		Apply: func(state any, t *Txn) (any, bool) {
			keys := state.([]int64)
			find := func(k int64) int {
				return sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
			}
			for _, op := range t.Ops {
				i := find(op.Key)
				present := i < len(keys) && keys[i] == op.Key
				switch op.Kind {
				case Add:
					if op.Ok == present {
						return state, false
					}
					if op.Ok {
						next := make([]int64, 0, len(keys)+1)
						next = append(next, keys[:i]...)
						next = append(next, op.Key)
						next = append(next, keys[i:]...)
						keys = next
					}
				case Remove:
					if op.Ok != present {
						return state, false
					}
					if op.Ok {
						next := make([]int64, 0, len(keys)-1)
						next = append(next, keys[:i]...)
						next = append(next, keys[i+1:]...)
						keys = next
					}
				case Contains:
					if op.Ok != present {
						return state, false
					}
				default:
					return state, false
				}
			}
			if !t.Committed {
				return state, true
			}
			return keys, true
		},
		Hash: func(state any) uint64 {
			h := uint64(1469598103934665603)
			for _, k := range state.([]int64) {
				h = mix64(h ^ uint64(k))
			}
			return h
		},
		Equal: func(a, b any) bool {
			ka, kb := a.([]int64), b.([]int64)
			if len(ka) != len(kb) {
				return false
			}
			for i := range ka {
				if ka[i] != kb[i] {
					return false
				}
			}
			return true
		},
	}
}

// CheckOpacity decides whether the transactional history is opaque with
// respect to spec, using the default budget.
func CheckOpacity(spec TxnSpec, txns []Txn) Result {
	return CheckOpacityBudget(spec, txns, DefaultBudget)
}

// CheckOpacityBudget searches for a commit order of the committed
// transactions that (a) respects real time — a transaction that ended
// before another began must serialize first, (b) makes every committed
// transaction's reads legal, and (c) leaves, for every aborted attempt,
// some prefix compatible with the attempt's lifetime under which its reads
// are legal too. (a)+(b) is strict serializability; adding (c) is the
// testable core of opacity: no transaction, not even a doomed one, ever
// observed an inconsistent state.
func CheckOpacityBudget(spec TxnSpec, txns []Txn, budget int64) Result {
	var committed, aborted []*Txn
	for i := range txns {
		if txns[i].Committed {
			committed = append(committed, &txns[i])
		} else if len(txns[i].Ops) > 0 {
			aborted = append(aborted, &txns[i])
		}
	}
	n := len(committed)
	na := len(aborted)
	sort.Slice(committed, func(i, j int) bool { return committed[i].Begin < committed[j].Begin })

	c := &opacityCheck{
		spec:      spec,
		committed: committed,
		aborted:   aborted,
		scheduled: newBitset(n),
		satisfied: newBitset(max(na, 1)),
		cache:     make(map[uint64][]opacityMemo),
		budget:    budget,
	}
	order := make([]int, 0, n)
	verdict := c.search(spec.Init(), order)
	res := Result{Cost: c.spent}
	switch verdict {
	case partOk:
		res.Outcome = Ok
		res.Witness = c.witness
	case partInconclusive:
		res.Outcome = Inconclusive
		res.Detail = "search budget exhausted"
	default:
		res.Outcome = Violation
		res.Detail = fmt.Sprintf(
			"no commit order of %d committed transactions satisfies the %s specification and real-time order (%d aborted attempts constrained)",
			n, spec.Name, na)
		for _, t := range txns {
			res.Failed = append(res.Failed, t.Ops...)
		}
	}
	return res
}

// opacityMemo is one memoized search configuration.
type opacityMemo struct {
	scheduled bitset
	satisfied bitset
	state     any
}

type opacityCheck struct {
	spec      TxnSpec
	committed []*Txn
	aborted   []*Txn
	scheduled bitset
	satisfied bitset
	cache     map[uint64][]opacityMemo
	budget    int64
	spent     int64
	witness   []int
}

// ready reports whether committed[i] may be scheduled next: every
// still-unscheduled transaction that ended before it began would violate
// real time by coming later.
func (c *opacityCheck) ready(i int) bool {
	ti := c.committed[i]
	for j, tj := range c.committed {
		if tj.Begin > ti.Begin {
			break // sorted by Begin: no later txn can have ended earlier
		}
		if j == i || c.has(c.scheduled, j) {
			continue
		}
		if tj.End < ti.Begin {
			return false
		}
	}
	return true
}

func (c *opacityCheck) has(b bitset, i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

// absorbAborted marks every aborted attempt whose lifetime is compatible
// with the current prefix and whose reads are legal in the current state.
// It returns the indices newly satisfied so the caller can roll them back.
func (c *opacityCheck) absorbAborted(state any) []int {
	var marked []int
	for ai, a := range c.aborted {
		if c.has(c.satisfied, ai) {
			continue
		}
		// Every committed txn that ended before the attempt began must
		// already be in the prefix; none that began after it ended may be.
		compatible := true
		for j, tj := range c.committed {
			in := c.has(c.scheduled, j)
			if !in && tj.End < a.Begin {
				compatible = false
				break
			}
			if in && tj.Begin > a.End {
				compatible = false
				break
			}
		}
		if !compatible {
			continue
		}
		if _, legal := c.spec.Apply(state, a); legal {
			c.satisfied.set(ai)
			marked = append(marked, ai)
		}
	}
	return marked
}

func (c *opacityCheck) seen(state any) bool {
	key := c.scheduled.hash() ^ c.satisfied.hash() ^ c.spec.Hash(state)
	for _, m := range c.cache[key] {
		if m.scheduled.equal(c.scheduled) && m.satisfied.equal(c.satisfied) && c.spec.Equal(m.state, state) {
			return true
		}
	}
	c.cache[key] = append(c.cache[key], opacityMemo{c.scheduled.clone(), c.satisfied.clone(), state})
	return false
}

func (c *opacityCheck) search(state any, order []int) partVerdict {
	if c.spent++; c.spent > c.budget {
		return partInconclusive
	}
	marked := c.absorbAborted(state)
	defer func() {
		for _, ai := range marked {
			c.satisfied.clear(ai)
		}
	}()
	if len(order) == len(c.committed) {
		for ai := range c.aborted {
			if !c.has(c.satisfied, ai) {
				return partViolation
			}
		}
		c.witness = make([]int, len(order))
		for i, idx := range order {
			c.witness[i] = c.committed[idx].ID
		}
		return partOk
	}
	if c.seen(state) {
		return partViolation
	}
	for i := range c.committed {
		if c.has(c.scheduled, i) || !c.ready(i) {
			continue
		}
		next, legal := c.spec.Apply(state, c.committed[i])
		if !legal {
			continue
		}
		c.scheduled.set(i)
		v := c.search(next, append(order, i))
		c.scheduled.clear(i)
		if v != partViolation {
			return v
		}
	}
	return partViolation
}
