// Package omtext is a small, dependency-free parser and validator for the
// OpenMetrics text exposition format (the format Prometheus scrapes),
// covering the subset this repository emits: TYPE/HELP/UNIT metadata,
// counter/gauge/histogram families, escaped label values, bucket exemplars
// and the terminating "# EOF" line.
//
// It exists so the metrics-scrape smoke tests can validate /metrics output
// structurally — family grouping, counter _total suffixes, cumulative
// le-bucket monotonicity, exemplar syntax — without pulling in a client
// library. The grammar follows the OpenMetrics 1.0 specification; anything
// outside the emitted subset (summaries, stateset, metric timestamps with
// exotic syntax) is rejected rather than guessed at.
package omtext

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one metric sample line.
type Sample struct {
	// Name is the full sample name, including any _total/_bucket/_count/
	// _sum suffix.
	Name string
	// Labels holds the decoded label set (nil when none).
	Labels map[string]string
	// Value is the sample value.
	Value float64
	// Exemplar is the attached exemplar, if any.
	Exemplar *Exemplar
}

// Exemplar is an OpenMetrics exemplar attached to a sample.
type Exemplar struct {
	Labels map[string]string
	Value  float64
}

// Family is one metric family: its metadata and samples, in exposition
// order.
type Family struct {
	// Name is the family name — for counters and histograms, the name
	// without the sample suffixes.
	Name string
	// Type is the declared type ("unknown" when no TYPE metadata was seen).
	Type string
	// Help is the HELP text ("" when absent).
	Help string
	// Unit is the UNIT text ("" when absent).
	Unit string
	// Samples are the family's samples in order of appearance.
	Samples []Sample
}

// Sample returns the family's first sample with the given name whose labels
// are a superset of want (nil = any), or nil.
func (f *Family) Sample(name string, want map[string]string) *Sample {
	for i := range f.Samples {
		s := &f.Samples[i]
		if s.Name != name {
			continue
		}
		ok := true
		for k, v := range want {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s
		}
	}
	return nil
}

// Validate parses the exposition and discards the result.
func Validate(data []byte) error {
	_, err := Parse(data)
	return err
}

// Find returns the family with the given name from a Parse result, or nil.
func Find(fams []Family, name string) *Family {
	for i := range fams {
		if fams[i].Name == name {
			return &fams[i]
		}
	}
	return nil
}

// Parse decodes and validates a full OpenMetrics exposition. It enforces:
//
//   - the exposition ends with exactly one "# EOF" line and nothing after;
//   - metadata lines ("# TYPE|HELP|UNIT name ...") precede their family's
//     samples, with at most one of each per family;
//   - a family's samples are contiguous (a family never reappears after
//     another family has started) and sample names match the declared type's
//     suffix rules (counter → _total/_created, histogram →
//     _bucket/_count/_sum/_created, otherwise the bare name);
//   - no duplicate (name, label set) sample;
//   - counter values are finite and non-negative;
//   - histogram buckets carry an le label, appear in ascending le order
//     with non-decreasing cumulative counts per label set, include an
//     le="+Inf" bucket, and agree with _count when present;
//   - exemplars appear only on histogram buckets or counter samples.
func Parse(data []byte) ([]Family, error) {
	p := &parser{
		byName: map[string]*Family{},
		closed: map[string]bool{},
		seen:   map[string]bool{},
	}
	text := string(data)
	sawEOF := false
	for n, line := range strings.Split(text, "\n") {
		lineNo := n + 1
		if sawEOF {
			if line != "" {
				return nil, fmt.Errorf("omtext: line %d: content after # EOF", lineNo)
			}
			continue
		}
		if line == "# EOF" {
			sawEOF = true
			continue
		}
		if line == "" {
			return nil, fmt.Errorf("omtext: line %d: empty line", lineNo)
		}
		var err error
		if strings.HasPrefix(line, "#") {
			err = p.metadata(line)
		} else {
			err = p.sample(line)
		}
		if err != nil {
			return nil, fmt.Errorf("omtext: line %d: %w", lineNo, err)
		}
	}
	if !sawEOF {
		return nil, fmt.Errorf("omtext: missing terminating # EOF")
	}
	if err := p.closeCurrent(); err != nil {
		return nil, fmt.Errorf("omtext: %w", err)
	}
	return p.fams, nil
}

type parser struct {
	fams   []Family
	cur    *Family // points into a scratch family, appended on close
	curFam Family
	byName map[string]*Family
	closed map[string]bool
	seen   map[string]bool // sample dedup: name + canonical label set
}

// metadata handles "# TYPE|HELP|UNIT name rest" lines.
func (p *parser) metadata(line string) error {
	rest, ok := strings.CutPrefix(line, "# ")
	if !ok {
		return fmt.Errorf("malformed comment %q", line)
	}
	kind, rest, ok := strings.Cut(rest, " ")
	if !ok {
		return fmt.Errorf("malformed metadata %q", line)
	}
	name, value, _ := strings.Cut(rest, " ")
	if !validMetricName(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	switch kind {
	case "TYPE":
		switch value {
		case "counter", "gauge", "histogram", "summary", "info", "stateset", "unknown":
		default:
			return fmt.Errorf("unknown metric type %q", value)
		}
		f, err := p.family(name, true)
		if err != nil {
			return err
		}
		if f.Type != "unknown" {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		if len(f.Samples) > 0 {
			return fmt.Errorf("TYPE for %s after its samples", name)
		}
		f.Type = value
	case "HELP":
		f, err := p.family(name, true)
		if err != nil {
			return err
		}
		if f.Help != "" {
			return fmt.Errorf("duplicate HELP for %s", name)
		}
		f.Help = value
	case "UNIT":
		f, err := p.family(name, true)
		if err != nil {
			return err
		}
		if f.Unit != "" {
			return fmt.Errorf("duplicate UNIT for %s", name)
		}
		f.Unit = value
	default:
		return fmt.Errorf("unknown comment kind %q", kind)
	}
	return nil
}

// family returns the open family with the given name, starting one when
// needed. meta distinguishes metadata-driven starts (exact name) from
// sample-driven implicit families.
func (p *parser) family(name string, meta bool) (*Family, error) {
	if p.cur != nil && p.curFam.Name == name {
		return p.cur, nil
	}
	if p.closed[name] {
		return nil, fmt.Errorf("family %s reappears after other families (samples must be contiguous)", name)
	}
	if err := p.closeCurrent(); err != nil {
		return nil, err
	}
	p.curFam = Family{Name: name, Type: "unknown"}
	p.cur = &p.curFam
	_ = meta
	return p.cur, nil
}

// closeCurrent finalizes the open family: histogram consistency checks,
// then appends it to the output.
func (p *parser) closeCurrent() error {
	if p.cur == nil {
		return nil
	}
	f := p.curFam
	if f.Type == "histogram" {
		if err := checkHistogram(&f); err != nil {
			return fmt.Errorf("histogram %s: %w", f.Name, err)
		}
	}
	p.fams = append(p.fams, f)
	p.closed[f.Name] = true
	p.cur = nil
	return nil
}

// sample parses one sample line.
func (p *parser) sample(line string) error {
	s, err := parseSampleLine(line)
	if err != nil {
		return err
	}
	famName, err := p.resolveFamily(s.Name)
	if err != nil {
		return err
	}
	f, err := p.family(famName, false)
	if err != nil {
		return err
	}
	if err := checkSample(f, s); err != nil {
		return err
	}
	key := s.Name + "\x00" + canonicalLabels(s.Labels)
	if p.seen[key] {
		return fmt.Errorf("duplicate sample %s{%s}", s.Name, canonicalLabels(s.Labels))
	}
	p.seen[key] = true
	f.Samples = append(f.Samples, s)
	return nil
}

// resolveFamily maps a sample name to its family: the open family when the
// name fits its suffix rules, else the bare sample name (implicit unknown
// family).
func (p *parser) resolveFamily(name string) (string, error) {
	if p.cur != nil && nameInFamily(&p.curFam, name) {
		return p.curFam.Name, nil
	}
	return name, nil
}

// nameInFamily reports whether a sample name belongs to the family per its
// declared type.
func nameInFamily(f *Family, name string) bool {
	switch f.Type {
	case "counter":
		return name == f.Name+"_total" || name == f.Name+"_created"
	case "histogram":
		return name == f.Name+"_bucket" || name == f.Name+"_count" ||
			name == f.Name+"_sum" || name == f.Name+"_created"
	default:
		return name == f.Name
	}
}

// checkSample enforces per-type sample rules.
func checkSample(f *Family, s Sample) error {
	switch f.Type {
	case "counter":
		if !nameInFamily(f, s.Name) {
			return fmt.Errorf("sample %s does not fit counter family %s (want %s_total)", s.Name, f.Name, f.Name)
		}
		if s.Value < 0 || math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
			return fmt.Errorf("counter %s has invalid value %v", s.Name, s.Value)
		}
	case "histogram":
		if !nameInFamily(f, s.Name) {
			return fmt.Errorf("sample %s does not fit histogram family %s", s.Name, f.Name)
		}
		if s.Name == f.Name+"_bucket" {
			if _, ok := s.Labels["le"]; !ok {
				return fmt.Errorf("bucket sample %s lacks an le label", s.Name)
			}
		}
		if s.Exemplar != nil && s.Name != f.Name+"_bucket" {
			return fmt.Errorf("exemplar on non-bucket histogram sample %s", s.Name)
		}
	case "gauge", "unknown", "info", "stateset", "summary":
		if !nameInFamily(f, s.Name) {
			return fmt.Errorf("sample %s does not fit family %s", s.Name, f.Name)
		}
		if s.Exemplar != nil && f.Type != "unknown" {
			return fmt.Errorf("exemplar on %s sample %s", f.Type, s.Name)
		}
	}
	return nil
}

// checkHistogram validates cumulative bucket structure per label set.
func checkHistogram(f *Family) error {
	type state struct {
		lastLE   float64
		lastCum  float64
		sawInf   bool
		infValue float64
	}
	groups := map[string]*state{}
	for _, s := range f.Samples {
		if s.Name != f.Name+"_bucket" {
			continue
		}
		le := s.Labels["le"]
		leV, err := strconv.ParseFloat(le, 64)
		if err != nil {
			return fmt.Errorf("unparseable le %q", le)
		}
		key := canonicalLabelsExcept(s.Labels, "le")
		st, ok := groups[key]
		if !ok {
			st = &state{lastLE: math.Inf(-1), lastCum: -1}
			groups[key] = st
		}
		if st.sawInf {
			return fmt.Errorf("bucket after le=\"+Inf\" for {%s}", key)
		}
		if leV <= st.lastLE {
			return fmt.Errorf("le %q not ascending for {%s}", le, key)
		}
		if s.Value < st.lastCum {
			return fmt.Errorf("bucket counts not cumulative at le=%q for {%s}", le, key)
		}
		st.lastLE = leV
		st.lastCum = s.Value
		if math.IsInf(leV, +1) {
			st.sawInf = true
			st.infValue = s.Value
		}
	}
	for key, st := range groups {
		if !st.sawInf {
			return fmt.Errorf("missing le=\"+Inf\" bucket for {%s}", key)
		}
	}
	for _, s := range f.Samples {
		if s.Name != f.Name+"_count" {
			continue
		}
		key := canonicalLabelsExcept(s.Labels, "le")
		if st, ok := groups[key]; ok && st.infValue != s.Value {
			return fmt.Errorf("_count %v disagrees with +Inf bucket %v for {%s}", s.Value, st.infValue, key)
		}
	}
	return nil
}

// parseSampleLine decodes "name[{labels}] value [timestamp] [# {labels} value [ts]]".
func parseSampleLine(line string) (Sample, error) {
	var s Sample
	i := 0
	name, i, err := scanName(line, i)
	if err != nil {
		return s, err
	}
	s.Name = name
	if i < len(line) && line[i] == '{' {
		s.Labels, i, err = scanLabels(line, i)
		if err != nil {
			return s, err
		}
	}
	if i >= len(line) || line[i] != ' ' {
		return s, fmt.Errorf("expected space before value in %q", line)
	}
	i++
	var tok string
	tok, i = scanToken(line, i)
	s.Value, err = parseValue(tok)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", tok, err)
	}
	// Optional timestamp.
	if i < len(line) && line[i] == ' ' && i+1 < len(line) && line[i+1] != '#' {
		tok, i = scanToken(line, i+1)
		if _, err := strconv.ParseFloat(tok, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", tok)
		}
	}
	// Optional exemplar: " # {labels} value [ts]".
	if i < len(line) {
		if !strings.HasPrefix(line[i:], " # ") {
			return s, fmt.Errorf("trailing garbage %q", line[i:])
		}
		i += 3
		if i >= len(line) || line[i] != '{' {
			return s, fmt.Errorf("exemplar lacks label braces in %q", line)
		}
		ex := &Exemplar{}
		ex.Labels, i, err = scanLabels(line, i)
		if err != nil {
			return s, err
		}
		if i >= len(line) || line[i] != ' ' {
			return s, fmt.Errorf("expected space before exemplar value in %q", line)
		}
		tok, i = scanToken(line, i+1)
		ex.Value, err = parseValue(tok)
		if err != nil {
			return s, fmt.Errorf("bad exemplar value %q", tok)
		}
		if i < len(line) {
			if line[i] != ' ' {
				return s, fmt.Errorf("trailing garbage %q", line[i:])
			}
			tok, i = scanToken(line, i+1)
			if _, err := strconv.ParseFloat(tok, 64); err != nil {
				return s, fmt.Errorf("bad exemplar timestamp %q", tok)
			}
			if i != len(line) {
				return s, fmt.Errorf("trailing garbage %q", line[i:])
			}
		}
		s.Exemplar = ex
	}
	return s, nil
}

func parseValue(tok string) (float64, error) {
	if tok == "" {
		return 0, fmt.Errorf("empty value")
	}
	return strconv.ParseFloat(tok, 64)
}

func scanToken(s string, i int) (string, int) {
	j := i
	for j < len(s) && s[j] != ' ' {
		j++
	}
	return s[i:j], j
}

func scanName(s string, i int) (string, int, error) {
	j := i
	for j < len(s) && isNameChar(s[j], j == i) {
		j++
	}
	if j == i {
		return "", i, fmt.Errorf("missing metric name in %q", s)
	}
	return s[i:j], j, nil
}

func isNameChar(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' {
		return true
	}
	return !first && c >= '0' && c <= '9'
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

// scanLabels decodes a {name="value",...} block starting at s[i] == '{'.
func scanLabels(s string, i int) (map[string]string, int, error) {
	labels := map[string]string{}
	i++ // consume '{'
	for {
		if i >= len(s) {
			return nil, i, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return labels, i + 1, nil
		}
		name, j, err := scanName(s, i)
		if err != nil {
			return nil, i, err
		}
		if strings.Contains(name, ":") {
			return nil, i, fmt.Errorf("invalid label name %q", name)
		}
		i = j
		if i >= len(s) || s[i] != '=' {
			return nil, i, fmt.Errorf("expected = after label %q", name)
		}
		i++
		if i >= len(s) || s[i] != '"' {
			return nil, i, fmt.Errorf("expected quoted value for label %q", name)
		}
		var val strings.Builder
		i++
		for {
			if i >= len(s) {
				return nil, i, fmt.Errorf("unterminated label value for %q", name)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, i, fmt.Errorf("dangling escape in label %q", name)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, i, fmt.Errorf("unknown escape \\%c in label %q", s[i+1], name)
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := labels[name]; dup {
			return nil, i, fmt.Errorf("duplicate label %q", name)
		}
		labels[name] = val.String()
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

// canonicalLabels renders a label set sorted by name for dedup keys.
func canonicalLabels(labels map[string]string) string {
	return canonicalLabelsExcept(labels, "")
}

func canonicalLabelsExcept(labels map[string]string, skip string) string {
	if len(labels) == 0 {
		return ""
	}
	names := make([]string, 0, len(labels))
	for n := range labels {
		if n != skip {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString("=\"")
		b.WriteString(labels[n])
		b.WriteString("\"")
	}
	return b.String()
}
