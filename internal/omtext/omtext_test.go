package omtext

import (
	"strings"
	"testing"
)

const goodExposition = `# TYPE acme_requests counter
# HELP acme_requests Requests served.
acme_requests_total 42
# TYPE acme_temp gauge
acme_temp{room="lab \"a\"",floor="2"} -3.5
# TYPE acme_latency_seconds histogram
acme_latency_seconds_bucket{le="0.01"} 3 # {trace_id="00000000deadbeef"} 0.004
acme_latency_seconds_bucket{le="0.1"} 5
acme_latency_seconds_bucket{le="+Inf"} 6
acme_latency_seconds_count 6
acme_latency_seconds_sum 0.34
# EOF
`

func TestParseGood(t *testing.T) {
	fams, err := Parse([]byte(goodExposition))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(fams) != 3 {
		t.Fatalf("families: got %d want 3", len(fams))
	}

	c := Find(fams, "acme_requests")
	if c == nil || c.Type != "counter" || c.Help != "Requests served." {
		t.Fatalf("counter family: %+v", c)
	}
	if s := c.Sample("acme_requests_total", nil); s == nil || s.Value != 42 {
		t.Fatalf("counter sample: %+v", s)
	}

	g := Find(fams, "acme_temp")
	if g == nil || g.Type != "gauge" {
		t.Fatalf("gauge family: %+v", g)
	}
	s := g.Sample("acme_temp", map[string]string{"floor": "2"})
	if s == nil || s.Value != -3.5 || s.Labels["room"] != `lab "a"` {
		t.Fatalf("gauge sample: %+v", s)
	}

	h := Find(fams, "acme_latency_seconds")
	if h == nil || h.Type != "histogram" {
		t.Fatalf("histogram family: %+v", h)
	}
	b := h.Sample("acme_latency_seconds_bucket", map[string]string{"le": "0.01"})
	if b == nil || b.Exemplar == nil {
		t.Fatalf("first bucket or exemplar missing: %+v", b)
	}
	if b.Exemplar.Labels["trace_id"] != "00000000deadbeef" || b.Exemplar.Value != 0.004 {
		t.Fatalf("exemplar: %+v", b.Exemplar)
	}
	if cnt := h.Sample("acme_latency_seconds_count", nil); cnt == nil || cnt.Value != 6 {
		t.Fatalf("_count: %+v", cnt)
	}
}

// TestParseRejects feeds structurally broken expositions and requires a
// parse error naming roughly the right defect.
func TestParseRejects(t *testing.T) {
	cases := map[string]struct {
		text string
		want string
	}{
		"missing EOF": {
			"# TYPE a counter\na_total 1",
			"missing terminating",
		},
		"content after EOF": {
			"a 1\n# EOF\nb 2\n",
			"after # EOF",
		},
		"counter without _total": {
			"# TYPE a counter\na 1\n# EOF\n",
			"does not fit counter",
		},
		"negative counter": {
			"# TYPE a counter\na_total -1\n# EOF\n",
			"invalid value",
		},
		"duplicate TYPE": {
			"# TYPE a gauge\n# TYPE a gauge\na 1\n# EOF\n",
			"duplicate TYPE",
		},
		"TYPE after samples": {
			"a_total 1\n# TYPE a_total counter\n# EOF\n",
			"after its samples",
		},
		"family interleaved": {
			"# TYPE a gauge\na 1\n# TYPE b gauge\nb 1\na 2\n# EOF\n",
			"reappears",
		},
		"duplicate sample": {
			"# TYPE a gauge\na{x=\"1\"} 1\na{x=\"1\"} 2\n# EOF\n",
			"duplicate sample",
		},
		"bucket without le": {
			"# TYPE h histogram\nh_bucket 1\nh_bucket{le=\"+Inf\"} 1\n# EOF\n",
			"lacks an le label",
		},
		"buckets not cumulative": {
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n# EOF\n",
			"not cumulative",
		},
		"le not ascending": {
			"# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\n# EOF\n",
			"not ascending",
		},
		"missing +Inf": {
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\nh_sum 0.5\n# EOF\n",
			"+Inf",
		},
		"count disagrees": {
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 4\nh_sum 0.5\n# EOF\n",
			"disagrees",
		},
		"exemplar on gauge": {
			"# TYPE g gauge\ng 1 # {trace_id=\"ab\"} 1\n# EOF\n",
			"exemplar on gauge",
		},
		"unterminated labels": {
			"# TYPE g gauge\ng{x=\"1\" 1\n# EOF\n",
			"",
		},
		"bad escape": {
			"# TYPE g gauge\ng{x=\"\\t\"} 1\n# EOF\n",
			"unknown escape",
		},
		"bad value": {
			"# TYPE g gauge\ng xyz\n# EOF\n",
			"bad value",
		},
		"empty line": {
			"# TYPE g gauge\n\ng 1\n# EOF\n",
			"empty line",
		},
		"bad metric name": {
			"# TYPE 9g gauge\n9g 1\n# EOF\n",
			"invalid metric name",
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			err := Validate([]byte(tc.text))
			if err == nil {
				t.Fatalf("accepted:\n%s", tc.text)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParseTimestampsAndBareSamples covers the permissive corners: optional
// timestamps, metadata-free samples (implicit unknown families), and
// multi-group histograms.
func TestParseTimestampsAndBareSamples(t *testing.T) {
	text := "bare_metric{a=\"b\"} 3 1700000000\n" +
		"# TYPE h histogram\n" +
		"h_bucket{le=\"1\",op=\"get\"} 1\n" +
		"h_bucket{le=\"+Inf\",op=\"get\"} 2\n" +
		"h_bucket{le=\"1\",op=\"put\"} 4\n" +
		"h_bucket{le=\"+Inf\",op=\"put\"} 4\n" +
		"h_count{op=\"get\"} 2\n" +
		"h_count{op=\"put\"} 4\n" +
		"h_sum{op=\"get\"} 0.1\n" +
		"h_sum{op=\"put\"} 0.2\n" +
		"# EOF\n"
	fams, err := Parse([]byte(text))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if f := Find(fams, "bare_metric"); f == nil || f.Type != "unknown" {
		t.Fatalf("implicit family: %+v", f)
	}
	h := Find(fams, "h")
	if h == nil || len(h.Samples) != 8 {
		t.Fatalf("histogram samples: %+v", h)
	}
}
