package stmds_test

import (
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/stm"
	"repro/internal/stm/glock"
	"repro/internal/stm/norec"
	"repro/internal/stm/tl2"
	"repro/internal/stmds"
)

// txSet abstracts the three set-like STM structures for shared tests.
type txSet interface {
	Add(tx stm.Tx, key int64) bool
	Remove(tx stm.Tx, key int64) bool
	Contains(tx stm.Tx, key int64) bool
	Len() int
}

// rbAdapter adapts RBTree's Insert/Delete naming to txSet.
type rbAdapter struct{ t *stmds.RBTree }

func (a rbAdapter) Add(tx stm.Tx, k int64) bool      { return a.t.Insert(tx, k) }
func (a rbAdapter) Remove(tx stm.Tx, k int64) bool   { return a.t.Delete(tx, k) }
func (a rbAdapter) Contains(tx stm.Tx, k int64) bool { return a.t.Contains(tx, k) }
func (a rbAdapter) Len() int                         { return a.t.Len() }

func structures(capacity int) map[string]func() txSet {
	return map[string]func() txSet{
		"List":     func() txSet { return stmds.NewList(capacity) },
		"SkipList": func() txSet { return stmds.NewSkipList(capacity) },
		"DList":    func() txSet { return stmds.NewDList(capacity) },
		"RBTree":   func() txSet { return rbAdapter{stmds.NewRBTree(capacity)} },
	}
}

// stressIters scales a stress-test iteration count down under -short (the
// CI race job) while keeping full coverage in the default run.
func stressIters(full int) int {
	if testing.Short() {
		return full / 5
	}
	return full
}

func TestStructuresMatchModel(t *testing.T) {
	for name, mk := range structures(50000) {
		t.Run(name, func(t *testing.T) {
			alg := glock.New()
			f := func(ops []uint16) bool {
				s := mk()
				model := map[int64]bool{}
				for _, op := range ops {
					key := int64(op % 128)
					var got bool
					switch (op / 128) % 3 {
					case 0:
						alg.Atomic(func(tx stm.Tx) { got = s.Add(tx, key) })
						if got != !model[key] {
							return false
						}
						model[key] = true
					case 1:
						alg.Atomic(func(tx stm.Tx) { got = s.Remove(tx, key) })
						if got != model[key] {
							return false
						}
						delete(model, key)
					default:
						alg.Atomic(func(tx stm.Tx) { got = s.Contains(tx, key) })
						if got != model[key] {
							return false
						}
					}
				}
				return s.Len() == len(model)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: stressIters(25)}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestStructuresConcurrentPairInvariant(t *testing.T) {
	algs := map[string]func() stm.Algorithm{
		"NOrec": func() stm.Algorithm { return norec.New() },
		"TL2":   func() stm.Algorithm { return tl2.New() },
	}
	for algName, mkAlg := range algs {
		for dsName, mkDS := range structures(200000) {
			t.Run(algName+"/"+dsName, func(t *testing.T) {
				const (
					pairs   = 16
					offset  = 300
					workers = 6
				)
				txsEach := stressIters(100)
				alg := mkAlg()
				defer alg.Stop()
				s := mkDS()
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(seed uint64) {
						defer wg.Done()
						rng := rand.New(rand.NewPCG(seed, 99))
						for i := 0; i < txsEach; i++ {
							k := int64(rng.IntN(pairs)) + 1
							alg.Atomic(func(tx stm.Tx) {
								if s.Contains(tx, k) {
									s.Remove(tx, k)
									s.Remove(tx, k+offset)
								} else {
									s.Add(tx, k)
									s.Add(tx, k+offset)
								}
							})
						}
					}(uint64(w + 1))
				}
				wg.Wait()
				chk := glock.New()
				for k := int64(1); k <= pairs; k++ {
					var lo, hi bool
					chk.Atomic(func(tx stm.Tx) {
						lo = s.Contains(tx, k)
						hi = s.Contains(tx, k+offset)
					})
					if lo != hi {
						t.Fatalf("pair invariant broken for %d: %v/%v", k, lo, hi)
					}
				}
			})
		}
	}
}

func TestRBTreeInvariantsSequential(t *testing.T) {
	alg := glock.New()
	tree := stmds.NewRBTree(20000)
	rng := rand.New(rand.NewPCG(7, 7))
	inserted := map[int64]bool{}
	for i := 0; i < stressIters(3000); i++ {
		k := int64(rng.IntN(2000))
		if rng.IntN(3) < 2 {
			alg.Atomic(func(tx stm.Tx) { tree.Insert(tx, k) })
			inserted[k] = true
		} else {
			alg.Atomic(func(tx stm.Tx) { tree.Delete(tx, k) })
			delete(inserted, k)
		}
		if i%500 == 0 {
			tree.CheckInvariants()
		}
	}
	tree.CheckInvariants()
	if tree.Len() != len(inserted) {
		t.Fatalf("Len = %d, want %d", tree.Len(), len(inserted))
	}
}

func TestRBTreeInvariantsConcurrent(t *testing.T) {
	alg := norec.New()
	tree := stmds.NewRBTree(200000)
	const workers = 6
	opsEach := stressIters(300)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 5))
			for i := 0; i < opsEach; i++ {
				k := int64(rng.IntN(500))
				switch rng.IntN(3) {
				case 0:
					alg.Atomic(func(tx stm.Tx) { tree.Insert(tx, k) })
				case 1:
					alg.Atomic(func(tx stm.Tx) { tree.Delete(tx, k) })
				default:
					alg.Atomic(func(tx stm.Tx) { tree.Contains(tx, k) })
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	tree.CheckInvariants()
}

func TestHashMapSemantics(t *testing.T) {
	alg := glock.New()
	m := stmds.NewHashMap(16, 1000)
	alg.Atomic(func(tx stm.Tx) {
		if !m.Put(tx, 1, 100) {
			t.Error("first Put should create")
		}
		if m.Put(tx, 1, 200) {
			t.Error("second Put should update")
		}
		if v, ok := m.Get(tx, 1); !ok || v != 200 {
			t.Errorf("Get = %d,%v; want 200,true", v, ok)
		}
		if _, ok := m.Get(tx, 2); ok {
			t.Error("Get(2) should miss")
		}
		if !m.Delete(tx, 1) || m.Delete(tx, 1) {
			t.Error("Delete semantics wrong")
		}
	})
	if m.Len() != 0 {
		t.Fatalf("Len = %d, want 0", m.Len())
	}
}

func TestHashMapConcurrentConservation(t *testing.T) {
	alg := tl2.New()
	m := stmds.NewHashMap(64, 100000)
	const workers = 6
	each := int64(stressIters(200))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < each; i++ {
				k := base*each + i
				alg.Atomic(func(tx stm.Tx) { m.Put(tx, k, uint64(k)) })
			}
		}(int64(w))
	}
	wg.Wait()
	if got := m.Len(); int64(got) != workers*each {
		t.Fatalf("Len = %d, want %d", got, workers*each)
	}
	chk := glock.New()
	for k := int64(0); k < workers*each; k++ {
		var v uint64
		var ok bool
		chk.Atomic(func(tx stm.Tx) { v, ok = m.Get(tx, k) })
		if !ok || v != uint64(k) {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
}
