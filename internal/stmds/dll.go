package stmds

import (
	"math"

	"repro/internal/mem"
	"repro/internal/stm"
)

// DList is a sorted doubly-linked list set over STM cells — the "doubly
// linked list" microbenchmark of Figure 5.8, where every update touches
// both neighbours and write sets are slightly larger than the singly-linked
// case.
//
// Node layout: [key, next, prev].
type DList struct {
	arena *mem.Arena
	head  Ref
}

const (
	dlKey  = 0
	dlNext = 1
	dlPrev = 2
	dlSize = 3
)

// NewDList creates an empty doubly-linked set with room for capacity nodes.
func NewDList(capacity int) *DList {
	a := mem.NewArena((capacity + 2) * dlSize)
	l := &DList{arena: a}
	tail := alloc(a, dlSize)
	head := alloc(a, dlSize)
	field(a, tail, dlKey).Store(k2u(math.MaxInt64))
	field(a, tail, dlPrev).Store(uint64(head))
	field(a, head, dlKey).Store(k2u(math.MinInt64))
	field(a, head, dlNext).Store(uint64(tail))
	l.head = head
	return l
}

func (l *DList) locate(tx stm.Tx, key int64) (pred, curr Ref) {
	pred = l.head
	curr = Ref(readField(tx, l.arena, pred, dlNext))
	for u2k(readField(tx, l.arena, curr, dlKey)) < key {
		pred = curr
		curr = Ref(readField(tx, l.arena, curr, dlNext))
	}
	return pred, curr
}

// Add inserts key within tx, returning false if present.
func (l *DList) Add(tx stm.Tx, key int64) bool {
	pred, curr := l.locate(tx, key)
	if u2k(readField(tx, l.arena, curr, dlKey)) == key {
		return false
	}
	n := alloc(l.arena, dlSize)
	field(l.arena, n, dlKey).Store(k2u(key))
	tx.Write(field(l.arena, n, dlNext), uint64(curr))
	tx.Write(field(l.arena, n, dlPrev), uint64(pred))
	writeField(tx, l.arena, pred, dlNext, uint64(n))
	writeField(tx, l.arena, curr, dlPrev, uint64(n))
	return true
}

// Remove deletes key within tx, returning false if absent.
func (l *DList) Remove(tx stm.Tx, key int64) bool {
	pred, curr := l.locate(tx, key)
	if u2k(readField(tx, l.arena, curr, dlKey)) != key {
		return false
	}
	next := Ref(readField(tx, l.arena, curr, dlNext))
	writeField(tx, l.arena, pred, dlNext, uint64(next))
	writeField(tx, l.arena, next, dlPrev, uint64(pred))
	return true
}

// Contains reports within tx whether key is present.
func (l *DList) Contains(tx stm.Tx, key int64) bool {
	_, curr := l.locate(tx, key)
	return u2k(readField(tx, l.arena, curr, dlKey)) == key
}

// Len counts elements non-transactionally (tests and reporting only).
func (l *DList) Len() int {
	n := 0
	curr := Ref(field(l.arena, l.head, dlNext).Load())
	for u2k(field(l.arena, curr, dlKey).Load()) != math.MaxInt64 {
		n++
		curr = Ref(field(l.arena, curr, dlNext).Load())
	}
	return n
}
