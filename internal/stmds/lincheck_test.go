package stmds_test

import (
	"testing"

	"repro/internal/lincheck"
	"repro/internal/stm"
	"repro/internal/stm/norec"
	"repro/internal/stmds"
)

// Linearizability and opacity checks for the STM-composed structures. The
// arena capacity is generous because aborted attempts allocate nodes that
// are never reclaimed.
const lcArenaCap = 1 << 18

// algSet runs each abstract operation in its own STM transaction.
type algSet struct {
	alg stm.Algorithm
	s   *stmds.List
}

func (a algSet) Add(k int64) (ok bool) {
	a.alg.Atomic(func(tx stm.Tx) { ok = a.s.Add(tx, k) })
	return
}

func (a algSet) Remove(k int64) (ok bool) {
	a.alg.Atomic(func(tx stm.Tx) { ok = a.s.Remove(tx, k) })
	return
}

func (a algSet) Contains(k int64) (ok bool) {
	a.alg.Atomic(func(tx stm.Tx) { ok = a.s.Contains(tx, k) })
	return
}

func TestLincheckSTMList(t *testing.T) {
	alg := norec.New()
	defer alg.Stop()
	cfg := lincheck.DefaultConfig(31)
	cfg.Name = "stmds/list"
	if testing.Short() {
		cfg = cfg.Scaled(4)
	}
	lincheck.StressSet(t, cfg, func() lincheck.Set {
		return algSet{alg, stmds.NewList(lcArenaCap)}
	})
}

// listView is one attempt's transactional view of an STM-backed list set.
type listView struct {
	tx stm.Tx
	s  *stmds.List
}

func (v listView) Add(k int64) bool      { return v.s.Add(v.tx, k) }
func (v listView) Remove(k int64) bool   { return v.s.Remove(v.tx, k) }
func (v listView) Contains(k int64) bool { return v.s.Contains(v.tx, k) }

func TestOpacitySTMListTxns(t *testing.T) {
	alg := norec.New()
	defer alg.Stop()
	s := stmds.NewList(lcArenaCap)
	cfg := lincheck.DefaultSTMConfig(32)
	cfg.Name = "stmds/list-txns"
	cfg.Cells = 8 // key range
	if testing.Short() {
		cfg = cfg.Scaled(2)
	}
	lincheck.StressTxnSet(t, cfg, func(th int, body func(lincheck.Set)) {
		alg.Atomic(func(tx stm.Tx) { body(listView{tx, s}) })
	})
}
